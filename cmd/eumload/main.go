// Command eumload load-tests a running eumdns server: it fires concurrent
// DNS queries (optionally with random ECS subnets from real client blocks)
// and reports achieved throughput and latency percentiles — a quick way to
// see the name-server side of the §5 scaling story on real sockets.
//
//	eumdns -addr 127.0.0.1:5300 &
//	eumload -server 127.0.0.1:5300 -duration 5s -concurrency 16 -ecs 0.5
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net/netip"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"eum/internal/dnsclient"
	"eum/internal/dnsmsg"
	"eum/internal/par"
	"eum/internal/world"
)

func main() {
	server := flag.String("server", "127.0.0.1:5300", "DNS server host:port")
	zone := flag.String("zone", "cdn.example.net", "zone to query under")
	duration := flag.Duration("duration", 5*time.Second, "test duration")
	concurrency := flag.Int("concurrency", 8, "concurrent query workers")
	ecsRatio := flag.Float64("ecs", 0.5, "fraction of queries carrying an ECS option")
	domains := flag.Int("domains", 50, "distinct domains to query")
	blocks := flag.Int("blocks", 2000, "world size for sampling ECS subnets")
	seed := flag.Int64("seed", 1, "workload seed")
	flag.Parse()

	// Sample realistic ECS prefixes from a world (eumdns defaults to the
	// same generator, so many prefixes will be known to the server).
	w := world.MustGenerate(world.Config{Seed: *seed, NumBlocks: *blocks})
	prefixes := make([]netip.Prefix, 0, len(w.Blocks))
	for _, b := range w.Blocks {
		prefixes = append(prefixes, b.Prefix)
	}

	var sent, failed atomic.Uint64
	var mu sync.Mutex
	var latencies []time.Duration

	ctx, cancel := context.WithTimeout(context.Background(), *duration)
	defer cancel()
	start := time.Now()

	var wg sync.WaitGroup
	for wkr := 0; wkr < *concurrency; wkr++ {
		wg.Add(1)
		go func(wkr int) {
			defer wg.Done()
			// Split-mixed child seeds: worker streams stay decorrelated even
			// for adjacent base seeds (seed+wkr collides across runs).
			rng := rand.New(rand.NewSource(par.ChildSeed(*seed, uint64(wkr))))
			c := &dnsclient.Client{Timeout: 2 * time.Second, Retries: 0}
			for ctx.Err() == nil {
				name := dnsmsg.Name(fmt.Sprintf("e%04d.b.%s", rng.Intn(*domains), *zone))
				var ecs netip.Prefix
				if rng.Float64() < *ecsRatio {
					ecs = prefixes[rng.Intn(len(prefixes))]
				}
				t0 := time.Now()
				_, err := c.Lookup(ctx, *server, name, dnsmsg.TypeA, ecs)
				if ctx.Err() != nil {
					return
				}
				sent.Add(1)
				if err != nil {
					failed.Add(1)
					continue
				}
				mu.Lock()
				latencies = append(latencies, time.Since(t0))
				mu.Unlock()
			}
		}(wkr)
	}
	wg.Wait()
	elapsed := time.Since(start)

	total := sent.Load()
	if total == 0 {
		log.Fatal("no queries completed; is eumdns running?")
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	pct := func(p float64) time.Duration {
		if len(latencies) == 0 {
			return 0
		}
		i := int(p / 100 * float64(len(latencies)))
		if i >= len(latencies) {
			i = len(latencies) - 1
		}
		return latencies[i]
	}
	fmt.Printf("sent %d queries in %v: %.0f q/s, %d failed\n",
		total, elapsed.Round(time.Millisecond), float64(total)/elapsed.Seconds(), failed.Load())
	fmt.Printf("latency p50 %v  p90 %v  p99 %v\n",
		pct(50).Round(time.Microsecond), pct(90).Round(time.Microsecond), pct(99).Round(time.Microsecond))
}
