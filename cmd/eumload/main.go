// Command eumload is an open-loop DNS load harness for eumdns. Unlike a
// closed-loop client (send, wait, repeat — whose offered rate collapses to
// whatever the server sustains), eumload offers queries at a fixed target
// rate on a deterministic Poisson schedule and reports what came back:
// achieved throughput, latency percentiles, timeouts, and a per-second
// time series. When the server falls behind, the numbers show it.
//
//	eumdns -addr 127.0.0.1:5300 &
//	eumload -server 127.0.0.1:5300 -rate 20000 -duration 10s -json report.json
//
// ECS queries sample real client prefixes from the same synthetic world the
// server generates (match -blocks and -seed to the server's flags so the
// prefixes resolve). The offered schedule is fully determined by -seed.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/netip"
	"os"
	"time"

	"eum/internal/loadgen"
	"eum/internal/world"
)

func main() {
	server := flag.String("server", "127.0.0.1:5300", "DNS server address")
	zone := flag.String("zone", "cdn.example.net", "zone to query")
	rate := flag.Float64("rate", 1000, "target offered rate, queries/second")
	duration := flag.Duration("duration", 5*time.Second, "how long to offer load")
	conns := flag.Int("conns", 4, "UDP connections (each an independent sender)")
	ecs := flag.Float64("ecs", 0.8, "fraction of queries carrying EDNS client-subnet")
	domains := flag.Int("domains", 50, "distinct content domains to query")
	blocks := flag.Int("blocks", 8000, "world size for ECS prefix sampling (match the server)")
	seed := flag.Int64("seed", 1, "schedule and world seed")
	jsonPath := flag.String("json", "", "write the full JSON report here (- for stdout)")
	flag.Parse()

	var prefixes []netip.Prefix
	if *ecs > 0 {
		w := world.MustGenerate(world.Config{Seed: *seed, NumBlocks: *blocks})
		prefixes = make([]netip.Prefix, len(w.Blocks))
		for i, b := range w.Blocks {
			prefixes[i] = b.Prefix
		}
	}

	rep, err := loadgen.Run(context.Background(), loadgen.Config{
		Server:   *server,
		Zone:     *zone,
		Rate:     *rate,
		Duration: *duration,
		Conns:    *conns,
		ECSRatio: *ecs,
		Domains:  *domains,
		Seed:     *seed,
		Prefixes: prefixes,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("offered %.0f qps for %v (target %.0f): sent %d, received %d, timeouts %d, failures %d\n",
		rep.OfferedQPS, *duration, *rate, rep.Sent, rep.Received, rep.Timeouts, rep.Failures)
	fmt.Printf("achieved %.0f qps; latency p50 %.0fus p90 %.0fus p99 %.0fus p99.9 %.0fus mean %.0fus\n",
		rep.AchievedQPS, rep.Latency.P50Micros, rep.Latency.P90Micros,
		rep.Latency.P99Micros, rep.Latency.P999Micros, rep.Latency.MeanMicros)
	for _, s := range rep.Series {
		fmt.Printf("  t=%2ds sent %6d recv %6d p50 %6.0fus p99 %6.0fus\n",
			s.Second, s.Sent, s.Received, s.P50Micros, s.P99Micros)
	}

	if *jsonPath != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		data = append(data, '\n')
		if *jsonPath == "-" {
			os.Stdout.Write(data)
		} else if err := os.WriteFile(*jsonPath, data, 0o644); err != nil {
			log.Fatal(err)
		}
	}
}
