// Command eumsim regenerates the paper's figures from the synthetic
// reproduction. Each figure prints as a text table.
//
// Usage:
//
//	eumsim -fig all            # every figure at small scale
//	eumsim -fig 25 -scale full # one figure at benchmark scale
//	eumsim -list               # list available figures
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"eum/internal/experiments"
	"eum/internal/par"
)

// writeCSV emits one report as CSV with a leading comment row naming it.
func writeCSV(w io.Writer, rep *experiments.Report) error {
	fmt.Fprintf(w, "# %s: %s\n", rep.ID, rep.Caption)
	cw := csv.NewWriter(w)
	if err := cw.Write(rep.Columns); err != nil {
		return err
	}
	if err := cw.WriteAll(rep.Rows); err != nil {
		return err
	}
	cw.Flush()
	return cw.Error()
}

// runner produces one or more reports for a figure id.
type runner func(lab *experiments.Lab, scale experiments.Scale) ([]*experiments.Report, error)

// ecsTruncate is the -ecs-truncate flag value (validated in main before
// any figure runs), read by the ecsgrid figure.
var ecsTruncate uint8 = 20

var figures = map[string]struct {
	desc string
	run  runner
}{
	"2": {"client requests vs DNS queries", func(lab *experiments.Lab, s experiments.Scale) ([]*experiments.Report, error) {
		_, rep, err := experiments.Fig02QueryVolume(lab, s)
		return []*experiments.Report{rep}, err
	}},
	"5": {"client-LDNS distance histogram (all)", func(lab *experiments.Lab, s experiments.Scale) ([]*experiments.Report, error) {
		_, rep := experiments.Fig05ClientLDNSHistogram(lab)
		return []*experiments.Report{rep}, nil
	}},
	"6": {"client-LDNS distance by country", func(lab *experiments.Lab, s experiments.Scale) ([]*experiments.Report, error) {
		_, rep := experiments.Fig06DistanceByCountry(lab)
		return []*experiments.Report{rep}, nil
	}},
	"7": {"client-LDNS distance histogram (public resolvers)", func(lab *experiments.Lab, s experiments.Scale) ([]*experiments.Report, error) {
		_, rep := experiments.Fig07PublicResolverHistogram(lab)
		return []*experiments.Report{rep}, nil
	}},
	"8": {"public resolver distance by country", func(lab *experiments.Lab, s experiments.Scale) ([]*experiments.Report, error) {
		_, rep := experiments.Fig08PublicByCountry(lab)
		return []*experiments.Report{rep}, nil
	}},
	"9": {"public resolver adoption by country", func(lab *experiments.Lab, s experiments.Scale) ([]*experiments.Report, error) {
		_, rep := experiments.Fig09PublicAdoption(lab)
		return []*experiments.Report{rep}, nil
	}},
	"10": {"client-LDNS distance vs AS size", func(lab *experiments.Lab, s experiments.Scale) ([]*experiments.Report, error) {
		_, rep := experiments.Fig10DistanceByASSize(lab)
		return []*experiments.Report{rep}, nil
	}},
	"11": {"cluster radius and mean client-LDNS distance CDFs", func(lab *experiments.Lab, s experiments.Scale) ([]*experiments.Report, error) {
		_, rep := experiments.Fig11ClusterRadius(lab)
		return []*experiments.Report{rep}, nil
	}},
	"12-20": {"roll-out RUM figures (volume, distance, RTT, TTFB, download)", func(lab *experiments.Lab, s experiments.Scale) ([]*experiments.Report, error) {
		rf, err := experiments.RunRolloutFigures(lab, s)
		if err != nil {
			return nil, err
		}
		return []*experiments.Report{
			rf.Fig12RUMVolume(),
			rf.Fig13MappingDistance(),
			rf.Fig15RTT(),
			rf.Fig17TTFB(),
			rf.Fig19Download(),
		}, nil
	}},
	"21": {"mapping unit coverage (/24 blocks vs LDNSes)", func(lab *experiments.Lab, s experiments.Scale) ([]*experiments.Report, error) {
		_, rep := experiments.Fig21MappingUnitCoverage(lab)
		return []*experiments.Report{rep}, nil
	}},
	"22": {"mapping-unit prefix-length trade-off", func(lab *experiments.Lab, s experiments.Scale) ([]*experiments.Report, error) {
		_, rep := experiments.Fig22PrefixTradeoff(lab)
		return []*experiments.Report{rep}, nil
	}},
	"23": {"DNS query rate across the roll-out", func(lab *experiments.Lab, s experiments.Scale) ([]*experiments.Report, error) {
		_, rep, err := experiments.Fig23QueryRateIncrease(lab, s)
		return []*experiments.Report{rep}, err
	}},
	"24": {"query-rate factor vs pair popularity", func(lab *experiments.Lab, s experiments.Scale) ([]*experiments.Report, error) {
		_, rep, err := experiments.Fig24PopularityFactor(lab, s)
		return []*experiments.Report{rep}, err
	}},
	"25": {"NS vs EU vs CANS latency by deployment count", func(lab *experiments.Lab, s experiments.Scale) ([]*experiments.Report, error) {
		_, rep := experiments.Fig25DeploymentSweep(lab, experiments.DefaultFig25Config(s))
		return []*experiments.Report{rep}, nil
	}},
	"4.5": {"ECS adoption extrapolation (Section 4.5)", func(lab *experiments.Lab, s experiments.Scale) ([]*experiments.Report, error) {
		_, rep := experiments.AdoptionExtrapolation(lab)
		return []*experiments.Report{rep}, nil
	}},
	"sec7": {"baseline mechanisms: ECS vs metafile vs HTTP redirect (Section 7)", func(lab *experiments.Lab, s experiments.Scale) ([]*experiments.Report, error) {
		_, rep := experiments.BaselineMechanisms(lab)
		return []*experiments.Report{rep}, nil
	}},
	"flash": {"flash crowd: load balancing under a regional surge", func(lab *experiments.Lab, s experiments.Scale) ([]*experiments.Report, error) {
		_, rep, err := experiments.FlashCrowd(lab, "DE")
		return []*experiments.Report{rep}, err
	}},
	"4.4": {"path stability: AS crossings and loss under NS vs EU (Section 4.4)", func(lab *experiments.Lab, s experiments.Scale) ([]*experiments.Report, error) {
		_, rep := experiments.PathStability(lab)
		return []*experiments.Report{rep}, nil
	}},
	"fresh": {"mapping quality vs measurement sweep interval", func(lab *experiments.Lab, s experiments.Scale) ([]*experiments.Report, error) {
		_, rep := experiments.MeasurementFreshness(lab, s)
		return []*experiments.Report{rep}, nil
	}},
	"geoerr": {"EU mapping quality vs geolocation error", func(lab *experiments.Lab, s experiments.Scale) ([]*experiments.Report, error) {
		_, rep := experiments.GeoErrorImpact(lab)
		return []*experiments.Report{rep}, nil
	}},
	"classes": {"per-traffic-class scoring functions (web / video / application)", func(lab *experiments.Lab, s experiments.Scale) ([]*experiments.Report, error) {
		_, rep := experiments.TrafficClasses(lab)
		return []*experiments.Report{rep}, nil
	}},
	"overlay": {"overlay transport benefit for origin fetches", func(lab *experiments.Lab, s experiments.Scale) ([]*experiments.Report, error) {
		_, rep, err := experiments.OverlayBenefit(lab)
		return []*experiments.Report{rep}, err
	}},
	"sec8": {"broad ECS adoption what-if (Section 8)", func(lab *experiments.Lab, s experiments.Scale) ([]*experiments.Report, error) {
		rep, err := experiments.BroadRolloutReport(lab)
		return []*experiments.Report{rep}, err
	}},
	"scale": {"snapshot scale: build/republish times and resident memory", func(lab *experiments.Lab, s experiments.Scale) ([]*experiments.Report, error) {
		_, rep := experiments.SnapshotScale(lab, experiments.DefaultScaleConfig(s))
		return []*experiments.Report{rep}, nil
	}},
	"loadloop": {"closed-loop flash crowd: surge, spill, recede, reconverge", func(lab *experiments.Lab, s experiments.Scale) ([]*experiments.Report, error) {
		_, rep, err := experiments.ClosedLoopFlashCrowd(lab, experiments.ClosedLoopConfig{})
		return []*experiments.Report{rep}, err
	}},
	"brownout": {"deployment brownout under Zipf demand, by balance factor", func(lab *experiments.Lab, s experiments.Scale) ([]*experiments.Report, error) {
		_, rep, err := experiments.BrownoutZipf(lab, nil)
		return []*experiments.Report{rep}, err
	}},
	"frontier": {"balance-factor frontier: proximity cost vs load balance", func(lab *experiments.Lab, s experiments.Scale) ([]*experiments.Report, error) {
		_, rep, err := experiments.BalanceFrontier(lab, nil, "")
		return []*experiments.Report{rep}, err
	}},
	"ecsgrid": {"EU-mapping win by ECS adoption x prefix (-ecs-truncate sets the truncated cell)", func(lab *experiments.Lab, s experiments.Scale) ([]*experiments.Report, error) {
		_, rep, err := experiments.ECSGrid(lab, ecsTruncate)
		return []*experiments.Report{rep}, err
	}},
	"ampgrid": {"authoritative query amplification vs ECS prefix length", func(lab *experiments.Lab, s experiments.Scale) ([]*experiments.Report, error) {
		_, rep, err := experiments.AmpGrid(lab, nil)
		return []*experiments.Report{rep}, err
	}},
}

func main() {
	fig := flag.String("fig", "all", "figure to reproduce (e.g. 5, 12-20, 25, 4.5, all)")
	scaleName := flag.String("scale", "small", "small (seconds), full (benchmark scale), or huge (million-block lab)")
	seed := flag.Int64("seed", 1, "world generation seed")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0),
		"worker pool size for parallel sweeps (results are identical at any setting)")
	list := flag.Bool("list", false, "list available figures and exit")
	csvOut := flag.Bool("csv", false, "emit CSV instead of aligned tables (for plotting)")
	truncate := flag.Int("ecs-truncate", 20,
		"truncated-ECS prefix length for the ecsgrid figure (1-24; /24 is the mapping unit)")
	flag.Parse()
	if *truncate < 1 || *truncate > 255 {
		fmt.Fprintf(os.Stderr, "-ecs-truncate %d out of range\n", *truncate)
		os.Exit(2)
	}
	if err := experiments.ValidateECSTruncation(uint8(*truncate)); err != nil {
		fmt.Fprintf(os.Stderr, "%v\n", err)
		os.Exit(2)
	}
	ecsTruncate = uint8(*truncate)
	par.SetWorkers(*workers)

	if *list {
		ids := make([]string, 0, len(figures))
		for id := range figures {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		for _, id := range ids {
			fmt.Printf("  %-6s %s\n", id, figures[id].desc)
		}
		return
	}

	scale := experiments.Small
	switch {
	case strings.EqualFold(*scaleName, "full"):
		scale = experiments.Full
	case strings.EqualFold(*scaleName, "huge"):
		scale = experiments.Huge
	}
	fmt.Fprintf(os.Stderr, "building lab (scale=%s, seed=%d, workers=%d)...\n",
		*scaleName, *seed, par.Workers())
	labStart := time.Now()
	lab := experiments.NewLab(scale, *seed)
	fmt.Fprintf(os.Stderr, "lab built in %v\n", time.Since(labStart).Round(time.Millisecond))

	var ids []string
	if *fig == "all" {
		for id := range figures {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool {
			return fmt.Sprintf("%5s", ids[i]) < fmt.Sprintf("%5s", ids[j])
		})
	} else {
		ids = []string{*fig}
	}

	for _, id := range ids {
		f, ok := figures[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown figure %q; try -list\n", id)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "running fig %s (%s)...\n", id, f.desc)
		figStart := time.Now()
		reps, err := f.run(lab, scale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fig %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "fig %s done in %v\n", id, time.Since(figStart).Round(time.Millisecond))
		for _, rep := range reps {
			if *csvOut {
				if err := writeCSV(os.Stdout, rep); err != nil {
					fmt.Fprintf(os.Stderr, "fig %s: %v\n", id, err)
					os.Exit(1)
				}
			} else {
				fmt.Println(rep.Table())
			}
		}
	}
}
