package main

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"eum/internal/authority"
	"eum/internal/cdn"
	"eum/internal/config"
	"eum/internal/dnsclient"
	"eum/internal/dnsmsg"
	"eum/internal/dnsserver"
	"eum/internal/mapdist"
	"eum/internal/mapmaker"
	"eum/internal/mapping"
	"eum/internal/mapwire"
	"eum/internal/netmodel"
	"eum/internal/telemetry"
	"eum/internal/world"
)

// TestObsSmoke boots the full in-process stack — world, platform, mapping
// system, MapMaker, authority, live UDP server — wires every subsystem into
// one telemetry registry, serves one real DNS query through a real client,
// then scrapes the admin endpoints exactly as an operator (or `make obs`)
// would. It is the acceptance check that /metrics aggregates counters from
// all five instrumented packages.
func TestObsSmoke(t *testing.T) {
	cfg := config.Default()
	cfg.World.Blocks = 800
	cfg.Platform.Deployments = 60

	w := world.MustGenerate(world.Config{Seed: cfg.World.Seed, NumBlocks: cfg.World.Blocks})
	platform := cdn.MustGenerateUniverse(w, cdn.Config{
		Seed: cfg.Platform.Seed, NumDeployments: cfg.Platform.Deployments,
	})
	system := mapping.NewSystem(w, platform, netmodel.NewDefault(), mapping.Config{
		Policy: mapping.EndUser, PingTargets: 80,
	})
	mm := mapmaker.New(system, mapmaker.Config{})
	handler, auth, _, err := buildHandler(cfg, system, platform)
	if err != nil {
		t.Fatal(err)
	}
	if auth == nil {
		t.Fatal("flat config did not yield an authority")
	}
	srv, err := dnsserver.Listen("127.0.0.1:0", handler)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	reg := telemetry.NewRegistry()
	mon, err := cdn.NewMonitor(platform, &cdn.ScheduledFaults{}, time.Millisecond, mm.OnDeploymentChange)
	if err != nil {
		t.Fatal(err)
	}
	probe := &dnsclient.Client{}
	registerAll(reg, srv, auth, mm, mon, probe)
	go func() { _ = srv.Serve() }()

	// Populate the planes: one map publish, one health sweep, one real DNS
	// query (with ECS) through the self-probe client over the live socket.
	mm.Publish()
	mon.Tick(time.Now())
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	block := w.Blocks[10]
	resp, err := probe.Lookup(ctx, srv.Addr().String(),
		dnsmsg.Name("www.b."+cfg.Zone), dnsmsg.TypeA, block.Prefix)
	if err != nil {
		t.Fatalf("self-probe query: %v", err)
	}
	if resp.RCode != dnsmsg.RCodeSuccess || len(resp.Answers) == 0 {
		t.Fatalf("self-probe answer: rcode=%v answers=%d", resp.RCode, len(resp.Answers))
	}

	admin := httptest.NewServer(newAdminMux(adminState{
		reg: reg, system: system, mm: mm, auth: auth,
		mode: config.ModeStandalone, blocks: cfg.World.Blocks,
	}))
	defer admin.Close()

	// /metrics must expose at least one metric from each instrumented
	// package, with live values behind them.
	body := get(t, admin.URL+"/metrics", http.StatusOK)
	for _, want := range []string{
		"dnsserver_queries_total",           // internal/dnsserver
		"dnsserver_serve_latency_seconds",   // hot-path histogram
		"authority_queries_total",           // internal/authority
		"authority_decision_latency_seconds",
		"authority_map_epoch",
		"mapmaker_published_total", // internal/mapmaker
		"cdn_health_probes_total",  // internal/cdn
		"cdn_servers_live",
		"selfprobe_attempts_total", // internal/dnsclient
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
	if !strings.Contains(body, "dnsserver_queries_total 1") {
		t.Errorf("served query not counted:\n%s", firstLines(body, 20))
	}
	if !strings.Contains(body, "selfprobe_attempts_total 1") {
		t.Error("self-probe attempt not counted")
	}

	// The JSON exposition serves the same registry.
	var doc map[string]any
	if err := json.Unmarshal([]byte(get(t, admin.URL+"/metrics?format=json", http.StatusOK)), &doc); err != nil {
		t.Fatalf("/metrics?format=json: %v", err)
	}

	// /healthz reflects the (fresh) ladder rung.
	if body := get(t, admin.URL+"/healthz", http.StatusOK); !strings.Contains(body, "degrade=fresh") {
		t.Errorf("/healthz = %q, want fresh", body)
	}

	// /mapz describes the installed snapshot, including the build/storage
	// statistics an operator checks when resident memory looks wrong.
	var mapz struct {
		Epoch          uint64 `json:"epoch"`
		Policy         string `json:"policy"`
		Mode           string `json:"mode"`
		PublishedTotal uint64 `json:"published_total"`
		Degrade        string `json:"degrade"`
		Build          *struct {
			Partitions    int     `json:"partitions"`
			Tables        int     `json:"tables"`
			ArenaChain    int     `json:"arena_chain"`
			ResidentBytes uint64  `json:"resident_bytes"`
			BytesPerBlock float64 `json:"bytes_per_block"`
			FullBuilds    uint64  `json:"full_builds"`
		} `json:"build"`
		Sync *struct{} `json:"sync"`
	}
	if err := json.Unmarshal([]byte(get(t, admin.URL+"/mapz", http.StatusOK)), &mapz); err != nil {
		t.Fatal(err)
	}
	if mapz.Epoch == 0 || mapz.Policy == "" || mapz.PublishedTotal == 0 || mapz.Degrade != "fresh" {
		t.Errorf("/mapz = %+v", mapz)
	}
	if mapz.Mode != config.ModeStandalone {
		t.Errorf("/mapz mode = %q, want standalone", mapz.Mode)
	}
	if b := mapz.Build; b == nil {
		t.Error("/mapz missing the build section")
	} else if b.Partitions == 0 || b.Tables == 0 || b.ArenaChain == 0 ||
		b.ResidentBytes == 0 || b.BytesPerBlock <= 0 || b.FullBuilds == 0 {
		t.Errorf("/mapz build = %+v", b)
	}
	if mapz.Sync != nil {
		t.Error("/mapz grew a sync section on a standalone node")
	}

	// pprof rides along on the same mux.
	get(t, admin.URL+"/debug/pprof/cmdline", http.StatusOK)
}

// TestAdminDistRoles exercises the admin plane in the two distribution
// roles: a publisher's mux must serve wire images at /mapdist/snapshot,
// and a replica's /mapz — with no local MapMaker at all — must report
// its sync status instead of panicking on the missing control plane.
func TestAdminDistRoles(t *testing.T) {
	w := world.MustGenerate(world.Config{Seed: 13, NumBlocks: 400})
	platform := cdn.MustGenerateUniverse(w, cdn.Config{Seed: 13, NumDeployments: 40})
	mapCfg := mapping.Config{Policy: mapping.EndUser, PingTargets: 40}

	pubSys := mapping.NewSystem(w, platform, netmodel.NewDefault(), mapCfg)
	pub := mapdist.NewPublisher(pubSys, platform, mapdist.PublisherConfig{})
	pubAdmin := httptest.NewServer(newAdminMux(adminState{
		reg: telemetry.NewRegistry(), system: pubSys,
		mm:  mapmaker.New(pubSys, mapmaker.Config{}),
		pub: pub, mode: config.ModePublisher, blocks: 400,
	}))
	defer pubAdmin.Close()

	// The publisher's admin mux serves a decodable full image.
	img := get(t, pubAdmin.URL+mapdist.SnapshotPath+"?have=0", http.StatusOK)
	if h, err := mapwire.ParseHeader([]byte(img)); err != nil || h.Epoch != pubSys.Current().Epoch() {
		t.Fatalf("published image header %+v, err=%v", h, err)
	}

	// A replica synced off that publisher reports the distribution state.
	repSys := mapping.NewSystem(w, platform, netmodel.NewDefault(), mapCfg)
	repSys.BootstrapReplica()
	fetcher, err := mapdist.NewFetcher(repSys, platform, mapdist.FetcherConfig{
		Source: strings.TrimPrefix(pubAdmin.URL, "http://"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := fetcher.FetchOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	repAdmin := httptest.NewServer(newAdminMux(adminState{
		reg: telemetry.NewRegistry(), system: repSys,
		fetcher: fetcher, mode: config.ModeReplica, blocks: 400,
	}))
	defer repAdmin.Close()

	var mapz struct {
		Epoch          uint64 `json:"epoch"`
		Mode           string `json:"mode"`
		PublishedTotal uint64 `json:"published_total"`
		Sync           *struct {
			Source         string `json:"source"`
			InstalledEpoch uint64 `json:"installed_epoch"`
			EpochLag       uint64 `json:"epoch_lag"`
			FullImages     uint64 `json:"full_images"`
		} `json:"sync"`
	}
	if err := json.Unmarshal([]byte(get(t, repAdmin.URL+"/mapz", http.StatusOK)), &mapz); err != nil {
		t.Fatal(err)
	}
	if mapz.Mode != config.ModeReplica || mapz.PublishedTotal != 0 {
		t.Errorf("replica /mapz = %+v", mapz)
	}
	if s := mapz.Sync; s == nil {
		t.Fatal("replica /mapz missing the sync section")
	} else if s.Source == "" || s.InstalledEpoch != pubSys.Current().Epoch() ||
		s.EpochLag != 0 || s.FullImages != 1 {
		t.Errorf("replica /mapz sync = %+v", s)
	}
	if mapz.Epoch != pubSys.Current().Epoch() {
		t.Errorf("replica serves epoch %d, publisher at %d", mapz.Epoch, pubSys.Current().Epoch())
	}

	// A replica's mux must not serve snapshots (no publisher mounted).
	get(t, repAdmin.URL+mapdist.SnapshotPath, http.StatusNotFound)
}

// TestHealthzDegraded checks the load-balancer contract: once the
// degradation ladder passes serve-stale, /healthz flips to 503 so traffic
// drains to healthier name servers.
func TestHealthzDegraded(t *testing.T) {
	w := world.MustGenerate(world.Config{Seed: 3, NumBlocks: 400})
	platform := cdn.MustGenerateUniverse(w, cdn.Config{Seed: 3, NumDeployments: 40})
	system := mapping.NewSystem(w, platform, netmodel.NewDefault(), mapping.Config{PingTargets: 40})
	mm := mapmaker.New(system, mapmaker.Config{})
	a, err := authority.New("cdn.example.net", system)
	if err != nil {
		t.Fatal(err)
	}
	a.SetDegradeConfig(authority.DegradeConfig{
		StaleAfter:    time.Millisecond,
		FallbackAfter: 2 * time.Millisecond,
		ServfailAfter: time.Hour,
	})
	time.Sleep(30 * time.Millisecond) // let the map age past FallbackAfter

	st := adminState{reg: telemetry.NewRegistry(), system: system, mm: mm, auth: a}
	rec := httptest.NewRecorder()
	st.healthz(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("degraded /healthz = %d, want 503", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "degrade=fallback") {
		t.Errorf("degraded /healthz body = %q", rec.Body.String())
	}
}

// TestMapzLoadSection checks the load-feedback view of /mapz: present
// exactly when the balance knob is on, carrying the monitor counters and
// the per-deployment utilisation of loaded deployments; and the matching
// per-deployment gauges appear on /metrics.
func TestMapzLoadSection(t *testing.T) {
	w := world.MustGenerate(world.Config{Seed: 3, NumBlocks: 400})
	platform := cdn.MustGenerateUniverse(w, cdn.Config{Seed: 3, NumDeployments: 40})
	system := mapping.NewSystem(w, platform, netmodel.NewDefault(),
		mapping.Config{PingTargets: 40, BalanceFactor: 2})
	mm := mapmaker.New(system, mapmaker.Config{})
	lm := mapmaker.NewLoadMonitor(mm, mapmaker.LoadSignalConfig{})
	system.SetUtilizationSource(lm)

	hot := platform.Deployments[0]
	hot.Servers[0].AddLoad(3)

	st := adminState{
		reg: telemetry.NewRegistry(), system: system, mm: mm, lm: lm,
		platform: platform, balance: 2, blocks: 400,
	}
	rec := httptest.NewRecorder()
	st.mapz(rec, httptest.NewRequest(http.MethodGet, "/mapz", nil))
	var doc struct {
		Load *struct {
			BalanceFactor float64            `json:"balance_factor"`
			Utilisation   map[string]float64 `json:"utilisation"`
		} `json:"load"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Load == nil || doc.Load.BalanceFactor != 2 {
		t.Fatalf("/mapz load section = %+v", doc.Load)
	}
	if u := doc.Load.Utilisation[hot.Name]; u <= 0 {
		t.Errorf("loaded deployment %s utilisation = %g, want > 0", hot.Name, u)
	}
	if len(doc.Load.Utilisation) != 1 {
		t.Errorf("utilisation lists %d deployments, want only the loaded one", len(doc.Load.Utilisation))
	}

	// Balance off: no load section.
	st.balance = 0
	rec = httptest.NewRecorder()
	st.mapz(rec, httptest.NewRequest(http.MethodGet, "/mapz", nil))
	if strings.Contains(rec.Body.String(), `"load"`) {
		t.Error("/mapz carries a load section with balance_factor 0")
	}

	// The per-deployment gauge reaches /metrics through the registry.
	platform.RegisterLoadMetrics(st.reg)
	lm.RegisterMetrics(st.reg)
	rec = httptest.NewRecorder()
	st.reg.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	body := rec.Body.String()
	for _, want := range []string{"cdn_deployment_utilisation_", "mapmaker_load_notifies_total"} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
}

func get(t *testing.T, url string, wantCode int) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != wantCode {
		t.Fatalf("GET %s = %d, want %d\n%s", url, resp.StatusCode, wantCode, body)
	}
	return string(body)
}

func firstLines(s string, n int) string {
	lines := strings.SplitN(s, "\n", n+1)
	if len(lines) > n {
		lines = lines[:n]
	}
	return strings.Join(lines, "\n")
}
