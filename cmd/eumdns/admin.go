package main

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/pprof"
	"net/netip"
	"time"

	"eum/internal/authority"
	"eum/internal/cdn"
	"eum/internal/dnsclient"
	"eum/internal/dnsmsg"
	"eum/internal/dnsserver"
	"eum/internal/mapdist"
	"eum/internal/mapmaker"
	"eum/internal/mapping"
	"eum/internal/telemetry"
)

// adminState is everything the admin HTTP endpoints report on. auth is nil
// when this process serves the two-level hierarchy: the top level delegates
// instead of mapping, so it has no degradation ladder of its own. mm is
// nil on replicas (no local control plane); fetcher is non-nil only on
// replicas; pub is non-nil only in publisher mode.
type adminState struct {
	reg     *telemetry.Registry
	system  *mapping.System
	mm      *mapmaker.MapMaker
	lm      *mapmaker.LoadMonitor
	auth    *authority.Authority
	fetcher *mapdist.Fetcher
	pub     *mapdist.Publisher
	mode    string
	blocks  int
	// platform and balance feed the /mapz load section; lm is non-nil only
	// on map-building nodes with the feedback loop enabled.
	platform *cdn.Platform
	balance  float64
}

// newAdminMux builds the admin HTTP surface: /metrics (Prometheus text, or
// JSON via ?format=json), /healthz keyed off the degradation ladder, /mapz
// describing the installed map snapshot, and the standard pprof endpoints.
func newAdminMux(st adminState) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", st.reg.Handler())
	mux.HandleFunc("/healthz", st.healthz)
	mux.HandleFunc("/mapz", st.mapz)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	if st.pub != nil {
		mux.Handle(mapdist.SnapshotPath, st.pub)
	}
	return mux
}

// healthz answers 200 while the authority can still give useful answers
// (fresh or serve-stale) and 503 once the ladder reaches fallback or
// SERVFAIL — the shape a load balancer health check wants, so traffic
// drains to healthier name servers exactly when the paper's degraded modes
// kick in.
func (st adminState) healthz(w http.ResponseWriter, _ *http.Request) {
	level := authority.DegradeFresh
	if st.auth != nil {
		level = st.auth.Degradation()
	}
	code := http.StatusOK
	status := "ok"
	if level >= authority.DegradeFallback {
		code = http.StatusServiceUnavailable
		status = "degraded"
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(code)
	fmt.Fprintf(w, "%s degrade=%s map_epoch=%d\n", status, level, st.system.Current().Epoch())
}

// mapzBuild is the /mapz view of the map's storage shape and the
// builder's work counters — the PR 7 scale machinery an operator checks
// when resident memory or republish latency looks wrong.
type mapzBuild struct {
	Partitions        int     `json:"partitions"`
	Tables            int     `json:"tables"`
	ArenaChain        int     `json:"arena_chain"`
	Endpoints         int     `json:"endpoints"`
	ResidentBytes     uint64  `json:"resident_bytes"`
	BytesPerBlock     float64 `json:"bytes_per_block,omitempty"`
	FullBuilds        uint64  `json:"full_builds"`
	IncrementalBuilds uint64  `json:"incremental_builds"`
	RerankedTables    uint64  `json:"reranked_tables"`
}

// mapzLoad is the /mapz view of the load-feedback loop: the balance knob
// in force, the builder's load-triggered work and stale-signal tripwires,
// the monitor's notification counters, and the instantaneous utilization
// of every deployment currently carrying load.
type mapzLoad struct {
	BalanceFactor    float64 `json:"balance_factor"`
	LoadRebuilds     uint64  `json:"load_rebuilds"`
	StaleSignals     uint64  `json:"stale_signals"`
	Notifies         uint64  `json:"notifies,omitempty"`
	Damped           uint64  `json:"damped,omitempty"`
	Crossings        uint64  `json:"crossings,omitempty"`
	Overloaded       int     `json:"overloaded_deployments,omitempty"`
	WindowViolations uint64  `json:"window_violations,omitempty"`
	// Utilisation lists only deployments with non-zero load, so the
	// document stays small on an idle platform.
	Utilisation map[string]float64 `json:"utilisation,omitempty"`
}

// mapz describes the currently installed map snapshot as JSON: what an
// operator checks first when answers look wrong ("is the map fresh, and
// which epoch is serving?"). Replicas add their distribution sync status;
// every node adds the snapshot's build/storage statistics.
func (st adminState) mapz(w http.ResponseWriter, _ *http.Request) {
	snap := st.system.Current()
	doc := struct {
		Epoch          uint64              `json:"epoch"`
		Policy         string              `json:"policy"`
		Mode           string              `json:"mode,omitempty"`
		TTLSeconds     float64             `json:"ttl_seconds"`
		Tables         int                 `json:"tables"`
		PublishedAt    string              `json:"published_at"`
		AgeSeconds     float64             `json:"age_seconds"`
		PublishedTotal uint64              `json:"published_total"`
		BuildFailures  uint64              `json:"build_failures"`
		Degrade        string              `json:"degrade,omitempty"`
		Build          *mapzBuild          `json:"build,omitempty"`
		Load           *mapzLoad           `json:"load,omitempty"`
		Sync           *mapdist.SyncStatus `json:"sync,omitempty"`
	}{
		Epoch:      snap.Epoch(),
		Policy:     snap.Policy().String(),
		Mode:       st.mode,
		TTLSeconds: snap.TTL().Seconds(),
		Tables:     snap.Tables(),
	}
	if st.mm != nil {
		doc.PublishedTotal = st.mm.Published()
		doc.BuildFailures = st.mm.BuildFailures()
	}
	if ns := st.system.PublishedAtNanos(); ns > 0 {
		doc.PublishedAt = time.Unix(0, ns).UTC().Format(time.RFC3339Nano)
		doc.AgeSeconds = time.Since(time.Unix(0, ns)).Seconds()
	}
	if st.auth != nil {
		doc.Degrade = st.auth.Degradation().String()
	}
	b := &mapzBuild{
		Partitions:    snap.Partitions(),
		Tables:        snap.Tables(),
		ArenaChain:    snap.ArenaChainLen(),
		Endpoints:     snap.Endpoints(),
		ResidentBytes: snap.MemoryBytes() + st.system.IndexBytes(),
	}
	if st.blocks > 0 {
		b.BytesPerBlock = float64(b.ResidentBytes) / float64(st.blocks)
	}
	b.FullBuilds, b.IncrementalBuilds, b.RerankedTables = st.system.Builder().BuildStats()
	doc.Build = b
	if st.balance > 0 {
		l := &mapzLoad{BalanceFactor: st.balance}
		l.LoadRebuilds, l.StaleSignals = st.system.Builder().LoadStats()
		if st.lm != nil {
			l.Notifies = st.lm.Notifies()
			l.Damped = st.lm.Damped()
			l.Crossings = st.lm.Crossings()
			l.Overloaded = st.lm.Overloaded()
			l.WindowViolations = st.lm.WindowViolations()
			// The monitor's stale tripwire counts reads the builder never
			// saw a fresh signal for; surface the larger of the two.
			if s := st.lm.StaleSignals(); s > l.StaleSignals {
				l.StaleSignals = s
			}
		}
		if st.platform != nil {
			for _, d := range st.platform.Deployments {
				if d.Load() > 0 {
					if l.Utilisation == nil {
						l.Utilisation = map[string]float64{}
					}
					l.Utilisation[d.Name] = d.Utilisation()
				}
			}
		}
		doc.Load = l
	}
	if st.fetcher != nil {
		sync := st.fetcher.Status()
		doc.Sync = &sync
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(doc)
}

// registerAll wires every subsystem's counters into one registry. Any nil
// component is skipped, so the flat and two-level deployments both work.
func registerAll(reg *telemetry.Registry, srv *dnsserver.Server, auth *authority.Authority,
	mm *mapmaker.MapMaker, mon *cdn.Monitor, probe *dnsclient.Client) {
	if srv != nil {
		srv.RegisterMetrics(reg)
	}
	if auth != nil {
		auth.RegisterMetrics(reg)
	}
	if mm != nil {
		mm.RegisterMetrics(reg)
	}
	if mon != nil {
		mon.RegisterMetrics(reg)
	}
	if probe != nil {
		probe.Stats.Register(reg, "selfprobe")
	}
}

// runHealthMonitor drives the liveness monitor until ctx is cancelled. The
// monitor itself decides when a tick actually probes (its own interval).
func runHealthMonitor(ctx context.Context, mon *cdn.Monitor, every time.Duration) {
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case now := <-t.C:
			mon.Tick(now)
		}
	}
}

// runLoadMonitor drives the load-feedback loop until ctx is cancelled.
// Each tick first decays the platform's cumulative demand counters toward
// zero on the monitor's EWMA time constant — turning the authority's
// per-answer demand increments into a rate-like gauge — then samples
// every deployment's utilization into the monitor, which republishes the
// map through the change feed on smoothed threshold crossings.
func runLoadMonitor(ctx context.Context, lm *mapmaker.LoadMonitor, p *cdn.Platform, every time.Duration) {
	decay := math.Exp(-float64(every) / float64(lm.Config().EWMA))
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case now := <-t.C:
			p.ScaleLoad(decay)
			lm.Tick(p, now)
		}
	}
}

// runSelfProbe periodically resolves a name against this process's own
// listener through a real dnsclient — a blackbox check that the whole
// socket → queue → authority path stays live, feeding the selfprobe_*
// counters (attempts with no retries = healthy).
func runSelfProbe(ctx context.Context, c *dnsclient.Client, server string, name dnsmsg.Name, every time.Duration) {
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			cctx, cancel := context.WithTimeout(ctx, 2*time.Second)
			_, _ = c.Lookup(cctx, server, name, dnsmsg.TypeTXT, netip.Prefix{})
			cancel()
		}
	}
}
