// Command eumdns runs a live authoritative DNS server for a synthetic CDN
// zone, answering A queries through the end-user mapping system over real
// UDP and TCP sockets. Query it with cmd/digecs (or any stub resolver that
// can set the EDNS0 client-subnet option).
//
//	eumdns -addr 127.0.0.1:5300 -policy eu
//	digecs -server 127.0.0.1:5300 -subnet 203.0.113.0/24 www.cdn.example.net
//
// With -config, the zone, policy, world, platform, hosted customer CNAMEs
// and low-level NS sites come from a JSON document (see internal/config);
// when the config lists sites, eumdns serves the two-level Figure 3
// hierarchy: this process is the top level, delegating to the listed
// low-level sites.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	"net/netip"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"eum/internal/authority"
	"eum/internal/cdn"
	"eum/internal/config"
	"eum/internal/dnsclient"
	"eum/internal/dnsmsg"
	"eum/internal/dnsserver"
	"eum/internal/mapdist"
	"eum/internal/mapmaker"
	"eum/internal/mapping"
	"eum/internal/netmodel"
	"eum/internal/telemetry"
	"eum/internal/world"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:5300", "UDP+TCP listen address")
	adminAddr := flag.String("admin", "",
		"admin HTTP listen address for /metrics, /healthz, /mapz and /debug/pprof (empty disables)")
	configPath := flag.String("config", "", "JSON config file (overrides the flags below)")
	zone := flag.String("zone", "cdn.example.net", "served zone")
	policyName := flag.String("policy", "eu", "mapping policy: ns, eu, or cans")
	blocks := flag.Int("blocks", 8000, "synthetic world size in /24 client blocks")
	deployments := flag.Int("deployments", 600, "CDN deployment locations")
	seed := flag.Int64("seed", 1, "generation seed")
	mapRefresh := flag.Duration("map-refresh", 10*time.Second,
		"MapMaker publish cadence (0 disables the background refresh loop)")
	queueDepth := flag.Int("queue-depth", 0, "pending-query queue bound (0 = 4x workers)")
	shed := flag.String("shed", "block", "overload policy when the queue is full: block, drop or refuse")
	serveDeadline := flag.Duration("serve-deadline", 0,
		"drop queued queries older than this before serving (0 disables)")
	rrlRate := flag.Float64("rrl-rate", 0,
		"response-rate limit per source prefix, responses/second (0 disables)")
	rrlBurst := flag.Int("rrl-burst", 0, "response-rate limiter burst allowance (0 = default 8)")
	shards := flag.Int("shards", 0,
		"SO_REUSEPORT listener shards (0 = one per CPU on linux, 1 elsewhere)")
	batch := flag.Int("batch", 0,
		"datagrams drained/flushed per syscall via recvmmsg/sendmmsg, linux only (0 or 1 = single-packet)")
	staleMaxAge := flag.Duration("stale-max-age", 30*time.Second,
		"serve-stale watchdog: map age entering degraded answers (0 disables)")
	balanceFactor := flag.Float64("balance-factor", 0,
		"distance-vs-load balance knob: rank tables order deployments by ping x (1 + balance x util^2); 0 keeps pure proximity mapping")
	loadThreshold := flag.Float64("load-threshold", 0,
		"smoothed utilization entering the overloaded state (0 = default 0.8; requires -balance-factor)")
	loadHysteresis := flag.Float64("load-hysteresis", 0,
		"overload exit threshold is the enter threshold minus this band (0 = default 0.15; requires -balance-factor)")
	loadEWMA := flag.Duration("load-ewma", 0,
		"utilization smoothing time constant (0 = default 30s; requires -balance-factor)")
	loadMaxAge := flag.Duration("load-max-age", 0,
		"load observations older than this score proximity-only (0 = default 3x the EWMA window; requires -balance-factor)")
	mapmakerAddr := flag.String("mapmaker-addr", "",
		"replica mode: fetch maps from this MapMaker admin address instead of building locally")
	publisher := flag.Bool("publisher", false,
		"serve encoded map snapshots to replicas on the admin listener (requires -admin)")
	mapFetch := flag.Duration("map-fetch", 5*time.Second,
		"replica mode: map fetch cadence against the MapMaker")
	verbose := flag.Bool("verbose", false, "log every query (structured JSON on stderr)")
	flag.Parse()

	cfg := config.Default()
	cfg.Zone = *zone
	cfg.Policy = strings.ToLower(*policyName)
	cfg.World = config.WorldConfig{Seed: *seed, Blocks: *blocks}
	cfg.Platform = config.PlatformConfig{Seed: *seed, Deployments: *deployments}
	cfg.QueueDepth = *queueDepth
	cfg.ShedPolicy = *shed
	cfg.ServeDeadlineMillis = int(serveDeadline.Milliseconds())
	cfg.RRLRate = *rrlRate
	cfg.RRLBurst = *rrlBurst
	cfg.ListenerShards = *shards
	cfg.BatchSize = *batch
	cfg.StaleMaxAgeSeconds = int(staleMaxAge.Seconds())
	cfg.MapRefreshSeconds = int(mapRefresh.Seconds())
	cfg.BalanceFactor = *balanceFactor
	cfg.LoadRebuildThreshold = *loadThreshold
	cfg.LoadHysteresis = *loadHysteresis
	cfg.LoadEWMASeconds = loadEWMA.Seconds()
	cfg.LoadSignalMaxAgeSeconds = loadMaxAge.Seconds()
	cfg.AdminAddr = *adminAddr
	if *mapmakerAddr != "" {
		cfg.Mode = config.ModeReplica
		cfg.MapMakerAddr = *mapmakerAddr
		cfg.MapFetchSeconds = int(mapFetch.Seconds())
	} else if *publisher {
		cfg.Mode = config.ModePublisher
	}
	if *configPath != "" {
		var err error
		if cfg, err = config.Load(*configPath); err != nil {
			log.Fatal(err)
		}
		// -admin still applies beside a config file (like -addr, the
		// listen addresses stay operator-controlled), and so do the
		// distribution-role flags.
		if *adminAddr != "" {
			cfg.AdminAddr = *adminAddr
		}
		if *mapmakerAddr != "" {
			cfg.Mode = config.ModeReplica
			cfg.MapMakerAddr = *mapmakerAddr
			cfg.MapFetchSeconds = int(mapFetch.Seconds())
		} else if *publisher {
			cfg.Mode = config.ModePublisher
		}
	}
	if err := cfg.Validate(); err != nil {
		log.Fatal(err)
	}
	mode, err := cfg.DistMode()
	if err != nil {
		log.Fatal(err)
	}
	policy, err := cfg.MappingPolicy()
	if err != nil {
		log.Fatal(err)
	}

	log.Printf("generating world (%d blocks) and platform (%d deployments)...",
		cfg.World.Blocks, cfg.Platform.Deployments)
	w := world.MustGenerate(world.Config{
		Seed: cfg.World.Seed, NumBlocks: cfg.World.Blocks, IPv6Fraction: cfg.World.IPv6Fraction,
	})
	platform := cdn.MustGenerateUniverse(w, cdn.Config{
		Seed: cfg.Platform.Seed, NumDeployments: cfg.Platform.Deployments,
		ServersPerDeployment: cfg.Platform.ServersPer,
	})
	system := mapping.NewSystem(w, platform, netmodel.NewDefault(), mapping.Config{
		Policy:         policy,
		PingTargets:    cfg.World.Blocks / 10,
		PartitionMiles: cfg.PartitionMiles,
		BalanceFactor:  cfg.BalanceFactor,
	})

	// Control plane. Standalone and publisher nodes run a background
	// MapMaker republishing the map on a cadence (and on change-feed
	// signals); a publisher additionally encodes each published snapshot
	// for replicas. A replica builds nothing: it rewinds to epoch 0 and
	// installs whatever the MapMaker node ships. Either way the serving
	// path below only ever reads the currently installed snapshot.
	ctx, stopControl := context.WithCancel(context.Background())
	defer stopControl()
	var (
		mm      *mapmaker.MapMaker
		lm      *mapmaker.LoadMonitor
		pub     *mapdist.Publisher
		fetcher *mapdist.Fetcher
	)
	if mode == config.ModeReplica {
		system.BootstrapReplica()
		fetcher, err = mapdist.NewFetcher(system, platform, mapdist.FetcherConfig{
			Source:   cfg.MapMakerAddr,
			Interval: cfg.FetchInterval(),
		})
		if err != nil {
			log.Fatal(err)
		}
		go fetcher.Run(ctx)
		log.Printf("replica: fetching maps from %s every %v", cfg.MapMakerAddr, cfg.FetchInterval())
	} else {
		refresh := *mapRefresh
		if *configPath != "" {
			refresh = time.Duration(cfg.MapRefreshSeconds) * time.Second
		}
		mm = mapmaker.New(system, mapmaker.Config{Interval: refresh})
		if mode == config.ModePublisher {
			pub = mapdist.NewPublisher(system, platform, mapdist.PublisherConfig{})
			mm.SetOnPublish(pub.Observe)
			log.Printf("publisher: serving snapshots at %s%s", cfg.AdminAddr, mapdist.SnapshotPath)
		}
		if refresh > 0 {
			go mm.Run(ctx)
			log.Printf("map maker publishing every %v", refresh)
		}
		// Load-feedback loop: a monitor smooths the platform's demand
		// gauges, republishes through the change feed on overload
		// crossings, and serves the builder its utilization signal. Only
		// map-building nodes run one — a replica serves whatever order the
		// publisher's loop already baked into the snapshot.
		if lc, ok := cfg.LoadSignalConfig(); ok {
			lm = mapmaker.NewLoadMonitor(mm, lc)
			system.SetUtilizationSource(lm)
			go runLoadMonitor(ctx, lm, platform, time.Second)
			log.Printf("load feedback: balance %g, overload enter %g / exit %g, ewma %v",
				cfg.BalanceFactor, lm.Config().EnterUtil,
				lm.Config().EnterUtil-lm.Config().Hysteresis, lm.Config().EWMA)
		}
	}

	handler, auth, described, err := buildHandler(cfg, system, platform)
	if err != nil {
		log.Fatal(err)
	}
	// With the feedback loop on, every full mapping decision records one
	// demand unit on its picked server, so the utilization gauges the
	// monitor samples actually move with query traffic (runLoadMonitor
	// decays them back toward zero on the EWMA time constant).
	if auth != nil && cfg.BalanceFactor > 0 {
		auth.SetAnswerDemand(1)
	}
	if *verbose {
		handler = dnsserver.WithLogging(handler, slog.New(slog.NewJSONHandler(os.Stderr, nil)))
	}

	serverCfg, err := cfg.ServerConfig()
	if err != nil {
		log.Fatal(err)
	}
	srv, err := dnsserver.ListenConfig(*addr, handler, serverCfg)
	if err != nil {
		log.Fatal(err)
	}
	// Give the authority one answer cache per listener shard, so shards
	// never contend on cache lines (the server routes queries through
	// ServeDNSShard because Authority is ShardAware).
	if auth != nil {
		auth.SetShards(srv.Shards())
	}
	tcpSrv, err := dnsserver.ListenTCP(*addr, handler)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("%s on %s (udp+tcp, %d shards), policy %s", described, srv.Addr(), srv.Shards(), policy)

	// Observability plane: one registry aggregating every subsystem's
	// counters, served over a separate admin HTTP listener. The health
	// monitor (no fault injection in a live process — it reflects real
	// liveness flags) feeds the MapMaker's change feed, and a low-rate
	// self-probe exercises the full socket path through a real DNS client.
	if cfg.AdminAddr != "" {
		reg := telemetry.NewRegistry()
		// A replica has no MapMaker to nudge; its health monitor still
		// tracks liveness for the metrics plane, it just signals nobody.
		onChange := func(*cdn.Deployment) {}
		if mm != nil {
			onChange = mm.OnDeploymentChange
		}
		mon, err := cdn.NewMonitor(platform, &cdn.ScheduledFaults{}, 10*time.Second, onChange)
		if err != nil {
			log.Fatal(err)
		}
		if cfg.HealthFlapThreshold > 0 {
			mon.SetFlapThreshold(cfg.HealthFlapThreshold)
		}
		probe := &dnsclient.Client{}
		registerAll(reg, srv, auth, mm, mon, probe)
		if fetcher != nil {
			fetcher.RegisterMetrics(reg)
		}
		if pub != nil {
			pub.RegisterMetrics(reg)
		}
		platform.RegisterLoadMetrics(reg)
		if lm != nil {
			lm.RegisterMetrics(reg)
		}
		mux := newAdminMux(adminState{
			reg: reg, system: system, mm: mm, lm: lm, auth: auth,
			fetcher: fetcher, pub: pub, mode: mode, blocks: cfg.World.Blocks,
			platform: platform, balance: cfg.BalanceFactor,
		})
		go func() {
			log.Printf("admin HTTP on %s (/metrics /healthz /mapz /debug/pprof)", cfg.AdminAddr)
			if err := http.ListenAndServe(cfg.AdminAddr, mux); err != nil {
				log.Printf("admin listener: %v", err)
			}
		}()
		go runHealthMonitor(ctx, mon, time.Second)
		go runSelfProbe(ctx, probe, srv.Addr().String(), dnsmsg.Name("whoami."+cfg.Zone), 10*time.Second)
	}

	// Print a few real client subnets to try.
	fmt.Println("example queries:")
	for i, b := range w.Blocks {
		if i >= 3 {
			break
		}
		fmt.Printf("  digecs -server %s -subnet %s www.b.%s\n", srv.Addr(), b.Prefix, cfg.Zone)
	}
	fmt.Printf("  digecs -server %s whoami.%s TXT\n", srv.Addr(), cfg.Zone)

	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		log.Printf("shutting down")
		stopControl()
		_ = srv.Close()
		_ = tcpSrv.Close()
	}()

	go func() { _ = tcpSrv.Serve() }()
	if err := srv.Serve(); err != nil {
		log.Fatal(err)
	}
}

// buildHandler wires either a flat authority or the two-level hierarchy,
// per the config. The *Authority return is non-nil only in the flat case;
// the admin plane uses it for the degradation ladder and mapping counters.
func buildHandler(cfg config.Config, system *mapping.System, platform *cdn.Platform) (dnsserver.Handler, *authority.Authority, string, error) {
	if len(cfg.Sites) == 0 && len(cfg.Customers) == 0 {
		a, err := authority.New(dnsmsg.Name(cfg.Zone), system)
		if err != nil {
			return nil, nil, "", err
		}
		// Arm the serve-stale watchdog: if the MapMaker stalls or dies, the
		// authority degrades answers instead of serving an ancient map as
		// fresh (see authority.DegradeConfig).
		a.SetDegradeConfig(cfg.DegradeConfig())
		return a, a, "authoritative for " + string(a.Zone()), nil
	}
	tl, err := authority.NewTopLevel(dnsmsg.Name(cfg.Zone), system)
	if err != nil {
		return nil, nil, "", err
	}
	for alias, target := range cfg.Customers {
		if err := tl.RegisterCustomer(dnsmsg.Name(alias), dnsmsg.Name(target)); err != nil {
			return nil, nil, "", err
		}
	}
	for _, s := range cfg.Sites {
		addr, err := netip.ParseAddr(s.Addr)
		if err != nil {
			return nil, nil, "", err
		}
		if err := tl.AddSite(authority.NSSite{
			Host:       dnsmsg.Name(s.Host),
			Addr:       addr,
			Deployment: platform.Deployments[s.DeploymentIndex],
		}); err != nil {
			return nil, nil, "", err
		}
	}
	return tl, nil, "top-level authority for " + string(tl.Zone()), nil
}
