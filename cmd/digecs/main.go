// Command digecs is a minimal dig-like DNS query tool with EDNS0
// client-subnet support, for exercising eumdns (or any ECS-aware
// authoritative server):
//
//	digecs -server 127.0.0.1:5300 -subnet 203.0.113.0/24 www.cdn.example.net
//	digecs -server 127.0.0.1:5300 whoami.cdn.example.net TXT
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/netip"
	"strings"
	"time"

	"eum/internal/dnsclient"
	"eum/internal/dnsmsg"
)

func main() {
	server := flag.String("server", "127.0.0.1:5300", "DNS server host:port")
	subnet := flag.String("subnet", "", "EDNS0 client-subnet, e.g. 203.0.113.0/24 (empty = no ECS)")
	timeout := flag.Duration("timeout", 3*time.Second, "query timeout")
	flag.Parse()

	if flag.NArg() < 1 {
		log.Fatal("usage: digecs [-server host:port] [-subnet prefix] name [type]")
	}
	name := dnsmsg.Name(flag.Arg(0))
	qtype := dnsmsg.TypeA
	if flag.NArg() > 1 {
		switch strings.ToUpper(flag.Arg(1)) {
		case "A":
			qtype = dnsmsg.TypeA
		case "AAAA":
			qtype = dnsmsg.TypeAAAA
		case "TXT":
			qtype = dnsmsg.TypeTXT
		case "NS":
			qtype = dnsmsg.TypeNS
		case "CNAME":
			qtype = dnsmsg.TypeCNAME
		case "SOA":
			qtype = dnsmsg.TypeSOA
		case "ANY":
			qtype = dnsmsg.TypeANY
		default:
			log.Fatalf("unsupported query type %q", flag.Arg(1))
		}
	}

	var prefix netip.Prefix
	if *subnet != "" {
		p, err := netip.ParsePrefix(*subnet)
		if err != nil {
			log.Fatalf("bad -subnet: %v", err)
		}
		prefix = p
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	c := &dnsclient.Client{Timeout: *timeout}
	start := time.Now()
	resp, err := c.Lookup(ctx, *server, name, qtype, prefix)
	if err != nil {
		log.Fatalf("query failed: %v", err)
	}
	fmt.Printf(";; server %s, rtt %v\n", *server, time.Since(start).Round(time.Microsecond))
	fmt.Print(resp.String())
}
