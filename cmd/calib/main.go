// Command calib prints calibration statistics of the generated world for
// comparison against the paper's §3 measurements.
package main

import (
	"fmt"

	"eum/internal/stats"
	"eum/internal/world"
)

func main() {
	w := world.MustGenerate(world.Config{Seed: 1, NumBlocks: 20000})
	var all, pub stats.Dataset
	for _, b := range w.Blocks {
		d := b.ClientLDNSDistance()
		all.Add(d, b.Demand)
		if b.LDNS.IsPublic() {
			pub.Add(d, b.Demand)
		}
	}
	fmt.Printf("blocks=%d ldns=%d total=%.3f pubfrac=%.3f\n",
		len(w.Blocks), len(w.LDNSes), w.TotalDemand(), w.PublicDemandFraction())
	fmt.Printf("all: median=%.0f mean=%.0f p90=%.0f\n", all.Median(), all.Mean(), all.Percentile(90))
	fmt.Printf("pub: median=%.0f mean=%.0f p90=%.0f\n", pub.Median(), pub.Mean(), pub.Percentile(90))
	for _, c := range w.Countries {
		var d stats.Dataset
		for _, b := range c.Blocks {
			d.Add(b.ClientLDNSDistance(), b.Demand)
		}
		fmt.Printf("%s median=%6.0f p75=%6.0f p95=%6.0f\n",
			c.Code(), d.Median(), d.Percentile(75), d.Percentile(95))
	}
	cidrs := w.BGPCIDRs()
	fmt.Printf("cidrs=%d ratio=%.2f\n", len(cidrs), float64(len(w.Blocks))/float64(len(cidrs)))
}
