GO ?= go

# Hot-path micro-benchmarks (see DESIGN.md "Hot path & concurrency model").
HOTBENCH = BenchmarkDNSMessagePack|BenchmarkDNSMessageUnpack|BenchmarkMappingMap|BenchmarkAuthorityServeDNS|BenchmarkEndToEndUDP|BenchmarkServerThroughput

# Serial-vs-parallel simulation benchmarks (see DESIGN.md "Parallel
# simulation & determinism model"; numbers recorded in BENCH_sim.json).
SIMBENCH = BenchmarkWorldGenerate|BenchmarkRolloutTimeline|BenchmarkFig25Sweep

# Control-plane/data-plane benchmarks: snapshot publish latency and serving
# under map churn, snapshot-swap vs the old generation-invalidation design
# (see DESIGN.md "Control plane / data plane"; numbers in BENCH_map.json).
SNAPBENCH = BenchmarkSnapshotSwap|BenchmarkServingUnderMapChurn

# Sharded serving-plane sweep: SO_REUSEPORT shards x recvmmsg batch size
# (see DESIGN.md "Sharded serving plane"; numbers in BENCH_qps.json).
QPSBENCH = BenchmarkShardedThroughput

# Million-block mapping plane: full build, warm and one-target incremental
# republish, resident bytes/block over the Huge lab (see DESIGN.md
# "Partitioned mapping & incremental builds"; numbers in BENCH_scale.json).
SCALEBENCH = BenchmarkSnapshotScale

# Distribution-plane codec over the Huge lab: full image encode/decode and
# the one-target delta (see DESIGN.md "Distributed map distribution";
# numbers and the <10% delta guard in BENCH_wire.json).
WIREBENCH = BenchmarkSnapshotWire

# Load-feedback republish cost over the Huge lab: proximity-only warm
# publish, armed-but-idle gauges, and the ReasonLoad full re-rank (see
# DESIGN.md "Load-aware mapping & feedback control"; numbers in
# BENCH_load.json).
LOADBENCH = BenchmarkLoadRepublish

.PHONY: all check vet build test race chaos load-chaos dist-chaos obs crossbuild scale-smoke ecsgrid-smoke bench bench-hot bench-sim bench-snapshot bench-qps bench-scale bench-wire bench-load bench-figures

all: check

# The full verification gate: vet, build, tests with the race detector,
# the chaos harness (faultnet integration tests, also under -race), the
# distribution-plane partition/heal drill, then the observability smoke
# test against a live in-process stack, then cross-compiles of the
# non-linux / non-amd64 fallback paths.
check: vet build race chaos load-chaos dist-chaos obs scale-smoke ecsgrid-smoke crossbuild

vet:
	$(GO) vet ./...
	$(GO) vet ./cmd/...

build:
	$(GO) build ./...
	$(GO) build ./examples/...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Chaos harness: the full UDP serving plane under injected packet loss,
# duplication, reordering, latency jitter, server outages and MapMaker
# build crashes (see DESIGN.md "Failure model & degradation ladder").
# -v so the shed/stale/RRL counter log lines land in CI output.
chaos:
	$(GO) test -race -v -run 'TestChaos|TestEndToEndThroughFaults' ./internal/faultnet/

# Load-feedback chaos drill: flash crowd + deployment brownout + 10%
# packet loss + continuous map churn against the closed feedback loop,
# asserting >=99% lookup success, zero damping-window violations, and
# graceful proximity-only degradation when the load feed dies (see
# DESIGN.md "Load-aware mapping & feedback control").
load-chaos:
	$(GO) test -race -v -run 'TestLoadChaos' ./internal/faultnet/

# Distribution-plane drill: one publisher and three fetching replicas over
# real sockets, a total control-network partition cut with faultnet, >=99%
# query success through the round-robin client while replicas degrade
# independently, reconvergence within two fetch intervals after the heal
# (see DESIGN.md "Distributed map distribution").
dist-chaos:
	$(GO) test -race -v -run 'TestDistClusterPartitionHeal' ./internal/mapdist/

# Observability smoke test: boots the full stack (world, platform, map
# maker, authority, live UDP server) in-process, serves a real query, and
# scrapes /metrics, /healthz and /mapz (see DESIGN.md "Observability
# plane").
obs:
	$(GO) test -race -v -run 'TestObsSmoke|TestHealthzDegraded|TestAdminDistRoles' ./cmd/eumdns/

# Small-N smoke of the million-block (Huge) codepath: partitioned layout,
# interned arena, incremental republish and the resident bytes/block
# ceiling at a ~50k-block world (seconds, not minutes).
scale-smoke:
	$(GO) test -v -run 'TestSnapshotScaleSmoke' .

# Public-resolver era grids: adoption x ECS-prefix win matrix and the
# query-amplification sweep, under -race and at two worker counts (the
# grids must be byte-identical either way; see DESIGN.md "Public-resolver
# era model").
ecsgrid-smoke:
	$(GO) test -race -v -run 'TestECSGrid|TestAmpGrid|TestGridWorkerCountInvariant' ./internal/experiments/

# Hot-path benchmarks with allocation counts. TestServeDNSAllocGuard runs
# first: it fails the target if ServeDNS (telemetry armed) exceeds the
# allocs/op budget recorded in BENCH_map.json.
bench-hot:
	$(GO) test -run 'TestServeDNSAllocGuard' -bench '$(HOTBENCH)' -benchmem .

# Parallel simulation engine: serial vs parallel for world generation, the
# roll-out timeline and the Fig 25 deployment sweep.
bench-sim:
	$(GO) test -run 'TestNone' -bench '$(SIMBENCH)' -benchmem .

# Snapshot publish latency and churn serving comparison.
bench-snapshot:
	$(GO) test -run 'TestNone' -bench '$(SNAPBENCH)' -benchmem .

# Sharded serving plane: shard-count x batch-size throughput sweep.
bench-qps:
	$(GO) test -run 'TestNone' -bench '$(QPSBENCH)' -benchmem -benchtime 2s .

# The SO_REUSEPORT and recvmmsg/sendmmsg code is build-tagged per OS and
# arch; compile the portable fallbacks so a tag typo can't rot unnoticed.
crossbuild:
	GOOS=darwin GOARCH=arm64 $(GO) build ./...
	GOOS=windows GOARCH=amd64 $(GO) build ./...
	GOOS=linux GOARCH=arm64 $(GO) build ./...

# Million-block mapping plane over the Huge lab (about a minute: the lab
# itself generates in seconds, the cold build dominates).
bench-scale:
	$(GO) test -run 'TestNone' -bench '$(SCALEBENCH)' -benchmem .

# Regenerate every paper figure as benchmarks (slow; see EXPERIMENTS.md).
bench-figures:
	$(GO) test -run 'TestNone' -bench . -benchmem .

# Distribution-plane codec over the Huge lab (the wire sizes and the
# one-target delta ratio guard recorded in BENCH_wire.json).
bench-wire:
	$(GO) test -run 'TestNone' -bench '$(WIREBENCH)' -benchmem .

# Load-feedback republish cost over the Huge lab (numbers recorded in
# BENCH_load.json; beta0_warm must stay within noise of BENCH_scale.json's
# warm_republish).
bench-load:
	$(GO) test -run 'TestNone' -bench '$(LOADBENCH)' -benchmem .

bench: bench-hot bench-sim bench-qps bench-scale bench-wire bench-load
