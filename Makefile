GO ?= go

# Hot-path micro-benchmarks (see DESIGN.md "Hot path & concurrency model").
HOTBENCH = BenchmarkDNSMessagePack|BenchmarkDNSMessageUnpack|BenchmarkMappingMap|BenchmarkAuthorityServeDNS|BenchmarkEndToEndUDP|BenchmarkServerThroughput

.PHONY: all check vet build test race bench bench-hot bench-figures

all: check

# The full verification gate: vet, build, tests with the race detector.
check: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Hot-path benchmarks with allocation counts.
bench-hot:
	$(GO) test -run 'TestNone' -bench '$(HOTBENCH)' -benchmem .

# Regenerate every paper figure as benchmarks (slow; see EXPERIMENTS.md).
bench-figures:
	$(GO) test -run 'TestNone' -bench . -benchmem .

bench: bench-hot
