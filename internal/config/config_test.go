package config

import (
	"path/filepath"
	"strings"
	"testing"
	"time"

	"eum/internal/dnsserver"
	"eum/internal/mapping"
)

func TestDefaultValid(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

func TestParseFull(t *testing.T) {
	doc := `{
		"zone": "cdn.example.net",
		"policy": "cans",
		"ttl_seconds": 30,
		"world": {"seed": 7, "blocks": 2000, "ipv6_fraction": 0.2},
		"platform": {"seed": 7, "deployments": 100, "servers_per_deployment": 4},
		"customers": {"www.shop.example": "e1.b.cdn.example.net"},
		"sites": [
			{"host": "n1.ns.cdn.example.net", "addr": "127.0.0.2", "deployment_index": 0}
		]
	}`
	cfg, err := Parse(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Zone != "cdn.example.net" || cfg.TTLSeconds != 30 {
		t.Errorf("cfg = %+v", cfg)
	}
	pol, err := cfg.MappingPolicy()
	if err != nil || pol != mapping.ClientAwareNS {
		t.Errorf("policy = %v, %v", pol, err)
	}
	if cfg.World.IPv6Fraction != 0.2 || cfg.Platform.ServersPer != 4 {
		t.Errorf("nested cfg = %+v", cfg)
	}
}

func TestParseDefaultsApply(t *testing.T) {
	cfg, err := Parse(strings.NewReader(`{"zone": "z.net", "world": {"seed": 1, "blocks": 10}, "platform": {"seed": 1, "deployments": 5}}`))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.TTLSeconds != 20 {
		t.Errorf("default TTL = %d", cfg.TTLSeconds)
	}
	if pol, _ := cfg.MappingPolicy(); pol != mapping.EndUser {
		t.Errorf("default policy = %v", pol)
	}
}

func TestParseRejectsUnknownFields(t *testing.T) {
	if _, err := Parse(strings.NewReader(`{"zone": "z.net", "bogus": 1}`)); err == nil {
		t.Error("unknown field accepted")
	}
}

func TestValidateErrors(t *testing.T) {
	base := Default()
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"empty-zone", func(c *Config) { c.Zone = " " }},
		{"bad-policy", func(c *Config) { c.Policy = "anycast" }},
		{"negative-ttl", func(c *Config) { c.TTLSeconds = -1 }},
		{"zero-blocks", func(c *Config) { c.World.Blocks = 0 }},
		{"bad-v6-fraction", func(c *Config) { c.World.IPv6Fraction = 1.5 }},
		{"zero-deployments", func(c *Config) { c.Platform.Deployments = 0 }},
		{"customer-outside-zone", func(c *Config) {
			c.Customers = map[string]string{"www.x.example": "www.other.org"}
		}},
		{"empty-customer-alias", func(c *Config) {
			c.Customers = map[string]string{" ": "e1.b.cdn.example.net"}
		}},
		{"site-outside-zone", func(c *Config) {
			c.Sites = []SiteConfig{{Host: "ns.other.org", Addr: "10.0.0.1"}}
		}},
		{"site-bad-addr", func(c *Config) {
			c.Sites = []SiteConfig{{Host: "n.cdn.example.net", Addr: "nonsense"}}
		}},
		{"site-bad-index", func(c *Config) {
			c.Sites = []SiteConfig{{Host: "n.cdn.example.net", Addr: "10.0.0.1", DeploymentIndex: 10_000}}
		}},
		{"negative-queue-depth", func(c *Config) { c.QueueDepth = -1 }},
		{"bad-shed-policy", func(c *Config) { c.ShedPolicy = "panic" }},
		{"negative-serve-deadline", func(c *Config) { c.ServeDeadlineMillis = -5 }},
		{"negative-rrl-rate", func(c *Config) { c.RRLRate = -1 }},
		{"rrl-rate-above-1e9", func(c *Config) { c.RRLRate = 2e9; c.RRLBurst = 8 }},
		{"negative-rrl-burst", func(c *Config) { c.RRLBurst = -1 }},
		{"rrl-burst-without-rate", func(c *Config) { c.RRLRate = 0; c.RRLBurst = 4 }},
		{"negative-stale-max-age", func(c *Config) { c.StaleMaxAgeSeconds = -1 }},
		{"stale-age-below-refresh", func(c *Config) {
			c.MapRefreshSeconds = 60
			c.StaleMaxAgeSeconds = 10
		}},
		{"negative-flap-threshold", func(c *Config) { c.HealthFlapThreshold = -1 }},
		{"negative-listener-shards", func(c *Config) { c.ListenerShards = -2 }},
		{"negative-batch-size", func(c *Config) { c.BatchSize = -1 }},
		{"batch-size-above-64", func(c *Config) { c.BatchSize = 65 }},
		{"negative-balance-factor", func(c *Config) { c.BalanceFactor = -1 }},
		{"negative-load-threshold", func(c *Config) { c.BalanceFactor = 2; c.LoadRebuildThreshold = -0.5 }},
		{"negative-load-hysteresis", func(c *Config) { c.BalanceFactor = 2; c.LoadHysteresis = -0.1 }},
		{"negative-load-ewma", func(c *Config) { c.BalanceFactor = 2; c.LoadEWMASeconds = -30 }},
		{"negative-load-max-age", func(c *Config) { c.BalanceFactor = 2; c.LoadSignalMaxAgeSeconds = -90 }},
		{"load-knob-without-balance", func(c *Config) { c.LoadRebuildThreshold = 0.9 }},
		{"hysteresis-swallows-enter", func(c *Config) {
			c.BalanceFactor = 2
			c.LoadRebuildThreshold = 0.7
			c.LoadHysteresis = 0.7
		}},
		{"hysteresis-above-default-enter", func(c *Config) {
			c.BalanceFactor = 2
			c.LoadHysteresis = 0.9 // enter defaults to 0.8
		}},
		{"max-age-below-ewma", func(c *Config) {
			c.BalanceFactor = 2
			c.LoadEWMASeconds = 60
			c.LoadSignalMaxAgeSeconds = 45
		}},
		{"max-age-below-default-ewma", func(c *Config) {
			c.BalanceFactor = 2
			c.LoadSignalMaxAgeSeconds = 10 // EWMA defaults to 30s
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base
			tc.mutate(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Error("invalid config accepted")
			}
		})
	}
}

// TestValidateRRLMessages pins the RRL validation errors to actionable
// text: the operator who hits one should learn what the limiter would
// actually have done with the value, not just that it was rejected.
func TestValidateRRLMessages(t *testing.T) {
	cfg := Default()
	cfg.RRLRate = 1e9
	err := cfg.Validate()
	if err == nil || !strings.Contains(err.Error(), "truncate to zero") {
		t.Errorf("rrl_rate 1e9 error = %v, want mention of interval truncation", err)
	}

	cfg = Default()
	cfg.RRLBurst = -3
	err = cfg.Validate()
	if err == nil || !strings.Contains(err.Error(), "at least 1 response") {
		t.Errorf("rrl_burst -3 error = %v, want mention of the minimum allowance", err)
	}
}

// TestDistModes covers the distribution-plane role knobs: which
// mode/address/interval combinations are coherent, and that the
// staleness watchdog cross-checks whichever cadence actually refreshes
// the map (the local rebuild in standalone/publisher mode, the fetch
// interval on a replica).
func TestDistModes(t *testing.T) {
	valid := []struct {
		name   string
		mutate func(*Config)
	}{
		{"replica", func(c *Config) {
			c.Mode = "replica"
			c.MapMakerAddr = "127.0.0.1:9153"
		}},
		{"replica-explicit-fetch", func(c *Config) {
			c.Mode = "replica"
			c.MapMakerAddr = "127.0.0.1:9153"
			c.MapFetchSeconds = 3
		}},
		{"publisher", func(c *Config) {
			c.Mode = "publisher"
			c.AdminAddr = "127.0.0.1:9153"
		}},
		{"explicit-standalone", func(c *Config) { c.Mode = "Standalone" }},
	}
	for _, tc := range valid {
		t.Run(tc.name, func(t *testing.T) {
			cfg := Default()
			tc.mutate(&cfg)
			if err := cfg.Validate(); err != nil {
				t.Errorf("valid config rejected: %v", err)
			}
		})
	}

	invalid := []struct {
		name   string
		mutate func(*Config)
		want   string
	}{
		{"unknown-mode", func(c *Config) { c.Mode = "anycast" }, "unknown mode"},
		{"replica-without-addr", func(c *Config) { c.Mode = "replica" }, "mapmaker_addr"},
		{"replica-bad-addr", func(c *Config) {
			c.Mode = "replica"
			c.MapMakerAddr = "not-an-addr"
		}, "mapmaker_addr"},
		{"publisher-without-admin", func(c *Config) { c.Mode = "publisher" }, "admin_addr"},
		{"standalone-with-mapmaker-addr", func(c *Config) {
			c.MapMakerAddr = "127.0.0.1:9153"
		}, `set mode to "replica"`},
		{"standalone-with-fetch-interval", func(c *Config) {
			c.MapFetchSeconds = 5
		}, "only applies to replicas"},
		{"negative-fetch-interval", func(c *Config) {
			c.Mode = "replica"
			c.MapMakerAddr = "127.0.0.1:9153"
			c.MapFetchSeconds = -1
		}, "map_fetch_seconds"},
		{"replica-stale-below-fetch", func(c *Config) {
			c.Mode = "replica"
			c.MapMakerAddr = "127.0.0.1:9153"
			c.MapFetchSeconds = 60
			c.StaleMaxAgeSeconds = 10
		}, "fetch cadence"},
		{"stale-armed-without-refresh", func(c *Config) {
			c.MapRefreshSeconds = 0
			c.StaleMaxAgeSeconds = 30
		}, "map_refresh_seconds is 0"},
	}
	for _, tc := range invalid {
		t.Run(tc.name, func(t *testing.T) {
			cfg := Default()
			tc.mutate(&cfg)
			err := cfg.Validate()
			if err == nil {
				t.Fatal("invalid config accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestShardingKnobs covers listener_shards/batch_size validation and
// translation, including the off-Linux rejections (exercised by swapping
// the package's serverGOOS hook, since CI runs on Linux).
func TestShardingKnobs(t *testing.T) {
	cfg := Default()
	cfg.ListenerShards = 4
	cfg.BatchSize = 32
	if serverGOOS == "linux" {
		if err := cfg.Validate(); err != nil {
			t.Fatalf("linux sharding config rejected: %v", err)
		}
		sc, err := cfg.ServerConfig()
		if err != nil {
			t.Fatal(err)
		}
		if sc.ListenerShards != 4 || sc.BatchSize != 32 {
			t.Errorf("server config = %+v, want shards 4 batch 32", sc)
		}
	}

	defer func(goos string) { serverGOOS = goos }(serverGOOS)
	serverGOOS = "darwin"
	err := cfg.Validate()
	if err == nil || !strings.Contains(err.Error(), "SO_REUSEPORT") || !strings.Contains(err.Error(), "darwin") {
		t.Errorf("off-linux listener_shards error = %v, want actionable SO_REUSEPORT message", err)
	}
	cfg.ListenerShards = 1
	err = cfg.Validate()
	if err == nil || !strings.Contains(err.Error(), "recvmmsg") || !strings.Contains(err.Error(), "batch_size") {
		t.Errorf("off-linux batch_size error = %v, want actionable recvmmsg message", err)
	}
	cfg.BatchSize = 1
	if err := cfg.Validate(); err != nil {
		t.Errorf("single-packet single-shard config rejected off linux: %v", err)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	cfg := Default()
	cfg.Policy = "ns"
	cfg.Customers = map[string]string{"www.shop.example": "e9.b.cdn.example.net"}
	path := filepath.Join(t.TempDir(), "eum.json")
	if err := cfg.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Policy != "ns" || got.Customers["www.shop.example"] != "e9.b.cdn.example.net" {
		t.Errorf("round trip = %+v", got)
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load("/nonexistent/eum.json"); err == nil {
		t.Error("missing file accepted")
	}
}

func TestServingKnobsTranslate(t *testing.T) {
	cfg := Default()
	cfg.QueueDepth = 128
	cfg.ShedPolicy = "refuse"
	cfg.ServeDeadlineMillis = 250
	cfg.RRLRate = 20
	cfg.RRLBurst = 5
	cfg.StaleMaxAgeSeconds = 45
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}

	sc, err := cfg.ServerConfig()
	if err != nil {
		t.Fatal(err)
	}
	if sc.QueueDepth != 128 || sc.OnOverload != dnsserver.ShedRefuse {
		t.Errorf("server config = %+v", sc)
	}
	if sc.ServeDeadline != 250*time.Millisecond {
		t.Errorf("serve deadline = %v", sc.ServeDeadline)
	}
	if sc.RRLRate != 20 || sc.RRLBurst != 5 {
		t.Errorf("rrl = %v/%d", sc.RRLRate, sc.RRLBurst)
	}

	dc := cfg.DegradeConfig()
	if dc.StaleAfter != 45*time.Second {
		t.Errorf("stale after = %v", dc.StaleAfter)
	}
}

// TestValidateLoadKnobMessages pins the load-feedback validation errors
// to actionable text: each names the conflicting knobs and says which way
// to move them.
func TestValidateLoadKnobMessages(t *testing.T) {
	cfg := Default()
	cfg.BalanceFactor = 2
	cfg.LoadRebuildThreshold = 0.6
	cfg.LoadHysteresis = 0.8
	err := cfg.Validate()
	if err == nil || !strings.Contains(err.Error(), "never be declared recovered") {
		t.Errorf("wide hysteresis error = %v, want mention of the unreachable exit threshold", err)
	}

	cfg = Default()
	cfg.BalanceFactor = 2
	cfg.LoadEWMASeconds = 120
	cfg.LoadSignalMaxAgeSeconds = 60
	err = cfg.Validate()
	if err == nil || !strings.Contains(err.Error(), "proximity-only") {
		t.Errorf("short max-age error = %v, want mention of permanent proximity-only degradation", err)
	}

	cfg = Default()
	cfg.LoadEWMASeconds = 60 // without balance_factor
	err = cfg.Validate()
	if err == nil || !strings.Contains(err.Error(), "balance_factor") {
		t.Errorf("inert knob error = %v, want mention of balance_factor", err)
	}
}

func TestLoadSignalConfigTranslate(t *testing.T) {
	cfg := Default()
	if _, ok := cfg.LoadSignalConfig(); ok {
		t.Fatal("balance_factor 0 produced a load signal config")
	}

	cfg.BalanceFactor = 2
	cfg.LoadRebuildThreshold = 0.9
	cfg.LoadHysteresis = 0.25
	cfg.LoadEWMASeconds = 12.5
	cfg.LoadSignalMaxAgeSeconds = 60
	cfg.MapRefreshSeconds = 8
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	lc, ok := cfg.LoadSignalConfig()
	if !ok {
		t.Fatal("load signal config missing despite balance_factor")
	}
	if lc.EnterUtil != 0.9 || lc.Hysteresis != 0.25 {
		t.Errorf("thresholds = %g/%g", lc.EnterUtil, lc.Hysteresis)
	}
	if lc.EWMA != 12500*time.Millisecond {
		t.Errorf("ewma = %v, want 12.5s", lc.EWMA)
	}
	if lc.MaxSignalAge != time.Minute {
		t.Errorf("max signal age = %v", lc.MaxSignalAge)
	}
	if lc.MinRepublish != 4*time.Second {
		t.Errorf("min republish = %v, want half the 8s refresh cadence", lc.MinRepublish)
	}

	// Unset knobs stay zero so the monitor applies its own defaults.
	cfg = Default()
	cfg.BalanceFactor = 1
	lc, ok = cfg.LoadSignalConfig()
	if !ok || lc.EnterUtil != 0 || lc.EWMA != 0 {
		t.Errorf("partial config = %+v, %v (zero fields should defer to monitor defaults)", lc, ok)
	}
}

func TestDefaultServingKnobs(t *testing.T) {
	cfg := Default()
	if cfg.StaleMaxAgeSeconds != 30 || cfg.HealthFlapThreshold != 3 || cfg.ShedPolicy != "block" {
		t.Errorf("defaults = %+v", cfg)
	}
	sc, err := cfg.ServerConfig()
	if err != nil {
		t.Fatal(err)
	}
	if sc.OnOverload != dnsserver.ShedBlock || sc.RRLRate != 0 {
		t.Errorf("default server config = %+v", sc)
	}
}
