package config

import (
	"path/filepath"
	"strings"
	"testing"

	"eum/internal/mapping"
)

func TestDefaultValid(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

func TestParseFull(t *testing.T) {
	doc := `{
		"zone": "cdn.example.net",
		"policy": "cans",
		"ttl_seconds": 30,
		"world": {"seed": 7, "blocks": 2000, "ipv6_fraction": 0.2},
		"platform": {"seed": 7, "deployments": 100, "servers_per_deployment": 4},
		"customers": {"www.shop.example": "e1.b.cdn.example.net"},
		"sites": [
			{"host": "n1.ns.cdn.example.net", "addr": "127.0.0.2", "deployment_index": 0}
		]
	}`
	cfg, err := Parse(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Zone != "cdn.example.net" || cfg.TTLSeconds != 30 {
		t.Errorf("cfg = %+v", cfg)
	}
	pol, err := cfg.MappingPolicy()
	if err != nil || pol != mapping.ClientAwareNS {
		t.Errorf("policy = %v, %v", pol, err)
	}
	if cfg.World.IPv6Fraction != 0.2 || cfg.Platform.ServersPer != 4 {
		t.Errorf("nested cfg = %+v", cfg)
	}
}

func TestParseDefaultsApply(t *testing.T) {
	cfg, err := Parse(strings.NewReader(`{"zone": "z.net", "world": {"seed": 1, "blocks": 10}, "platform": {"seed": 1, "deployments": 5}}`))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.TTLSeconds != 20 {
		t.Errorf("default TTL = %d", cfg.TTLSeconds)
	}
	if pol, _ := cfg.MappingPolicy(); pol != mapping.EndUser {
		t.Errorf("default policy = %v", pol)
	}
}

func TestParseRejectsUnknownFields(t *testing.T) {
	if _, err := Parse(strings.NewReader(`{"zone": "z.net", "bogus": 1}`)); err == nil {
		t.Error("unknown field accepted")
	}
}

func TestValidateErrors(t *testing.T) {
	base := Default()
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"empty-zone", func(c *Config) { c.Zone = " " }},
		{"bad-policy", func(c *Config) { c.Policy = "anycast" }},
		{"negative-ttl", func(c *Config) { c.TTLSeconds = -1 }},
		{"zero-blocks", func(c *Config) { c.World.Blocks = 0 }},
		{"bad-v6-fraction", func(c *Config) { c.World.IPv6Fraction = 1.5 }},
		{"zero-deployments", func(c *Config) { c.Platform.Deployments = 0 }},
		{"customer-outside-zone", func(c *Config) {
			c.Customers = map[string]string{"www.x.example": "www.other.org"}
		}},
		{"empty-customer-alias", func(c *Config) {
			c.Customers = map[string]string{" ": "e1.b.cdn.example.net"}
		}},
		{"site-outside-zone", func(c *Config) {
			c.Sites = []SiteConfig{{Host: "ns.other.org", Addr: "10.0.0.1"}}
		}},
		{"site-bad-addr", func(c *Config) {
			c.Sites = []SiteConfig{{Host: "n.cdn.example.net", Addr: "nonsense"}}
		}},
		{"site-bad-index", func(c *Config) {
			c.Sites = []SiteConfig{{Host: "n.cdn.example.net", Addr: "10.0.0.1", DeploymentIndex: 10_000}}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base
			tc.mutate(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Error("invalid config accepted")
			}
		})
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	cfg := Default()
	cfg.Policy = "ns"
	cfg.Customers = map[string]string{"www.shop.example": "e9.b.cdn.example.net"}
	path := filepath.Join(t.TempDir(), "eum.json")
	if err := cfg.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Policy != "ns" || got.Customers["www.shop.example"] != "e9.b.cdn.example.net" {
		t.Errorf("round trip = %+v", got)
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load("/nonexistent/eum.json"); err == nil {
		t.Error("missing file accepted")
	}
}
