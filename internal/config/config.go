// Package config loads and validates the declarative configuration of an
// authoritative deployment: the served zone, the routing policy, the
// synthetic world and platform parameters, hosted customer CNAMEs, and
// low-level name-server sites. The eumdns command accepts such a file via
// -config, so a whole Figure 3 hierarchy can be described declaratively.
package config

import (
	"encoding/json"
	"fmt"
	"io"
	"net/netip"
	"os"
	"runtime"
	"strings"
	"time"

	"eum/internal/authority"
	"eum/internal/dnsserver"
	"eum/internal/mapmaker"
	"eum/internal/mapping"
)

// serverGOOS is the platform the serving knobs are validated against.
// A variable (not runtime.GOOS inline) so tests can exercise the
// off-Linux rejection paths from a Linux CI box.
var serverGOOS = runtime.GOOS

// Config is the top-level configuration document.
type Config struct {
	// Zone is the CDN zone served, e.g. "cdn.example.net".
	Zone string `json:"zone"`
	// Policy is "ns", "eu" or "cans" (default "eu").
	Policy string `json:"policy,omitempty"`
	// TTLSeconds is the DNS answer TTL (default 20).
	TTLSeconds int `json:"ttl_seconds,omitempty"`
	// MapRefreshSeconds is the MapMaker's periodic publish cadence — how
	// often the control plane rebuilds and swaps in a fresh map snapshot
	// even without health or policy signals (default 10).
	MapRefreshSeconds int `json:"map_refresh_seconds,omitempty"`

	// Mode selects the process's role in the map-distribution plane:
	// "standalone" (default: build and serve in one process), "publisher"
	// (build locally and serve snapshots to replicas on the admin plane),
	// or "replica" (serve maps fetched from a publisher instead of
	// building them).
	Mode string `json:"mode,omitempty"`
	// MapMakerAddr is the publisher's admin address ("host:port") a
	// replica fetches snapshots from. Required in replica mode, forbidden
	// otherwise.
	MapMakerAddr string `json:"mapmaker_addr,omitempty"`
	// MapFetchSeconds is the replica's snapshot fetch interval (default
	// 5). Replica mode only. Cross-checked against
	// stale_max_age_seconds: a replica's map can never be fresher than
	// its fetch cadence.
	MapFetchSeconds int `json:"map_fetch_seconds,omitempty"`

	// QueueDepth bounds the DNS server's pending-query queue; 0 keeps the
	// server default (4x workers).
	QueueDepth int `json:"queue_depth,omitempty"`
	// ShedPolicy is what happens to queries arriving while the queue is
	// full: "block", "drop" or "refuse" (default "block").
	ShedPolicy string `json:"shed_policy,omitempty"`
	// ServeDeadlineMillis drops queued queries older than this before
	// serving them; 0 disables the deadline.
	ServeDeadlineMillis int `json:"serve_deadline_ms,omitempty"`
	// RRLRate enables per-source-prefix response-rate limiting at this
	// many responses per second; 0 disables it.
	RRLRate float64 `json:"rrl_rate,omitempty"`
	// RRLBurst is the rate limiter's burst allowance (requires rrl_rate;
	// 0 keeps the server default of 8).
	RRLBurst int `json:"rrl_burst,omitempty"`
	// ListenerShards is the number of shared-nothing SO_REUSEPORT listener
	// shards the DNS server binds; 0 keeps the server default (one per
	// GOMAXPROCS on Linux, 1 elsewhere). Values above 1 require Linux.
	ListenerShards int `json:"listener_shards,omitempty"`
	// BatchSize is how many datagrams each shard may drain or flush per
	// syscall via recvmmsg/sendmmsg (Linux only); 0 or 1 selects the
	// portable single-packet path. Maximum 64.
	BatchSize int `json:"batch_size,omitempty"`
	// AdminAddr, when set, serves the admin HTTP endpoints (/metrics,
	// /healthz, /mapz, pprof) on this address, e.g. "127.0.0.1:9153".
	// Empty disables the admin listener.
	AdminAddr string `json:"admin_addr,omitempty"`
	// StaleMaxAgeSeconds arms the authority's staleness watchdog: a map
	// older than this serves stale (clamped TTL), then falls back, then
	// SERVFAILs (see authority.DegradeConfig). 0 disables the watchdog;
	// default 30. Must be at least map_refresh_seconds, or every map
	// would count as stale the moment it published.
	StaleMaxAgeSeconds int `json:"stale_max_age_seconds,omitempty"`
	// HealthFlapThreshold is how many consecutive disagreeing probes flip
	// a server's liveness (flap damping); default 3, minimum 1.
	HealthFlapThreshold int `json:"health_flap_threshold,omitempty"`

	// PartitionMiles clusters client blocks and resolvers into mapping
	// partitions by routing signature (geo cell of this radius + origin
	// AS + access type); partitions share rank tables, so memory per
	// block drops to a few bytes. 0 keeps per-endpoint partitions
	// (byte-identical to unpartitioned mapping). Million-block worlds
	// want a metro-sized radius such as 50.
	PartitionMiles float64 `json:"partition_miles,omitempty"`

	// BalanceFactor is the distance-vs-load balance knob β: published rank
	// tables order deployments by ping·(1 + β·utilization²), spilling
	// demand to next-nearest deployments as utilization climbs. 0 (the
	// default) keeps pure proximity mapping and disables the load-feedback
	// loop below.
	BalanceFactor float64 `json:"balance_factor,omitempty"`
	// LoadRebuildThreshold is the smoothed utilization at which a
	// deployment counts as overloaded and the map is republished (the
	// feedback loop's enter threshold). 0 keeps the default 0.8. Requires
	// balance_factor.
	LoadRebuildThreshold float64 `json:"load_rebuild_threshold,omitempty"`
	// LoadHysteresis is how far below the rebuild threshold the smoothed
	// utilization must fall before the deployment counts as recovered
	// (exit threshold = load_rebuild_threshold − load_hysteresis); the
	// band prevents republish flip-flop around a single threshold. 0 keeps
	// the default 0.15. Requires balance_factor.
	LoadHysteresis float64 `json:"load_hysteresis,omitempty"`
	// LoadEWMASeconds is the smoothing time constant over the raw
	// utilization gauges; the loop reacts to sustained overload, not
	// instantaneous spikes. 0 keeps the default 30. Requires
	// balance_factor.
	LoadEWMASeconds float64 `json:"load_ewma_seconds,omitempty"`
	// LoadSignalMaxAgeSeconds is how stale a deployment's last load
	// observation may be before builds ignore it and score that deployment
	// proximity-only (a dead telemetry feed must not freeze demand on old
	// readings). 0 keeps the default of 3× the EWMA window; must exceed
	// the EWMA window when set. Requires balance_factor.
	LoadSignalMaxAgeSeconds float64 `json:"load_signal_max_age_seconds,omitempty"`

	// World parameterises the synthetic Internet.
	World WorldConfig `json:"world"`
	// Platform parameterises the CDN deployment universe.
	Platform PlatformConfig `json:"platform"`

	// Customers maps hosted customer domains to content domains under
	// the zone (served as CNAMEs by the top-level authority).
	Customers map[string]string `json:"customers,omitempty"`
	// Sites are low-level name-server sites for delegation; empty means
	// a flat (single-level) authority.
	Sites []SiteConfig `json:"sites,omitempty"`
}

// WorldConfig selects world-generation parameters.
type WorldConfig struct {
	Seed         int64   `json:"seed"`
	Blocks       int     `json:"blocks"`
	IPv6Fraction float64 `json:"ipv6_fraction,omitempty"`
}

// PlatformConfig selects deployment-universe parameters.
type PlatformConfig struct {
	Seed        int64 `json:"seed"`
	Deployments int   `json:"deployments"`
	ServersPer  int   `json:"servers_per_deployment,omitempty"`
}

// SiteConfig is one low-level name-server site.
type SiteConfig struct {
	// Host is the NS host name (must be under the zone).
	Host string `json:"host"`
	// Addr is the glue address.
	Addr string `json:"addr"`
	// DeploymentIndex selects the platform deployment hosting the site.
	DeploymentIndex int `json:"deployment_index"`
}

// Default returns a runnable default configuration.
func Default() Config {
	return Config{
		Zone:                "cdn.example.net",
		Policy:              "eu",
		TTLSeconds:          20,
		MapRefreshSeconds:   10,
		ShedPolicy:          "block",
		StaleMaxAgeSeconds:  30,
		HealthFlapThreshold: 3,
		World:               WorldConfig{Seed: 1, Blocks: 8000},
		Platform:            PlatformConfig{Seed: 1, Deployments: 600},
	}
}

// Load reads and validates a configuration file.
func Load(path string) (Config, error) {
	f, err := os.Open(path)
	if err != nil {
		return Config{}, fmt.Errorf("config: %w", err)
	}
	defer f.Close()
	return Parse(f)
}

// Parse reads and validates a configuration document.
func Parse(r io.Reader) (Config, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	cfg := Default()
	if err := dec.Decode(&cfg); err != nil {
		return Config{}, fmt.Errorf("config: %w", err)
	}
	if err := cfg.Validate(); err != nil {
		return Config{}, err
	}
	return cfg, nil
}

// Validate checks the configuration for consistency.
func (c Config) Validate() error {
	if strings.TrimSpace(c.Zone) == "" {
		return fmt.Errorf("config: zone is required")
	}
	if _, err := c.MappingPolicy(); err != nil {
		return err
	}
	if c.TTLSeconds < 0 {
		return fmt.Errorf("config: negative ttl_seconds")
	}
	if c.MapRefreshSeconds < 0 {
		return fmt.Errorf("config: negative map_refresh_seconds")
	}
	if c.QueueDepth < 0 {
		return fmt.Errorf("config: negative queue_depth")
	}
	if c.PartitionMiles < 0 {
		return fmt.Errorf("config: negative partition_miles (0 disables clustering)")
	}
	if err := c.validateLoadKnobs(); err != nil {
		return err
	}
	if _, err := dnsserver.ParseShedPolicy(c.ShedPolicy); err != nil {
		return fmt.Errorf("config: shed_policy: %w", err)
	}
	if c.ServeDeadlineMillis < 0 {
		return fmt.Errorf("config: negative serve_deadline_ms")
	}
	if c.RRLRate < 0 {
		return fmt.Errorf("config: negative rrl_rate")
	}
	if c.RRLRate >= 1e9 {
		return fmt.Errorf("config: rrl_rate %g is at or above 1e9 responses/second per prefix, which the limiter cannot represent (its nanosecond interval would truncate to zero); leave rrl_rate unset to disable limiting", c.RRLRate)
	}
	if c.RRLBurst < 0 {
		return fmt.Errorf("config: rrl_burst %d: the limiter needs a burst allowance of at least 1 response, or every query would be rejected (0 selects the server default of 8)", c.RRLBurst)
	}
	if c.RRLBurst > 0 && c.RRLRate == 0 {
		return fmt.Errorf("config: rrl_burst set without rrl_rate (the limiter is disabled)")
	}
	if c.ListenerShards < 0 {
		return fmt.Errorf("config: listener_shards %d: the server needs at least 1 listener shard (0 selects the default: one per CPU on linux)", c.ListenerShards)
	}
	if c.ListenerShards > 1 && serverGOOS != "linux" {
		return fmt.Errorf("config: listener_shards %d requires SO_REUSEPORT, which this build only wires up on linux (running on %s); set listener_shards to 1", c.ListenerShards, serverGOOS)
	}
	if c.BatchSize < 0 || c.BatchSize > 64 {
		return fmt.Errorf("config: batch_size %d out of range [1, 64] (0 selects the single-packet default)", c.BatchSize)
	}
	if c.BatchSize > 1 && serverGOOS != "linux" {
		return fmt.Errorf("config: batch_size %d requires recvmmsg/sendmmsg, which this build only wires up on linux (running on %s); set batch_size to 1", c.BatchSize, serverGOOS)
	}
	if c.AdminAddr != "" {
		if _, err := netip.ParseAddrPort(c.AdminAddr); err != nil {
			return fmt.Errorf("config: admin_addr: %w", err)
		}
	}
	mode, err := c.DistMode()
	if err != nil {
		return err
	}
	switch mode {
	case ModeReplica:
		if c.MapMakerAddr == "" {
			return fmt.Errorf("config: mode %q needs mapmaker_addr (the publisher's admin address, e.g. \"127.0.0.1:9153\") to fetch maps from", mode)
		}
		if _, err := netip.ParseAddrPort(c.MapMakerAddr); err != nil {
			return fmt.Errorf("config: mapmaker_addr: %w", err)
		}
	case ModePublisher:
		if c.AdminAddr == "" {
			return fmt.Errorf("config: mode %q serves snapshots to replicas over the admin plane; set admin_addr (e.g. \"127.0.0.1:9153\")", mode)
		}
		fallthrough
	default:
		if c.MapMakerAddr != "" {
			return fmt.Errorf("config: mapmaker_addr is set but mode is %q; set mode to \"replica\" to fetch maps from it, or remove mapmaker_addr", mode)
		}
		if c.MapFetchSeconds != 0 {
			return fmt.Errorf("config: map_fetch_seconds is set but mode is %q; the fetch interval only applies to replicas (set mode to \"replica\", or remove map_fetch_seconds)", mode)
		}
	}
	if c.MapFetchSeconds < 0 {
		return fmt.Errorf("config: negative map_fetch_seconds")
	}
	if c.StaleMaxAgeSeconds < 0 {
		return fmt.Errorf("config: negative stale_max_age_seconds")
	}
	// Staleness cross-checks: the watchdog must be slower than whatever
	// cadence actually refreshes the map — the local rebuild interval in
	// standalone/publisher mode, the fetch interval on a replica —
	// or every map would degrade the moment it published.
	if c.StaleMaxAgeSeconds > 0 {
		if mode == ModeReplica {
			if fetch := int(c.FetchInterval() / time.Second); c.StaleMaxAgeSeconds < fetch {
				return fmt.Errorf("config: stale_max_age_seconds (%d) below the replica fetch interval map_fetch_seconds (%d): a replica's map can never be fresher than its fetch cadence, so every fetched map would already count as stale; raise stale_max_age_seconds to a multiple of the fetch interval (headroom for retries) or fetch more often",
					c.StaleMaxAgeSeconds, fetch)
			}
		} else {
			if c.MapRefreshSeconds == 0 {
				return fmt.Errorf("config: stale_max_age_seconds (%d) arms the staleness watchdog, but map_refresh_seconds is 0 so the periodic rebuild that would keep the map fresh is disabled: the map would degrade to stale %ds after boot and only ever recover on health or policy signals; set map_refresh_seconds below stale_max_age_seconds, or set stale_max_age_seconds to 0 to disarm the watchdog",
					c.StaleMaxAgeSeconds, c.StaleMaxAgeSeconds)
			}
			if c.StaleMaxAgeSeconds < c.MapRefreshSeconds {
				return fmt.Errorf("config: stale_max_age_seconds (%d) below map_refresh_seconds (%d): every map would be stale the moment it published; raise stale_max_age_seconds or refresh more often",
					c.StaleMaxAgeSeconds, c.MapRefreshSeconds)
			}
		}
	}
	if c.HealthFlapThreshold < 0 {
		return fmt.Errorf("config: negative health_flap_threshold")
	}
	if c.World.Blocks <= 0 {
		return fmt.Errorf("config: world.blocks must be positive")
	}
	if c.World.IPv6Fraction < 0 || c.World.IPv6Fraction > 1 {
		return fmt.Errorf("config: world.ipv6_fraction out of [0,1]")
	}
	if c.Platform.Deployments <= 0 {
		return fmt.Errorf("config: platform.deployments must be positive")
	}
	zone := strings.ToLower(strings.TrimSuffix(c.Zone, "."))
	for alias, target := range c.Customers {
		if strings.TrimSpace(alias) == "" {
			return fmt.Errorf("config: empty customer alias")
		}
		t := strings.ToLower(strings.TrimSuffix(target, "."))
		if !strings.HasSuffix(t, ".b."+zone) {
			return fmt.Errorf("config: customer %q target %q not under b.%s", alias, target, zone)
		}
	}
	for i, s := range c.Sites {
		h := strings.ToLower(strings.TrimSuffix(s.Host, "."))
		if !strings.HasSuffix(h, "."+zone) {
			return fmt.Errorf("config: site %d host %q outside zone %q", i, s.Host, c.Zone)
		}
		if _, err := netip.ParseAddr(s.Addr); err != nil {
			return fmt.Errorf("config: site %d addr: %w", i, err)
		}
		if s.DeploymentIndex < 0 || s.DeploymentIndex >= c.Platform.Deployments {
			return fmt.Errorf("config: site %d deployment_index %d out of range", i, s.DeploymentIndex)
		}
	}
	return nil
}

// validateLoadKnobs cross-checks the load-feedback knobs: negatives are
// rejected, load_* knobs are inert without balance_factor, the hysteresis
// band must leave a usable exit threshold below the enter threshold, and
// the staleness limit must exceed the smoothing window it judges.
func (c Config) validateLoadKnobs() error {
	if c.BalanceFactor < 0 {
		return fmt.Errorf("config: negative balance_factor (0 disables load-aware scoring)")
	}
	loadKnobs := []struct {
		name string
		v    float64
	}{
		{"load_rebuild_threshold", c.LoadRebuildThreshold},
		{"load_hysteresis", c.LoadHysteresis},
		{"load_ewma_seconds", c.LoadEWMASeconds},
		{"load_signal_max_age_seconds", c.LoadSignalMaxAgeSeconds},
	}
	for _, k := range loadKnobs {
		if k.v < 0 {
			return fmt.Errorf("config: negative %s", k.name)
		}
	}
	if c.BalanceFactor == 0 {
		for _, k := range loadKnobs {
			if k.v != 0 {
				return fmt.Errorf("config: %s is set but balance_factor is 0, so the load-feedback loop is disabled and the knob has no effect; set balance_factor (e.g. 2) to enable load-aware mapping, or remove %s", k.name, k.name)
			}
		}
		return nil
	}
	enter := c.LoadRebuildThreshold
	if enter == 0 {
		enter = mapmaker.DefaultLoadEnterUtil
	}
	hyst := c.LoadHysteresis
	if hyst == 0 {
		hyst = mapmaker.DefaultLoadHysteresis
	}
	if hyst >= enter {
		return fmt.Errorf("config: load_hysteresis (%g) at or above the enter threshold load_rebuild_threshold (%g): the exit threshold is enter minus hysteresis, so a band this wide puts it at or below zero and an overloaded deployment could never be declared recovered; lower load_hysteresis or raise load_rebuild_threshold", hyst, enter)
	}
	ewma := c.LoadEWMASeconds
	if ewma == 0 {
		ewma = mapmaker.DefaultLoadEWMA.Seconds()
	}
	if c.LoadSignalMaxAgeSeconds > 0 && c.LoadSignalMaxAgeSeconds <= ewma {
		return fmt.Errorf("config: load_signal_max_age_seconds (%g) at or below the smoothing window load_ewma_seconds (%g): every reading would age out before the EWMA could accumulate a full window of history, permanently degrading scoring to proximity-only; raise load_signal_max_age_seconds above the window (the default is 3x it)", c.LoadSignalMaxAgeSeconds, ewma)
	}
	return nil
}

// Distribution-plane modes (see Config.Mode).
const (
	ModeStandalone = "standalone"
	ModePublisher  = "publisher"
	ModeReplica    = "replica"
)

// defaultMapFetchSeconds is the replica fetch interval when
// map_fetch_seconds is unset.
const defaultMapFetchSeconds = 5

// DistMode normalises the mode string (empty means standalone).
func (c Config) DistMode() (string, error) {
	switch m := strings.ToLower(strings.TrimSpace(c.Mode)); m {
	case "":
		return ModeStandalone, nil
	case ModeStandalone, ModePublisher, ModeReplica:
		return m, nil
	default:
		return "", fmt.Errorf("config: unknown mode %q (want standalone, publisher, or replica)", c.Mode)
	}
}

// FetchInterval returns the replica's snapshot fetch interval.
func (c Config) FetchInterval() time.Duration {
	s := c.MapFetchSeconds
	if s == 0 {
		s = defaultMapFetchSeconds
	}
	return time.Duration(s) * time.Second
}

// MappingPolicy translates the policy string.
func (c Config) MappingPolicy() (mapping.Policy, error) {
	switch strings.ToLower(strings.TrimSpace(c.Policy)) {
	case "", "eu":
		return mapping.EndUser, nil
	case "ns":
		return mapping.NSBased, nil
	case "cans":
		return mapping.ClientAwareNS, nil
	}
	return 0, fmt.Errorf("config: unknown policy %q (want ns, eu, or cans)", c.Policy)
}

// ServerConfig translates the serving-plane knobs into a dnsserver.Config
// (concurrency fields left at server defaults).
func (c Config) ServerConfig() (dnsserver.Config, error) {
	shed, err := dnsserver.ParseShedPolicy(c.ShedPolicy)
	if err != nil {
		return dnsserver.Config{}, fmt.Errorf("config: shed_policy: %w", err)
	}
	return dnsserver.Config{
		QueueDepth:     c.QueueDepth,
		OnOverload:     shed,
		ServeDeadline:  time.Duration(c.ServeDeadlineMillis) * time.Millisecond,
		RRLRate:        c.RRLRate,
		RRLBurst:       c.RRLBurst,
		ListenerShards: c.ListenerShards,
		BatchSize:      c.BatchSize,
	}, nil
}

// LoadSignalConfig translates the load-feedback knobs into the map
// maker's monitor configuration. ok is false when balance_factor is 0:
// the loop is disabled and no monitor should be started. Zero-valued
// fields in the returned config take the monitor defaults; MinRepublish
// is derived from the map refresh cadence so load-triggered republishes
// never outpace the periodic rebuild by more than 2x.
func (c Config) LoadSignalConfig() (mapmaker.LoadSignalConfig, bool) {
	if c.BalanceFactor <= 0 {
		return mapmaker.LoadSignalConfig{}, false
	}
	lc := mapmaker.LoadSignalConfig{
		EnterUtil:    c.LoadRebuildThreshold,
		Hysteresis:   c.LoadHysteresis,
		EWMA:         time.Duration(c.LoadEWMASeconds * float64(time.Second)),
		MaxSignalAge: time.Duration(c.LoadSignalMaxAgeSeconds * float64(time.Second)),
	}
	if c.MapRefreshSeconds > 0 {
		lc.MinRepublish = time.Duration(c.MapRefreshSeconds) * time.Second / 2
	}
	return lc, true
}

// DegradeConfig translates the staleness knob into the authority's
// watchdog configuration (derived thresholds take the authority defaults).
func (c Config) DegradeConfig() authority.DegradeConfig {
	return authority.DegradeConfig{
		StaleAfter: time.Duration(c.StaleMaxAgeSeconds) * time.Second,
	}
}

// Save writes the configuration as formatted JSON.
func (c Config) Save(path string) error {
	data, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return fmt.Errorf("config: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
