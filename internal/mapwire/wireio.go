package mapwire

import (
	"encoding/binary"
	"fmt"
	"math"
)

// writer appends little-endian primitives to a pre-sized buffer. Encoders
// compute the exact image size up front, so finish() never reallocates.
type writer struct {
	b []byte
}

func newWriter(size int) *writer { return &writer{b: make([]byte, 0, size)} }

func (w *writer) raw(p []byte) { w.b = append(w.b, p...) }
func (w *writer) u8(v uint8)   { w.b = append(w.b, v) }
func (w *writer) u16(v uint16) { w.b = binary.LittleEndian.AppendUint16(w.b, v) }
func (w *writer) u32(v uint32) { w.b = binary.LittleEndian.AppendUint32(w.b, v) }
func (w *writer) u64(v uint64) { w.b = binary.LittleEndian.AppendUint64(w.b, v) }
func (w *writer) i32(v int32)  { w.u32(uint32(v)) }
func (w *writer) f64(v float64) {
	w.u64(math.Float64bits(v))
}

// finish appends the FNV-1a checksum trailer and returns the image.
func (w *writer) finish() []byte {
	return binary.LittleEndian.AppendUint64(w.b, fnvSum(w.b))
}

// reader consumes little-endian primitives with sticky error handling:
// the first out-of-bounds read latches err and every later read returns
// zero, so decode loops stay straight-line and check r.err at the end
// (or wherever a length is about to size an allocation).
type reader struct {
	b   []byte
	off int
	err error
}

func (r *reader) need(n int) bool {
	if r.err != nil {
		return false
	}
	if len(r.b)-r.off < n {
		r.err = fmt.Errorf("%w: truncated at offset %d (need %d of %d bytes)",
			ErrFormat, r.off, n, len(r.b)-r.off)
		return false
	}
	return true
}

func (r *reader) u8() uint8 {
	if !r.need(1) {
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

func (r *reader) u32() uint32 {
	if !r.need(4) {
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v
}

func (r *reader) u64() uint64 {
	if !r.need(8) {
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v
}

func (r *reader) i32() int32   { return int32(r.u32()) }
func (r *reader) f64() float64 { return math.Float64frombits(r.u64()) }

// sliceLen reads an element count and validates it against the bytes
// actually remaining (each element needs at least elemSize bytes), so a
// corrupt length can never size a huge allocation or push reads past the
// buffer.
func (r *reader) sliceLen(elemSize uint64) uint64 {
	n := uint64(r.u32())
	if r.err == nil && elemSize > 0 && n > uint64(len(r.b)-r.off)/elemSize {
		r.err = fmt.Errorf("%w: length %d exceeds %d remaining bytes (elem %d)",
			ErrFormat, n, len(r.b)-r.off, elemSize)
		return 0
	}
	return n
}

// FNV-1a, matching the constants used across the repo.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func fnvSum(p []byte) uint64 {
	h := uint64(fnvOffset64)
	for _, c := range p {
		h ^= uint64(c)
		h *= fnvPrime64
	}
	return h
}

// fnvHasher accumulates u64 words; PlatformFingerprint uses it.
type fnvHasher struct{ sum uint64 }

func newFNV() *fnvHasher { return &fnvHasher{sum: fnvOffset64} }

func (h *fnvHasher) u64(v uint64) {
	for i := 0; i < 8; i++ {
		h.sum ^= (v >> (8 * i)) & 0xff
		h.sum *= fnvPrime64
	}
}
