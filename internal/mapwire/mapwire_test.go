package mapwire

import (
	"bytes"
	"errors"
	"sync"
	"testing"

	"eum/internal/cdn"
	"eum/internal/mapping"
	"eum/internal/netmodel"
	"eum/internal/world"
)

// The fixture world is deliberately small: wire-format correctness does
// not depend on scale (scale_guard_test.go and the bench guard cover
// that), and the fuzz target rebuilds snapshots from this fixture on
// every corpus entry.
var (
	fixOnce sync.Once
	fixW    *world.World
	fixP    *cdn.Platform
	fixCfg  = mapping.Config{Policy: mapping.EndUser, PingTargets: 150, PartitionMiles: 75}
)

func fixture() (*world.World, *cdn.Platform) {
	fixOnce.Do(func() {
		fixW = world.MustGenerate(world.Config{Seed: 11, NumBlocks: 1200, IPv6Fraction: 0.2})
		fixP = cdn.MustGenerateUniverse(fixW, cdn.Config{Seed: 11, NumDeployments: 80, ServersPerDeployment: 4})
	})
	return fixW, fixP
}

// shiftNet perturbs pings for chosen endpoints, standing in for the
// measurement sweeps that dirty single targets between epochs.
type shiftNet struct {
	base  mapping.Prober
	shift map[uint64]float64
}

func (p *shiftNet) PingMs(a, b netmodel.Endpoint) float64 {
	return p.base.PingMs(a, b) + p.shift[a.ID] + p.shift[b.ID]
}

// sameAnswers fails unless both snapshots rank identically (deployment
// pointer and bitwise score) for every block and LDNS in the world,
// plus the unknown-ID fallback rows.
func sameAnswers(t *testing.T, got, want *mapping.Snapshot, w *world.World) {
	t.Helper()
	check := func(id uint64, client bool, what string) {
		t.Helper()
		g, wnt := got.RankOf(id, client), want.RankOf(id, client)
		if len(g) != len(wnt) {
			t.Fatalf("%s %d: %d ranked, want %d", what, id, len(g), len(wnt))
		}
		for j := range g {
			if g[j] != wnt[j] {
				t.Fatalf("%s %d rank %d: %s/%v, want %s/%v", what, id, j,
					g[j].Deployment.Name, g[j].Score, wnt[j].Deployment.Name, wnt[j].Score)
			}
		}
	}
	for _, blk := range w.Blocks {
		check(blk.ID, true, "block")
	}
	for _, l := range w.LDNSes {
		check(l.ID, false, "ldns")
	}
	check(1<<63+12345, true, "unknown-block")
	check(1<<63+54321, false, "unknown-ldns")
}

func TestFullRoundTrip(t *testing.T) {
	w, p := fixture()
	for _, pol := range []mapping.Policy{mapping.NSBased, mapping.EndUser, mapping.ClientAwareNS} {
		t.Run(pol.String(), func(t *testing.T) {
			sn := mapping.NewSnapshotBuilder(w, p, netmodel.NewDefault(), fixCfg).Build(7, pol)
			c := NewCodec(p)
			data, err := c.EncodeFull(sn)
			if err != nil {
				t.Fatal(err)
			}
			h, err := ParseHeader(data)
			if err != nil {
				t.Fatal(err)
			}
			if h.Kind != KindFull || h.Epoch != 7 || h.Policy != pol {
				t.Fatalf("header %+v: want full/epoch 7/%s", h, pol)
			}
			dec, err := c.Decode(data, nil)
			if err != nil {
				t.Fatal(err)
			}
			if dec.Epoch() != sn.Epoch() || dec.Policy() != sn.Policy() ||
				dec.TTL() != sn.TTL() || dec.Tables() != sn.Tables() {
				t.Fatalf("decoded epoch=%d policy=%s ttl=%v tables=%d, want %d/%s/%v/%d",
					dec.Epoch(), dec.Policy(), dec.TTL(), dec.Tables(),
					sn.Epoch(), sn.Policy(), sn.TTL(), sn.Tables())
			}
			if dec.LayoutFingerprint() != sn.LayoutFingerprint() {
				t.Fatal("decoded layout fingerprint differs")
			}
			sameAnswers(t, dec, sn, w)
			again, err := c.EncodeFull(dec)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(data, again) {
				t.Fatalf("re-encode differs: %d vs %d bytes", len(again), len(data))
			}
		})
	}
}

func TestDeltaRoundTrip(t *testing.T) {
	w, p := fixture()
	prober := &shiftNet{base: netmodel.NewDefault(), shift: map[uint64]float64{}}
	b := mapping.NewSnapshotBuilder(w, p, prober, fixCfg)
	sn1 := b.Build(1, mapping.EndUser)

	target, ok := b.Scorer().TargetFor(w.LDNSes[3].Endpoint())
	if !ok {
		t.Fatal("no ping target for LDNS 3")
	}
	prober.shift[target.ID] += 40
	b.MarkMeasurementsDirty(target.ID)
	sn2 := b.Build(2, mapping.EndUser)

	c := NewCodec(p)
	full1, err := c.EncodeFull(sn1)
	if err != nil {
		t.Fatal(err)
	}
	full2, err := c.EncodeFull(sn2)
	if err != nil {
		t.Fatal(err)
	}
	delta, ok, err := c.EncodeDelta(sn1, sn2)
	if err != nil || !ok {
		t.Fatalf("EncodeDelta: ok=%v err=%v", ok, err)
	}
	if h, err := ParseHeader(delta); err != nil || h.Kind != KindDelta || h.BaseEpoch != 1 {
		t.Fatalf("delta header %+v err=%v", h, err)
	}
	// The one-target dirty set must ship a small fraction of the full
	// image even at this toy scale; at Huge-lab scale the bench guard
	// holds the same ratio under 10%.
	if 10*len(delta) >= len(full2) {
		t.Fatalf("delta %d bytes is not <10%% of full %d bytes", len(delta), len(full2))
	}

	// Replica path: install the decoded full epoch 1, then apply the delta.
	dec1, err := c.Decode(full1, nil)
	if err != nil {
		t.Fatal(err)
	}
	dec2, err := c.Decode(delta, dec1)
	if err != nil {
		t.Fatal(err)
	}
	if dec2.Epoch() != 2 {
		t.Fatalf("delta-applied epoch %d, want 2", dec2.Epoch())
	}
	sameAnswers(t, dec2, sn2, w)
	// The delta-applied snapshot must re-encode to the same full image
	// the publisher would ship for epoch 2.
	again, err := c.EncodeFull(dec2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again, full2) {
		t.Fatal("delta-applied snapshot re-encodes differently from the publisher's full image")
	}
}

func TestEncodeDeltaRefusals(t *testing.T) {
	w, p := fixture()
	b := mapping.NewSnapshotBuilder(w, p, netmodel.NewDefault(), fixCfg)
	sn1 := b.Build(1, mapping.EndUser)
	sn2 := b.Build(2, mapping.EndUser)
	c := NewCodec(p)

	if _, ok, err := c.EncodeDelta(nil, sn2); ok || err != nil {
		t.Fatalf("nil base: ok=%v err=%v", ok, err)
	}
	if _, ok, err := c.EncodeDelta(sn2, sn1); ok || err != nil {
		t.Fatalf("epoch regression: ok=%v err=%v", ok, err)
	}
	cans := mapping.NewSnapshotBuilder(w, p, netmodel.NewDefault(), fixCfg).Build(3, mapping.ClientAwareNS)
	if _, ok, err := c.EncodeDelta(sn2, cans); ok || err != nil {
		t.Fatalf("CANS target: ok=%v err=%v", ok, err)
	}
}

func TestDecodeRejectsCorruptInput(t *testing.T) {
	w, p := fixture()
	sn := mapping.NewSnapshotBuilder(w, p, netmodel.NewDefault(), fixCfg).Build(1, mapping.EndUser)
	c := NewCodec(p)
	data, err := c.EncodeFull(sn)
	if err != nil {
		t.Fatal(err)
	}

	if _, err := c.Decode(nil, nil); !errors.Is(err, ErrFormat) {
		t.Fatalf("nil input: %v", err)
	}
	if _, err := c.Decode(data[:headerSize-1], nil); !errors.Is(err, ErrFormat) {
		t.Fatalf("short input: %v", err)
	}
	for _, pos := range []int{0, 4, 9, headerSize + 3, len(data) / 2, len(data) - 1} {
		mut := append([]byte(nil), data...)
		mut[pos] ^= 0x40
		if _, err := c.Decode(mut, nil); err == nil {
			t.Fatalf("flip at %d decoded successfully", pos)
		}
	}
	if _, err := c.Decode(append(append([]byte(nil), data...), 0), nil); err == nil {
		t.Fatal("trailing byte decoded successfully")
	}

	// A codec for a different platform must refuse the image outright.
	otherP := cdn.MustGenerateUniverse(w, cdn.Config{Seed: 99, NumDeployments: 80, ServersPerDeployment: 4})
	if _, err := NewCodec(otherP).Decode(data, nil); !errors.Is(err, ErrPlatformMismatch) {
		t.Fatalf("foreign platform: %v", err)
	}
}

func TestDecodeDeltaBaseMismatch(t *testing.T) {
	w, p := fixture()
	prober := &shiftNet{base: netmodel.NewDefault(), shift: map[uint64]float64{}}
	b := mapping.NewSnapshotBuilder(w, p, prober, fixCfg)
	sn1 := b.Build(1, mapping.EndUser)
	target, ok := b.Scorer().TargetFor(w.LDNSes[0].Endpoint())
	if !ok {
		t.Fatal("no ping target")
	}
	prober.shift[target.ID] += 25
	b.MarkMeasurementsDirty(target.ID)
	sn2 := b.Build(2, mapping.EndUser)

	c := NewCodec(p)
	delta, ok, err := c.EncodeDelta(sn1, sn2)
	if err != nil || !ok {
		t.Fatalf("EncodeDelta: ok=%v err=%v", ok, err)
	}
	if _, err := c.Decode(delta, nil); !errors.Is(err, ErrDeltaBase) {
		t.Fatalf("no base: %v", err)
	}
	if _, err := c.Decode(delta, sn2); !errors.Is(err, ErrDeltaBase) {
		t.Fatalf("wrong-epoch base: %v", err)
	}
}

// FuzzSnapshotWire drives the decoder with mutated wire images. The
// invariants: a clean image round-trips byte-identically through
// decode → re-encode, and any single-byte corruption is rejected with
// an error — never a panic, never a silently-wrong snapshot (the
// checksum trailer covers every preceding byte).
func FuzzSnapshotWire(f *testing.F) {
	w, p := fixture()
	sn := mapping.NewSnapshotBuilder(w, p, netmodel.NewDefault(), fixCfg).Build(1, mapping.EndUser)
	c := NewCodec(p)
	clean, err := c.EncodeFull(sn)
	if err != nil {
		f.Fatal(err)
	}

	f.Add(uint32(0), byte(0))
	f.Add(uint32(5), byte(1))
	f.Add(uint32(headerSize), byte(0xff))
	f.Add(uint32(len(clean)-1), byte(0x80))
	f.Fuzz(func(t *testing.T, pos uint32, xor byte) {
		data := append([]byte(nil), clean...)
		i := int(pos) % len(data)
		data[i] ^= xor
		dec, err := c.Decode(data, nil)
		if xor != 0 {
			if err == nil {
				t.Fatalf("corrupt image (flip %#x at %d) decoded successfully", xor, i)
			}
			return
		}
		if err != nil {
			t.Fatalf("clean image failed to decode: %v", err)
		}
		again, err := c.EncodeFull(dec)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(again, clean) {
			t.Fatal("re-encode differs from the original image")
		}
	})
}
