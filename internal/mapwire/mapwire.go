// Package mapwire is the versioned binary wire format map snapshots travel
// in between the MapMaker node and replica map servers.
//
// The format is deterministic: encoding the same snapshot twice — or
// encoding a decoded snapshot — produces byte-identical output, so the
// distribution plane can compare, cache and checksum images without
// normalisation. A full image carries the partition layout (dense index,
// spill arrays, partition→segment map, segment headers) followed by one
// flat rank-table arena and, for ClientAwareNS snapshots, the candidate
// map; a delta image carries only the arena segments that changed since a
// base epoch, riding the builder's dirty-segment machinery. Scores travel
// as raw IEEE-754 bits and deployments as indexes into the platform's
// deployment list, so a decoded snapshot answers bitwise-identically to
// the original — provided both sides hold the same platform, which the
// header's platform fingerprint enforces.
//
// Layout (all integers little-endian):
//
//	offset  size  field
//	     0     4  magic "EUMw"
//	     4     2  format version (currently 1)
//	     6     1  kind (0 full, 1 delta)
//	     7     1  policy
//	     8     8  epoch
//	    16     8  base epoch (deltas; 0 for full images)
//	    24     8  answer TTL, nanoseconds
//	    32     8  platform fingerprint
//	    40     8  layout fingerprint
//	    48     4  partitions (excluding fallbacks)
//	    52     4  tables (arena segments)
//	    56     4  table length (entries per table)
//	    60     4  endpoints indexed
//	    64     …  body (kind-dependent)
//	  last     8  FNV-1a checksum of everything before it
package mapwire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"eum/internal/cdn"
	"eum/internal/geo"
	"eum/internal/mapping"
	"eum/internal/netmodel"
)

// Version is the wire format version this package encodes and decodes.
const Version = 1

// Image kinds.
const (
	KindFull  = 0 // complete snapshot: layout + full arena (+ CANS tables)
	KindDelta = 1 // changed arena segments against a base epoch
)

const (
	magic      = "EUMw"
	headerSize = 64
	// rankedSize is one wire rank entry: deployment index + score bits.
	rankedSize = 4 + 8
	// repSize is one wire segment representative: id, lat, lon, asn, access.
	repSize = 8 + 8 + 8 + 4 + 1
)

// Decode error categories, wrapped by the errors Decode returns.
var (
	ErrFormat           = errors.New("mapwire: malformed image")
	ErrVersion          = errors.New("mapwire: unsupported format version")
	ErrChecksum         = errors.New("mapwire: checksum mismatch")
	ErrPlatformMismatch = errors.New("mapwire: image built for a different platform")
	ErrDeltaBase        = errors.New("mapwire: delta base unavailable")
)

// Header is the fixed-size image header, readable without decoding the
// body (ParseHeader). The fetcher uses it to learn the publisher's epoch
// and kind before committing to a decode.
type Header struct {
	Version    uint16
	Kind       uint8
	Policy     mapping.Policy
	Epoch      uint64
	BaseEpoch  uint64 // deltas: the epoch the segments patch; full: 0
	TTL        time.Duration
	PlatformFP uint64
	LayoutFP   uint64
	Partitions uint32
	Tables     uint32
	TableLen   uint32
	Endpoints  uint32
}

// Codec encodes and decodes snapshots against one CDN platform. Both ends
// of the wire construct their platform deterministically from the same
// seeds; the codec's platform fingerprint — hashed over deployment and
// server identities — is carried in every header so a mismatch is an
// explicit error instead of silently misrouted traffic.
type Codec struct {
	platform *cdn.Platform
	depIdx   map[*cdn.Deployment]uint32
	fp       uint64
}

// NewCodec builds a codec for the given platform.
func NewCodec(p *cdn.Platform) *Codec {
	c := &Codec{
		platform: p,
		depIdx:   make(map[*cdn.Deployment]uint32, len(p.Deployments)),
		fp:       PlatformFingerprint(p),
	}
	for i, d := range p.Deployments {
		c.depIdx[d] = uint32(i)
	}
	return c
}

// PlatformFingerprint hashes the platform's structural identity: the
// deployment list (order, IDs, locations) and each deployment's server
// IDs. Liveness and load are excluded — they are read at query time and
// may legitimately differ across nodes.
func PlatformFingerprint(p *cdn.Platform) uint64 {
	h := newFNV()
	h.u64(uint64(len(p.Deployments)))
	for _, d := range p.Deployments {
		h.u64(d.ID)
		h.u64(math.Float64bits(d.Loc.Lat))
		h.u64(math.Float64bits(d.Loc.Lon))
		h.u64(uint64(d.ASN))
		h.u64(uint64(len(d.Servers)))
		for _, s := range d.Servers {
			h.u64(s.ID)
		}
	}
	return h.sum
}

// ParseHeader reads and validates the fixed header of an image without
// touching the body or verifying the checksum.
func ParseHeader(data []byte) (Header, error) {
	var h Header
	if len(data) < headerSize {
		return h, fmt.Errorf("%w: %d bytes, need %d-byte header", ErrFormat, len(data), headerSize)
	}
	if string(data[:4]) != magic {
		return h, fmt.Errorf("%w: bad magic", ErrFormat)
	}
	h.Version = binary.LittleEndian.Uint16(data[4:])
	if h.Version != Version {
		return h, fmt.Errorf("%w: version %d, this build speaks %d", ErrVersion, h.Version, Version)
	}
	h.Kind = data[6]
	if h.Kind != KindFull && h.Kind != KindDelta {
		return h, fmt.Errorf("%w: unknown kind %d", ErrFormat, h.Kind)
	}
	h.Policy = mapping.Policy(data[7])
	h.Epoch = binary.LittleEndian.Uint64(data[8:])
	h.BaseEpoch = binary.LittleEndian.Uint64(data[16:])
	h.TTL = time.Duration(binary.LittleEndian.Uint64(data[24:]))
	h.PlatformFP = binary.LittleEndian.Uint64(data[32:])
	h.LayoutFP = binary.LittleEndian.Uint64(data[40:])
	h.Partitions = binary.LittleEndian.Uint32(data[48:])
	h.Tables = binary.LittleEndian.Uint32(data[52:])
	h.TableLen = binary.LittleEndian.Uint32(data[56:])
	h.Endpoints = binary.LittleEndian.Uint32(data[60:])
	return h, nil
}

// EncodeFull serializes a complete snapshot image.
func (c *Codec) EncodeFull(sn *mapping.Snapshot) ([]byte, error) {
	wl := sn.WireLayout()
	cans := sn.CANSTables()
	cansIDs := sortedKeys(cans)

	size := headerSize +
		4 + 4 + // fallback indexes
		4 + 4*len(wl.Dense) +
		4 + 12*len(wl.SpillIDs) +
		4 + 4*len(wl.PartSeg) +
		len(wl.SegTargets)*4 +
		len(wl.SegReps)*repSize +
		len(wl.SegTargets)*wl.TableLen*rankedSize +
		4 + 8 // cans count + checksum
	for _, id := range cansIDs {
		size += 8 + 4 + len(cans[id])*rankedSize
	}

	w := newWriter(size)
	c.putHeader(w, sn, KindFull, 0, wl)

	w.i32(wl.FallbackLDNS)
	w.i32(wl.FallbackClient)
	w.u32(uint32(len(wl.Dense)))
	for _, v := range wl.Dense {
		w.i32(v)
	}
	w.u32(uint32(len(wl.SpillIDs)))
	for i, id := range wl.SpillIDs {
		w.u64(id)
		w.i32(wl.SpillIdx[i])
	}
	w.u32(uint32(len(wl.PartSeg)))
	for _, v := range wl.PartSeg {
		w.i32(v)
	}
	for _, t := range wl.SegTargets {
		w.i32(t)
	}
	for _, rep := range wl.SegReps {
		w.u64(rep.ID)
		w.f64(rep.Loc.Lat)
		w.f64(rep.Loc.Lon)
		w.u32(rep.ASN)
		w.u8(uint8(rep.Access))
	}
	for s := range wl.SegTargets {
		if err := c.putTable(w, sn.SegmentTable(s)); err != nil {
			return nil, err
		}
	}
	w.u32(uint32(len(cansIDs)))
	for _, id := range cansIDs {
		tbl := cans[id]
		w.u64(id)
		w.u32(uint32(len(tbl)))
		if err := c.putTable(w, tbl); err != nil {
			return nil, err
		}
	}
	return w.finish(), nil
}

// EncodeDelta serializes the arena segments that changed between prev and
// next as a delta image patching prev's epoch. ok is false — with no error
// — when a delta is not expressible (different layouts, a CANS snapshot
// whose candidate map has no delta form, or so many changed segments that
// a full image is smaller); the publisher then falls back to EncodeFull.
func (c *Codec) EncodeDelta(prev, next *mapping.Snapshot) (data []byte, ok bool, err error) {
	if prev == nil || prev.LayoutFingerprint() != next.LayoutFingerprint() ||
		next.CANSTables() != nil || prev.Epoch() >= next.Epoch() {
		return nil, false, nil
	}
	wl := next.WireLayout()
	var segs []int32
	for s := range wl.SegTargets {
		if !next.SharesSegmentWith(prev, s) {
			segs = append(segs, int32(s))
		}
	}
	// A delta that rewrites most of the arena is worse than a full image:
	// it costs the same bytes but pins the replica to a chain of patches.
	if len(segs)*2 >= len(wl.SegTargets) {
		return nil, false, nil
	}

	size := headerSize + 4 + len(segs)*4 + len(segs)*wl.TableLen*rankedSize + 8
	w := newWriter(size)
	c.putHeader(w, next, KindDelta, prev.Epoch(), wl)
	w.u32(uint32(len(segs)))
	for _, s := range segs {
		w.i32(s)
	}
	for _, s := range segs {
		if err := c.putTable(w, next.SegmentTable(int(s))); err != nil {
			return nil, false, err
		}
	}
	return w.finish(), true, nil
}

// Decode reconstructs a snapshot from an image. For delta images, prev
// must be the installed snapshot at the image's base epoch (the fetcher's
// last install); Decode returns ErrDeltaBase when it is missing or does
// not match, signalling the fetcher to re-request a full image. Decoded
// snapshots are self-contained: they never alias the input buffer.
//
// Decode is hardened against corrupt or adversarial input: every length
// and index is bounds-checked against the remaining buffer and the
// declared geometry, and the trailing checksum is verified first, so no
// input can panic the replica or install an out-of-range table reference.
func (c *Codec) Decode(data []byte, prev *mapping.Snapshot) (*mapping.Snapshot, error) {
	h, err := ParseHeader(data)
	if err != nil {
		return nil, err
	}
	if len(data) < headerSize+8 {
		return nil, fmt.Errorf("%w: no checksum trailer", ErrFormat)
	}
	body := data[:len(data)-8]
	want := binary.LittleEndian.Uint64(data[len(data)-8:])
	if got := fnvSum(body); got != want {
		return nil, fmt.Errorf("%w: got %016x want %016x", ErrChecksum, got, want)
	}
	if h.PlatformFP != c.fp {
		return nil, fmt.Errorf("%w: image %016x, codec %016x", ErrPlatformMismatch, h.PlatformFP, c.fp)
	}
	if h.TableLen != uint32(len(c.platform.Deployments)) {
		return nil, fmt.Errorf("%w: table length %d, platform has %d deployments",
			ErrFormat, h.TableLen, len(c.platform.Deployments))
	}
	r := &reader{b: body, off: headerSize}
	if h.Kind == KindDelta {
		return c.decodeDelta(h, r, prev)
	}
	return c.decodeFull(h, r)
}

func (c *Codec) decodeFull(h Header, r *reader) (*mapping.Snapshot, error) {
	tables, tl := int(h.Tables), int(h.TableLen)
	wl := mapping.WireLayout{
		NParts:    int(h.Partitions),
		TableLen:  tl,
		Endpoints: int(h.Endpoints),
	}
	// nSlots is the partition-index value space: universe partitions plus
	// the two fallbacks. Every partition reference must stay inside it.
	nSlots := int64(h.Partitions) + 2
	wl.FallbackLDNS = r.i32()
	wl.FallbackClient = r.i32()

	nDense := r.sliceLen(4)
	wl.Dense = make([]int32, nDense)
	for i := range wl.Dense {
		wl.Dense[i] = r.i32()
	}
	nSpill := r.sliceLen(12)
	wl.SpillIDs = make([]uint64, nSpill)
	wl.SpillIdx = make([]int32, nSpill)
	for i := range wl.SpillIDs {
		wl.SpillIDs[i] = r.u64()
		wl.SpillIdx[i] = r.i32()
	}
	nPartSeg := r.sliceLen(4)
	wl.PartSeg = make([]int32, nPartSeg)
	for i := range wl.PartSeg {
		wl.PartSeg[i] = r.i32()
	}
	wl.SegTargets = make([]int32, tables)
	for s := range wl.SegTargets {
		wl.SegTargets[s] = r.i32()
	}
	wl.SegReps = make([]netmodel.Endpoint, tables)
	for s := range wl.SegReps {
		wl.SegReps[s] = netmodel.Endpoint{
			ID:     r.u64(),
			Loc:    geo.Point{Lat: r.f64(), Lon: r.f64()},
			ASN:    r.u32(),
			Access: netmodel.AccessType(r.u8()),
		}
	}
	arena, err := c.getTables(r, tables, tl)
	if err != nil {
		return nil, err
	}
	var cansMap map[uint64][]mapping.Ranked
	nCANS := r.sliceLen(12)
	if nCANS > 0 {
		cansMap = make(map[uint64][]mapping.Ranked, nCANS)
	}
	for i := uint64(0); i < nCANS; i++ {
		id := r.u64()
		n := r.sliceLen(rankedSize)
		tbl, err := c.getTables(r, int(n), 1)
		if err != nil {
			return nil, err
		}
		cansMap[id] = tbl
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(r.b) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrFormat, len(r.b)-r.off)
	}

	// Structural validation: every partition index must land inside the
	// declared slot space and every segment reference inside the table
	// list, or a hostile image could crash the serving hot path later.
	if int64(len(wl.PartSeg)) != nSlots {
		return nil, fmt.Errorf("%w: %d partition segments for %d slots", ErrFormat, len(wl.PartSeg), nSlots)
	}
	if !validIdx(wl.FallbackLDNS, nSlots) || !validIdx(wl.FallbackClient, nSlots) {
		return nil, fmt.Errorf("%w: fallback partition out of range", ErrFormat)
	}
	for _, p := range wl.Dense {
		if !validIdx(p, nSlots) {
			return nil, fmt.Errorf("%w: dense partition index out of range", ErrFormat)
		}
	}
	for i, p := range wl.SpillIdx {
		if !validIdx(p, nSlots) {
			return nil, fmt.Errorf("%w: spill partition index out of range", ErrFormat)
		}
		if i > 0 && wl.SpillIDs[i-1] >= wl.SpillIDs[i] {
			return nil, fmt.Errorf("%w: spill IDs not strictly ascending", ErrFormat)
		}
	}
	for _, s := range wl.PartSeg {
		if s < 0 || int(s) >= tables {
			return nil, fmt.Errorf("%w: partition segment out of range", ErrFormat)
		}
	}
	return mapping.AssembleSnapshot(h.Epoch, h.Policy, h.TTL, wl, arena, cansMap), nil
}

func (c *Codec) decodeDelta(h Header, r *reader, prev *mapping.Snapshot) (*mapping.Snapshot, error) {
	if prev == nil {
		return nil, fmt.Errorf("%w: no base snapshot", ErrDeltaBase)
	}
	if prev.Epoch() != h.BaseEpoch {
		return nil, fmt.Errorf("%w: base epoch %d, have %d", ErrDeltaBase, h.BaseEpoch, prev.Epoch())
	}
	if prev.LayoutFingerprint() != h.LayoutFP {
		return nil, fmt.Errorf("%w: layout fingerprint mismatch", ErrDeltaBase)
	}
	tables, tl := prev.Tables(), int(h.TableLen)
	if int(h.Tables) != tables || tl != len(c.platform.Deployments) {
		return nil, fmt.Errorf("%w: geometry mismatch", ErrDeltaBase)
	}
	nSegs := r.sliceLen(uint64(4 + tl*rankedSize))
	segs := make([]int32, nSegs)
	for i := range segs {
		segs[i] = r.i32()
		if segs[i] < 0 || int(segs[i]) >= tables {
			return nil, fmt.Errorf("%w: delta segment out of range", ErrFormat)
		}
		if i > 0 && segs[i-1] >= segs[i] {
			return nil, fmt.Errorf("%w: delta segments not strictly ascending", ErrFormat)
		}
	}
	delta, err := c.getTables(r, int(nSegs), tl)
	if err != nil {
		return nil, err
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(r.b) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrFormat, len(r.b)-r.off)
	}
	return prev.WithDeltaSegments(h.Epoch, h.Policy, h.TTL, segs, delta), nil
}

// putHeader writes the fixed header for sn.
func (c *Codec) putHeader(w *writer, sn *mapping.Snapshot, kind uint8, baseEpoch uint64, wl mapping.WireLayout) {
	w.raw([]byte(magic))
	w.u16(Version)
	w.u8(kind)
	w.u8(uint8(sn.Policy()))
	w.u64(sn.Epoch())
	w.u64(baseEpoch)
	w.u64(uint64(sn.TTL()))
	w.u64(c.fp)
	w.u64(sn.LayoutFingerprint())
	w.u32(uint32(wl.NParts))
	w.u32(uint32(len(wl.SegTargets)))
	w.u32(uint32(wl.TableLen))
	w.u32(uint32(wl.Endpoints))
}

// putTable writes one rank table as (deployment index, score bits) pairs.
func (c *Codec) putTable(w *writer, tbl []mapping.Ranked) error {
	for _, rk := range tbl {
		idx, ok := c.depIdx[rk.Deployment]
		if !ok {
			return fmt.Errorf("mapwire: snapshot ranks a deployment outside the codec's platform")
		}
		w.u32(idx)
		w.u64(math.Float64bits(rk.Score))
	}
	return nil
}

// getTables reads n tables of tl entries each into one flat slice,
// resolving deployment indexes against the codec's platform.
func (c *Codec) getTables(r *reader, n, tl int) ([]mapping.Ranked, error) {
	if n == 0 || tl == 0 {
		return nil, nil
	}
	total := n * tl
	if remaining := len(r.b) - r.off; r.err == nil && total*rankedSize > remaining {
		r.err = fmt.Errorf("%w: %d table entries exceed %d remaining bytes", ErrFormat, total, remaining)
	}
	if r.err != nil {
		return nil, r.err
	}
	out := make([]mapping.Ranked, total)
	for i := range out {
		idx := r.u32()
		score := r.f64()
		if int(idx) >= len(c.platform.Deployments) {
			return nil, fmt.Errorf("%w: deployment index %d of %d", ErrFormat, idx, len(c.platform.Deployments))
		}
		out[i] = mapping.Ranked{Deployment: c.platform.Deployments[idx], Score: score}
	}
	return out, nil
}

// validIdx reports whether a partition index is -1 (unassigned) or inside
// the slot space.
func validIdx(p int32, nSlots int64) bool { return p >= -1 && int64(p) < nSlots }

// sortedKeys returns the CANS map's keys in ascending order, the canonical
// wire order that makes encoding deterministic.
func sortedKeys(m map[uint64][]mapping.Ranked) []uint64 {
	if len(m) == 0 {
		return nil
	}
	keys := make([]uint64, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}
