package mapmaker

import (
	"math"
	"sync"
	"sync/atomic"
	"time"

	"eum/internal/cdn"
	"eum/internal/telemetry"
)

// LoadSignalConfig parameterises the load-feedback loop between the
// platform's load gauges and the map (see LoadMonitor).
type LoadSignalConfig struct {
	// EnterUtil is the smoothed utilization at which a deployment enters
	// the overloaded state (and the map is republished). Default 0.8.
	EnterUtil float64
	// Hysteresis is how far below EnterUtil the smoothed utilization must
	// fall before the deployment exits the overloaded state: the exit
	// threshold is EnterUtil - Hysteresis. A single threshold would flip
	// state on every wobble around it — each flip republishing the map,
	// shifting demand, and moving the gauge back across the threshold (the
	// thundering-herd flip-flop). Default 0.15.
	Hysteresis float64
	// EWMA is the smoothing time constant for utilization gauges. Raw load
	// moves with every DNS answer; the map must react to sustained
	// overload, not to instantaneous spikes. Default 30s.
	EWMA time.Duration
	// MaxSignalAge is how stale a deployment's last load observation may
	// be before the monitor refuses to report it (the builder then scores
	// that deployment proximity-only). A dead telemetry feed must degrade
	// the loop to plain proximity mapping, never freeze demand on whatever
	// the last reading happened to be. Default 3×EWMA.
	MaxSignalAge time.Duration
	// MinRepublish is the damping interval between ReasonLoad
	// notifications: however many thresholds are crossed, the monitor
	// wakes the map maker at most once per interval (later crossings are
	// pended and flushed on a subsequent Tick). Default 5s.
	MinRepublish time.Duration
}

// Defaults for zero-valued LoadSignalConfig fields. Exported so config
// validation can cross-check partially-specified knob sets against the
// values that will actually take effect.
const (
	DefaultLoadEnterUtil    = 0.8
	DefaultLoadHysteresis   = 0.15
	DefaultLoadEWMA         = 30 * time.Second
	DefaultLoadMinRepublish = 5 * time.Second
)

func (c LoadSignalConfig) withDefaults() LoadSignalConfig {
	if c.EnterUtil <= 0 {
		c.EnterUtil = DefaultLoadEnterUtil
	}
	if c.Hysteresis <= 0 {
		c.Hysteresis = DefaultLoadHysteresis
	}
	if c.EWMA <= 0 {
		c.EWMA = DefaultLoadEWMA
	}
	if c.MaxSignalAge <= 0 {
		c.MaxSignalAge = 3 * c.EWMA
	}
	if c.MinRepublish <= 0 {
		c.MinRepublish = DefaultLoadMinRepublish
	}
	return c
}

// utilCeiling caps raw utilization readings before smoothing, so one
// zero-capacity deployment (+Inf utilization) cannot poison its EWMA
// forever.
const utilCeiling = 10.0

// loadState is one deployment's smoothed signal.
type loadState struct {
	ewma       float64
	last       time.Time
	init       bool
	overloaded bool
	flips      uint64
}

// LoadMonitor closes the loop between the platform's load gauges and the
// published map: it EWMA-smooths per-deployment utilization, detects
// overload threshold crossings with a hysteresis band, and feeds
// ReasonLoad into the MapMaker's change feed — rate-limited by a
// min-republish damping interval so a flash crowd shifting on and off a
// deployment cannot oscillate the map. It is also the builder's
// UtilizationSource: builds read the smoothed (never the instantaneous)
// signal, and observations older than MaxSignalAge are withheld so a dead
// feed degrades scoring to proximity-only.
//
// Drive it deterministically with Observe/Tick and an explicit now
// (simulations, tests), or from a goroutine sampling the platform on a
// cadence (cmd/eumdns). All methods are safe for concurrent use.
type LoadMonitor struct {
	mm  *MapMaker // may be nil: monitoring without a change feed
	cfg LoadSignalConfig
	now func() time.Time // freshness clock for Utilization; default time.Now

	mu         sync.Mutex
	states     map[uint64]*loadState
	lastNotify time.Time
	pending    bool

	notifies         atomic.Uint64
	damped           atomic.Uint64
	crossings        atomic.Uint64
	staleSignals     atomic.Uint64
	windowViolations atomic.Uint64
}

// NewLoadMonitor creates a load monitor feeding mm's change feed (mm may
// be nil for observe-only use). Zero-valued config fields take defaults.
func NewLoadMonitor(mm *MapMaker, cfg LoadSignalConfig) *LoadMonitor {
	return &LoadMonitor{
		mm:     mm,
		cfg:    cfg.withDefaults(),
		now:    time.Now,
		states: map[uint64]*loadState{},
	}
}

// Config returns the monitor's effective (defaulted) configuration.
func (lm *LoadMonitor) Config() LoadSignalConfig { return lm.cfg }

// SetClock overrides the freshness clock Utilization compares observation
// ages against — deterministic simulations drive it alongside their
// simulated time. Call before concurrent use.
func (lm *LoadMonitor) SetClock(now func() time.Time) { lm.now = now }

// Observe feeds one utilization reading for a deployment at the given
// time, updating its EWMA and firing the change feed on threshold
// crossings.
func (lm *LoadMonitor) Observe(d *cdn.Deployment, util float64, now time.Time) {
	if util < 0 || math.IsNaN(util) {
		util = 0
	}
	if util > utilCeiling {
		util = utilCeiling
	}
	lm.mu.Lock()
	defer lm.mu.Unlock()
	st := lm.states[d.ID]
	if st == nil {
		st = &loadState{}
		lm.states[d.ID] = st
	}
	if !st.init {
		st.ewma, st.init = util, true
	} else if dt := now.Sub(st.last); dt > 0 {
		alpha := 1 - math.Exp(-float64(dt)/float64(lm.cfg.EWMA))
		st.ewma += alpha * (util - st.ewma)
	}
	if now.After(st.last) {
		st.last = now
	}
	switch {
	case !st.overloaded && st.ewma >= lm.cfg.EnterUtil:
		st.overloaded = true
		st.flips++
		lm.crossings.Add(1)
		lm.requestNotifyLocked(now)
	case st.overloaded && st.ewma <= lm.cfg.EnterUtil-lm.cfg.Hysteresis:
		st.overloaded = false
		st.flips++
		lm.crossings.Add(1)
		lm.requestNotifyLocked(now)
	}
}

// Tick samples every deployment's utilization gauge at the given time and
// flushes any damped notification whose interval has elapsed. This is the
// poll-driven way to run the monitor (the push-driven way is calling
// Observe from wherever load reports arrive).
func (lm *LoadMonitor) Tick(p *cdn.Platform, now time.Time) {
	for _, d := range p.Deployments {
		lm.Observe(d, d.Utilisation(), now)
	}
	lm.mu.Lock()
	if lm.pending && now.Sub(lm.lastNotify) >= lm.cfg.MinRepublish {
		lm.pending = false
		lm.sendNotifyLocked(now)
	}
	lm.mu.Unlock()
}

// requestNotifyLocked fires ReasonLoad, or pends it when inside the
// damping window (flushed by a later Tick).
func (lm *LoadMonitor) requestNotifyLocked(now time.Time) {
	if lm.mm == nil {
		return
	}
	if !lm.lastNotify.IsZero() && now.Sub(lm.lastNotify) < lm.cfg.MinRepublish {
		lm.pending = true
		lm.damped.Add(1)
		return
	}
	lm.sendNotifyLocked(now)
}

func (lm *LoadMonitor) sendNotifyLocked(now time.Time) {
	// Tripwire, not control flow: every send must sit outside the damping
	// window of the previous one.
	if !lm.lastNotify.IsZero() && now.Sub(lm.lastNotify) < lm.cfg.MinRepublish {
		lm.windowViolations.Add(1)
	}
	lm.lastNotify = now
	lm.notifies.Add(1)
	lm.mm.Notify(ReasonLoad)
}

// Utilization implements mapping.UtilizationSource: the smoothed signal
// for d, with ok=false when the deployment was never observed or its last
// observation is older than MaxSignalAge (counted on the stale-signal
// tripwire; the builder scores such deployments proximity-only).
func (lm *LoadMonitor) Utilization(d *cdn.Deployment) (float64, bool) {
	lm.mu.Lock()
	st := lm.states[d.ID]
	var util float64
	ok := false
	if st != nil && st.init {
		util, ok = st.ewma, true
		if lm.now().Sub(st.last) > lm.cfg.MaxSignalAge {
			util, ok = 0, false
		}
	}
	lm.mu.Unlock()
	if !ok {
		lm.staleSignals.Add(1)
	}
	return util, ok
}

// Overloaded returns how many deployments are currently in the overloaded
// state.
func (lm *LoadMonitor) Overloaded() int {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	n := 0
	for _, st := range lm.states {
		if st.overloaded {
			n++
		}
	}
	return n
}

// Flips returns how many overload state transitions deployment id has
// made — the oscillation measure chaos drills bound.
func (lm *LoadMonitor) Flips(id uint64) uint64 {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	if st := lm.states[id]; st != nil {
		return st.flips
	}
	return 0
}

// Smoothed returns the current EWMA utilization for deployment id (0,
// false when never observed).
func (lm *LoadMonitor) Smoothed(id uint64) (float64, bool) {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	if st := lm.states[id]; st != nil && st.init {
		return st.ewma, true
	}
	return 0, false
}

// Notifies returns how many ReasonLoad notifications have been sent.
func (lm *LoadMonitor) Notifies() uint64 { return lm.notifies.Load() }

// Damped returns how many threshold crossings were absorbed into a
// pending notification by the min-republish damping interval.
func (lm *LoadMonitor) Damped() uint64 { return lm.damped.Load() }

// Crossings returns the total overload threshold crossings (both
// directions) across all deployments.
func (lm *LoadMonitor) Crossings() uint64 { return lm.crossings.Load() }

// StaleSignals returns the tripwire count of Utilization reads that found
// no fresh observation.
func (lm *LoadMonitor) StaleSignals() uint64 { return lm.staleSignals.Load() }

// WindowViolations returns how many notifications were sent inside the
// previous notification's damping window. Always 0 by construction; chaos
// drills assert it stays that way.
func (lm *LoadMonitor) WindowViolations() uint64 { return lm.windowViolations.Load() }

// RegisterMetrics wires the monitor's counters into reg under the
// mapmaker_load_ namespace.
func (lm *LoadMonitor) RegisterMetrics(reg *telemetry.Registry) {
	reg.Counter("mapmaker_load_notifies_total",
		"ReasonLoad change-feed notifications sent.", lm.notifies.Load)
	reg.Counter("mapmaker_load_damped_total",
		"Load threshold crossings absorbed by the min-republish damping interval.",
		lm.damped.Load)
	reg.Counter("mapmaker_load_crossings_total",
		"Overload threshold crossings (enter + exit) across deployments.",
		lm.crossings.Load)
	reg.Counter("mapmaker_load_stale_signals_total",
		"Utilization reads served stale/missing (scored proximity-only).",
		lm.staleSignals.Load)
	reg.Counter("mapmaker_load_window_violations_total",
		"Notifications sent inside the damping window (must stay 0).",
		lm.windowViolations.Load)
	reg.Gauge("mapmaker_load_overloaded_deployments",
		"Deployments currently in the overloaded state.", func() float64 {
			return float64(lm.Overloaded())
		})
}
