package mapmaker

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"eum/internal/cdn"
	"eum/internal/mapping"
	"eum/internal/netmodel"
	"eum/internal/world"
)

var (
	testW   = world.MustGenerate(world.Config{Seed: 7, NumBlocks: 600})
	testNet = netmodel.NewDefault()
)

func newMapMaker(t testing.TB, pol mapping.Policy) (*MapMaker, *cdn.Platform) {
	t.Helper()
	p := cdn.MustGenerateUniverse(testW, cdn.Config{Seed: 7, NumDeployments: 40, ServersPerDeployment: 4})
	sys := mapping.NewSystem(testW, p, testNet, mapping.Config{Policy: pol, PingTargets: 100})
	return New(sys, Config{}), p
}

// TestPublishEpochsMonotonic: every Publish installs a strictly newer
// epoch.
func TestPublishEpochsMonotonic(t *testing.T) {
	mm, _ := newMapMaker(t, mapping.EndUser)
	last := mm.Current().Epoch()
	for i := 0; i < 5; i++ {
		sn := mm.Publish()
		if sn.Epoch() <= last {
			t.Fatalf("publish %d: epoch %d did not advance past %d", i, sn.Epoch(), last)
		}
		if mm.Current() != sn {
			t.Fatalf("publish %d: published snapshot is not current", i)
		}
		last = sn.Epoch()
	}
	if mm.Published() != 5 {
		t.Fatalf("Published = %d, want 5", mm.Published())
	}
	if mm.LastBuildDuration() <= 0 {
		t.Fatal("LastBuildDuration not recorded")
	}
}

// TestSyncCoalesces: any number of signals between builds fold into one
// rebuild, and a Sync with no pending signals publishes nothing.
func TestSyncCoalesces(t *testing.T) {
	mm, _ := newMapMaker(t, mapping.EndUser)
	e0 := mm.Current().Epoch()

	for i := 0; i < 10; i++ {
		mm.Notify(ReasonHealth)
	}
	sn := mm.Sync()
	if sn.Epoch() != e0+1 {
		t.Fatalf("10 notifications cost %d epochs, want 1", sn.Epoch()-e0)
	}
	if again := mm.Sync(); again != sn {
		t.Fatalf("clean Sync rebuilt: epoch %d -> %d", sn.Epoch(), again.Epoch())
	}
	if mm.Published() != 1 {
		t.Fatalf("Published = %d, want 1", mm.Published())
	}
}

// TestHealthSignalFlow wires a health monitor's change callback into the
// change feed and checks the loop end to end: an outage makes the feed
// dirty, Sync publishes a fresh epoch, and the data plane routes the
// client around the dead deployment.
func TestHealthSignalFlow(t *testing.T) {
	mm, p := newMapMaker(t, mapping.EndUser)
	sys := mm.System()

	blk := testW.Blocks[0]
	req := mapping.Request{Domain: "health.net", LDNS: blk.LDNS.Addr, ClientSubnet: blk.Prefix}
	before, err := sys.Map(req)
	if err != nil {
		t.Fatal(err)
	}
	home := before.Deployment

	t0 := time.Date(2014, 4, 1, 0, 0, 0, 0, time.UTC)
	faults := &cdn.ScheduledFaults{}
	for _, s := range home.Servers {
		faults.Add(s.ID, t0.Add(time.Minute), t0.Add(3*time.Minute))
	}
	mon, err := cdn.NewMonitor(p, faults, 10*time.Second, mm.OnDeploymentChange)
	if err != nil {
		t.Fatal(err)
	}

	mon.Tick(t0)
	e0 := mm.Sync().Epoch()

	if changed, _ := mon.Tick(t0.Add(time.Minute)); changed != 1 {
		t.Fatalf("outage not detected: changed=%d", changed)
	}
	sn := mm.Sync()
	if sn.Epoch() <= e0 {
		t.Fatalf("health event did not publish: epoch %d after %d", sn.Epoch(), e0)
	}
	after, err := sys.Map(req)
	if err != nil {
		t.Fatal(err)
	}
	if after.Deployment == home {
		t.Fatal("client still mapped to dead deployment")
	}
	if after.Epoch != sn.Epoch() {
		t.Fatalf("decision epoch %d, want published %d", after.Epoch, sn.Epoch())
	}
}

// TestSetPolicyFlowsThroughFeed: the flip is recorded immediately but the
// served policy only changes when the pipeline publishes.
func TestSetPolicyFlowsThroughFeed(t *testing.T) {
	mm, _ := newMapMaker(t, mapping.NSBased)
	sys := mm.System()

	mm.SetPolicy(mapping.EndUser)
	if got := sys.Policy(); got != mapping.NSBased {
		t.Fatalf("policy flipped before publish: %v", got)
	}
	sn := mm.Sync()
	if sn.Policy() != mapping.EndUser || sys.Policy() != mapping.EndUser {
		t.Fatalf("policy after Sync = %v (snapshot %v), want EU", sys.Policy(), sn.Policy())
	}
}

// TestMeasurementRefreshRecomputes: a measurement signal must drop the
// scoring tables so the next build recomputes them, visible as a scorer
// generation bump.
func TestMeasurementRefreshRecomputes(t *testing.T) {
	mm, _ := newMapMaker(t, mapping.EndUser)
	sc := mm.System().Scorer()
	g0 := sc.Generation()

	mm.Notify(ReasonHealth)
	mm.Sync()
	if sc.Generation() != g0 {
		t.Fatal("health-only publish must not recompute scoring tables")
	}

	mm.Notify(ReasonMeasurement)
	sn := mm.Sync()
	if sc.Generation() != g0+1 {
		t.Fatalf("measurement publish: scorer generation %d, want %d", sc.Generation(), g0+1)
	}
	if mm.Current() != sn {
		t.Fatal("measurement publish not installed")
	}
}

// TestRunPublishesOnCadence: the production loop publishes periodically
// and reacts to the change feed, then stops with its context.
func TestRunPublishesOnCadence(t *testing.T) {
	p := cdn.MustGenerateUniverse(testW, cdn.Config{Seed: 7, NumDeployments: 40, ServersPerDeployment: 4})
	sys := mapping.NewSystem(testW, p, testNet, mapping.Config{Policy: mapping.EndUser, PingTargets: 100})
	mm := New(sys, Config{Interval: 5 * time.Millisecond})

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		mm.Run(ctx)
		close(done)
	}()

	deadline := time.Now().Add(2 * time.Second)
	for mm.Published() < 3 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	mm.Notify(ReasonHealth)
	cancel()
	<-done

	if mm.Published() < 3 {
		t.Fatalf("Published = %d after cadence window, want >= 3", mm.Published())
	}
}

// TestBuildFailureKeepsLastGood: a panicking build must not tear down the
// published map or advance the publish counter — the data plane keeps
// serving the last good snapshot and the failure is recorded.
func TestBuildFailureKeepsLastGood(t *testing.T) {
	mm, _ := newMapMaker(t, mapping.EndUser)
	good := mm.Publish()

	mm.SetBuildFault(func() { panic("pipeline crash") })
	mm.Notify(ReasonMeasurement)
	if sn := mm.Publish(); sn != good {
		t.Fatalf("failed build replaced the published snapshot: epoch %d -> %d",
			good.Epoch(), sn.Epoch())
	}
	if mm.Current() != good {
		t.Fatal("current snapshot changed after a failed build")
	}
	if mm.Published() != 1 {
		t.Fatalf("Published = %d, want 1 (failed builds must not count)", mm.Published())
	}
	if mm.BuildFailures() != 1 {
		t.Fatalf("BuildFailures = %d, want 1", mm.BuildFailures())
	}
	f := mm.LastBuildFailure()
	if f == nil || f.Err == nil {
		t.Fatalf("LastBuildFailure = %+v, want recorded error", f)
	}
	if f.Reasons&ReasonMeasurement == 0 || f.Reasons&ReasonPeriodic == 0 {
		t.Fatalf("failure reasons = %b, want measurement|periodic", f.Reasons)
	}
}

// TestFailedBuildRetainsDirty: the reasons a failed build claimed stay
// pending, so the next build (here a Sync with no new signals) retries them.
func TestFailedBuildRetainsDirty(t *testing.T) {
	mm, _ := newMapMaker(t, mapping.EndUser)
	e0 := mm.Current().Epoch()

	mm.SetBuildFault(func() { panic("transient") })
	mm.Notify(ReasonHealth)
	if sn := mm.Sync(); sn.Epoch() != e0 {
		t.Fatalf("failed Sync advanced the epoch to %d", sn.Epoch())
	}

	mm.SetBuildFault(nil)
	// No new Notify: the retained reasons alone must trigger the rebuild.
	if sn := mm.Sync(); sn.Epoch() != e0+1 {
		t.Fatalf("recovered Sync epoch = %d, want %d", sn.Epoch(), e0+1)
	}
}

// TestRunSurvivesBuildPanics: the Run loop keeps publishing after builds
// panic mid-flight.
func TestRunSurvivesBuildPanics(t *testing.T) {
	mm, _ := newMapMaker(t, mapping.EndUser)
	var n atomic.Uint64
	mm.SetBuildFault(func() {
		if n.Add(1) <= 2 {
			panic("crash")
		}
	})

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); mm.Run(ctx) }()

	e0 := mm.Current().Epoch()
	deadline := time.After(5 * time.Second)
	for mm.Current().Epoch() == e0 {
		mm.Notify(ReasonHealth)
		select {
		case <-deadline:
			t.Fatal("Run loop never recovered from panicking builds")
		case <-time.After(time.Millisecond):
		}
	}
	cancel()
	<-done

	if mm.BuildFailures() < 2 {
		t.Fatalf("BuildFailures = %d, want >= 2", mm.BuildFailures())
	}
	if mm.Current().Epoch() <= e0 {
		t.Fatal("no fresh snapshot after recovery")
	}
}
