// Package mapmaker is the control plane of the mapping stack: the
// background pipeline that turns health and measurement signals into
// published maps. It reproduces the paper's map-making architecture
// (§3–§5): topology discovery and scoring feed a MapMaker that builds a
// fresh map on a cadence, and the authoritative name servers (the data
// plane) only ever read the currently published, epoch-numbered
// mapping.Snapshot.
//
// Signals arrive through a coalescing change feed: the CDN health monitor
// reports deployment state flips (OnDeploymentChange), operators flip the
// routing policy (SetPolicy), and measurement sweeps mark the scoring
// tables dirty (Notify with ReasonMeasurement). The feed never builds
// anything itself — it marks reasons dirty and wakes the pipeline, which
// folds however many signals accumulated into one rebuild. Simulations
// drive the pipeline deterministically with Sync/Publish instead of the
// wall-clock Run loop, so snapshot epochs are a pure function of the
// simulated event sequence.
package mapmaker

import (
	"context"
	"sync/atomic"
	"time"

	"eum/internal/cdn"
	"eum/internal/mapping"
)

// Reason classifies why the map must be rebuilt. Reasons are a bitmask so
// the change feed can coalesce any number of pending signals into one
// build.
type Reason uint32

const (
	// ReasonHealth: a deployment's liveness changed (health monitor).
	ReasonHealth Reason = 1 << iota
	// ReasonPolicy: the routing policy was flipped.
	ReasonPolicy
	// ReasonMeasurement: new measurements arrived; scoring tables must be
	// recomputed, not just re-published.
	ReasonMeasurement
	// ReasonPeriodic: the refresh cadence elapsed.
	ReasonPeriodic
)

// Config parameterises a MapMaker.
type Config struct {
	// Interval is the publish cadence of the Run loop — how often a fresh
	// snapshot goes out even without signals, mirroring the paper's
	// periodic map publication. Default 10s.
	Interval time.Duration
}

// MapMaker owns map publication for one mapping.System. All builds go
// through it (or through System.Rebuild in standalone setups); the data
// plane never builds.
type MapMaker struct {
	sys      *mapping.System
	interval time.Duration

	// dirty accumulates Reasons since the last build; the feed is
	// coalescing, so a burst of signals costs one rebuild.
	dirty atomic.Uint32
	// wake nudges the Run loop; buffered so signal producers never block.
	wake chan struct{}

	published atomic.Uint64 // snapshots built and installed
	buildNs   atomic.Int64  // duration of the last build, nanoseconds
}

// New creates a MapMaker over a system. The system already serves its
// initial snapshot (published by NewSystem); the MapMaker takes over from
// there.
func New(sys *mapping.System, cfg Config) *MapMaker {
	if cfg.Interval <= 0 {
		cfg.Interval = 10 * time.Second
	}
	return &MapMaker{
		sys:      sys,
		interval: cfg.Interval,
		wake:     make(chan struct{}, 1),
	}
}

// System returns the system whose maps this MapMaker publishes.
func (m *MapMaker) System() *mapping.System { return m.sys }

// Notify marks the map dirty for the given reasons and wakes the pipeline.
// It never blocks and never builds; any number of notifications between
// builds fold into one.
func (m *MapMaker) Notify(r Reason) {
	// CAS loop instead of atomic.Uint32.Or, which needs go1.23.
	for {
		old := m.dirty.Load()
		if m.dirty.CompareAndSwap(old, old|uint32(r)) {
			break
		}
	}
	select {
	case m.wake <- struct{}{}:
	default:
	}
}

// OnDeploymentChange adapts the MapMaker to the cdn health monitor's
// callback: wire it as the Monitor's onChange so liveness flips flow
// through the change feed instead of invalidating scorer caches from the
// probe path.
func (m *MapMaker) OnDeploymentChange(*cdn.Deployment) { m.Notify(ReasonHealth) }

// SetPolicy records the desired routing policy and feeds the flip through
// the change feed. The flip takes effect at the next build (Sync, Publish
// or the Run loop) — policy is part of the published map, not of the query
// path.
func (m *MapMaker) SetPolicy(p mapping.Policy) {
	m.sys.SetDesiredPolicy(p)
	m.Notify(ReasonPolicy)
}

// takeDirty atomically claims and clears the pending reasons.
func (m *MapMaker) takeDirty() Reason {
	return Reason(m.dirty.Swap(0))
}

// build runs one pipeline pass for the claimed reasons: a measurement
// refresh drops the scoring tables first (so the build recomputes them),
// then a snapshot is built at the next epoch and installed.
func (m *MapMaker) build(r Reason) *mapping.Snapshot {
	if r&ReasonMeasurement != 0 {
		m.sys.Scorer().Invalidate()
	}
	start := time.Now()
	sn := m.sys.Rebuild()
	m.buildNs.Store(int64(time.Since(start)))
	m.published.Add(1)
	return sn
}

// Sync publishes a fresh snapshot if any signals are pending, else returns
// the current one unchanged. Deterministic drivers (simulations) call it
// at fixed points — e.g. once per simulated day after ticking the health
// monitor — so the epoch sequence depends only on the event sequence,
// never on wall-clock timing or worker count.
func (m *MapMaker) Sync() *mapping.Snapshot {
	if r := m.takeDirty(); r != 0 {
		return m.build(r)
	}
	return m.sys.Current()
}

// Publish unconditionally builds and installs a fresh snapshot, folding in
// any pending signals.
func (m *MapMaker) Publish() *mapping.Snapshot {
	return m.build(m.takeDirty() | ReasonPeriodic)
}

// Run is the production pipeline loop: it publishes on the configured
// cadence and additionally whenever the change feed wakes it, until ctx is
// cancelled. Start it as a goroutine next to the DNS servers.
func (m *MapMaker) Run(ctx context.Context) {
	t := time.NewTicker(m.interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			m.Publish()
		case <-m.wake:
			m.Sync()
		}
	}
}

// Current returns the currently published snapshot.
func (m *MapMaker) Current() *mapping.Snapshot { return m.sys.Current() }

// Published returns how many snapshots this MapMaker has built.
func (m *MapMaker) Published() uint64 { return m.published.Load() }

// LastBuildDuration returns how long the most recent snapshot build took.
func (m *MapMaker) LastBuildDuration() time.Duration {
	return time.Duration(m.buildNs.Load())
}
