// Package mapmaker is the control plane of the mapping stack: the
// background pipeline that turns health and measurement signals into
// published maps. It reproduces the paper's map-making architecture
// (§3–§5): topology discovery and scoring feed a MapMaker that builds a
// fresh map on a cadence, and the authoritative name servers (the data
// plane) only ever read the currently published, epoch-numbered
// mapping.Snapshot.
//
// Signals arrive through a coalescing change feed: the CDN health monitor
// reports deployment state flips (OnDeploymentChange), operators flip the
// routing policy (SetPolicy), and measurement sweeps mark the scoring
// tables dirty (Notify with ReasonMeasurement). The feed never builds
// anything itself — it marks reasons dirty and wakes the pipeline, which
// folds however many signals accumulated into one rebuild. Simulations
// drive the pipeline deterministically with Sync/Publish instead of the
// wall-clock Run loop, so snapshot epochs are a pure function of the
// simulated event sequence.
package mapmaker

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"eum/internal/cdn"
	"eum/internal/mapping"
	"eum/internal/telemetry"
)

// Reason classifies why the map must be rebuilt. Reasons are a bitmask so
// the change feed can coalesce any number of pending signals into one
// build.
type Reason uint32

const (
	// ReasonHealth: a deployment's liveness changed (health monitor).
	ReasonHealth Reason = 1 << iota
	// ReasonPolicy: the routing policy was flipped.
	ReasonPolicy
	// ReasonMeasurement: new measurements arrived; scoring tables must be
	// recomputed, not just re-published.
	ReasonMeasurement
	// ReasonPeriodic: the refresh cadence elapsed.
	ReasonPeriodic
	// ReasonLoad: the smoothed load signal crossed an overload (or
	// recovery) threshold — the map's distance-vs-load order is stale (see
	// LoadMonitor). The build re-captures utilization and re-ranks tables
	// against it.
	ReasonLoad
)

// Config parameterises a MapMaker.
type Config struct {
	// Interval is the publish cadence of the Run loop — how often a fresh
	// snapshot goes out even without signals, mirroring the paper's
	// periodic map publication. Default 10s.
	Interval time.Duration
}

// MapMaker owns map publication for one mapping.System. All builds go
// through it (or through System.Rebuild in standalone setups); the data
// plane never builds.
type MapMaker struct {
	sys      *mapping.System
	interval time.Duration

	// dirty accumulates Reasons since the last build; the feed is
	// coalescing, so a burst of signals costs one rebuild.
	dirty atomic.Uint32
	// wake nudges the Run loop; buffered so signal producers never block.
	wake chan struct{}

	// scopeMu guards the measurement scope: which ping targets the pending
	// ReasonMeasurement covers. scopeAll means an unscoped refresh (every
	// table re-ranked); scopeIDs accumulates target endpoint IDs from
	// NotifyMeasurement so the builder re-ranks only their partitions.
	scopeMu  sync.Mutex
	scopeAll bool
	scopeIDs map[uint64]struct{}

	published atomic.Uint64 // snapshots built and installed
	buildNs   atomic.Int64  // duration of the last build, nanoseconds
	// buildHist, when non-nil, records every successful build's duration.
	// Set by RegisterMetrics before Run starts.
	buildHist *telemetry.Histogram

	// buildFailures counts builds that panicked; the Run loop survives
	// them, keeps serving the last good snapshot, and retries later.
	buildFailures atomic.Uint64
	// lastFailure records the most recent failed build, nil if none yet.
	lastFailure atomic.Pointer[BuildFailure]
	// buildFault, when set, runs at the start of every build — a fault
	// injection hook for chaos tests (a panicking hook simulates a build
	// crash).
	buildFault atomic.Pointer[func()]

	// onPublish, when set, observes every successfully built and installed
	// snapshot. The distribution plane's publisher hooks here so its
	// delta-base retention ring sees every epoch (see mapdist.Publisher).
	onPublish atomic.Pointer[func(*mapping.Snapshot)]
}

// BuildFailure describes one failed map build.
type BuildFailure struct {
	// Reasons are the change-feed reasons the failed build was claiming.
	Reasons Reason
	// Err is the recovered build error.
	Err error
	// At is when the build failed.
	At time.Time
}

// New creates a MapMaker over a system. The system already serves its
// initial snapshot (published by NewSystem); the MapMaker takes over from
// there.
func New(sys *mapping.System, cfg Config) *MapMaker {
	if cfg.Interval <= 0 {
		cfg.Interval = 10 * time.Second
	}
	return &MapMaker{
		sys:      sys,
		interval: cfg.Interval,
		wake:     make(chan struct{}, 1),
	}
}

// System returns the system whose maps this MapMaker publishes.
func (m *MapMaker) System() *mapping.System { return m.sys }

// Notify marks the map dirty for the given reasons and wakes the pipeline.
// It never blocks and never builds; any number of notifications between
// builds fold into one. A plain ReasonMeasurement is unscoped: every
// scoring table is considered stale (use NotifyMeasurement to scope the
// refresh to specific ping targets).
func (m *MapMaker) Notify(r Reason) {
	if r&ReasonMeasurement != 0 {
		m.scopeMu.Lock()
		m.scopeAll = true
		m.scopeMu.Unlock()
	}
	m.markDirty(r)
	select {
	case m.wake <- struct{}{}:
	default:
	}
}

// NotifyMeasurement feeds a measurement refresh scoped to specific ping
// targets (by endpoint ID) through the change feed: the next build
// invalidates and re-ranks only the mapping partitions those targets
// serve, copying every untouched table from the previous snapshot. Scopes
// from successive notifications accumulate until a build claims them.
// Called with no IDs it is equivalent to Notify(ReasonMeasurement).
func (m *MapMaker) NotifyMeasurement(targetIDs ...uint64) {
	m.scopeMu.Lock()
	if len(targetIDs) == 0 {
		m.scopeAll = true
	} else if !m.scopeAll {
		if m.scopeIDs == nil {
			m.scopeIDs = make(map[uint64]struct{}, len(targetIDs))
		}
		for _, id := range targetIDs {
			m.scopeIDs[id] = struct{}{}
		}
	}
	m.scopeMu.Unlock()
	m.markDirty(ReasonMeasurement)
	select {
	case m.wake <- struct{}{}:
	default:
	}
}

// takeMeasurementScope atomically claims and clears the pending
// measurement scope.
func (m *MapMaker) takeMeasurementScope() (all bool, ids []uint64) {
	m.scopeMu.Lock()
	defer m.scopeMu.Unlock()
	all = m.scopeAll
	m.scopeAll = false
	if !all {
		for id := range m.scopeIDs {
			ids = append(ids, id)
		}
	}
	m.scopeIDs = nil
	return all, ids
}

// rearmMeasurementScope puts a claimed scope back after a failed build so
// the retry re-ranks at least as much as the failed attempt would have.
func (m *MapMaker) rearmMeasurementScope(all bool, ids []uint64) {
	m.scopeMu.Lock()
	defer m.scopeMu.Unlock()
	if all {
		m.scopeAll = true
		return
	}
	if m.scopeIDs == nil {
		m.scopeIDs = make(map[uint64]struct{}, len(ids))
	}
	for _, id := range ids {
		m.scopeIDs[id] = struct{}{}
	}
}

// markDirty folds reasons into the pending set without waking the loop.
// Failed builds use it to re-arm their claimed reasons for the next cadence
// tick without spinning the Run loop into an immediate retry.
func (m *MapMaker) markDirty(r Reason) {
	// CAS loop instead of atomic.Uint32.Or, which needs go1.23.
	for {
		old := m.dirty.Load()
		if m.dirty.CompareAndSwap(old, old|uint32(r)) {
			break
		}
	}
}

// OnDeploymentChange adapts the MapMaker to the cdn health monitor's
// callback: wire it as the Monitor's onChange so liveness flips flow
// through the change feed instead of invalidating scorer caches from the
// probe path.
func (m *MapMaker) OnDeploymentChange(*cdn.Deployment) { m.Notify(ReasonHealth) }

// SetPolicy records the desired routing policy and feeds the flip through
// the change feed. The flip takes effect at the next build (Sync, Publish
// or the Run loop) — policy is part of the published map, not of the query
// path.
func (m *MapMaker) SetPolicy(p mapping.Policy) {
	m.sys.SetDesiredPolicy(p)
	m.Notify(ReasonPolicy)
}

// takeDirty atomically claims and clears the pending reasons.
func (m *MapMaker) takeDirty() Reason {
	return Reason(m.dirty.Swap(0))
}

// build runs one pipeline pass for the claimed reasons: a measurement
// refresh drops the scoring tables first (so the build recomputes them),
// then a snapshot is built at the next epoch and installed.
//
// A build that panics must never wedge the pipeline or tear down the last
// good map: the panic is recovered, recorded, and the claimed reasons are
// re-marked dirty so the next cadence tick (or signal) retries the build.
// The currently published snapshot stays in place — the data plane keeps
// serving it, and the authority's staleness watchdog degrades answers if
// the failures persist long enough.
func (m *MapMaker) build(r Reason) *mapping.Snapshot {
	var scopeAll bool
	var scopeIDs []uint64
	if r&ReasonMeasurement != 0 {
		scopeAll, scopeIDs = m.takeMeasurementScope()
	}
	sn, err := m.tryBuild(r, scopeAll, scopeIDs)
	if err != nil {
		m.buildFailures.Add(1)
		m.lastFailure.Store(&BuildFailure{Reasons: r, Err: err, At: time.Now()})
		// Re-arm the claimed reasons (and measurement scope) without waking
		// the loop: an immediate wake would spin a persistently failing
		// build into a hot retry loop; the periodic tick is the retry
		// cadence.
		if r&ReasonMeasurement != 0 {
			m.rearmMeasurementScope(scopeAll, scopeIDs)
		}
		m.markDirty(r)
		return m.sys.Current()
	}
	m.published.Add(1)
	if f := m.onPublish.Load(); f != nil {
		(*f)(sn)
	}
	return sn
}

// SetOnPublish installs a hook observing every successfully published
// snapshot, called from the build goroutine after the install. Pass nil
// to remove. Set before Run starts.
func (m *MapMaker) SetOnPublish(f func(*mapping.Snapshot)) {
	if f == nil {
		m.onPublish.Store(nil)
		return
	}
	m.onPublish.Store(&f)
}

// tryBuild performs the build, converting a panic anywhere in the pipeline
// (fault hook, scorer invalidation, snapshot construction) into an error.
func (m *MapMaker) tryBuild(r Reason, scopeAll bool, scopeIDs []uint64) (sn *mapping.Snapshot, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("mapmaker: build panicked: %v", p)
		}
	}()
	if f := m.buildFault.Load(); f != nil && *f != nil {
		(*f)()
	}
	if r&ReasonMeasurement != 0 {
		// Hand the refresh scope to the builder: scoped IDs re-rank only
		// the partitions interned on those ping targets; an unscoped
		// refresh (or an ID that is not a target) re-ranks everything.
		if scopeAll || len(scopeIDs) == 0 {
			m.sys.Builder().MarkMeasurementsDirty()
		} else {
			m.sys.Builder().MarkMeasurementsDirty(scopeIDs...)
		}
	}
	if r&ReasonLoad != 0 {
		// A load-threshold crossing: force the builder to re-capture the
		// utilization vector and re-rank against it (no measurement
		// recompute — scorer caches stay warm).
		m.sys.Builder().MarkLoadDirty()
	}
	start := time.Now()
	sn = m.sys.Rebuild()
	elapsed := time.Since(start)
	m.buildNs.Store(int64(elapsed))
	if m.buildHist != nil {
		m.buildHist.Observe(elapsed)
	}
	return sn, nil
}

// RegisterMetrics wires the MapMaker's publish/failure counters, snapshot
// gauges and a build-duration histogram into reg under the mapmaker_
// namespace. Call before Run starts; the histogram field is not
// synchronised against a running pipeline loop.
func (m *MapMaker) RegisterMetrics(reg *telemetry.Registry) {
	reg.Counter("mapmaker_published_total",
		"Map snapshots built and installed.", m.published.Load)
	reg.Counter("mapmaker_build_failures_total",
		"Map builds that panicked and were recovered.", m.buildFailures.Load)
	reg.Gauge("mapmaker_last_build_seconds",
		"Duration of the most recent successful map build.", func() float64 {
			return time.Duration(m.buildNs.Load()).Seconds()
		})
	reg.Gauge("mapmaker_map_epoch",
		"Epoch of the currently published snapshot.", func() float64 {
			return float64(m.sys.Current().Epoch())
		})
	m.buildHist = reg.Histogram("mapmaker_build_seconds",
		"Map build (snapshot pipeline) duration.")
}

// SetBuildFault installs a hook run at the start of every build — fault
// injection for chaos and resilience tests (a panicking hook simulates a
// crashing build). Pass nil to clear.
func (m *MapMaker) SetBuildFault(f func()) {
	if f == nil {
		m.buildFault.Store(nil)
		return
	}
	m.buildFault.Store(&f)
}

// BuildFailures returns how many builds have panicked and been recovered.
func (m *MapMaker) BuildFailures() uint64 { return m.buildFailures.Load() }

// LastBuildFailure returns the most recent failed build, or nil if every
// build so far succeeded.
func (m *MapMaker) LastBuildFailure() *BuildFailure { return m.lastFailure.Load() }

// Sync publishes a fresh snapshot if any signals are pending, else returns
// the current one unchanged. Deterministic drivers (simulations) call it
// at fixed points — e.g. once per simulated day after ticking the health
// monitor — so the epoch sequence depends only on the event sequence,
// never on wall-clock timing or worker count.
func (m *MapMaker) Sync() *mapping.Snapshot {
	if r := m.takeDirty(); r != 0 {
		return m.build(r)
	}
	return m.sys.Current()
}

// Publish unconditionally builds and installs a fresh snapshot, folding in
// any pending signals.
func (m *MapMaker) Publish() *mapping.Snapshot {
	return m.build(m.takeDirty() | ReasonPeriodic)
}

// Run is the production pipeline loop: it publishes on the configured
// cadence and additionally whenever the change feed wakes it, until ctx is
// cancelled. Start it as a goroutine next to the DNS servers.
func (m *MapMaker) Run(ctx context.Context) {
	t := time.NewTicker(m.interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			m.Publish()
		case <-m.wake:
			m.Sync()
		}
	}
}

// Current returns the currently published snapshot.
func (m *MapMaker) Current() *mapping.Snapshot { return m.sys.Current() }

// Published returns how many snapshots this MapMaker has built.
func (m *MapMaker) Published() uint64 { return m.published.Load() }

// LastBuildDuration returns how long the most recent snapshot build took.
func (m *MapMaker) LastBuildDuration() time.Duration {
	return time.Duration(m.buildNs.Load())
}
