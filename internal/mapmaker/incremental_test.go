package mapmaker

import (
	"sync"
	"testing"

	"eum/internal/cdn"
	"eum/internal/mapping"
	"eum/internal/netmodel"
)

// shiftProber wraps the network model and lets a test mutate the measured
// ping of paths touching specific endpoints — a stand-in for a measurement
// sweep refreshing one ping target's vector.
type shiftProber struct {
	base *netmodel.Model

	mu    sync.Mutex
	shift map[uint64]float64
}

func (p *shiftProber) PingMs(a, b netmodel.Endpoint) float64 {
	ms := p.base.PingMs(a, b)
	p.mu.Lock()
	ms += p.shift[a.ID] + p.shift[b.ID]
	p.mu.Unlock()
	return ms
}

func (p *shiftProber) setShift(id uint64, ms float64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.shift == nil {
		p.shift = map[uint64]float64{}
	}
	p.shift[id] = ms
}

// TestIncrementalBuildOneTarget is the incremental-build regression test:
// after one ping target's measurement changes, a NotifyMeasurement-scoped
// publish must re-rank only the tables that target serves (counter on the
// builder), and the resulting snapshot must be bitwise-equal to a cold
// full build over the same measurements at the same epoch.
func TestIncrementalBuildOneTarget(t *testing.T) {
	prober := &shiftProber{base: testNet}
	platform := cdn.MustGenerateUniverse(testW, cdn.Config{Seed: 7, NumDeployments: 40, ServersPerDeployment: 4})
	cfg := mapping.Config{Policy: mapping.EndUser, PingTargets: 100, PartitionMiles: 75}
	sys := mapping.NewSystem(testW, platform, prober, cfg)
	mm := New(sys, Config{})
	sc := sys.Scorer()

	// Pick a ping target that certainly backs a published table: the first
	// universe endpoint (LDNS 0) always represents its own partition, so
	// the target standing in for it is interned onto a live segment.
	targetEp, ok := sc.TargetFor(testW.LDNSes[0].Endpoint())
	if !ok {
		t.Fatal("clustering off")
	}
	targetID := targetEp.ID
	if _, ok := sc.TargetIndex(targetID); !ok {
		t.Fatal("TargetFor returned a non-target")
	}

	tables := sys.Current().Tables()

	// Warm republish with no signals beyond the cadence: the arena must be
	// shared wholesale — an incremental build re-ranking nothing.
	full0, inc0, rr0 := sys.Builder().BuildStats()
	mm.Publish()
	full1, inc1, rr1 := sys.Builder().BuildStats()
	if full1 != full0 || inc1 != inc0+1 || rr1 != rr0 {
		t.Fatalf("warm publish: builds full %d→%d inc %d→%d reranked %d→%d, want one incremental re-ranking nothing",
			full0, full1, inc0, inc1, rr0, rr1)
	}

	// Mutate the target's measurement and feed a scoped refresh.
	prober.setShift(targetID, 40)
	mm.NotifyMeasurement(targetID)
	sn := mm.Sync()

	full2, inc2, rr2 := sys.Builder().BuildStats()
	if full2 != full1 {
		t.Fatalf("scoped refresh triggered a full build (%d→%d)", full1, full2)
	}
	if inc2 != inc1+1 {
		t.Fatalf("scoped refresh: incremental builds %d→%d, want +1", inc1, inc2)
	}
	if got := rr2 - rr1; got != 1 {
		t.Fatalf("scoped refresh re-ranked %d tables, want exactly the dirty target's 1 (of %d)", got, tables)
	}

	// Bitwise equality with a cold full build at the same epoch over the
	// same (mutated) measurements.
	cold := mapping.NewSnapshotBuilder(testW, platform, prober, cfg).Build(sn.Epoch(), sn.Policy())
	if cold.Epoch() != sn.Epoch() || cold.Policy() != sn.Policy() {
		t.Fatal("cold rebuild epoch/policy mismatch")
	}
	checkEqual := func(id uint64, client bool, what string) {
		t.Helper()
		got, want := sn.RankOf(id, client), cold.RankOf(id, client)
		if len(got) != len(want) {
			t.Fatalf("%s %d: %d ranked vs cold %d", what, id, len(got), len(want))
		}
		for j := range got {
			if got[j].Deployment != want[j].Deployment || got[j].Score != want[j].Score {
				t.Fatalf("%s %d rank %d: incremental %s/%v, cold %s/%v", what, id, j,
					got[j].Deployment.Name, got[j].Score, want[j].Deployment.Name, want[j].Score)
			}
		}
	}
	for _, b := range testW.Blocks {
		checkEqual(b.ID, true, "block")
	}
	for _, l := range testW.LDNSes {
		checkEqual(l.ID, false, "ldns")
	}
	checkEqual(^uint64(0)-9, true, "client fallback")
	checkEqual(^uint64(0)-9, false, "ldns fallback")

	// An unscoped measurement refresh still re-ranks everything.
	mm.Notify(ReasonMeasurement)
	mm.Sync()
	full3, _, rr3 := sys.Builder().BuildStats()
	if full3 != full2+1 {
		t.Fatalf("unscoped refresh: full builds %d→%d, want +1", full2, full3)
	}
	if rr3-rr2 != uint64(tables) {
		t.Fatalf("unscoped refresh re-ranked %d tables, want all %d", rr3-rr2, tables)
	}
}

// TestIncrementalScopeSurvivesFailedBuild: a build that crashes after
// claiming a scoped measurement refresh must not lose the scope — the
// retry re-ranks the dirty target's tables.
func TestIncrementalScopeSurvivesFailedBuild(t *testing.T) {
	prober := &shiftProber{base: testNet}
	platform := cdn.MustGenerateUniverse(testW, cdn.Config{Seed: 7, NumDeployments: 40, ServersPerDeployment: 4})
	sys := mapping.NewSystem(testW, platform, prober,
		mapping.Config{Policy: mapping.EndUser, PingTargets: 100, PartitionMiles: 75})
	mm := New(sys, Config{})
	sc := sys.Scorer()

	targetEp, ok := sc.TargetFor(testW.LDNSes[0].Endpoint())
	if !ok {
		t.Fatal("clustering off")
	}
	targetID := targetEp.ID

	mm.SetBuildFault(func() { panic("injected build crash") })
	prober.setShift(targetID, 25)
	mm.NotifyMeasurement(targetID)
	before := sys.Current()
	if mm.Sync() != before {
		t.Fatal("failed build replaced the published snapshot")
	}
	if mm.BuildFailures() != 1 {
		t.Fatalf("BuildFailures = %d, want 1", mm.BuildFailures())
	}

	mm.SetBuildFault(nil)
	sn := mm.Sync() // reasons and scope were re-armed
	if sn == before {
		t.Fatal("retry did not publish")
	}
	cold := mapping.NewSnapshotBuilder(testW, platform, prober,
		mapping.Config{Policy: mapping.EndUser, PingTargets: 100, PartitionMiles: 75}).
		Build(sn.Epoch(), sn.Policy())
	for i := 0; i < len(testW.Blocks); i += 7 {
		b := testW.Blocks[i]
		got, want := sn.RankOf(b.ID, true), cold.RankOf(b.ID, true)
		for j := range got {
			if got[j] != want[j] {
				t.Fatalf("block %v rank %d diverged after failed-build retry", b.Prefix, j)
			}
		}
	}
}
