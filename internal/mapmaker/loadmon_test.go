package mapmaker

import (
	"testing"
	"time"

	"eum/internal/cdn"
	"eum/internal/mapping"
)

var t0 = time.Unix(1700000000, 0)

// fastCfg makes the EWMA effectively pass-through for observations a
// second apart, so threshold tests control the smoothed value directly.
func fastCfg() LoadSignalConfig {
	return LoadSignalConfig{
		EnterUtil:    0.8,
		Hysteresis:   0.2,
		EWMA:         time.Millisecond,
		MaxSignalAge: time.Hour,
		MinRepublish: 10 * time.Second,
	}
}

func testDep(id uint64) *cdn.Deployment {
	return &cdn.Deployment{ID: id, Name: "T-0001"}
}

func TestLoadMonitorHysteresisBand(t *testing.T) {
	lm := NewLoadMonitor(nil, fastCfg())
	d := testDep(1)

	lm.Observe(d, 0.5, t0)
	if got := lm.Crossings(); got != 0 {
		t.Fatalf("crossings after idle observe = %d", got)
	}
	// Enter overload at >= 0.8.
	lm.Observe(d, 0.9, t0.Add(1*time.Second))
	if lm.Crossings() != 1 || lm.Overloaded() != 1 {
		t.Fatalf("enter crossing not detected: crossings=%d overloaded=%d",
			lm.Crossings(), lm.Overloaded())
	}
	// Inside the band (exit threshold 0.6): still overloaded, no flip.
	lm.Observe(d, 0.7, t0.Add(2*time.Second))
	if lm.Crossings() != 1 || lm.Overloaded() != 1 {
		t.Fatalf("in-band wobble flipped state: crossings=%d overloaded=%d",
			lm.Crossings(), lm.Overloaded())
	}
	// Dipping to the entry threshold's underside but above exit: still in.
	lm.Observe(d, 0.79, t0.Add(3*time.Second))
	if lm.Crossings() != 1 {
		t.Fatal("sub-enter wobble counted as crossing")
	}
	// Below exit threshold: recovery flip.
	lm.Observe(d, 0.5, t0.Add(4*time.Second))
	if lm.Crossings() != 2 || lm.Overloaded() != 0 {
		t.Fatalf("exit crossing not detected: crossings=%d overloaded=%d",
			lm.Crossings(), lm.Overloaded())
	}
	if got := lm.Flips(d.ID); got != 2 {
		t.Errorf("flips = %d, want 2", got)
	}
}

// TestLoadMonitorSingleThresholdWouldFlap documents why the band exists:
// a gauge wobbling around 0.8 flips state every observation without
// hysteresis semantics, but with the band it flips exactly once.
func TestLoadMonitorSingleThresholdWouldFlap(t *testing.T) {
	lm := NewLoadMonitor(nil, fastCfg())
	d := testDep(2)
	wobble := []float64{0.82, 0.78, 0.83, 0.77, 0.81, 0.79, 0.84, 0.76}
	for i, u := range wobble {
		lm.Observe(d, u, t0.Add(time.Duration(i)*time.Second))
	}
	if got := lm.Crossings(); got != 1 {
		t.Errorf("wobble around the enter threshold crossed %d times, want 1 (hysteresis)", got)
	}
	if lm.Overloaded() != 1 {
		t.Error("deployment should still be held overloaded inside the band")
	}
}

func TestLoadMonitorEWMASmoothing(t *testing.T) {
	lm := NewLoadMonitor(nil, LoadSignalConfig{
		EnterUtil: 0.8, Hysteresis: 0.2,
		EWMA: 30 * time.Second, MaxSignalAge: time.Hour, MinRepublish: time.Second,
	})
	d := testDep(3)
	lm.Observe(d, 0.1, t0)
	// One instantaneous spike to 10× capacity must not trip the threshold
	// through a 30s EWMA observed 1s later...
	lm.Observe(d, 10, t0.Add(1*time.Second))
	if lm.Overloaded() != 0 {
		u, _ := lm.Smoothed(d.ID)
		t.Fatalf("one spike tripped the smoothed threshold (ewma=%v)", u)
	}
	// ...but sustained overload walks the EWMA across it.
	for i := 2; i < 120; i++ {
		lm.Observe(d, 1.5, t0.Add(time.Duration(i)*time.Second))
	}
	if lm.Overloaded() != 1 {
		u, _ := lm.Smoothed(d.ID)
		t.Fatalf("sustained overload never tripped the threshold (ewma=%v)", u)
	}
}

func TestLoadMonitorDampingInterval(t *testing.T) {
	mm, p := newMapMaker(t, mapping.EndUser)
	lm := NewLoadMonitor(mm, fastCfg()) // MinRepublish 10s
	d := p.Deployments[0]

	lm.Observe(d, 0.9, t0) // enter: immediate notify
	if lm.Notifies() != 1 {
		t.Fatalf("notifies = %d, want 1", lm.Notifies())
	}
	lm.Observe(d, 0.1, t0.Add(2*time.Second)) // exit inside damping window
	if lm.Notifies() != 1 {
		t.Fatalf("notify sent inside damping window (notifies=%d)", lm.Notifies())
	}
	if lm.Damped() == 0 {
		t.Fatal("damped crossing not counted")
	}
	// Window still open at +9s: flush must wait.
	lm.Tick(&cdn.Platform{}, t0.Add(9*time.Second))
	if lm.Notifies() != 1 {
		t.Fatal("pending notify flushed before the window elapsed")
	}
	// Window elapsed: pending notification goes out.
	lm.Tick(&cdn.Platform{}, t0.Add(11*time.Second))
	if lm.Notifies() != 2 {
		t.Fatalf("pending notify not flushed after window (notifies=%d)", lm.Notifies())
	}
	if lm.WindowViolations() != 0 {
		t.Fatalf("window violations = %d", lm.WindowViolations())
	}
}

func TestLoadMonitorStaleSignal(t *testing.T) {
	lm := NewLoadMonitor(nil, LoadSignalConfig{MaxSignalAge: time.Minute})
	d := testDep(4)

	// Never observed: stale.
	if _, ok := lm.Utilization(d); ok {
		t.Fatal("unobserved deployment reported a utilization")
	}
	lm.Observe(d, 0.6, t0)
	now := t0.Add(time.Second)
	lm.SetClock(func() time.Time { return now })
	if u, ok := lm.Utilization(d); !ok || u != 0.6 {
		t.Fatalf("fresh signal = %v,%v, want 0.6,true", u, ok)
	}
	// Feed dies: the same reading ages out and must be withheld.
	now = t0.Add(10 * time.Minute)
	if _, ok := lm.Utilization(d); ok {
		t.Fatal("stale signal was served")
	}
	if lm.StaleSignals() < 2 {
		t.Errorf("stale tripwire = %d, want >= 2", lm.StaleSignals())
	}
}

// TestReasonLoadFlowsThroughFeed: a threshold crossing republishes a map
// whose candidate order reflects the smoothed load signal, and recovery
// republishes the proximity order — the full closed loop at unit scale.
func TestReasonLoadFlowsThroughFeed(t *testing.T) {
	p := cdn.MustGenerateUniverse(testW, cdn.Config{Seed: 7, NumDeployments: 40, ServersPerDeployment: 4})
	sys := mapping.NewSystem(testW, p, testNet,
		mapping.Config{Policy: mapping.EndUser, PingTargets: 100, BalanceFactor: 4})
	mm := New(sys, Config{})
	lm := NewLoadMonitor(mm, fastCfg())
	lm.SetClock(func() time.Time { return t0.Add(time.Hour) }) // always fresh
	sys.SetUtilizationSource(lm)

	blk := testW.Blocks[0].Endpoint().ID
	sn0 := mm.Publish()
	hot := sn0.RankOf(blk, true)[0].Deployment

	// Drive the hot deployment into overload through the monitor.
	for i := 0; i < 5; i++ {
		lm.Observe(hot, 2.0, t0.Add(time.Duration(i)*time.Second))
	}
	if lm.Notifies() == 0 {
		t.Fatal("overload crossing sent no notification")
	}
	sn1 := mm.Sync()
	if sn1.Epoch() == sn0.Epoch() {
		t.Fatal("ReasonLoad did not republish")
	}
	r1 := sn1.RankOf(blk, true)
	if r1[0].Deployment == hot {
		// Spill is geometry-dependent; at β=4 and util 2 (factor 17) the
		// nearest alternative should win for the probe block. If not, the
		// table must at least have changed somewhere.
		changed := false
		for j := range r1 {
			if r1[j].Deployment != sn0.RankOf(blk, true)[j].Deployment {
				changed = true
				break
			}
		}
		if !changed {
			t.Fatal("load crossing republished an unchanged table")
		}
	}

	// Recovery: exit crossing follows after the damping window; the next
	// build reconverges to the proximity order.
	for i := 0; i < 5; i++ {
		lm.Observe(hot, 0.0, t0.Add(time.Duration(20+i)*time.Second))
	}
	lm.Tick(&cdn.Platform{}, t0.Add(40*time.Second))
	sn2 := mm.Sync()
	r0, r2 := sn0.RankOf(blk, true), sn2.RankOf(blk, true)
	for j := range r0 {
		if r0[j].Deployment != r2[j].Deployment || r0[j].Score != r2[j].Score {
			t.Fatalf("rank %d did not reconverge after recovery", j)
		}
	}
}
