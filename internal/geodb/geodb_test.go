package geodb

import (
	"math"
	"math/rand"
	"net/netip"
	"testing"

	"eum/internal/geo"
	"eum/internal/stats"
	"eum/internal/world"
)

var testW = world.MustGenerate(world.Config{Seed: 95, NumBlocks: 1500, IPv6Fraction: 0.2})

func TestBuildPerfect(t *testing.T) {
	db := Build(testW, Options{Seed: 1})
	if db.Mislocated() != 0 || db.Omitted() != 0 {
		t.Fatalf("error-free build injected errors: %d/%d", db.Mislocated(), db.Omitted())
	}
	if db.Size() == 0 {
		t.Fatal("empty database")
	}
	// Every block geolocates exactly.
	for _, b := range testW.Blocks[:200] {
		e, ok := db.Locate(b.Prefix.Addr().Next())
		if !ok {
			t.Fatalf("block %v unknown", b.Prefix)
		}
		if e.Loc != b.Loc || e.ASN != b.AS.ASN || e.Country != b.Country.Code() {
			t.Fatalf("block %v entry mismatch: %+v", b.Prefix, e)
		}
	}
	// LDNS addresses geolocate too.
	for _, l := range testW.LDNSes[:20] {
		e, ok := db.Locate(l.Addr)
		if !ok || e.Loc != l.Loc {
			t.Fatalf("LDNS %v entry = %+v, %v", l.Addr, e, ok)
		}
	}
}

func TestLocateUnknown(t *testing.T) {
	db := Build(testW, Options{Seed: 1})
	if _, ok := db.Locate(netip.MustParseAddr("203.0.113.7")); ok {
		t.Error("unknown address located")
	}
}

func TestErrorInjectionRates(t *testing.T) {
	db := Build(testW, Options{Seed: 2, MislocateFraction: 0.2, ErrorMiles: 500, UnknownFraction: 0.1})
	total := len(testW.Blocks) + len(testW.LDNSes)
	misRate := float64(db.Mislocated()) / float64(total)
	omitRate := float64(db.Omitted()) / float64(total)
	if misRate < 0.14 || misRate > 0.26 {
		t.Errorf("mislocate rate = %.3f, want ~0.2", misRate)
	}
	if omitRate < 0.06 || omitRate > 0.14 {
		t.Errorf("omit rate = %.3f, want ~0.1", omitRate)
	}
}

func TestErrorDisplacementMagnitude(t *testing.T) {
	db := Build(testW, Options{Seed: 3, MislocateFraction: 1, ErrorMiles: 500})
	for _, b := range testW.Blocks[:100] {
		e, ok := db.Locate(b.Prefix.Addr())
		if !ok {
			t.Fatal("block missing")
		}
		d := geo.Distance(e.Loc, b.Loc)
		if math.Abs(d-500) > 2 {
			t.Fatalf("displacement = %.1f, want 500", d)
		}
	}
}

func TestBuildDeterministic(t *testing.T) {
	db1 := Build(testW, Options{Seed: 4, MislocateFraction: 0.3, ErrorMiles: 200})
	db2 := Build(testW, Options{Seed: 4, MislocateFraction: 0.3, ErrorMiles: 200})
	for _, b := range testW.Blocks[:100] {
		e1, _ := db1.Locate(b.Prefix.Addr())
		e2, _ := db2.Locate(b.Prefix.Addr())
		if e1.Loc != e2.Loc {
			t.Fatal("same seed produced different errors")
		}
	}
}

func TestBuildInjectedRandEquivalentToSeed(t *testing.T) {
	// An explicitly injected source seeded like Options.Seed must produce
	// the identical database.
	seeded := Build(testW, Options{Seed: 4, MislocateFraction: 0.3, ErrorMiles: 200, UnknownFraction: 0.1})
	injected := Build(testW, Options{
		Rand: rand.New(rand.NewSource(4)),
		// Seed deliberately different: Rand must win.
		Seed: 999, MislocateFraction: 0.3, ErrorMiles: 200, UnknownFraction: 0.1,
	})
	if seeded.Size() != injected.Size() ||
		seeded.Mislocated() != injected.Mislocated() || seeded.Omitted() != injected.Omitted() {
		t.Fatalf("size/mislocated/omitted differ: %d/%d/%d vs %d/%d/%d",
			seeded.Size(), seeded.Mislocated(), seeded.Omitted(),
			injected.Size(), injected.Mislocated(), injected.Omitted())
	}
	for _, b := range testW.Blocks {
		e1, ok1 := seeded.Locate(b.Prefix.Addr())
		e2, ok2 := injected.Locate(b.Prefix.Addr())
		if ok1 != ok2 || e1 != e2 {
			t.Fatalf("block %v differs: %+v/%v vs %+v/%v", b.Prefix, e1, ok1, e2, ok2)
		}
	}
}

func TestDistance(t *testing.T) {
	db := Build(testW, Options{Seed: 5})
	b := testW.Blocks[0]
	d, ok := db.Distance(b.Prefix.Addr(), b.LDNS.Addr)
	if !ok {
		t.Fatal("distance unknown")
	}
	if math.Abs(d-b.ClientLDNSDistance()) > 0.01 {
		t.Errorf("distance = %.1f, truth %.1f", d, b.ClientLDNSDistance())
	}
	if _, ok := db.Distance(b.Prefix.Addr(), netip.MustParseAddr("203.0.113.1")); ok {
		t.Error("distance with unknown endpoint succeeded")
	}
}

// TestAnalysisRobustToGeoError reruns the §3 distance analysis through
// error-injected databases: the demand-weighted median distance should
// degrade gracefully, not collapse, under realistic geolocation error.
func TestAnalysisRobustToGeoError(t *testing.T) {
	medians := map[float64]float64{}
	for _, errFrac := range []float64{0, 0.1, 0.3} {
		db := Build(testW, Options{Seed: 6, MislocateFraction: errFrac, ErrorMiles: 100})
		var d stats.Dataset
		for _, b := range testW.Blocks {
			if dist, ok := db.Distance(b.Prefix.Addr(), b.LDNS.Addr); ok {
				d.Add(dist, b.Demand)
			}
		}
		medians[errFrac] = d.Median()
	}
	truth := medians[0]
	if truth <= 0 {
		t.Fatal("degenerate truth median")
	}
	// 10% of prefixes off by 100 miles moves the median far less than
	// the error magnitude itself.
	if math.Abs(medians[0.1]-truth) > 60 {
		t.Errorf("median moved %.1f mi under 10%% error", math.Abs(medians[0.1]-truth))
	}
	// Even 30% error keeps the analysis in the right regime.
	if medians[0.3] > truth+120 || medians[0.3] < truth/3 {
		t.Errorf("median %.1f under 30%% error, truth %.1f", medians[0.3], truth)
	}
}

func TestIPv6Locate(t *testing.T) {
	db := Build(testW, Options{Seed: 7})
	for _, b := range testW.Blocks {
		if !b.Prefix.Addr().Is6() {
			continue
		}
		host := b.Prefix.Addr().Next()
		e, ok := db.Locate(host)
		if !ok || e.Loc != b.Loc {
			t.Fatalf("v6 block %v: %+v, %v", b.Prefix, e, ok)
		}
		break
	}
}
