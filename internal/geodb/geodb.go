// Package geodb is the reproduction's Edgescape: a geolocation database
// mapping IP prefixes to geographic location, autonomous system and
// country (§2.2: "geographic information ... is deduced for IPs around the
// world using various data sources and geolocation methods").
//
// Real geolocation is imperfect, so the builder can inject deterministic
// error — a fraction of prefixes mislocated by a configurable distance and
// a fraction unknown — letting experiments measure how robust the paper's
// distance analyses are to geolocation inaccuracy.
package geodb

import (
	"math/rand"
	"net/netip"

	"eum/internal/geo"
	"eum/internal/world"
)

// Entry is one database record.
type Entry struct {
	Loc     geo.Point
	ASN     uint32
	Country string
}

// Options tunes database construction.
type Options struct {
	// Seed drives deterministic error injection when Rand is nil.
	Seed int64
	// Rand, when set, is the explicit error-injection source; it takes
	// precedence over Seed so callers can thread one RNG through several
	// builds (or split seeds per shard with par.ChildSeed).
	Rand *rand.Rand
	// MislocateFraction of prefixes are displaced by ErrorMiles in a
	// random direction.
	MislocateFraction float64
	// ErrorMiles is the displacement magnitude for mislocated prefixes.
	ErrorMiles float64
	// UnknownFraction of prefixes are omitted from the database.
	UnknownFraction float64
}

// DB answers prefix-to-location queries.
type DB struct {
	entries map[netip.Prefix]Entry
	// mislocated counts injected errors, for reporting.
	mislocated int
	omitted    int
}

// Build constructs a database from the world: one record per client block
// (at its /24 or /48 prefix) and one per LDNS address (/32 or /128).
func Build(w *world.World, opts Options) *DB {
	rng := opts.Rand
	if rng == nil {
		rng = rand.New(rand.NewSource(opts.Seed))
	}
	db := &DB{entries: make(map[netip.Prefix]Entry, len(w.Blocks)+len(w.LDNSes))}

	add := func(p netip.Prefix, e Entry) {
		if opts.UnknownFraction > 0 && rng.Float64() < opts.UnknownFraction {
			db.omitted++
			return
		}
		if opts.MislocateFraction > 0 && rng.Float64() < opts.MislocateFraction {
			e.Loc = geo.Offset(e.Loc, rng.Float64()*360, opts.ErrorMiles)
			db.mislocated++
		}
		db.entries[p] = e
	}
	for _, b := range w.Blocks {
		add(b.Prefix, Entry{Loc: b.Loc, ASN: b.AS.ASN, Country: b.Country.Code()})
	}
	for _, l := range w.LDNSes {
		bits := 32
		if l.Addr.Is6() {
			bits = 128
		}
		p, err := l.Addr.Prefix(bits)
		if err != nil {
			continue
		}
		add(p, Entry{Loc: l.Loc, ASN: l.ASN})
	}
	return db
}

// Locate returns the entry for the longest matching prefix covering addr.
func (db *DB) Locate(addr netip.Addr) (Entry, bool) {
	addr = addr.Unmap()
	maxBits := 32
	if addr.Is6() {
		maxBits = 128
	}
	for bits := maxBits; bits >= 8; bits-- {
		p, err := addr.Prefix(bits)
		if err != nil {
			return Entry{}, false
		}
		if e, ok := db.entries[p]; ok {
			return e, true
		}
	}
	return Entry{}, false
}

// Size returns the number of stored records.
func (db *DB) Size() int { return len(db.entries) }

// Mislocated returns the number of error-injected records.
func (db *DB) Mislocated() int { return db.mislocated }

// Omitted returns the number of records dropped as unknown.
func (db *DB) Omitted() int { return db.omitted }

// Distance geolocates both addresses and returns their great-circle
// distance in miles; ok is false when either address is unknown.
func (db *DB) Distance(a, b netip.Addr) (miles float64, ok bool) {
	ea, ok1 := db.Locate(a)
	eb, ok2 := db.Locate(b)
	if !ok1 || !ok2 {
		return 0, false
	}
	return geo.Distance(ea.Loc, eb.Loc), true
}
