package geo

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// Well-known city coordinates used as distance fixtures.
var (
	boston   = Point{42.3601, -71.0589}
	london   = Point{51.5074, -0.1278}
	sydney   = Point{-33.8688, 151.2093}
	tokyo    = Point{35.6762, 139.6503}
	saoPaulo = Point{-23.5505, -46.6333}
)

func TestDistanceKnownPairs(t *testing.T) {
	cases := []struct {
		name string
		a, b Point
		want float64 // miles
		tol  float64
	}{
		{"boston-london", boston, london, 3275, 25},
		{"london-sydney", london, sydney, 10560, 60},
		{"tokyo-saopaulo", tokyo, saoPaulo, 11530, 60},
		{"same-point", boston, boston, 0, 1e-9},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := Distance(c.a, c.b)
			if math.Abs(got-c.want) > c.tol {
				t.Errorf("Distance(%v,%v) = %.1f, want %.1f ± %.0f", c.a, c.b, got, c.want, c.tol)
			}
		})
	}
}

func TestDistanceSymmetric(t *testing.T) {
	f := func(lat1, lon1, lat2, lon2 float64) bool {
		p := Point{wrapLat(lat1), wrapLon(lon1)}
		q := Point{wrapLat(lat2), wrapLon(lon2)}
		d1, d2 := Distance(p, q), Distance(q, p)
		return math.Abs(d1-d2) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDistanceTriangleInequality(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		a := randPoint(rng)
		b := randPoint(rng)
		c := randPoint(rng)
		if Distance(a, c) > Distance(a, b)+Distance(b, c)+1e-6 {
			t.Fatalf("triangle inequality violated: %v %v %v", a, b, c)
		}
	}
}

func TestDistanceBounds(t *testing.T) {
	f := func(lat1, lon1, lat2, lon2 float64) bool {
		p := Point{wrapLat(lat1), wrapLon(lon1)}
		q := Point{wrapLat(lat2), wrapLon(lon2)}
		d := Distance(p, q)
		return d >= 0 && d <= math.Pi*EarthRadiusMiles+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDistanceAntipodes(t *testing.T) {
	p := Point{40, 30}
	q := Point{-40, -150}
	got := Distance(p, q)
	want := math.Pi * EarthRadiusMiles
	if math.Abs(got-want) > 1 {
		t.Errorf("antipodal distance = %.2f, want %.2f", got, want)
	}
}

func TestCentroidSinglePoint(t *testing.T) {
	c, ok := Centroid([]Weighted{{boston, 3.5}})
	if !ok {
		t.Fatal("Centroid returned !ok for a single weighted point")
	}
	if Distance(c, boston) > 0.01 {
		t.Errorf("centroid of single point = %v, want %v", c, boston)
	}
}

func TestCentroidEmptyAndZeroWeight(t *testing.T) {
	if _, ok := Centroid(nil); ok {
		t.Error("Centroid(nil) should report !ok")
	}
	if _, ok := Centroid([]Weighted{{boston, 0}}); ok {
		t.Error("Centroid of zero-weight points should report !ok")
	}
}

func TestCentroidAntipodal(t *testing.T) {
	pts := []Weighted{
		{Point{0, 0}, 1},
		{Point{0, 180}, 1},
	}
	if _, ok := Centroid(pts); ok {
		t.Error("Centroid of perfectly antipodal equal mass should report !ok")
	}
}

func TestCentroidWeighting(t *testing.T) {
	// A heavy point should dominate the centroid.
	pts := []Weighted{
		{boston, 1000},
		{london, 1},
	}
	c, ok := Centroid(pts)
	if !ok {
		t.Fatal("unexpected !ok")
	}
	if d := Distance(c, boston); d > 10 {
		t.Errorf("weighted centroid %v is %.1f mi from dominant point, want < 10", c, d)
	}
}

func TestCentroidAntimeridianCluster(t *testing.T) {
	// Two points straddling the antimeridian near Fiji: a naive lat/lon
	// average would land near lon 0 on the wrong side of the planet.
	a := Point{-17, 179}
	b := Point{-17, -179}
	c, ok := Centroid([]Weighted{{a, 1}, {b, 1}})
	if !ok {
		t.Fatal("unexpected !ok")
	}
	if Distance(c, Point{-17, 180}) > 30 {
		t.Errorf("antimeridian centroid = %v, want near (-17, 180)", c)
	}
}

func TestRadiusSymmetricPair(t *testing.T) {
	// Radius of two equal-weight points is half the pairwise distance
	// (to first order; great-circle curvature keeps it close).
	d := Distance(boston, london)
	r := Radius([]Weighted{{boston, 1}, {london, 1}})
	if math.Abs(r-d/2) > d*0.02 {
		t.Errorf("radius = %.1f, want ≈ %.1f", r, d/2)
	}
}

func TestRadiusZero(t *testing.T) {
	if r := Radius(nil); r != 0 {
		t.Errorf("Radius(nil) = %v, want 0", r)
	}
	if r := Radius([]Weighted{{boston, 5}}); r > 0.01 {
		t.Errorf("Radius(single) = %v, want ~0", r)
	}
}

func TestMeanDistanceTo(t *testing.T) {
	pts := []Weighted{{boston, 2}, {london, 2}}
	m := MeanDistanceTo(pts, boston)
	want := Distance(boston, london) / 2
	if math.Abs(m-want) > 0.5 {
		t.Errorf("MeanDistanceTo = %.2f, want %.2f", m, want)
	}
	if MeanDistanceTo(nil, boston) != 0 {
		t.Error("MeanDistanceTo(nil) != 0")
	}
}

func TestMidpoint(t *testing.T) {
	m := Midpoint(boston, london)
	d1, d2 := Distance(m, boston), Distance(m, london)
	if math.Abs(d1-d2) > 5 {
		t.Errorf("midpoint distances differ: %.1f vs %.1f", d1, d2)
	}
	total := Distance(boston, london)
	if math.Abs(d1+d2-total) > total*0.01 {
		t.Errorf("midpoint not on great circle: %.1f + %.1f != %.1f", d1, d2, total)
	}
}

func TestOffsetRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 200; i++ {
		p := randPoint(rng)
		brg := rng.Float64() * 360
		dist := rng.Float64() * 3000
		q := Offset(p, brg, dist)
		if !q.IsValid() {
			t.Fatalf("Offset produced invalid point %v from %v brg=%f d=%f", q, p, brg, dist)
		}
		got := Distance(p, q)
		if math.Abs(got-dist) > 1 {
			t.Fatalf("Offset distance = %.2f, want %.2f (p=%v brg=%.1f)", got, dist, p, brg)
		}
	}
}

func TestOffsetZeroDistance(t *testing.T) {
	q := Offset(boston, 123, 0)
	if Distance(q, boston) > 1e-6 {
		t.Errorf("Offset by 0 moved the point: %v -> %v", boston, q)
	}
}

func TestIsValid(t *testing.T) {
	cases := []struct {
		p    Point
		want bool
	}{
		{Point{0, 0}, true},
		{Point{90, 180}, true},
		{Point{-90, -180}, true},
		{Point{91, 0}, false},
		{Point{0, 181}, false},
		{Point{math.NaN(), 0}, false},
	}
	for _, c := range cases {
		if got := c.p.IsValid(); got != c.want {
			t.Errorf("IsValid(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestPointString(t *testing.T) {
	if s := (Point{42.36011, -71.05890}).String(); s != "42.3601,-71.0589" {
		t.Errorf("String() = %q", s)
	}
}

func randPoint(rng *rand.Rand) Point {
	// Uniform on the sphere via acos of uniform z.
	z := rng.Float64()*2 - 1
	lat := math.Asin(z) * 180 / math.Pi
	lon := rng.Float64()*360 - 180
	return Point{lat, lon}
}

func wrapLat(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return math.Mod(math.Abs(v), 180) - 90
}

func wrapLon(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return math.Mod(math.Abs(v), 360) - 180
}
