// Package geo provides geographic primitives used throughout the mapping
// system: points on the globe, great-circle distances, centroids, and
// weighted cluster radii.
//
// The paper measures all client-LDNS and client-server proximity as the
// great circle distance in miles between geolocated endpoints, and defines a
// client cluster's radius as the demand-weighted mean distance of its
// members to the demand-weighted centroid. This package implements exactly
// those definitions.
package geo

import (
	"fmt"
	"math"
)

// EarthRadiusMiles is the mean Earth radius in miles, the constant used to
// convert central angles to great-circle distances.
const EarthRadiusMiles = 3958.8

// Point is a location on the Earth's surface in decimal degrees.
// The zero value is the (0°N, 0°E) "null island" point, which is a valid
// location; use IsValid to detect out-of-range coordinates.
type Point struct {
	Lat float64 // latitude in degrees, north positive, in [-90, 90]
	Lon float64 // longitude in degrees, east positive, in [-180, 180]
}

// IsValid reports whether p has in-range latitude and longitude.
func (p Point) IsValid() bool {
	return p.Lat >= -90 && p.Lat <= 90 && p.Lon >= -180 && p.Lon <= 180 &&
		!math.IsNaN(p.Lat) && !math.IsNaN(p.Lon)
}

// String renders the point as "lat,lon" with 4 decimal places
// (roughly 10 m of precision, far finer than city granularity).
func (p Point) String() string {
	return fmt.Sprintf("%.4f,%.4f", p.Lat, p.Lon)
}

func radians(deg float64) float64 { return deg * math.Pi / 180 }

// Distance returns the great-circle distance in miles between p and q,
// computed with the haversine formula, which is numerically stable for
// nearby points (unlike the spherical law of cosines).
func Distance(p, q Point) float64 {
	lat1, lat2 := radians(p.Lat), radians(q.Lat)
	dLat := lat2 - lat1
	dLon := radians(q.Lon - p.Lon)
	sinLat := math.Sin(dLat / 2)
	sinLon := math.Sin(dLon / 2)
	a := sinLat*sinLat + math.Cos(lat1)*math.Cos(lat2)*sinLon*sinLon
	// Clamp to [0,1] to guard against floating-point drift for antipodes.
	if a > 1 {
		a = 1
	}
	return 2 * EarthRadiusMiles * math.Asin(math.Sqrt(a))
}

// Weighted pairs a point with a nonnegative weight, typically the client
// demand originating at that point.
type Weighted struct {
	Point  Point
	Weight float64
}

// Centroid returns the demand-weighted centroid of the given points.
// Points are converted to 3-D unit vectors, averaged, and projected back to
// the sphere, so clusters that straddle the antimeridian are handled
// correctly. The second return value is false when the total weight is zero
// (including an empty input) or when the weighted vectors cancel exactly.
func Centroid(points []Weighted) (Point, bool) {
	var x, y, z, total float64
	for _, wp := range points {
		if wp.Weight <= 0 {
			continue
		}
		lat, lon := radians(wp.Point.Lat), radians(wp.Point.Lon)
		cl := math.Cos(lat)
		x += wp.Weight * cl * math.Cos(lon)
		y += wp.Weight * cl * math.Sin(lon)
		z += wp.Weight * math.Sin(lat)
		total += wp.Weight
	}
	if total == 0 {
		return Point{}, false
	}
	x, y, z = x/total, y/total, z/total
	norm := math.Sqrt(x*x + y*y + z*z)
	if norm < 1e-12 {
		// Perfectly antipodal mass distribution: centroid undefined.
		return Point{}, false
	}
	return Point{
		Lat: math.Atan2(z, math.Hypot(x, y)) * 180 / math.Pi,
		Lon: math.Atan2(y, x) * 180 / math.Pi,
	}, true
}

// Radius returns the demand-weighted mean distance in miles from each point
// to the cluster centroid — the paper's definition of a client cluster's
// radius. It returns 0 for empty or zero-weight inputs.
func Radius(points []Weighted) float64 {
	c, ok := Centroid(points)
	if !ok {
		return 0
	}
	return MeanDistanceTo(points, c)
}

// MeanDistanceTo returns the demand-weighted mean great-circle distance in
// miles from the points to ref. It returns 0 when the total weight is zero.
func MeanDistanceTo(points []Weighted, ref Point) float64 {
	var sum, total float64
	for _, wp := range points {
		if wp.Weight <= 0 {
			continue
		}
		sum += wp.Weight * Distance(wp.Point, ref)
		total += wp.Weight
	}
	if total == 0 {
		return 0
	}
	return sum / total
}

// Midpoint returns the point halfway along the great circle from p to q.
func Midpoint(p, q Point) Point {
	c, ok := Centroid([]Weighted{{p, 1}, {q, 1}})
	if !ok {
		return p
	}
	return c
}

// Offset returns the point reached by travelling dist miles from p on the
// initial bearing (degrees clockwise from north). It is used by the world
// generator to scatter clients around city centres.
func Offset(p Point, bearingDeg, dist float64) Point {
	ang := dist / EarthRadiusMiles
	brg := radians(bearingDeg)
	lat1, lon1 := radians(p.Lat), radians(p.Lon)
	sinLat2 := math.Sin(lat1)*math.Cos(ang) + math.Cos(lat1)*math.Sin(ang)*math.Cos(brg)
	lat2 := math.Asin(clamp(sinLat2, -1, 1))
	lon2 := lon1 + math.Atan2(
		math.Sin(brg)*math.Sin(ang)*math.Cos(lat1),
		math.Cos(ang)-math.Sin(lat1)*sinLat2,
	)
	// Normalise longitude to [-180, 180).
	lonDeg := math.Mod(lon2*180/math.Pi+540, 360) - 180
	return Point{Lat: lat2 * 180 / math.Pi, Lon: lonDeg}
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
