package mapdist

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"eum/internal/cdn"
	"eum/internal/mapping"
	"eum/internal/mapwire"
	"eum/internal/telemetry"
)

// ContextDialer dials with a context — the subset of net.Dialer the
// fetcher needs, satisfied by faultnet.Dialer for chaos tests.
type ContextDialer interface {
	DialContext(ctx context.Context, network, address string) (net.Conn, error)
}

// FetcherConfig tunes a replica's snapshot fetcher.
type FetcherConfig struct {
	// Source is the publisher's admin address ("host:port"); the fetcher
	// requests http://<Source>/mapdist/snapshot.
	Source string
	// Interval between fetch attempts. Default 5s. A replica's map can
	// never be fresher than this, so config validation cross-checks it
	// against the staleness watchdog.
	Interval time.Duration
	// Timeout bounds one fetch (dial through body). Default Interval.
	Timeout time.Duration
	// Dialer optionally replaces the transport's dialer (fault injection).
	Dialer ContextDialer
}

// Fetcher keeps a replica's mapping system synchronised with a publisher:
// on every tick it offers its installed epoch, decodes whatever image
// comes back, and installs the result through the same atomic swap a
// local MapMaker would use. The serving plane cannot tell the difference
// — in particular, a partition that stops fetches walks the authority's
// degradation ladder exactly like a stalled local control plane, because
// Install is what advances PublishedAtNanos.
type Fetcher struct {
	sys      *mapping.System
	codec    *mapwire.Codec
	url      string
	source   string
	interval time.Duration
	client   *http.Client

	fetches     atomic.Uint64
	failures    atomic.Uint64
	fullImages  atomic.Uint64
	deltaImages atomic.Uint64
	unchanged   atomic.Uint64
	fullBytes   atomic.Uint64
	deltaBytes  atomic.Uint64
	sourceEpoch atomic.Uint64
	lastSuccess atomic.Int64 // unix nanos of last successful fetch, 0 = never
	lastAttempt atomic.Int64
	lastError   atomic.Pointer[string]
	// forceFull poisons the next request to `have=0` after a failed delta
	// application, guaranteeing resync instead of a delta-error loop.
	forceFull atomic.Bool
}

// NewFetcher builds a fetcher feeding sys from the publisher at
// cfg.Source, decoding against the given platform. Call
// System.BootstrapReplica before the first fetch so the publisher's
// epochs always win the install comparison.
func NewFetcher(sys *mapping.System, platform *cdn.Platform, cfg FetcherConfig) (*Fetcher, error) {
	if cfg.Source == "" {
		return nil, errors.New("mapdist: fetcher needs a source address")
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 5 * time.Second
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = cfg.Interval
	}
	// Keep-alives are off so every fetch re-dials: the dialer is the
	// fault-injection point in chaos tests, and in production a re-dial
	// per interval re-resolves a moved publisher at negligible cost.
	tr := &http.Transport{DisableKeepAlives: true}
	if cfg.Dialer != nil {
		tr.DialContext = cfg.Dialer.DialContext
	}
	return &Fetcher{
		sys:      sys,
		codec:    mapwire.NewCodec(platform),
		url:      "http://" + cfg.Source + SnapshotPath,
		source:   cfg.Source,
		interval: cfg.Interval,
		client:   &http.Client{Transport: tr, Timeout: cfg.Timeout},
	}, nil
}

// Interval returns the configured fetch interval.
func (f *Fetcher) Interval() time.Duration { return f.interval }

// Run fetches immediately, then on every interval tick until ctx ends.
func (f *Fetcher) Run(ctx context.Context) {
	_ = f.FetchOnce(ctx)
	t := time.NewTicker(f.interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			_ = f.FetchOnce(ctx)
		}
	}
}

// FetchOnce performs one fetch/decode/install cycle.
func (f *Fetcher) FetchOnce(ctx context.Context) error {
	f.fetches.Add(1)
	f.lastAttempt.Store(time.Now().UnixNano())
	err := f.fetch(ctx)
	if err != nil {
		f.failures.Add(1)
		msg := err.Error()
		f.lastError.Store(&msg)
		return err
	}
	f.lastSuccess.Store(time.Now().UnixNano())
	f.lastError.Store(nil)
	return nil
}

func (f *Fetcher) fetch(ctx context.Context) error {
	cur := f.sys.Current()
	have, layout := cur.Epoch(), cur.LayoutFingerprint()
	if f.forceFull.Load() {
		have = 0
	}
	url := fmt.Sprintf("%s?have=%d&layout=%016x", f.url, have, layout)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := f.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()

	if epoch, err := strconv.ParseUint(resp.Header.Get(headerEpoch), 10, 64); err == nil {
		f.sourceEpoch.Store(epoch)
	}
	switch resp.StatusCode {
	case http.StatusNoContent:
		f.unchanged.Add(1)
		return nil
	case http.StatusOK:
	default:
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return fmt.Errorf("mapdist: publisher answered %s: %s", resp.Status, body)
	}

	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	sn, err := f.codec.Decode(data, cur)
	if err != nil {
		if errors.Is(err, mapwire.ErrDeltaBase) {
			// The install raced a local change (or the publisher served a
			// stale cached delta): next fetch asks for a full image.
			f.forceFull.Store(true)
		}
		return err
	}
	hdr, _ := mapwire.ParseHeader(data)
	if hdr.Kind == mapwire.KindDelta {
		f.deltaImages.Add(1)
		f.deltaBytes.Add(uint64(len(data)))
	} else {
		f.fullImages.Add(1)
		f.fullBytes.Add(uint64(len(data)))
	}
	f.forceFull.Store(false)
	// Install is the same atomic swap a local build uses; an older image
	// racing a newer install simply loses and the next tick reconverges.
	f.sys.Install(sn)
	return nil
}

// EpochLag returns how many epochs the replica trails the publisher's
// last-seen epoch (0 when current or when no fetch has succeeded yet).
func (f *Fetcher) EpochLag() uint64 {
	src := f.sourceEpoch.Load()
	cur := f.sys.Current().Epoch()
	if src <= cur {
		return 0
	}
	return src - cur
}

// SyncStatus is a point-in-time view of the replica's distribution state,
// surfaced on /mapz.
type SyncStatus struct {
	Source         string    `json:"source"`
	SourceEpoch    uint64    `json:"source_epoch"`
	InstalledEpoch uint64    `json:"installed_epoch"`
	EpochLag       uint64    `json:"epoch_lag"`
	LastFetch      time.Time `json:"last_fetch,omitempty"`
	LastFetchAge   float64   `json:"last_fetch_age_seconds"`
	LastError      string    `json:"last_error,omitempty"`
	Fetches        uint64    `json:"fetches"`
	Failures       uint64    `json:"fetch_failures"`
	FullImages     uint64    `json:"full_images"`
	DeltaImages    uint64    `json:"delta_images"`
	Unchanged      uint64    `json:"unchanged"`
	FullBytes      uint64    `json:"full_bytes"`
	DeltaBytes     uint64    `json:"delta_bytes"`
}

// Status returns the current sync status.
func (f *Fetcher) Status() SyncStatus {
	st := SyncStatus{
		Source:         f.source,
		SourceEpoch:    f.sourceEpoch.Load(),
		InstalledEpoch: f.sys.Current().Epoch(),
		EpochLag:       f.EpochLag(),
		Fetches:        f.fetches.Load(),
		Failures:       f.failures.Load(),
		FullImages:     f.fullImages.Load(),
		DeltaImages:    f.deltaImages.Load(),
		Unchanged:      f.unchanged.Load(),
		FullBytes:      f.fullBytes.Load(),
		DeltaBytes:     f.deltaBytes.Load(),
	}
	if ns := f.lastSuccess.Load(); ns > 0 {
		st.LastFetch = time.Unix(0, ns)
		st.LastFetchAge = time.Since(st.LastFetch).Seconds()
	}
	if msg := f.lastError.Load(); msg != nil {
		st.LastError = *msg
	}
	return st
}

// RegisterMetrics wires the fetcher's counters and the replica-lag gauges
// into reg under the mapdist_ namespace.
func (f *Fetcher) RegisterMetrics(reg *telemetry.Registry) {
	reg.Counter("mapdist_fetches_total",
		"Snapshot fetch attempts against the publisher.", f.fetches.Load)
	reg.Counter("mapdist_fetch_failures_total",
		"Fetch attempts that failed (network, decode, or publisher error).", f.failures.Load)
	reg.Counter("mapdist_full_images_total",
		"Full snapshot images installed.", f.fullImages.Load)
	reg.Counter("mapdist_delta_images_total",
		"Delta images applied and installed.", f.deltaImages.Load)
	reg.Counter("mapdist_unchanged_total",
		"Fetches answered 204 (already current).", f.unchanged.Load)
	reg.Counter("mapdist_full_bytes_total",
		"Bytes received as full images.", f.fullBytes.Load)
	reg.Counter("mapdist_delta_bytes_total",
		"Bytes received as delta images.", f.deltaBytes.Load)
	reg.Gauge("mapdist_replica_epoch_lag",
		"Epochs the replica trails the publisher's last-seen epoch.",
		func() float64 { return float64(f.EpochLag()) })
	reg.Gauge("mapdist_last_fetch_age_seconds",
		"Seconds since the last successful fetch (-1 = never).",
		func() float64 {
			ns := f.lastSuccess.Load()
			if ns == 0 {
				return -1
			}
			return time.Duration(time.Now().UnixNano() - ns).Seconds()
		})
}
