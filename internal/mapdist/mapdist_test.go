package mapdist

import (
	"context"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"eum/internal/cdn"
	"eum/internal/mapping"
	"eum/internal/netmodel"
	"eum/internal/world"
)

var (
	distOnce sync.Once
	distW    *world.World
	distP    *cdn.Platform
	distCfg  = mapping.Config{Policy: mapping.EndUser, PingTargets: 100, PartitionMiles: 75}
)

func distFixture() (*world.World, *cdn.Platform) {
	distOnce.Do(func() {
		distW = world.MustGenerate(world.Config{Seed: 21, NumBlocks: 800})
		distP = cdn.MustGenerateUniverse(distW, cdn.Config{Seed: 21, NumDeployments: 60, ServersPerDeployment: 4})
	})
	return distW, distP
}

// shiftNet perturbs pings for chosen endpoints, emulating measurement
// refreshes that dirty single targets between publisher epochs.
type shiftNet struct {
	base  mapping.Prober
	shift map[uint64]float64
}

func (p *shiftNet) PingMs(a, b netmodel.Endpoint) float64 {
	return p.base.PingMs(a, b) + p.shift[a.ID] + p.shift[b.ID]
}

// dirtyOne shifts one live ping target on the publisher and rebuilds,
// returning the new snapshot (already installed and observed).
func dirtyOne(t *testing.T, sys *mapping.System, prober *shiftNet, pub *Publisher) *mapping.Snapshot {
	t.Helper()
	target, ok := sys.Builder().Scorer().TargetFor(distW.LDNSes[5].Endpoint())
	if !ok {
		t.Fatal("no ping target for LDNS 5")
	}
	prober.shift[target.ID] += 15
	sys.Builder().MarkMeasurementsDirty(target.ID)
	sn := sys.Rebuild()
	pub.Observe(sn)
	return sn
}

// newReplica builds a replica system over the same world/platform and a
// fetcher pointed at the test publisher.
func newReplica(t *testing.T, srvURL string) (*mapping.System, *Fetcher) {
	t.Helper()
	w, p := distFixture()
	sys := mapping.NewSystem(w, p, netmodel.NewDefault(), distCfg)
	sys.BootstrapReplica()
	f, err := NewFetcher(sys, p, FetcherConfig{Source: strings.TrimPrefix(srvURL, "http://")})
	if err != nil {
		t.Fatal(err)
	}
	return sys, f
}

func TestPublisherFetcherSync(t *testing.T) {
	w, p := distFixture()
	prober := &shiftNet{base: netmodel.NewDefault(), shift: map[uint64]float64{}}
	pubSys := mapping.NewSystem(w, p, prober, distCfg)
	pub := NewPublisher(pubSys, p, PublisherConfig{})
	srv := httptest.NewServer(pub)
	defer srv.Close()

	repSys, fetcher := newReplica(t, srv.URL)
	if got := repSys.Current().Epoch(); got != 0 {
		t.Fatalf("bootstrapped replica at epoch %d, want 0", got)
	}
	ctx := context.Background()

	// First fetch ships a full image.
	if err := fetcher.FetchOnce(ctx); err != nil {
		t.Fatal(err)
	}
	if got, want := repSys.Current().Epoch(), pubSys.Current().Epoch(); got != want {
		t.Fatalf("replica at epoch %d, publisher at %d", got, want)
	}
	st := fetcher.Status()
	if st.FullImages != 1 || st.DeltaImages != 0 {
		t.Fatalf("after first fetch: %d full / %d delta images", st.FullImages, st.DeltaImages)
	}

	// Nothing changed: the publisher answers 204.
	if err := fetcher.FetchOnce(ctx); err != nil {
		t.Fatal(err)
	}
	if st = fetcher.Status(); st.Unchanged != 1 {
		t.Fatalf("unchanged fetches = %d, want 1", st.Unchanged)
	}

	// A one-target refresh ships as a delta, and the delta-applied replica
	// answers exactly like the publisher.
	want := dirtyOne(t, pubSys, prober, pub)
	if err := fetcher.FetchOnce(ctx); err != nil {
		t.Fatal(err)
	}
	st = fetcher.Status()
	if st.DeltaImages != 1 {
		t.Fatalf("delta images = %d, want 1 (status %+v)", st.DeltaImages, st)
	}
	if st.DeltaBytes == 0 || st.DeltaBytes*10 >= st.FullBytes {
		t.Fatalf("delta %d bytes vs full %d bytes: want <10%%", st.DeltaBytes, st.FullBytes)
	}
	got := repSys.Current()
	if got.Epoch() != want.Epoch() {
		t.Fatalf("replica epoch %d, want %d", got.Epoch(), want.Epoch())
	}
	for _, blk := range w.Blocks[:40] {
		g, wnt := got.RankOf(blk.ID, true), want.RankOf(blk.ID, true)
		if len(g) != len(wnt) {
			t.Fatalf("block %d: %d ranked vs %d", blk.ID, len(g), len(wnt))
		}
		for j := range g {
			if g[j] != wnt[j] {
				t.Fatalf("block %d rank %d differs after delta apply", blk.ID, j)
			}
		}
	}
	if lag := fetcher.EpochLag(); lag != 0 {
		t.Fatalf("epoch lag %d after sync", lag)
	}
}

func TestPublisherFallsBackToFullWhenBaseEvicted(t *testing.T) {
	w, p := distFixture()
	prober := &shiftNet{base: netmodel.NewDefault(), shift: map[uint64]float64{}}
	pubSys := mapping.NewSystem(w, p, prober, distCfg)
	pub := NewPublisher(pubSys, p, PublisherConfig{History: 4})
	srv := httptest.NewServer(pub)
	defer srv.Close()

	repSys, fetcher := newReplica(t, srv.URL)
	ctx := context.Background()
	if err := fetcher.FetchOnce(ctx); err != nil {
		t.Fatal(err)
	}
	base := repSys.Current().Epoch()

	// Publish far past the retention ring while the replica sleeps.
	for i := 0; i < 8; i++ {
		dirtyOne(t, pubSys, prober, pub)
	}
	if pub.Retained() > 4 {
		t.Fatalf("retained %d snapshots, history cap 4", pub.Retained())
	}
	if err := fetcher.FetchOnce(ctx); err != nil {
		t.Fatal(err)
	}
	st := fetcher.Status()
	if st.FullImages != 2 || st.DeltaImages != 0 {
		t.Fatalf("evicted base should force a full image: %d full / %d delta", st.FullImages, st.DeltaImages)
	}
	if pub.DeltaMisses() == 0 {
		t.Fatal("publisher never counted the delta miss")
	}
	if got := repSys.Current().Epoch(); got != base+8 {
		t.Fatalf("replica at epoch %d, want %d", got, base+8)
	}
}

func TestFetcherRejectsForeignPlatform(t *testing.T) {
	w, p := distFixture()
	pubSys := mapping.NewSystem(w, p, netmodel.NewDefault(), distCfg)
	pub := NewPublisher(pubSys, p, PublisherConfig{})
	srv := httptest.NewServer(pub)
	defer srv.Close()

	otherP := cdn.MustGenerateUniverse(w, cdn.Config{Seed: 77, NumDeployments: 60, ServersPerDeployment: 4})
	repSys := mapping.NewSystem(w, otherP, netmodel.NewDefault(), distCfg)
	repSys.BootstrapReplica()
	fetcher, err := NewFetcher(repSys, otherP, FetcherConfig{Source: strings.TrimPrefix(srv.URL, "http://")})
	if err != nil {
		t.Fatal(err)
	}
	if err := fetcher.FetchOnce(context.Background()); err == nil {
		t.Fatal("fetch against a foreign platform succeeded")
	}
	if got := repSys.Current().Epoch(); got != 0 {
		t.Fatalf("foreign image was installed (epoch %d)", got)
	}
	if st := fetcher.Status(); st.Failures != 1 || st.LastError == "" {
		t.Fatalf("status after failure: %+v", st)
	}
}
