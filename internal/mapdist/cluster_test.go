package mapdist

import (
	"context"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"eum/internal/authority"
	"eum/internal/dnsclient"
	"eum/internal/dnsmsg"
	"eum/internal/dnsserver"
	"eum/internal/faultnet"
	"eum/internal/mapping"
	"eum/internal/netmodel"
)

// distReplica is one serving node of the cluster test: its own mapping
// system fed only by the fetcher, an authority with the degradation
// ladder armed, and a real UDP listener.
type distReplica struct {
	sys     *mapping.System
	auth    *authority.Authority
	fetcher *Fetcher
	srv     *dnsserver.Server
	addr    string
}

// TestDistClusterPartitionHeal runs the distribution plane end to end: a
// MapMaker node publishing a churning map over HTTP, three replicas
// fetching it over a faultnet-controlled control network, and a
// round-robin stub resolver querying all three over real UDP sockets.
//
// The drill: converge, then cut the control network completely. Replicas
// must keep answering (>=99% success) while walking the degradation
// ladder independently — the data plane never sees the partition. After
// the heal, every replica must reconverge on the publisher's frozen
// epoch within two fetch intervals.
func TestDistClusterPartitionHeal(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster drill takes a few seconds")
	}
	w, p := distFixture()
	const fetchEvery = 200 * time.Millisecond

	// MapMaker node: the publisher serves encoded snapshots over a real
	// TCP listener, exactly like the admin plane mounts it.
	prober := &shiftNet{base: netmodel.NewDefault(), shift: map[uint64]float64{}}
	pubSys := mapping.NewSystem(w, p, prober, distCfg)
	pub := NewPublisher(pubSys, p, PublisherConfig{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	httpSrv := &http.Server{Handler: pub}
	go func() { _ = httpSrv.Serve(ln) }()
	defer httpSrv.Close()

	// Rotating one-target refreshes churn the map every 100ms, so the
	// stream carries deltas while replicas are connected.
	var targets []uint64
	seen := map[uint64]bool{}
	for i := 0; i < len(w.LDNSes) && len(targets) < 5; i += 13 {
		if ep, ok := pubSys.Builder().Scorer().TargetFor(w.LDNSes[i].Endpoint()); ok && !seen[ep.ID] {
			seen[ep.ID] = true
			targets = append(targets, ep.ID)
		}
	}
	if len(targets) < 2 {
		t.Fatalf("only %d distinct ping targets", len(targets))
	}
	churnStop := make(chan struct{})
	var churn sync.WaitGroup
	churn.Add(1)
	go func() {
		defer churn.Done()
		tick := time.NewTicker(100 * time.Millisecond)
		defer tick.Stop()
		for i := 0; ; i++ {
			select {
			case <-churnStop:
				return
			case <-tick.C:
			}
			id := targets[i%len(targets)]
			prober.shift[id] += 2
			pubSys.Builder().MarkMeasurementsDirty(id)
			pub.Observe(pubSys.Rebuild())
		}
	}()

	// The control network: every replica fetches through this injector's
	// dialer, so SetPartitioned cuts MapMaker->replica distribution while
	// leaving the client-facing UDP plane untouched.
	ctrl := faultnet.NewInjector(faultnet.Config{Seed: 9})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	replicas := make([]*distReplica, 3)
	for i := range replicas {
		sys := mapping.NewSystem(w, p, netmodel.NewDefault(), distCfg)
		sys.BootstrapReplica()
		auth, err := authority.New("cdn.example.net", sys)
		if err != nil {
			t.Fatal(err)
		}
		auth.SetDegradeConfig(authority.DegradeConfig{
			StaleAfter:    500 * time.Millisecond,
			FallbackAfter: 1500 * time.Millisecond,
			ServfailAfter: time.Hour,
			StaleTTL:      time.Second,
		})
		fetcher, err := NewFetcher(sys, p, FetcherConfig{
			Source:   ln.Addr().String(),
			Interval: fetchEvery,
			Timeout:  150 * time.Millisecond,
			Dialer:   ctrl.NewDialer(),
		})
		if err != nil {
			t.Fatal(err)
		}
		srv, err := dnsserver.Listen("127.0.0.1:0", auth)
		if err != nil {
			t.Fatal(err)
		}
		go func() { _ = srv.Serve() }()
		go fetcher.Run(ctx)
		replicas[i] = &distReplica{
			sys: sys, auth: auth, fetcher: fetcher, srv: srv,
			addr: srv.Addr().String(),
		}
		defer srv.Close()
	}

	// The anycast VIP stand-in: one resolver rotating across all three
	// replicas with per-server health tracking.
	rr, err := dnsclient.NewRoundRobin(&dnsclient.Client{
		Timeout: 250 * time.Millisecond, Retries: 1,
		BackoffBase: 5 * time.Millisecond, BackoffMax: 20 * time.Millisecond,
		Seed: 1,
	}, dnsclient.RoundRobinConfig{}, replicas[0].addr, replicas[1].addr, replicas[2].addr)
	if err != nil {
		t.Fatal(err)
	}

	// Phase 1: converge. Every replica must install images and start
	// applying deltas from the churn stream.
	deadline := time.Now().Add(5 * time.Second)
	for {
		behind := 0
		for _, r := range replicas {
			st := r.fetcher.Status()
			if r.sys.Current().Epoch() == 0 || st.DeltaImages < 1 {
				behind++
			}
		}
		if behind == 0 {
			break
		}
		if time.Now().After(deadline) {
			for i, r := range replicas {
				t.Logf("replica %d: epoch=%d status=%+v", i, r.sys.Current().Epoch(), r.fetcher.Status())
			}
			t.Fatal("replicas never converged onto the delta stream")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Phase 2: total partition of the control network. The publisher keeps
	// churning; replicas must keep answering from their last map and walk
	// the staleness ladder on their own clocks.
	ctrl.SetPartitioned(true)
	partitionAt := time.Now()
	var total, failures atomic.Uint64
	queryUntil := partitionAt.Add(1600 * time.Millisecond)
	for time.Now().Before(queryUntil) {
		for i := 0; i < 10; i++ {
			total.Add(1)
			blk := w.Blocks[(int(total.Load())*17)%len(w.Blocks)]
			resp, err := rr.Lookup(ctx, "img.cdn.example.net", dnsmsg.TypeA, blk.Prefix)
			if err != nil || resp.RCode != dnsmsg.RCodeSuccess || len(resp.Answers) == 0 {
				failures.Add(1)
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	success := 1 - float64(failures.Load())/float64(total.Load())
	t.Logf("partition: %d queries, %.2f%% success, partition_dropped=%d",
		total.Load(), success*100, ctrl.Stats.PartitionDropped.Load())
	if success < 0.99 {
		t.Errorf("success rate %.4f < 0.99 during partition", success)
	}
	for i, r := range replicas {
		if lvl := r.auth.Degradation(); lvl < authority.DegradeStale {
			t.Errorf("replica %d never degraded (level %v) during a %v partition",
				i, lvl, time.Since(partitionAt))
		}
		if st := r.fetcher.Status(); st.Failures == 0 {
			t.Errorf("replica %d counted no fetch failures while partitioned", i)
		}
	}

	// Phase 3: freeze the publisher, heal, and require convergence on its
	// final epoch within two fetch intervals.
	close(churnStop)
	churn.Wait()
	final := pubSys.Current().Epoch()
	healAt := time.Now()
	ctrl.SetPartitioned(false)
	for {
		converged := 0
		for _, r := range replicas {
			if r.sys.Current().Epoch() == final {
				converged++
			}
		}
		if converged == len(replicas) {
			break
		}
		if time.Since(healAt) > 2*fetchEvery {
			for i, r := range replicas {
				t.Logf("replica %d: epoch=%d (want %d) status=%+v",
					i, r.sys.Current().Epoch(), final, r.fetcher.Status())
			}
			t.Fatalf("replicas did not reconverge within two fetch intervals (%v)", 2*fetchEvery)
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Logf("heal: reconverged on epoch %d in %v", final, time.Since(healAt))

	for i, r := range replicas {
		if lag := r.fetcher.EpochLag(); lag != 0 {
			t.Errorf("replica %d epoch lag %d after heal", i, lag)
		}
	}
	fullB, deltaB := pub.BytesShipped()
	t.Logf("publisher shipped %d full bytes, %d delta bytes (retained %d)", fullB, deltaB, pub.Retained())
	if fullB == 0 || deltaB == 0 {
		t.Errorf("expected both full and delta traffic, got full=%d delta=%d", fullB, deltaB)
	}
	if deltaB >= fullB {
		t.Errorf("delta bytes %d not below full bytes %d", deltaB, fullB)
	}
}
