// Package mapdist is the map-distribution plane: it moves published
// snapshots from the MapMaker node to replica map servers over the admin
// HTTP plane, as mapwire images.
//
// The protocol is one idempotent GET with resumable epoch negotiation.
// A replica reports what it has (`?have=<epoch>&layout=<fingerprint>`);
// the publisher answers with nothing (204, already current), a delta
// image patching exactly that epoch, or a full image when no delta is
// possible — first contact, a base epoch that aged out of the retention
// ring, a layout rebuilt for a new universe, or a change so large a full
// image is smaller. The replica never needs to know which it asked for:
// the image header says what arrived, and a failed delta application just
// degrades the next request to `have=0`.
package mapdist

import (
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"

	"eum/internal/cdn"
	"eum/internal/mapping"
	"eum/internal/mapwire"
	"eum/internal/telemetry"
)

// Wire protocol constants shared by publisher and fetcher.
const (
	// SnapshotPath is the admin-plane route snapshots are served on.
	SnapshotPath = "/mapdist/snapshot"
	// Response headers describing the returned image.
	headerEpoch = "X-Mapdist-Epoch"
	headerKind  = "X-Mapdist-Kind"
)

// PublisherConfig tunes a Publisher.
type PublisherConfig struct {
	// History is how many recent snapshots the publisher retains as delta
	// bases. A replica whose `have` epoch fell out of the ring gets a full
	// image. Default 16 — at one publish per refresh interval, that is the
	// window a replica may lag and still resync with a delta.
	History int
}

// Publisher serves the current map snapshot — and deltas against recent
// ones — on the MapMaker node's admin plane. It observes published
// snapshots either through MapMaker.SetOnPublish (preferred: retention
// then sees every epoch) or lazily at request time from the system's
// current pointer.
type Publisher struct {
	sys     *mapping.System
	codec   *mapwire.Codec
	history int

	mu       sync.Mutex
	retained []*mapping.Snapshot // ascending epoch order

	// cachedFull memoises the encoded full image for one epoch, so a fleet
	// of replicas bootstrapping against the same epoch encodes it once.
	cachedFull atomic.Pointer[encodedImage]

	requests       atomic.Uint64
	fullImages     atomic.Uint64
	deltaImages    atomic.Uint64
	unchanged      atomic.Uint64
	fullBytes      atomic.Uint64
	deltaBytes     atomic.Uint64
	deltaMisses    atomic.Uint64
	encodeFailures atomic.Uint64
}

type encodedImage struct {
	epoch uint64
	data  []byte
}

// NewPublisher builds a publisher over the system's snapshots, encoding
// against the given platform.
func NewPublisher(sys *mapping.System, platform *cdn.Platform, cfg PublisherConfig) *Publisher {
	if cfg.History <= 0 {
		cfg.History = 16
	}
	p := &Publisher{sys: sys, codec: mapwire.NewCodec(platform), history: cfg.History}
	p.Observe(sys.Current())
	return p
}

// Observe retains a published snapshot as a future delta base. Wire it to
// MapMaker.SetOnPublish so every epoch enters the ring; ServeHTTP also
// calls it with the current snapshot, so even without the hook the
// publisher always serves the latest map — it just retains fewer bases.
func (p *Publisher) Observe(sn *mapping.Snapshot) {
	if sn == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if n := len(p.retained); n > 0 && p.retained[n-1].Epoch() >= sn.Epoch() {
		return
	}
	p.retained = append(p.retained, sn)
	if len(p.retained) > p.history {
		copy(p.retained, p.retained[len(p.retained)-p.history:])
		p.retained = p.retained[:p.history]
	}
}

// retainedAt returns the retained snapshot at exactly the given epoch.
func (p *Publisher) retainedAt(epoch uint64) *mapping.Snapshot {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i := len(p.retained) - 1; i >= 0; i-- {
		if p.retained[i].Epoch() == epoch {
			return p.retained[i]
		}
		if p.retained[i].Epoch() < epoch {
			break
		}
	}
	return nil
}

// ServeHTTP answers one snapshot fetch. Responses:
//
//	204 — the replica's epoch and layout match the current snapshot
//	200 — a mapwire image (X-Mapdist-Kind: full|delta)
//	500 — encoding failed (should not happen; counted)
func (p *Publisher) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	p.requests.Add(1)
	cur := p.sys.Current()
	p.Observe(cur)

	have, _ := strconv.ParseUint(r.URL.Query().Get("have"), 10, 64)
	layout, _ := strconv.ParseUint(r.URL.Query().Get("layout"), 16, 64)

	w.Header().Set(headerEpoch, strconv.FormatUint(cur.Epoch(), 10))
	if have == cur.Epoch() && layout == cur.LayoutFingerprint() {
		p.unchanged.Add(1)
		w.WriteHeader(http.StatusNoContent)
		return
	}

	if have > 0 {
		if base := p.retainedAt(have); base != nil && base.LayoutFingerprint() == layout {
			data, ok, err := p.codec.EncodeDelta(base, cur)
			if err == nil && ok {
				p.deltaImages.Add(1)
				p.deltaBytes.Add(uint64(len(data)))
				p.respond(w, "delta", data)
				return
			}
			if err != nil {
				p.encodeFailures.Add(1)
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
		}
		// The base aged out, the layout changed, or the delta would not
		// pay for itself: fall through to a full image.
		p.deltaMisses.Add(1)
	}

	data, err := p.fullImage(cur)
	if err != nil {
		p.encodeFailures.Add(1)
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	p.fullImages.Add(1)
	p.fullBytes.Add(uint64(len(data)))
	p.respond(w, "full", data)
}

// fullImage returns the encoded full image for sn, reusing the cached
// encoding when the epoch matches.
func (p *Publisher) fullImage(sn *mapping.Snapshot) ([]byte, error) {
	if c := p.cachedFull.Load(); c != nil && c.epoch == sn.Epoch() {
		return c.data, nil
	}
	data, err := p.codec.EncodeFull(sn)
	if err != nil {
		return nil, err
	}
	p.cachedFull.Store(&encodedImage{epoch: sn.Epoch(), data: data})
	return data, nil
}

func (p *Publisher) respond(w http.ResponseWriter, kind string, data []byte) {
	w.Header().Set(headerKind, kind)
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(data)))
	_, _ = w.Write(data)
}

// Retained returns how many snapshots the delta-base ring currently holds.
func (p *Publisher) Retained() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.retained)
}

// DeltaMisses returns how many requests wanted a delta but got a full
// image (base evicted, layout changed, or delta bigger than full).
func (p *Publisher) DeltaMisses() uint64 { return p.deltaMisses.Load() }

// BytesShipped returns the total image bytes served, split full vs delta
// — the distribution plane's headline efficiency numbers.
func (p *Publisher) BytesShipped() (full, delta uint64) {
	return p.fullBytes.Load(), p.deltaBytes.Load()
}

// RegisterMetrics wires the publisher's counters into reg under the
// mapdist_publish_ namespace.
func (p *Publisher) RegisterMetrics(reg *telemetry.Registry) {
	reg.Counter("mapdist_publish_requests_total",
		"Snapshot fetches served on the distribution endpoint.", p.requests.Load)
	reg.Counter("mapdist_publish_full_total",
		"Full snapshot images served.", p.fullImages.Load)
	reg.Counter("mapdist_publish_delta_total",
		"Delta images served.", p.deltaImages.Load)
	reg.Counter("mapdist_publish_unchanged_total",
		"Fetches answered 204 (replica already current).", p.unchanged.Load)
	reg.Counter("mapdist_publish_full_bytes_total",
		"Bytes shipped as full images.", p.fullBytes.Load)
	reg.Counter("mapdist_publish_delta_bytes_total",
		"Bytes shipped as delta images.", p.deltaBytes.Load)
	reg.Counter("mapdist_publish_delta_miss_total",
		"Delta requests downgraded to a full image.", p.deltaMisses.Load)
	reg.Counter("mapdist_publish_encode_failures_total",
		"Snapshot encodings that failed (answered 500).", p.encodeFailures.Load)
	reg.Gauge("mapdist_publish_retained",
		"Snapshots retained as delta bases.", func() float64 { return float64(p.Retained()) })
}
