package rum

import (
	"testing"
	"time"

	"eum/internal/cdn"
	"eum/internal/demand"
	"eum/internal/geo"
	"eum/internal/netmodel"
	"eum/internal/world"
)

var (
	testW = world.MustGenerate(world.Config{Seed: 41, NumBlocks: 3000})
	testP = cdn.MustGenerateUniverse(testW, cdn.Config{Seed: 41, NumDeployments: 200})
	cat   = demand.MustNewCatalogue(20, 1, 41)
)

func nearFarDeployments(b *world.ClientBlock) (near, far *cdn.Deployment) {
	for _, d := range testP.Deployments {
		if near == nil || geo.Distance(d.Loc, b.Loc) < geo.Distance(near.Loc, b.Loc) {
			near = d
		}
		if far == nil || geo.Distance(d.Loc, b.Loc) > geo.Distance(far.Loc, b.Loc) {
			far = d
		}
	}
	return near, far
}

func TestMeasureBasics(t *testing.T) {
	m := NewModel(netmodel.NewDefault())
	b := testW.Blocks[0]
	near, _ := nearFarDeployments(b)
	at := time.Date(2014, 4, 20, 12, 0, 0, 0, time.UTC)
	meas := m.Measure(at, b, cat.Domains[0], near, 5)
	if meas.At != at || meas.Block != b || meas.Deployment != near {
		t.Error("measurement identity fields wrong")
	}
	if meas.MappingDistance != geo.Distance(b.Loc, near.Loc) {
		t.Error("mapping distance mismatch")
	}
	if meas.RTTMs <= 0 || meas.TTFBMs <= 0 || meas.DownloadMs <= 0 {
		t.Errorf("non-positive timings: %+v", meas)
	}
	if meas.TTFBMs <= meas.RTTMs {
		t.Error("TTFB should exceed RTT (construction time)")
	}
}

func TestCloserDeploymentFasterEverything(t *testing.T) {
	m := NewModel(netmodel.NewDefault())
	b := testW.Blocks[10]
	near, far := nearFarDeployments(b)
	mn := m.Measure(time.Now(), b, cat.Domains[0], near, 1)
	mf := m.Measure(time.Now(), b, cat.Domains[0], far, 1)
	if mn.MappingDistance >= mf.MappingDistance {
		t.Fatal("near/far inverted")
	}
	if mn.RTTMs >= mf.RTTMs {
		t.Errorf("near RTT %.0f >= far RTT %.0f", mn.RTTMs, mf.RTTMs)
	}
	if mn.TTFBMs >= mf.TTFBMs {
		t.Errorf("near TTFB %.0f >= far TTFB %.0f", mn.TTFBMs, mf.TTFBMs)
	}
	if mn.DownloadMs >= mf.DownloadMs {
		t.Errorf("near download %.0f >= far download %.0f", mn.DownloadMs, mf.DownloadMs)
	}
}

func TestTTFBLessElasticThanRTT(t *testing.T) {
	// §4.1: TTFB shows "more modest reductions" than RTT because page
	// construction is unaffected by mapping. Relative improvement in
	// TTFB must be smaller than in RTT.
	m := NewModel(netmodel.NewDefault())
	b := testW.Blocks[20]
	near, far := nearFarDeployments(b)
	mn := m.Measure(time.Now(), b, cat.Domains[0], near, 2)
	mf := m.Measure(time.Now(), b, cat.Domains[0], far, 2)
	rttGain := mf.RTTMs / mn.RTTMs
	ttfbGain := mf.TTFBMs / mn.TTFBMs
	if ttfbGain >= rttGain {
		t.Errorf("TTFB gain %.2fx should be below RTT gain %.2fx", ttfbGain, rttGain)
	}
	if ttfbGain <= 1 {
		t.Errorf("TTFB gain %.2fx should still be positive", ttfbGain)
	}
}

func TestDynamicPagesSlowerTTFB(t *testing.T) {
	m := NewModel(netmodel.NewDefault())
	b := testW.Blocks[30]
	near, _ := nearFarDeployments(b)
	static := demand.Domain{Name: "static", DynamicFraction: 0.35, PageBytes: 100_000}
	dynamic := demand.Domain{Name: "dyn", DynamicFraction: 0.75, PageBytes: 100_000}
	ms := m.Measure(time.Now(), b, static, near, 3)
	md := m.Measure(time.Now(), b, dynamic, near, 3)
	if md.TTFBMs <= ms.TTFBMs {
		t.Error("dynamic page TTFB should exceed static")
	}
	if md.DownloadMs != ms.DownloadMs {
		t.Error("download time should not depend on dynamic fraction")
	}
}

func TestBiggerPagesSlowerDownload(t *testing.T) {
	m := NewModel(netmodel.NewDefault())
	b := testW.Blocks[40]
	near, _ := nearFarDeployments(b)
	small := demand.Domain{Name: "s", DynamicFraction: 0.5, PageBytes: 50_000}
	big := demand.Domain{Name: "b", DynamicFraction: 0.5, PageBytes: 2_000_000}
	if m.Measure(time.Now(), b, big, near, 1).DownloadMs <= m.Measure(time.Now(), b, small, near, 1).DownloadMs {
		t.Error("bigger page should download slower")
	}
}

func TestHighExpectationCountries(t *testing.T) {
	groups := HighExpectationCountries(testW)
	if len(groups) == 0 {
		t.Fatal("no countries classified")
	}
	// Countries whose public resolvers are far (no nearby provider
	// sites) must be high-expectation; those with local sites must not.
	for _, cc := range []string{"AR", "BR"} {
		if high, ok := groups[cc]; ok && !high {
			t.Errorf("%s should be high expectation", cc)
		}
	}
	for _, cc := range []string{"US", "DE", "NL", "GB"} {
		if high, ok := groups[cc]; ok && high {
			t.Errorf("%s should be low expectation", cc)
		}
	}
	// Both groups must be non-empty for before/after comparisons.
	var hi, lo int
	for _, h := range groups {
		if h {
			hi++
		} else {
			lo++
		}
	}
	if hi == 0 || lo == 0 {
		t.Errorf("degenerate grouping: high=%d low=%d", hi, lo)
	}
}

func TestWeightedMedian(t *testing.T) {
	ds := []distWeight{{10, 1}, {20, 1}, {30, 1}}
	if got := weightedMedian(ds, 3); got != 20 {
		t.Errorf("median = %v", got)
	}
	ds = []distWeight{{10, 9}, {1000, 1}}
	if got := weightedMedian(ds, 10); got != 10 {
		t.Errorf("weighted median = %v", got)
	}
	if got := weightedMedian(nil, 0); got != 0 {
		t.Errorf("empty median = %v", got)
	}
}

func TestMeasureDeterministicPerEpoch(t *testing.T) {
	m := NewModel(netmodel.NewDefault())
	b := testW.Blocks[50]
	near, _ := nearFarDeployments(b)
	a := m.Measure(time.Time{}, b, cat.Domains[1], near, 7)
	bb := m.Measure(time.Time{}, b, cat.Domains[1], near, 7)
	if a.RTTMs != bb.RTTMs || a.TTFBMs != bb.TTFBMs || a.DownloadMs != bb.DownloadMs {
		t.Error("same epoch gave different measurements")
	}
	c := m.Measure(time.Time{}, b, cat.Domains[1], near, 8)
	if a.RTTMs == c.RTTMs {
		t.Error("different epochs gave identical RTT (congestion frozen)")
	}
}
