// Package rum models Real User Measurement: the client-side timing a
// JavaScript beacon collects during a page download (§4.2) — mapping
// distance, round-trip time, time-to-first-byte, and content download time,
// the paper's four roll-out metrics (§4.1).
package rum

import (
	"time"

	"eum/internal/cdn"
	"eum/internal/demand"
	"eum/internal/geo"
	"eum/internal/netmodel"
	"eum/internal/world"
)

// Model computes RUM timings. It preserves the causal structure behind the
// paper's results:
//
//   - Mapping distance is pure geography between client and assigned
//     deployment.
//   - RTT comes from the network model and scales with that distance.
//   - TTFB = 3·RTT + page-construction time. The RTT multiple covers
//     connection setup, the request, and the first-byte round trip; the
//     construction term is origin/personalisation work carried over the
//     overlay network, which the roll-out does not speed up — this is why
//     the paper sees only ~30% TTFB improvement against 50% RTT
//     improvement. (The paper's own numbers move 3:1 with RTT: TTFB fell
//     ~300 ms while RTT fell ~100 ms.)
//   - Content download = 4·RTT + transfer at the modelled TCP throughput:
//     a few hundred KB of embedded content costs several slow-start round
//     trips before the pipe fills, and the steady-state throughput itself
//     degrades with RTT and loss — download time is "dominated by
//     client-server latencies" (§4.1).
type Model struct {
	Net *netmodel.Model
	// TTFBRTTMultiple is the number of RTTs inside TTFB (default 3).
	TTFBRTTMultiple float64
	// BaseConstructionMs is the mean origin/page-construction time for a
	// domain with average dynamic fraction (default 380ms).
	BaseConstructionMs float64
	// DownloadRTTMultiple is the RTT multiple in content download,
	// covering TCP slow-start rounds (default 4).
	DownloadRTTMultiple float64
}

// Measurement is one RUM beacon: the timing of one page download by one
// client.
type Measurement struct {
	At              time.Time
	Block           *world.ClientBlock
	Domain          string
	Deployment      *cdn.Deployment
	MappingDistance float64 // miles, client to assigned server
	RTTMs           float64
	TTFBMs          float64
	DownloadMs      float64
	HighExpectation bool
}

// NewModel returns a Model with default parameters over the given network
// model.
func NewModel(net *netmodel.Model) *Model {
	return &Model{
		Net:                 net,
		TTFBRTTMultiple:     3,
		BaseConstructionMs:  380,
		DownloadRTTMultiple: 4,
	}
}

// refDynamicFraction normalises a domain's construction time; catalogue
// dynamic fractions average ~0.55.
const refDynamicFraction = 0.55

// Measure computes the RUM timings for one download of dom by the client
// block b from deployment dep at simulated time at. The epoch feeds the
// network model's day-to-day congestion variation.
func (m *Model) Measure(at time.Time, b *world.ClientBlock, dom demand.Domain, dep *cdn.Deployment, epoch uint64) Measurement {
	rtt := m.Net.RTTMs(b.Endpoint(), dep.Endpoint(), epoch)
	construct := m.BaseConstructionMs * dom.DynamicFraction / refDynamicFraction
	ttfb := m.TTFBRTTMultiple*rtt + construct

	tpMbps := m.Net.ThroughputMbps(b.Endpoint(), dep.Endpoint(), epoch)
	transferMs := float64(dom.PageBytes) * 8 / (tpMbps * 1e6) * 1000
	download := m.DownloadRTTMultiple*rtt + transferMs

	return Measurement{
		At:              at,
		Block:           b,
		Domain:          dom.Name,
		Deployment:      dep,
		MappingDistance: geo.Distance(b.Loc, dep.Loc),
		RTTMs:           rtt,
		TTFBMs:          ttfb,
		DownloadMs:      download,
	}
}

// HighExpectationCountries classifies countries into the paper's §4.1.1
// groups: "high expectation" countries are those where the median distance
// from clients to their public resolvers exceeds 1000 miles; end-user
// mapping is expected to help their clients most.
func HighExpectationCountries(w *world.World) map[string]bool {
	out := map[string]bool{}
	for _, c := range w.Countries {
		var ds []distWeight
		var total float64
		for _, b := range c.Blocks {
			if b.LDNS.IsPublic() {
				ds = append(ds, distWeight{b.ClientLDNSDistance(), b.Demand})
				total += b.Demand
			}
		}
		if total == 0 {
			continue
		}
		out[c.Code()] = weightedMedian(ds, total) > 1000
	}
	return out
}

type distWeight struct{ d, w float64 }

func weightedMedian(ds []distWeight, total float64) float64 {
	if len(ds) == 0 {
		return 0
	}
	// Insertion sort by distance: country subsets are small.
	for i := 1; i < len(ds); i++ {
		for j := i; j > 0 && ds[j].d < ds[j-1].d; j-- {
			ds[j], ds[j-1] = ds[j-1], ds[j]
		}
	}
	var cum float64
	for _, e := range ds {
		cum += e.w
		if cum >= total/2 {
			return e.d
		}
	}
	return ds[len(ds)-1].d
}
