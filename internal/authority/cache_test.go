package authority

import (
	"net/netip"
	"testing"
	"time"

	"eum/internal/dnsmsg"
	"eum/internal/mapping"
)

// fakeClock pins the authority's cache clock for TTL tests.
type fakeClock struct {
	now int64
}

func (c *fakeClock) advance(d time.Duration) { c.now += d.Nanoseconds() }

func newCachedAuthority(t *testing.T, pol mapping.Policy) (*Authority, *fakeClock) {
	t.Helper()
	a := newAuthority(t, pol)
	clk := &fakeClock{now: time.Date(2014, 4, 20, 0, 0, 0, 0, time.UTC).UnixNano()}
	a.nowNanos = func() int64 { return clk.now }
	return a, clk
}

func ecsQuery(t *testing.T, name string, addr netip.Addr, bits uint8) *dnsmsg.Message {
	t.Helper()
	q := query(name, dnsmsg.TypeA)
	if err := q.SetClientSubnet(addr, bits); err != nil {
		t.Fatal(err)
	}
	return q
}

func answerAddrs(resp *dnsmsg.Message) []netip.Addr {
	var out []netip.Addr
	for _, rr := range resp.Answers {
		if a, ok := rr.Data.(*dnsmsg.A); ok {
			out = append(out, a.Addr)
		}
	}
	return out
}

func sameAddrs(a, b []netip.Addr) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestAnswerCacheHitSameUnit: two EU queries from different addresses in
// the same mapping unit share one cached decision.
func TestAnswerCacheHitSameUnit(t *testing.T) {
	a, _ := newCachedAuthority(t, mapping.EndUser)
	blk := testW.Blocks[100]

	first := a.ServeDNS(resolverAddr, ecsQuery(t, "img.cdn.example.net", blk.Prefix.Addr(), 24))
	if first.RCode != dnsmsg.RCodeSuccess || len(first.Answers) == 0 {
		t.Fatalf("first query failed: %v", first.RCode)
	}
	// A different host address inside the same /24 block.
	second := a.ServeDNS(resolverAddr, ecsQuery(t, "img.cdn.example.net", blk.Prefix.Addr().Next(), 24))
	if hits, misses := a.CacheHits.Load(), a.CacheMisses.Load(); hits != 1 || misses != 1 {
		t.Fatalf("hits=%d misses=%d, want 1/1", hits, misses)
	}
	if !sameAddrs(answerAddrs(first), answerAddrs(second)) {
		t.Errorf("cached answer differs: %v vs %v", answerAddrs(first), answerAddrs(second))
	}
	if ecs := second.ClientSubnet(); ecs == nil || ecs.ScopePrefix != 24 {
		t.Errorf("cached answer lost its ECS scope: %v", second.ClientSubnet())
	}
}

// TestAnswerCacheScopeIsolation: queries from different mapping units do
// not share entries.
func TestAnswerCacheScopeIsolation(t *testing.T) {
	a, _ := newCachedAuthority(t, mapping.EndUser)
	b1, b2 := testW.Blocks[100], testW.Blocks[500]
	if b1.Prefix == b2.Prefix {
		t.Fatal("test blocks share a prefix")
	}

	a.ServeDNS(resolverAddr, ecsQuery(t, "img.cdn.example.net", b1.Prefix.Addr(), 24))
	a.ServeDNS(resolverAddr, ecsQuery(t, "img.cdn.example.net", b2.Prefix.Addr(), 24))
	if misses := a.CacheMisses.Load(); misses != 2 {
		t.Fatalf("misses=%d, want 2 (different units must not share)", misses)
	}
	// Back to the first unit: its entry is still valid.
	a.ServeDNS(resolverAddr, ecsQuery(t, "img.cdn.example.net", b1.Prefix.Addr(), 24))
	if hits := a.CacheHits.Load(); hits != 1 {
		t.Fatalf("hits=%d, want 1", hits)
	}
	// A different domain is a different decision.
	a.ServeDNS(resolverAddr, ecsQuery(t, "js.cdn.example.net", b1.Prefix.Addr(), 24))
	if misses := a.CacheMisses.Load(); misses != 3 {
		t.Fatalf("misses=%d, want 3 (different domains must not share)", misses)
	}
}

// TestAnswerCacheScopeClamp: a query revealing fewer bits than the mapping
// unit gets its own entry and a correctly clamped scope (RFC 7871 §7.2.1).
func TestAnswerCacheScopeClamp(t *testing.T) {
	a, _ := newCachedAuthority(t, mapping.EndUser)
	blk := testW.Blocks[100]

	wide := a.ServeDNS(resolverAddr, ecsQuery(t, "img.cdn.example.net", blk.Prefix.Addr(), 24))
	if ecs := wide.ClientSubnet(); ecs == nil || ecs.ScopePrefix != 24 {
		t.Fatalf("scope for /24 query = %v, want 24", wide.ClientSubnet())
	}
	narrow := a.ServeDNS(resolverAddr, ecsQuery(t, "img.cdn.example.net", blk.Prefix.Addr(), 20))
	if ecs := narrow.ClientSubnet(); ecs == nil || ecs.ScopePrefix != 20 {
		t.Fatalf("scope for /20 query = %v, want clamped to 20", narrow.ClientSubnet())
	}
	if misses := a.CacheMisses.Load(); misses != 2 {
		t.Fatalf("misses=%d, want 2 (narrower reveal must not reuse the /24 entry's scope)", misses)
	}
}

// TestAnswerCacheTruncatedECS: a privacy-truncating resolver's /20
// queries and a full-ECS resolver's /24 queries for the same address
// space keep separate entries with their own scopes — interleaving them
// in either order never lets one population inherit the other's answer
// or scope field, and each population still shares within itself.
func TestAnswerCacheTruncatedECS(t *testing.T) {
	a, _ := newCachedAuthority(t, mapping.EndUser)
	blk := testW.Blocks[100]
	addr := blk.Prefix.Addr()

	full := a.ServeDNS(resolverAddr, ecsQuery(t, "img.cdn.example.net", addr, 24))
	trunc := a.ServeDNS(resolverAddr, ecsQuery(t, "img.cdn.example.net", addr, 20))
	if hits, misses := a.CacheHits.Load(), a.CacheMisses.Load(); hits != 0 || misses != 2 {
		t.Fatalf("hits=%d misses=%d after /24 then /20, want 0/2 (no collision)", hits, misses)
	}
	if ecs := full.ClientSubnet(); ecs == nil || ecs.ScopePrefix != 24 {
		t.Fatalf("/24 scope = %v, want 24", full.ClientSubnet())
	}
	if ecs := trunc.ClientSubnet(); ecs == nil || ecs.ScopePrefix != 20 {
		t.Fatalf("/20 scope = %v, want 20", trunc.ClientSubnet())
	}

	// Repeats — from a different host in the same /20 for the truncated
	// side — hit their own entries and keep their own scopes.
	trunc2 := a.ServeDNS(resolverAddr, ecsQuery(t, "img.cdn.example.net", addr.Next(), 20))
	full2 := a.ServeDNS(resolverAddr, ecsQuery(t, "img.cdn.example.net", addr, 24))
	if hits, misses := a.CacheHits.Load(), a.CacheMisses.Load(); hits != 2 || misses != 2 {
		t.Fatalf("hits=%d misses=%d after repeats, want 2/2", hits, misses)
	}
	if ecs := trunc2.ClientSubnet(); ecs == nil || ecs.ScopePrefix != 20 {
		t.Fatalf("repeat /20 scope = %v, want 20 (inherited the /24 entry?)", trunc2.ClientSubnet())
	}
	if ecs := full2.ClientSubnet(); ecs == nil || ecs.ScopePrefix != 24 {
		t.Fatalf("repeat /24 scope = %v, want 24 (inherited the /20 entry?)", full2.ClientSubnet())
	}

	// A non-octet-aligned /21 source is yet another population: own entry,
	// scope clamped to exactly 21 (RFC 7871 §7.2.1: y <= x).
	odd := a.ServeDNS(resolverAddr, ecsQuery(t, "img.cdn.example.net", addr, 21))
	if misses := a.CacheMisses.Load(); misses != 3 {
		t.Fatalf("misses=%d after /21, want 3 (own entry)", misses)
	}
	if ecs := odd.ClientSubnet(); ecs == nil || ecs.ScopePrefix != 21 {
		t.Fatalf("/21 scope = %v, want 21", odd.ClientSubnet())
	}
}

// TestAnswerCacheTTLExpiry: entries die one TTL after the decision.
func TestAnswerCacheTTLExpiry(t *testing.T) {
	a, clk := newCachedAuthority(t, mapping.EndUser)
	blk := testW.Blocks[100]
	q := func() { a.ServeDNS(resolverAddr, ecsQuery(t, "img.cdn.example.net", blk.Prefix.Addr(), 24)) }

	q()
	clk.advance(a.system.TTL() / 2)
	q()
	if hits := a.CacheHits.Load(); hits != 1 {
		t.Fatalf("hits=%d, want 1 (within TTL window)", hits)
	}
	clk.advance(a.system.TTL()) // now past expiry
	q()
	if misses := a.CacheMisses.Load(); misses != 2 {
		t.Fatalf("misses=%d, want 2 (entry past its TTL must be recomputed)", misses)
	}
}

// TestAnswerCachePolicyFlipInvalidates: SetPolicy orphans every cached
// decision, including entries for the policy being flipped back to.
func TestAnswerCachePolicyFlipInvalidates(t *testing.T) {
	a, _ := newCachedAuthority(t, mapping.EndUser)
	blk := testW.Blocks[100]
	q := func() *dnsmsg.Message {
		return a.ServeDNS(resolverAddr, ecsQuery(t, "img.cdn.example.net", blk.Prefix.Addr(), 24))
	}

	q()
	q()
	if hits := a.CacheHits.Load(); hits != 1 {
		t.Fatalf("hits=%d, want 1", hits)
	}

	a.system.SetPolicy(mapping.NSBased)
	nsResp := q()
	if ecs := nsResp.ClientSubnet(); ecs == nil || ecs.ScopePrefix != 0 {
		t.Fatalf("NS-policy answer scope = %v, want 0", nsResp.ClientSubnet())
	}

	// Flip back: the old EU entry has a matching key but a stale
	// generation and must not be served.
	a.system.SetPolicy(mapping.EndUser)
	q()
	if hits := a.CacheHits.Load(); hits != 1 {
		t.Fatalf("hits=%d after policy flips, want 1 (stale-generation entry reused)", hits)
	}
	q()
	if hits := a.CacheHits.Load(); hits != 2 {
		t.Fatalf("hits=%d, want 2 (fresh entry after re-decision)", hits)
	}
}

// TestAnswerCacheLivenessInvalidation: a scorer invalidation (the hook
// failure injection uses) orphans cached answers.
func TestAnswerCacheLivenessInvalidation(t *testing.T) {
	a, _ := newCachedAuthority(t, mapping.EndUser)
	blk := testW.Blocks[100]
	q := func() *dnsmsg.Message {
		return a.ServeDNS(resolverAddr, ecsQuery(t, "img.cdn.example.net", blk.Prefix.Addr(), 24))
	}

	first := q()
	q()
	if hits := a.CacheHits.Load(); hits != 1 {
		t.Fatalf("hits=%d, want 1", hits)
	}

	// Kill the deployment the cached answer points at, as failure
	// injection would, and publish a fresh snapshot — the control-plane
	// reaction a health event triggers through the MapMaker.
	firstAddrs := answerAddrs(first)
	var killed bool
	for _, d := range testP.Deployments {
		for _, s := range d.Servers {
			if s.Addr == firstAddrs[0] {
				for _, ds := range d.Servers {
					ds.SetAlive(false)
				}
				killed = true
			}
		}
	}
	if !killed {
		t.Fatal("could not find the answered deployment")
	}
	defer func() {
		for _, d := range testP.Deployments {
			for _, s := range d.Servers {
				s.SetAlive(true)
			}
		}
		a.system.Rebuild()
	}()
	a.system.Rebuild()

	after := q()
	if hits := a.CacheHits.Load(); hits != 1 {
		t.Fatalf("hits=%d, want 1 (liveness change must orphan the entry)", hits)
	}
	for _, addr := range answerAddrs(after) {
		if addr == firstAddrs[0] {
			t.Errorf("answer still points at dead server %v", addr)
		}
	}
}

// TestAnswerCacheDisabled: with the cache off every query runs the full
// mapping path and counters stay zero.
func TestAnswerCacheDisabled(t *testing.T) {
	a, _ := newCachedAuthority(t, mapping.EndUser)
	a.DisableAnswerCache()
	blk := testW.Blocks[100]
	for i := 0; i < 3; i++ {
		resp := a.ServeDNS(resolverAddr, ecsQuery(t, "img.cdn.example.net", blk.Prefix.Addr(), 24))
		if resp.RCode != dnsmsg.RCodeSuccess || len(resp.Answers) == 0 {
			t.Fatalf("query %d failed", i)
		}
	}
	if a.CacheHits.Load() != 0 || a.CacheMisses.Load() != 0 {
		t.Error("disabled cache still counting")
	}
}
