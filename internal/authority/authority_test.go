package authority

import (
	"context"
	"net/netip"
	"testing"
	"time"

	"eum/internal/cdn"
	"eum/internal/dnsclient"
	"eum/internal/dnsmsg"
	"eum/internal/dnsserver"
	"eum/internal/mapping"
	"eum/internal/netmodel"
	"eum/internal/world"
)

var (
	testW = world.MustGenerate(world.Config{Seed: 21, NumBlocks: 2000})
	testP = cdn.MustGenerateUniverse(testW, cdn.Config{Seed: 21, NumDeployments: 120, ServersPerDeployment: 4})
)

func newAuthority(t *testing.T, pol mapping.Policy) *Authority {
	t.Helper()
	sys := mapping.NewSystem(testW, testP, netmodel.NewDefault(),
		mapping.Config{Policy: pol, PingTargets: 300})
	a, err := New("cdn.example.net", sys)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func query(name string, typ dnsmsg.Type) *dnsmsg.Message {
	return dnsmsg.NewQuery(42, dnsmsg.Name(name), typ)
}

var resolverAddr = netip.MustParseAddrPort("198.51.100.7:5353")

func TestNew(t *testing.T) {
	if _, err := New("", nil); err == nil {
		t.Error("empty zone accepted")
	}
	sys := mapping.NewSystem(testW, testP, netmodel.NewDefault(), mapping.Config{})
	if _, err := New("zone.net", nil); err == nil {
		t.Error("nil system accepted")
	}
	a, err := New("Zone.NET.", sys)
	if err != nil {
		t.Fatal(err)
	}
	if a.Zone() != "zone.net" {
		t.Errorf("zone = %q", a.Zone())
	}
}

func TestAQueryAnswered(t *testing.T) {
	a := newAuthority(t, mapping.NSBased)
	resp := a.ServeDNS(resolverAddr, query("e123.cdn.example.net", dnsmsg.TypeA))
	if resp.RCode != dnsmsg.RCodeSuccess || !resp.Authoritative {
		t.Fatalf("resp: rcode=%v aa=%v", resp.RCode, resp.Authoritative)
	}
	if len(resp.Answers) < 2 {
		t.Fatalf("answers = %d, want >= 2 (precaution against transient failures)", len(resp.Answers))
	}
	for _, rr := range resp.Answers {
		if _, ok := rr.Data.(*dnsmsg.A); !ok {
			t.Errorf("non-A answer %v", rr)
		}
		if rr.TTL != 20 {
			t.Errorf("TTL = %d, want 20", rr.TTL)
		}
	}
}

func TestECSQueryGetsScopedAnswer(t *testing.T) {
	a := newAuthority(t, mapping.EndUser)
	b := testW.Blocks[100]
	q := query("img.cdn.example.net", dnsmsg.TypeA)
	if err := q.SetClientSubnet(b.Prefix.Addr(), 24); err != nil {
		t.Fatal(err)
	}
	resp := a.ServeDNS(netip.AddrPortFrom(b.LDNS.Addr, 53), q)
	if len(resp.Answers) == 0 {
		t.Fatal("no answers")
	}
	ecs := resp.ClientSubnet()
	if ecs == nil {
		t.Fatal("response missing ECS option (RFC 7871 §7.2.2)")
	}
	if ecs.SourcePrefix != 24 {
		t.Errorf("echoed source = %d", ecs.SourcePrefix)
	}
	if ecs.ScopePrefix == 0 || ecs.ScopePrefix > 24 {
		t.Errorf("scope = %d, want (0, 24]", ecs.ScopePrefix)
	}
	if a.ECSQueries.Load() != 1 {
		t.Error("ECS query not counted")
	}
}

// TestECSNonConformantFormErr checks RFC 7871 §7.1.2 enforcement: a query
// whose ECS option carries a non-zero SCOPE PREFIX-LENGTH, or address bits
// beyond SOURCE PREFIX-LENGTH (NonZeroPad, set by the unpacker), is
// answered with FORMERR rather than silently accepted — and is metered
// separately from legitimate ECS traffic.
func TestECSNonConformantFormErr(t *testing.T) {
	a := newAuthority(t, mapping.EndUser)

	// Non-zero scope in a query.
	q := query("img.cdn.example.net", dnsmsg.TypeA)
	if err := q.SetClientSubnet(netip.MustParseAddr("203.0.113.7"), 24); err != nil {
		t.Fatal(err)
	}
	q.ClientSubnet().ScopePrefix = 24
	resp := a.ServeDNS(resolverAddr, q)
	if resp == nil || resp.RCode != dnsmsg.RCodeFormatError {
		t.Fatalf("non-zero scope answered with %v, want FORMERR", resp)
	}
	if len(resp.Answers) != 0 {
		t.Errorf("FORMERR carried %d answers", len(resp.Answers))
	}

	// Pad-bit violation, as the unpacker flags it off the wire.
	q = query("img.cdn.example.net", dnsmsg.TypeA)
	if err := q.SetClientSubnet(netip.MustParseAddr("203.0.113.7"), 24); err != nil {
		t.Fatal(err)
	}
	q.ClientSubnet().NonZeroPad = true
	resp = a.ServeDNS(resolverAddr, q)
	if resp == nil || resp.RCode != dnsmsg.RCodeFormatError {
		t.Fatalf("pad violation answered with %v, want FORMERR", resp)
	}

	if got := a.ECSFormErrs.Load(); got != 2 {
		t.Errorf("ECSFormErrs = %d, want 2", got)
	}
	if got := a.ECSQueries.Load(); got != 0 {
		t.Errorf("ECSQueries = %d, want 0 (rejected queries are not ECS-served)", got)
	}

	// A conformant ECS query on the same authority still gets answers.
	q = query("img.cdn.example.net", dnsmsg.TypeA)
	_ = q.SetClientSubnet(netip.MustParseAddr("203.0.113.7"), 24)
	resp = a.ServeDNS(resolverAddr, q)
	if resp.RCode != dnsmsg.RCodeSuccess || len(resp.Answers) == 0 {
		t.Fatalf("conformant ECS query broken: rcode=%v answers=%d", resp.RCode, len(resp.Answers))
	}
}

func TestNSPolicyScopeZero(t *testing.T) {
	// Under NS-based mapping the answer does not depend on the client
	// subnet, so the echoed scope must be 0.
	a := newAuthority(t, mapping.NSBased)
	b := testW.Blocks[5]
	q := query("x.cdn.example.net", dnsmsg.TypeA)
	_ = q.SetClientSubnet(b.Prefix.Addr(), 24)
	resp := a.ServeDNS(netip.AddrPortFrom(b.LDNS.Addr, 53), q)
	ecs := resp.ClientSubnet()
	if ecs == nil {
		t.Fatal("ECS not echoed")
	}
	if ecs.ScopePrefix != 0 {
		t.Errorf("NS-based scope = %d, want 0", ecs.ScopePrefix)
	}
}

func TestWhoami(t *testing.T) {
	a := newAuthority(t, mapping.NSBased)
	resp := a.ServeDNS(resolverAddr, query("whoami.cdn.example.net", dnsmsg.TypeTXT))
	if len(resp.Answers) != 1 {
		t.Fatalf("whoami answers = %d", len(resp.Answers))
	}
	txt := resp.Answers[0].Data.(*dnsmsg.TXT)
	if len(txt.Strings) != 2 || txt.Strings[1] != "198.51.100.7" {
		t.Errorf("whoami TXT = %v", txt.Strings)
	}
	// A form as well.
	resp = a.ServeDNS(resolverAddr, query("whoami.cdn.example.net", dnsmsg.TypeA))
	if len(resp.Answers) != 1 {
		t.Fatalf("whoami A answers = %d", len(resp.Answers))
	}
	if got := resp.Answers[0].Data.(*dnsmsg.A).Addr; got != netip.MustParseAddr("198.51.100.7") {
		t.Errorf("whoami A = %v", got)
	}
}

func TestOutOfZoneRefused(t *testing.T) {
	a := newAuthority(t, mapping.NSBased)
	resp := a.ServeDNS(resolverAddr, query("www.elsewhere.org", dnsmsg.TypeA))
	if resp.RCode != dnsmsg.RCodeRefused {
		t.Errorf("rcode = %v, want REFUSED", resp.RCode)
	}
	if a.TotalQueries.Load() != 0 {
		t.Error("out-of-zone query counted as in-zone")
	}
}

func TestNoDataForAAAA(t *testing.T) {
	a := newAuthority(t, mapping.NSBased)
	resp := a.ServeDNS(resolverAddr, query("v6.cdn.example.net", dnsmsg.TypeAAAA))
	if resp.RCode != dnsmsg.RCodeSuccess || len(resp.Answers) != 0 {
		t.Errorf("AAAA: rcode=%v answers=%d", resp.RCode, len(resp.Answers))
	}
	if len(resp.Authorities) != 1 {
		t.Fatal("NODATA response missing SOA")
	}
	if _, ok := resp.Authorities[0].Data.(*dnsmsg.SOA); !ok {
		t.Error("authority record is not SOA")
	}
}

func TestMultiQuestionNotImplemented(t *testing.T) {
	a := newAuthority(t, mapping.NSBased)
	q := query("a.cdn.example.net", dnsmsg.TypeA)
	q.Questions = append(q.Questions, q.Questions[0])
	resp := a.ServeDNS(resolverAddr, q)
	if resp.RCode != dnsmsg.RCodeNotImplemented {
		t.Errorf("rcode = %v", resp.RCode)
	}
}

func TestNonINClassRefused(t *testing.T) {
	a := newAuthority(t, mapping.NSBased)
	q := query("a.cdn.example.net", dnsmsg.TypeA)
	q.Questions[0].Class = dnsmsg.Class(3) // CHAOS
	resp := a.ServeDNS(resolverAddr, q)
	if resp.RCode != dnsmsg.RCodeRefused {
		t.Errorf("rcode = %v", resp.RCode)
	}
}

func TestZeroSourceECSNotUsed(t *testing.T) {
	// RFC 7871: SOURCE PREFIX-LENGTH 0 means "do not use my address".
	a := newAuthority(t, mapping.EndUser)
	b := testW.Blocks[8]
	q := query("y.cdn.example.net", dnsmsg.TypeA)
	_ = q.SetClientSubnet(b.Prefix.Addr(), 0)
	resp := a.ServeDNS(netip.AddrPortFrom(b.LDNS.Addr, 53), q)
	ecs := resp.ClientSubnet()
	if ecs == nil {
		t.Fatal("ECS not echoed")
	}
	if ecs.ScopePrefix != 0 {
		t.Errorf("scope = %d for source /0, want 0", ecs.ScopePrefix)
	}
}

// TestEndToEndOverUDP runs the full stack: authority behind a dnsserver on
// a real socket, queried by the dnsclient with ECS — Figure 4 as an
// integration test.
func TestEndToEndOverUDP(t *testing.T) {
	a := newAuthority(t, mapping.EndUser)
	srv, err := dnsserver.Listen("127.0.0.1:0", a)
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve() }()
	defer srv.Close()

	b := testW.Blocks[50]
	c := &dnsclient.Client{Timeout: 2 * time.Second}
	resp, err := c.Lookup(context.Background(), srv.Addr().String(),
		"foo.cdn.example.net", dnsmsg.TypeA, b.Prefix)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Answers) < 2 {
		t.Fatalf("answers = %d", len(resp.Answers))
	}
	ecs := resp.ClientSubnet()
	if ecs == nil || ecs.ScopePrefix == 0 {
		t.Fatalf("end-to-end ECS scope missing: %+v", ecs)
	}
	// The answered servers must exist on the platform.
	addrs := map[netip.Addr]bool{}
	for _, d := range testP.Deployments {
		for _, s := range d.Servers {
			addrs[s.Addr] = true
		}
	}
	for _, rr := range resp.Answers {
		if !addrs[rr.Data.(*dnsmsg.A).Addr] {
			t.Errorf("answer %v is not a platform server", rr.Data)
		}
	}
}

// TestECSIPv6EndToEnd exercises the v6 client-subnet path through the full
// stack: a /48 v6 block resolved over real UDP with a v6 ECS option.
func TestECSIPv6EndToEnd(t *testing.T) {
	w6 := world.MustGenerate(world.Config{Seed: 23, NumBlocks: 1500, IPv6Fraction: 0.3})
	p6 := cdn.MustGenerateUniverse(w6, cdn.Config{Seed: 23, NumDeployments: 100})
	sys := mapping.NewSystem(w6, p6, netmodel.NewDefault(), mapping.Config{Policy: mapping.EndUser, PingTargets: 200})
	a, err := New("cdn.example.net", sys)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := dnsserver.Listen("127.0.0.1:0", a)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	go func() { _ = srv.Serve() }()

	var blk *world.ClientBlock
	for _, b := range w6.Blocks {
		if b.Prefix.Addr().Is6() {
			blk = b
			break
		}
	}
	if blk == nil {
		t.Fatal("no v6 block")
	}
	c := &dnsclient.Client{Timeout: 2 * time.Second}
	resp, err := c.Lookup(context.Background(), srv.Addr().String(),
		"v6.cdn.example.net", dnsmsg.TypeA, blk.Prefix)
	if err != nil {
		t.Fatal(err)
	}
	ecs := resp.ClientSubnet()
	if ecs == nil {
		t.Fatal("no ECS in response")
	}
	if ecs.Family != dnsmsg.ECSFamilyIPv6 || ecs.SourcePrefix != 48 {
		t.Errorf("ecs = %+v", ecs)
	}
	if ecs.ScopePrefix != 48 {
		t.Errorf("v6 scope = %d, want 48", ecs.ScopePrefix)
	}
	if len(resp.Answers) < 2 {
		t.Errorf("answers = %d", len(resp.Answers))
	}
}
