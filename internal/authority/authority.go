// Package authority implements the CDN's authoritative DNS name server
// behaviour (§2.2 component 3): it answers A queries for content domains
// under the CDN zone by asking the mapping system which servers the
// requesting client should use, honouring the EDNS0 client-subnet option
// end-to-end — reading the source prefix from the query and returning the
// answer's scope prefix in the response, exactly as Figure 4 traces.
//
// It also serves the whoami diagnostic name the paper's NetSession
// measurement uses to discover a client's LDNS (§3.1): a TXT/A query for
// whoami.<zone> answers with the resolver address the query arrived from.
package authority

import (
	"fmt"
	"net/netip"
	"strings"
	"sync/atomic"
	"time"

	"eum/internal/dnsmsg"
	"eum/internal/mapping"
)

// Authority answers DNS queries for one CDN zone using a mapping system.
// It implements dnsserver.Handler and is safe for concurrent use.
//
// Repeat mapping decisions are served from a per-scope answer cache (see
// cache.go): within one TTL window, queries for the same content domain
// from the same mapping unit (EU policy) or the same resolver (NS/CANS)
// short-circuit the mapping computation.
type Authority struct {
	zone   dnsmsg.Name
	system *mapping.System
	cache  *answerCache

	// nowNanos is the cache clock, overridable in tests.
	nowNanos func() int64

	// ECSQueries counts queries carrying a client-subnet option.
	ECSQueries atomic.Uint64
	// TotalQueries counts all well-formed in-zone queries.
	TotalQueries atomic.Uint64
	// CacheHits counts mapping queries answered from the answer cache.
	CacheHits atomic.Uint64
	// CacheMisses counts mapping queries that ran the full mapping path.
	CacheMisses atomic.Uint64
}

// New creates an authority for the given zone (e.g. "cdn.example.net"),
// with the per-scope answer cache enabled.
func New(zone dnsmsg.Name, system *mapping.System) (*Authority, error) {
	if zone.Canonical() == "" {
		return nil, fmt.Errorf("authority: empty zone")
	}
	if system == nil {
		return nil, fmt.Errorf("authority: nil mapping system")
	}
	return &Authority{
		zone:     zone.Canonical(),
		system:   system,
		cache:    newAnswerCache(),
		nowNanos: func() int64 { return time.Now().UnixNano() },
	}, nil
}

// DisableAnswerCache turns the per-scope answer cache off, forcing every
// query through the full mapping path (for baseline benchmarks and tests).
// Call it before serving begins.
func (a *Authority) DisableAnswerCache() { a.cache = nil }

// Zone returns the served zone.
func (a *Authority) Zone() dnsmsg.Name { return a.zone }

// WhoamiName returns the diagnostic name whose answer reveals the LDNS.
func (a *Authority) WhoamiName() dnsmsg.Name {
	return dnsmsg.Name("whoami." + string(a.zone))
}

// ServeDNS implements dnsserver.Handler.
func (a *Authority) ServeDNS(remote netip.AddrPort, query *dnsmsg.Message) *dnsmsg.Message {
	resp := query.Reply()
	resp.Authoritative = true
	resp.RecursionAvailable = false

	if query.OpCode != dnsmsg.OpCodeQuery || len(query.Questions) != 1 {
		resp.RCode = dnsmsg.RCodeNotImplemented
		return resp
	}
	q := query.Questions[0]
	name := q.Name.Canonical()
	if q.Class != dnsmsg.ClassINET {
		resp.RCode = dnsmsg.RCodeRefused
		return resp
	}
	if !name.IsSubdomainOf(a.zone) {
		// Not our zone: refuse rather than lie.
		resp.RCode = dnsmsg.RCodeRefused
		return resp
	}
	a.TotalQueries.Add(1)

	if name == a.WhoamiName().Canonical() {
		return a.serveWhoami(remote, q, resp)
	}

	switch q.Type {
	case dnsmsg.TypeA, dnsmsg.TypeANY:
		return a.serveMapping(remote, query, q, resp)
	case dnsmsg.TypeAAAA, dnsmsg.TypeTXT, dnsmsg.TypeNS, dnsmsg.TypeCNAME:
		// Name exists (any content domain under the zone does), but we
		// have no records of this type: NOERROR/NODATA with an SOA.
		resp.Authorities = append(resp.Authorities, a.soa())
		return resp
	default:
		resp.RCode = dnsmsg.RCodeNotImplemented
		return resp
	}
}

// serveWhoami answers the LDNS-discovery name with the resolver's address.
func (a *Authority) serveWhoami(remote netip.AddrPort, q dnsmsg.Question, resp *dnsmsg.Message) *dnsmsg.Message {
	switch q.Type {
	case dnsmsg.TypeTXT, dnsmsg.TypeANY:
		resp.Answers = append(resp.Answers, dnsmsg.RR{
			Name: q.Name, Class: dnsmsg.ClassINET, TTL: 0,
			Data: &dnsmsg.TXT{Strings: []string{"resolver", remote.Addr().Unmap().String()}},
		})
	case dnsmsg.TypeA:
		addr := remote.Addr().Unmap()
		if addr.Is4() {
			resp.Answers = append(resp.Answers, dnsmsg.RR{
				Name: q.Name, Class: dnsmsg.ClassINET, TTL: 0,
				Data: &dnsmsg.A{Addr: addr},
			})
		}
	}
	return resp
}

// serveMapping asks the mapping system for servers and builds the answer,
// consulting the per-scope answer cache first.
func (a *Authority) serveMapping(remote netip.AddrPort, query *dnsmsg.Message, q dnsmsg.Question, resp *dnsmsg.Message) *dnsmsg.Message {
	req := mapping.Request{
		Domain: string(q.Name.Canonical()),
		LDNS:   remote.Addr().Unmap(),
	}
	var ecs *dnsmsg.ClientSubnet
	if query.EDNS {
		if ecs = query.ClientSubnet(); ecs != nil {
			a.ECSQueries.Add(1)
			if ecs.SourcePrefix > 0 {
				req.ClientSubnet = ecs.Prefix()
			}
		}
	}

	decision, err := a.decide(req)
	if err != nil {
		resp.RCode = dnsmsg.RCodeServerFailure
		return resp
	}
	ttl := uint32(decision.TTL.Seconds())
	for _, srv := range decision.Servers {
		resp.Answers = append(resp.Answers, dnsmsg.RR{
			Name: q.Name, Class: dnsmsg.ClassINET, TTL: ttl,
			Data: &dnsmsg.A{Addr: srv.Addr},
		})
	}

	// Echo the ECS option with the answer's scope (RFC 7871 §7.2.2: a
	// server receiving ECS must include the option with its scope, even
	// when the scope is zero, so caches know how to file the answer).
	if ecs != nil {
		resp.Options = append(resp.Options, &dnsmsg.ClientSubnet{
			Family:       ecs.Family,
			SourcePrefix: ecs.SourcePrefix,
			ScopePrefix:  decision.ScopePrefix,
			Address:      ecs.Address,
		})
	}
	return resp
}

// decide resolves a mapping request against the snapshot published right
// now, consulting the per-scope answer cache first. The snapshot is loaded
// once — one atomic pointer read — and both the cache lookup (keyed by its
// epoch) and a cache-miss computation (MapAt against it) use that same
// snapshot, so the decision's epoch always matches the map it was derived
// from and a concurrent snapshot swap can never mix an old answer with a
// new epoch or vice versa.
func (a *Authority) decide(req mapping.Request) (*mapping.Response, error) {
	snap := a.system.Current()
	if a.cache == nil {
		return a.system.MapAt(snap, req)
	}
	key := a.cacheKey(snap, req)
	epoch := snap.Epoch()
	now := a.nowNanos()
	if decision := a.cache.get(key, epoch, now); decision != nil {
		a.CacheHits.Add(1)
		return decision, nil
	}
	decision, err := a.system.MapAt(snap, req)
	if err != nil {
		return nil, err
	}
	a.CacheMisses.Add(1)
	a.cache.put(key, epoch, now, now+decision.TTL.Nanoseconds(), decision)
	return decision, nil
}

// cacheKey derives the answer-cache key for a mapping request: under the
// EU policy with a client subnet, answers are shared at mapping-unit
// granularity (with the ECS scope clamp folded in so narrower queries do
// not inherit a wider answer's scope field); every other decision depends
// only on the resolver, so it is keyed by the LDNS address. The policy
// comes from the same snapshot the decision will be made against, so the
// key can never disagree with the decision's policy mid-swap.
func (a *Authority) cacheKey(snap *mapping.Snapshot, req mapping.Request) answerKey {
	if snap.Policy() == mapping.EndUser && req.ClientSubnet.IsValid() {
		unit := a.system.UnitFor(req.ClientSubnet.Addr())
		clamp := uint8(unit.Bits())
		if int(clamp) > req.ClientSubnet.Bits() {
			clamp = uint8(req.ClientSubnet.Bits())
		}
		return answerKey{domain: req.Domain, scope: unit, clamp: clamp}
	}
	ldns := req.LDNS
	return answerKey{
		domain: req.Domain,
		scope:  netip.PrefixFrom(ldns, ldns.BitLen()),
	}
}

// soa returns the zone's SOA record for negative/nodata answers.
func (a *Authority) soa() dnsmsg.RR {
	return dnsmsg.RR{
		Name: a.zone, Class: dnsmsg.ClassINET, TTL: 60,
		Data: &dnsmsg.SOA{
			MName:   dnsmsg.Name("ns1." + string(a.zone)),
			RName:   dnsmsg.Name("hostmaster." + strings.TrimPrefix(string(a.zone), "www.")),
			Serial:  2014032801,
			Refresh: 3600, Retry: 600, Expire: 86400, Minimum: 30,
		},
	}
}
