// Package authority implements the CDN's authoritative DNS name server
// behaviour (§2.2 component 3): it answers A queries for content domains
// under the CDN zone by asking the mapping system which servers the
// requesting client should use, honouring the EDNS0 client-subnet option
// end-to-end — reading the source prefix from the query and returning the
// answer's scope prefix in the response, exactly as Figure 4 traces.
//
// It also serves the whoami diagnostic name the paper's NetSession
// measurement uses to discover a client's LDNS (§3.1): a TXT/A query for
// whoami.<zone> answers with the resolver address the query arrived from.
package authority

import (
	"errors"
	"fmt"
	"net/netip"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"eum/internal/dnsmsg"
	"eum/internal/mapping"
	"eum/internal/telemetry"
)

// DegradeLevel is a rung on the authority's degradation ladder, derived
// from the age of the last successful map publish. The mapping system must
// never be the reason a user gets no answer (§2.2, §6): as the control
// plane falls further behind, the authority trades answer quality for
// availability, and only refuses service when the map is so old that any
// answer would be a guess about a world it no longer knows.
type DegradeLevel int32

const (
	// DegradeFresh: the map is within its staleness budget; serve normally.
	DegradeFresh DegradeLevel = iota
	// DegradeStale: the map missed its refresh cadence. Serve the last
	// good snapshot anyway, with the answer TTL clamped down (RFC 8767's
	// serve-stale posture) so clients re-query soon after recovery.
	DegradeStale
	// DegradeFallback: the map is old enough that per-client measurements
	// are distrusted; serve from the snapshot's generic fallback tables.
	DegradeFallback
	// DegradeServfail: the map is beyond salvage; answer SERVFAIL so
	// clients fail over to another authority.
	DegradeServfail
)

// String names the ladder rung.
func (l DegradeLevel) String() string {
	switch l {
	case DegradeFresh:
		return "fresh"
	case DegradeStale:
		return "stale"
	case DegradeFallback:
		return "fallback"
	case DegradeServfail:
		return "servfail"
	}
	return fmt.Sprintf("DegradeLevel(%d)", int32(l))
}

// DegradeConfig parameterises the staleness watchdog. The zero value
// disables it (the authority serves whatever snapshot is current forever).
// Thresholds are ages of the last successful snapshot publish.
type DegradeConfig struct {
	// StaleAfter enters serve-stale (clamped TTL). Deployments derive it
	// from the MapMaker cadence — a few missed refreshes, e.g. 3x
	// map_refresh_seconds. Zero disables the whole watchdog.
	StaleAfter time.Duration
	// FallbackAfter switches to the snapshot's fallback tables.
	// Default 4x StaleAfter.
	FallbackAfter time.Duration
	// ServfailAfter refuses service. Default 16x StaleAfter.
	ServfailAfter time.Duration
	// StaleTTL is the answer-TTL ceiling once degraded (default 5s).
	StaleTTL time.Duration
}

// withDefaults fills the derived thresholds.
func (c DegradeConfig) withDefaults() DegradeConfig {
	if c.StaleAfter <= 0 {
		return DegradeConfig{}
	}
	if c.FallbackAfter <= 0 {
		c.FallbackAfter = 4 * c.StaleAfter
	}
	if c.ServfailAfter <= 0 {
		c.ServfailAfter = 16 * c.StaleAfter
	}
	if c.StaleTTL <= 0 {
		c.StaleTTL = 5 * time.Second
	}
	return c
}

// errStaleMap aborts a mapping decision when the map aged past the ladder.
var errStaleMap = errors.New("authority: map too stale to serve")

// Authority answers DNS queries for one CDN zone using a mapping system.
// It implements dnsserver.Handler — and dnsserver.ShardAware, so a sharded
// serving plane gives every listener shard its own answer cache — and is
// safe for concurrent use.
//
// Repeat mapping decisions are served from a per-scope answer cache (see
// cache.go): within one TTL window, queries for the same content domain
// from the same mapping unit (EU policy) or the same resolver (NS/CANS)
// short-circuit the mapping computation.
type Authority struct {
	zone   dnsmsg.Name
	system *mapping.System
	// caches holds one answer cache per serving shard (see SetShards), so
	// shards never contend on cache shard locks or lines; nil when the
	// cache is disabled. A single-shard server uses caches[0].
	caches []*answerCache

	// nowNanos is the cache clock, overridable in tests.
	nowNanos func() int64

	// degrade is the staleness watchdog configuration (see DegradeConfig);
	// the zero value disables it. Set before serving begins.
	degrade DegradeConfig
	// answerDemand is the demand recorded against the picked server for
	// every full mapping decision (cache hits record nothing — within one
	// TTL window the cached answer stands for the same client population,
	// so misses approximate per-window demand). Feeds the deployment load
	// gauges the load-feedback loop watches; 0 disables accounting. Set
	// before serving begins.
	answerDemand float64
	// epochDebug, when set, appends a TXT record carrying the decision's
	// snapshot epoch to every mapping answer, so transport-level tests can
	// verify end-to-end that each answer came from a map that was live
	// while the query was being served. Set before serving begins.
	epochDebug bool

	// decisionLatency, when non-nil, records the full mapping-decision
	// latency (answer-cache lookup through mapping computation). Set by
	// RegisterMetrics before serving begins.
	decisionLatency *telemetry.Histogram

	// ECSQueries counts queries carrying a client-subnet option.
	ECSQueries atomic.Uint64
	// ECSFormErrs counts queries rejected with FORMERR because their ECS
	// option violated RFC 7871 §7.1.2 (non-zero address bits beyond the
	// source prefix, or a non-zero scope prefix in a query).
	ECSFormErrs atomic.Uint64
	// TotalQueries counts all well-formed in-zone queries.
	TotalQueries atomic.Uint64
	// CacheHits counts mapping queries answered from the answer cache.
	CacheHits atomic.Uint64
	// CacheMisses counts mapping queries that ran the full mapping path.
	CacheMisses atomic.Uint64
	// StaleAnswers counts answers served past StaleAfter (TTL clamped).
	StaleAnswers atomic.Uint64
	// FallbackAnswers counts answers served from the fallback tables.
	FallbackAnswers atomic.Uint64
	// DegradeServfails counts queries refused because the map aged past
	// ServfailAfter.
	DegradeServfails atomic.Uint64
	// StaleEpochAnswers counts cache hits whose decision epoch disagreed
	// with the snapshot epoch they were filed under. It is an invariant
	// tripwire — the chaos harness asserts it stays 0 under continuous
	// snapshot churn (every answer's epoch was live at decision time).
	StaleEpochAnswers atomic.Uint64
}

// New creates an authority for the given zone (e.g. "cdn.example.net"),
// with the per-scope answer cache enabled.
func New(zone dnsmsg.Name, system *mapping.System) (*Authority, error) {
	if zone.Canonical() == "" {
		return nil, fmt.Errorf("authority: empty zone")
	}
	if system == nil {
		return nil, fmt.Errorf("authority: nil mapping system")
	}
	return &Authority{
		zone:     zone.Canonical(),
		system:   system,
		caches:   []*answerCache{newAnswerCache()},
		nowNanos: func() int64 { return time.Now().UnixNano() },
	}, nil
}

// DisableAnswerCache turns the per-scope answer cache off, forcing every
// query through the full mapping path (for baseline benchmarks and tests).
// Call it before serving begins.
func (a *Authority) DisableAnswerCache() { a.caches = nil }

// SetShards sizes the answer-cache array to one independent cache per
// serving shard, discarding any cached answers. Wire it to the server's
// shard count (dnsserver.Server.Shards) before serving begins; queries
// then arrive via ServeDNSShard and each shard fills only its own cache —
// shared-nothing, at the cost of per-shard cold starts and up to
// shard-count copies of a hot answer. A no-op when the cache is disabled.
func (a *Authority) SetShards(n int) {
	if a.caches == nil {
		return
	}
	if n < 1 {
		n = 1
	}
	caches := make([]*answerCache, n)
	for i := range caches {
		caches[i] = newAnswerCache()
	}
	a.caches = caches
}

// SetDegradeConfig arms the staleness watchdog (see DegradeConfig); a zero
// StaleAfter disables it. Call before serving begins.
func (a *Authority) SetDegradeConfig(cfg DegradeConfig) {
	a.degrade = cfg.withDefaults()
}

// SetAnswerDemand sets the demand units each full mapping decision records
// on the picked server (see the answerDemand field); 0 keeps load
// accounting off. Call before serving begins.
func (a *Authority) SetAnswerDemand(d float64) { a.answerDemand = d }

// SetEpochDebug toggles the per-answer epoch TXT record (see the
// epochDebug field). Call before serving begins; the record is for test
// harnesses, not production responses.
func (a *Authority) SetEpochDebug(on bool) { a.epochDebug = on }

// Degradation reports the ladder rung the authority is currently serving
// at, for observability. DegradeFresh when the watchdog is disabled.
func (a *Authority) Degradation() DegradeLevel {
	if a.degrade.StaleAfter <= 0 {
		return DegradeFresh
	}
	return a.levelAt(a.nowNanos())
}

// levelAt maps the age of the last successful snapshot publish to a
// ladder rung. Callers have checked that the watchdog is armed.
func (a *Authority) levelAt(now int64) DegradeLevel {
	age := time.Duration(now - a.system.PublishedAtNanos())
	switch {
	case age > a.degrade.ServfailAfter:
		return DegradeServfail
	case age > a.degrade.FallbackAfter:
		return DegradeFallback
	case age > a.degrade.StaleAfter:
		return DegradeStale
	}
	return DegradeFresh
}

// Zone returns the served zone.
func (a *Authority) Zone() dnsmsg.Name { return a.zone }

// WhoamiName returns the diagnostic name whose answer reveals the LDNS.
func (a *Authority) WhoamiName() dnsmsg.Name {
	return dnsmsg.Name("whoami." + string(a.zone))
}

// ServeDNS implements dnsserver.Handler, serving against shard 0's cache.
func (a *Authority) ServeDNS(remote netip.AddrPort, query *dnsmsg.Message) *dnsmsg.Message {
	return a.ServeDNSShard(0, remote, query)
}

// ServeDNSShard implements dnsserver.ShardAware: identical to ServeDNS but
// mapping decisions consult (and fill) the answer cache belonging to the
// given serving shard. Shard indexes beyond the configured cache count
// (see SetShards) wrap, so a stale wiring order degrades to cache sharing
// rather than a panic.
func (a *Authority) ServeDNSShard(shard int, remote netip.AddrPort, query *dnsmsg.Message) *dnsmsg.Message {
	resp := query.Reply()
	resp.Authoritative = true
	resp.RecursionAvailable = false

	if query.OpCode != dnsmsg.OpCodeQuery || len(query.Questions) != 1 {
		resp.RCode = dnsmsg.RCodeNotImplemented
		return resp
	}
	q := query.Questions[0]
	name := q.Name.Canonical()
	if q.Class != dnsmsg.ClassINET {
		resp.RCode = dnsmsg.RCodeRefused
		return resp
	}
	if !name.IsSubdomainOf(a.zone) {
		// Not our zone: refuse rather than lie.
		resp.RCode = dnsmsg.RCodeRefused
		return resp
	}
	a.TotalQueries.Add(1)

	if name == a.WhoamiName().Canonical() {
		return a.serveWhoami(remote, q, resp)
	}

	switch q.Type {
	case dnsmsg.TypeA, dnsmsg.TypeANY:
		return a.serveMapping(shard, remote, query, q, resp)
	case dnsmsg.TypeAAAA, dnsmsg.TypeTXT, dnsmsg.TypeNS, dnsmsg.TypeCNAME:
		// Name exists (any content domain under the zone does), but we
		// have no records of this type: NOERROR/NODATA with an SOA.
		resp.Authorities = append(resp.Authorities, a.soa())
		return resp
	default:
		resp.RCode = dnsmsg.RCodeNotImplemented
		return resp
	}
}

// serveWhoami answers the LDNS-discovery name with the resolver's address.
func (a *Authority) serveWhoami(remote netip.AddrPort, q dnsmsg.Question, resp *dnsmsg.Message) *dnsmsg.Message {
	switch q.Type {
	case dnsmsg.TypeTXT, dnsmsg.TypeANY:
		resp.Answers = append(resp.Answers, dnsmsg.RR{
			Name: q.Name, Class: dnsmsg.ClassINET, TTL: 0,
			Data: &dnsmsg.TXT{Strings: []string{"resolver", remote.Addr().Unmap().String()}},
		})
	case dnsmsg.TypeA:
		addr := remote.Addr().Unmap()
		if addr.Is4() {
			resp.Answers = append(resp.Answers, dnsmsg.RR{
				Name: q.Name, Class: dnsmsg.ClassINET, TTL: 0,
				Data: &dnsmsg.A{Addr: addr},
			})
		}
	}
	return resp
}

// serveMapping asks the mapping system for servers and builds the answer,
// consulting the per-scope answer cache first.
func (a *Authority) serveMapping(shard int, remote netip.AddrPort, query *dnsmsg.Message, q dnsmsg.Question, resp *dnsmsg.Message) *dnsmsg.Message {
	req := mapping.Request{
		Domain: string(q.Name.Canonical()),
		LDNS:   remote.Addr().Unmap(),
		Demand: a.answerDemand,
	}
	var ecs *dnsmsg.ClientSubnet
	if query.EDNS {
		if ecs = query.ClientSubnet(); ecs != nil {
			if !ecs.QueryConformant() {
				// RFC 7871 §7.1.2: a query-side ECS option with address
				// bits set beyond SOURCE PREFIX-LENGTH, or a non-zero
				// SCOPE PREFIX-LENGTH, is malformed — answer FORMERR
				// instead of silently accepting (and mis-caching) it.
				a.ECSFormErrs.Add(1)
				resp.RCode = dnsmsg.RCodeFormatError
				return resp
			}
			a.ECSQueries.Add(1)
			if ecs.SourcePrefix > 0 {
				req.ClientSubnet = ecs.Prefix()
			}
		}
	}

	var startNs int64
	if a.decisionLatency != nil {
		startNs = time.Now().UnixNano()
	}
	decision, level, err := a.decide(shard, req)
	if a.decisionLatency != nil {
		a.decisionLatency.ObserveNanos(time.Now().UnixNano() - startNs)
	}
	if err != nil {
		resp.RCode = dnsmsg.RCodeServerFailure
		return resp
	}
	ttl := uint32(decision.TTL.Seconds())
	if level >= DegradeStale {
		// Serve-stale posture (RFC 8767-style): the answer may rest on old
		// measurements, so clamp its lifetime in downstream caches.
		if clamp := uint32(a.degrade.StaleTTL.Seconds()); ttl > clamp {
			ttl = clamp
		}
	}
	for _, srv := range decision.Servers {
		resp.Answers = append(resp.Answers, dnsmsg.RR{
			Name: q.Name, Class: dnsmsg.ClassINET, TTL: ttl,
			Data: &dnsmsg.A{Addr: srv.Addr},
		})
	}
	if a.epochDebug {
		resp.Additionals = append(resp.Additionals, dnsmsg.RR{
			Name: q.Name, Class: dnsmsg.ClassINET, TTL: 0,
			Data: &dnsmsg.TXT{Strings: []string{"epoch", strconv.FormatUint(decision.Epoch, 10)}},
		})
	}

	// Echo the ECS option with the answer's scope (RFC 7871 §7.2.2: a
	// server receiving ECS must include the option with its scope, even
	// when the scope is zero, so caches know how to file the answer).
	if ecs != nil {
		resp.Options = append(resp.Options, &dnsmsg.ClientSubnet{
			Family:       ecs.Family,
			SourcePrefix: ecs.SourcePrefix,
			ScopePrefix:  decision.ScopePrefix,
			Address:      ecs.Address,
		})
	}
	return resp
}

// decide resolves a mapping request against the snapshot published right
// now, consulting the per-scope answer cache first. The snapshot is loaded
// once — one atomic pointer read — and both the cache lookup (keyed by its
// epoch) and a cache-miss computation (MapAt against it) use that same
// snapshot, so the decision's epoch always matches the map it was derived
// from and a concurrent snapshot swap can never mix an old answer with a
// new epoch or vice versa.
//
// When the staleness watchdog is armed, the map's publish age picks the
// degradation rung first: stale maps still serve (the caller clamps the
// TTL), fallback-age maps answer from the generic fallback tables
// bypassing the cache, and beyond ServfailAfter the decision is refused.
// None of this adds allocations or locks — one atomic load and a few
// comparisons on the armed path, a single branch when disarmed.
func (a *Authority) decide(shard int, req mapping.Request) (*mapping.Response, DegradeLevel, error) {
	snap := a.system.Current()
	level := DegradeFresh
	var cache *answerCache
	if len(a.caches) > 0 {
		if shard < 0 || shard >= len(a.caches) {
			shard = 0
		}
		cache = a.caches[shard]
	}
	var now int64
	if cache != nil || a.degrade.StaleAfter > 0 {
		now = a.nowNanos()
	}
	if a.degrade.StaleAfter > 0 {
		switch level = a.levelAt(now); {
		case level >= DegradeServfail:
			a.DegradeServfails.Add(1)
			return nil, level, errStaleMap
		case level >= DegradeFallback:
			// Generic geography-anchored answer; bypass the answer cache so
			// degraded decisions never outlive recovery.
			a.FallbackAnswers.Add(1)
			req.Degraded = true
			decision, err := a.system.MapAt(snap, req)
			return decision, level, err
		case level == DegradeStale:
			a.StaleAnswers.Add(1)
		}
	}
	if cache == nil {
		decision, err := a.system.MapAt(snap, req)
		return decision, level, err
	}
	key := a.cacheKey(snap, req)
	epoch := snap.Epoch()
	if decision := cache.get(key, epoch, now); decision != nil {
		if decision.Epoch != epoch {
			// Invariant tripwire: a hit must carry the epoch it was filed
			// under. See StaleEpochAnswers.
			a.StaleEpochAnswers.Add(1)
		}
		a.CacheHits.Add(1)
		return decision, level, nil
	}
	decision, err := a.system.MapAt(snap, req)
	if err != nil {
		return nil, level, err
	}
	a.CacheMisses.Add(1)
	cache.put(key, epoch, now, now+decision.TTL.Nanoseconds(), decision)
	return decision, level, nil
}

// cacheKey derives the answer-cache key for a mapping request: under the
// EU policy with a client subnet, answers are shared at mapping-unit
// granularity (with the ECS scope clamp folded in so narrower queries do
// not inherit a wider answer's scope field); every other decision depends
// only on the resolver, so it is keyed by the LDNS address. The policy
// comes from the same snapshot the decision will be made against, so the
// key can never disagree with the decision's policy mid-swap.
func (a *Authority) cacheKey(snap *mapping.Snapshot, req mapping.Request) answerKey {
	if snap.Policy() == mapping.EndUser && req.ClientSubnet.IsValid() {
		unit := a.system.UnitFor(req.ClientSubnet.Addr())
		if req.ClientSubnet.Bits() < unit.Bits() {
			// Truncated ECS: the query reveals less than a mapping unit,
			// and the decision covers the whole revealed prefix (the
			// highest-demand block inside it), so file under the query
			// prefix itself. Keying by the base unit here would let a
			// truncated /20 and a full /24 for the unit's space collide —
			// the /20 inheriting the /24 answer's scope or vice versa.
			return answerKey{
				domain: req.Domain,
				scope:  req.ClientSubnet.Masked(),
				clamp:  uint8(req.ClientSubnet.Bits()),
			}
		}
		return answerKey{domain: req.Domain, scope: unit, clamp: uint8(unit.Bits())}
	}
	ldns := req.LDNS
	return answerKey{
		domain: req.Domain,
		scope:  netip.PrefixFrom(ldns, ldns.BitLen()),
	}
}

// soa returns the zone's SOA record for negative/nodata answers.
func (a *Authority) soa() dnsmsg.RR {
	return dnsmsg.RR{
		Name: a.zone, Class: dnsmsg.ClassINET, TTL: 60,
		Data: &dnsmsg.SOA{
			MName:   dnsmsg.Name("ns1." + string(a.zone)),
			RName:   dnsmsg.Name("hostmaster." + strings.TrimPrefix(string(a.zone), "www.")),
			Serial:  2014032801,
			Refresh: 3600, Retry: 600, Expire: 86400, Minimum: 30,
		},
	}
}
