package authority

import (
	"time"

	"eum/internal/telemetry"
)

// RegisterMetrics wires the authority's live counters, map-snapshot
// gauges and a mapping-decision latency histogram into reg under the
// authority_ namespace. Counters are the atomics the serving path already
// increments; the gauges read the published snapshot (one atomic pointer
// load each) at scrape time. Call before serving begins — the latency
// histogram field is not synchronised against concurrent queries.
func (a *Authority) RegisterMetrics(reg *telemetry.Registry) {
	reg.Counter("authority_queries_total",
		"Well-formed in-zone queries.", a.TotalQueries.Load)
	reg.Counter("authority_ecs_queries_total",
		"Queries carrying a client-subnet option.", a.ECSQueries.Load)
	reg.Counter("authority_ecs_formerr_total",
		"Queries refused with FORMERR for RFC 7871 ECS violations.", a.ECSFormErrs.Load)
	reg.Counter("authority_cache_hits_total",
		"Mapping queries answered from the per-scope answer cache.", a.CacheHits.Load)
	reg.Counter("authority_cache_misses_total",
		"Mapping queries that ran the full mapping path.", a.CacheMisses.Load)
	reg.Counter("authority_stale_answers_total",
		"Answers served past StaleAfter with a clamped TTL.", a.StaleAnswers.Load)
	reg.Counter("authority_fallback_answers_total",
		"Answers served from the snapshot's fallback tables.", a.FallbackAnswers.Load)
	reg.Counter("authority_degrade_servfails_total",
		"Queries refused because the map aged past ServfailAfter.", a.DegradeServfails.Load)
	reg.Counter("authority_stale_epoch_answers_total",
		"Cache hits whose epoch disagreed with their snapshot (invariant tripwire).",
		a.StaleEpochAnswers.Load)
	reg.Gauge("authority_map_epoch",
		"Epoch of the currently published map snapshot.", func() float64 {
			return float64(a.system.Current().Epoch())
		})
	reg.Gauge("authority_map_age_seconds",
		"Age of the last successful map publish.", func() float64 {
			return time.Duration(time.Now().UnixNano() - a.system.PublishedAtNanos()).Seconds()
		})
	reg.Gauge("authority_degrade_level",
		"Degradation-ladder rung (0 fresh, 1 stale, 2 fallback, 3 servfail).",
		func() float64 { return float64(a.Degradation()) })
	a.decisionLatency = reg.Histogram("authority_decision_latency_seconds",
		"Full mapping-decision latency (cache lookup through mapping computation).")
}
