package authority

import (
	"fmt"
	"net/netip"
	"sync"
	"testing"

	"eum/internal/dnsmsg"
	"eum/internal/mapping"
)

// TestShardCacheIsolation proves per-shard answer caches share nothing:
// warming shard 0 with a query must not make the identical query a hit on
// shard 1. The CacheMisses sequencing is the witness — with a shared cache
// the second shard's query would hit.
func TestShardCacheIsolation(t *testing.T) {
	a := newAuthority(t, mapping.EndUser)
	a.SetShards(2)

	q := func() *dnsmsg.Message {
		m := query("img.cdn.example.net", dnsmsg.TypeA)
		blk := testW.Blocks[3]
		if err := m.SetClientSubnet(blk.Prefix.Addr(), uint8(blk.Prefix.Bits())); err != nil {
			t.Fatal(err)
		}
		return m
	}

	// Shard 0: miss, then hit.
	if resp := a.ServeDNSShard(0, resolverAddr, q()); resp.RCode != dnsmsg.RCodeSuccess {
		t.Fatalf("shard 0 first query rcode = %v", resp.RCode)
	}
	if hits, misses := a.CacheHits.Load(), a.CacheMisses.Load(); hits != 0 || misses != 1 {
		t.Fatalf("after shard 0 cold query: hits %d misses %d, want 0/1", hits, misses)
	}
	if resp := a.ServeDNSShard(0, resolverAddr, q()); resp.RCode != dnsmsg.RCodeSuccess {
		t.Fatalf("shard 0 second query rcode = %v", resp.RCode)
	}
	if hits, misses := a.CacheHits.Load(), a.CacheMisses.Load(); hits != 1 || misses != 1 {
		t.Fatalf("after shard 0 warm query: hits %d misses %d, want 1/1", hits, misses)
	}

	// Shard 1: the same query must miss again — its cache is its own.
	if resp := a.ServeDNSShard(1, resolverAddr, q()); resp.RCode != dnsmsg.RCodeSuccess {
		t.Fatalf("shard 1 query rcode = %v", resp.RCode)
	}
	if hits, misses := a.CacheHits.Load(), a.CacheMisses.Load(); hits != 1 || misses != 2 {
		t.Fatalf("after shard 1 cold query: hits %d misses %d, want 1/2 (shard 1 must not see shard 0's cache)", hits, misses)
	}
	// And now it hits locally.
	if resp := a.ServeDNSShard(1, resolverAddr, q()); resp.RCode != dnsmsg.RCodeSuccess {
		t.Fatalf("shard 1 warm query rcode = %v", resp.RCode)
	}
	if hits, misses := a.CacheHits.Load(), a.CacheMisses.Load(); hits != 2 || misses != 2 {
		t.Fatalf("after shard 1 warm query: hits %d misses %d, want 2/2", hits, misses)
	}
}

// TestSetShardsSemantics pins the edge cases: plain ServeDNS routes to
// shard 0, out-of-range shard IDs degrade to shard 0 instead of panicking,
// and SetShards on a cache-disabled authority stays disabled.
func TestSetShardsSemantics(t *testing.T) {
	a := newAuthority(t, mapping.EndUser)
	a.SetShards(2)

	if resp := a.ServeDNS(resolverAddr, query("js.cdn.example.net", dnsmsg.TypeA)); resp.RCode != dnsmsg.RCodeSuccess {
		t.Fatalf("ServeDNS rcode = %v", resp.RCode)
	}
	if resp := a.ServeDNSShard(99, resolverAddr, query("js.cdn.example.net", dnsmsg.TypeA)); resp.RCode != dnsmsg.RCodeSuccess {
		t.Fatalf("out-of-range shard rcode = %v", resp.RCode)
	}
	// Both landed on shard 0's cache: one miss then one hit.
	if hits, misses := a.CacheHits.Load(), a.CacheMisses.Load(); hits != 1 || misses != 1 {
		t.Errorf("hits %d misses %d, want 1/1 (ServeDNS and wrapped shard share shard 0)", hits, misses)
	}

	d := newAuthority(t, mapping.EndUser)
	d.DisableAnswerCache()
	d.SetShards(4)
	if resp := d.ServeDNSShard(2, resolverAddr, query("img.cdn.example.net", dnsmsg.TypeA)); resp.RCode != dnsmsg.RCodeSuccess {
		t.Fatalf("disabled-cache shard query rcode = %v", resp.RCode)
	}
	if hits := d.CacheHits.Load(); hits != 0 {
		t.Errorf("disabled cache recorded %d hits after SetShards", hits)
	}
}

// TestShardCacheConcurrentEpochs hammers all shards concurrently while the
// control plane republishes snapshots, asserting the per-shard caches never
// serve a stale-epoch answer. This is the sharded extension of
// TestAuthorityEpochHammer: shard-local caches must preserve the same
// epoch-keying invariant the shared cache had.
func TestShardCacheConcurrentEpochs(t *testing.T) {
	a := newAuthority(t, mapping.EndUser)
	const shards = 4
	a.SetShards(shards)

	stop := make(chan struct{})
	var swapper sync.WaitGroup
	swapper.Add(1)
	go func() {
		defer swapper.Done()
		for {
			select {
			case <-stop:
				return
			default:
				a.system.Rebuild()
			}
		}
	}()

	const perShard = 300
	var wg sync.WaitGroup
	errs := make(chan error, shards)
	for shard := 0; shard < shards; shard++ {
		wg.Add(1)
		go func(shard int) {
			defer wg.Done()
			ldns := netip.AddrPortFrom(netip.AddrFrom4([4]byte{198, 51, 100, byte(shard + 1)}), 5353)
			for i := 0; i < perShard; i++ {
				q := query("video.cdn.example.net", dnsmsg.TypeA)
				if i%2 == 0 {
					blk := testW.Blocks[(shard*perShard+i)%len(testW.Blocks)]
					if err := q.SetClientSubnet(blk.Prefix.Addr(), uint8(blk.Prefix.Bits())); err != nil {
						errs <- err
						return
					}
				}
				resp := a.ServeDNSShard(shard, ldns, q)
				if resp.RCode != dnsmsg.RCodeSuccess || len(resp.Answers) == 0 {
					errs <- fmt.Errorf("shard %d query %d: bad response rcode=%v answers=%d",
						shard, i, resp.RCode, len(resp.Answers))
					return
				}
			}
		}(shard)
	}
	wg.Wait()
	close(stop)
	swapper.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	if got := a.StaleEpochAnswers.Load(); got != 0 {
		t.Errorf("StaleEpochAnswers = %d, want 0: a shard cache served an orphaned epoch", got)
	}
	total := uint64(shards * perShard)
	if got := a.TotalQueries.Load(); got != total {
		t.Errorf("TotalQueries = %d, want %d", got, total)
	}
	if hits, misses := a.CacheHits.Load(), a.CacheMisses.Load(); hits+misses != total {
		t.Errorf("CacheHits+CacheMisses = %d, want %d", hits+misses, total)
	}
}
