package authority

import (
	"context"
	"net"
	"net/netip"
	"strconv"
	"testing"
	"time"

	"eum/internal/dnsclient"
	"eum/internal/dnsmsg"
	"eum/internal/dnsserver"
	"eum/internal/mapping"
	"eum/internal/netmodel"
)

func newTopLevel(t *testing.T) (*TopLevel, *mapping.System) {
	t.Helper()
	sys := mapping.NewSystem(testW, testP, netmodel.NewDefault(),
		mapping.Config{Policy: mapping.EndUser, PingTargets: 300})
	tl, err := NewTopLevel("cdn.example.net", sys)
	if err != nil {
		t.Fatal(err)
	}
	return tl, sys
}

// sitesForTest registers two NS sites at far-apart deployments and returns
// them, most-distant-pair first.
func sitesForTest(t *testing.T, tl *TopLevel) (a, b NSSite) {
	t.Helper()
	d1 := testP.Deployments[0]
	// Find the deployment farthest from d1 for a clear choice.
	d2 := testP.Deployments[1]
	for _, d := range testP.Deployments {
		if sq(d.Loc.Lat-d1.Loc.Lat)+sq(d.Loc.Lon-d1.Loc.Lon) >
			sq(d2.Loc.Lat-d1.Loc.Lat)+sq(d2.Loc.Lon-d1.Loc.Lon) {
			d2 = d
		}
	}
	a = NSSite{Host: "n1.ns.cdn.example.net", Addr: netip.MustParseAddr("127.0.0.2"), Deployment: d1}
	b = NSSite{Host: "n2.ns.cdn.example.net", Addr: netip.MustParseAddr("127.0.0.3"), Deployment: d2}
	if err := tl.AddSite(a); err != nil {
		t.Fatal(err)
	}
	if err := tl.AddSite(b); err != nil {
		t.Fatal(err)
	}
	return a, b
}

func sq(v float64) float64 { return v * v }

func TestNewTopLevelValidation(t *testing.T) {
	_, sys := newTopLevel(t)
	if _, err := NewTopLevel("", sys); err == nil {
		t.Error("empty zone accepted")
	}
	if _, err := NewTopLevel("z.net", nil); err == nil {
		t.Error("nil system accepted")
	}
}

func TestAddSiteValidation(t *testing.T) {
	tl, _ := newTopLevel(t)
	if err := tl.AddSite(NSSite{Host: "ns.other.org", Addr: netip.MustParseAddr("10.0.0.1"),
		Deployment: testP.Deployments[0]}); err == nil {
		t.Error("out-of-zone NS host accepted")
	}
	if err := tl.AddSite(NSSite{Host: "n.ns.cdn.example.net", Addr: netip.MustParseAddr("10.0.0.1")}); err == nil {
		t.Error("site without deployment accepted")
	}
}

func TestRegisterCustomerValidation(t *testing.T) {
	tl, _ := newTopLevel(t)
	if err := tl.RegisterCustomer("www.shop.example", "e1.b.cdn.example.net"); err != nil {
		t.Fatal(err)
	}
	if err := tl.RegisterCustomer("www.bad.example", "www.elsewhere.org"); err == nil {
		t.Error("CNAME target outside content zone accepted")
	}
}

func TestCustomerCNAMEAnswer(t *testing.T) {
	tl, _ := newTopLevel(t)
	_ = tl.RegisterCustomer("WWW.Shop.Example", "e77.b.cdn.example.net")
	resp := tl.ServeDNS(resolverAddr, query("www.shop.example", dnsmsg.TypeA))
	if !resp.Authoritative || len(resp.Answers) != 1 {
		t.Fatalf("resp = %+v", resp)
	}
	c, ok := resp.Answers[0].Data.(*dnsmsg.CNAME)
	if !ok || c.Target != "e77.b.cdn.example.net" {
		t.Errorf("answer = %v", resp.Answers[0])
	}
}

func TestDelegationReferral(t *testing.T) {
	tl, _ := newTopLevel(t)
	siteA, siteB := sitesForTest(t, tl)
	resp := tl.ServeDNS(resolverAddr, query("e5.b.cdn.example.net", dnsmsg.TypeA))
	if resp.Authoritative {
		t.Error("referral should not be authoritative")
	}
	if len(resp.Answers) != 0 || len(resp.Authorities) != 1 || len(resp.Additionals) != 1 {
		t.Fatalf("sections: %d/%d/%d", len(resp.Answers), len(resp.Authorities), len(resp.Additionals))
	}
	ns := resp.Authorities[0].Data.(*dnsmsg.NS)
	glue := resp.Additionals[0].Data.(*dnsmsg.A)
	if ns.Host != siteA.Host && ns.Host != siteB.Host {
		t.Errorf("delegated to unknown site %v", ns.Host)
	}
	if glue.Addr != siteA.Addr && glue.Addr != siteB.Addr {
		t.Errorf("glue = %v", glue.Addr)
	}
	if resp.Authorities[0].Name != "b.cdn.example.net" {
		t.Errorf("delegation owner = %v", resp.Authorities[0].Name)
	}
}

func TestDelegationTracksLDNSLocation(t *testing.T) {
	// Different LDNSes should receive delegations to different (nearby)
	// NS sites: "different clients could receive different name server
	// delegations" (§2.2).
	tl, sys := newTopLevel(t)
	siteA, siteB := sitesForTest(t, tl)
	scorer := sys.Scorer()

	got := map[netip.Addr]int{}
	for _, l := range testW.LDNSes {
		resp := tl.ServeDNS(netip.AddrPortFrom(l.Addr, 53), query("x.b.cdn.example.net", dnsmsg.TypeA))
		if len(resp.Additionals) != 1 {
			t.Fatal("no glue")
		}
		glue := resp.Additionals[0].Data.(*dnsmsg.A).Addr
		got[glue]++
		// The chosen site must be the better-scoring one for this LDNS.
		ep := sys.LDNSEndpoint(l.Addr)
		wantA := scorer.Score(siteA.Deployment, ep) <= scorer.Score(siteB.Deployment, ep)
		if wantA != (glue == siteA.Addr) {
			t.Errorf("LDNS %v delegated to the farther site", l.Addr)
		}
	}
	if len(got) < 2 {
		t.Error("all LDNSes delegated to a single site; expected geographic spread")
	}
}

func TestDelegationSkipsDeadSite(t *testing.T) {
	tl, _ := newTopLevel(t)
	siteA, siteB := sitesForTest(t, tl)
	// Kill site A's deployment: every delegation must go to B.
	for _, s := range siteA.Deployment.Servers {
		s.SetAlive(false)
	}
	defer func() {
		for _, s := range siteA.Deployment.Servers {
			s.SetAlive(true)
		}
	}()
	resp := tl.ServeDNS(resolverAddr, query("y.b.cdn.example.net", dnsmsg.TypeA))
	glue := resp.Additionals[0].Data.(*dnsmsg.A).Addr
	if glue != siteB.Addr {
		t.Errorf("delegated to dead site: %v", glue)
	}
}

func TestNoSitesServfail(t *testing.T) {
	tl, _ := newTopLevel(t)
	resp := tl.ServeDNS(resolverAddr, query("z.b.cdn.example.net", dnsmsg.TypeA))
	if resp.RCode != dnsmsg.RCodeServerFailure {
		t.Errorf("rcode = %v", resp.RCode)
	}
}

func TestApexSOA(t *testing.T) {
	tl, _ := newTopLevel(t)
	resp := tl.ServeDNS(resolverAddr, query("cdn.example.net", dnsmsg.TypeA))
	if len(resp.Authorities) != 1 {
		t.Fatal("no SOA at apex")
	}
	if _, ok := resp.Authorities[0].Data.(*dnsmsg.SOA); !ok {
		t.Error("apex authority is not SOA")
	}
}

func TestOutOfZoneRefusedTopLevel(t *testing.T) {
	tl, _ := newTopLevel(t)
	resp := tl.ServeDNS(resolverAddr, query("www.unrelated.org", dnsmsg.TypeA))
	if resp.RCode != dnsmsg.RCodeRefused {
		t.Errorf("rcode = %v", resp.RCode)
	}
}

// TestFullHierarchyOverUDP exercises the complete Figure 3 flow over real
// sockets: customer CNAME at the top level, NS referral to a low-level
// site, and the final ECS-scoped A answer from the mapping system.
func TestFullHierarchyOverUDP(t *testing.T) {
	tl, sys := newTopLevel(t)

	// Low-level authorities on distinct loopback addresses, same port.
	low, err := New("b.cdn.example.net", sys)
	if err != nil {
		t.Fatal(err)
	}
	lowA, errA := dnsserver.Listen("127.0.0.2:0", low)
	if errA != nil {
		t.Skipf("cannot bind 127.0.0.2 (need 127/8 loopback): %v", errA)
	}
	defer lowA.Close()
	go func() { _ = lowA.Serve() }()
	port := lowA.Addr().(*net.UDPAddr).Port
	lowB, errB := dnsserver.Listen("127.0.0.3:"+strconv.Itoa(port), low)
	if errB != nil {
		t.Skipf("cannot bind 127.0.0.3: %v", errB)
	}
	defer lowB.Close()
	go func() { _ = lowB.Serve() }()

	if err := tl.AddSite(NSSite{Host: "n1.ns.cdn.example.net",
		Addr: netip.MustParseAddr("127.0.0.2"), Deployment: testP.Deployments[0]}); err != nil {
		t.Fatal(err)
	}
	if err := tl.AddSite(NSSite{Host: "n2.ns.cdn.example.net",
		Addr: netip.MustParseAddr("127.0.0.3"), Deployment: testP.Deployments[1]}); err != nil {
		t.Fatal(err)
	}
	if err := tl.RegisterCustomer("www.whitehouse.example", "e2561.b.cdn.example.net"); err != nil {
		t.Fatal(err)
	}

	top, err := dnsserver.Listen("127.0.0.1:0", tl)
	if err != nil {
		t.Fatal(err)
	}
	defer top.Close()
	go func() { _ = top.Serve() }()

	it := &dnsclient.Iterative{
		Client: dnsclient.Client{Timeout: 2 * time.Second},
		Root:   top.Addr().String(),
		Port:   port,
	}
	blk := testW.Blocks[25]
	resp, trace, err := it.Resolve(context.Background(),
		"www.whitehouse.example", dnsmsg.TypeA, blk.Prefix)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Answers) < 2 {
		t.Fatalf("final answers = %d", len(resp.Answers))
	}
	for _, rr := range resp.Answers {
		if _, ok := rr.Data.(*dnsmsg.A); !ok {
			t.Errorf("non-A final answer: %v", rr)
		}
	}
	// The trace shows the full path: CNAME chase + referral.
	if len(trace.CNAMEs) != 1 || trace.CNAMEs[0] != "e2561.b.cdn.example.net" {
		t.Errorf("CNAMEs = %v", trace.CNAMEs)
	}
	if len(trace.Referrals) != 1 {
		t.Errorf("referrals = %v", trace.Referrals)
	}
	if len(trace.Servers) != 3 { // top (alias), top (cdn name), low-level
		t.Errorf("servers = %v", trace.Servers)
	}
	// ECS honoured end-to-end.
	if ecs := resp.ClientSubnet(); ecs == nil || ecs.ScopePrefix == 0 {
		t.Errorf("final answer missing ECS scope: %+v", resp.ClientSubnet())
	}
}
