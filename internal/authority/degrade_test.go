package authority

import (
	"testing"
	"time"

	"eum/internal/dnsmsg"
	"eum/internal/mapmaker"
	"eum/internal/mapping"
)

// TestDegradationLadderWalk kills the control plane (simulated by freezing
// the publish timestamp and advancing the authority's clock) and walks the
// full degradation ladder: fresh answers, then serve-stale with a clamped
// TTL, then fallback-table answers, then SERVFAIL — and back to fresh once
// the MapMaker recovers and publishes again.
func TestDegradationLadderWalk(t *testing.T) {
	a := newAuthority(t, mapping.NSBased)
	mm := mapmaker.New(a.system, mapmaker.Config{Interval: time.Hour})

	// Simulated clock: always "offset" past the last successful publish,
	// so the map's age is exactly offset and a successful publish resets it.
	var offset time.Duration
	a.nowNanos = func() int64 { return a.system.PublishedAtNanos() + int64(offset) }

	a.SetDegradeConfig(DegradeConfig{
		StaleAfter:    100 * time.Millisecond,
		FallbackAfter: 300 * time.Millisecond,
		ServfailAfter: 900 * time.Millisecond,
		StaleTTL:      2 * time.Second,
	})

	ask := func() *dnsmsg.Message {
		t.Helper()
		return a.ServeDNS(resolverAddr, query("img.cdn.example.net", dnsmsg.TypeA))
	}

	// Rung 0: fresh map, full TTL.
	if lvl := a.Degradation(); lvl != DegradeFresh {
		t.Fatalf("fresh: level = %v", lvl)
	}
	resp := ask()
	if resp.RCode != dnsmsg.RCodeSuccess || len(resp.Answers) == 0 {
		t.Fatalf("fresh: rcode=%v answers=%d", resp.RCode, len(resp.Answers))
	}
	if resp.Answers[0].TTL != 20 {
		t.Fatalf("fresh: TTL = %d, want 20", resp.Answers[0].TTL)
	}

	// Rung 1: map missed its cadence — serve stale with the TTL clamped.
	offset = 150 * time.Millisecond
	if lvl := a.Degradation(); lvl != DegradeStale {
		t.Fatalf("stale: level = %v", lvl)
	}
	resp = ask()
	if resp.RCode != dnsmsg.RCodeSuccess || len(resp.Answers) == 0 {
		t.Fatalf("stale: rcode=%v answers=%d", resp.RCode, len(resp.Answers))
	}
	if resp.Answers[0].TTL != 2 {
		t.Fatalf("stale: TTL = %d, want clamp to 2", resp.Answers[0].TTL)
	}
	if a.StaleAnswers.Load() == 0 {
		t.Fatal("stale: StaleAnswers not counted")
	}

	// Rung 2: measurements distrusted — generic fallback tables, cache
	// bypassed.
	offset = 400 * time.Millisecond
	if lvl := a.Degradation(); lvl != DegradeFallback {
		t.Fatalf("fallback: level = %v", lvl)
	}
	hits := a.CacheHits.Load()
	resp = ask()
	if resp.RCode != dnsmsg.RCodeSuccess || len(resp.Answers) == 0 {
		t.Fatalf("fallback: rcode=%v answers=%d", resp.RCode, len(resp.Answers))
	}
	if resp.Answers[0].TTL != 2 {
		t.Fatalf("fallback: TTL = %d, want clamp to 2", resp.Answers[0].TTL)
	}
	if a.FallbackAnswers.Load() == 0 {
		t.Fatal("fallback: FallbackAnswers not counted")
	}
	if a.CacheHits.Load() != hits {
		t.Fatal("fallback: degraded decision served from the answer cache")
	}

	// Rung 3: map beyond salvage — refuse service.
	offset = time.Second
	if lvl := a.Degradation(); lvl != DegradeServfail {
		t.Fatalf("servfail: level = %v", lvl)
	}
	resp = ask()
	if resp.RCode != dnsmsg.RCodeServerFailure {
		t.Fatalf("servfail: rcode = %v", resp.RCode)
	}
	if a.DegradeServfails.Load() == 0 {
		t.Fatal("servfail: DegradeServfails not counted")
	}

	// A crashing MapMaker build must not touch the ladder: the snapshot and
	// its publish time stay put, so the authority keeps refusing.
	mm.SetBuildFault(func() { panic("build crash") })
	before := a.system.Current()
	if sn := mm.Publish(); sn != before {
		t.Fatal("failed build replaced the snapshot")
	}
	if mm.BuildFailures() != 1 {
		t.Fatalf("BuildFailures = %d, want 1", mm.BuildFailures())
	}
	if resp = ask(); resp.RCode != dnsmsg.RCodeServerFailure {
		t.Fatalf("post-crash: rcode = %v, want SERVFAIL", resp.RCode)
	}

	// Recovery: a successful publish resets the map's age and the authority
	// climbs straight back to fresh, full-TTL answers on a new epoch.
	mm.SetBuildFault(nil)
	sn := mm.Publish()
	offset = 0 // the clock now sits just past the fresh publish
	if sn.Epoch() <= before.Epoch() {
		t.Fatalf("recovery epoch = %d, want > %d", sn.Epoch(), before.Epoch())
	}
	if lvl := a.Degradation(); lvl != DegradeFresh {
		t.Fatalf("recovered: level = %v", lvl)
	}
	resp = ask()
	if resp.RCode != dnsmsg.RCodeSuccess || len(resp.Answers) == 0 {
		t.Fatalf("recovered: rcode=%v answers=%d", resp.RCode, len(resp.Answers))
	}
	if resp.Answers[0].TTL != 20 {
		t.Fatalf("recovered: TTL = %d, want 20", resp.Answers[0].TTL)
	}
}

// TestDegradeConfigDefaults: derived thresholds and the disabled zero
// value.
func TestDegradeConfigDefaults(t *testing.T) {
	c := DegradeConfig{StaleAfter: time.Second}.withDefaults()
	if c.FallbackAfter != 4*time.Second || c.ServfailAfter != 16*time.Second {
		t.Fatalf("derived thresholds = %v/%v", c.FallbackAfter, c.ServfailAfter)
	}
	if c.StaleTTL != 5*time.Second {
		t.Fatalf("StaleTTL = %v", c.StaleTTL)
	}
	if z := (DegradeConfig{}).withDefaults(); z != (DegradeConfig{}) {
		t.Fatalf("zero config not disabled: %+v", z)
	}

	a := newAuthority(t, mapping.NSBased)
	if a.Degradation() != DegradeFresh {
		t.Fatal("disarmed watchdog not DegradeFresh")
	}
}

// TestEpochDebugRecord: with epoch debugging on, mapping answers carry a
// TXT additional naming the snapshot epoch the decision came from.
func TestEpochDebugRecord(t *testing.T) {
	a := newAuthority(t, mapping.NSBased)
	a.SetEpochDebug(true)
	resp := a.ServeDNS(resolverAddr, query("img.cdn.example.net", dnsmsg.TypeA))
	if resp.RCode != dnsmsg.RCodeSuccess {
		t.Fatalf("rcode = %v", resp.RCode)
	}
	var found bool
	for _, rr := range resp.Additionals {
		txt, ok := rr.Data.(*dnsmsg.TXT)
		if ok && len(txt.Strings) == 2 && txt.Strings[0] == "epoch" {
			found = true
			if want := a.system.Current().Epoch(); txt.Strings[1] != itoa(want) {
				t.Fatalf("epoch TXT = %q, want %d", txt.Strings[1], want)
			}
		}
	}
	if !found {
		t.Fatal("no epoch TXT additional in debug mode")
	}
}

func itoa(v uint64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
