package authority

import (
	"fmt"
	"net/netip"
	"sync"
	"testing"

	"eum/internal/dnsmsg"
	"eum/internal/mapping"
)

// TestAuthorityConcurrentQueries hammers one Authority from many
// goroutines with a mix of ECS and non-ECS queries and checks that every
// response is well-formed and the metrics add up exactly. Run with -race
// this doubles as the data-race check for the whole serving stack
// (authority cache, mapping system, scorer caches, load balancer rings,
// server load atomics).
func TestAuthorityConcurrentQueries(t *testing.T) {
	a := newAuthority(t, mapping.EndUser)

	const (
		goroutines = 12
		perG       = 400
	)
	domains := []string{"img.cdn.example.net", "js.cdn.example.net", "video.cdn.example.net"}

	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Per-goroutine resolver address, so NS-keyed decisions from
			// different goroutines exercise different cache entries.
			ldns := netip.AddrPortFrom(netip.AddrFrom4([4]byte{198, 51, 100, byte(g + 1)}), 5353)
			for i := 0; i < perG; i++ {
				q := query(domains[(g+i)%len(domains)], dnsmsg.TypeA)
				withECS := (g+i)%2 == 0
				if withECS {
					blk := testW.Blocks[(g*perG+i*7)%len(testW.Blocks)]
					if err := q.SetClientSubnet(blk.Prefix.Addr(), uint8(blk.Prefix.Bits())); err != nil {
						errs <- err
						return
					}
				}
				resp := a.ServeDNS(ldns, q)
				if resp.RCode != dnsmsg.RCodeSuccess {
					errs <- fmt.Errorf("goroutine %d query %d: rcode %v", g, i, resp.RCode)
					return
				}
				if len(resp.Answers) == 0 {
					errs <- fmt.Errorf("goroutine %d query %d: empty answer", g, i)
					return
				}
				for _, rr := range resp.Answers {
					if _, ok := rr.Data.(*dnsmsg.A); !ok {
						errs <- fmt.Errorf("goroutine %d query %d: non-A answer %T", g, i, rr.Data)
						return
					}
				}
				if withECS && resp.ClientSubnet() == nil {
					errs <- fmt.Errorf("goroutine %d query %d: ECS not echoed", g, i)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	total := uint64(goroutines * perG)
	if got := a.TotalQueries.Load(); got != total {
		t.Errorf("TotalQueries = %d, want %d", got, total)
	}
	if got := a.ECSQueries.Load(); got != total/2 {
		t.Errorf("ECSQueries = %d, want %d", got, total/2)
	}
	if hits, misses := a.CacheHits.Load(), a.CacheMisses.Load(); hits+misses != total {
		t.Errorf("CacheHits+CacheMisses = %d+%d = %d, want %d", hits, misses, hits+misses, total)
	} else if hits == 0 {
		t.Error("expected some cache hits under repeated concurrent load")
	}
}

// TestAuthorityConcurrentInvalidation interleaves queries with policy
// flips and snapshot republications from other goroutines. Responses may
// reflect either policy mid-flip; the test asserts they stay well-formed
// and, under -race, that publishing does not race the serving path.
func TestAuthorityConcurrentInvalidation(t *testing.T) {
	a := newAuthority(t, mapping.EndUser)

	const (
		goroutines = 8
		perG       = 200
		flips      = 40
	)
	var wg sync.WaitGroup
	errs := make(chan error, goroutines+2)

	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				q := query("img.cdn.example.net", dnsmsg.TypeA)
				if (g+i)%2 == 0 {
					blk := testW.Blocks[(g*perG+i)%len(testW.Blocks)]
					if err := q.SetClientSubnet(blk.Prefix.Addr(), uint8(blk.Prefix.Bits())); err != nil {
						errs <- err
						return
					}
				}
				resp := a.ServeDNS(resolverAddr, q)
				if resp.RCode != dnsmsg.RCodeSuccess || len(resp.Answers) == 0 {
					errs <- fmt.Errorf("goroutine %d query %d: bad response rcode=%v answers=%d",
						g, i, resp.RCode, len(resp.Answers))
					return
				}
			}
		}(g)
	}
	wg.Add(2)
	go func() {
		defer wg.Done()
		pols := [...]mapping.Policy{mapping.NSBased, mapping.EndUser, mapping.ClientAwareNS, mapping.EndUser}
		for i := 0; i < flips; i++ {
			a.system.SetPolicy(pols[i%len(pols)])
		}
		a.system.SetPolicy(mapping.EndUser)
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < flips; i++ {
			a.system.Rebuild()
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	total := uint64(goroutines * perG)
	if got := a.TotalQueries.Load(); got != total {
		t.Errorf("TotalQueries = %d, want %d", got, total)
	}
	if hits, misses := a.CacheHits.Load(), a.CacheMisses.Load(); hits+misses != total {
		t.Errorf("CacheHits+CacheMisses = %d, want %d", hits+misses, total)
	}
}

// TestAuthorityEpochHammer swaps snapshots as fast as the control plane
// can build them while 12 goroutines resolve mapping requests, and asserts
// no stale-epoch answer is ever served: every decision's epoch lies
// between the epoch published before the call and the one published after
// it. Because decide() loads the snapshot exactly once and keys both the
// cache lookup and the computation by it, an answer cached under an
// orphaned epoch can never come back — this test is the regression guard
// for that invariant under continuous publication.
func TestAuthorityEpochHammer(t *testing.T) {
	a := newAuthority(t, mapping.EndUser)

	stop := make(chan struct{})
	var swapper sync.WaitGroup
	swapper.Add(1)
	go func() {
		defer swapper.Done()
		for {
			select {
			case <-stop:
				return
			default:
				a.system.Rebuild()
			}
		}
	}()

	const (
		goroutines = 12
		perG       = 300
	)
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				req := mapping.Request{
					Domain: "img.cdn.example.net",
					LDNS:   netip.AddrFrom4([4]byte{198, 51, 100, byte(g + 1)}),
				}
				if (g+i)%2 == 0 {
					req.ClientSubnet = testW.Blocks[(g*perG+i*3)%len(testW.Blocks)].Prefix
				}
				before := a.system.Current().Epoch()
				decision, _, err := a.decide(0, req)
				after := a.system.Current().Epoch()
				if err != nil {
					errs <- fmt.Errorf("goroutine %d query %d: %v", g, i, err)
					return
				}
				if decision.Epoch < before || decision.Epoch > after {
					errs <- fmt.Errorf("goroutine %d query %d: stale epoch %d served outside window [%d, %d]",
						g, i, decision.Epoch, before, after)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	swapper.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if hits, misses := a.CacheHits.Load(), a.CacheMisses.Load(); hits+misses != goroutines*perG {
		t.Errorf("CacheHits+CacheMisses = %d, want %d", hits+misses, goroutines*perG)
	}
}
