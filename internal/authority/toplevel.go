package authority

import (
	"fmt"
	"net/netip"
	"sort"
	"sync"

	"eum/internal/cdn"
	"eum/internal/dnsmsg"
	"eum/internal/mapping"
)

// NSSite is one low-level name-server deployment the top level can
// delegate to. In the paper's architecture, low-level name servers sit
// inside CDN clusters close to LDNSes; the delegation choice implements
// the global load balancer's cluster selection (§2.2).
type NSSite struct {
	// Host is the NS host name, e.g. "n1-ord.ns.cdn.example.net".
	Host dnsmsg.Name
	// Addr is the glue address of the low-level server.
	Addr netip.Addr
	// Deployment locates the site for scoring.
	Deployment *cdn.Deployment
}

// TopLevel implements the CDN's top-level authoritative name servers
// (Figure 3): it hosts customer CNAME records onto CDN domains and answers
// queries for the delegated content subzone with an NS referral to the
// low-level name-server site nearest the querying LDNS. Different LDNSes
// receive different delegations — that is the global load balancer acting
// at the DNS layer.
type TopLevel struct {
	zone     dnsmsg.Name // e.g. "cdn.example.net"
	subzone  dnsmsg.Name // delegated content zone, e.g. "b.cdn.example.net"
	system   *mapping.System
	delegTTL uint32

	mu        sync.RWMutex
	sites     []NSSite
	customers map[dnsmsg.Name]dnsmsg.Name // alias -> CDN domain
}

// NewTopLevel creates a top-level authority for zone, delegating
// "b.<zone>" to registered low-level sites.
func NewTopLevel(zone dnsmsg.Name, system *mapping.System) (*TopLevel, error) {
	if zone.Canonical() == "" {
		return nil, fmt.Errorf("authority: empty zone")
	}
	if system == nil {
		return nil, fmt.Errorf("authority: nil mapping system")
	}
	z := zone.Canonical()
	return &TopLevel{
		zone:      z,
		subzone:   dnsmsg.Name("b." + string(z)),
		system:    system,
		delegTTL:  1800, // delegations are stable; content answers are not
		customers: map[dnsmsg.Name]dnsmsg.Name{},
	}, nil
}

// Zone returns the top-level zone.
func (t *TopLevel) Zone() dnsmsg.Name { return t.zone }

// Subzone returns the delegated content zone.
func (t *TopLevel) Subzone() dnsmsg.Name { return t.subzone }

// AddSite registers a low-level name-server site.
func (t *TopLevel) AddSite(s NSSite) error {
	if !s.Host.IsSubdomainOf(t.zone) {
		return fmt.Errorf("authority: NS host %q outside zone %q", s.Host, t.zone)
	}
	if s.Deployment == nil {
		return fmt.Errorf("authority: NS site %q has no deployment", s.Host)
	}
	t.mu.Lock()
	t.sites = append(t.sites, s)
	t.mu.Unlock()
	return nil
}

// RegisterCustomer CNAMEs a customer domain (any name, typically outside
// the CDN zone — "a content provider hosted on Akamai can CNAME their
// domain to an Akamai domain") onto a content domain under the subzone.
func (t *TopLevel) RegisterCustomer(alias, target dnsmsg.Name) error {
	if !target.Canonical().IsSubdomainOf(t.subzone) {
		return fmt.Errorf("authority: CNAME target %q outside content zone %q", target, t.subzone)
	}
	t.mu.Lock()
	t.customers[alias.Canonical()] = target.Canonical()
	t.mu.Unlock()
	return nil
}

// ServeDNS implements dnsserver.Handler.
func (t *TopLevel) ServeDNS(remote netip.AddrPort, query *dnsmsg.Message) *dnsmsg.Message {
	resp := query.Reply()
	if query.OpCode != dnsmsg.OpCodeQuery || len(query.Questions) != 1 {
		resp.RCode = dnsmsg.RCodeNotImplemented
		return resp
	}
	q := query.Questions[0]
	name := q.Name.Canonical()

	// Customer CNAME hosting.
	t.mu.RLock()
	target, isCustomer := t.customers[name]
	t.mu.RUnlock()
	if isCustomer {
		resp.Authoritative = true
		resp.Answers = append(resp.Answers, dnsmsg.RR{
			Name: name, Class: dnsmsg.ClassINET, TTL: 300,
			Data: &dnsmsg.CNAME{Target: target},
		})
		return resp
	}

	if !name.IsSubdomainOf(t.zone) {
		resp.RCode = dnsmsg.RCodeRefused
		return resp
	}

	// Names under the content subzone: refer to the low-level site the
	// global load balancer picks for this LDNS.
	if name.IsSubdomainOf(t.subzone) {
		site, ok := t.pickSite(remote.Addr().Unmap())
		if !ok {
			resp.RCode = dnsmsg.RCodeServerFailure
			return resp
		}
		// A referral: not authoritative, NS in the authority section,
		// glue A in the additional section.
		resp.Authoritative = false
		resp.Authorities = append(resp.Authorities, dnsmsg.RR{
			Name: t.subzone, Class: dnsmsg.ClassINET, TTL: t.delegTTL,
			Data: &dnsmsg.NS{Host: site.Host},
		})
		resp.Additionals = append(resp.Additionals, dnsmsg.RR{
			Name: site.Host, Class: dnsmsg.ClassINET, TTL: t.delegTTL,
			Data: &dnsmsg.A{Addr: site.Addr},
		})
		return resp
	}

	// Apex and other in-zone names: we exist but have nothing to say.
	resp.Authoritative = true
	resp.Authorities = append(resp.Authorities, dnsmsg.RR{
		Name: t.zone, Class: dnsmsg.ClassINET, TTL: 60,
		Data: &dnsmsg.SOA{
			MName: dnsmsg.Name("ns0." + string(t.zone)), RName: "hostmaster." + t.zone,
			Serial: 2014032801, Refresh: 3600, Retry: 600, Expire: 86400, Minimum: 30,
		},
	})
	return resp
}

// pickSite chooses the registered low-level site whose deployment scores
// best for the querying LDNS.
func (t *TopLevel) pickSite(ldns netip.Addr) (NSSite, bool) {
	t.mu.RLock()
	sites := append([]NSSite{}, t.sites...)
	t.mu.RUnlock()
	if len(sites) == 0 {
		return NSSite{}, false
	}
	ep := t.system.LDNSEndpoint(ldns)
	scorer := t.system.Scorer()
	sort.Slice(sites, func(i, j int) bool {
		return scorer.Score(sites[i].Deployment, ep) < scorer.Score(sites[j].Deployment, ep)
	})
	for _, s := range sites {
		if s.Deployment.Alive() {
			return s, true
		}
	}
	return NSSite{}, false
}
