package authority

import (
	"net/netip"
	"sync"

	"eum/internal/mapping"
)

// The per-scope answer cache memoises mapping decisions on the serving
// path. §5 of the paper shows why it matters: EU mapping fragments the
// answer space per client scope (Fig 23: up to 10x query volume for
// public-resolver traffic, because a resolver can no longer reuse one
// answer for all its clients), so the authoritative servers see the same
// (name, scope) pair again and again within one TTL window. Filing the
// decision per scope — exactly how an ECS-aware resolver files answers
// per scope prefix (RFC 7871 §7.3.1) — turns that repeat traffic into a
// lock-light lookup instead of a full mapping computation.
//
// Correctness hinges on two properties:
//
//   - Scope: an entry is keyed by the mapping unit of the client subnet
//     (EU policy) or by the resolver address (NS/CANS policies), so a
//     cached EU answer is only ever reused for queries in the same
//     mapping unit — the exact granularity at which the mapping system
//     itself considers clients interchangeable.
//   - Freshness: entries carry the snapshot epoch the decision was made
//     under and an expiry one TTL after. Publishing a new snapshot (a
//     policy flip, a health event, the MapMaker's cadence) orphans every
//     entry from older epochs; expiry bounds staleness to the same window
//     a downstream resolver would cache the answer for anyway.

// answerShardCount shards the cache so concurrent queries rarely contend
// on one lock. Must be a power of two.
const answerShardCount = 16

// maxEntriesPerShard bounds memory: at the bound, inserting first sweeps
// expired entries, then falls back to evicting arbitrary ones.
const maxEntriesPerShard = 8192

// answerKey identifies one cacheable decision.
type answerKey struct {
	// domain is the queried content domain (canonical form).
	domain string
	// scope is the mapping unit (EU policy with a client subnet) or the
	// resolver's full-length prefix (all other decisions).
	scope netip.Prefix
	// clamp is the answer's ECS scope after RFC 7871 §7.2.1 clamping
	// (min of unit bits and the query's source prefix length), zero on
	// the resolver-keyed path. Queries revealing fewer bits than the
	// mapping unit must not share the wider answer's scope field.
	clamp uint8
}

// answerEntry is one cached decision.
type answerEntry struct {
	decision *mapping.Response
	epoch    uint64 // snapshot epoch the decision was made under
	expires  int64  // unix nanoseconds
}

type answerShard struct {
	mu      sync.RWMutex
	entries map[answerKey]answerEntry
}

// answerCache is a sharded, TTL- and epoch-checked decision cache.
type answerCache struct {
	shards [answerShardCount]answerShard
}

func newAnswerCache() *answerCache {
	c := &answerCache{}
	for i := range c.shards {
		c.shards[i].entries = make(map[answerKey]answerEntry)
	}
	return c
}

func (c *answerCache) shardFor(key answerKey) *answerShard {
	h := uint64(fnvOffset64)
	for i := 0; i < len(key.domain); i++ {
		h ^= uint64(key.domain[i])
		h *= fnvPrime64
	}
	b := key.scope.Addr().As16()
	for _, v := range b {
		h ^= uint64(v)
		h *= fnvPrime64
	}
	h ^= uint64(uint8(key.scope.Bits())) ^ uint64(key.clamp)<<8
	h *= fnvPrime64
	return &c.shards[h&(answerShardCount-1)]
}

// FNV-1a constants, mirrored from the mapping package's hashing.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// get returns the cached decision for key if it was made under the given
// snapshot epoch and is unexpired, else nil.
func (c *answerCache) get(key answerKey, epoch uint64, now int64) *mapping.Response {
	sh := c.shardFor(key)
	sh.mu.RLock()
	e, ok := sh.entries[key]
	sh.mu.RUnlock()
	if !ok || e.epoch != epoch || now >= e.expires {
		return nil
	}
	return e.decision
}

// put files a decision under key. Concurrent puts for the same key are
// idempotent enough: both decisions are valid for the window, last write
// wins.
func (c *answerCache) put(key answerKey, epoch uint64, now, expires int64, d *mapping.Response) {
	sh := c.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if len(sh.entries) >= maxEntriesPerShard {
		sh.evictLocked(now)
	}
	sh.entries[key] = answerEntry{decision: d, epoch: epoch, expires: expires}
}

// evictLocked reclaims space: drop everything expired, then, if the shard
// is still full, arbitrary entries until a quarter of the shard is free.
func (sh *answerShard) evictLocked(now int64) {
	for k, e := range sh.entries {
		if now >= e.expires {
			delete(sh.entries, k)
		}
	}
	target := maxEntriesPerShard - maxEntriesPerShard/4
	for k := range sh.entries {
		if len(sh.entries) <= target {
			break
		}
		delete(sh.entries, k)
	}
}
