package measure

import (
	"testing"
	"time"

	"eum/internal/cdn"
	"eum/internal/mapping"
	"eum/internal/netmodel"
	"eum/internal/world"
)

var (
	testW   = world.MustGenerate(world.Config{Seed: 71, NumBlocks: 1500})
	testNet = netmodel.NewDefault()
	testP   = cdn.MustGenerateUniverse(testW, cdn.Config{Seed: 71, NumDeployments: 60})
)

func someTargets(n int) []netmodel.Endpoint {
	var out []netmodel.Endpoint
	for _, b := range testW.Blocks[:n] {
		out = append(out, b.Endpoint())
	}
	return out
}

var t0 = time.Date(2014, 3, 1, 0, 0, 0, 0, time.UTC)

func TestSweepStoresAllPairs(t *testing.T) {
	db := NewDB(testNet)
	targets := someTargets(20)
	n := db.Sweep(t0, testP, targets)
	want := len(testP.Deployments) * len(targets)
	if n != want || db.Size() != want {
		t.Fatalf("sweep stored %d/%d, want %d", n, db.Size(), want)
	}
	if db.Sweeps() != 1 {
		t.Error("sweep count wrong")
	}
	o, ok := db.Lookup(testP.Deployments[0], targets[0])
	if !ok {
		t.Fatal("lookup miss after sweep")
	}
	if o.PingMs != testNet.PingMsAt(testP.Deployments[0].Endpoint(), targets[0], EpochOf(t0)) {
		t.Error("stored ping differs from probe")
	}
	if !o.At.Equal(t0) {
		t.Error("timestamp wrong")
	}
}

func TestPingMsServesStoredAndFallsBack(t *testing.T) {
	db := NewDB(testNet)
	targets := someTargets(5)
	db.Sweep(t0, testP, targets)
	dep := testP.Deployments[3].Endpoint()
	if got, want := db.PingMs(dep, targets[2]), testNet.PingMsAt(dep, targets[2], EpochOf(t0)); got != want {
		t.Errorf("stored PingMs = %v, want %v", got, want)
	}
	// Unmeasured pair: falls back to a live probe.
	other := testW.Blocks[len(testW.Blocks)-1].Endpoint()
	if got, want := db.PingMs(dep, other), testNet.PingMs(dep, other); got != want {
		t.Errorf("fallback PingMs = %v, want %v", got, want)
	}
	if db.Size() != len(testP.Deployments)*5 {
		t.Error("fallback probe polluted the DB")
	}
}

func TestStaleness(t *testing.T) {
	db := NewDB(testNet)
	targets := someTargets(3)
	db.Sweep(t0, testP, targets)
	if got := db.StaleBefore(t0); got != 0 {
		t.Errorf("fresh observations reported stale: %d", got)
	}
	cutoff := t0.Add(time.Minute)
	if got := db.StaleBefore(cutoff); got != db.Size() {
		t.Errorf("stale count = %d, want all %d", got, db.Size())
	}
	// Re-sweep refreshes.
	db.Sweep(cutoff.Add(time.Second), testP, targets)
	if got := db.StaleBefore(cutoff); got != 0 {
		t.Errorf("stale after re-sweep: %d", got)
	}
}

func TestSweeperCadence(t *testing.T) {
	db := NewDB(testNet)
	sw, err := NewSweeper(db, testP, someTargets(2), 2*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if !sw.Tick(t0) {
		t.Fatal("first tick should sweep")
	}
	if sw.Tick(t0.Add(time.Minute)) {
		t.Error("tick before interval swept")
	}
	if !sw.Tick(t0.Add(2 * time.Minute)) {
		t.Error("tick at interval did not sweep")
	}
	if db.Sweeps() != 2 {
		t.Errorf("sweeps = %d", db.Sweeps())
	}
}

func TestSweeperValidation(t *testing.T) {
	if _, err := NewSweeper(nil, testP, nil, 0); err == nil {
		t.Error("nil db accepted")
	}
	if _, err := NewSweeper(NewDB(testNet), nil, nil, 0); err == nil {
		t.Error("nil platform accepted")
	}
}

// TestScoringFromMeasurementDB verifies the production information flow:
// a mapping system scoring from the measurement DB makes the same
// decisions as one probing the network directly, because the sweep stored
// the same observations.
func TestScoringFromMeasurementDB(t *testing.T) {
	db := NewDB(testNet)
	// Sweep exactly the blocks we will evaluate, with clustering
	// disabled, so the DB holds congestion-aware observations for every
	// scored pair.
	eval := testW.Blocks[:300]
	var targets []netmodel.Endpoint
	for _, b := range eval {
		targets = append(targets, b.Endpoint())
	}
	db.Sweep(t0, testP, targets)

	// The DB optimises the latency clients actually see in that epoch,
	// so on realized (congestion-inclusive) latency its choices must be
	// at least as good as congestion-blind direct probing.
	scorerDirect := mapping.NewScorer(testW, testP, testNet, 0)
	scorerDB := mapping.NewScorer(testW, testP, db, 0)
	epoch := EpochOf(t0)
	var realizedDirect, realizedDB float64
	for _, b := range eval {
		d1, _ := scorerDirect.Best(b.Endpoint())
		d2, _ := scorerDB.Best(b.Endpoint())
		if d1 == nil || d2 == nil {
			t.Fatal("no best deployment")
		}
		realizedDirect += testNet.PingMsAt(d1.Endpoint(), b.Endpoint(), epoch)
		realizedDB += testNet.PingMsAt(d2.Endpoint(), b.Endpoint(), epoch)
	}
	if realizedDB > realizedDirect {
		t.Errorf("DB-driven decisions realized %.1f ms mean vs %.1f for direct — measurements made things worse",
			realizedDB/float64(len(eval)), realizedDirect/float64(len(eval)))
	}
}
