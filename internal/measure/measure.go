// Package measure implements the network-measurement component of the
// mapping system (§2.2 component 1): periodic ping sweeps from every
// candidate deployment to the ping-target set, collected into a
// measurement database the scoring layer reads.
//
// In production this component ingests BGP feeds, geolocation, DNS logs,
// liveness and path measurements; here the path-probing part is modelled:
// a sweep queries the network model once per (deployment, target) pair and
// stores the observation with its timestamp, so scoring decisions are
// based on measurements of bounded staleness rather than on direct calls
// into the model — the same information flow as the real system.
package measure

import (
	"fmt"
	"sync"
	"time"

	"eum/internal/cdn"
	"eum/internal/netmodel"
)

// Observation is one measured path sample.
type Observation struct {
	PingMs float64
	At     time.Time
}

// DB is a measurement database: the latest observation per
// (deployment, target) pair. It is safe for concurrent use and implements
// the Prober shape the scoring layer needs.
type DB struct {
	net *netmodel.Model

	mu  sync.RWMutex
	obs map[pairKey]Observation
	// sweeps counts completed sweeps.
	sweeps int
}

type pairKey struct {
	deployment uint64
	target     uint64
}

// NewDB creates an empty measurement database backed by the given network
// model (the "Internet" the probes traverse).
func NewDB(net *netmodel.Model) *DB {
	return &DB{net: net, obs: map[pairKey]Observation{}}
}

// EpochOf quantises a time into the network model's congestion epochs
// (daily, matching the RTT model's day-granularity congestion).
func EpochOf(now time.Time) uint64 {
	return uint64(now.Unix() / 86400)
}

// Sweep probes every (deployment, target) pair once at simulated time now,
// replacing previous observations. Probes observe the congestion of now's
// epoch, so observations age as the network's state moves on. It returns
// the number of probes sent.
func (db *DB) Sweep(now time.Time, p *cdn.Platform, targets []netmodel.Endpoint) int {
	type result struct {
		k pairKey
		o Observation
	}
	epoch := EpochOf(now)
	// Probe outside the lock; sweeps can be large.
	results := make([]result, 0, len(p.Deployments)*len(targets))
	for _, d := range p.Deployments {
		de := d.Endpoint()
		for _, t := range targets {
			results = append(results, result{
				k: pairKey{d.ID, t.ID},
				o: Observation{PingMs: db.net.PingMsAt(de, t, epoch), At: now},
			})
		}
	}
	db.mu.Lock()
	for _, r := range results {
		db.obs[r.k] = r.o
	}
	db.sweeps++
	db.mu.Unlock()
	return len(results)
}

// Lookup returns the stored observation for the pair.
func (db *DB) Lookup(deployment *cdn.Deployment, target netmodel.Endpoint) (Observation, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	o, ok := db.obs[pairKey{deployment.ID, target.ID}]
	return o, ok
}

// PingMs returns the measured ping between a deployment endpoint and a
// target, satisfying the scoring layer's prober shape. Unmeasured pairs
// fall back to a live probe (and are not cached: the sweep owns the DB's
// contents).
func (db *DB) PingMs(a, b netmodel.Endpoint) float64 {
	db.mu.RLock()
	if o, ok := db.obs[pairKey{a.ID, b.ID}]; ok {
		db.mu.RUnlock()
		return o.PingMs
	}
	db.mu.RUnlock()
	return db.net.PingMs(a, b)
}

// Size returns the number of stored observations.
func (db *DB) Size() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return len(db.obs)
}

// Sweeps returns the number of completed sweeps.
func (db *DB) Sweeps() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.sweeps
}

// StaleBefore reports how many observations are older than the cutoff —
// the freshness monitoring a real measurement pipeline alarms on.
func (db *DB) StaleBefore(cutoff time.Time) int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	n := 0
	for _, o := range db.obs {
		if o.At.Before(cutoff) {
			n++
		}
	}
	return n
}

// Sweeper runs sweeps on a fixed simulated cadence.
type Sweeper struct {
	DB       *DB
	Platform *cdn.Platform
	Targets  []netmodel.Endpoint
	// Interval is the sweep cadence.
	Interval time.Duration

	last time.Time
}

// NewSweeper builds a sweeper; interval defaults to 2 minutes (the
// real-time end of the paper's "periodic"/"real-time" measurement split).
func NewSweeper(db *DB, p *cdn.Platform, targets []netmodel.Endpoint, interval time.Duration) (*Sweeper, error) {
	if db == nil || p == nil {
		return nil, fmt.Errorf("measure: nil db or platform")
	}
	if interval <= 0 {
		interval = 2 * time.Minute
	}
	return &Sweeper{DB: db, Platform: p, Targets: targets, Interval: interval}, nil
}

// Tick runs a sweep if the interval has elapsed since the last one,
// reporting whether it swept. Simulations drive it with their own clock.
func (s *Sweeper) Tick(now time.Time) bool {
	if !s.last.IsZero() && now.Sub(s.last) < s.Interval {
		return false
	}
	s.DB.Sweep(now, s.Platform, s.Targets)
	s.last = now
	return true
}
