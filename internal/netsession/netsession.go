// Package netsession reproduces the paper's client-LDNS measurement
// pipeline (§3.1) as running code. NetSession — the download manager
// installed on client devices — discovered each client's LDNS by resolving
// a special name (whoami.akamai.net) whose authoritative answer is the
// address the query arrived from; the client-LDNS association was then
// aggregated per /24 client block with relative frequencies.
//
// Here, simulated clients resolve the whoami name through their actual
// resolver objects against the actual authority handler, so the pipeline
// exercises the same mechanism end to end: client -> caching LDNS ->
// authoritative whoami -> association record -> per-block aggregation.
package netsession

import (
	"fmt"
	"net/netip"
	"sort"
	"time"

	"eum/internal/resolver"
	"eum/internal/world"
)

// Association is one collected client-LDNS pairing, aggregated per client
// block: the set of resolver addresses the block's clients were observed
// behind, with relative frequencies.
type Association struct {
	Block *world.ClientBlock
	// Resolvers maps resolver address to relative frequency (sums to 1).
	Resolvers map[netip.Addr]float64
}

// whoamiUpstream answers the whoami name authoritatively: the answer is
// the address of the resolver that asked — exactly the trick the real
// measurement uses. It answers with TTL 0 so resolvers cannot cache it
// (a cached whoami would return stale resolver identities).
type whoamiUpstream struct {
	name string
}

// Resolve implements resolver.Upstream.
func (u *whoamiUpstream) Resolve(domain string, ldns netip.Addr, _ netip.Prefix) (resolver.Answer, error) {
	if domain != u.name {
		return resolver.Answer{}, fmt.Errorf("netsession: unexpected domain %q", domain)
	}
	return resolver.Answer{Servers: []netip.Addr{ldns}, TTL: 0}, nil
}

// Collector runs the measurement across a world's clients.
type Collector struct {
	// WhoamiName is the special diagnostic name (default
	// "whoami.cdn.example.net").
	WhoamiName string
	// SamplesPerBlock is how many clients per block perform the lookup.
	SamplesPerBlock int
}

// Collect runs the whoami measurement for every block in the world,
// through per-LDNS caching resolvers, and returns one association per
// block. The measurement is exact here because each block uses a single
// resolver; the pipeline still validates the mechanism (TTL-0 answers,
// per-resolver identity, aggregation).
func (c *Collector) Collect(w *world.World) ([]Association, error) {
	name := c.WhoamiName
	if name == "" {
		name = "whoami.cdn.example.net"
	}
	samples := c.SamplesPerBlock
	if samples <= 0 {
		samples = 3
	}
	up := &whoamiUpstream{name: name}

	// One resolver object per LDNS, as in the real world.
	resolvers := make(map[uint64]*resolver.Resolver, len(w.LDNSes))
	for _, l := range w.LDNSes {
		r, err := resolver.New(resolver.Config{Addr: l.Addr}, up)
		if err != nil {
			return nil, err
		}
		resolvers[l.ID] = r
	}

	now := time.Date(2014, 3, 24, 0, 0, 0, 0, time.UTC) // collection start (§3.1)
	out := make([]Association, 0, len(w.Blocks))
	for _, b := range w.Blocks {
		counts := map[netip.Addr]int{}
		for i := 0; i < samples; i++ {
			client := clientInBlock(b, i)
			ans, err := resolvers[b.LDNS.ID].Query(now, name, client)
			if err != nil {
				return nil, fmt.Errorf("netsession: block %v: %w", b.Prefix, err)
			}
			if len(ans.Servers) != 1 {
				return nil, fmt.Errorf("netsession: block %v: %d answers", b.Prefix, len(ans.Servers))
			}
			counts[ans.Servers[0]]++
			now = now.Add(time.Second)
		}
		assoc := Association{Block: b, Resolvers: map[netip.Addr]float64{}}
		for addr, n := range counts {
			assoc.Resolvers[addr] = float64(n) / float64(samples)
		}
		out = append(out, assoc)
	}
	return out, nil
}

// clientInBlock derives the i-th sampled client address in a block.
func clientInBlock(b *world.ClientBlock, i int) netip.Addr {
	if b.Prefix.Addr().Is4() {
		a := b.Prefix.Addr().As4()
		a[3] = byte(10 + i)
		return netip.AddrFrom4(a)
	}
	a := b.Prefix.Addr().As16()
	a[15] = byte(10 + i)
	return netip.AddrFrom16(a)
}

// Verify cross-checks collected associations against the world's ground
// truth, returning the fraction of blocks whose dominant measured resolver
// matches the true one — the measurement-fidelity number a real pipeline
// would monitor.
func Verify(w *world.World, assocs []Association) float64 {
	if len(assocs) == 0 {
		return 0
	}
	correct := 0
	for _, a := range assocs {
		if dominant(a.Resolvers) == a.Block.LDNS.Addr {
			correct++
		}
	}
	return float64(correct) / float64(len(assocs))
}

func dominant(m map[netip.Addr]float64) netip.Addr {
	type kv struct {
		addr netip.Addr
		f    float64
	}
	var all []kv
	for a, f := range m {
		all = append(all, kv{a, f})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].f != all[j].f {
			return all[i].f > all[j].f
		}
		return all[i].addr.Less(all[j].addr)
	})
	if len(all) == 0 {
		return netip.Addr{}
	}
	return all[0].addr
}
