package netsession

import (
	"net/netip"
	"testing"
	"time"

	"eum/internal/geo"
	"eum/internal/resolver"
	"eum/internal/stats"
	"eum/internal/world"
)

var testW = world.MustGenerate(world.Config{Seed: 91, NumBlocks: 1200})

func TestCollectAllBlocks(t *testing.T) {
	c := &Collector{SamplesPerBlock: 2}
	assocs, err := c.Collect(testW)
	if err != nil {
		t.Fatal(err)
	}
	if len(assocs) != len(testW.Blocks) {
		t.Fatalf("associations = %d, want %d", len(assocs), len(testW.Blocks))
	}
	for _, a := range assocs[:50] {
		var sum float64
		for _, f := range a.Resolvers {
			sum += f
		}
		if sum < 0.999 || sum > 1.001 {
			t.Fatalf("frequencies sum to %v", sum)
		}
	}
}

func TestCollectMatchesGroundTruth(t *testing.T) {
	c := &Collector{}
	assocs, err := c.Collect(testW)
	if err != nil {
		t.Fatal(err)
	}
	// Each block uses exactly one resolver in this world, so the whoami
	// measurement must identify it perfectly.
	if fidelity := Verify(testW, assocs); fidelity != 1 {
		t.Errorf("measurement fidelity = %.3f, want 1.0", fidelity)
	}
}

func TestWhoamiNotCacheable(t *testing.T) {
	// Two different resolvers asking the same whoami name must each see
	// their own address — the TTL-0 answer prevents cross-contamination.
	up := &whoamiUpstream{name: "whoami.x.net"}
	r1, err := resolver.New(resolver.Config{Addr: netip.MustParseAddr("198.51.100.1")}, up)
	if err != nil {
		t.Fatal(err)
	}
	now := time.Now()
	a1, err := r1.Query(now, "whoami.x.net", netip.MustParseAddr("10.0.0.1"))
	if err != nil {
		t.Fatal(err)
	}
	if a1.Servers[0] != netip.MustParseAddr("198.51.100.1") {
		t.Errorf("whoami answer = %v", a1.Servers[0])
	}
	// Same resolver asking again must go upstream again (no caching).
	a2, err := r1.Query(now.Add(time.Millisecond), "whoami.x.net", netip.MustParseAddr("10.0.0.2"))
	if err != nil {
		t.Fatal(err)
	}
	if a2.FromCache {
		t.Error("whoami answer was cached despite TTL 0")
	}
}

func TestWhoamiWrongDomain(t *testing.T) {
	up := &whoamiUpstream{name: "whoami.x.net"}
	if _, err := up.Resolve("other.net", netip.MustParseAddr("10.0.0.1"), netip.Prefix{}); err == nil {
		t.Error("wrong domain accepted")
	}
}

// TestClientLDNSDistanceFromMeasurement reruns the Fig 5 analysis from
// *measured* associations instead of ground truth — the full §3 pipeline:
// measure pairs, geolocate both ends, compute distances.
func TestClientLDNSDistanceFromMeasurement(t *testing.T) {
	c := &Collector{}
	assocs, err := c.Collect(testW)
	if err != nil {
		t.Fatal(err)
	}
	ldnsByAddr := map[netip.Addr]*world.LDNS{}
	for _, l := range testW.LDNSes {
		ldnsByAddr[l.Addr] = l
	}
	var measured, truth stats.Dataset
	for _, a := range assocs {
		l := ldnsByAddr[dominant(a.Resolvers)]
		if l == nil {
			t.Fatal("measured resolver not in world")
		}
		measured.Add(geo.Distance(a.Block.Loc, l.Loc), a.Block.Demand)
		truth.Add(a.Block.ClientLDNSDistance(), a.Block.Demand)
	}
	if m, tr := measured.Median(), truth.Median(); m != tr {
		t.Errorf("measured median %.1f != truth %.1f", m, tr)
	}
}

func TestDominant(t *testing.T) {
	a1 := netip.MustParseAddr("10.0.0.1")
	a2 := netip.MustParseAddr("10.0.0.2")
	if got := dominant(map[netip.Addr]float64{a1: 0.3, a2: 0.7}); got != a2 {
		t.Errorf("dominant = %v", got)
	}
	// Ties break deterministically (lowest address).
	if got := dominant(map[netip.Addr]float64{a1: 0.5, a2: 0.5}); got != a1 {
		t.Errorf("tie dominant = %v", got)
	}
	if got := dominant(nil); got.IsValid() {
		t.Errorf("empty dominant = %v", got)
	}
}
