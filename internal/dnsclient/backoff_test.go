package dnsclient

import (
	"context"
	"net"
	"net/netip"
	"testing"
	"time"

	"eum/internal/dnsmsg"
)

func TestBackoffDelayDeterministic(t *testing.T) {
	c := &Client{BackoffBase: 10 * time.Millisecond, BackoffMax: 80 * time.Millisecond}
	for a := 1; a <= 6; a++ {
		d1 := c.backoffDelay(a, 42)
		d2 := c.backoffDelay(a, 42)
		if d1 != d2 {
			t.Fatalf("attempt %d: delay not deterministic (%v vs %v)", a, d1, d2)
		}
		// Jitter stays in [0.5, 1.5) of the capped exponential step.
		base := 10 * time.Millisecond << (a - 1)
		if base > 80*time.Millisecond {
			base = 80 * time.Millisecond
		}
		if d1 < base/2 || d1 >= base+base/2 {
			t.Fatalf("attempt %d: delay %v outside [%v, %v)", a, d1, base/2, base+base/2)
		}
	}
	if d := c.backoffDelay(3, 1); d == c.backoffDelay(3, 2) {
		t.Fatal("different seeds produced identical jitter (suspicious)")
	}
	if (&Client{}).backoffDelay(3, 1) != 0 {
		t.Fatal("zero BackoffBase must disable backoff")
	}
}

func TestBackoffGrowthCapped(t *testing.T) {
	c := &Client{BackoffBase: 10 * time.Millisecond} // default cap 16x
	d := c.backoffDelay(20, 7)
	if d >= 240*time.Millisecond { // 160ms cap * 1.5 jitter bound
		t.Fatalf("delay %v escaped the default cap", d)
	}
}

// TestRetriesTransientSocketErrors: a UDP query to a dead port gets an
// ICMP-derived connection-refused on the connected socket — a socket
// error, not a timeout — and the client must still burn through its
// attempt budget rather than give up on the first one.
func TestRetriesTransientSocketErrors(t *testing.T) {
	// Grab a port with nothing listening by binding and closing it.
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := pc.LocalAddr().String()
	pc.Close()

	c := &Client{Timeout: 100 * time.Millisecond, Retries: 2, BackoffBase: time.Millisecond}
	_, err = c.Lookup(context.Background(), addr, "dead.example.net", dnsmsg.TypeA, netip.Prefix{})
	if err == nil {
		t.Fatal("lookup against a dead port succeeded")
	}
	if got := c.Stats.Attempts.Load(); got != 3 {
		t.Fatalf("attempts = %d, want 3 (socket errors must be retried)", got)
	}
	if got := c.Stats.Retries.Load(); got != 2 {
		t.Fatalf("retries = %d, want 2", got)
	}
}

// TestBackoffRespectsContextBudget: attempts whose backoff delay would
// overrun the context deadline are not made at all.
func TestBackoffRespectsContextBudget(t *testing.T) {
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := pc.LocalAddr().String()
	pc.Close()

	c := &Client{
		Timeout: 50 * time.Millisecond, Retries: 10,
		BackoffBase: 400 * time.Millisecond, // first retry alone blows the budget
	}
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	start := time.Now()
	if _, err := c.Lookup(ctx, addr, "budget.example.net", dnsmsg.TypeA, netip.Prefix{}); err == nil {
		t.Fatal("lookup against a dead port succeeded")
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("lookup ran %v past a 200ms budget", elapsed)
	}
	if got := c.Stats.Attempts.Load(); got != 1 {
		t.Fatalf("attempts = %d, want 1 (backoff would overrun the deadline)", got)
	}
}
