package dnsclient

import (
	"context"
	"errors"
	"fmt"
	"net/netip"
	"sync/atomic"
	"time"

	"eum/internal/dnsmsg"
)

// RoundRobin fans queries across several DNS servers with per-server
// health tracking — the stand-in for an anycast VIP fronting a replica
// fleet: real anycast spreads resolvers across replicas by routing, the
// round-robin spreads them by rotation, and either way a query whose
// replica fails moves on to the next one.
//
// Each exchange starts at the next server in rotation and walks the list
// until one answers. A server that fails FailThreshold consecutive
// exchanges is marked down and skipped for Cooloff; a success resets it.
// When every server is down the rotation ignores health and tries them
// all anyway — serving through a flapping fleet beats failing fast.
type RoundRobin struct {
	client  *Client
	servers []string
	states  []rrState

	// FailThreshold is how many consecutive failures mark a server down
	// (default 3). Cooloff is how long a down server is skipped before it
	// is probed again (default 5s).
	failThreshold uint32
	cooloff       time.Duration

	next atomic.Uint64
}

// rrState is one server's health record.
type rrState struct {
	consecFails atomic.Uint32
	downUntil   atomic.Int64 // unix nanos; 0 = healthy

	exchanges atomic.Uint64
	failures  atomic.Uint64
	skips     atomic.Uint64
}

// RoundRobinConfig tunes server health tracking; the zero value applies
// the defaults.
type RoundRobinConfig struct {
	FailThreshold int
	Cooloff       time.Duration
}

// NewRoundRobin builds a round-robin front over the client for the given
// servers ("host:port" each).
func NewRoundRobin(c *Client, cfg RoundRobinConfig, servers ...string) (*RoundRobin, error) {
	if len(servers) == 0 {
		return nil, errors.New("dnsclient: round-robin needs at least one server")
	}
	if cfg.FailThreshold <= 0 {
		cfg.FailThreshold = 3
	}
	if cfg.Cooloff <= 0 {
		cfg.Cooloff = 5 * time.Second
	}
	return &RoundRobin{
		client:        c,
		servers:       append([]string(nil), servers...),
		states:        make([]rrState, len(servers)),
		failThreshold: uint32(cfg.FailThreshold),
		cooloff:       cfg.Cooloff,
	}, nil
}

// Servers returns the configured server list.
func (r *RoundRobin) Servers() []string { return append([]string(nil), r.servers...) }

// Exchange sends the query to the fleet: the next healthy server in
// rotation first, then the rest of the list on failure. The per-server
// exchange keeps the client's own retry/backoff behaviour.
func (r *RoundRobin) Exchange(ctx context.Context, query *dnsmsg.Message) (*dnsmsg.Message, error) {
	start := r.next.Add(1) - 1
	now := time.Now().UnixNano()

	var lastErr error
	tried := 0
	for i := 0; i < len(r.servers); i++ {
		idx := int((start + uint64(i)) % uint64(len(r.servers)))
		st := &r.states[idx]
		if st.downUntil.Load() > now {
			st.skips.Add(1)
			continue
		}
		tried++
		resp, err := r.tryServer(ctx, idx, query)
		if err == nil {
			return resp, nil
		}
		lastErr = err
		if ctx.Err() != nil {
			return nil, lastErr
		}
	}
	if tried == 0 {
		// Whole fleet in cooloff: health says nothing is left, so ignore
		// it and probe everyone — any answer beats a guaranteed failure.
		for i := 0; i < len(r.servers); i++ {
			idx := int((start + uint64(i)) % uint64(len(r.servers)))
			resp, err := r.tryServer(ctx, idx, query)
			if err == nil {
				return resp, nil
			}
			lastErr = err
			if ctx.Err() != nil {
				return nil, lastErr
			}
		}
	}
	return nil, fmt.Errorf("dnsclient: all %d servers failed: %w", len(r.servers), lastErr)
}

// tryServer runs one exchange against server idx and updates its health.
func (r *RoundRobin) tryServer(ctx context.Context, idx int, query *dnsmsg.Message) (*dnsmsg.Message, error) {
	st := &r.states[idx]
	st.exchanges.Add(1)
	// Each server attempt re-randomises the ID so a late answer from a
	// previous server cannot satisfy this one's exchange.
	q := *query
	q.ID = randomID()
	resp, err := r.client.Exchange(ctx, r.servers[idx], &q)
	if err != nil {
		st.failures.Add(1)
		if st.consecFails.Add(1) >= r.failThreshold {
			st.downUntil.Store(time.Now().Add(r.cooloff).UnixNano())
		}
		return nil, err
	}
	st.consecFails.Store(0)
	st.downUntil.Store(0)
	return resp, nil
}

// Lookup builds an A/AAAA query (with an ECS option when clientPrefix is
// valid) and exchanges it against the fleet.
func (r *RoundRobin) Lookup(ctx context.Context, name dnsmsg.Name, typ dnsmsg.Type, clientPrefix netip.Prefix) (*dnsmsg.Message, error) {
	q := dnsmsg.NewQuery(randomID(), name, typ)
	if clientPrefix.IsValid() {
		if err := q.SetClientSubnet(clientPrefix.Addr(), uint8(clientPrefix.Bits())); err != nil {
			return nil, err
		}
	}
	return r.Exchange(ctx, q)
}

// ServerStats is one server's health and traffic counters.
type ServerStats struct {
	Server    string
	Healthy   bool
	Exchanges uint64
	Failures  uint64
	Skips     uint64
}

// Stats returns a point-in-time view of every server's health.
func (r *RoundRobin) Stats() []ServerStats {
	now := time.Now().UnixNano()
	out := make([]ServerStats, len(r.servers))
	for i := range r.servers {
		st := &r.states[i]
		out[i] = ServerStats{
			Server:    r.servers[i],
			Healthy:   st.downUntil.Load() <= now,
			Exchanges: st.exchanges.Load(),
			Failures:  st.failures.Load(),
			Skips:     st.skips.Load(),
		}
	}
	return out
}
