package dnsclient

import (
	"context"
	"fmt"
	"net/netip"

	"eum/internal/dnsmsg"
)

// Iterative resolves names the way a recursive resolver does against the
// CDN's name-server hierarchy: it starts at a top-level server, follows
// CNAME records (customer domain -> CDN domain) and NS referrals with glue
// (top level -> low-level cluster), and returns the final answer — the full
// client interaction of the paper's Figure 3.
type Iterative struct {
	// Client performs the individual exchanges.
	Client Client
	// Root is the top-level server ("host:port") where resolution starts.
	Root string
	// Port is the port low-level servers listen on; referrals carry only
	// glue addresses. Defaults to the standard DNS port 53.
	Port int
	// MaxSteps bounds CNAME chases plus referrals (default 8).
	MaxSteps int
}

// Trace records the steps of one iterative resolution, for observability
// and tests.
type Trace struct {
	// Servers lists the servers contacted, in order.
	Servers []string
	// CNAMEs lists the CNAME targets followed, in order.
	CNAMEs []dnsmsg.Name
	// Referrals lists the NS hosts delegated through, in order.
	Referrals []dnsmsg.Name
}

// Resolve iteratively resolves (name, typ), optionally carrying the ECS
// prefix on every exchange, and returns the final response plus the trace.
func (it *Iterative) Resolve(ctx context.Context, name dnsmsg.Name, typ dnsmsg.Type, ecs netip.Prefix) (*dnsmsg.Message, *Trace, error) {
	maxSteps := it.MaxSteps
	if maxSteps <= 0 {
		maxSteps = 8
	}
	port := it.Port
	if port <= 0 {
		port = 53
	}
	server := it.Root
	qname := name.Canonical()
	trace := &Trace{}

	for step := 0; step < maxSteps; step++ {
		trace.Servers = append(trace.Servers, server)
		resp, err := it.Client.Lookup(ctx, server, qname, typ, ecs)
		if err != nil {
			return nil, trace, fmt.Errorf("dnsclient: iterative step %d at %s: %w", step, server, err)
		}
		if resp.RCode != dnsmsg.RCodeSuccess {
			return resp, trace, nil
		}

		// Terminal answer of the requested type?
		for _, rr := range resp.Answers {
			if rr.Name.Canonical() == qname && rr.Data.Type() == typ {
				return resp, trace, nil
			}
		}
		// CNAME for the current name: chase from the root.
		if cname, ok := findCNAME(resp, qname); ok {
			trace.CNAMEs = append(trace.CNAMEs, cname)
			qname = cname.Canonical()
			server = it.Root
			continue
		}
		// Referral: NS in the authority section with glue.
		if next, host, ok := findReferral(resp, port); ok {
			trace.Referrals = append(trace.Referrals, host)
			server = next
			continue
		}
		// NODATA or dead end.
		return resp, trace, nil
	}
	return nil, trace, fmt.Errorf("dnsclient: resolution of %q exceeded %d steps", name, maxSteps)
}

func findCNAME(resp *dnsmsg.Message, qname dnsmsg.Name) (dnsmsg.Name, bool) {
	for _, rr := range resp.Answers {
		if c, ok := rr.Data.(*dnsmsg.CNAME); ok && rr.Name.Canonical() == qname {
			return c.Target, true
		}
	}
	return "", false
}

func findReferral(resp *dnsmsg.Message, port int) (server string, host dnsmsg.Name, ok bool) {
	for _, auth := range resp.Authorities {
		ns, isNS := auth.Data.(*dnsmsg.NS)
		if !isNS {
			continue
		}
		for _, add := range resp.Additionals {
			a, isA := add.Data.(*dnsmsg.A)
			if !isA || add.Name.Canonical() != ns.Host.Canonical() {
				continue
			}
			return fmt.Sprintf("%s:%d", a.Addr, port), ns.Host.Canonical(), true
		}
	}
	return "", "", false
}
