package dnsclient_test

import (
	"context"
	"net"
	"net/netip"
	"testing"
	"time"

	"eum/internal/dnsclient"
	"eum/internal/dnsmsg"
	"eum/internal/dnsserver"
	"eum/internal/faultnet"
)

// echoHandler answers every A question with a fixed address, so the test
// can tell live servers from dead ones purely by whether an answer
// arrives.
func echoHandler() dnsserver.Handler {
	return dnsserver.HandlerFunc(func(_ netip.AddrPort, q *dnsmsg.Message) *dnsmsg.Message {
		resp := q.Reply()
		resp.Authoritative = true
		resp.Answers = append(resp.Answers, dnsmsg.RR{
			Name: q.Questions[0].Name, Class: dnsmsg.ClassINET, TTL: 20,
			Data: &dnsmsg.A{Addr: netip.MustParseAddr("192.0.2.1")},
		})
		return resp
	})
}

// TestRoundRobinFailover kills the primary of a two-server rotation with
// a faultnet partition: every lookup must still succeed via the
// secondary, the primary must be marked down (and skipped), and after
// the heal plus cooloff the rotation must fold it back in.
func TestRoundRobinFailover(t *testing.T) {
	// Primary listens through a partitionable injector; secondary is a
	// plain healthy server.
	inj := faultnet.NewInjector(faultnet.Config{Seed: 3})
	inner, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	primary, err := dnsserver.NewConn(inj.WrapPacketConn(inner), echoHandler(), dnsserver.Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = primary.Serve() }()
	defer primary.Close()
	secondary, err := dnsserver.Listen("127.0.0.1:0", echoHandler())
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = secondary.Serve() }()
	defer secondary.Close()

	const cooloff = 100 * time.Millisecond
	rr, err := dnsclient.NewRoundRobin(
		&dnsclient.Client{Timeout: 100 * time.Millisecond, Seed: 3},
		dnsclient.RoundRobinConfig{FailThreshold: 2, Cooloff: cooloff},
		inner.LocalAddr().String(), secondary.Addr().String(),
	)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	lookup := func() error {
		resp, err := rr.Lookup(ctx, "www.example.net", dnsmsg.TypeA, netip.Prefix{})
		if err != nil {
			return err
		}
		if resp.RCode != dnsmsg.RCodeSuccess || len(resp.Answers) == 0 {
			t.Fatalf("bad answer: rcode=%v answers=%d", resp.RCode, len(resp.Answers))
		}
		return nil
	}

	// Healthy rotation spreads load over both servers.
	for i := 0; i < 4; i++ {
		if err := lookup(); err != nil {
			t.Fatalf("healthy lookup %d: %v", i, err)
		}
	}
	for _, st := range rr.Stats() {
		if st.Exchanges == 0 {
			t.Fatalf("server %s saw no traffic in a healthy rotation", st.Server)
		}
	}

	// Kill the primary. Every lookup must still succeed, and after
	// FailThreshold consecutive failures the primary is skipped outright.
	inj.SetPartitioned(true)
	for i := 0; i < 8; i++ {
		if err := lookup(); err != nil {
			t.Fatalf("lookup %d with dead primary: %v", i, err)
		}
	}
	stats := rr.Stats()
	if stats[0].Healthy {
		t.Error("primary still marked healthy while partitioned")
	}
	if stats[0].Failures == 0 {
		t.Error("primary failures never counted")
	}
	if stats[0].Skips == 0 {
		t.Error("down primary was never skipped")
	}

	// Heal. After the cooloff expires the rotation retries the primary
	// and folds it back in.
	inj.SetPartitioned(false)
	time.Sleep(cooloff + 10*time.Millisecond)
	before := rr.Stats()[0].Exchanges
	deadline := time.Now().Add(2 * time.Second)
	for {
		if err := lookup(); err != nil {
			t.Fatalf("lookup after heal: %v", err)
		}
		st := rr.Stats()[0]
		if st.Healthy && st.Exchanges > before {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("primary never recovered: %+v", st)
		}
	}
}

func TestRoundRobinNeedsServers(t *testing.T) {
	if _, err := dnsclient.NewRoundRobin(&dnsclient.Client{}, dnsclient.RoundRobinConfig{}); err == nil {
		t.Fatal("empty server list accepted")
	}
}

// TestRoundRobinAllDown asserts the terminal error shape: with every
// server dead the rotation tries each one (second pass ignores health)
// and reports a single wrapped failure.
func TestRoundRobinAllDown(t *testing.T) {
	rr, err := dnsclient.NewRoundRobin(
		&dnsclient.Client{Timeout: 50 * time.Millisecond, Seed: 5},
		dnsclient.RoundRobinConfig{},
		"127.0.0.1:1", "127.0.0.1:2",
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rr.Lookup(context.Background(), "www.example.net", dnsmsg.TypeA, netip.Prefix{}); err == nil {
		t.Fatal("lookup against dead servers succeeded")
	}
}
