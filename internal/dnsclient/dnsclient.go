// Package dnsclient implements a UDP stub resolver client: it sends
// dnsmsg queries to a server, matches responses by ID, and retries with
// exponential backoff on timeouts and transient socket errors. The digecs
// command builds on it to act like "dig +subnet=<prefix>".
package dnsclient

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"net/netip"
	"sync/atomic"
	"time"

	"eum/internal/dnsmsg"
	"eum/internal/telemetry"
)

// ErrTCPFallbackFailed marks a response that came back truncated over UDP
// and whose TCP retry then failed: the returned message is a valid but
// partial answer. Callers that need the full record set must treat the
// exchange as failed; callers that only need the answer's existence may
// use the truncated response. Test with errors.Is.
var ErrTCPFallbackFailed = errors.New("dnsclient: TCP fallback after truncation failed")

// ContextDialer dials connections for the client — the subset of
// net.Dialer the client uses, as an interface so tests can interpose a
// fault-injecting transport (see internal/faultnet).
type ContextDialer interface {
	DialContext(ctx context.Context, network, address string) (net.Conn, error)
}

// Stats counts client activity. All fields are updated atomically and may
// be read at any time.
type Stats struct {
	// Attempts counts individual UDP query attempts (including the first).
	Attempts atomic.Uint64
	// Retries counts attempts after the first.
	Retries atomic.Uint64
	// TCPFallbacks counts truncated UDP responses retried over TCP.
	TCPFallbacks atomic.Uint64
	// TCPFallbackFailures counts TCP retries that themselves failed,
	// surfacing a truncated UDP response with ErrTCPFallbackFailed.
	TCPFallbackFailures atomic.Uint64
}

// Register wires the client counters into reg, prefixed (e.g. a prefix of
// "dnsclient" yields "dnsclient_attempts_total"), so processes running
// several clients — a resolver fleet, a self-probe — can meter each one
// under its own namespace.
func (s *Stats) Register(reg *telemetry.Registry, prefix string) {
	reg.Counter(prefix+"_attempts_total",
		"Individual UDP query attempts, including the first.", s.Attempts.Load)
	reg.Counter(prefix+"_retries_total",
		"Query attempts after the first.", s.Retries.Load)
	reg.Counter(prefix+"_tcp_fallbacks_total",
		"Truncated UDP responses retried over TCP.", s.TCPFallbacks.Load)
	reg.Counter(prefix+"_tcp_fallback_failures_total",
		"TCP retries that themselves failed.", s.TCPFallbackFailures.Load)
}

// Client issues DNS queries over UDP, falling back to TCP when a response
// arrives truncated (TC=1). The zero value is usable; fields tune
// behaviour.
type Client struct {
	// Timeout is the per-attempt read deadline (default 2s).
	Timeout time.Duration
	// Retries is how many additional attempts may follow a failed one
	// (default 2). Timeouts and transient socket errors (e.g. ECONNREFUSED
	// surfaced on an unconnected UDP socket, a blip from an interposed
	// transport) are both retried; context cancellation is not.
	Retries int
	// BackoffBase is the delay before the first retry; each further retry
	// doubles it, capped at BackoffMax. Zero disables backoff (retry
	// immediately, the legacy behaviour).
	BackoffBase time.Duration
	// BackoffMax caps the exponential backoff (default 16x BackoffBase).
	BackoffMax time.Duration
	// Seed makes the backoff jitter deterministic; 0 derives it from the
	// query ID (random per query, but reproducible if the caller fixes the
	// ID).
	Seed uint64
	// DisableTCPFallback keeps truncated responses as-is instead of
	// retrying over TCP.
	DisableTCPFallback bool
	// Dialer, when non-nil, dials the client's UDP and TCP connections
	// instead of a zero net.Dialer — the hook for fault-injecting
	// transports.
	Dialer ContextDialer
	// Stats exposes live counters.
	Stats Stats
}

// defaultDialer is shared by every client without an injected Dialer, so
// the default path does not allocate per exchange.
var defaultDialer = &net.Dialer{}

func (c *Client) dialer() ContextDialer {
	if c.Dialer != nil {
		return c.Dialer
	}
	return defaultDialer
}

// backoffDelay returns the jittered exponential delay before attempt a
// (a >= 1 is the first retry): BackoffBase << (a-1), capped at BackoffMax,
// scaled by a deterministic jitter in [0.5, 1.5) so synchronized clients
// (a fleet of simulated resolvers, or retries after a shared outage) do
// not retry in lockstep.
func (c *Client) backoffDelay(a int, seed uint64) time.Duration {
	if c.BackoffBase <= 0 {
		return 0
	}
	max := c.BackoffMax
	if max <= 0 {
		max = 16 * c.BackoffBase
	}
	d := c.BackoffBase
	for i := 1; i < a && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	// splitmix64 of (seed, attempt) -> uniform in [0.5, 1.5).
	h := splitmix(seed ^ (uint64(a) * 0x9e3779b97f4a7c15))
	jitter := 0.5 + float64(h>>11)/float64(1<<53)
	return time.Duration(float64(d) * jitter)
}

func splitmix(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Exchange sends query to server ("host:port") and returns the response.
// The query's ID is assigned randomly if zero. Responses with mismatched
// ID or question are discarded and the read continues until the deadline.
//
// Failed attempts are retried up to Retries times with exponential,
// deterministically jittered backoff; an attempt whose backoff delay would
// overrun the context deadline is not made at all (the budget is spent on
// attempts that can still finish). If a truncated UDP response's TCP retry
// fails, the truncated response is returned along with an error wrapping
// ErrTCPFallbackFailed — never silently as a complete answer.
func (c *Client) Exchange(ctx context.Context, server string, query *dnsmsg.Message) (*dnsmsg.Message, error) {
	timeout := c.Timeout
	if timeout == 0 {
		timeout = 2 * time.Second
	}
	attempts := c.Retries + 1
	if attempts < 1 {
		attempts = 1
	}
	if query.ID == 0 {
		query.ID = randomID()
	}
	seed := c.Seed
	if seed == 0 {
		seed = uint64(query.ID)
	}
	wire, err := query.Pack()
	if err != nil {
		return nil, err
	}

	var lastErr error
	for a := 0; a < attempts; a++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if a > 0 {
			if delay := c.backoffDelay(a, seed); delay > 0 {
				if dl, ok := ctx.Deadline(); ok && time.Now().Add(delay).After(dl) {
					// The backoff alone would blow the budget; stop here
					// rather than sleeping into a guaranteed failure.
					break
				}
				t := time.NewTimer(delay)
				select {
				case <-ctx.Done():
					t.Stop()
					return nil, ctx.Err()
				case <-t.C:
				}
			}
			c.Stats.Retries.Add(1)
		}
		c.Stats.Attempts.Add(1)
		resp, err := c.exchangeOnce(ctx, server, query, wire, timeout)
		if err == nil {
			if resp.Truncated && !c.DisableTCPFallback {
				c.Stats.TCPFallbacks.Add(1)
				tcpResp, tcpErr := c.exchangeTCP(ctx, server, query, wire, timeout)
				if tcpErr == nil {
					return tcpResp, nil
				}
				// TCP failed: the truncated UDP response is still valid but
				// partial. Surface that honestly instead of passing it off
				// as a complete answer.
				c.Stats.TCPFallbackFailures.Add(1)
				return resp, fmt.Errorf("%w: %v", ErrTCPFallbackFailed, tcpErr)
			}
			return resp, nil
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		lastErr = err
	}
	return nil, fmt.Errorf("dnsclient: %d attempts failed: %w", attempts, lastErr)
}

// exchangeTCP retries the query over TCP with RFC 1035 length framing.
func (c *Client) exchangeTCP(ctx context.Context, server string, query *dnsmsg.Message, wire []byte, timeout time.Duration) (*dnsmsg.Message, error) {
	conn, err := c.dialer().DialContext(ctx, "tcp", server)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	deadline := time.Now().Add(timeout)
	if dl, ok := ctx.Deadline(); ok && dl.Before(deadline) {
		deadline = dl
	}
	if err := conn.SetDeadline(deadline); err != nil {
		return nil, err
	}
	var lenBuf [2]byte
	binary.BigEndian.PutUint16(lenBuf[:], uint16(len(wire)))
	if _, err := conn.Write(append(lenBuf[:], wire...)); err != nil {
		return nil, err
	}
	if _, err := io.ReadFull(conn, lenBuf[:]); err != nil {
		return nil, err
	}
	msg := make([]byte, binary.BigEndian.Uint16(lenBuf[:]))
	if _, err := io.ReadFull(conn, msg); err != nil {
		return nil, err
	}
	resp, err := dnsmsg.Unpack(msg)
	if err != nil {
		return nil, err
	}
	if !matches(query, resp) {
		return nil, fmt.Errorf("dnsclient: TCP response does not match query")
	}
	return resp, nil
}

func (c *Client) exchangeOnce(ctx context.Context, server string, query *dnsmsg.Message, wire []byte, timeout time.Duration) (*dnsmsg.Message, error) {
	conn, err := c.dialer().DialContext(ctx, "udp", server)
	if err != nil {
		return nil, err
	}
	defer conn.Close()

	deadline := time.Now().Add(timeout)
	if dl, ok := ctx.Deadline(); ok && dl.Before(deadline) {
		deadline = dl
	}
	if err := conn.SetDeadline(deadline); err != nil {
		return nil, err
	}
	if _, err := conn.Write(wire); err != nil {
		return nil, err
	}
	buf := make([]byte, 65535)
	for {
		n, err := conn.Read(buf)
		if err != nil {
			return nil, err
		}
		resp, err := dnsmsg.Unpack(buf[:n])
		if err != nil {
			continue // garbage datagram; keep reading until deadline
		}
		if !matches(query, resp) {
			continue // mismatched ID/question: possible spoof, ignore
		}
		return resp, nil
	}
}

// matches verifies the response belongs to the query (ID and question).
func matches(q, r *dnsmsg.Message) bool {
	if !r.Response || r.ID != q.ID {
		return false
	}
	if len(q.Questions) != len(r.Questions) {
		return false
	}
	for i := range q.Questions {
		a, b := q.Questions[i], r.Questions[i]
		if a.Name.Canonical() != b.Name.Canonical() || a.Type != b.Type || a.Class != b.Class {
			return false
		}
	}
	return true
}

// Lookup is a convenience wrapper: query name/type at server, optionally
// with an ECS option for clientPrefix (pass an invalid prefix to omit it).
func (c *Client) Lookup(ctx context.Context, server string, name dnsmsg.Name, typ dnsmsg.Type, clientPrefix netip.Prefix) (*dnsmsg.Message, error) {
	q := dnsmsg.NewQuery(randomID(), name, typ)
	if clientPrefix.IsValid() {
		if err := q.SetClientSubnet(clientPrefix.Addr(), uint8(clientPrefix.Bits())); err != nil {
			return nil, err
		}
	}
	return c.Exchange(ctx, server, q)
}

func randomID() uint16 {
	var b [2]byte
	if _, err := rand.Read(b[:]); err != nil {
		// Fall back to a time-derived ID; queries remain functional.
		return uint16(time.Now().UnixNano())
	}
	id := binary.BigEndian.Uint16(b[:])
	if id == 0 {
		id = 1
	}
	return id
}
