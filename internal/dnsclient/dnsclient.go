// Package dnsclient implements a UDP stub resolver client: it sends
// dnsmsg queries to a server, matches responses by ID, and retries on
// timeout. The digecs command builds on it to act like
// "dig +subnet=<prefix>".
package dnsclient

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"net/netip"
	"time"

	"eum/internal/dnsmsg"
)

// Client issues DNS queries over UDP, falling back to TCP when a response
// arrives truncated (TC=1). The zero value is usable; fields tune
// behaviour.
type Client struct {
	// Timeout is the per-attempt read deadline (default 2s).
	Timeout time.Duration
	// Retries is how many additional attempts follow a timeout (default 2).
	Retries int
	// DisableTCPFallback keeps truncated responses as-is instead of
	// retrying over TCP.
	DisableTCPFallback bool
}

// Exchange sends query to server ("host:port") and returns the response.
// The query's ID is assigned randomly if zero. Responses with mismatched
// ID or question are discarded and the read continues until the deadline.
func (c *Client) Exchange(ctx context.Context, server string, query *dnsmsg.Message) (*dnsmsg.Message, error) {
	timeout := c.Timeout
	if timeout == 0 {
		timeout = 2 * time.Second
	}
	attempts := c.Retries + 1
	if attempts < 1 {
		attempts = 1
	}
	if query.ID == 0 {
		query.ID = randomID()
	}
	wire, err := query.Pack()
	if err != nil {
		return nil, err
	}

	var lastErr error
	for a := 0; a < attempts; a++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		resp, err := c.exchangeOnce(ctx, server, query, wire, timeout)
		if err == nil {
			if resp.Truncated && !c.DisableTCPFallback {
				if tcpResp, tcpErr := c.exchangeTCP(ctx, server, query, wire, timeout); tcpErr == nil {
					return tcpResp, nil
				}
				// TCP failed: the truncated UDP response is still a
				// valid (if partial) answer; return it.
			}
			return resp, nil
		}
		lastErr = err
	}
	return nil, fmt.Errorf("dnsclient: %d attempts failed: %w", attempts, lastErr)
}

// exchangeTCP retries the query over TCP with RFC 1035 length framing.
func (c *Client) exchangeTCP(ctx context.Context, server string, query *dnsmsg.Message, wire []byte, timeout time.Duration) (*dnsmsg.Message, error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", server)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	deadline := time.Now().Add(timeout)
	if dl, ok := ctx.Deadline(); ok && dl.Before(deadline) {
		deadline = dl
	}
	if err := conn.SetDeadline(deadline); err != nil {
		return nil, err
	}
	var lenBuf [2]byte
	binary.BigEndian.PutUint16(lenBuf[:], uint16(len(wire)))
	if _, err := conn.Write(append(lenBuf[:], wire...)); err != nil {
		return nil, err
	}
	if _, err := io.ReadFull(conn, lenBuf[:]); err != nil {
		return nil, err
	}
	msg := make([]byte, binary.BigEndian.Uint16(lenBuf[:]))
	if _, err := io.ReadFull(conn, msg); err != nil {
		return nil, err
	}
	resp, err := dnsmsg.Unpack(msg)
	if err != nil {
		return nil, err
	}
	if !matches(query, resp) {
		return nil, fmt.Errorf("dnsclient: TCP response does not match query")
	}
	return resp, nil
}

func (c *Client) exchangeOnce(ctx context.Context, server string, query *dnsmsg.Message, wire []byte, timeout time.Duration) (*dnsmsg.Message, error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "udp", server)
	if err != nil {
		return nil, err
	}
	defer conn.Close()

	deadline := time.Now().Add(timeout)
	if dl, ok := ctx.Deadline(); ok && dl.Before(deadline) {
		deadline = dl
	}
	if err := conn.SetDeadline(deadline); err != nil {
		return nil, err
	}
	if _, err := conn.Write(wire); err != nil {
		return nil, err
	}
	buf := make([]byte, 65535)
	for {
		n, err := conn.Read(buf)
		if err != nil {
			return nil, err
		}
		resp, err := dnsmsg.Unpack(buf[:n])
		if err != nil {
			continue // garbage datagram; keep reading until deadline
		}
		if !matches(query, resp) {
			continue // mismatched ID/question: possible spoof, ignore
		}
		return resp, nil
	}
}

// matches verifies the response belongs to the query (ID and question).
func matches(q, r *dnsmsg.Message) bool {
	if !r.Response || r.ID != q.ID {
		return false
	}
	if len(q.Questions) != len(r.Questions) {
		return false
	}
	for i := range q.Questions {
		a, b := q.Questions[i], r.Questions[i]
		if a.Name.Canonical() != b.Name.Canonical() || a.Type != b.Type || a.Class != b.Class {
			return false
		}
	}
	return true
}

// Lookup is a convenience wrapper: query name/type at server, optionally
// with an ECS option for clientPrefix (pass an invalid prefix to omit it).
func (c *Client) Lookup(ctx context.Context, server string, name dnsmsg.Name, typ dnsmsg.Type, clientPrefix netip.Prefix) (*dnsmsg.Message, error) {
	q := dnsmsg.NewQuery(randomID(), name, typ)
	if clientPrefix.IsValid() {
		if err := q.SetClientSubnet(clientPrefix.Addr(), uint8(clientPrefix.Bits())); err != nil {
			return nil, err
		}
	}
	return c.Exchange(ctx, server, q)
}

func randomID() uint16 {
	var b [2]byte
	if _, err := rand.Read(b[:]); err != nil {
		// Fall back to a time-derived ID; queries remain functional.
		return uint16(time.Now().UnixNano())
	}
	id := binary.BigEndian.Uint16(b[:])
	if id == 0 {
		id = 1
	}
	return id
}
