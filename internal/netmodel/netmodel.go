// Package netmodel provides a deterministic synthetic model of Internet
// path performance: round-trip time, packet loss, and achievable throughput
// between two endpoints, plus the ping-style probe latency the paper's
// deployment simulation (§6) is built on.
//
// The paper's production substrate measures these quantities; this package
// substitutes a model that preserves the causal structure the paper's
// results depend on:
//
//   - RTT grows (super-)linearly with great-circle distance: propagation at
//     roughly 2/3 c through fibre along routes inflated relative to the
//     geodesic, so halving the mapping distance roughly halves the RTT.
//   - Crossing AS boundaries, peering points and transnational links adds
//     latency, loss, and congestion variance (paper §4.4).
//   - The last mile adds an access-technology-dependent floor.
//   - Throughput follows a Mathis-style MSS/(RTT·sqrt(loss)) law, so
//     download time is dominated by client-server RTT (paper §4.1).
//
// All randomness is derived by hashing endpoint identities with the model
// seed, so the model is a pure function: the same pair always sees the same
// base path quality, with an optional epoch input to model day-to-day
// congestion variation.
package netmodel

import (
	"math"

	"eum/internal/geo"
)

// AccessType describes an endpoint's last-mile connectivity.
type AccessType uint8

// Access technologies, ordered roughly by decreasing last-mile latency.
// The paper's RUM dataset covers "cellular, WiFi, 3G, 4G, DSL, cable modem,
// and fiber"; Backbone models infrastructure endpoints (servers, resolvers)
// with no last mile.
const (
	AccessBackbone AccessType = iota
	AccessFiber
	AccessCable
	AccessDSL
	AccessWiFi
	Access4G
	Access3G
	AccessCellular
	numAccessTypes
)

// String returns the access-type name.
func (a AccessType) String() string {
	switch a {
	case AccessBackbone:
		return "backbone"
	case AccessFiber:
		return "fiber"
	case AccessCable:
		return "cable"
	case AccessDSL:
		return "dsl"
	case AccessWiFi:
		return "wifi"
	case Access4G:
		return "4g"
	case Access3G:
		return "3g"
	case AccessCellular:
		return "cellular"
	}
	return "unknown"
}

// lastMileMs is the one-way last-mile latency in milliseconds per access type.
var lastMileMs = [numAccessTypes]float64{
	AccessBackbone: 0,
	AccessFiber:    2,
	AccessCable:    5,
	AccessDSL:      9,
	AccessWiFi:     6,
	Access4G:       18,
	Access3G:       45,
	AccessCellular: 60,
}

// lastMileMbps is the nominal downlink bandwidth in Mbit/s per access type.
var lastMileMbps = [numAccessTypes]float64{
	AccessBackbone: 10000,
	AccessFiber:    300,
	AccessCable:    100,
	AccessDSL:      20,
	AccessWiFi:     50,
	Access4G:       25,
	Access3G:       4,
	AccessCellular: 2,
}

// Endpoint is one end of a modelled network path.
type Endpoint struct {
	ID     uint64    // stable identity used to derive per-pair path quality
	Loc    geo.Point // geographic location
	ASN    uint32    // autonomous system number
	Access AccessType
}

// Params tunes the path model. The zero value is not useful; use
// DefaultParams.
type Params struct {
	// FiberMilesPerMs is signal speed through fibre (~2/3 c).
	FiberMilesPerMs float64
	// RouteInflation scales great-circle distance to modelled route
	// distance; Internet paths are far from geodesics.
	RouteInflation float64
	// PerASCrossingMs is the per-AS-boundary latency penalty (one way).
	PerASCrossingMs float64
	// CongestionMs is the scale of the heavy-tailed congestion term.
	CongestionMs float64
	// BaseLoss is the loss-rate floor of an uncongested path.
	BaseLoss float64
	// LossPerCrossing adds loss probability per AS crossing.
	LossPerCrossing float64
	// MSSBytes is the TCP segment size for the throughput law.
	MSSBytes float64
	// Parallelism is the number of concurrent TCP connections a page
	// download uses (browsers open several per host).
	Parallelism float64
	// PingNoise is the measurement-noise span of ping probes: a probe
	// reads the true path latency scaled by a deterministic per-pair
	// factor in [1-PingNoise, 1]. Probes hit a router before the last
	// mile, so they always under-estimate (§6's caveat); the spread is
	// what makes scoring imperfect, as production measurements are.
	PingNoise float64
	// Seed decorrelates independently constructed models.
	Seed uint64
}

// DefaultParams returns the parameter set used in the reproduction.
func DefaultParams() Params {
	return Params{
		FiberMilesPerMs: 124, // 2/3 × 186 mi/ms
		RouteInflation:  1.35,
		PerASCrossingMs: 2.5,
		CongestionMs:    12,
		BaseLoss:        0.0003,
		LossPerCrossing: 0.001,
		MSSBytes:        1460,
		Parallelism:     6,
		PingNoise:       0.28,
		Seed:            0x5eed,
	}
}

// Model evaluates path metrics between endpoints. It is safe for concurrent
// use; all methods are pure functions of their inputs.
type Model struct {
	p Params
}

// New returns a Model with the given parameters.
func New(p Params) *Model {
	return &Model{p: p}
}

// NewDefault returns a Model with DefaultParams.
func NewDefault() *Model { return New(DefaultParams()) }

// hash01 derives a deterministic uniform value in [0,1) from the pair and
// a salt. The pair is unordered so metrics are symmetric.
func (m *Model) hash01(a, b Endpoint, salt uint64) float64 {
	x, y := a.ID, b.ID
	if x > y {
		x, y = y, x
	}
	h := mix64(x ^ mix64(y^mix64(salt^m.p.Seed)))
	return float64(h>>11) / float64(1<<53)
}

// mix64 is the splitmix64 finaliser, a strong 64-bit mixing function.
func mix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// ASCrossings estimates the number of AS boundaries a path between a and b
// traverses: zero inside one AS, plus roughly one extra transit hop per
// 2500 miles (transnational links, peering points).
func (m *Model) ASCrossings(a, b Endpoint) int {
	if a.ASN == b.ASN {
		return 0
	}
	d := geo.Distance(a.Loc, b.Loc)
	crossings := 1 + int(d/2500)
	// Some pairs peer directly; some go through extra intermediaries.
	u := m.hash01(a, b, 0xA5)
	if u < 0.25 && crossings > 1 {
		crossings--
	} else if u > 0.85 {
		crossings++
	}
	return crossings
}

// BaseRTTMs is the congestion-free round-trip time in milliseconds:
// propagation + AS crossings + both last miles.
func (m *Model) BaseRTTMs(a, b Endpoint) float64 {
	d := geo.Distance(a.Loc, b.Loc)
	prop := 2 * d * m.p.RouteInflation / m.p.FiberMilesPerMs
	cross := 2 * float64(m.ASCrossings(a, b)) * m.p.PerASCrossingMs
	return prop + cross + lastMileMs[a.Access] + lastMileMs[b.Access]
}

// RTTMs is the modelled round-trip time in milliseconds for the given
// epoch (e.g. day number). The congestion term is heavy-tailed and grows
// with the number of AS crossings, modelling the paper's observation that
// paths crossing more AS boundaries and peering points see more congestion.
func (m *Model) RTTMs(a, b Endpoint, epoch uint64) float64 {
	base := m.BaseRTTMs(a, b)
	u := m.hash01(a, b, 0xC0FFEE^epoch)
	// Inverse-CDF of a Pareto-ish tail: most epochs near zero congestion,
	// a few heavily congested.
	congestion := m.p.CongestionMs * float64(1+m.ASCrossings(a, b)) * paretoTail(u)
	return base + congestion
}

// paretoTail maps u in [0,1) to a nonnegative multiplier with mean ~1 and
// a heavy right tail, capped to keep single samples physical.
func paretoTail(u float64) float64 {
	if u >= 0.999999 {
		u = 0.999999
	}
	// (1-u)^(-1/3) - 1 has mean 0.5 for u ~ U(0,1); scale by 2 for mean ~1.
	v := 2 * (math.Pow(1-u, -1.0/3.0) - 1)
	if v > 40 {
		v = 40
	}
	return v
}

// Loss returns the modelled packet-loss probability on the path.
func (m *Model) Loss(a, b Endpoint) float64 {
	loss := m.p.BaseLoss + m.p.LossPerCrossing*float64(m.ASCrossings(a, b))
	// Per-pair variation of ±50%.
	loss *= 0.5 + m.hash01(a, b, 0x10555)
	if loss > 0.25 {
		loss = 0.25
	}
	return loss
}

// ThroughputMbps returns the achievable TCP throughput in Mbit/s, the
// minimum of the Mathis law MSS/(RTT·sqrt(loss)) and the client's last-mile
// bandwidth.
func (m *Model) ThroughputMbps(a, b Endpoint, epoch uint64) float64 {
	rtt := m.RTTMs(a, b, epoch) / 1000 // seconds
	loss := m.Loss(a, b)
	if loss <= 0 {
		loss = 1e-6
	}
	par := m.p.Parallelism
	if par < 1 {
		par = 1
	}
	mathis := par * m.p.MSSBytes * 8 / (rtt * math.Sqrt(loss)) / 1e6
	cap1 := lastMileMbps[a.Access]
	cap2 := lastMileMbps[b.Access]
	return math.Min(mathis, math.Min(cap1, cap2))
}

// PingMs models a ping probe from a deployment to a "ping target": a router
// en route to a client block. Per the paper (§6), ping latency is a lower
// bound on the true client RTT since the target sits before the last mile;
// we model it as the base RTT without either endpoint's last-mile term.
func (m *Model) PingMs(a, b Endpoint) float64 {
	d := geo.Distance(a.Loc, b.Loc)
	prop := 2 * d * m.p.RouteInflation / m.p.FiberMilesPerMs
	cross := 2 * float64(m.ASCrossings(a, b)) * m.p.PerASCrossingMs
	noise := 1 - m.p.PingNoise*m.hash01(a, b, 0x9147)
	return (prop + cross) * noise
}

// PingMsAt is PingMs plus the congestion the probe would observe in the
// given epoch: measurement pipelines see the network's time-varying state,
// which is why measurement freshness matters to mapping quality (the
// "real-time" half of the paper's measurement component).
func (m *Model) PingMsAt(a, b Endpoint, epoch uint64) float64 {
	u := m.hash01(a, b, 0xC0FFEE^epoch)
	congestion := 0.5 * m.p.CongestionMs * float64(1+m.ASCrossings(a, b)) * paretoTail(u)
	return m.PingMs(a, b) + congestion
}
