package netmodel

import (
	"math"
	"testing"

	"eum/internal/geo"
)

func ep(id uint64, lat, lon float64, asn uint32, acc AccessType) Endpoint {
	return Endpoint{ID: id, Loc: geo.Point{Lat: lat, Lon: lon}, ASN: asn, Access: acc}
}

var (
	serverBos  = ep(1, 42.36, -71.06, 100, AccessBackbone)
	clientBos  = ep(2, 42.40, -71.10, 200, AccessCable)
	clientLon  = ep(3, 51.51, -0.13, 300, AccessDSL)
	clientSyd  = ep(4, -33.87, 151.21, 400, AccessFiber)
	clientCell = ep(5, 42.40, -71.10, 200, AccessCellular)
)

func TestRTTIncreasesWithDistance(t *testing.T) {
	m := NewDefault()
	near := m.BaseRTTMs(serverBos, clientBos)
	mid := m.BaseRTTMs(serverBos, clientLon)
	far := m.BaseRTTMs(serverBos, clientSyd)
	if !(near < mid && mid < far) {
		t.Errorf("RTT not monotone in distance: %.1f, %.1f, %.1f", near, mid, far)
	}
}

func TestRTTPhysicallyPlausible(t *testing.T) {
	m := NewDefault()
	// Boston-London (~3270 mi): RTT must exceed the speed-of-light bound
	// (~35 ms through fibre) and stay under a sane ceiling.
	rtt := m.BaseRTTMs(serverBos, clientLon)
	lightBound := 2 * geo.Distance(serverBos.Loc, clientLon.Loc) / 124
	if rtt < lightBound {
		t.Errorf("RTT %.1f ms beats light-through-fibre bound %.1f ms", rtt, lightBound)
	}
	if rtt > 250 {
		t.Errorf("transatlantic base RTT %.1f ms implausibly high", rtt)
	}
}

func TestRTTDeterministic(t *testing.T) {
	m := NewDefault()
	a := m.RTTMs(serverBos, clientLon, 5)
	b := m.RTTMs(serverBos, clientLon, 5)
	if a != b {
		t.Errorf("same inputs gave %.3f and %.3f", a, b)
	}
}

func TestRTTSymmetric(t *testing.T) {
	m := NewDefault()
	for _, pair := range [][2]Endpoint{{serverBos, clientLon}, {clientSyd, clientBos}} {
		a := m.RTTMs(pair[0], pair[1], 3)
		b := m.RTTMs(pair[1], pair[0], 3)
		if a != b {
			t.Errorf("RTT not symmetric: %.3f vs %.3f", a, b)
		}
	}
}

func TestRTTVariesByEpoch(t *testing.T) {
	m := NewDefault()
	seen := map[float64]bool{}
	for e := uint64(0); e < 20; e++ {
		seen[m.RTTMs(serverBos, clientLon, e)] = true
	}
	if len(seen) < 10 {
		t.Errorf("only %d distinct RTTs over 20 epochs; congestion not varying", len(seen))
	}
}

func TestRTTAtLeastBase(t *testing.T) {
	m := NewDefault()
	base := m.BaseRTTMs(serverBos, clientSyd)
	for e := uint64(0); e < 50; e++ {
		if rtt := m.RTTMs(serverBos, clientSyd, e); rtt < base {
			t.Fatalf("epoch %d RTT %.2f below base %.2f", e, rtt, base)
		}
	}
}

func TestLastMileDominatesNearby(t *testing.T) {
	m := NewDefault()
	cable := m.BaseRTTMs(serverBos, clientBos)
	cell := m.BaseRTTMs(serverBos, clientCell)
	if cell <= cable {
		t.Errorf("cellular last mile (%.1f) should exceed cable (%.1f)", cell, cable)
	}
	if cell-cable < 30 {
		t.Errorf("cellular penalty only %.1f ms", cell-cable)
	}
}

func TestASCrossings(t *testing.T) {
	m := NewDefault()
	sameAS := ep(10, 42, -71, 200, AccessCable)
	if c := m.ASCrossings(clientBos, sameAS); c != 0 {
		t.Errorf("same-AS crossings = %d, want 0", c)
	}
	if c := m.ASCrossings(serverBos, clientBos); c < 1 {
		t.Errorf("cross-AS crossings = %d, want >= 1", c)
	}
	near := m.ASCrossings(serverBos, clientBos)
	far := m.ASCrossings(serverBos, clientSyd)
	if far <= near {
		t.Errorf("long path crossings (%d) should exceed short (%d)", far, near)
	}
}

func TestLossBounds(t *testing.T) {
	m := NewDefault()
	pairs := [][2]Endpoint{{serverBos, clientBos}, {serverBos, clientSyd}, {clientLon, clientCell}}
	for _, p := range pairs {
		loss := m.Loss(p[0], p[1])
		if loss <= 0 || loss > 0.25 {
			t.Errorf("loss = %v out of (0, 0.25]", loss)
		}
	}
}

func TestLossGrowsWithCrossings(t *testing.T) {
	m := NewDefault()
	// Average over salt-varied pairs to smooth per-pair variation.
	var near, far float64
	for i := uint64(0); i < 50; i++ {
		a := ep(100+i, 42.36, -71.06, 100, AccessBackbone)
		near += m.Loss(a, clientBos)
		far += m.Loss(a, clientSyd)
	}
	if far <= near {
		t.Errorf("mean far loss %.5f should exceed near loss %.5f", far/50, near/50)
	}
}

func TestThroughputDecreasesWithRTT(t *testing.T) {
	m := NewDefault()
	// Same access type at both ends to isolate the RTT effect.
	near := ep(20, 42.37, -71.07, 150, AccessFiber)
	far := ep(21, -33.87, 151.21, 151, AccessFiber)
	tpNear := m.ThroughputMbps(serverBos, near, 1)
	tpFar := m.ThroughputMbps(serverBos, far, 1)
	if tpFar >= tpNear {
		t.Errorf("far throughput %.1f >= near %.1f", tpFar, tpNear)
	}
}

func TestThroughputCappedByAccess(t *testing.T) {
	m := NewDefault()
	tp := m.ThroughputMbps(serverBos, clientCell, 1)
	if tp > lastMileMbps[AccessCellular] {
		t.Errorf("throughput %.1f exceeds cellular cap", tp)
	}
	if tp <= 0 {
		t.Errorf("throughput = %v", tp)
	}
}

func TestPingUnderestimatesRTT(t *testing.T) {
	// Paper §6: ping targets are routers en route, so ping latency is a
	// lower bound on the client RTT.
	m := NewDefault()
	pairs := [][2]Endpoint{{serverBos, clientBos}, {serverBos, clientSyd}, {serverBos, clientCell}}
	for _, p := range pairs {
		ping := m.PingMs(p[0], p[1])
		rtt := m.BaseRTTMs(p[0], p[1])
		if ping > rtt {
			t.Errorf("ping %.1f exceeds base RTT %.1f", ping, rtt)
		}
	}
}

func TestPingOrderingMatchesRTTOrdering(t *testing.T) {
	// Fig 25 argues relative ping values are meaningful: ordering by ping
	// should match ordering by base RTT for same-access endpoints.
	m := NewDefault()
	targets := []Endpoint{
		ep(30, 40.7, -74.0, 500, AccessCable),
		ep(31, 51.5, -0.1, 501, AccessCable),
		ep(32, 35.7, 139.7, 502, AccessCable),
	}
	for i := 0; i < len(targets); i++ {
		for j := i + 1; j < len(targets); j++ {
			pi, pj := m.PingMs(serverBos, targets[i]), m.PingMs(serverBos, targets[j])
			ri, rj := m.BaseRTTMs(serverBos, targets[i]), m.BaseRTTMs(serverBos, targets[j])
			if (pi < pj) != (ri < rj) {
				t.Errorf("ping ordering (%v) disagrees with RTT ordering (%v)", pi < pj, ri < rj)
			}
		}
	}
}

func TestParetoTailProperties(t *testing.T) {
	var sum float64
	n := 100000
	for i := 0; i < n; i++ {
		u := (float64(i) + 0.5) / float64(n)
		v := paretoTail(u)
		if v < 0 || v > 40 {
			t.Fatalf("paretoTail(%v) = %v out of [0, 40]", u, v)
		}
		sum += v
	}
	mean := sum / float64(n)
	if mean < 0.5 || mean > 2 {
		t.Errorf("paretoTail mean = %.3f, want ~1", mean)
	}
	if math.IsNaN(paretoTail(1)) || math.IsInf(paretoTail(1), 0) {
		t.Error("paretoTail(1) not finite")
	}
}

func TestSeedDecorrelates(t *testing.T) {
	p1 := DefaultParams()
	p2 := DefaultParams()
	p2.Seed = 12345
	m1, m2 := New(p1), New(p2)
	same := 0
	for e := uint64(0); e < 20; e++ {
		if m1.RTTMs(serverBos, clientSyd, e) == m2.RTTMs(serverBos, clientSyd, e) {
			same++
		}
	}
	if same > 2 {
		t.Errorf("%d/20 epochs identical across seeds", same)
	}
}

func TestAccessTypeString(t *testing.T) {
	if AccessCellular.String() != "cellular" || AccessBackbone.String() != "backbone" {
		t.Error("AccessType.String broken")
	}
	if AccessType(200).String() != "unknown" {
		t.Error("unknown access type should stringify to unknown")
	}
}
