package redirect

import (
	"testing"

	"eum/internal/cdn"
	"eum/internal/mapping"
	"eum/internal/netmodel"
	"eum/internal/world"
)

var (
	testW   = world.MustGenerate(world.Config{Seed: 51, NumBlocks: 3000})
	testNet = netmodel.NewDefault()
	testP   = cdn.MustGenerateUniverse(testW, cdn.Config{Seed: 51, NumDeployments: 300})
	scorer  = mapping.NewScorer(testW, testP, testNet, 600)
	eval    = NewEvaluator(scorer, testNet)
)

// farClient returns a public-resolver block far from its LDNS — where the
// mechanisms differ most.
func farClient(t *testing.T) *world.ClientBlock {
	t.Helper()
	for _, b := range testW.Blocks {
		if b.LDNS.IsPublic() && b.ClientLDNSDistance() > 3000 {
			return b
		}
	}
	t.Fatal("no far client")
	return nil
}

func resultsByMech(t *testing.T, b *world.ClientBlock, size int) map[Mechanism]Result {
	t.Helper()
	rs, err := eval.Evaluate(b, size, 1)
	if err != nil {
		t.Fatal(err)
	}
	out := map[Mechanism]Result{}
	for _, r := range rs {
		out[r.Mechanism] = r
	}
	if len(out) != 4 {
		t.Fatalf("got %d mechanisms", len(out))
	}
	return out
}

func TestECSBestStartup(t *testing.T) {
	b := farClient(t)
	rs := resultsByMech(t, b, 500_000)
	// ECS pays no redirection penalty and reaches the proximal server:
	// it must have the best (or tied-best) startup.
	for m, r := range rs {
		if m == ECS {
			continue
		}
		if rs[ECS].StartupMs > r.StartupMs+1e-9 {
			t.Errorf("ECS startup %.1f worse than %v's %.1f", rs[ECS].StartupMs, m, r.StartupMs)
		}
	}
}

func TestRedirectionPenaltyOrdering(t *testing.T) {
	b := farClient(t)
	rs := resultsByMech(t, b, 100_000)
	// Redirection mechanisms pay strictly more startup than ECS; the
	// HTTP redirect re-request costs slightly more than the metafile.
	if !(rs[ECS].StartupMs < rs[Metafile].StartupMs) {
		t.Errorf("metafile startup %.1f not above ECS %.1f", rs[Metafile].StartupMs, rs[ECS].StartupMs)
	}
	if !(rs[Metafile].StartupMs < rs[HTTPRedirect].StartupMs) {
		t.Errorf("redirect startup %.1f not above metafile %.1f",
			rs[HTTPRedirect].StartupMs, rs[Metafile].StartupMs)
	}
}

func TestRedirectServesFromProximalServer(t *testing.T) {
	b := farClient(t)
	rs := resultsByMech(t, b, 100_000)
	if rs[Metafile].ServingDeployment != rs[ECS].ServingDeployment {
		t.Error("metafile should serve from the EU-chosen deployment")
	}
	if rs[HTTPRedirect].ServingDeployment != rs[ECS].ServingDeployment {
		t.Error("redirect should serve from the EU-chosen deployment")
	}
	if rs[NSOnly].ServingDeployment == rs[ECS].ServingDeployment {
		t.Skip("NS and EU chose the same deployment for this client")
	}
}

func TestLargeDownloadsAmortiseRedirection(t *testing.T) {
	// §7: "a redirection penalty that is acceptable only for larger
	// downloads such as media files and software downloads."
	b := farClient(t)
	small := resultsByMech(t, b, 20_000) // 20 KB page
	// Large enough that transfer time dwarfs redirect round trips even for
	// a fast-access client whose NS-chosen server is very far away.
	large := resultsByMech(t, b, 2_000_000_000) // 2 GB software download

	smallPenalty := small[HTTPRedirect].TotalMs / small[ECS].TotalMs
	largePenalty := large[HTTPRedirect].TotalMs / large[ECS].TotalMs
	if largePenalty >= smallPenalty {
		t.Errorf("relative redirect penalty should shrink with size: %.3f -> %.3f",
			smallPenalty, largePenalty)
	}
	if largePenalty > 1.02 {
		t.Errorf("for a 2GB download the redirect penalty should be negligible, got %.3f", largePenalty)
	}
	// And for a large download, redirection beats staying on the NS
	// server (for this far client).
	if large[HTTPRedirect].TotalMs >= large[NSOnly].TotalMs {
		t.Error("redirect did not beat NS-only for a large download by a far client")
	}
}

func TestCrossoverBytes(t *testing.T) {
	b := farClient(t)
	cross, err := eval.CrossoverBytes(b, HTTPRedirect, 1)
	if err != nil {
		t.Fatal(err)
	}
	if cross < 0 {
		t.Fatal("redirect never beats NS for a far client; expected a crossover")
	}
	if cross > 0 {
		// At the crossover, larger is better and smaller is worse.
		below := resultsByMech(t, b, cross/2)
		above := resultsByMech(t, b, cross*2)
		if below[HTTPRedirect].TotalMs < below[NSOnly].TotalMs {
			t.Error("redirect already wins below the crossover")
		}
		if above[HTTPRedirect].TotalMs >= above[NSOnly].TotalMs {
			t.Error("redirect does not win above the crossover")
		}
	}
}

func TestCrossoverNearClient(t *testing.T) {
	// A client already near its LDNS gains nothing from redirection:
	// the NS choice is (nearly) optimal, so crossover is never or huge.
	var near *world.ClientBlock
	for _, b := range testW.Blocks {
		if !b.LDNS.IsPublic() && b.ClientLDNSDistance() < 10 {
			near = b
			break
		}
	}
	if near == nil {
		t.Skip("no very-near client")
	}
	cross, err := eval.CrossoverBytes(near, HTTPRedirect, 1)
	if err != nil {
		t.Fatal(err)
	}
	if cross == 0 {
		t.Error("redirection should not win at size 0 for a near client")
	}
}

func TestMechanismString(t *testing.T) {
	for m, want := range map[Mechanism]string{
		NSOnly: "ns-only", ECS: "ecs", Metafile: "metafile", HTTPRedirect: "http-redirect",
	} {
		if m.String() != want {
			t.Errorf("%d.String() = %q", m, m.String())
		}
	}
}

func TestEvaluateDeadPlatform(t *testing.T) {
	w2 := world.MustGenerate(world.Config{Seed: 52, NumBlocks: 500})
	p2 := cdn.MustGenerateUniverse(w2, cdn.Config{Seed: 52, NumDeployments: 3})
	for _, d := range p2.Deployments {
		for _, s := range d.Servers {
			s.SetAlive(false)
		}
	}
	e2 := NewEvaluator(mapping.NewScorer(w2, p2, testNet, 0), testNet)
	if _, err := e2.Evaluate(w2.Blocks[0], 1000, 1); err == nil {
		t.Error("dead platform should error")
	}
}
