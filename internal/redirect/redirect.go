// Package redirect implements the pre-ECS end-user mapping mechanisms the
// paper discusses in §7 as baselines: metafile redirection (used by a video
// CDN at Akamai circa 2000) and HTTP redirection. Both learn the client's
// IP at the application layer — after NS-based DNS has already picked a
// possibly-distant first server — and buy client-accurate server selection
// at the price of extra round trips through that first server:
//
//   - Metafile: the media player fetches a metafile from the NS-chosen
//     server; the mapping system embeds the IP of the client-proximal
//     server in the metafile; the player then connects there. Hard to
//     extend beyond traffic that uses metafiles.
//   - HTTP redirection: the NS-chosen first server answers the content
//     request with a redirect to a better second server. The redirection
//     penalty is "acceptable only for larger downloads".
//   - ECS (end-user mapping proper) gets the client-accurate decision
//     during DNS resolution, with no application-layer penalty.
//
// The Evaluator quantifies exactly that trade-off on the shared substrate.
package redirect

import (
	"fmt"

	"eum/internal/cdn"
	"eum/internal/mapping"
	"eum/internal/netmodel"
	"eum/internal/world"
)

// Mechanism identifies a request-routing mechanism.
type Mechanism int

// The compared mechanisms.
const (
	// NSOnly is the baseline: DNS by LDNS, no client knowledge at all.
	NSOnly Mechanism = iota
	// ECS is end-user mapping via the EDNS0 client-subnet option.
	ECS
	// Metafile is metafile redirection.
	Metafile
	// HTTPRedirect is application-layer redirection.
	HTTPRedirect
)

// String names the mechanism.
func (m Mechanism) String() string {
	switch m {
	case NSOnly:
		return "ns-only"
	case ECS:
		return "ecs"
	case Metafile:
		return "metafile"
	case HTTPRedirect:
		return "http-redirect"
	}
	return fmt.Sprintf("Mechanism(%d)", int(m))
}

// Result is one mechanism's outcome for one download.
type Result struct {
	Mechanism Mechanism
	// ServingDeployment is where the content ultimately comes from.
	ServingDeployment *cdn.Deployment
	// StartupMs is the time until the first content byte: DNS, connection
	// setup, and any redirection penalty.
	StartupMs float64
	// TotalMs is StartupMs plus the content transfer time.
	TotalMs float64
}

// Evaluator computes per-mechanism download timings.
type Evaluator struct {
	scorer *mapping.Scorer
	net    *netmodel.Model
}

// NewEvaluator builds an evaluator over the given scorer (which fixes the
// platform) and network model.
func NewEvaluator(scorer *mapping.Scorer, net *netmodel.Model) *Evaluator {
	return &Evaluator{scorer: scorer, net: net}
}

// Evaluate returns the four mechanisms' results for a client block
// downloading sizeBytes of content, at the given congestion epoch.
func (e *Evaluator) Evaluate(b *world.ClientBlock, sizeBytes int, epoch uint64) ([]Result, error) {
	nsDep, _ := e.scorer.Best(b.LDNS.Endpoint())
	euDep, _ := e.scorer.Best(b.Endpoint())
	if nsDep == nil || euDep == nil {
		return nil, fmt.Errorf("redirect: no live deployment")
	}

	client := b.Endpoint()
	// One cached DNS resolution: a client-LDNS round trip.
	dnsMs := e.net.RTTMs(client, b.LDNS.Endpoint(), epoch)
	rttNS := e.net.RTTMs(client, nsDep.Endpoint(), epoch)
	rttEU := e.net.RTTMs(client, euDep.Endpoint(), epoch)
	transfer := func(d *cdn.Deployment) float64 {
		tp := e.net.ThroughputMbps(client, d.Endpoint(), epoch)
		return float64(sizeBytes) * 8 / (tp * 1e6) * 1000
	}

	// connect = 1 RTT (TCP handshake); request to first byte = 1 RTT.
	results := []Result{
		{
			Mechanism:         NSOnly,
			ServingDeployment: nsDep,
			StartupMs:         dnsMs + 2*rttNS,
			TotalMs:           dnsMs + 2*rttNS + transfer(nsDep),
		},
		{
			Mechanism:         ECS,
			ServingDeployment: euDep,
			StartupMs:         dnsMs + 2*rttEU,
			TotalMs:           dnsMs + 2*rttEU + transfer(euDep),
		},
		{
			// Connect to the NS-chosen server, fetch the metafile
			// (1 RTT), then connect and stream from the EU server.
			Mechanism:         Metafile,
			ServingDeployment: euDep,
			StartupMs:         dnsMs + 2*rttNS + 2*rttEU,
			TotalMs:           dnsMs + 2*rttNS + 2*rttEU + transfer(euDep),
		},
		{
			// Connect to the NS-chosen server, issue the content request
			// and receive the redirect (1 RTT), connect to the second
			// server and re-issue the full request (an extra half RTT of
			// request bytes versus the metafile flow).
			Mechanism:         HTTPRedirect,
			ServingDeployment: euDep,
			StartupMs:         dnsMs + 2*rttNS + 2.5*rttEU,
			TotalMs:           dnsMs + 2*rttNS + 2.5*rttEU + transfer(euDep),
		},
	}
	return results, nil
}

// CrossoverBytes estimates the download size above which a redirection
// mechanism beats NS-only delivery for the given block: the point where
// the transfer-speed advantage of the client-proximal server amortises the
// redirection penalty. Returns 0 when redirection wins even for empty
// downloads, and -1 when it never wins (the NS server is already as good).
func (e *Evaluator) CrossoverBytes(b *world.ClientBlock, mech Mechanism, epoch uint64) (int, error) {
	lo, hi := 0, 1<<30 // up to 1 GB
	better := func(size int) (bool, error) {
		rs, err := e.Evaluate(b, size, epoch)
		if err != nil {
			return false, err
		}
		var ns, m Result
		for _, r := range rs {
			if r.Mechanism == NSOnly {
				ns = r
			}
			if r.Mechanism == mech {
				m = r
			}
		}
		return m.TotalMs < ns.TotalMs, nil
	}
	if ok, err := better(lo); err != nil {
		return 0, err
	} else if ok {
		return 0, nil
	}
	if ok, err := better(hi); err != nil {
		return 0, err
	} else if !ok {
		return -1, nil
	}
	for lo+1 < hi {
		mid := lo + (hi-lo)/2
		ok, err := better(mid)
		if err != nil {
			return 0, err
		}
		if ok {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi, nil
}
