package par

import (
	"math/rand"
	"sync/atomic"
	"testing"
)

func TestMapOrderedResults(t *testing.T) {
	got := Map(100, func(i int) int { return i * i })
	for i, v := range got {
		if v != i*i {
			t.Fatalf("got[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestForEachVisitsAll(t *testing.T) {
	var sum atomic.Int64
	ForEach(1000, func(i int) { sum.Add(int64(i)) })
	if want := int64(1000 * 999 / 2); sum.Load() != want {
		t.Fatalf("sum = %d, want %d", sum.Load(), want)
	}
}

func TestMapEmptyAndSingle(t *testing.T) {
	if got := Map(0, func(i int) int { return i }); len(got) != 0 {
		t.Fatalf("Map(0) returned %d results", len(got))
	}
	if got := Map(1, func(i int) int { return 7 }); len(got) != 1 || got[0] != 7 {
		t.Fatalf("Map(1) = %v", got)
	}
}

func TestSetWorkers(t *testing.T) {
	defer SetWorkers(0)
	SetWorkers(3)
	if Workers() != 3 {
		t.Fatalf("Workers() = %d after SetWorkers(3)", Workers())
	}
	SetWorkers(0)
	if Workers() <= 0 {
		t.Fatalf("Workers() = %d after reset", Workers())
	}
}

func TestResultsIndependentOfWorkerCount(t *testing.T) {
	defer SetWorkers(0)
	compute := func(w int) []float64 {
		SetWorkers(w)
		// Per-shard RNG plus shard-ordered partial sums: the pattern every
		// converted loop uses.
		parts := MapShards(1000, func(shard, lo, hi int) float64 {
			rng := rand.New(rand.NewSource(ChildSeed(42, uint64(shard))))
			var sum float64
			for i := lo; i < hi; i++ {
				sum += rng.Float64() * float64(i)
			}
			return sum
		})
		return parts
	}
	a, b := compute(1), compute(8)
	if len(a) != len(b) {
		t.Fatalf("shard counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("shard %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestShardRangesPartition(t *testing.T) {
	for _, n := range []int{1, 2, 63, 64, 65, 1000, 12345} {
		k := NumShards(n)
		prev := 0
		for s := 0; s < k; s++ {
			lo, hi := ShardRange(n, s)
			if lo != prev {
				t.Fatalf("n=%d shard %d starts at %d, want %d", n, s, lo, prev)
			}
			if hi < lo {
				t.Fatalf("n=%d shard %d inverted [%d,%d)", n, s, lo, hi)
			}
			prev = hi
		}
		if prev != n {
			t.Fatalf("n=%d shards cover %d items", n, prev)
		}
	}
}

func TestNumShardsPureInN(t *testing.T) {
	defer SetWorkers(0)
	SetWorkers(2)
	a := NumShards(500)
	SetWorkers(16)
	if b := NumShards(500); a != b {
		t.Fatalf("NumShards depends on worker count: %d vs %d", a, b)
	}
}

func TestChildSeedDistinct(t *testing.T) {
	seen := map[int64]uint64{}
	for shard := uint64(0); shard < 10000; shard++ {
		s := ChildSeed(1, shard)
		if prev, ok := seen[s]; ok {
			t.Fatalf("shards %d and %d share seed %d", prev, shard, s)
		}
		seen[s] = shard
	}
	if ChildSeed(1, 0) == ChildSeed(2, 0) {
		t.Error("different parents produced the same child seed")
	}
	if ChildSeed(7, 3) != ChildSeed(7, 3) {
		t.Error("ChildSeed is not deterministic")
	}
}

func TestPanicPropagates(t *testing.T) {
	defer SetWorkers(0)
	SetWorkers(4)
	defer func() {
		if r := recover(); r == nil {
			t.Error("panic in worker did not propagate")
		}
	}()
	ForEach(100, func(i int) {
		if i == 37 {
			panic("boom")
		}
	})
}
