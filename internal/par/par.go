// Package par is the deterministic parallel execution framework behind
// every offline sweep in the reproduction: world generation, the figure
// analyses, and the roll-out simulations all fan out through it.
//
// Two rules make parallel runs bit-identical to serial ones, regardless of
// GOMAXPROCS or goroutine scheduling:
//
//  1. Work decomposition is a pure function of the input size. Map and
//     ForEach operate on index ranges; MapShards splits [0, n) into
//     NumShards(n) contiguous ranges that do not depend on the worker
//     count. Workers claim items dynamically (so load balances), but every
//     result lands at its input's index and callers reduce in index order.
//  2. Randomness is split, never shared. A loop that needs random draws
//     derives one child seed per shard with ChildSeed(seed, shard) and
//     builds a private *rand.Rand from it, so the draw sequence seen by
//     shard i is independent of how many workers ran or which worker
//     executed it.
//
// The worker count is a process-global knob (SetWorkers) because — by the
// rules above — it can only change how fast results arrive, never what
// they are.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// workers holds the configured worker count; 0 means "use GOMAXPROCS(0)".
var workers atomic.Int64

// Workers returns the effective worker count used by Map, ForEach and
// MapShards.
func Workers() int {
	if n := workers.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// SetWorkers sets the global worker count. n <= 0 restores the default
// (GOMAXPROCS at call time). Changing the count never changes results —
// only wall-clock time.
func SetWorkers(n int) {
	if n <= 0 {
		workers.Store(0)
		return
	}
	workers.Store(int64(n))
}

// ChildSeed derives a deterministic per-shard seed from a parent seed,
// using the SplitMix64 finalizer (Steele et al., "Fast Splittable
// Pseudorandom Number Generators"). Distinct shards of the same parent get
// well-separated seeds, and shard 0 never collides with the parent itself.
func ChildSeed(seed int64, shard uint64) int64 {
	z := uint64(seed) + (shard+1)*0x9E3779B97F4A7C15
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z)
}

// ForEach runs fn(i) for every i in [0, n) on the worker pool. fn must not
// depend on execution order; writes from distinct indices must go to
// distinct locations.
func ForEach(n int, fn func(i int)) {
	run(n, fn)
}

// Map runs fn(i) for every i in [0, n) on the worker pool and returns the
// results indexed by input position, so the output is identical to the
// serial loop no matter how the work was scheduled.
func Map[T any](n int, fn func(i int) T) []T {
	out := make([]T, n)
	run(n, func(i int) { out[i] = fn(i) })
	return out
}

// maxShards bounds range decomposition: enough shards that dynamic
// claiming load-balances skewed work, few enough that per-shard state
// (datasets, partial sums) stays cheap to merge.
const maxShards = 64

// NumShards returns the number of contiguous ranges MapShards splits
// [0, n) into. It depends only on n — never on the worker count — which is
// what keeps per-shard accumulation (and its floating-point rounding)
// identical across runs.
func NumShards(n int) int {
	if n <= 0 {
		return 0
	}
	if n < maxShards {
		return n
	}
	return maxShards
}

// ShardRange returns the half-open range [lo, hi) of shard s of n items.
func ShardRange(n, s int) (lo, hi int) {
	k := NumShards(n)
	return s * n / k, (s + 1) * n / k
}

// MapShards splits [0, n) into NumShards(n) contiguous ranges and runs
// fn(shard, lo, hi) for each on the worker pool, returning the per-shard
// results in shard order. Callers accumulate into a private value per
// shard and merge the returned slice front to back ("shard-ordered
// merge"), which fixes the floating-point reduction order.
func MapShards[T any](n int, fn func(shard, lo, hi int) T) []T {
	k := NumShards(n)
	out := make([]T, k)
	run(k, func(s int) {
		lo, hi := ShardRange(n, s)
		out[s] = fn(s, lo, hi)
	})
	return out
}

// run executes fn(i) for i in [0, n) on min(Workers(), n) goroutines with
// an atomic claim counter. A panic in any item is re-raised on the caller's
// goroutine after the pool drains.
func run(n int, fn func(int)) {
	if n <= 0 {
		return
	}
	w := Workers()
	if w > n {
		w = n
	}
	if w <= 1 || n == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		panicked atomic.Pointer[any]
	)
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicked.CompareAndSwap(nil, &r)
				}
			}()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
	if p := panicked.Load(); p != nil {
		panic(*p)
	}
}
