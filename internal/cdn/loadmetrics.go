package cdn

import (
	"strings"

	"eum/internal/telemetry"
)

// RegisterLoadMetrics wires the platform's load/utilisation gauges into reg
// under the cdn_ namespace: platform-wide aggregates plus one utilisation
// gauge per deployment. Load and liveness are atomics, so scraping is safe
// beside live query traffic and a ticking load monitor.
//
// The registry has no label support by design (see telemetry package doc),
// so per-deployment series are flat gauges with the deployment name mangled
// into the metric name, e.g. cdn_deployment_utilisation_US_0042.
func (p *Platform) RegisterLoadMetrics(reg *telemetry.Registry) {
	reg.Gauge("cdn_load_total",
		"Summed load across live servers, in demand units.", func() float64 {
			var sum float64
			for _, d := range p.Deployments {
				sum += d.Load()
			}
			return sum
		})
	reg.Gauge("cdn_capacity_total",
		"Summed live capacity across deployments (brownout-adjusted).",
		p.TotalCapacity)
	reg.Gauge("cdn_utilisation_max",
		"Highest per-deployment load/capacity ratio.", func() float64 {
			var max float64
			for _, d := range p.Deployments {
				if u := d.Utilisation(); u > max {
					max = u
				}
			}
			return max
		})
	reg.Gauge("cdn_utilisation_mean",
		"Mean per-deployment load/capacity ratio.", func() float64 {
			if len(p.Deployments) == 0 {
				return 0
			}
			var sum float64
			for _, d := range p.Deployments {
				sum += d.Utilisation()
			}
			return sum / float64(len(p.Deployments))
		})
	for _, d := range p.Deployments {
		d := d
		reg.Gauge("cdn_deployment_utilisation_"+metricName(d.Name),
			"Load/capacity ratio of deployment "+d.Name+".", d.Utilisation)
	}
}

// metricName mangles a deployment name into a legal Prometheus metric-name
// suffix: every character outside [a-zA-Z0-9_] becomes '_'.
func metricName(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			return r
		default:
			return '_'
		}
	}, s)
}
