package cdn

import (
	"sync"
	"testing"

	"eum/internal/world"
)

var testW = world.MustGenerate(world.Config{Seed: 3, NumBlocks: 3000})

func TestGenerateUniverse(t *testing.T) {
	p := MustGenerateUniverse(testW, Config{Seed: 1, NumDeployments: 500, ServersPerDeployment: 8})
	if len(p.Deployments) != 500 {
		t.Fatalf("deployments = %d, want 500", len(p.Deployments))
	}
	if p.NumServers() < 500 {
		t.Errorf("servers = %d, want >= 500", p.NumServers())
	}
	if got := len(p.Countries()); got != len(world.Countries) {
		t.Errorf("countries with deployments = %d, want %d", got, len(world.Countries))
	}
	for _, d := range p.Deployments {
		if !d.Loc.IsValid() {
			t.Fatalf("deployment %s invalid location", d.Name)
		}
		if len(d.Servers) == 0 {
			t.Fatalf("deployment %s has no servers", d.Name)
		}
		if !d.Alive() {
			t.Fatalf("deployment %s not alive at creation", d.Name)
		}
	}
}

func TestGenerateUniverseRejectsBadConfig(t *testing.T) {
	if _, err := GenerateUniverse(testW, Config{Seed: 1, NumDeployments: 0}); err == nil {
		t.Error("zero deployments accepted")
	}
}

func TestGenerateUniverseDeterministic(t *testing.T) {
	p1 := MustGenerateUniverse(testW, Config{Seed: 9, NumDeployments: 100})
	p2 := MustGenerateUniverse(testW, Config{Seed: 9, NumDeployments: 100})
	for i := range p1.Deployments {
		if p1.Deployments[i].Loc != p2.Deployments[i].Loc ||
			len(p1.Deployments[i].Servers) != len(p2.Deployments[i].Servers) {
			t.Fatalf("deployment %d differs between identical seeds", i)
		}
	}
}

func TestSubset(t *testing.T) {
	p := MustGenerateUniverse(testW, Config{Seed: 2, NumDeployments: 300})
	s := p.Subset(40, 7)
	if len(s.Deployments) != 40 {
		t.Fatalf("subset size = %d", len(s.Deployments))
	}
	// Same seed -> same subset; different seed -> different ordering.
	s2 := p.Subset(40, 7)
	for i := range s.Deployments {
		if s.Deployments[i] != s2.Deployments[i] {
			t.Fatal("subset not deterministic")
		}
	}
	s3 := p.Subset(40, 8)
	diff := false
	for i := range s.Deployments {
		if s.Deployments[i] != s3.Deployments[i] {
			diff = true
			break
		}
	}
	if !diff {
		t.Error("different subset seeds gave identical ordering")
	}
	// Oversized request clamps.
	if got := p.Subset(9999, 1); len(got.Deployments) != 300 {
		t.Errorf("oversized subset = %d", len(got.Deployments))
	}
}

func TestSubsetPrefixProperty(t *testing.T) {
	// Fig 25 methodology: growing N must extend the same random ordering,
	// so Subset(20, s) is a prefix of Subset(40, s).
	p := MustGenerateUniverse(testW, Config{Seed: 2, NumDeployments: 200})
	small := p.Subset(20, 3)
	large := p.Subset(40, 3)
	for i := range small.Deployments {
		if small.Deployments[i] != large.Deployments[i] {
			t.Fatalf("subset(20) not a prefix of subset(40) at %d", i)
		}
	}
}

func TestServerLoadTracking(t *testing.T) {
	s := &Server{cap: 10}
	s.SetAlive(true)
	if !s.AddLoad(4) {
		t.Error("within-capacity AddLoad reported overload")
	}
	if s.AddLoad(7) {
		t.Error("over-capacity AddLoad reported ok")
	}
	if got := s.Load(); got != 11 {
		t.Errorf("load = %v", got)
	}
	if u := s.Utilisation(); u != 1.1 {
		t.Errorf("utilisation = %v", u)
	}
	s.AddLoad(-100)
	if s.Load() != 0 {
		t.Error("negative load not clamped")
	}
	s.ResetLoad()
	if s.Load() != 0 {
		t.Error("ResetLoad failed")
	}
}

func TestServerLoadConcurrent(t *testing.T) {
	s := &Server{cap: 1e9}
	s.SetAlive(true)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				s.AddLoad(1)
			}
		}()
	}
	wg.Wait()
	if got := s.Load(); got != 8000 {
		t.Errorf("concurrent load = %v, want 8000", got)
	}
}

func TestLivenessAndCapacity(t *testing.T) {
	p := MustGenerateUniverse(testW, Config{Seed: 5, NumDeployments: 10, ServersPerDeployment: 4})
	d := p.Deployments[0]
	before := d.Capacity()
	if before <= 0 {
		t.Fatal("no capacity")
	}
	for _, s := range d.Servers {
		s.SetAlive(false)
	}
	if d.Alive() {
		t.Error("deployment with all servers dead reports alive")
	}
	if d.Capacity() != 0 {
		t.Error("dead deployment has capacity")
	}
	d.Servers[0].SetAlive(true)
	if !d.Alive() || len(d.LiveServers()) != 1 {
		t.Error("single revived server not reflected")
	}
}

func TestUtilisationZeroCapacity(t *testing.T) {
	s := &Server{cap: 0}
	s.SetAlive(true)
	s.AddLoad(1)
	if u := s.Utilisation(); !(u > 1e18) {
		t.Errorf("zero-capacity utilisation = %v, want +Inf", u)
	}
}

func TestPlatformResetLoad(t *testing.T) {
	p := MustGenerateUniverse(testW, Config{Seed: 6, NumDeployments: 5})
	for _, d := range p.Deployments {
		for _, s := range d.Servers {
			s.AddLoad(3)
		}
	}
	p.ResetLoad()
	for _, d := range p.Deployments {
		if d.Load() != 0 {
			t.Fatalf("deployment %s load %v after reset", d.Name, d.Load())
		}
	}
}

func TestDeploymentDistribution(t *testing.T) {
	// Big-demand countries get more deployments.
	p := MustGenerateUniverse(testW, Config{Seed: 4, NumDeployments: 1000})
	counts := map[string]int{}
	for _, d := range p.Deployments {
		counts[d.Country]++
	}
	if counts["US"] <= counts["SG"] {
		t.Errorf("US (%d) should out-deploy SG (%d)", counts["US"], counts["SG"])
	}
	if counts["US"] < 100 {
		t.Errorf("US deployments = %d, want roughly proportional to ~30%% demand", counts["US"])
	}
}

func TestEndpointIDsDistinctFromWorld(t *testing.T) {
	p := MustGenerateUniverse(testW, Config{Seed: 4, NumDeployments: 50})
	worldIDs := map[uint64]bool{}
	for _, b := range testW.Blocks {
		worldIDs[b.ID] = true
	}
	for _, l := range testW.LDNSes {
		worldIDs[l.ID] = true
	}
	for _, d := range p.Deployments {
		if worldIDs[d.ID] {
			t.Fatalf("deployment ID %d collides with a world entity", d.ID)
		}
	}
}
