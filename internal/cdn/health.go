package cdn

import (
	"fmt"
	"sync/atomic"
	"time"

	"eum/internal/telemetry"
)

// FaultInjector decides which servers are failed at a given simulated
// time. Implementations model crash/recovery schedules or random failure
// processes; the Monitor polls them the way the real platform's liveness
// probes poll machines (§2.2: "liveness and load information of all
// components ... is collected in real-time").
type FaultInjector interface {
	Failed(s *Server, now time.Time) bool
}

// ScheduledFaults fails specific servers during fixed windows.
type ScheduledFaults struct {
	// Windows maps server ID to down intervals [From, To).
	Windows map[uint64][]FaultWindow
}

// FaultWindow is one outage interval.
type FaultWindow struct {
	From, To time.Time
}

// Failed implements FaultInjector.
func (f *ScheduledFaults) Failed(s *Server, now time.Time) bool {
	for _, w := range f.Windows[s.ID] {
		if !now.Before(w.From) && now.Before(w.To) {
			return true
		}
	}
	return false
}

// Add schedules an outage for a server.
func (f *ScheduledFaults) Add(serverID uint64, from, to time.Time) {
	if f.Windows == nil {
		f.Windows = map[uint64][]FaultWindow{}
	}
	f.Windows[serverID] = append(f.Windows[serverID], FaultWindow{from, to})
}

// RandomFaults fails each server independently with probability P per
// probe epoch, deterministically in the server ID and epoch (so
// simulations are reproducible).
type RandomFaults struct {
	// P is the per-epoch failure probability.
	P float64
	// EpochLength quantises time into failure epochs (default 1h).
	EpochLength time.Duration
	// Seed decorrelates runs.
	Seed uint64
}

// Failed implements FaultInjector.
func (f *RandomFaults) Failed(s *Server, now time.Time) bool {
	el := f.EpochLength
	if el <= 0 {
		el = time.Hour
	}
	epoch := uint64(now.UnixNano() / int64(el))
	h := splitmix(s.ID ^ splitmix(epoch^f.Seed))
	u := float64(h>>11) / float64(1<<53)
	return u < f.P
}

func splitmix(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Monitor is the liveness-probing loop: on each interval it asks the fault
// injector about every server and updates platform liveness, notifying the
// listener about deployments whose live-server set changed (so scoring
// caches can be invalidated).
//
// Liveness transitions are flap-damped: a server only changes state after
// flapK consecutive probes disagree with its current state, so a flapping
// injector (or a machine rebooting in a loop) cannot thrash the change
// feed with a map rebuild per probe. The default threshold of 1 keeps the
// legacy react-immediately behaviour.
type Monitor struct {
	platform *Platform
	faults   FaultInjector
	interval time.Duration
	onChange func(*Deployment)

	last time.Time
	// probes counts liveness probes issued. Atomic so a telemetry scrape
	// can read it while the monitor goroutine is mid-Tick.
	probes atomic.Uint64
	// transitions counts liveness flips actually applied (atomic, as
	// probes).
	transitions atomic.Uint64
	// flapK is how many consecutive probes must disagree with a server's
	// current liveness before it flips (>= 1).
	flapK int
	// streaks tracks, per server ID, how many consecutive probes have
	// disagreed with its current state. Entries are removed as soon as a
	// probe agrees again or the server flips.
	streaks map[uint64]int
}

// NewMonitor creates a liveness monitor. onChange may be nil. The interval
// defaults to 10 seconds of simulated time.
func NewMonitor(p *Platform, f FaultInjector, interval time.Duration, onChange func(*Deployment)) (*Monitor, error) {
	if p == nil || f == nil {
		return nil, fmt.Errorf("cdn: nil platform or fault injector")
	}
	if interval <= 0 {
		interval = 10 * time.Second
	}
	return &Monitor{
		platform: p, faults: f, interval: interval, onChange: onChange,
		flapK:   1,
		streaks: map[uint64]int{},
	}, nil
}

// Probes returns the number of liveness probes issued so far.
func (m *Monitor) Probes() uint64 { return m.probes.Load() }

// Transitions returns how many server liveness flips have been applied.
func (m *Monitor) Transitions() uint64 { return m.transitions.Load() }

// RegisterMetrics wires the monitor's probe/transition counters and the
// platform's live-server gauges into reg under the cdn_ namespace. The
// gauges walk the deployment list at scrape time — liveness flags are
// atomics, so scraping is safe beside a ticking monitor.
func (m *Monitor) RegisterMetrics(reg *telemetry.Registry) {
	reg.Counter("cdn_health_probes_total",
		"Liveness probes issued.", m.probes.Load)
	reg.Counter("cdn_health_transitions_total",
		"Server liveness flips applied after flap damping.", m.transitions.Load)
	reg.Gauge("cdn_servers_live",
		"CDN servers currently considered alive.", func() float64 {
			live := 0
			for _, d := range m.platform.Deployments {
				for _, s := range d.Servers {
					if s.Alive() {
						live++
					}
				}
			}
			return float64(live)
		})
	reg.Gauge("cdn_servers_total",
		"CDN servers in the platform.", func() float64 {
			return float64(m.platform.NumServers())
		})
}

// SetFlapThreshold sets how many consecutive probes must disagree with a
// server's current liveness before the monitor flips it (flap damping).
// Values below 1 are clamped to 1 (flip on the first disagreeing probe,
// the legacy behaviour). Call before the first Tick; the monitor is driven
// from a single goroutine.
func (m *Monitor) SetFlapThreshold(k int) {
	if k < 1 {
		k = 1
	}
	m.flapK = k
}

// FlapThreshold returns the configured flap-damping threshold.
func (m *Monitor) FlapThreshold() int { return m.flapK }

// Tick probes all servers if the interval has elapsed, returning how many
// deployments changed liveness state (and false if it was not yet time).
func (m *Monitor) Tick(now time.Time) (changed int, probed bool) {
	if !m.last.IsZero() && now.Sub(m.last) < m.interval {
		return 0, false
	}
	m.last = now
	for _, d := range m.platform.Deployments {
		depChanged := false
		for _, s := range d.Servers {
			m.probes.Add(1)
			wantAlive := !m.faults.Failed(s, now)
			if s.Alive() == wantAlive {
				if len(m.streaks) > 0 {
					delete(m.streaks, s.ID)
				}
				continue
			}
			if m.flapK > 1 {
				streak := m.streaks[s.ID] + 1
				if streak < m.flapK {
					m.streaks[s.ID] = streak
					continue
				}
				delete(m.streaks, s.ID)
			}
			s.SetAlive(wantAlive)
			m.transitions.Add(1)
			depChanged = true
		}
		if depChanged {
			changed++
			if m.onChange != nil {
				m.onChange(d)
			}
		}
	}
	return changed, true
}
