package cdn

import (
	"testing"
	"time"

	"eum/internal/world"
)

var healthW = world.MustGenerate(world.Config{Seed: 81, NumBlocks: 800})

var h0 = time.Date(2014, 4, 1, 0, 0, 0, 0, time.UTC)

func healthPlatform(t *testing.T) *Platform {
	t.Helper()
	return MustGenerateUniverse(healthW, Config{Seed: 81, NumDeployments: 8, ServersPerDeployment: 4})
}

func TestNewMonitorValidation(t *testing.T) {
	p := healthPlatform(t)
	if _, err := NewMonitor(nil, &ScheduledFaults{}, 0, nil); err == nil {
		t.Error("nil platform accepted")
	}
	if _, err := NewMonitor(p, nil, 0, nil); err == nil {
		t.Error("nil faults accepted")
	}
}

func TestScheduledFaultLifecycle(t *testing.T) {
	p := healthPlatform(t)
	victim := p.Deployments[0].Servers[0]
	faults := &ScheduledFaults{}
	faults.Add(victim.ID, h0.Add(time.Minute), h0.Add(2*time.Minute))

	var notified []*Deployment
	mon, err := NewMonitor(p, faults, 10*time.Second, func(d *Deployment) {
		notified = append(notified, d)
	})
	if err != nil {
		t.Fatal(err)
	}

	// Before the outage: nothing changes.
	if changed, probed := mon.Tick(h0); !probed || changed != 0 {
		t.Fatalf("t0: changed=%d probed=%v", changed, probed)
	}
	if !victim.Alive() {
		t.Fatal("server dead before its outage")
	}

	// During the outage: exactly one deployment changes, listener fires.
	if changed, _ := mon.Tick(h0.Add(time.Minute)); changed != 1 {
		t.Fatalf("outage start: changed=%d", changed)
	}
	if victim.Alive() {
		t.Fatal("server alive during outage")
	}
	if len(notified) != 1 || notified[0] != p.Deployments[0] {
		t.Fatalf("notifications = %v", notified)
	}

	// Still down, no new change events.
	if changed, _ := mon.Tick(h0.Add(90 * time.Second)); changed != 0 {
		t.Fatalf("mid-outage: changed=%d", changed)
	}

	// Recovery.
	if changed, _ := mon.Tick(h0.Add(2 * time.Minute)); changed != 1 {
		t.Fatalf("recovery: changed=%d", changed)
	}
	if !victim.Alive() {
		t.Fatal("server not revived after outage")
	}
	if len(notified) != 2 {
		t.Fatalf("notifications = %d, want 2", len(notified))
	}
}

func TestMonitorInterval(t *testing.T) {
	p := healthPlatform(t)
	mon, _ := NewMonitor(p, &ScheduledFaults{}, time.Minute, nil)
	if _, probed := mon.Tick(h0); !probed {
		t.Fatal("first tick must probe")
	}
	before := mon.Probes()
	if _, probed := mon.Tick(h0.Add(30 * time.Second)); probed {
		t.Error("early tick probed")
	}
	if mon.Probes() != before {
		t.Error("early tick issued probes")
	}
	if _, probed := mon.Tick(h0.Add(time.Minute)); !probed {
		t.Error("on-time tick did not probe")
	}
}

func TestRandomFaultsDeterministic(t *testing.T) {
	f := &RandomFaults{P: 0.3, EpochLength: time.Hour, Seed: 5}
	p := healthPlatform(t)
	s := p.Deployments[0].Servers[0]
	a := f.Failed(s, h0)
	b := f.Failed(s, h0.Add(time.Minute)) // same epoch
	if a != b {
		t.Error("same epoch gave different outcomes")
	}
	// Over many epochs, failure frequency approximates P.
	fails := 0
	n := 2000
	for i := 0; i < n; i++ {
		if f.Failed(s, h0.Add(time.Duration(i)*time.Hour)) {
			fails++
		}
	}
	got := float64(fails) / float64(n)
	if got < 0.25 || got > 0.35 {
		t.Errorf("failure rate = %.3f, want ~0.3", got)
	}
}

func TestRandomFaultsIndependentAcrossServers(t *testing.T) {
	f := &RandomFaults{P: 0.5, Seed: 9}
	p := healthPlatform(t)
	outcomes := map[bool]int{}
	for _, d := range p.Deployments {
		for _, s := range d.Servers {
			outcomes[f.Failed(s, h0)]++
		}
	}
	if outcomes[true] == 0 || outcomes[false] == 0 {
		t.Errorf("outcomes not mixed: %v", outcomes)
	}
}

func TestFlapDampingDelaysTransitions(t *testing.T) {
	p := healthPlatform(t)
	victim := p.Deployments[0].Servers[0]
	faults := &ScheduledFaults{}
	faults.Add(victim.ID, h0, h0.Add(time.Hour))

	var notified int
	mon, err := NewMonitor(p, faults, 10*time.Second, func(*Deployment) { notified++ })
	if err != nil {
		t.Fatal(err)
	}
	mon.SetFlapThreshold(3)

	// Probes 1 and 2 disagree with the server's liveness but must not flip
	// it yet; probe 3 completes the streak.
	for i := 0; i < 2; i++ {
		if changed, _ := mon.Tick(h0.Add(time.Duration(i) * 10 * time.Second)); changed != 0 {
			t.Fatalf("probe %d flipped liveness before the flap threshold", i+1)
		}
		if !victim.Alive() {
			t.Fatalf("probe %d: server dead before the flap threshold", i+1)
		}
	}
	if changed, _ := mon.Tick(h0.Add(20 * time.Second)); changed != 1 {
		t.Fatal("third consecutive probe did not flip liveness")
	}
	if victim.Alive() {
		t.Fatal("server alive after three down probes")
	}
	if notified != 1 {
		t.Fatalf("notifications = %d, want 1", notified)
	}
	if mon.Transitions() != 1 {
		t.Fatalf("transitions = %d, want 1", mon.Transitions())
	}
}

// alternatingFaults reports a server failed on every other probe — the
// worst-case flapping injector.
type alternatingFaults struct{ n int }

func (f *alternatingFaults) Failed(*Server, time.Time) bool {
	f.n++
	return f.n%2 == 1
}

func TestFlapDampingSuppressesFlapping(t *testing.T) {
	p := &Platform{Deployments: []*Deployment{healthPlatform(t).Deployments[0]}}
	p.Deployments[0].Servers = p.Deployments[0].Servers[:1]
	mon, err := NewMonitor(p, &alternatingFaults{}, 10*time.Second, nil)
	if err != nil {
		t.Fatal(err)
	}
	mon.SetFlapThreshold(2)
	for i := 0; i < 20; i++ {
		if changed, _ := mon.Tick(h0.Add(time.Duration(i) * 10 * time.Second)); changed != 0 {
			t.Fatalf("tick %d: flapping injector flipped liveness", i)
		}
	}
	if mon.Transitions() != 0 {
		t.Fatalf("transitions = %d, want 0 under per-probe flapping", mon.Transitions())
	}
	if !p.Deployments[0].Servers[0].Alive() {
		t.Fatal("server thrashed dead by a flapping injector")
	}
}

func TestFlapThresholdClamped(t *testing.T) {
	p := healthPlatform(t)
	mon, _ := NewMonitor(p, &ScheduledFaults{}, time.Minute, nil)
	mon.SetFlapThreshold(0)
	if mon.FlapThreshold() != 1 {
		t.Fatalf("threshold = %d, want clamp to 1", mon.FlapThreshold())
	}
}

func TestZeroProbabilityNeverFails(t *testing.T) {
	f := &RandomFaults{P: 0}
	p := healthPlatform(t)
	for i := 0; i < 50; i++ {
		if f.Failed(p.Deployments[0].Servers[0], h0.Add(time.Duration(i)*time.Hour)) {
			t.Fatal("P=0 failed a server")
		}
	}
}
