package cdn

import (
	"math"
	"sync"
	"testing"

	"eum/internal/telemetry"
)

func twoServerDeployment(cap1, cap2 float64) *Deployment {
	d := &Deployment{ID: 1, Name: "XX-0001"}
	for i, c := range []float64{cap1, cap2} {
		s := &Server{ID: uint64(10 + i), Deployment: d, cap: c}
		s.SetAlive(true)
		d.Servers = append(d.Servers, s)
	}
	return d
}

func TestCapacityFactorBrownout(t *testing.T) {
	d := twoServerDeployment(4, 4)
	if got := d.CapacityFactor(); got != 1 {
		t.Fatalf("zero-value capacity factor = %v, want 1", got)
	}
	if got := d.Capacity(); got != 8 {
		t.Fatalf("healthy capacity = %v, want 8", got)
	}

	d.SetCapacityFactor(0.25)
	if got := d.CapacityFactor(); got != 0.25 {
		t.Errorf("capacity factor = %v, want 0.25", got)
	}
	if got := d.Capacity(); got != 2 {
		t.Errorf("browned-out capacity = %v, want 2", got)
	}

	// Brownout composes with liveness: a dead server leaves the factor
	// applied to the remaining live capacity.
	d.Servers[0].SetAlive(false)
	if got := d.Capacity(); got != 1 {
		t.Errorf("browned-out capacity with one dead server = %v, want 1", got)
	}

	// Out-of-range factors clamp.
	d.SetCapacityFactor(-3)
	if got := d.CapacityFactor(); got != 0 {
		t.Errorf("negative factor clamped to %v, want 0", got)
	}
	d.SetCapacityFactor(7)
	if got := d.CapacityFactor(); got != 1 {
		t.Errorf("over-unity factor clamped to %v, want 1", got)
	}
}

func TestDeploymentUtilisation(t *testing.T) {
	d := twoServerDeployment(5, 5)
	if got := d.Utilisation(); got != 0 {
		t.Fatalf("idle utilisation = %v, want 0", got)
	}
	d.Servers[0].AddLoad(5)
	if got := d.Utilisation(); got != 0.5 {
		t.Errorf("utilisation = %v, want 0.5", got)
	}
	// Halving capacity doubles utilisation at the same load.
	d.SetCapacityFactor(0.5)
	if got := d.Utilisation(); got != 1 {
		t.Errorf("browned-out utilisation = %v, want 1", got)
	}
	// Zero capacity: idle reads 0, loaded reads +Inf.
	d.SetCapacityFactor(0)
	if got := d.Utilisation(); !math.IsInf(got, 1) {
		t.Errorf("loaded zero-capacity utilisation = %v, want +Inf", got)
	}
	d.ResetLoad()
	if got := d.Utilisation(); got != 0 {
		t.Errorf("idle zero-capacity utilisation = %v, want 0", got)
	}
}

func TestAddLoadNegativeDeltaClamp(t *testing.T) {
	cases := []struct {
		name   string
		deltas []float64
		want   float64
	}{
		{"underflow clamps", []float64{3, -10}, 0},
		{"exact zero", []float64{4, -4}, 0},
		{"recover after clamp", []float64{-5, 2}, 2},
		{"repeated negatives", []float64{-1, -1, -1}, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := &Server{cap: 10}
			s.SetAlive(true)
			for _, d := range tc.deltas {
				s.AddLoad(d)
			}
			if got := s.Load(); got != tc.want {
				t.Errorf("load after %v = %v, want %v", tc.deltas, got, tc.want)
			}
		})
	}
}

// TestAddLoadConcurrentMixed hammers the AddLoad CAS loop with concurrent
// positive and negative deltas (run under -race). With a preload large
// enough that the clamp never engages, the adds and removes must balance
// exactly; a second phase drives the clamp path concurrently and checks
// load never goes negative.
func TestAddLoadConcurrentMixed(t *testing.T) {
	s := &Server{cap: 1e9}
	s.SetAlive(true)
	s.AddLoad(100000)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(2)
		go func() {
			defer wg.Done()
			for j := 0; j < 2000; j++ {
				s.AddLoad(1)
			}
		}()
		go func() {
			defer wg.Done()
			for j := 0; j < 2000; j++ {
				s.AddLoad(-1)
			}
		}()
	}
	wg.Wait()
	if got := s.Load(); got != 100000 {
		t.Errorf("balanced concurrent load = %v, want 100000", got)
	}

	// Clamp phase: mostly-negative traffic around zero.
	s.ResetLoad()
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 2000; j++ {
				s.AddLoad(0.5)
				s.AddLoad(-2)
			}
		}()
	}
	wg.Wait()
	if got := s.Load(); got < 0 {
		t.Errorf("load went negative under concurrent clamping: %v", got)
	}
}

func TestScaleLoadDecay(t *testing.T) {
	d := twoServerDeployment(10, 10)
	d.Servers[0].AddLoad(8)
	d.Servers[1].AddLoad(4)
	d.ScaleLoad(0.5)
	if got := d.Load(); got != 6 {
		t.Errorf("load after 0.5 decay = %v, want 6", got)
	}
	d.ScaleLoad(-1) // clamps to 0
	if got := d.Load(); got != 0 {
		t.Errorf("load after negative scale = %v, want 0", got)
	}
}

func TestRegisterLoadMetrics(t *testing.T) {
	p := MustGenerateUniverse(testW, Config{Seed: 9, NumDeployments: 4, ServersPerDeployment: 3})
	reg := telemetry.NewRegistry()
	p.RegisterLoadMetrics(reg)

	d := p.Deployments[0]
	d.Servers[0].AddLoad(d.Capacity()) // utilisation 1 on one deployment
	snap := reg.Snapshot()
	if got := snap.Gauges["cdn_utilisation_max"]; got != 1 {
		t.Errorf("cdn_utilisation_max = %v, want 1", got)
	}
	name := "cdn_deployment_utilisation_" + metricName(d.Name)
	if got, ok := snap.Gauges[name]; !ok || got != 1 {
		t.Errorf("%s = %v (present=%v), want 1", name, got, ok)
	}
	if got := snap.Gauges["cdn_load_total"]; got != d.Load() {
		t.Errorf("cdn_load_total = %v, want %v", got, d.Load())
	}
	mean := snap.Gauges["cdn_utilisation_mean"]
	if mean <= 0 || mean >= 1 {
		t.Errorf("cdn_utilisation_mean = %v, want in (0,1)", mean)
	}
}

func TestMetricNameMangling(t *testing.T) {
	if got := metricName("US-0042"); got != "US_0042" {
		t.Errorf("metricName(US-0042) = %q", got)
	}
	if got := metricName("a.b c:d"); got != "a_b_c_d" {
		t.Errorf("metricName(a.b c:d) = %q", got)
	}
}
