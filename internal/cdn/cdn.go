// Package cdn models the content delivery platform itself: server
// deployment locations ("clusters") around the world, the servers in them,
// and their real-time liveness, load and cache state.
//
// It substitutes for the paper's production platform of 170,000+ servers in
// 2642 candidate deployment locations across 100 countries (§6), at a
// configurable scale. Deployment locations are generated around the world
// model's population centres, since CDNs deploy where clients are.
package cdn

import (
	"fmt"
	"math"
	"math/rand"
	"net/netip"
	"sort"
	"sync/atomic"

	"eum/internal/geo"
	"eum/internal/netmodel"
	"eum/internal/world"
)

// Server is a single content server in a deployment. Liveness and load are
// held in atomics: the mapping hot path reads them for every candidate
// deployment on every query, so they must not serialize concurrent queries
// on a mutex.
type Server struct {
	ID         uint64
	Addr       netip.Addr
	Deployment *Deployment

	alive atomic.Bool
	load  atomic.Uint64 // float64 bits; see Load/AddLoad
	cap   float64       // capacity in demand units; immutable after creation
}

// Alive reports whether the server is live.
func (s *Server) Alive() bool { return s.alive.Load() }

// SetAlive marks the server live or dead (failure injection).
func (s *Server) SetAlive(v bool) { s.alive.Store(v) }

// Load returns the server's current load.
func (s *Server) Load() float64 {
	return math.Float64frombits(s.load.Load())
}

// Capacity returns the server's capacity.
func (s *Server) Capacity() float64 { return s.cap }

// AddLoad adds (or with a negative delta, removes) load, reporting whether
// the server remains within capacity afterwards.
func (s *Server) AddLoad(delta float64) bool {
	for {
		old := s.load.Load()
		v := math.Float64frombits(old) + delta
		if v < 0 {
			v = 0
		}
		if s.load.CompareAndSwap(old, math.Float64bits(v)) {
			return v <= s.cap
		}
	}
}

// ResetLoad zeroes the server's load (start of a load-balancing interval).
func (s *Server) ResetLoad() { s.load.Store(0) }

// ScaleLoad multiplies the server's load by f (clamped at zero). Live
// servers accumulate demand units per answer; a periodic exponential decay
// via ScaleLoad turns the cumulative counter into a rate-like gauge for
// the load-feedback loop.
func (s *Server) ScaleLoad(f float64) {
	if f < 0 {
		f = 0
	}
	for {
		old := s.load.Load()
		v := math.Float64frombits(old) * f
		if s.load.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Utilisation returns load/capacity.
func (s *Server) Utilisation() float64 {
	if s.cap == 0 {
		return math.Inf(1)
	}
	return s.Load() / s.cap
}

// Deployment is a server cluster at one location — the unit the global
// load balancer assigns clients to.
type Deployment struct {
	ID      uint64
	Name    string
	Loc     geo.Point
	ASN     uint32
	Country string
	Servers []*Server

	// capLoss is the fractional capacity reduction in [0,1], stored as
	// float64 bits. A brownout (cooling failure, partial rack loss, admin
	// drain) reduces effective capacity without flipping liveness. Stored
	// as a *loss* rather than a factor so the zero value means "full
	// capacity" and existing Deployment literals stay valid.
	capLoss atomic.Uint64
}

// Endpoint returns the deployment as a network-model endpoint.
func (d *Deployment) Endpoint() netmodel.Endpoint {
	return netmodel.Endpoint{ID: d.ID, Loc: d.Loc, ASN: d.ASN, Access: netmodel.AccessBackbone}
}

// CapacityFactor returns the fraction of nominal capacity currently
// available, in [0,1]. 1 means healthy; below 1 the deployment is browned
// out (see SetCapacityFactor).
func (d *Deployment) CapacityFactor() float64 {
	return 1 - math.Float64frombits(d.capLoss.Load())
}

// SetCapacityFactor sets the fraction of nominal capacity available,
// clamped to [0,1]. 0 means fully browned out (no usable capacity even if
// servers answer health probes); 1 restores full capacity.
func (d *Deployment) SetCapacityFactor(f float64) {
	if f < 0 {
		f = 0
	} else if f > 1 {
		f = 1
	}
	d.capLoss.Store(math.Float64bits(1 - f))
}

// Capacity returns the summed capacity of live servers, scaled by the
// brownout capacity factor.
func (d *Deployment) Capacity() float64 {
	var sum float64
	for _, s := range d.Servers {
		if s.Alive() {
			sum += s.cap
		}
	}
	return sum * d.CapacityFactor()
}

// Load returns the summed load of live servers.
func (d *Deployment) Load() float64 {
	var sum float64
	for _, s := range d.Servers {
		if s.Alive() {
			sum += s.Load()
		}
	}
	return sum
}

// LiveServers returns the deployment's live servers.
func (d *Deployment) LiveServers() []*Server {
	out := make([]*Server, 0, len(d.Servers))
	for _, s := range d.Servers {
		if s.Alive() {
			out = append(out, s)
		}
	}
	return out
}

// Alive reports whether the deployment has at least one live server. It
// scans directly rather than materialising the live-server slice: the
// load balancer asks this for every candidate on every query.
func (d *Deployment) Alive() bool {
	for _, s := range d.Servers {
		if s.Alive() {
			return true
		}
	}
	return false
}

// Utilisation returns the deployment's load/capacity ratio. A deployment
// with zero capacity (all servers dead, or fully browned out) reports 0
// when idle and +Inf when carrying load.
func (d *Deployment) Utilisation() float64 {
	c := d.Capacity()
	if c <= 0 {
		if d.Load() <= 0 {
			return 0
		}
		return math.Inf(1)
	}
	return d.Load() / c
}

// ResetLoad zeroes every server's load.
func (d *Deployment) ResetLoad() {
	for _, s := range d.Servers {
		s.ResetLoad()
	}
}

// ScaleLoad multiplies every server's load by f (see Server.ScaleLoad).
func (d *Deployment) ScaleLoad(f float64) {
	for _, s := range d.Servers {
		s.ScaleLoad(f)
	}
}

// Platform is a set of deployments with their servers.
type Platform struct {
	Deployments []*Deployment
}

// Config parameterises universe generation.
type Config struct {
	// Seed makes generation deterministic.
	Seed int64
	// NumDeployments is the number of candidate deployment locations
	// (the paper's universe has 2642).
	NumDeployments int
	// ServersPerDeployment is the mean cluster size; actual sizes vary
	// around it.
	ServersPerDeployment int
}

// DefaultConfig mirrors the paper's deployment universe at full scale.
func DefaultConfig() Config {
	return Config{Seed: 1, NumDeployments: 2642, ServersPerDeployment: 12}
}

// GenerateUniverse creates a deployment universe over the world model's
// geography: locations are placed in and around population centres,
// proportionally to country demand, mirroring how a CDN deploys close to
// clients. Generation is deterministic in cfg.Seed.
func GenerateUniverse(w *world.World, cfg Config) (*Platform, error) {
	if cfg.NumDeployments <= 0 {
		return nil, fmt.Errorf("cdn: NumDeployments must be positive, got %d", cfg.NumDeployments)
	}
	if cfg.ServersPerDeployment <= 0 {
		cfg.ServersPerDeployment = 12
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	p := &Platform{}

	// Per-country deployment counts proportional to demand with a floor,
	// echoing the paper's "good coverage of the global Internet".
	type slot struct {
		country string
		loc     geo.Point
		asn     uint32
	}
	// Deployment density follows demand, discounted by infrastructure
	// tier: CDN build-out in well-connected markets (tier 1) is dense,
	// while emerging markets host far fewer clusters per unit of demand —
	// the 2014-era coverage gap that makes end-user mapping matter most
	// exactly where client-LDNS distances are largest.
	tierFactor := map[int]float64{1: 1.0, 2: 0.4, 3: 0.15}
	var weightSum float64
	weights := make([]float64, len(w.Countries))
	for i, c := range w.Countries {
		f := tierFactor[c.Spec.InfraTier]
		if f == 0 {
			f = 0.4
		}
		weights[i] = c.Demand * f
		weightSum += weights[i]
	}
	var slots []slot
	for ci, c := range w.Countries {
		n := int(math.Round(weights[ci] / weightSum * float64(cfg.NumDeployments)))
		if n < 2 {
			n = 2
		}
		// Cycle through the country's cities; scatter each deployment
		// within the metro area. Deployments inside ISPs reuse the
		// country's AS numbers (the paper's CDN deploys inside 1300+ ISPs).
		for i := 0; i < n; i++ {
			city := c.Spec.Cities[i%len(c.Spec.Cities)]
			loc := geo.Offset(city.Loc, rng.Float64()*360, rng.ExpFloat64()*20)
			asn := uint32(64512)
			if len(c.ASes) > 0 {
				asn = c.ASes[rng.Intn(len(c.ASes))].ASN
			}
			slots = append(slots, slot{c.Code(), loc, asn})
		}
	}
	// Trim or pad to the exact requested count deterministically.
	rng.Shuffle(len(slots), func(i, j int) { slots[i], slots[j] = slots[j], slots[i] })
	for len(slots) > cfg.NumDeployments {
		slots = slots[:len(slots)-1]
	}
	for len(slots) < cfg.NumDeployments {
		slots = append(slots, slots[rng.Intn(len(slots))])
	}

	var id uint64 = 1 << 32 // distinct from world entity IDs
	var serverIP uint32 = 0x17000000
	for i, sl := range slots {
		d := &Deployment{
			ID:      id,
			Name:    fmt.Sprintf("%s-%04d", sl.country, i),
			Loc:     sl.loc,
			ASN:     sl.asn,
			Country: sl.country,
		}
		id++
		nSrv := 1 + rng.Intn(2*cfg.ServersPerDeployment)
		for s := 0; s < nSrv; s++ {
			srv := &Server{
				ID:         id,
				Addr:       ipv4(serverIP),
				Deployment: d,
				cap:        1,
			}
			srv.alive.Store(true)
			id++
			serverIP++
			d.Servers = append(d.Servers, srv)
		}
		p.Deployments = append(p.Deployments, d)
	}
	return p, nil
}

// MustGenerateUniverse is GenerateUniverse that panics on error.
func MustGenerateUniverse(w *world.World, cfg Config) *Platform {
	p, err := GenerateUniverse(w, cfg)
	if err != nil {
		panic(err)
	}
	return p
}

// Subset returns a platform restricted to the first n deployments of a
// deterministic random ordering — the paper's methodology for Fig 25
// ("randomly order the deployments in U; for each N, simulate with the
// first N").
func (p *Platform) Subset(n int, seed int64) *Platform {
	if n > len(p.Deployments) {
		n = len(p.Deployments)
	}
	perm := rand.New(rand.NewSource(seed)).Perm(len(p.Deployments))
	out := &Platform{Deployments: make([]*Deployment, 0, n)}
	for _, idx := range perm[:n] {
		out.Deployments = append(out.Deployments, p.Deployments[idx])
	}
	return out
}

// TotalCapacity sums live capacity across deployments.
func (p *Platform) TotalCapacity() float64 {
	var sum float64
	for _, d := range p.Deployments {
		sum += d.Capacity()
	}
	return sum
}

// NumServers counts all servers on the platform.
func (p *Platform) NumServers() int {
	n := 0
	for _, d := range p.Deployments {
		n += len(d.Servers)
	}
	return n
}

// ResetLoad zeroes load on all deployments.
func (p *Platform) ResetLoad() {
	for _, d := range p.Deployments {
		d.ResetLoad()
	}
}

// ScaleLoad multiplies load on all deployments by f — the periodic decay
// step of the live load-feedback loop.
func (p *Platform) ScaleLoad(f float64) {
	for _, d := range p.Deployments {
		d.ScaleLoad(f)
	}
}

// Countries returns the distinct countries with deployments, sorted.
func (p *Platform) Countries() []string {
	set := map[string]bool{}
	for _, d := range p.Deployments {
		set[d.Country] = true
	}
	out := make([]string, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

func ipv4(v uint32) netip.Addr {
	return netip.AddrFrom4([4]byte{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)})
}
