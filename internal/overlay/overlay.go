// Package overlay implements the transport overlay the paper's platform
// uses to speed up server-origin communication for dynamic content
// (§4.1, citing "Overlay networks: An Akamai perspective"): instead of
// fetching from the origin over the direct Internet path, an edge server
// may relay the fetch through an intermediate CDN cluster when the two-hop
// path is faster — which happens whenever the direct path is congested,
// lossy, or poorly routed.
//
// The roll-out does not change this component (the paper notes overlay
// transport "is not impacted by the end-user mapping roll-out"), but TTFB
// depends on it: the origin-fetch component of page construction rides the
// overlay, which is why end-user mapping only improves TTFB by ~30% while
// halving RTT.
package overlay

import (
	"fmt"
	"sort"

	"eum/internal/cdn"
	"eum/internal/netmodel"
)

// Path is a chosen server-to-origin route.
type Path struct {
	// Via is the relay deployment, or nil for the direct path.
	Via *cdn.Deployment
	// LatencyMs is the end-to-end round-trip latency of the path.
	LatencyMs float64
	// DirectMs is the direct path's latency, for comparison.
	DirectMs float64
}

// Improvement returns the fractional latency reduction versus direct.
func (p Path) Improvement() float64 {
	if p.DirectMs <= 0 {
		return 0
	}
	return 1 - p.LatencyMs/p.DirectMs
}

// Network selects overlay routes over a CDN platform's deployments.
type Network struct {
	net *netmodel.Model
	// relays are the candidate intermediate clusters.
	relays []*cdn.Deployment
	// maxRelays bounds the per-path search to the relays nearest the
	// midpoint corridor (all relays when 0).
	maxRelays int
}

// New creates an overlay over the platform's deployments. maxRelays
// bounds the per-path candidate set (0 = consider every deployment).
func New(p *cdn.Platform, net *netmodel.Model, maxRelays int) (*Network, error) {
	if p == nil || net == nil {
		return nil, fmt.Errorf("overlay: nil platform or network model")
	}
	return &Network{net: net, relays: p.Deployments, maxRelays: maxRelays}, nil
}

// BestPath returns the fastest path from server to origin at the given
// epoch: the direct path, or a one-hop relay path when a live relay makes
// the trip faster. Relay forwarding adds a small per-hop processing cost.
const relayOverheadMs = 1.0

// BestPath evaluates the direct path against every candidate relay.
func (o *Network) BestPath(server, origin netmodel.Endpoint, epoch uint64) Path {
	direct := o.net.RTTMs(server, origin, epoch)
	best := Path{Via: nil, LatencyMs: direct, DirectMs: direct}

	candidates := o.relays
	if o.maxRelays > 0 && len(candidates) > o.maxRelays {
		candidates = o.nearCorridor(server, origin, o.maxRelays)
	}
	for _, r := range candidates {
		if !r.Alive() {
			continue
		}
		re := r.Endpoint()
		if re.ID == server.ID || re.ID == origin.ID {
			continue
		}
		via := o.net.RTTMs(server, re, epoch) + o.net.RTTMs(re, origin, epoch) + relayOverheadMs
		if via < best.LatencyMs {
			best.Via = r
			best.LatencyMs = via
		}
	}
	return best
}

// nearCorridor returns the n relays with the smallest detour
// (distance(server, relay) + distance(relay, origin)), the standard
// pruning for one-hop overlay route search.
func (o *Network) nearCorridor(server, origin netmodel.Endpoint, n int) []*cdn.Deployment {
	type scored struct {
		d      *cdn.Deployment
		detour float64
	}
	all := make([]scored, 0, len(o.relays))
	for _, r := range o.relays {
		re := r.Endpoint()
		all = append(all, scored{r, o.net.BaseRTTMs(server, re) + o.net.BaseRTTMs(re, origin)})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].detour < all[j].detour })
	if n > len(all) {
		n = len(all)
	}
	out := make([]*cdn.Deployment, n)
	for i := 0; i < n; i++ {
		out[i] = all[i].d
	}
	return out
}

// Stats summarises overlay benefit over a set of (server, origin) pairs.
type Stats struct {
	// RelayedFraction is the fraction of pairs where a relay path won.
	RelayedFraction float64
	// MeanImprovement is the mean fractional latency reduction across
	// all pairs (zero for pairs served direct).
	MeanImprovement float64
	// MeanImprovementWhenRelayed restricts the mean to relayed pairs.
	MeanImprovementWhenRelayed float64
}

// Evaluate computes overlay statistics over the given endpoint pairs.
func (o *Network) Evaluate(pairs [][2]netmodel.Endpoint, epoch uint64) Stats {
	if len(pairs) == 0 {
		return Stats{}
	}
	var relayed int
	var sumAll, sumRelayed float64
	for _, pr := range pairs {
		p := o.BestPath(pr[0], pr[1], epoch)
		imp := p.Improvement()
		sumAll += imp
		if p.Via != nil {
			relayed++
			sumRelayed += imp
		}
	}
	s := Stats{
		RelayedFraction: float64(relayed) / float64(len(pairs)),
		MeanImprovement: sumAll / float64(len(pairs)),
	}
	if relayed > 0 {
		s.MeanImprovementWhenRelayed = sumRelayed / float64(relayed)
	}
	return s
}
