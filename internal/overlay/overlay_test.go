package overlay

import (
	"testing"

	"eum/internal/cdn"
	"eum/internal/netmodel"
	"eum/internal/world"
)

var (
	testW   = world.MustGenerate(world.Config{Seed: 97, NumBlocks: 1500})
	testNet = netmodel.NewDefault()
	testP   = cdn.MustGenerateUniverse(testW, cdn.Config{Seed: 97, NumDeployments: 250})
)

// originFor returns a far-away "origin" endpoint (a content provider's
// data centre) for a given server.
func originPairs(n int) [][2]netmodel.Endpoint {
	var out [][2]netmodel.Endpoint
	for i := 0; i < n && i < len(testP.Deployments); i++ {
		server := testP.Deployments[i].Endpoint()
		// Use a distant client block's location as the origin site.
		origin := testW.Blocks[(i*37+500)%len(testW.Blocks)].Endpoint()
		origin.Access = netmodel.AccessBackbone
		out = append(out, [2]netmodel.Endpoint{server, origin})
	}
	return out
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, testNet, 0); err == nil {
		t.Error("nil platform accepted")
	}
	if _, err := New(testP, nil, 0); err == nil {
		t.Error("nil model accepted")
	}
}

func TestBestPathNeverWorseThanDirect(t *testing.T) {
	o, err := New(testP, testNet, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, pr := range originPairs(60) {
		p := o.BestPath(pr[0], pr[1], 3)
		if p.LatencyMs > p.DirectMs {
			t.Fatalf("overlay path %.1f worse than direct %.1f", p.LatencyMs, p.DirectMs)
		}
		if p.Via == nil && p.LatencyMs != p.DirectMs {
			t.Fatal("direct path with mismatched latency")
		}
		if p.Improvement() < 0 || p.Improvement() >= 1 {
			t.Fatalf("improvement = %v", p.Improvement())
		}
	}
}

func TestOverlayFindsRelays(t *testing.T) {
	// Over many long paths with congestion variation, some relay paths
	// must win — the overlay's reason to exist.
	o, err := New(testP, testNet, 0)
	if err != nil {
		t.Fatal(err)
	}
	s := o.Evaluate(originPairs(120), 5)
	if s.RelayedFraction <= 0 {
		t.Fatal("no pair benefited from a relay")
	}
	if s.MeanImprovementWhenRelayed <= 0 {
		t.Fatal("relayed pairs show no improvement")
	}
	if s.MeanImprovementWhenRelayed > 0.9 {
		t.Fatalf("implausible relay improvement %.2f", s.MeanImprovementWhenRelayed)
	}
}

func TestCorridorPruningClose(t *testing.T) {
	// Pruned search must stay close to the exhaustive optimum.
	full, err := New(testP, testNet, 0)
	if err != nil {
		t.Fatal(err)
	}
	pruned, err := New(testP, testNet, 25)
	if err != nil {
		t.Fatal(err)
	}
	var worse int
	pairs := originPairs(60)
	for _, pr := range pairs {
		pf := full.BestPath(pr[0], pr[1], 7)
		pp := pruned.BestPath(pr[0], pr[1], 7)
		if pp.LatencyMs > pf.LatencyMs*1.25+2 {
			worse++
		}
	}
	if worse > len(pairs)/5 {
		t.Errorf("pruned search much worse on %d/%d pairs", worse, len(pairs))
	}
}

func TestDeadRelaysSkipped(t *testing.T) {
	o, err := New(testP, testNet, 0)
	if err != nil {
		t.Fatal(err)
	}
	pairs := originPairs(40)
	// Find a pair that uses a relay, kill the relay, re-route.
	for _, pr := range pairs {
		p := o.BestPath(pr[0], pr[1], 9)
		if p.Via == nil {
			continue
		}
		victim := p.Via
		for _, s := range victim.Servers {
			s.SetAlive(false)
		}
		p2 := o.BestPath(pr[0], pr[1], 9)
		for _, s := range victim.Servers {
			s.SetAlive(true)
		}
		if p2.Via == victim {
			t.Fatal("dead relay still used")
		}
		if p2.LatencyMs > p2.DirectMs {
			t.Fatal("re-route worse than direct")
		}
		return
	}
	t.Skip("no relayed pair found to test failover")
}

func TestEvaluateEmpty(t *testing.T) {
	o, _ := New(testP, testNet, 0)
	if s := o.Evaluate(nil, 0); s.RelayedFraction != 0 || s.MeanImprovement != 0 {
		t.Errorf("empty evaluate = %+v", s)
	}
}
