package telemetry

import (
	"sync"
	"testing"
	"time"
)

// TestHistogramRaceHammer drives concurrent observers against concurrent
// snapshot/exposition readers. Run under -race (make race does) it proves
// the histogram's atomic-slot design: no locks to contend, no torn reads,
// and the final state accounts for every observation exactly once.
func TestHistogramRaceHammer(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("hammer", "race hammer")

	const (
		writers   = 8
		perWriter = 20000
		readers   = 4
	)
	var wg sync.WaitGroup
	stop := make(chan struct{})

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				// Spread observations across many buckets.
				h.ObserveNanos((seed + int64(i)) % (1 << 22))
			}
		}(int64(w * 1009))
	}

	var rwg sync.WaitGroup
	for rd := 0; rd < readers; rd++ {
		rwg.Add(1)
		go func() {
			defer rwg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := h.Snapshot()
				var total uint64
				for _, c := range s.Buckets {
					total += c
				}
				// The one guaranteed ordering (see HistogramSnapshot):
				// Count is read before the bucket slots, and Observe
				// bumps the bucket before Count, so the bucket total can
				// run ahead of Count mid-flight but never behind it.
				if total < s.Count {
					t.Errorf("bucket total %d undercounts Count %d", total, s.Count)
					return
				}
				_ = s.Quantile(0.99)
			}
		}()
	}

	wg.Wait()
	close(stop)
	rwg.Wait()

	s := h.Snapshot()
	if want := uint64(writers * perWriter); s.Count != want {
		t.Fatalf("final count = %d, want %d", s.Count, want)
	}
	var total uint64
	for _, c := range s.Buckets {
		total += c
	}
	if total != s.Count {
		t.Fatalf("final bucket total %d != count %d", total, s.Count)
	}
	if s.Quantile(1.0) > time.Duration(BucketBound(22)) {
		t.Fatalf("quantile(1.0) = %v beyond max observed bucket", s.Quantile(1.0))
	}
}
