package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
)

// WritePrometheus emits every registered metric in the Prometheus text
// exposition format (version 0.0.4), in registration order. Histograms
// follow the Prometheus histogram convention: cumulative `_bucket` series
// with `le` boundaries in seconds, plus `_sum` and `_count`.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, m := range r.metrics {
		if m.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", m.name, m.help); err != nil {
				return err
			}
		}
		switch m.kind {
		case KindCounter:
			if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", m.name, m.name, m.counter()); err != nil {
				return err
			}
		case KindGauge:
			if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", m.name, m.name,
				strconv.FormatFloat(m.gauge(), 'g', -1, 64)); err != nil {
				return err
			}
		case KindHistogram:
			if err := writePrometheusHistogram(w, m.name, m.hist.Snapshot()); err != nil {
				return err
			}
		}
	}
	return nil
}

// writePrometheusHistogram emits one histogram. Only buckets up to the
// highest populated one are listed (every DNS-latency distribution would
// otherwise drag 64 lines of zeros), followed by the mandatory +Inf.
func writePrometheusHistogram(w io.Writer, name string, s HistogramSnapshot) error {
	if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
		return err
	}
	// Derive the totals from the bucket slots themselves so the cumulative
	// series stays monotonic even when the snapshot raced an Observe
	// between its bucket and count increments.
	top, total := 0, uint64(0)
	for i, c := range s.Buckets {
		total += c
		if c > 0 {
			top = i
		}
	}
	var cum uint64
	for i := 0; i <= top; i++ {
		cum += s.Buckets[i]
		le := float64(BucketBound(i)) / 1e9
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%s\"} %d\n", name,
			strconv.FormatFloat(le, 'g', -1, 64), cum); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %s\n%s_count %d\n",
		name, total, name,
		strconv.FormatFloat(float64(s.SumNanos)/1e9, 'g', -1, 64), name, total)
	return err
}

// jsonHistogram is the JSON shape of one histogram: summary statistics up
// front, populated buckets after.
type jsonHistogram struct {
	Count   uint64  `json:"count"`
	SumSecs float64 `json:"sum_seconds"`
	MeanNs  int64   `json:"mean_ns"`
	P50Ns   int64   `json:"p50_ns"`
	P90Ns   int64   `json:"p90_ns"`
	P99Ns   int64   `json:"p99_ns"`
	// Buckets maps the bucket's exclusive upper bound in nanoseconds
	// (as a decimal string, JSON keys being strings) to its count.
	Buckets map[string]uint64 `json:"buckets"`
}

// WriteJSON emits every registered metric as one JSON document:
// {"counters": {...}, "gauges": {...}, "histograms": {...}}.
func (r *Registry) WriteJSON(w io.Writer) error {
	snap := r.Snapshot()
	hists := make(map[string]jsonHistogram, len(snap.Histograms))
	for name, s := range snap.Histograms {
		jh := jsonHistogram{
			Count:   s.Count,
			SumSecs: float64(s.SumNanos) / 1e9,
			MeanNs:  int64(s.Mean()),
			P50Ns:   int64(s.Quantile(0.50)),
			P90Ns:   int64(s.Quantile(0.90)),
			P99Ns:   int64(s.Quantile(0.99)),
			Buckets: map[string]uint64{},
		}
		for i, c := range s.Buckets {
			if c > 0 {
				jh.Buckets[strconv.FormatInt(BucketBound(i), 10)] = c
			}
		}
		hists[name] = jh
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Counters   map[string]uint64        `json:"counters"`
		Gauges     map[string]float64       `json:"gauges"`
		Histograms map[string]jsonHistogram `json:"histograms"`
	}{snap.Counters, snap.Gauges, hists})
}

// Handler returns the /metrics HTTP handler: Prometheus text by default,
// JSON when the request asks for it (?format=json or an Accept header
// preferring application/json).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		wantJSON := req.URL.Query().Get("format") == "json" ||
			strings.Contains(req.Header.Get("Accept"), "application/json")
		if wantJSON {
			w.Header().Set("Content-Type", "application/json")
			_ = r.WriteJSON(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}
