package telemetry

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestRegistrySnapshot(t *testing.T) {
	r := NewRegistry()
	var queries atomic.Uint64
	queries.Store(42)
	r.Counter("queries_total", "queries", queries.Load)
	r.Gauge("epoch", "map epoch", func() float64 { return 7 })
	h := r.Histogram("latency", "serve latency")
	h.Observe(3 * time.Microsecond)
	h.Observe(5 * time.Millisecond)

	s := r.Snapshot()
	if s.Counters["queries_total"] != 42 {
		t.Errorf("counter = %d, want 42", s.Counters["queries_total"])
	}
	if s.Gauges["epoch"] != 7 {
		t.Errorf("gauge = %v, want 7", s.Gauges["epoch"])
	}
	hs := s.Histograms["latency"]
	if hs.Count != 2 {
		t.Errorf("hist count = %d, want 2", hs.Count)
	}
	if want := int64(3*time.Microsecond + 5*time.Millisecond); hs.SumNanos != want {
		t.Errorf("hist sum = %d, want %d", hs.SumNanos, want)
	}

	queries.Add(1)
	if r.Snapshot().Counters["queries_total"] != 43 {
		t.Error("counter is not read-through")
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup", "", func() uint64 { return 0 })
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.Gauge("dup", "", func() float64 { return 0 })
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	// 1ns lands in bucket 1 ([1,2)), 1000ns in bucket 10 ([512,1024)).
	h.ObserveNanos(1)
	h.ObserveNanos(1000)
	h.ObserveNanos(0) // bucket 0
	h.ObserveNanos(-5)
	s := h.Snapshot()
	if s.Buckets[0] != 2 || s.Buckets[1] != 1 || s.Buckets[10] != 1 {
		t.Errorf("bucket layout wrong: b0=%d b1=%d b10=%d", s.Buckets[0], s.Buckets[1], s.Buckets[10])
	}
	if s.Count != 4 {
		t.Errorf("count = %d, want 4", s.Count)
	}
	// A huge value must clamp into the last bucket, not index out of range.
	h.ObserveNanos(math.MaxInt64)
	if got := h.Snapshot().Buckets[histBuckets-1]; got != 1 {
		t.Errorf("max value bucket = %d, want 1", got)
	}
}

func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	for i := 0; i < 90; i++ {
		h.Observe(100 * time.Microsecond) // bucket bound 131072ns
	}
	for i := 0; i < 10; i++ {
		h.Observe(50 * time.Millisecond)
	}
	s := h.Snapshot()
	if p50 := s.Quantile(0.5); p50 > 200*time.Microsecond {
		t.Errorf("p50 = %v, want <= ~131µs", p50)
	}
	if p99 := s.Quantile(0.99); p99 < 10*time.Millisecond {
		t.Errorf("p99 = %v, want >= 10ms", p99)
	}
	if m := s.Mean(); m < 4*time.Millisecond || m > 7*time.Millisecond {
		t.Errorf("mean = %v, want ~5ms", m)
	}
	if (HistogramSnapshot{}).Quantile(0.5) != 0 {
		t.Error("empty histogram quantile should be 0")
	}
}

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "the a counter", func() uint64 { return 5 })
	r.Gauge("b", "the b gauge", func() float64 { return 2.5 })
	h := r.Histogram("lat", "latency")
	h.ObserveNanos(1 << 20) // bucket 21, bound 2^21ns
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# HELP a_total the a counter",
		"# TYPE a_total counter",
		"a_total 5",
		"# TYPE b gauge",
		"b 2.5",
		"# TYPE lat histogram",
		`lat_bucket{le="+Inf"} 1`,
		"lat_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

func TestJSONExpositionAndHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "", func() uint64 { return 9 })
	h := r.Histogram("lat", "")
	h.Observe(time.Millisecond)

	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "?format=json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc struct {
		Counters   map[string]uint64          `json:"counters"`
		Histograms map[string]json.RawMessage `json:"histograms"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if doc.Counters["c_total"] != 9 {
		t.Errorf("json counter = %d, want 9", doc.Counters["c_total"])
	}
	if _, ok := doc.Histograms["lat"]; !ok {
		t.Error("json exposition missing histogram")
	}

	text, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer text.Body.Close()
	if ct := text.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("default content type = %q", ct)
	}
}
