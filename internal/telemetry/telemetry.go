// Package telemetry is the process-wide observability plane: a metrics
// registry of lock-free counters, gauges and latency histograms that every
// serving-path package (dnsserver, authority, mapmaker, dnsclient, cdn,
// faultnet) wires its live counters into. The paper's entire evaluation
// (§5–§6) is built from exactly this kind of operational telemetry — query
// rates, cache behaviour, mapping latency, rollout health — so the
// registry is designed to sit on the query hot path without perturbing it:
// counters are read-through closures over the atomics the packages already
// maintain (registration costs the hot path nothing), and histograms stamp
// one observation with two atomic adds and no allocation.
//
// A Registry serves three consumers: Snapshot() returns a deterministic
// point-in-time view for tests and programmatic health checks,
// WritePrometheus emits the text exposition format scraped at /metrics,
// and WriteJSON emits the same data for humans and scripts.
package telemetry

import (
	"fmt"
	"sort"
	"sync"
)

// Kind classifies a registered metric.
type Kind int

const (
	// KindCounter is a monotonically non-decreasing cumulative count.
	KindCounter Kind = iota
	// KindGauge is an instantaneous value that can move both ways.
	KindGauge
	// KindHistogram is a latency/size distribution (see Histogram).
	KindHistogram
)

// metric is one registered metric: a name, help text, and exactly one of
// the three readers depending on kind.
type metric struct {
	name    string
	help    string
	kind    Kind
	counter func() uint64
	gauge   func() float64
	hist    *Histogram
}

// Registry holds named metrics. Registration takes a lock and happens at
// wiring time (before serving begins); reads on the serving path never
// touch the registry — packages keep updating their own atomics and the
// registry reads them only when scraped. The zero value is not usable;
// call NewRegistry.
type Registry struct {
	mu      sync.RWMutex
	metrics []*metric
	byName  map[string]*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]*metric{}}
}

// Default is the process-wide registry commands register into. Tests
// should create private registries with NewRegistry instead.
var Default = NewRegistry()

// register adds m, panicking on a duplicate name: two subsystems claiming
// one metric name is a wiring bug better caught at startup than silently
// shadowed at scrape time.
func (r *Registry) register(m *metric) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[m.name]; dup {
		panic(fmt.Sprintf("telemetry: duplicate metric %q", m.name))
	}
	r.byName[m.name] = m
	r.metrics = append(r.metrics, m)
}

// Counter registers a read-through counter: read is invoked at scrape and
// snapshot time (typically an atomic.Uint64's Load method), so the counter
// owner keeps its existing hot-path increment untouched.
func (r *Registry) Counter(name, help string, read func() uint64) {
	r.register(&metric{name: name, help: help, kind: KindCounter, counter: read})
}

// Gauge registers a read-through gauge.
func (r *Registry) Gauge(name, help string, read func() float64) {
	r.register(&metric{name: name, help: help, kind: KindGauge, gauge: read})
}

// Histogram creates, registers and returns a latency histogram. The
// returned histogram is safe to Observe concurrently from any number of
// goroutines while being scraped.
func (r *Registry) Histogram(name, help string) *Histogram {
	h := &Histogram{}
	r.register(&metric{name: name, help: help, kind: KindHistogram, hist: h})
	return h
}

// Snapshot is a point-in-time view of every registered metric, with
// deterministic (sorted) iteration helpers for tests.
type Snapshot struct {
	Counters   map[string]uint64
	Gauges     map[string]float64
	Histograms map[string]HistogramSnapshot
}

// Snapshot reads every registered metric once. Counters and gauges are
// each read atomically; the view across metrics is not a global atomic
// cut (scrapes race with serving by design), which is fine for the
// monitoring and test assertions it exists for.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := Snapshot{
		Counters:   make(map[string]uint64),
		Gauges:     make(map[string]float64),
		Histograms: make(map[string]HistogramSnapshot),
	}
	for _, m := range r.metrics {
		switch m.kind {
		case KindCounter:
			s.Counters[m.name] = m.counter()
		case KindGauge:
			s.Gauges[m.name] = m.gauge()
		case KindHistogram:
			s.Histograms[m.name] = m.hist.Snapshot()
		}
	}
	return s
}

// Names returns every registered metric name, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.metrics))
	for _, m := range r.metrics {
		out = append(out, m.name)
	}
	sort.Strings(out)
	return out
}
