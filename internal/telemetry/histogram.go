package telemetry

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// histBuckets is the number of power-of-two buckets: bucket i counts
// observations v (in nanoseconds) with 2^(i-1) <= v < 2^i (bucket 0 takes
// v <= 0, which only a clock step backwards can produce). 64 buckets cover
// every representable duration, so no observation is ever dropped.
const histBuckets = 64

// Histogram is a latency distribution with power-of-two bucket boundaries,
// built to be stamped on the DNS query hot path: Observe is two atomic
// adds and a bit-length instruction — no locks, no allocation, no
// floating-point. Power-of-two buckets trade resolution (each bucket spans
// a 2x range) for that hot-path budget; at DNS serving latencies the
// boundaries land usefully (1µs, 2µs, 4µs ... 1ms, 2ms ...) and quantile
// estimates are within a factor of two, which is what operational
// dashboards need.
//
// Create histograms through Registry.Histogram. The zero value is usable
// directly in tests.
type Histogram struct {
	buckets [histBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Int64 // total nanoseconds
}

// bucketIndex maps a nanosecond value to its bucket.
func bucketIndex(ns int64) int {
	if ns <= 0 {
		return 0
	}
	i := bits.Len64(uint64(ns)) // v in [2^(i-1), 2^i)
	if i >= histBuckets {
		i = histBuckets - 1
	}
	return i
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) { h.ObserveNanos(int64(d)) }

// ObserveNanos records one duration given in nanoseconds.
func (h *Histogram) ObserveNanos(ns int64) {
	h.buckets[bucketIndex(ns)].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
}

// Count returns how many observations have been recorded.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// BucketBound returns the exclusive upper bound, in nanoseconds, of bucket
// i (observations in bucket i are < BucketBound(i)). The last bucket is
// unbounded and reports the maximum int64.
func BucketBound(i int) int64 {
	if i >= histBuckets-1 {
		return int64(^uint64(0) >> 1)
	}
	return int64(1) << uint(i)
}

// HistogramSnapshot is a copy of a histogram's state. The per-slot reads
// are individually atomic but not a global cut, so a snapshot taken beside
// racing observers is only approximately consistent. One ordering IS
// guaranteed: Snapshot reads Count before any bucket slot, and Observe
// increments the bucket slot before Count — so every observation included
// in Count is also in Buckets, and the bucket total never undercounts
// Count. The Prometheus exposition leans on that to keep cumulative bucket
// counts monotonic.
type HistogramSnapshot struct {
	// Buckets[i] counts observations with BucketBound(i-1) <= v <
	// BucketBound(i) (non-cumulative).
	Buckets [histBuckets]uint64
	// Count is the total number of observations.
	Count uint64
	// SumNanos is the total of all observed durations in nanoseconds.
	SumNanos int64
}

// Snapshot copies the histogram's current state. Count is read first (see
// the HistogramSnapshot invariant).
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	s.Count = h.count.Load()
	s.SumNanos = h.sum.Load()
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// Quantile estimates the q-quantile (0 <= q <= 1) of the observed
// distribution from the bucket counts, returning the upper bound of the
// bucket containing the quantile — an estimate within one power of two of
// the true value. Returns 0 when the histogram is empty.
func (s HistogramSnapshot) Quantile(q float64) time.Duration {
	var total uint64
	for _, c := range s.Buckets {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := uint64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var seen uint64
	for i, c := range s.Buckets {
		seen += c
		if seen > rank {
			return time.Duration(BucketBound(i))
		}
	}
	return time.Duration(BucketBound(histBuckets - 1))
}

// Mean returns the average observed duration, 0 when empty.
func (s HistogramSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return time.Duration(s.SumNanos / int64(s.Count))
}
