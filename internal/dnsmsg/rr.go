package dnsmsg

import (
	"encoding/binary"
	"fmt"
	"net/netip"
)

// Question is a DNS query question (RFC 1035 §4.1.2).
type Question struct {
	Name  Name
	Type  Type
	Class Class
}

// String renders the question in zone-file style.
func (q Question) String() string {
	return fmt.Sprintf("%s %s %s", q.Name.Canonical(), q.Class, q.Type)
}

func (q Question) pack(buf []byte, cmp compressor) ([]byte, error) {
	buf, err := packName(buf, q.Name, cmp)
	if err != nil {
		return nil, err
	}
	return appendUint16(appendUint16(buf, uint16(q.Type)), uint16(q.Class)), nil
}

func unpackQuestion(msg []byte, off int) (Question, int, error) {
	name, off, err := unpackName(msg, off)
	if err != nil {
		return Question{}, 0, err
	}
	if off+4 > len(msg) {
		return Question{}, 0, ErrBufferTooSmall
	}
	q := Question{
		Name:  name,
		Type:  Type(binary.BigEndian.Uint16(msg[off:])),
		Class: Class(binary.BigEndian.Uint16(msg[off+2:])),
	}
	return q, off + 4, nil
}

// RData is the type-specific payload of a resource record.
type RData interface {
	// Type returns the RR type code this body belongs to.
	Type() Type
	// packData appends the wire form of the RDATA (without the length
	// prefix). Compression is only legal inside RDATA for the name types
	// grandfathered by RFC 3597 (NS, CNAME, SOA, PTR).
	packData(buf []byte, cmp compressor) ([]byte, error)
}

// RR is a resource record.
type RR struct {
	Name  Name
	Class Class
	TTL   uint32
	Data  RData
}

// String renders the record in zone-file style.
func (rr RR) String() string {
	return fmt.Sprintf("%s %d %s %s %v", rr.Name.Canonical(), rr.TTL, rr.Class, rr.Data.Type(), rr.Data)
}

func (rr RR) pack(buf []byte, cmp compressor) ([]byte, error) {
	if rr.Data == nil {
		return nil, fmt.Errorf("%w: RR %q has nil Data", ErrPack, string(rr.Name))
	}
	buf, err := packName(buf, rr.Name, cmp)
	if err != nil {
		return nil, err
	}
	buf = appendUint16(buf, uint16(rr.Data.Type()))
	buf = appendUint16(buf, uint16(rr.Class))
	buf = binary.BigEndian.AppendUint32(buf, rr.TTL)
	lenAt := len(buf)
	buf = appendUint16(buf, 0) // placeholder RDLENGTH
	buf, err = rr.Data.packData(buf, cmp)
	if err != nil {
		return nil, err
	}
	rdlen := len(buf) - lenAt - 2
	if rdlen > 0xFFFF {
		return nil, fmt.Errorf("%w: RDATA exceeds 65535 octets", ErrPack)
	}
	binary.BigEndian.PutUint16(buf[lenAt:], uint16(rdlen))
	return buf, nil
}

func unpackRR(msg []byte, off int) (RR, int, error) {
	name, off, err := unpackName(msg, off)
	if err != nil {
		return RR{}, 0, err
	}
	if off+10 > len(msg) {
		return RR{}, 0, ErrBufferTooSmall
	}
	typ := Type(binary.BigEndian.Uint16(msg[off:]))
	class := Class(binary.BigEndian.Uint16(msg[off+2:]))
	ttl := binary.BigEndian.Uint32(msg[off+4:])
	rdlen := int(binary.BigEndian.Uint16(msg[off+8:]))
	off += 10
	if off+rdlen > len(msg) {
		return RR{}, 0, ErrBufferTooSmall
	}
	data, err := unpackRData(typ, msg, off, rdlen)
	if err != nil {
		return RR{}, 0, err
	}
	return RR{Name: name, Class: class, TTL: ttl, Data: data}, off + rdlen, nil
}

func unpackRData(typ Type, msg []byte, off, rdlen int) (RData, error) {
	rd := msg[off : off+rdlen]
	switch typ {
	case TypeA:
		if rdlen != 4 {
			return nil, fmt.Errorf("%w: A RDATA length %d", ErrUnpack, rdlen)
		}
		return &A{Addr: netip.AddrFrom4([4]byte(rd))}, nil
	case TypeAAAA:
		if rdlen != 16 {
			return nil, fmt.Errorf("%w: AAAA RDATA length %d", ErrUnpack, rdlen)
		}
		return &AAAA{Addr: netip.AddrFrom16([16]byte(rd))}, nil
	case TypeCNAME:
		n, _, err := unpackName(msg, off)
		if err != nil {
			return nil, err
		}
		return &CNAME{Target: n}, nil
	case TypeNS:
		n, _, err := unpackName(msg, off)
		if err != nil {
			return nil, err
		}
		return &NS{Host: n}, nil
	case TypePTR:
		n, _, err := unpackName(msg, off)
		if err != nil {
			return nil, err
		}
		return &PTR{Target: n}, nil
	case TypeSOA:
		return unpackSOA(msg, off, rdlen)
	case TypeTXT:
		return unpackTXT(rd)
	case TypeOPT:
		opts, err := unpackOptions(rd)
		if err != nil {
			return nil, err
		}
		return &OPT{Options: opts}, nil
	default:
		cp := make([]byte, rdlen)
		copy(cp, rd)
		return &Unknown{Typ: typ, Raw: cp}, nil
	}
}

// A is an IPv4 address record.
type A struct {
	Addr netip.Addr
}

// Type implements RData.
func (*A) Type() Type { return TypeA }

func (a *A) packData(buf []byte, _ compressor) ([]byte, error) {
	if !a.Addr.Is4() {
		return nil, fmt.Errorf("%w: A record address %v is not IPv4", ErrPack, a.Addr)
	}
	b := a.Addr.As4()
	return append(buf, b[:]...), nil
}

// String returns the address in dotted-quad form.
func (a *A) String() string { return a.Addr.String() }

// AAAA is an IPv6 address record.
type AAAA struct {
	Addr netip.Addr
}

// Type implements RData.
func (*AAAA) Type() Type { return TypeAAAA }

func (a *AAAA) packData(buf []byte, _ compressor) ([]byte, error) {
	if !a.Addr.Is6() || a.Addr.Is4In6() {
		return nil, fmt.Errorf("%w: AAAA record address %v is not IPv6", ErrPack, a.Addr)
	}
	b := a.Addr.As16()
	return append(buf, b[:]...), nil
}

// String returns the address in RFC 5952 form.
func (a *AAAA) String() string { return a.Addr.String() }

// CNAME is a canonical-name record. The paper's CDN uses long CNAME chains:
// customer domains are CNAMEd to CDN domains whose authority is delegated to
// the mapping system's name servers.
type CNAME struct {
	Target Name
}

// Type implements RData.
func (*CNAME) Type() Type { return TypeCNAME }

func (c *CNAME) packData(buf []byte, cmp compressor) ([]byte, error) {
	return packName(buf, c.Target, cmp)
}

// String returns the target name.
func (c *CNAME) String() string { return string(c.Target.Canonical()) }

// NS is a name-server delegation record, the mechanism by which the global
// load balancer steers an LDNS to a nearby authoritative server cluster.
type NS struct {
	Host Name
}

// Type implements RData.
func (*NS) Type() Type { return TypeNS }

func (n *NS) packData(buf []byte, cmp compressor) ([]byte, error) {
	return packName(buf, n.Host, cmp)
}

// String returns the name-server host name.
func (n *NS) String() string { return string(n.Host.Canonical()) }

// PTR is a pointer record (reverse DNS).
type PTR struct {
	Target Name
}

// Type implements RData.
func (*PTR) Type() Type { return TypePTR }

func (p *PTR) packData(buf []byte, cmp compressor) ([]byte, error) {
	return packName(buf, p.Target, cmp)
}

// String returns the target name.
func (p *PTR) String() string { return string(p.Target.Canonical()) }

// SOA is a start-of-authority record.
type SOA struct {
	MName   Name // primary name server
	RName   Name // responsible mailbox
	Serial  uint32
	Refresh uint32
	Retry   uint32
	Expire  uint32
	Minimum uint32 // negative-caching TTL (RFC 2308)
}

// Type implements RData.
func (*SOA) Type() Type { return TypeSOA }

func (s *SOA) packData(buf []byte, cmp compressor) ([]byte, error) {
	buf, err := packName(buf, s.MName, cmp)
	if err != nil {
		return nil, err
	}
	buf, err = packName(buf, s.RName, cmp)
	if err != nil {
		return nil, err
	}
	buf = binary.BigEndian.AppendUint32(buf, s.Serial)
	buf = binary.BigEndian.AppendUint32(buf, s.Refresh)
	buf = binary.BigEndian.AppendUint32(buf, s.Retry)
	buf = binary.BigEndian.AppendUint32(buf, s.Expire)
	return binary.BigEndian.AppendUint32(buf, s.Minimum), nil
}

// String renders the SOA fields in zone-file order.
func (s *SOA) String() string {
	return fmt.Sprintf("%s %s %d %d %d %d %d",
		s.MName.Canonical(), s.RName.Canonical(), s.Serial, s.Refresh, s.Retry, s.Expire, s.Minimum)
}

func unpackSOA(msg []byte, off, rdlen int) (*SOA, error) {
	end := off + rdlen
	mname, off, err := unpackName(msg, off)
	if err != nil {
		return nil, err
	}
	rname, off, err := unpackName(msg, off)
	if err != nil {
		return nil, err
	}
	if off+20 > end || off+20 > len(msg) {
		return nil, ErrBufferTooSmall
	}
	return &SOA{
		MName:   mname,
		RName:   rname,
		Serial:  binary.BigEndian.Uint32(msg[off:]),
		Refresh: binary.BigEndian.Uint32(msg[off+4:]),
		Retry:   binary.BigEndian.Uint32(msg[off+8:]),
		Expire:  binary.BigEndian.Uint32(msg[off+12:]),
		Minimum: binary.BigEndian.Uint32(msg[off+16:]),
	}, nil
}

// TXT is a text record, carried as one or more character-strings.
// The mapping system uses TXT for diagnostic names like whoami lookups.
type TXT struct {
	Strings []string
}

// Type implements RData.
func (*TXT) Type() Type { return TypeTXT }

func (t *TXT) packData(buf []byte, _ compressor) ([]byte, error) {
	if len(t.Strings) == 0 {
		return nil, fmt.Errorf("%w: TXT record needs at least one string", ErrPack)
	}
	for _, s := range t.Strings {
		if len(s) > 255 {
			return nil, fmt.Errorf("%w: TXT string exceeds 255 octets", ErrPack)
		}
		buf = append(buf, byte(len(s)))
		buf = append(buf, s...)
	}
	return buf, nil
}

// String joins the character-strings with spaces.
func (t *TXT) String() string {
	out := ""
	for i, s := range t.Strings {
		if i > 0 {
			out += " "
		}
		out += fmt.Sprintf("%q", s)
	}
	return out
}

func unpackTXT(rd []byte) (*TXT, error) {
	var out []string
	for len(rd) > 0 {
		l := int(rd[0])
		if 1+l > len(rd) {
			return nil, fmt.Errorf("%w: truncated TXT character-string", ErrUnpack)
		}
		out = append(out, string(rd[1:1+l]))
		rd = rd[1+l:]
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%w: empty TXT RDATA", ErrUnpack)
	}
	return &TXT{Strings: out}, nil
}

// Unknown preserves the raw RDATA of record types this package does not
// interpret, so messages survive a parse/repack round trip (RFC 3597).
type Unknown struct {
	Typ Type
	Raw []byte
}

// Type implements RData.
func (u *Unknown) Type() Type { return u.Typ }

func (u *Unknown) packData(buf []byte, _ compressor) ([]byte, error) {
	return append(buf, u.Raw...), nil
}

// String hex-dumps the raw RDATA in RFC 3597 generic form.
func (u *Unknown) String() string { return fmt.Sprintf("\\# %d %x", len(u.Raw), u.Raw) }

func appendUint16(buf []byte, v uint16) []byte {
	return binary.BigEndian.AppendUint16(buf, v)
}
