package dnsmsg_test

import (
	"fmt"
	"net/netip"

	"eum/internal/dnsmsg"
)

// Building an ECS query and reading the option back from the wire — the
// §2.1 mechanism in four lines.
func Example() {
	q := dnsmsg.NewQuery(1, "www.cdn.example.net", dnsmsg.TypeA)
	_ = q.SetClientSubnet(netip.MustParseAddr("203.0.113.77"), 24)

	wire, _ := q.Pack()
	parsed, _ := dnsmsg.Unpack(wire)
	ecs := parsed.ClientSubnet()
	fmt.Println(parsed.Questions[0], "|", ecs)
	// Output: www.cdn.example.net IN A | ecs 203.0.113.0/24/0
}

// A response carries the answer's validity scope back to the resolver
// (RFC 7871): here the server answers for the whole /20 containing the
// client's /24.
func ExampleClientSubnet_scope() {
	q := dnsmsg.NewQuery(2, "img.cdn.example.net", dnsmsg.TypeA)
	_ = q.SetClientSubnet(netip.MustParseAddr("203.0.113.77"), 24)

	resp := q.Reply()
	in := q.ClientSubnet()
	resp.Options = append(resp.Options, &dnsmsg.ClientSubnet{
		Family: in.Family, SourcePrefix: in.SourcePrefix, ScopePrefix: 20, Address: in.Address,
	})
	fmt.Println(resp.ClientSubnet().ScopedPrefix())
	// Output: 203.0.112.0/20
}
