package dnsmsg

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func TestNameCanonical(t *testing.T) {
	cases := []struct{ in, want string }{
		{"Foo.EXAMPLE.com.", "foo.example.com"},
		{"example.com", "example.com"},
		{"", ""},
		{".", ""},
	}
	for _, c := range cases {
		if got := Name(c.in).Canonical(); string(got) != c.want {
			t.Errorf("Canonical(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestNameLabels(t *testing.T) {
	if got := Name("a.b.c").Labels(); len(got) != 3 || got[0] != "a" || got[2] != "c" {
		t.Errorf("Labels = %v", got)
	}
	if got := Name("").Labels(); got != nil {
		t.Errorf("root Labels = %v, want nil", got)
	}
}

func TestIsSubdomainOf(t *testing.T) {
	cases := []struct {
		name, parent string
		want         bool
	}{
		{"a.b.example.com", "example.com", true},
		{"example.com", "example.com", true},
		{"example.com", "EXAMPLE.COM.", true},
		{"badexample.com", "example.com", false},
		{"example.com", "a.example.com", false},
		{"anything.net", "", true},
	}
	for _, c := range cases {
		if got := Name(c.name).IsSubdomainOf(Name(c.parent)); got != c.want {
			t.Errorf("IsSubdomainOf(%q, %q) = %v, want %v", c.name, c.parent, got, c.want)
		}
	}
}

func TestPackNameRoundTrip(t *testing.T) {
	names := []Name{"", "com", "example.com", "a.very.deep.sub.domain.example.org"}
	for _, n := range names {
		buf, err := packName(nil, n, make(compressor))
		if err != nil {
			t.Fatalf("packName(%q): %v", n, err)
		}
		got, off, err := unpackName(buf, 0)
		if err != nil {
			t.Fatalf("unpackName(%q): %v", n, err)
		}
		if got != n.Canonical() {
			t.Errorf("round trip %q -> %q", n, got)
		}
		if off != len(buf) {
			t.Errorf("offset %d, want %d", off, len(buf))
		}
	}
}

func TestPackNameCompression(t *testing.T) {
	cmp := make(compressor)
	buf, err := packName(nil, "www.example.com", cmp)
	if err != nil {
		t.Fatal(err)
	}
	first := len(buf)
	buf, err = packName(buf, "ftp.example.com", cmp)
	if err != nil {
		t.Fatal(err)
	}
	// Second name should be: 3 "ftp" + 2-byte pointer = 6 bytes.
	if second := len(buf) - first; second != 6 {
		t.Errorf("compressed second name is %d bytes, want 6", second)
	}
	// Both must decode correctly.
	n1, off, err := unpackName(buf, 0)
	if err != nil || n1 != "www.example.com" {
		t.Fatalf("first name: %q, %v", n1, err)
	}
	n2, _, err := unpackName(buf, off)
	if err != nil || n2 != "ftp.example.com" {
		t.Fatalf("second name: %q, %v", n2, err)
	}
}

func TestPackNameFullPointer(t *testing.T) {
	cmp := make(compressor)
	buf, _ := packName(nil, "example.com", cmp)
	first := len(buf)
	buf, _ = packName(buf, "example.com", cmp)
	if second := len(buf) - first; second != 2 {
		t.Errorf("identical name packed to %d bytes, want 2 (pure pointer)", second)
	}
}

func TestPackNameLimits(t *testing.T) {
	long := Name(strings.Repeat("a", 64) + ".com")
	if _, err := packName(nil, long, nil); !errors.Is(err, ErrLabelTooLong) {
		t.Errorf("63+ octet label: err = %v, want ErrLabelTooLong", err)
	}
	var parts []string
	for i := 0; i < 50; i++ {
		parts = append(parts, "abcdefg")
	}
	tooLong := Name(strings.Join(parts, "."))
	if _, err := packName(nil, tooLong, nil); !errors.Is(err, ErrNameTooLong) {
		t.Errorf("255+ octet name: err = %v, want ErrNameTooLong", err)
	}
}

func TestUnpackNamePointerLoop(t *testing.T) {
	// A pointer pointing at itself.
	wire := []byte{0xC0, 0x00}
	if _, _, err := unpackName(wire, 0); !errors.Is(err, ErrUnpack) {
		t.Errorf("self-pointer: err = %v, want ErrUnpack", err)
	}
	// Two pointers pointing at each other.
	wire = []byte{0xC0, 0x02, 0xC0, 0x00}
	if _, _, err := unpackName(wire, 2); !errors.Is(err, ErrUnpack) {
		t.Errorf("pointer cycle: err = %v, want ErrUnpack", err)
	}
}

func TestUnpackNameForwardPointerRejected(t *testing.T) {
	// Pointer at offset 0 pointing forward to offset 2 — forward pointers
	// enable loops and are rejected.
	wire := []byte{0xC0, 0x02, 1, 'a', 0}
	if _, _, err := unpackName(wire, 0); err == nil {
		t.Error("forward pointer accepted")
	}
}

func TestUnpackNameTruncated(t *testing.T) {
	cases := [][]byte{
		{},           // empty
		{5, 'a'},     // label longer than buffer
		{0xC0},       // pointer missing second byte
		{1, 'a'},     // missing terminator
		{1, 'a', +1}, // label runs past end
	}
	for i, wire := range cases {
		if _, _, err := unpackName(wire, 0); err == nil {
			t.Errorf("case %d: truncated name accepted", i)
		}
	}
}

func TestUnpackNameReservedLabelType(t *testing.T) {
	wire := []byte{0x80, 0x01, 0x00}
	if _, _, err := unpackName(wire, 0); !errors.Is(err, ErrUnpack) {
		t.Errorf("reserved label type: err = %v", err)
	}
}

func TestUnpackNameCaseInsensitiveCompression(t *testing.T) {
	// Pack "WWW.Example.COM" then "www.example.com": compressor must
	// treat them as the same name.
	cmp := make(compressor)
	buf, _ := packName(nil, "WWW.Example.COM", cmp)
	l1 := len(buf)
	buf, _ = packName(buf, "www.example.com", cmp)
	if len(buf)-l1 != 2 {
		t.Errorf("case-differing duplicate packed to %d bytes, want 2", len(buf)-l1)
	}
	if !bytes.Contains(bytes.ToLower(buf[:l1]), []byte("www")) {
		t.Error("packed bytes missing label text")
	}
}
