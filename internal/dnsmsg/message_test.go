package dnsmsg

import (
	"bytes"
	"errors"
	"net/netip"
	"reflect"
	"testing"
	"testing/quick"
)

func mustPack(t *testing.T, m *Message) []byte {
	t.Helper()
	wire, err := m.Pack()
	if err != nil {
		t.Fatalf("Pack: %v", err)
	}
	return wire
}

func mustUnpack(t *testing.T, wire []byte) *Message {
	t.Helper()
	m, err := Unpack(wire)
	if err != nil {
		t.Fatalf("Unpack: %v", err)
	}
	return m
}

func TestQueryRoundTrip(t *testing.T) {
	q := NewQuery(0x1234, "E2561.B.CDN.Example.NET", TypeA)
	got := mustUnpack(t, mustPack(t, q))
	if got.ID != 0x1234 || got.Response || !got.RecursionDesired {
		t.Errorf("header mismatch: %+v", got.Header)
	}
	if len(got.Questions) != 1 {
		t.Fatalf("questions = %d", len(got.Questions))
	}
	want := Question{Name: "e2561.b.cdn.example.net", Type: TypeA, Class: ClassINET}
	if got.Questions[0] != want {
		t.Errorf("question = %+v, want %+v", got.Questions[0], want)
	}
	if !got.EDNS || got.UDPSize != DefaultUDPSize {
		t.Errorf("EDNS = %v, UDPSize = %d", got.EDNS, got.UDPSize)
	}
}

func TestResponseRoundTripAllSections(t *testing.T) {
	q := NewQuery(7, "foo.example.net", TypeA)
	r := q.Reply()
	r.Authoritative = true
	r.Answers = append(r.Answers,
		RR{Name: "foo.example.net", Class: ClassINET, TTL: 20,
			Data: &A{Addr: netip.MustParseAddr("192.0.2.10")}},
		RR{Name: "foo.example.net", Class: ClassINET, TTL: 20,
			Data: &A{Addr: netip.MustParseAddr("192.0.2.11")}},
	)
	r.Authorities = append(r.Authorities,
		RR{Name: "example.net", Class: ClassINET, TTL: 3600,
			Data: &NS{Host: "ns1.example.net"}})
	r.Additionals = append(r.Additionals,
		RR{Name: "ns1.example.net", Class: ClassINET, TTL: 3600,
			Data: &A{Addr: netip.MustParseAddr("198.51.100.1")}})

	got := mustUnpack(t, mustPack(t, r))
	if !got.Response || !got.Authoritative || got.ID != 7 {
		t.Errorf("header: %+v", got.Header)
	}
	if len(got.Answers) != 2 || len(got.Authorities) != 1 || len(got.Additionals) != 1 {
		t.Fatalf("sections: %d/%d/%d", len(got.Answers), len(got.Authorities), len(got.Additionals))
	}
	a := got.Answers[0].Data.(*A)
	if a.Addr != netip.MustParseAddr("192.0.2.10") {
		t.Errorf("answer A = %v", a.Addr)
	}
	ns := got.Authorities[0].Data.(*NS)
	if ns.Host != "ns1.example.net" {
		t.Errorf("authority NS = %v", ns.Host)
	}
}

func TestECSQueryRoundTrip(t *testing.T) {
	q := NewQuery(1, "foo.net", TypeA)
	if err := q.SetClientSubnet(netip.MustParseAddr("203.0.113.77"), 24); err != nil {
		t.Fatal(err)
	}
	got := mustUnpack(t, mustPack(t, q))
	ecs := got.ClientSubnet()
	if ecs == nil {
		t.Fatal("ECS option lost in round trip")
	}
	if ecs.Family != ECSFamilyIPv4 || ecs.SourcePrefix != 24 || ecs.ScopePrefix != 0 {
		t.Errorf("ecs = %+v", ecs)
	}
	// Address must be masked to /24.
	if ecs.Address != netip.MustParseAddr("203.0.113.0") {
		t.Errorf("ECS address = %v, want masked 203.0.113.0", ecs.Address)
	}
	if ecs.Prefix() != netip.MustParsePrefix("203.0.113.0/24") {
		t.Errorf("Prefix() = %v", ecs.Prefix())
	}
}

func TestECSWireFormatTruncatedAddress(t *testing.T) {
	// RFC 7871: a /24 IPv4 ECS option carries only 3 address octets.
	ecs, err := NewClientSubnet(netip.MustParseAddr("203.0.113.77"), 24)
	if err != nil {
		t.Fatal(err)
	}
	body, err := ecs.packOption(nil)
	if err != nil {
		t.Fatal(err)
	}
	want := []byte{0x00, 0x01, 24, 0, 203, 0, 113}
	if !bytes.Equal(body, want) {
		t.Errorf("ECS wire = %x, want %x", body, want)
	}
}

func TestECSIPv6(t *testing.T) {
	q := NewQuery(2, "foo.net", TypeAAAA)
	if err := q.SetClientSubnet(netip.MustParseAddr("2001:db8:1234:5678::1"), 56); err != nil {
		t.Fatal(err)
	}
	got := mustUnpack(t, mustPack(t, q))
	ecs := got.ClientSubnet()
	if ecs == nil || ecs.Family != ECSFamilyIPv6 || ecs.SourcePrefix != 56 {
		t.Fatalf("ecs = %+v", ecs)
	}
	if ecs.Address != netip.MustParseAddr("2001:db8:1234:5600::") {
		t.Errorf("masked v6 address = %v", ecs.Address)
	}
}

func TestECSScopeInResponse(t *testing.T) {
	// Server answers for a /20 scope from a /24 source (paper Fig 4).
	q := NewQuery(3, "foo.net", TypeA)
	_ = q.SetClientSubnet(netip.MustParseAddr("10.1.2.3"), 24)
	r := q.Reply()
	ecs := q.ClientSubnet()
	r.Options = append(r.Options, &ClientSubnet{
		Family:       ecs.Family,
		SourcePrefix: ecs.SourcePrefix,
		ScopePrefix:  20,
		Address:      ecs.Address,
	})
	got := mustUnpack(t, mustPack(t, r))
	gotECS := got.ClientSubnet()
	if gotECS == nil || gotECS.ScopePrefix != 20 {
		t.Fatalf("response ECS = %+v", gotECS)
	}
	if gotECS.ScopedPrefix() != netip.MustParsePrefix("10.1.0.0/20") {
		t.Errorf("ScopedPrefix = %v", gotECS.ScopedPrefix())
	}
}

func TestECSZeroSourcePrefix(t *testing.T) {
	// RFC 7871 allows source /0 to opt out of ECS processing.
	q := NewQuery(4, "foo.net", TypeA)
	if err := q.SetClientSubnet(netip.MustParseAddr("10.1.2.3"), 0); err != nil {
		t.Fatal(err)
	}
	got := mustUnpack(t, mustPack(t, q))
	ecs := got.ClientSubnet()
	if ecs == nil || ecs.SourcePrefix != 0 {
		t.Fatalf("ecs = %+v", ecs)
	}
}

func TestECSInvalidPrefix(t *testing.T) {
	if _, err := NewClientSubnet(netip.MustParseAddr("10.0.0.1"), 33); err == nil {
		t.Error("IPv4 /33 accepted")
	}
	if _, err := NewClientSubnet(netip.MustParseAddr("2001:db8::1"), 129); err == nil {
		t.Error("IPv6 /129 accepted")
	}
}

func TestECSMalformedWire(t *testing.T) {
	cases := []struct {
		name string
		body []byte
	}{
		{"short", []byte{0, 1, 24}},
		{"addr-too-short", []byte{0, 1, 24, 0, 203, 0}},
		{"addr-too-long", []byte{0, 1, 24, 0, 203, 0, 113, 7}},
		{"bad-family", []byte{0, 9, 8, 0, 1}},
		{"v4-prefix-too-long", []byte{0, 1, 40, 0, 1, 2, 3, 4, 5}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := unpackClientSubnet(c.body); err == nil {
				t.Error("malformed ECS accepted")
			}
		})
	}
}

func TestSetClientSubnetReplaces(t *testing.T) {
	q := NewQuery(5, "foo.net", TypeA)
	_ = q.SetClientSubnet(netip.MustParseAddr("10.0.0.1"), 24)
	_ = q.SetClientSubnet(netip.MustParseAddr("192.0.2.1"), 24)
	count := 0
	for _, o := range q.Options {
		if o.Code() == OptionCodeClientSubnet {
			count++
		}
	}
	if count != 1 {
		t.Errorf("found %d ECS options, want 1", count)
	}
	if q.ClientSubnet().Address != netip.MustParseAddr("192.0.2.0") {
		t.Errorf("ECS address = %v", q.ClientSubnet().Address)
	}
}

func TestCNAMEChainRoundTrip(t *testing.T) {
	r := &Message{Header: Header{ID: 9, Response: true}}
	r.Questions = []Question{{Name: "www.whitehouse.gov", Type: TypeA, Class: ClassINET}}
	r.Answers = []RR{
		{Name: "www.whitehouse.gov", Class: ClassINET, TTL: 300,
			Data: &CNAME{Target: "e2561.b.cdn.example.net"}},
		{Name: "e2561.b.cdn.example.net", Class: ClassINET, TTL: 20,
			Data: &A{Addr: netip.MustParseAddr("192.0.2.1")}},
	}
	got := mustUnpack(t, mustPack(t, r))
	cn := got.Answers[0].Data.(*CNAME)
	if cn.Target != "e2561.b.cdn.example.net" {
		t.Errorf("CNAME target = %v", cn.Target)
	}
}

func TestSOATXTRoundTrip(t *testing.T) {
	r := &Message{Header: Header{ID: 10, Response: true, RCode: RCodeNameError}}
	r.Authorities = []RR{{Name: "cdn.example.net", Class: ClassINET, TTL: 60,
		Data: &SOA{MName: "ns1.cdn.example.net", RName: "hostmaster.example.net",
			Serial: 2014032801, Refresh: 3600, Retry: 600, Expire: 86400, Minimum: 30}}}
	r.Answers = []RR{{Name: "whoami.cdn.example.net", Class: ClassINET, TTL: 0,
		Data: &TXT{Strings: []string{"resolver", "198.51.100.7"}}}}
	got := mustUnpack(t, mustPack(t, r))
	soa := got.Authorities[0].Data.(*SOA)
	if soa.Serial != 2014032801 || soa.Minimum != 30 || soa.MName != "ns1.cdn.example.net" {
		t.Errorf("SOA = %+v", soa)
	}
	txt := got.Answers[0].Data.(*TXT)
	if !reflect.DeepEqual(txt.Strings, []string{"resolver", "198.51.100.7"}) {
		t.Errorf("TXT = %v", txt.Strings)
	}
	if got.RCode != RCodeNameError {
		t.Errorf("RCode = %v", got.RCode)
	}
}

func TestExtendedRCode(t *testing.T) {
	m := &Message{Header: Header{ID: 11, Response: true, RCode: RCodeBadVers}, EDNS: true}
	got := mustUnpack(t, mustPack(t, m))
	if got.RCode != RCodeBadVers {
		t.Errorf("extended RCode = %v, want BADVERS", got.RCode)
	}
}

func TestUnknownRRPreserved(t *testing.T) {
	m := &Message{Header: Header{ID: 12, Response: true}}
	m.Answers = []RR{{Name: "x.net", Class: ClassINET, TTL: 5,
		Data: &Unknown{Typ: Type(99), Raw: []byte{1, 2, 3, 4}}}}
	got := mustUnpack(t, mustPack(t, m))
	u := got.Answers[0].Data.(*Unknown)
	if u.Typ != Type(99) || !bytes.Equal(u.Raw, []byte{1, 2, 3, 4}) {
		t.Errorf("unknown RR = %+v", u)
	}
}

func TestMultipleOPTRejected(t *testing.T) {
	m := &Message{Header: Header{ID: 13}, EDNS: true}
	wire := mustPack(t, m)
	// Duplicate the OPT record bytes by crafting a message with ARCOUNT 2
	// and the OPT appended twice.
	optStart := 12 // header only, no questions
	opt := wire[optStart:]
	crafted := append([]byte{}, wire[:12]...)
	crafted[11] = 2 // ARCOUNT = 2
	crafted = append(crafted, opt...)
	crafted = append(crafted, opt...)
	if _, err := Unpack(crafted); !errors.Is(err, ErrUnpack) {
		t.Errorf("duplicate OPT: err = %v", err)
	}
}

func TestUnpackTruncatedHeader(t *testing.T) {
	if _, err := Unpack([]byte{1, 2, 3}); !errors.Is(err, ErrUnpack) {
		t.Errorf("short header: err = %v", err)
	}
}

func TestUnpackGarbage(t *testing.T) {
	// Random mutations of a valid packet must never panic.
	q := NewQuery(0xABCD, "fuzz.example.com", TypeA)
	_ = q.SetClientSubnet(netip.MustParseAddr("10.9.8.7"), 24)
	wire := mustPack(t, q)
	f := func(idx int, val byte) bool {
		mut := append([]byte{}, wire...)
		mut[abs(idx)%len(mut)] = val
		_, _ = Unpack(mut) // must not panic; error is fine
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUnpackTruncationsNeverPanic(t *testing.T) {
	r := &Message{Header: Header{ID: 1, Response: true}}
	r.Questions = []Question{{Name: "a.b.c.example.com", Type: TypeA, Class: ClassINET}}
	r.Answers = []RR{{Name: "a.b.c.example.com", Class: ClassINET, TTL: 1,
		Data: &CNAME{Target: "d.example.com"}}}
	wire := mustPack(t, r)
	for i := 0; i < len(wire); i++ {
		_, _ = Unpack(wire[:i])
	}
}

func TestReplyMirrorsQuery(t *testing.T) {
	q := NewQuery(55, "foo.net", TypeA)
	r := q.Reply()
	if !r.Response || r.ID != 55 || !r.EDNS {
		t.Errorf("reply = %+v", r)
	}
	if len(r.Questions) != 1 || r.Questions[0] != q.Questions[0] {
		t.Errorf("reply questions = %v", r.Questions)
	}
}

func TestMessageString(t *testing.T) {
	q := NewQuery(1, "foo.net", TypeA)
	_ = q.SetClientSubnet(netip.MustParseAddr("10.0.0.0"), 24)
	s := q.String()
	for _, want := range []string{"foo.net", "ecs", "edns"} {
		if !bytes.Contains([]byte(s), []byte(want)) {
			t.Errorf("String() missing %q: %s", want, s)
		}
	}
}

func TestCompressionShrinksMessage(t *testing.T) {
	r := &Message{Header: Header{ID: 1, Response: true}}
	r.Questions = []Question{{Name: "a.really.long.domain.example.net", Type: TypeA, Class: ClassINET}}
	for i := 0; i < 8; i++ {
		r.Answers = append(r.Answers, RR{
			Name: "a.really.long.domain.example.net", Class: ClassINET, TTL: 20,
			Data: &A{Addr: netip.AddrFrom4([4]byte{192, 0, 2, byte(i)})},
		})
	}
	wire := mustPack(t, r)
	// Each answer's owner name should compress to a 2-byte pointer:
	// 2 (ptr) + 2 type + 2 class + 4 ttl + 2 rdlen + 4 rdata = 16 bytes.
	qLen := 12 + len("a.really.long.domain.example.net") + 2 + 4
	want := qLen + 8*16
	if len(wire) != want {
		t.Errorf("compressed message = %d bytes, want %d", len(wire), want)
	}
	got := mustUnpack(t, wire)
	if len(got.Answers) != 8 {
		t.Errorf("answers = %d", len(got.Answers))
	}
}

func abs(v int) int {
	if v < 0 {
		if v == -v { // math.MinInt
			return 0
		}
		return -v
	}
	return v
}
