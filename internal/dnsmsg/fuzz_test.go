package dnsmsg

import (
	"net/netip"
	"testing"
)

// FuzzUnpack exercises the wire parser with arbitrary bytes: it must never
// panic, and anything it accepts must survive a re-pack/re-parse cycle
// with stable section counts (parse-pack-parse fixpoint).
func FuzzUnpack(f *testing.F) {
	// Seed corpus: real packed messages of every flavour.
	q := NewQuery(0x1234, "seed.example.net", TypeA)
	_ = q.SetClientSubnet(netip.MustParseAddr("203.0.113.9"), 24)
	if wire, err := q.Pack(); err == nil {
		f.Add(wire)
	}
	r := q.Reply()
	r.Authoritative = true
	r.Answers = append(r.Answers,
		RR{Name: "seed.example.net", Class: ClassINET, TTL: 20,
			Data: &A{Addr: netip.MustParseAddr("192.0.2.1")}},
		RR{Name: "seed.example.net", Class: ClassINET, TTL: 20,
			Data: &CNAME{Target: "other.example.net"}},
	)
	r.Authorities = append(r.Authorities, RR{Name: "example.net", Class: ClassINET, TTL: 300,
		Data: &SOA{MName: "ns.example.net", RName: "h.example.net", Minimum: 30}})
	if wire, err := r.Pack(); err == nil {
		f.Add(wire)
	}
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{0xC0, 0x00})

	f.Fuzz(func(t *testing.T, wire []byte) {
		m, err := Unpack(wire)
		if err != nil {
			return
		}
		repacked, err := m.Pack()
		if err != nil {
			// Some parseable messages cannot repack (e.g. names that
			// were legal only via compression quirks); not a bug.
			return
		}
		m2, err := Unpack(repacked)
		if err != nil {
			t.Fatalf("repacked message failed to parse: %v", err)
		}
		if len(m2.Questions) != len(m.Questions) ||
			len(m2.Answers) != len(m.Answers) ||
			len(m2.Authorities) != len(m.Authorities) ||
			len(m2.Additionals) != len(m.Additionals) {
			t.Fatalf("section counts changed across repack: %v vs %v", m, m2)
		}
		if m2.ID != m.ID || m2.RCode != m.RCode || m2.Response != m.Response {
			t.Fatalf("header changed across repack")
		}
	})
}

// FuzzNameRoundTrip checks the name codec in isolation.
func FuzzNameRoundTrip(f *testing.F) {
	f.Add("example.com")
	f.Add("")
	f.Add("a.b.c.d.e.f.g")
	f.Add("UPPER.Case.MiXeD")
	f.Fuzz(func(t *testing.T, s string) {
		n := Name(s)
		wire, err := packName(nil, n, make(compressor))
		if err != nil {
			return // invalid names are rejected, fine
		}
		got, off, err := unpackName(wire, 0)
		if err != nil {
			t.Fatalf("packed name failed to unpack: %v", err)
		}
		if off != len(wire) {
			t.Fatalf("offset %d != len %d", off, len(wire))
		}
		if got != n.Canonical() {
			t.Fatalf("round trip %q -> %q", n.Canonical(), got)
		}
	})
}
