package dnsmsg

import (
	"net/netip"
	"testing"
)

// FuzzUnpack exercises the wire parser with arbitrary bytes: it must never
// panic, and anything it accepts must survive a re-pack/re-parse cycle
// with stable section counts (parse-pack-parse fixpoint).
func FuzzUnpack(f *testing.F) {
	// Seed corpus: real packed messages of every flavour.
	q := NewQuery(0x1234, "seed.example.net", TypeA)
	_ = q.SetClientSubnet(netip.MustParseAddr("203.0.113.9"), 24)
	if wire, err := q.Pack(); err == nil {
		f.Add(wire)
	}
	r := q.Reply()
	r.Authoritative = true
	r.Answers = append(r.Answers,
		RR{Name: "seed.example.net", Class: ClassINET, TTL: 20,
			Data: &A{Addr: netip.MustParseAddr("192.0.2.1")}},
		RR{Name: "seed.example.net", Class: ClassINET, TTL: 20,
			Data: &CNAME{Target: "other.example.net"}},
	)
	r.Authorities = append(r.Authorities, RR{Name: "example.net", Class: ClassINET, TTL: 300,
		Data: &SOA{MName: "ns.example.net", RName: "h.example.net", Minimum: 30}})
	if wire, err := r.Pack(); err == nil {
		f.Add(wire)
	}
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{0xC0, 0x00})

	f.Fuzz(func(t *testing.T, wire []byte) {
		m, err := Unpack(wire)
		if err != nil {
			return
		}
		repacked, err := m.Pack()
		if err != nil {
			// Some parseable messages cannot repack (e.g. names that
			// were legal only via compression quirks); not a bug.
			return
		}
		m2, err := Unpack(repacked)
		if err != nil {
			t.Fatalf("repacked message failed to parse: %v", err)
		}
		if len(m2.Questions) != len(m.Questions) ||
			len(m2.Answers) != len(m.Answers) ||
			len(m2.Authorities) != len(m.Authorities) ||
			len(m2.Additionals) != len(m.Additionals) {
			t.Fatalf("section counts changed across repack: %v vs %v", m, m2)
		}
		if m2.ID != m.ID || m2.RCode != m.RCode || m2.Response != m.Response {
			t.Fatalf("header changed across repack")
		}
	})
}

// FuzzECSRoundTrip exercises the ECS option codec with arbitrary option
// bodies: anything unpackClientSubnet accepts must repack and re-parse to
// the same family, prefix lengths, and masked prefix — and the repacked
// form must always satisfy the RFC 7871 §6 masked-bits invariant, even
// when the input smuggled pad bits in (NonZeroPad).
func FuzzECSRoundTrip(f *testing.F) {
	// Conformant IPv4 /24.
	f.Add([]byte{0x00, 0x01, 24, 0, 203, 0, 113})
	// Pad-bit violation: /20 with bits set in the masked nibble.
	f.Add([]byte{0x00, 0x01, 20, 0, 203, 0, 0x71})
	// Scope violation in a query: scope 24.
	f.Add([]byte{0x00, 0x01, 24, 24, 203, 0, 113})
	// Conformant IPv6 /56.
	f.Add([]byte{0x00, 0x02, 56, 0, 0x20, 0x01, 0x0d, 0xb8, 0x12, 0x34, 0x56})
	// Source 0: no address octets at all.
	f.Add([]byte{0x00, 0x01, 0, 0})
	f.Add([]byte{})
	// Non-octet-aligned sources with conformant pad bits (RFC 7871 §6):
	// /20 (final nibble masked), /21, /23, and an IPv6 /57.
	f.Add([]byte{0x00, 0x01, 20, 0, 203, 0, 0x70})
	f.Add([]byte{0x00, 0x01, 21, 0, 203, 0, 0x70})
	f.Add([]byte{0x00, 0x01, 23, 20, 203, 0, 0x70})
	f.Add([]byte{0x00, 0x02, 57, 0, 0x20, 0x01, 0x0d, 0xb8, 0x12, 0x34, 0x56, 0x80})
	// Scope beyond the family bit length: must be rejected, not filed.
	f.Add([]byte{0x00, 0x01, 24, 33, 203, 0, 113})
	f.Add([]byte{0x00, 0x02, 56, 200, 0x20, 0x01, 0x0d, 0xb8, 0x12, 0x34, 0x56})

	f.Fuzz(func(t *testing.T, body []byte) {
		c, err := unpackClientSubnet(body)
		if err != nil {
			return
		}
		wire, err := c.packOption(nil)
		if err != nil {
			t.Fatalf("accepted option failed to repack: %v", err)
		}
		c2, err := unpackClientSubnet(wire)
		if err != nil {
			t.Fatalf("repacked option failed to parse: %v", err)
		}
		if c2.NonZeroPad {
			t.Fatalf("repacked option violates the masked-bits invariant: %x", wire)
		}
		if c2.Family != c.Family || c2.SourcePrefix != c.SourcePrefix || c2.ScopePrefix != c.ScopePrefix {
			t.Fatalf("header fields changed across repack: %v vs %v", c, c2)
		}
		// Prefix masks the address, so it is stable across repack even when
		// the original wire form carried pad bits.
		if c2.Prefix() != c.Prefix() {
			t.Fatalf("prefix changed across repack: %v vs %v", c.Prefix(), c2.Prefix())
		}
		// ScopedPrefix can read address bits beyond SourcePrefix when the
		// scope is longer than the source; on a NonZeroPad option those are
		// exactly the wire bits that repacking re-masks, so the invariant
		// only holds for conformant inputs.
		if !c.NonZeroPad && c2.ScopedPrefix() != c.ScopedPrefix() {
			t.Fatalf("scoped prefix changed across repack: %v vs %v", c.ScopedPrefix(), c2.ScopedPrefix())
		}
	})
}

// FuzzNameRoundTrip checks the name codec in isolation.
func FuzzNameRoundTrip(f *testing.F) {
	f.Add("example.com")
	f.Add("")
	f.Add("a.b.c.d.e.f.g")
	f.Add("UPPER.Case.MiXeD")
	f.Fuzz(func(t *testing.T, s string) {
		n := Name(s)
		wire, err := packName(nil, n, make(compressor))
		if err != nil {
			return // invalid names are rejected, fine
		}
		got, off, err := unpackName(wire, 0)
		if err != nil {
			t.Fatalf("packed name failed to unpack: %v", err)
		}
		if off != len(wire) {
			t.Fatalf("offset %d != len %d", off, len(wire))
		}
		if got != n.Canonical() {
			t.Fatalf("round trip %q -> %q", n.Canonical(), got)
		}
	})
}
