// Package dnsmsg implements the DNS wire format (RFC 1035) with the EDNS0
// extension mechanism (RFC 6891) and the EDNS Client Subnet option
// (RFC 7871, the standardised form of the draft-vandergaast-edns-client-subnet
// extension the paper's end-user mapping system is built on).
//
// The package is self-contained (stdlib only) and provides:
//
//   - Message, Header, Question and the resource records the mapping system
//     needs (A, AAAA, CNAME, NS, SOA, TXT, PTR, OPT), with domain-name
//     compression on pack and decompression on unpack;
//   - ClientSubnet, the ECS option, carrying a source prefix of the client's
//     IP on queries and a scope prefix on responses;
//   - helpers to attach/extract ECS options from a message's OPT record.
//
// It intentionally mirrors the shape of the de-facto standard Go DNS
// libraries so it reads familiarly, while staying small enough to audit.
package dnsmsg

import (
	"errors"
	"fmt"
)

// Common pack/unpack errors. Parse failures wrap ErrUnpack so callers can
// classify malformed datagrams with errors.Is.
var (
	ErrUnpack          = errors.New("dnsmsg: malformed message")
	ErrPack            = errors.New("dnsmsg: cannot pack message")
	ErrNameTooLong     = fmt.Errorf("%w: domain name exceeds 255 octets", ErrPack)
	ErrLabelTooLong    = fmt.Errorf("%w: label exceeds 63 octets", ErrPack)
	ErrCompressionLoop = fmt.Errorf("%w: compression pointer loop", ErrUnpack)
	ErrBufferTooSmall  = fmt.Errorf("%w: truncated buffer", ErrUnpack)

	// ErrECSScope marks an EDNS client-subnet option whose SCOPE
	// PREFIX-LENGTH exceeds its address family's bit length — a malformed
	// response a cache must not file (RFC 7871 §7.3). Both the wire
	// parser and ClientSubnet.ScopedPrefixChecked surface it.
	ErrECSScope = errors.New("dnsmsg: ECS scope prefix exceeds address family")
)

// Type is a DNS RR type code.
type Type uint16

// RR types used by the mapping system.
const (
	TypeA     Type = 1
	TypeNS    Type = 2
	TypeCNAME Type = 5
	TypeSOA   Type = 6
	TypePTR   Type = 12
	TypeTXT   Type = 16
	TypeAAAA  Type = 28
	TypeOPT   Type = 41 // EDNS0 pseudo-RR
	TypeANY   Type = 255
)

// String returns the conventional mnemonic for the type.
func (t Type) String() string {
	switch t {
	case TypeA:
		return "A"
	case TypeNS:
		return "NS"
	case TypeCNAME:
		return "CNAME"
	case TypeSOA:
		return "SOA"
	case TypePTR:
		return "PTR"
	case TypeTXT:
		return "TXT"
	case TypeAAAA:
		return "AAAA"
	case TypeOPT:
		return "OPT"
	case TypeANY:
		return "ANY"
	}
	return fmt.Sprintf("TYPE%d", uint16(t))
}

// Class is a DNS class code.
type Class uint16

// ClassINET is the Internet class; the only class this package serves.
const ClassINET Class = 1

// String returns the mnemonic for the class.
func (c Class) String() string {
	if c == ClassINET {
		return "IN"
	}
	return fmt.Sprintf("CLASS%d", uint16(c))
}

// RCode is a DNS response code.
type RCode uint16

// Response codes (RFC 1035 §4.1.1, RFC 6891 for BADVERS).
const (
	RCodeSuccess        RCode = 0 // NOERROR
	RCodeFormatError    RCode = 1 // FORMERR
	RCodeServerFailure  RCode = 2 // SERVFAIL
	RCodeNameError      RCode = 3 // NXDOMAIN
	RCodeNotImplemented RCode = 4 // NOTIMP
	RCodeRefused        RCode = 5 // REFUSED
	RCodeBadVers        RCode = 16
)

// String returns the mnemonic for the response code.
func (r RCode) String() string {
	switch r {
	case RCodeSuccess:
		return "NOERROR"
	case RCodeFormatError:
		return "FORMERR"
	case RCodeServerFailure:
		return "SERVFAIL"
	case RCodeNameError:
		return "NXDOMAIN"
	case RCodeNotImplemented:
		return "NOTIMP"
	case RCodeRefused:
		return "REFUSED"
	case RCodeBadVers:
		return "BADVERS"
	}
	return fmt.Sprintf("RCODE%d", uint16(r))
}

// OpCode is a DNS operation code.
type OpCode uint16

// OpCodeQuery is a standard query, the only opcode the mapping system uses.
const OpCodeQuery OpCode = 0
