package dnsmsg

import (
	"encoding/binary"
	"fmt"
	"net/netip"
)

// EDNS0 option codes.
const (
	// OptionCodeClientSubnet is the EDNS Client Subnet option code
	// (RFC 7871 §6), the protocol extension end-user mapping depends on.
	OptionCodeClientSubnet uint16 = 8
)

// ECS address family numbers (RFC 7871 §6, from the IANA address family
// registry).
const (
	ECSFamilyIPv4 uint16 = 1
	ECSFamilyIPv6 uint16 = 2
)

// DefaultUDPSize is the EDNS0 UDP payload size this package advertises.
const DefaultUDPSize = 1232

// EDNSOption is a single option inside an OPT pseudo-RR.
type EDNSOption interface {
	// Code returns the option's EDNS0 option code.
	Code() uint16
	// packOption appends the option data (without the code/length header).
	packOption(buf []byte) ([]byte, error)
}

// OPT is the EDNS0 pseudo-RR (RFC 6891). Its header fields are smuggled
// through the RR's Class (UDP payload size) and TTL (extended RCODE, EDNS
// version, DO bit), which Message handles during pack/unpack.
type OPT struct {
	Options []EDNSOption
}

// Type implements RData.
func (*OPT) Type() Type { return TypeOPT }

func (o *OPT) packData(buf []byte, _ compressor) ([]byte, error) {
	for _, opt := range o.Options {
		buf = appendUint16(buf, opt.Code())
		lenAt := len(buf)
		buf = appendUint16(buf, 0)
		var err error
		buf, err = opt.packOption(buf)
		if err != nil {
			return nil, err
		}
		binary.BigEndian.PutUint16(buf[lenAt:], uint16(len(buf)-lenAt-2))
	}
	return buf, nil
}

// String lists the contained options.
func (o *OPT) String() string { return fmt.Sprintf("OPT %v", o.Options) }

func unpackOptions(rd []byte) ([]EDNSOption, error) {
	var out []EDNSOption
	for len(rd) > 0 {
		if len(rd) < 4 {
			return nil, fmt.Errorf("%w: truncated EDNS option header", ErrUnpack)
		}
		code := binary.BigEndian.Uint16(rd)
		olen := int(binary.BigEndian.Uint16(rd[2:]))
		if 4+olen > len(rd) {
			return nil, fmt.Errorf("%w: truncated EDNS option body", ErrUnpack)
		}
		body := rd[4 : 4+olen]
		switch code {
		case OptionCodeClientSubnet:
			ecs, err := unpackClientSubnet(body)
			if err != nil {
				return nil, err
			}
			out = append(out, ecs)
		default:
			cp := make([]byte, olen)
			copy(cp, body)
			out = append(out, &RawOption{OptCode: code, Data: cp})
		}
		rd = rd[4+olen:]
	}
	return out, nil
}

// RawOption preserves unknown EDNS options byte-for-byte.
type RawOption struct {
	OptCode uint16
	Data    []byte
}

// Code implements EDNSOption.
func (r *RawOption) Code() uint16 { return r.OptCode }

func (r *RawOption) packOption(buf []byte) ([]byte, error) {
	return append(buf, r.Data...), nil
}

// String hex-dumps the option.
func (r *RawOption) String() string { return fmt.Sprintf("opt%d:%x", r.OptCode, r.Data) }

// ClientSubnet is the EDNS Client Subnet option (RFC 7871).
//
// In a query, the LDNS sets Address to (a truncation of) the client's IP
// and SourcePrefix to the number of significant bits it is revealing —
// conventionally 24 for IPv4, since longer prefixes are discouraged for
// privacy (paper §2.1). ScopePrefix MUST be 0 in queries.
//
// In a response, the authoritative server echoes Address and SourcePrefix
// and sets ScopePrefix to the prefix length its answer is valid for. A
// scope shorter than the source ("/y where y <= x") tells caches the answer
// covers a superset of the client's block; scope 0 means the answer does
// not depend on the client subnet at all.
type ClientSubnet struct {
	Family       uint16     // ECSFamilyIPv4 or ECSFamilyIPv6
	SourcePrefix uint8      // significant bits of Address in the query
	ScopePrefix  uint8      // bits the answer is valid for (response only)
	Address      netip.Addr // client address, zeroed beyond SourcePrefix

	// NonZeroPad records that the option arrived off the wire with address
	// bits set beyond SOURCE PREFIX-LENGTH — a violation of RFC 7871 §6
	// ("MUST be set to 0") that §7.1.2 tells servers to answer with
	// FORMERR. Unpack preserves the wire address so callers can log or
	// reject it; packOption always re-masks, so the violation never
	// propagates back onto the wire.
	NonZeroPad bool
}

// NewClientSubnet builds a query-side ECS option for the given client
// address and source prefix length, masking the address down to the prefix
// as RFC 7871 §6 requires ("MUST be set to 0" beyond SOURCE PREFIX-LENGTH).
func NewClientSubnet(addr netip.Addr, sourcePrefix uint8) (*ClientSubnet, error) {
	family := ECSFamilyIPv4
	maxBits := uint8(32)
	if addr.Is6() && !addr.Is4In6() {
		family = ECSFamilyIPv6
		maxBits = 128
	} else {
		addr = addr.Unmap()
	}
	if sourcePrefix > maxBits {
		return nil, fmt.Errorf("%w: ECS source prefix /%d exceeds address width", ErrPack, sourcePrefix)
	}
	p, err := addr.Prefix(int(sourcePrefix))
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrPack, err)
	}
	return &ClientSubnet{
		Family:       family,
		SourcePrefix: sourcePrefix,
		Address:      p.Addr(),
	}, nil
}

// Code implements EDNSOption.
func (*ClientSubnet) Code() uint16 { return OptionCodeClientSubnet }

// Prefix returns the option's address block as a netip.Prefix using the
// source prefix length.
func (c *ClientSubnet) Prefix() netip.Prefix {
	p, err := c.Address.Prefix(int(c.SourcePrefix))
	if err != nil {
		return netip.Prefix{}
	}
	return p
}

// ScopedPrefixChecked returns the address block a cache should file the
// response's answer under. RFC 7871 §7.3.1: a scope of 0 means the answer
// is valid for all addresses, but the cache entry is still stored under
// the query's source prefix — so scope 0 falls back to SourcePrefix
// rather than producing a /0 that would let one client's answer shadow
// the whole address family.
//
// A malformed response can carry a SCOPE PREFIX-LENGTH beyond the address
// family's bit length (33+ for IPv4, 129+ for IPv6); that surfaces as
// ErrECSScope so callers can drop the answer instead of filing it under a
// zero prefix.
func (c *ClientSubnet) ScopedPrefixChecked() (netip.Prefix, error) {
	bits := int(c.ScopePrefix)
	if bits == 0 {
		bits = int(c.SourcePrefix)
	}
	p, err := c.Address.Prefix(bits)
	if err != nil {
		return netip.Prefix{}, fmt.Errorf("%w: scope /%d for %v", ErrECSScope, bits, c.Address)
	}
	return p, nil
}

// ScopedPrefix is ScopedPrefixChecked for callers that treat a malformed
// scope as "no usable prefix": it returns the zero netip.Prefix (IsValid
// false) when the scope exceeds the address family.
func (c *ClientSubnet) ScopedPrefix() netip.Prefix {
	p, err := c.ScopedPrefixChecked()
	if err != nil {
		return netip.Prefix{}
	}
	return p
}

// QueryConformant reports whether the option is legal in a query per RFC
// 7871 §7.1.2: every address bit beyond SOURCE PREFIX-LENGTH zero, and
// SCOPE PREFIX-LENGTH zero. A server receiving a non-conformant option
// must answer FORMERR instead of accepting it.
func (c *ClientSubnet) QueryConformant() bool {
	return !c.NonZeroPad && c.ScopePrefix == 0
}

// String renders like "ecs 1.2.3.0/24/0".
func (c *ClientSubnet) String() string {
	return fmt.Sprintf("ecs %s/%d/%d", c.Address, c.SourcePrefix, c.ScopePrefix)
}

func (c *ClientSubnet) packOption(buf []byte) ([]byte, error) {
	var addrBytes []byte
	switch c.Family {
	case ECSFamilyIPv4:
		if !c.Address.Is4() && !c.Address.Is4In6() {
			return nil, fmt.Errorf("%w: ECS family IPv4 with address %v", ErrPack, c.Address)
		}
		b := c.Address.Unmap().As4()
		addrBytes = b[:]
		if c.SourcePrefix > 32 {
			return nil, fmt.Errorf("%w: ECS IPv4 source prefix /%d", ErrPack, c.SourcePrefix)
		}
		if c.ScopePrefix > 32 {
			return nil, fmt.Errorf("%w: ECS IPv4 scope prefix /%d", ErrPack, c.ScopePrefix)
		}
	case ECSFamilyIPv6:
		if !c.Address.Is6() {
			return nil, fmt.Errorf("%w: ECS family IPv6 with address %v", ErrPack, c.Address)
		}
		b := c.Address.As16()
		addrBytes = b[:]
		if c.SourcePrefix > 128 {
			return nil, fmt.Errorf("%w: ECS IPv6 source prefix /%d", ErrPack, c.SourcePrefix)
		}
		if c.ScopePrefix > 128 {
			return nil, fmt.Errorf("%w: ECS IPv6 scope prefix /%d", ErrPack, c.ScopePrefix)
		}
	default:
		return nil, fmt.Errorf("%w: ECS family %d", ErrPack, c.Family)
	}
	buf = appendUint16(buf, c.Family)
	buf = append(buf, c.SourcePrefix, c.ScopePrefix)
	// RFC 7871 §6: ADDRESS is truncated to the minimum bytes covering
	// SOURCE PREFIX-LENGTH bits, and bits beyond the prefix MUST be 0 —
	// mask the final partial byte so a hand-built option with an unmasked
	// address still packs conformantly.
	nbytes := (int(c.SourcePrefix) + 7) / 8
	buf = append(buf, addrBytes[:nbytes]...)
	if r := c.SourcePrefix % 8; r != 0 {
		buf[len(buf)-1] &= 0xFF << (8 - r)
	}
	return buf, nil
}

func unpackClientSubnet(body []byte) (*ClientSubnet, error) {
	if len(body) < 4 {
		return nil, fmt.Errorf("%w: ECS option shorter than 4 octets", ErrUnpack)
	}
	c := &ClientSubnet{
		Family:       binary.BigEndian.Uint16(body),
		SourcePrefix: body[2],
		ScopePrefix:  body[3],
	}
	addrLen := (int(c.SourcePrefix) + 7) / 8
	if len(body) != 4+addrLen {
		return nil, fmt.Errorf("%w: ECS address length %d does not match source prefix /%d",
			ErrUnpack, len(body)-4, c.SourcePrefix)
	}
	switch c.Family {
	case ECSFamilyIPv4:
		if c.SourcePrefix > 32 {
			return nil, fmt.Errorf("%w: ECS IPv4 source prefix /%d", ErrUnpack, c.SourcePrefix)
		}
		if c.ScopePrefix > 32 {
			// RFC 7871 §7.3: a response scope wider than the family's bit
			// length is malformed; accepting it would leave caches with a
			// prefix they cannot represent. ErrECSScope under ErrUnpack so
			// callers can classify either way.
			return nil, fmt.Errorf("%w: %w: IPv4 scope /%d", ErrUnpack, ErrECSScope, c.ScopePrefix)
		}
		var b [4]byte
		copy(b[:], body[4:])
		c.Address = netip.AddrFrom4(b)
	case ECSFamilyIPv6:
		if c.SourcePrefix > 128 {
			return nil, fmt.Errorf("%w: ECS IPv6 source prefix /%d", ErrUnpack, c.SourcePrefix)
		}
		if c.ScopePrefix > 128 {
			return nil, fmt.Errorf("%w: %w: IPv6 scope /%d", ErrUnpack, ErrECSScope, c.ScopePrefix)
		}
		var b [16]byte
		copy(b[:], body[4:])
		c.Address = netip.AddrFrom16(b)
	default:
		return nil, fmt.Errorf("%w: ECS family %d", ErrUnpack, c.Family)
	}
	// RFC 7871 §6 requires every address bit beyond SOURCE PREFIX-LENGTH
	// to be zero. The length check above already rejects surplus whole
	// bytes, so only the final partial byte can smuggle bits in. Flag the
	// violation rather than failing the whole message parse: responders
	// need the parsed message (ID, question) to answer FORMERR per §7.1.2.
	if r := c.SourcePrefix % 8; r != 0 {
		if body[4+addrLen-1]&^(0xFF<<(8-r)) != 0 {
			c.NonZeroPad = true
		}
	}
	return c, nil
}
