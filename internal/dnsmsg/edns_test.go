package dnsmsg

import (
	"errors"
	"net/netip"
	"testing"
)

// TestScopedPrefixZeroScopeFallsBack is the regression test for the
// scope-0 caching bug: RFC 7871 §7.3.1 says a response with SCOPE
// PREFIX-LENGTH 0 is valid for all addresses but is still cached under
// the query's SOURCE PREFIX-LENGTH. ScopedPrefix used to return a /0 in
// that case, which would have let one client's answer shadow the entire
// address family in any cache keyed by ScopedPrefix.
func TestScopedPrefixZeroScopeFallsBack(t *testing.T) {
	ecs, err := NewClientSubnet(netip.MustParseAddr("203.0.113.77"), 24)
	if err != nil {
		t.Fatal(err)
	}
	// Query-side option: scope 0.
	if got, want := ecs.ScopedPrefix(), netip.MustParsePrefix("203.0.113.0/24"); got != want {
		t.Errorf("scope 0 ScopedPrefix = %v, want source prefix %v", got, want)
	}
	// Response-side scope narrower than source still wins.
	ecs.ScopePrefix = 20
	if got, want := ecs.ScopedPrefix(), netip.MustParsePrefix("203.0.112.0/20"); got != want {
		t.Errorf("scope 20 ScopedPrefix = %v, want %v", got, want)
	}
	// Source 0 with scope 0 genuinely means the whole family.
	zero, err := NewClientSubnet(netip.MustParseAddr("203.0.113.77"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := zero.ScopedPrefix(), netip.MustParsePrefix("0.0.0.0/0"); got != want {
		t.Errorf("source 0 ScopedPrefix = %v, want %v", got, want)
	}
}

// TestECSNonZeroPadDetected checks RFC 7871 §6 enforcement: address bits
// beyond SOURCE PREFIX-LENGTH must be zero, and an option violating that
// is flagged (for a §7.1.2 FORMERR) rather than silently accepted or
// fatally rejected.
func TestECSNonZeroPadDetected(t *testing.T) {
	// family 1, source /20, scope 0, address 203.0.113 — 0x71 has bits
	// set beyond the 20th (mask for /20's last byte is 0xF0).
	body := []byte{0x00, 0x01, 20, 0, 203, 0, 0x71}
	ecs, err := unpackClientSubnet(body)
	if err != nil {
		t.Fatalf("pad violation must parse (FORMERR needs the message): %v", err)
	}
	if !ecs.NonZeroPad {
		t.Error("non-zero pad bits not flagged")
	}
	if ecs.QueryConformant() {
		t.Error("pad violation reported as query-conformant")
	}
	// The wire address is preserved for logging...
	if ecs.Address != netip.MustParseAddr("203.0.113.0") {
		t.Errorf("wire address not preserved: %v", ecs.Address)
	}
	// ...but repacking re-masks, so the violation never propagates.
	repacked, err := ecs.packOption(nil)
	if err != nil {
		t.Fatal(err)
	}
	again, err := unpackClientSubnet(repacked)
	if err != nil {
		t.Fatal(err)
	}
	if again.NonZeroPad {
		t.Error("repacked option still carries pad bits")
	}
	if again.Address != netip.MustParseAddr("203.0.112.0") {
		t.Errorf("repacked address = %v, want masked 203.0.112.0", again.Address)
	}

	// A conformant body is not flagged.
	clean := []byte{0x00, 0x01, 20, 0, 203, 0, 0x70}
	ecs, err = unpackClientSubnet(clean)
	if err != nil {
		t.Fatal(err)
	}
	if ecs.NonZeroPad || !ecs.QueryConformant() {
		t.Error("conformant option flagged as violating")
	}
}

// TestQueryConformantScope checks the other §7.1.2 requirement: SCOPE
// PREFIX-LENGTH must be 0 in queries.
func TestQueryConformantScope(t *testing.T) {
	ecs, err := NewClientSubnet(netip.MustParseAddr("203.0.113.77"), 24)
	if err != nil {
		t.Fatal(err)
	}
	if !ecs.QueryConformant() {
		t.Error("fresh query option not conformant")
	}
	ecs.ScopePrefix = 24
	if ecs.QueryConformant() {
		t.Error("non-zero scope reported as query-conformant")
	}
}

// TestScopedPrefixOverflow is the regression test for the malformed-scope
// bug: a response whose SCOPE PREFIX-LENGTH exceeds the address family's
// bit length (33+ for IPv4, 129+ for IPv6) used to make ScopedPrefix
// return the zero netip.Prefix with no indication anything was wrong, so
// a cache keyed on it would file the answer under an invalid prefix.
// ScopedPrefixChecked must surface ErrECSScope instead.
func TestScopedPrefixOverflow(t *testing.T) {
	cases := []struct {
		name  string
		addr  string
		scope uint8
	}{
		{"v4-scope-33", "203.0.113.77", 33},
		{"v4-scope-255", "203.0.113.77", 255},
		{"v6-scope-129", "2001:db8::1", 129},
		{"v6-scope-200", "2001:db8::1", 200},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			src := uint8(24)
			if netip.MustParseAddr(c.addr).Is6() {
				src = 56
			}
			ecs, err := NewClientSubnet(netip.MustParseAddr(c.addr), src)
			if err != nil {
				t.Fatal(err)
			}
			ecs.ScopePrefix = c.scope
			if _, err := ecs.ScopedPrefixChecked(); !errors.Is(err, ErrECSScope) {
				t.Errorf("ScopedPrefixChecked() err = %v, want ErrECSScope", err)
			}
			if p := ecs.ScopedPrefix(); p.IsValid() {
				t.Errorf("ScopedPrefix() = %v, want the invalid zero prefix", p)
			}
			// The malformed option must not pack either.
			if _, err := ecs.packOption(nil); !errors.Is(err, ErrPack) {
				t.Errorf("packOption() err = %v, want ErrPack", err)
			}
		})
	}
}

// TestUnpackRejectsOverflowScope checks the wire-level half: a response
// option carrying an out-of-family scope is rejected during parse, so the
// malformed answer never reaches a cache at all.
func TestUnpackRejectsOverflowScope(t *testing.T) {
	cases := []struct {
		name string
		body []byte
	}{
		{"v4-scope-33", []byte{0x00, 0x01, 24, 33, 203, 0, 113}},
		{"v6-scope-129", []byte{0x00, 0x02, 56, 129, 0x20, 0x01, 0x0d, 0xb8, 0x12, 0x34, 0x56}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := unpackClientSubnet(c.body)
			if !errors.Is(err, ErrUnpack) {
				t.Errorf("unpack err = %v, want ErrUnpack", err)
			}
			if !errors.Is(err, ErrECSScope) {
				t.Errorf("unpack err = %v, want ErrECSScope", err)
			}
		})
	}
	// Scope at exactly the family width stays legal.
	for _, body := range [][]byte{
		{0x00, 0x01, 24, 32, 203, 0, 113},
		{0x00, 0x02, 56, 128, 0x20, 0x01, 0x0d, 0xb8, 0x12, 0x34, 0x56},
	} {
		if _, err := unpackClientSubnet(body); err != nil {
			t.Errorf("full-width scope rejected: %v", err)
		}
	}
}

// TestPackOptionMasksHandBuiltAddress checks the pack-side half of the §6
// invariant: a hand-assembled ClientSubnet whose Address carries bits
// beyond SourcePrefix packs with those bits zeroed.
func TestPackOptionMasksHandBuiltAddress(t *testing.T) {
	ecs := &ClientSubnet{
		Family:       ECSFamilyIPv4,
		SourcePrefix: 21,
		Address:      netip.MustParseAddr("10.20.31.0"), // 31 = 0b00011111, /21 keeps 0b00011000
	}
	wire, err := ecs.packOption(nil)
	if err != nil {
		t.Fatal(err)
	}
	want := []byte{0x00, 0x01, 21, 0, 10, 20, 0x18}
	if string(wire) != string(want) {
		t.Errorf("packed = %x, want %x", wire, want)
	}
}
