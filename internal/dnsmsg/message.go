package dnsmsg

import (
	"encoding/binary"
	"fmt"
	"net/netip"
	"strings"
	"sync"
)

// Header is the fixed 12-octet DNS message header (RFC 1035 §4.1.1),
// with the flag bits broken out.
type Header struct {
	ID                 uint16
	Response           bool   // QR
	OpCode             OpCode // 4 bits
	Authoritative      bool   // AA
	Truncated          bool   // TC
	RecursionDesired   bool   // RD
	RecursionAvailable bool   // RA
	RCode              RCode  // 4 bits here; extended by EDNS0
}

// Message is a complete DNS message. EDNS0 state (UDP size, extended
// RCode) is carried in the explicit fields and materialised as an OPT
// pseudo-RR in the additional section during packing; the reverse happens
// on unpack, so Additionals never contains the OPT itself.
type Message struct {
	Header
	Questions   []Question
	Answers     []RR
	Authorities []RR
	Additionals []RR

	// EDNS reports whether the message carries an OPT record.
	EDNS bool
	// UDPSize is the advertised EDNS0 UDP payload size (query) or the
	// responder's size (response). Zero means DefaultUDPSize when EDNS
	// is set.
	UDPSize uint16
	// Options are the EDNS0 options carried in the OPT record, e.g. the
	// ClientSubnet option.
	Options []EDNSOption
}

// NewQuery builds a standard recursive query for (name, type) with a fresh
// EDNS0 OPT record.
func NewQuery(id uint16, name Name, typ Type) *Message {
	return &Message{
		Header: Header{
			ID:               id,
			OpCode:           OpCodeQuery,
			RecursionDesired: true,
		},
		Questions: []Question{{Name: name.Canonical(), Type: typ, Class: ClassINET}},
		EDNS:      true,
		UDPSize:   DefaultUDPSize,
	}
}

// Reply builds a response skeleton for q: same ID, same question, QR set,
// and EDNS mirrored if the query used it.
func (m *Message) Reply() *Message {
	r := &Message{
		Header: Header{
			ID:               m.ID,
			Response:         true,
			OpCode:           m.OpCode,
			RecursionDesired: m.RecursionDesired,
		},
		EDNS: m.EDNS,
	}
	if m.EDNS {
		r.UDPSize = DefaultUDPSize
	}
	r.Questions = append(r.Questions, m.Questions...)
	return r
}

// ClientSubnet returns the first ECS option in the message, or nil.
func (m *Message) ClientSubnet() *ClientSubnet {
	for _, o := range m.Options {
		if ecs, ok := o.(*ClientSubnet); ok {
			return ecs
		}
	}
	return nil
}

// SetClientSubnet attaches a query-side ECS option for addr/sourcePrefix,
// replacing any existing ECS option and enabling EDNS.
func (m *Message) SetClientSubnet(addr netip.Addr, sourcePrefix uint8) error {
	ecs, err := NewClientSubnet(addr, sourcePrefix)
	if err != nil {
		return err
	}
	m.EDNS = true
	if m.UDPSize == 0 {
		m.UDPSize = DefaultUDPSize
	}
	out := m.Options[:0]
	for _, o := range m.Options {
		if o.Code() != OptionCodeClientSubnet {
			out = append(out, o)
		}
	}
	m.Options = append(out, ecs)
	return nil
}

// compressorPool recycles compression maps across Pack calls, so the
// serving hot path does not allocate a fresh map per response.
var compressorPool = sync.Pool{
	New: func() any { return make(compressor, 8) },
}

// Pack encodes the message to wire format with name compression.
func (m *Message) Pack() ([]byte, error) {
	return m.AppendPack(make([]byte, 0, 512))
}

// AppendPack encodes the message into buf, which must be empty (length
// zero): compression offsets are relative to the start of the buffer. The
// buffer's capacity is reused, so callers can recycle wire buffers across
// messages (e.g. via a sync.Pool) and pack without allocating.
func (m *Message) AppendPack(buf []byte) ([]byte, error) {
	if len(buf) != 0 {
		return nil, fmt.Errorf("%w: AppendPack buffer must be empty", ErrPack)
	}
	var flags uint16
	if m.Response {
		flags |= 1 << 15
	}
	flags |= uint16(m.OpCode&0xF) << 11
	if m.Authoritative {
		flags |= 1 << 10
	}
	if m.Truncated {
		flags |= 1 << 9
	}
	if m.RecursionDesired {
		flags |= 1 << 8
	}
	if m.RecursionAvailable {
		flags |= 1 << 7
	}
	flags |= uint16(m.RCode & 0xF)

	additionals := len(m.Additionals)
	if m.EDNS {
		additionals++
	}
	for _, n := range []int{len(m.Questions), len(m.Answers), len(m.Authorities), additionals} {
		if n > 0xFFFF {
			return nil, fmt.Errorf("%w: section count %d overflows", ErrPack, n)
		}
	}

	buf = appendUint16(buf, m.ID)
	buf = appendUint16(buf, flags)
	buf = appendUint16(buf, uint16(len(m.Questions)))
	buf = appendUint16(buf, uint16(len(m.Answers)))
	buf = appendUint16(buf, uint16(len(m.Authorities)))
	buf = appendUint16(buf, uint16(additionals))

	cmp := compressorPool.Get().(compressor)
	defer func() {
		clear(cmp)
		compressorPool.Put(cmp)
	}()
	var err error
	for _, q := range m.Questions {
		if buf, err = q.pack(buf, cmp); err != nil {
			return nil, err
		}
	}
	for _, sec := range [][]RR{m.Answers, m.Authorities, m.Additionals} {
		for _, rr := range sec {
			if buf, err = rr.pack(buf, cmp); err != nil {
				return nil, err
			}
		}
	}
	if m.EDNS {
		size := m.UDPSize
		if size == 0 {
			size = DefaultUDPSize
		}
		extRCode := uint32(m.RCode>>4) & 0xFF
		opt := RR{
			Name:  "", // root
			Class: Class(size),
			TTL:   extRCode << 24,
			Data:  &OPT{Options: m.Options},
		}
		if buf, err = opt.pack(buf, cmp); err != nil {
			return nil, err
		}
	}
	return buf, nil
}

// Reset clears the message for reuse, keeping the capacity of its section
// slices so a recycled message can be unpacked into without reallocating.
func (m *Message) Reset() {
	m.Header = Header{}
	m.Questions = m.Questions[:0]
	m.Answers = m.Answers[:0]
	m.Authorities = m.Authorities[:0]
	m.Additionals = m.Additionals[:0]
	m.EDNS = false
	m.UDPSize = 0
	m.Options = nil
}

// Unpack decodes a wire-format message.
func Unpack(wire []byte) (*Message, error) {
	m := &Message{}
	if err := UnpackInto(m, wire); err != nil {
		return nil, err
	}
	return m, nil
}

// UnpackInto decodes a wire-format message into m, resetting it first.
// Reusing one message across datagrams (e.g. from a sync.Pool) avoids the
// per-query Message and section-slice allocations on a server's read path.
// Strings and RData values still allocate: they outlive the wire buffer.
func UnpackInto(m *Message, wire []byte) error {
	m.Reset()
	if len(wire) < 12 {
		return ErrBufferTooSmall
	}
	m.ID = binary.BigEndian.Uint16(wire)
	flags := binary.BigEndian.Uint16(wire[2:])
	m.Response = flags&(1<<15) != 0
	m.OpCode = OpCode(flags >> 11 & 0xF)
	m.Authoritative = flags&(1<<10) != 0
	m.Truncated = flags&(1<<9) != 0
	m.RecursionDesired = flags&(1<<8) != 0
	m.RecursionAvailable = flags&(1<<7) != 0
	m.RCode = RCode(flags & 0xF)

	qd := int(binary.BigEndian.Uint16(wire[4:]))
	an := int(binary.BigEndian.Uint16(wire[6:]))
	ns := int(binary.BigEndian.Uint16(wire[8:]))
	ar := int(binary.BigEndian.Uint16(wire[10:]))

	off := 12
	var err error
	for i := 0; i < qd; i++ {
		var q Question
		if q, off, err = unpackQuestion(wire, off); err != nil {
			return err
		}
		m.Questions = append(m.Questions, q)
	}
	for _, sec := range []struct {
		n   int
		dst *[]RR
	}{{an, &m.Answers}, {ns, &m.Authorities}, {ar, &m.Additionals}} {
		for i := 0; i < sec.n; i++ {
			var rr RR
			if rr, off, err = unpackRR(wire, off); err != nil {
				return err
			}
			if opt, ok := rr.Data.(*OPT); ok {
				if m.EDNS {
					return fmt.Errorf("%w: multiple OPT records", ErrUnpack)
				}
				m.EDNS = true
				m.UDPSize = uint16(rr.Class)
				m.Options = opt.Options
				m.RCode |= RCode(rr.TTL>>24&0xFF) << 4
				continue
			}
			*sec.dst = append(*sec.dst, rr)
		}
	}
	return nil
}

// String renders the message in a dig-like multi-section format.
func (m *Message) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, ";; id %d %s", m.ID, m.RCode)
	if m.Response {
		sb.WriteString(" qr")
	}
	if m.Authoritative {
		sb.WriteString(" aa")
	}
	if m.RecursionDesired {
		sb.WriteString(" rd")
	}
	if m.RecursionAvailable {
		sb.WriteString(" ra")
	}
	if m.EDNS {
		fmt.Fprintf(&sb, " edns(udp=%d", m.UDPSize)
		for _, o := range m.Options {
			fmt.Fprintf(&sb, " %v", o)
		}
		sb.WriteString(")")
	}
	sb.WriteString("\n")
	for _, q := range m.Questions {
		fmt.Fprintf(&sb, ";; question: %s\n", q)
	}
	for _, rr := range m.Answers {
		fmt.Fprintf(&sb, "%s\n", rr)
	}
	for _, rr := range m.Authorities {
		fmt.Fprintf(&sb, ";; authority: %s\n", rr)
	}
	for _, rr := range m.Additionals {
		fmt.Fprintf(&sb, ";; additional: %s\n", rr)
	}
	return sb.String()
}
