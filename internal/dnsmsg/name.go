package dnsmsg

import (
	"fmt"
	"strings"
)

// Name is a fully-qualified domain name in presentation form. Names are
// stored without a trailing dot; the root zone is the empty string.
// Comparison and compression are case-insensitive per RFC 1035 §2.3.3.
type Name string

// Canonical returns the name lower-cased with any trailing dot removed,
// the form used as map keys throughout the mapping system.
func (n Name) Canonical() Name {
	s := strings.TrimSuffix(string(n), ".")
	return Name(strings.ToLower(s))
}

// Labels splits the name into its labels; the root name has no labels.
func (n Name) Labels() []string {
	s := string(n.Canonical())
	if s == "" {
		return nil
	}
	return strings.Split(s, ".")
}

// IsSubdomainOf reports whether n is equal to or a subdomain of parent.
func (n Name) IsSubdomainOf(parent Name) bool {
	ns, ps := string(n.Canonical()), string(parent.Canonical())
	if ps == "" {
		return true
	}
	return ns == ps || strings.HasSuffix(ns, "."+ps)
}

// validate checks RFC 1035 length limits: each label <= 63 octets and the
// whole encoded name <= 255 octets. It scans the canonical string directly
// rather than splitting it, so validation performs no allocation on the
// packing hot path.
func (n Name) validate() error {
	s := string(n.Canonical())
	if s == "" {
		return nil
	}
	encoded := 1 // terminating root
	start := 0
	for i := 0; i <= len(s); i++ {
		if i < len(s) && s[i] != '.' {
			continue
		}
		l := i - start
		if l == 0 {
			return fmt.Errorf("%w: empty label in %q", ErrPack, string(n))
		}
		if l > 63 {
			return ErrLabelTooLong
		}
		encoded += 1 + l
		start = i + 1
	}
	if encoded > 255 {
		return ErrNameTooLong
	}
	return nil
}

// compressor tracks names already emitted during packing so later
// occurrences can be replaced by 2-byte compression pointers (RFC 1035
// §4.1.4). Pointers may only target offsets < 0x4000.
type compressor map[string]int

// packName appends the wire encoding of n to buf, compressing against
// previously packed names, and returns the extended buffer. Suffix keys
// are substrings of the canonical name, so packing an already-canonical
// name allocates nothing beyond buffer growth.
func packName(buf []byte, n Name, cmp compressor) ([]byte, error) {
	if err := n.validate(); err != nil {
		return nil, err
	}
	s := string(n.Canonical())
	for start := 0; start < len(s); {
		suffix := s[start:]
		if off, ok := cmp[suffix]; ok {
			return append(buf, 0xC0|byte(off>>8), byte(off)), nil
		}
		if off := len(buf); off < 0x4000 && cmp != nil {
			cmp[suffix] = off
		}
		end := strings.IndexByte(suffix, '.')
		if end < 0 {
			end = len(suffix)
		}
		buf = append(buf, byte(end))
		buf = append(buf, suffix[:end]...)
		start += end + 1
	}
	return append(buf, 0), nil
}

// unpackName decodes a possibly-compressed name starting at off in msg.
// It returns the name and the offset of the first byte after the name's
// encoding in the original (non-pointer-following) stream.
func unpackName(msg []byte, off int) (Name, int, error) {
	var sb strings.Builder
	// next is the offset to return: set the first time we follow a pointer.
	next := -1
	ptrHops := 0
	for {
		if off >= len(msg) {
			return "", 0, ErrBufferTooSmall
		}
		b := msg[off]
		switch {
		case b == 0:
			if next == -1 {
				next = off + 1
			}
			return Name(sb.String()), next, nil
		case b&0xC0 == 0xC0:
			if off+1 >= len(msg) {
				return "", 0, ErrBufferTooSmall
			}
			ptr := int(b&0x3F)<<8 | int(msg[off+1])
			if next == -1 {
				next = off + 2
			}
			ptrHops++
			// A name has at most 127 labels; any pointer chain longer than
			// that must contain a loop.
			if ptrHops > 127 || ptr >= off {
				return "", 0, ErrCompressionLoop
			}
			off = ptr
		case b&0xC0 != 0:
			return "", 0, fmt.Errorf("%w: reserved label type 0x%02x", ErrUnpack, b&0xC0)
		default:
			l := int(b)
			if off+1+l > len(msg) {
				return "", 0, ErrBufferTooSmall
			}
			if sb.Len() > 0 {
				sb.WriteByte('.')
			}
			sb.Write(msg[off+1 : off+1+l])
			if sb.Len() > 255 {
				return "", 0, fmt.Errorf("%w: name too long", ErrUnpack)
			}
			off += 1 + l
		}
	}
}
