package dnsmsg

import (
	"errors"
	"net/netip"
	"strings"
	"testing"
)

func TestTypeStrings(t *testing.T) {
	cases := map[Type]string{
		TypeA: "A", TypeNS: "NS", TypeCNAME: "CNAME", TypeSOA: "SOA",
		TypePTR: "PTR", TypeTXT: "TXT", TypeAAAA: "AAAA", TypeOPT: "OPT",
		TypeANY: "ANY", Type(99): "TYPE99",
	}
	for typ, want := range cases {
		if got := typ.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", typ, got, want)
		}
	}
}

func TestClassStrings(t *testing.T) {
	if ClassINET.String() != "IN" {
		t.Error("IN string wrong")
	}
	if Class(3).String() != "CLASS3" {
		t.Error("unknown class string wrong")
	}
}

func TestRCodeStrings(t *testing.T) {
	cases := map[RCode]string{
		RCodeSuccess: "NOERROR", RCodeFormatError: "FORMERR",
		RCodeServerFailure: "SERVFAIL", RCodeNameError: "NXDOMAIN",
		RCodeNotImplemented: "NOTIMP", RCodeRefused: "REFUSED",
		RCodeBadVers: "BADVERS", RCode(200): "RCODE200",
	}
	for rc, want := range cases {
		if got := rc.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", rc, got, want)
		}
	}
}

func TestRRString(t *testing.T) {
	rr := RR{Name: "X.Example.NET", Class: ClassINET, TTL: 30,
		Data: &A{Addr: netip.MustParseAddr("192.0.2.1")}}
	s := rr.String()
	for _, want := range []string{"x.example.net", "30", "IN", "A", "192.0.2.1"} {
		if !strings.Contains(s, want) {
			t.Errorf("RR string %q missing %q", s, want)
		}
	}
}

func TestRDataStrings(t *testing.T) {
	cases := []struct {
		data RData
		want string
	}{
		{&A{Addr: netip.MustParseAddr("192.0.2.1")}, "192.0.2.1"},
		{&AAAA{Addr: netip.MustParseAddr("2001:db8::1")}, "2001:db8::1"},
		{&CNAME{Target: "T.Example.COM"}, "t.example.com"},
		{&NS{Host: "NS1.Example.com"}, "ns1.example.com"},
		{&PTR{Target: "p.example.com"}, "p.example.com"},
		{&TXT{Strings: []string{"a", "b"}}, `"a" "b"`},
		{&Unknown{Typ: Type(99), Raw: []byte{0xAB}}, "\\# 1 ab"},
	}
	for _, c := range cases {
		got := c.data.(interface{ String() string }).String()
		if !strings.Contains(got, c.want) {
			t.Errorf("%T.String() = %q, want contains %q", c.data, got, c.want)
		}
	}
}

func TestQuestionString(t *testing.T) {
	q := Question{Name: "Foo.NET", Type: TypeAAAA, Class: ClassINET}
	if got := q.String(); got != "foo.net IN AAAA" {
		t.Errorf("Question.String() = %q", got)
	}
}

func TestPackErrors(t *testing.T) {
	base := func() *Message {
		m := &Message{Header: Header{ID: 1, Response: true}}
		m.Questions = []Question{{Name: "x.net", Type: TypeA, Class: ClassINET}}
		return m
	}
	cases := []struct {
		name string
		rr   RR
	}{
		{"nil-data", RR{Name: "x.net", Class: ClassINET}},
		{"a-with-v6", RR{Name: "x.net", Class: ClassINET,
			Data: &A{Addr: netip.MustParseAddr("2001:db8::1")}}},
		{"aaaa-with-v4", RR{Name: "x.net", Class: ClassINET,
			Data: &AAAA{Addr: netip.MustParseAddr("192.0.2.1")}}},
		{"txt-empty", RR{Name: "x.net", Class: ClassINET, Data: &TXT{}}},
		{"txt-overlong-string", RR{Name: "x.net", Class: ClassINET,
			Data: &TXT{Strings: []string{strings.Repeat("a", 256)}}}},
		{"bad-owner", RR{Name: Name(strings.Repeat("a", 64) + ".net"), Class: ClassINET,
			Data: &A{Addr: netip.MustParseAddr("192.0.2.1")}}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			m := base()
			m.Answers = []RR{c.rr}
			if _, err := m.Pack(); !errors.Is(err, ErrPack) {
				t.Errorf("err = %v, want ErrPack", err)
			}
		})
	}
}

func TestECSPackErrors(t *testing.T) {
	cases := []*ClientSubnet{
		{Family: 9, SourcePrefix: 8, Address: netip.MustParseAddr("10.0.0.0")},
		{Family: ECSFamilyIPv4, SourcePrefix: 40, Address: netip.MustParseAddr("10.0.0.0")},
		{Family: ECSFamilyIPv4, SourcePrefix: 8, Address: netip.MustParseAddr("2001:db8::")},
		{Family: ECSFamilyIPv6, SourcePrefix: 8, Address: netip.MustParseAddr("10.0.0.0")},
	}
	for i, ecs := range cases {
		if _, err := ecs.packOption(nil); err == nil {
			t.Errorf("case %d: bad ECS packed", i)
		}
	}
}

func TestECSStringAndPrefixes(t *testing.T) {
	ecs, err := NewClientSubnet(netip.MustParseAddr("203.0.113.99"), 24)
	if err != nil {
		t.Fatal(err)
	}
	ecs.ScopePrefix = 20
	if got := ecs.String(); got != "ecs 203.0.113.0/24/20" {
		t.Errorf("String = %q", got)
	}
	if ecs.Prefix().Bits() != 24 || ecs.ScopedPrefix().Bits() != 20 {
		t.Error("prefix bits wrong")
	}
}

func TestRawOptionRoundTrip(t *testing.T) {
	m := NewQuery(8, "x.net", TypeA)
	m.Options = append(m.Options, &RawOption{OptCode: 10, Data: []byte{1, 2, 3, 4, 5, 6, 7, 8}}) // COOKIE-ish
	wire, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unpack(wire)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Options) != 1 {
		t.Fatalf("options = %d", len(got.Options))
	}
	raw := got.Options[0].(*RawOption)
	if raw.OptCode != 10 || len(raw.Data) != 8 {
		t.Errorf("raw option = %+v", raw)
	}
	if !strings.Contains(raw.String(), "opt10") {
		t.Errorf("raw option string = %q", raw.String())
	}
}

func TestSOAString(t *testing.T) {
	soa := &SOA{MName: "NS1.x.NET", RName: "h.x.net", Serial: 1, Refresh: 2, Retry: 3, Expire: 4, Minimum: 5}
	got := soa.String()
	if !strings.Contains(got, "ns1.x.net") || !strings.Contains(got, "5") {
		t.Errorf("SOA string = %q", got)
	}
}

func TestOPTString(t *testing.T) {
	o := &OPT{Options: []EDNSOption{&RawOption{OptCode: 1, Data: []byte{0xFF}}}}
	if !strings.Contains(o.String(), "OPT") {
		t.Errorf("OPT string = %q", o.String())
	}
}

func TestPTRRoundTrip(t *testing.T) {
	m := &Message{Header: Header{ID: 2, Response: true}}
	m.Answers = []RR{{Name: "1.2.0.192.in-addr.arpa", Class: ClassINET, TTL: 60,
		Data: &PTR{Target: "host.example.net"}}}
	wire, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unpack(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got.Answers[0].Data.(*PTR).Target != "host.example.net" {
		t.Error("PTR round trip failed")
	}
}

func TestAAAARoundTrip(t *testing.T) {
	m := &Message{Header: Header{ID: 3, Response: true}}
	m.Answers = []RR{{Name: "v6.example.net", Class: ClassINET, TTL: 60,
		Data: &AAAA{Addr: netip.MustParseAddr("2001:db8::42")}}}
	wire, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unpack(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got.Answers[0].Data.(*AAAA).Addr != netip.MustParseAddr("2001:db8::42") {
		t.Error("AAAA round trip failed")
	}
}

func TestTruncatedRDataLengths(t *testing.T) {
	// Valid message, then corrupt the RDLENGTH of the A record so the
	// declared RDATA length is wrong.
	m := &Message{Header: Header{ID: 4, Response: true}}
	m.Answers = []RR{{Name: "a.net", Class: ClassINET, TTL: 1,
		Data: &A{Addr: netip.MustParseAddr("192.0.2.1")}}}
	wire, _ := m.Pack()
	// A record RDATA is the last 4 bytes; RDLENGTH the 2 before.
	wire[len(wire)-5] = 3 // claim 3-byte A record
	if _, err := Unpack(wire[:len(wire)-1]); err == nil {
		t.Error("3-byte A record accepted")
	}
}

func TestNameValidateEmptyLabel(t *testing.T) {
	if _, err := packName(nil, "a..b", nil); !errors.Is(err, ErrPack) {
		t.Errorf("empty label: err = %v", err)
	}
}
