package mapping

import (
	"math"
	"time"

	"eum/internal/netmodel"
)

// This file is the snapshot's wire-support surface: the exported, stable
// view of a snapshot's internals that internal/mapwire serializes, and the
// constructors that rebuild an installable snapshot from decoded parts.
// Everything here preserves the package invariant that snapshots are
// immutable after construction — decode allocates fresh backing arrays and
// never aliases caller memory into a snapshot mutably.

// WireLayout is the serializable description of a snapshot's partition
// layout. It mirrors partitionLayout field-for-field with exported names;
// the segment list is split into parallel target/representative slices so
// the encoder can write flat arrays.
type WireLayout struct {
	// NParts is the universe partition count, excluding the two fallbacks.
	NParts int
	// FallbackLDNS / FallbackClient are the partition indexes of the two
	// synthetic fallback endpoints (always the last two partitions).
	FallbackLDNS   int32
	FallbackClient int32
	// Dense, SpillIDs, SpillIdx form the endpoint-ID → partition index.
	Dense    []int32
	SpillIDs []uint64
	SpillIdx []int32
	// PartSeg maps partition → arena segment.
	PartSeg []int32
	// SegTargets / SegReps describe the distinct rank tables: the scorer
	// target index interned onto segment s (or -1), and the partition
	// representative ranked into it.
	SegTargets []int32
	SegReps    []netmodel.Endpoint
	// TableLen is entries per table = len(platform.Deployments).
	TableLen int
	// Endpoints is the number of distinct endpoint IDs indexed.
	Endpoints int
}

// WireLayout returns the snapshot's partition layout in serializable form.
// The returned slices alias the layout's backing arrays; callers must not
// modify them.
func (sn *Snapshot) WireLayout() WireLayout {
	lay := sn.lay
	wl := WireLayout{
		NParts:         lay.nParts,
		FallbackLDNS:   lay.fallbackLDNS,
		FallbackClient: lay.fallbackClient,
		Dense:          lay.dense,
		SpillIDs:       lay.spillIDs,
		SpillIdx:       lay.spillIdx,
		PartSeg:        lay.partSeg,
		TableLen:       lay.tableLen,
		Endpoints:      lay.endpoints,
	}
	wl.SegTargets = make([]int32, len(lay.segments))
	wl.SegReps = make([]netmodel.Endpoint, len(lay.segments))
	for s, seg := range lay.segments {
		wl.SegTargets[s] = seg.target
		wl.SegReps[s] = seg.rep
	}
	return wl
}

// SegmentTable returns arena segment s's rank table (tableLen entries,
// best first). The slice is immutable; callers must not modify it.
func (sn *Snapshot) SegmentTable(s int) []Ranked { return sn.segData(int32(s)) }

// SharesSegmentWith reports whether segment s's table in sn is the same
// backing storage as in prev — i.e. the segment was not re-ranked between
// the two snapshots and a delta encoding may omit it. It is conservative:
// a false answer only costs wire bytes, never correctness. Snapshots built
// from different layouts never share.
func (sn *Snapshot) SharesSegmentWith(prev *Snapshot, s int) bool {
	if prev == nil || prev.lay != sn.lay {
		return false
	}
	a, b := sn.segData(int32(s)), prev.segData(int32(s))
	return len(a) > 0 && len(b) > 0 && &a[0] == &b[0]
}

// CANSTables returns the snapshot's precomputed ClientAwareNS candidate
// lists keyed by LDNS ID, or nil for other policies. Callers must not
// modify the map or the tables.
func (sn *Snapshot) CANSTables() map[uint64][]Ranked { return sn.cans }

// ArenaChainLen returns the length of the snapshot's arena chain (1 for a
// freshly built or decoded snapshot; grows with incremental builds until
// compaction).
func (sn *Snapshot) ArenaChainLen() int { return len(sn.arenas) }

// LayoutFingerprint returns a hash of the snapshot's partition layout:
// the index arrays, segment interning and table geometry, but not the
// table contents. Two processes that built their layouts from the same
// world, platform and config agree on it; the wire protocol uses it to
// negotiate deltas (which only make sense against an identical layout)
// and to reject snapshots built for a different universe.
func (sn *Snapshot) LayoutFingerprint() uint64 { return sn.lay.fingerprint() }

// fingerprint lazily computes and caches the layout hash. Layouts are
// immutable after buildLayout, so computing once is safe; snapshots share
// the layout, so every epoch pays nothing after the first call.
func (lay *partitionLayout) fingerprint() uint64 {
	lay.fpOnce.Do(func() {
		h := uint64(fnvOffset64)
		mix := func(v uint64) {
			for i := 0; i < 8; i++ {
				h ^= (v >> (8 * i)) & 0xff
				h *= fnvPrime64
			}
		}
		mix(uint64(lay.nParts))
		mix(uint64(lay.tableLen))
		mix(uint64(lay.endpoints))
		mix(uint64(uint32(lay.fallbackLDNS)))
		mix(uint64(uint32(lay.fallbackClient)))
		mix(uint64(len(lay.dense)))
		for _, v := range lay.dense {
			mix(uint64(uint32(v)))
		}
		mix(uint64(len(lay.spillIDs)))
		for i, id := range lay.spillIDs {
			mix(id)
			mix(uint64(uint32(lay.spillIdx[i])))
		}
		mix(uint64(len(lay.partSeg)))
		for _, v := range lay.partSeg {
			mix(uint64(uint32(v)))
		}
		mix(uint64(len(lay.segments)))
		for _, seg := range lay.segments {
			mix(uint64(uint32(seg.target)))
			mix(seg.rep.ID)
			mix(math.Float64bits(seg.rep.Loc.Lat))
			mix(math.Float64bits(seg.rep.Loc.Lon))
			mix(uint64(seg.rep.ASN))
			mix(uint64(seg.rep.Access))
		}
		lay.fp = h
	})
	return lay.fp
}

// AssembleSnapshot rebuilds an installable snapshot from decoded wire
// parts: the layout description, one flat base arena holding segment s at
// offset s*TableLen, and (for ClientAwareNS) the CANS candidate map. The
// caller (the wire decoder) is responsible for validating that every index
// in wl is in range; AssembleSnapshot trusts its input.
func AssembleSnapshot(epoch uint64, policy Policy, ttl time.Duration,
	wl WireLayout, arena []Ranked, cans map[uint64][]Ranked) *Snapshot {

	lay := &partitionLayout{
		nParts:         wl.NParts,
		dense:          wl.Dense,
		spillIDs:       wl.SpillIDs,
		spillIdx:       wl.SpillIdx,
		fallbackLDNS:   wl.FallbackLDNS,
		fallbackClient: wl.FallbackClient,
		partSeg:        wl.PartSeg,
		tableLen:       wl.TableLen,
		endpoints:      wl.Endpoints,
	}
	lay.segments = make([]segmentInfo, len(wl.SegTargets))
	lay.targetSeg = make(map[int32]int32, len(wl.SegTargets))
	for s := range wl.SegTargets {
		lay.segments[s] = segmentInfo{target: wl.SegTargets[s], rep: wl.SegReps[s]}
		if t := wl.SegTargets[s]; t >= 0 {
			if _, ok := lay.targetSeg[t]; !ok {
				lay.targetSeg[t] = int32(s)
			}
		}
	}
	lay.baseSegArena = make([]int32, len(lay.segments))
	lay.baseSegOff = make([]uint32, len(lay.segments))
	for s := range lay.baseSegOff {
		lay.baseSegOff[s] = uint32(s * wl.TableLen)
	}
	return &Snapshot{
		epoch:    epoch,
		policy:   policy,
		ttl:      ttl,
		lay:      lay,
		arenas:   [][]Ranked{arena},
		segArena: lay.baseSegArena,
		segOff:   lay.baseSegOff,
		cans:     cans,
	}
}

// WithDeltaSegments derives a new snapshot from sn by replacing the given
// arena segments with fresh tables (delta holds len(segs) tables of
// tableLen entries, in segs order) — the replica-side counterpart of the
// builder's incremental build path. The layout is shared; the delta rides
// as a new arena until the chain would exceed maxArenaChain or the
// accumulated delta data would outweigh the base arena, at which point the
// result is compacted into one fresh base arena — the same policy the
// builder applies, so replica memory stays bounded no matter how many
// deltas it applies. Delta application never carries CANS tables (the
// encoder refuses deltas for CANS snapshots).
func (sn *Snapshot) WithDeltaSegments(epoch uint64, policy Policy,
	ttl time.Duration, segs []int32, delta []Ranked) *Snapshot {

	lay := sn.lay
	tl := lay.tableLen
	out := &Snapshot{epoch: epoch, policy: policy, ttl: ttl, lay: lay}

	prevDelta := 0
	for _, a := range sn.arenas[1:] {
		prevDelta += len(a)
	}
	if len(sn.arenas) >= maxArenaChain || prevDelta+len(delta) > len(sn.arenas[0]) {
		dirty := make(map[int32]int, len(segs))
		for i, s := range segs {
			dirty[s] = i
		}
		arena := make([]Ranked, len(lay.segments)*tl)
		for s := range lay.segments {
			dst := arena[s*tl : (s+1)*tl]
			if i, ok := dirty[int32(s)]; ok {
				copy(dst, delta[i*tl:(i+1)*tl])
			} else {
				copy(dst, sn.segData(int32(s)))
			}
		}
		out.arenas = [][]Ranked{arena}
		out.segArena, out.segOff = lay.baseSegArena, lay.baseSegOff
		return out
	}

	segArena := append([]int32(nil), sn.segArena...)
	segOff := append([]uint32(nil), sn.segOff...)
	ai := int32(len(sn.arenas))
	for i, s := range segs {
		segArena[s] = ai
		segOff[s] = uint32(i * tl)
	}
	arenas := make([][]Ranked, 0, len(sn.arenas)+1)
	arenas = append(arenas, sn.arenas...)
	out.arenas = append(arenas, delta)
	out.segArena, out.segOff = segArena, segOff
	return out
}

// BootstrapReplica rewinds the system's epoch counter to zero and restamps
// the currently installed (locally built) snapshot as epoch 0, so that the
// first snapshot fetched from a MapMaker publisher — whose epochs start at
// 1 — always wins the Install comparison. A replica keeps its local build
// as a degraded standby: until the first fetch succeeds the staleness
// watchdog walks the degradation ladder over it exactly as over a stalled
// local control plane. Call once, after NewSystem and before serving.
func (s *System) BootstrapReplica() {
	cur := s.snap.Load()
	boot := *cur // Snapshot is a plain value: no locks or atomics inside
	boot.epoch = 0
	s.snap.Store(&boot)
	s.epoch.Store(0)
}
