package mapping

import (
	"sort"
	"sync"
	"time"
	"unsafe"

	"eum/internal/cdn"
	"eum/internal/geo"
	"eum/internal/netmodel"
	"eum/internal/par"
	"eum/internal/world"
)

// Reserved endpoint IDs for the shared fallback rank tables. World IDs are
// allocated from a small counter, so the top of the ID space is free.
const (
	fallbackLDNSID   = ^uint64(0)
	fallbackClientID = ^uint64(0) - 1
)

// Snapshot is one published map: an immutable, epoch-numbered set of rank
// tables covering every endpoint the data plane can be asked about, plus
// the policy and TTL the map was built under. The control plane (the
// MapMaker) builds snapshots in the background and installs them with a
// single atomic pointer swap; the query hot path only ever reads the
// currently installed snapshot — it never computes scores, takes locks, or
// invalidates anything.
//
// Storage is partitioned and interned: endpoints are clustered into mapping
// partitions (see buildLayout), every partition's rank table is an
// (offset, length) header into one shared []Ranked arena, and partitions
// whose measurements resolve to the same ping target share one arena
// segment. The endpoint→partition index is a flat int32 array over the
// world's dense ID space, so resident memory per block is a few bytes.
//
// This is the paper's two-plane architecture (§3–§5): topology discovery
// and scoring feed a map-making pipeline that publishes maps on a cadence,
// and the authoritative name servers serve whichever map is current.
type Snapshot struct {
	epoch  uint64
	policy Policy
	ttl    time.Duration

	// lay is the partition layout (index + partition→segment map), shared
	// across every snapshot built for the same endpoint universe.
	lay *partitionLayout
	// arenas holds the rank tables, each ordered best (lowest ping) first.
	// arenas[0] is a full base arena (segment s at offset s*tableLen);
	// incremental builds append small delta arenas carrying only the
	// re-ranked segments, and segArena/segOff locate segment s's current
	// table. A republish that changed nothing shares all three wholesale;
	// the chain is compacted back to one arena at maxArenaChain.
	arenas   [][]Ranked
	segArena []int32
	segOff   []uint32

	// cans maps an LDNS ID to its precomputed ClientAwareNS candidate
	// list: the traffic-weighted winner first, then the LDNS's own rank
	// table for capacity spill, deduplicated at build time. Only populated
	// when the snapshot's policy is ClientAwareNS.
	cans map[uint64][]Ranked
}

// Epoch returns the snapshot's publication number. Epochs are strictly
// increasing; answer caches key entries by epoch so a swap orphans them.
func (sn *Snapshot) Epoch() uint64 { return sn.epoch }

// Policy returns the routing policy the snapshot was built under.
func (sn *Snapshot) Policy() Policy { return sn.policy }

// TTL returns the answer TTL the snapshot carries.
func (sn *Snapshot) TTL() time.Duration { return sn.ttl }

// Tables returns the number of distinct rank tables (arena segments) in
// the snapshot. Interning keeps this bounded by the ping-target set, not
// the endpoint count.
func (sn *Snapshot) Tables() int { return len(sn.lay.segments) }

// Partitions returns the number of mapping partitions the endpoint
// universe was clustered into (excluding the two fallback partitions).
func (sn *Snapshot) Partitions() int { return sn.lay.nParts }

// Endpoints returns how many distinct endpoint IDs the snapshot indexes.
func (sn *Snapshot) Endpoints() int { return sn.lay.endpoints }

// arenaBytes is the resident size of the snapshot's table data across the
// arena chain (superseded segments in older arenas included — they stay
// resident until compaction drops them).
func (sn *Snapshot) arenaBytes() uint64 {
	var n uint64
	for _, a := range sn.arenas {
		n += uint64(len(a)) * uint64(unsafe.Sizeof(Ranked{}))
	}
	return n
}

// MemoryBytes returns the resident size of the snapshot's table storage:
// the arena chain plus the partition index and segment locators. The CANS
// candidate map (ClientAwareNS only) is excluded.
func (sn *Snapshot) MemoryBytes() uint64 {
	return sn.lay.memoryBytes() + sn.arenaBytes() +
		uint64(len(sn.segArena))*uint64(unsafe.Sizeof(int32(0))) +
		uint64(len(sn.segOff))*uint64(unsafe.Sizeof(uint32(0)))
}

// segData returns segment s's rank table as a capped subslice of its
// arena; callers must not modify it.
func (sn *Snapshot) segData(s int32) []Ranked {
	off := sn.segOff[s]
	end := off + uint32(sn.lay.tableLen)
	return sn.arenas[sn.segArena[s]][off:end:end]
}

// table returns partition p's rank table; callers must not modify it.
func (sn *Snapshot) table(p int32) []Ranked {
	return sn.segData(sn.lay.partSeg[p])
}

// fallbackTable returns the shared table for endpoints the map does not
// cover; client selects the client-side fallback (access network, client
// fallback location) over the resolver-side one.
func (sn *Snapshot) fallbackTable(client bool) []Ranked {
	p := sn.lay.fallbackLDNS
	if client {
		p = sn.lay.fallbackClient
	}
	if p < 0 {
		return nil
	}
	return sn.table(p)
}

// RankOf returns the rank table serving endpoint id, falling back to the
// shared fallback table when the map does not cover it. The slice is
// immutable; callers must not modify it.
func (sn *Snapshot) RankOf(id uint64, client bool) []Ranked {
	if p := sn.lay.partitionOf(id); p >= 0 {
		return sn.table(p)
	}
	return sn.fallbackTable(client)
}

// Best returns the best-ranked deployment for endpoint id that is live
// right now, with its score. Liveness is read at query time, so a snapshot
// built before a failure still routes around it; the epoch bump on the
// next publish is only needed to orphan cached answers.
func (sn *Snapshot) Best(id uint64, client bool) (*cdn.Deployment, float64) {
	for _, r := range sn.RankOf(id, client) {
		if r.Deployment.Alive() {
			return r.Deployment, r.Score
		}
	}
	return nil, 0
}

// CANSCandidates returns the precomputed ClientAwareNS candidate list for
// an LDNS ID, or nil when the snapshot has none (wrong policy, or an LDNS
// with no discovered client blocks).
func (sn *Snapshot) CANSCandidates(id uint64) []Ranked { return sn.cans[id] }

// SnapshotBuilder assembles snapshots. It is the control plane's compute
// stage: it owns a Scorer (measurement + clustering) and, per Build,
// produces a complete immutable map for one (epoch, policy) pair. The same
// builder is reused across epochs so the partition layout, the scorer's
// clustering index and the previous snapshot's arena persist — builds are
// incremental: only partitions whose ping targets were marked dirty since
// the last build are re-ranked, untouched table segments are copied (or,
// when nothing changed, the whole arena is shared) from the previous
// snapshot.
//
// A builder is safe for concurrent use; builds serialize on an internal
// mutex. The intended use is a single MapMaker goroutine building
// sequentially.
type SnapshotBuilder struct {
	world          *world.World
	scorer         *Scorer
	ttl            time.Duration
	fallbackLoc    geo.Point
	partitionMiles float64

	mu    sync.Mutex
	extra []netmodel.Endpoint
	lay   *partitionLayout
	prev  *Snapshot
	// expectedGen is the scorer generation the builder has accounted for.
	// A mismatch at Build time means someone invalidated the scorer behind
	// the builder's back (e.g. a simulation calling Scorer.Invalidate after
	// failure injection), so the build conservatively re-ranks everything.
	expectedGen  uint64
	dirtyAll     bool
	dirtyTargets map[int]struct{}

	// balance is the distance-vs-load balance factor β (Config
	// .BalanceFactor): tables are ordered by ping·(1 + β·util²). 0 keeps
	// pure proximity order, byte-identical to the pre-load-scoring builder.
	balance float64
	// loadSrc feeds per-deployment utilization at build time (nil: raw
	// platform gauges); see UtilizationSource.
	loadSrc UtilizationSource
	// loadDirty forces the next build to re-rank against a freshly captured
	// utilization vector (MapMaker's ReasonLoad).
	loadDirty bool
	// prevUtil is the quantized utilization vector the previous snapshot's
	// tables were ordered under; a build whose captured vector differs must
	// re-rank every table (mixing orders across delta arenas would serve an
	// inconsistent map).
	prevUtil []float64

	fullBuilds       uint64
	incBuilds        uint64
	rerankedTables   uint64
	loadRebuilds     uint64
	staleLoadSignals uint64
}

// NewSnapshotBuilder creates a standalone builder over the world and
// platform, applying the same Config defaults as NewSystem. Experiments
// that evaluate policies without a full System (e.g. the Fig 25 deployment
// sweep) use this directly.
func NewSnapshotBuilder(w *world.World, p *cdn.Platform, net Prober, cfg Config) *SnapshotBuilder {
	if cfg.TTL == 0 {
		cfg.TTL = 20 * time.Second
	}
	if (cfg.FallbackLoc == geo.Point{}) {
		cfg.FallbackLoc = geo.Point{Lat: 40.71, Lon: -74.01}
	}
	return newSnapshotBuilder(w, NewScorer(w, p, net, cfg.PingTargets), cfg)
}

// newSnapshotBuilder wires a builder around an existing scorer; cfg must
// already have defaults applied.
func newSnapshotBuilder(w *world.World, scorer *Scorer, cfg Config) *SnapshotBuilder {
	return &SnapshotBuilder{
		world:          w,
		scorer:         scorer,
		ttl:            cfg.TTL,
		fallbackLoc:    cfg.FallbackLoc,
		partitionMiles: cfg.PartitionMiles,
		balance:        cfg.BalanceFactor,
		dirtyAll:       true,
		dirtyTargets:   map[int]struct{}{},
	}
}

// Scorer returns the builder's scoring stage (to invalidate after a
// measurement refresh, or to share with a System).
func (b *SnapshotBuilder) Scorer() *Scorer { return b.scorer }

// AddClientEndpoints extends the set of client endpoints the snapshot will
// cover beyond the world's blocks (e.g. a sampled block universe an
// experiment replays). The partition layout is recomputed on the next
// build.
func (b *SnapshotBuilder) AddClientEndpoints(eps ...netmodel.Endpoint) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.extra = append(b.extra, eps...)
	b.lay = nil
	b.dirtyAll = true
}

// MarkMeasurementsDirty records which ping targets' measurements changed
// since the last build, so the next Build re-ranks only the partitions
// interned onto those targets. Called with no IDs — or with an ID that is
// not a ping target, or when clustering is off — it degrades to a full
// invalidation: every table is re-ranked. The matching per-target rank
// cache entries are dropped either way, so re-ranked tables always reflect
// fresh measurements.
func (b *SnapshotBuilder) MarkMeasurementsDirty(targetIDs ...uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(targetIDs) == 0 {
		b.scorer.Invalidate()
		b.dirtyAll = true
		b.expectedGen = b.scorer.Generation()
		return
	}
	idxs := make([]int, 0, len(targetIDs))
	for _, id := range targetIDs {
		i, ok := b.scorer.TargetIndex(id)
		if !ok {
			b.scorer.Invalidate()
			b.dirtyAll = true
			b.expectedGen = b.scorer.Generation()
			return
		}
		idxs = append(idxs, i)
	}
	b.scorer.InvalidateTargets(idxs...)
	for _, i := range idxs {
		b.dirtyTargets[i] = struct{}{}
	}
	b.expectedGen = b.scorer.Generation()
}

// BuildStats reports how the builder has been working: full builds (every
// table ranked), incremental builds (previous arena reused), and the total
// number of tables ranked across all builds. The incremental-build
// regression test pins "one dirty target re-ranks exactly its own tables"
// on these counters.
func (b *SnapshotBuilder) BuildStats() (full, incremental, rerankedTables uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.fullBuilds, b.incBuilds, b.rerankedTables
}

// fallbackEndpoints returns the two synthetic endpoints standing in for
// anything the map was not built for. All unknowns share them (and hence
// one rank table per kind), anchored at the configured fallback location.
func (b *SnapshotBuilder) fallbackEndpoints() (ldns, client netmodel.Endpoint) {
	ldns = netmodel.Endpoint{ID: fallbackLDNSID, Loc: b.fallbackLoc, Access: netmodel.AccessBackbone}
	client = netmodel.Endpoint{ID: fallbackClientID, Loc: b.fallbackLoc, Access: netmodel.AccessCable}
	return ldns, client
}

// layoutLocked returns the cached partition layout, computing it on first
// use or after AddClientEndpoints. The layout depends only on the endpoint
// universe, the partitioning threshold and the (fixed) ping-target set —
// never on measurements — so it survives every invalidation.
func (b *SnapshotBuilder) layoutLocked() *partitionLayout {
	if b.lay != nil {
		return b.lay
	}
	w := b.world
	universe := make([]netmodel.Endpoint, 0, len(w.LDNSes)+len(w.Blocks)+len(b.extra))
	for _, l := range w.LDNSes {
		universe = append(universe, l.Endpoint())
	}
	for _, blk := range w.Blocks {
		universe = append(universe, blk.Endpoint())
	}
	universe = append(universe, b.extra...)
	fLDNS, fClient := b.fallbackEndpoints()
	b.lay = buildLayout(universe, fLDNS, fClient, b.partitionMiles, b.scorer,
		len(b.scorer.Platform().Deployments))
	return b.lay
}

// segTable ranks segment s: the interned ping target's table under
// clustering, or the partition representative's own exact ranking without.
// The returned slice is the scorer's cache entry — callers copy it.
func (b *SnapshotBuilder) segTable(lay *partitionLayout, s int) []Ranked {
	seg := lay.segments[s]
	if seg.target >= 0 {
		return b.scorer.rankTarget(int(seg.target))
	}
	return b.scorer.computeRank(seg.rep)
}

// maxArenaChain bounds the delta-arena chain an incremental build may
// grow. At the cap — or as soon as the accumulated delta data would
// outweigh the base arena — the build compacts: every segment's current
// table is copied (dirty ones re-ranked) into one fresh base arena,
// dropping the superseded garbage the deltas accumulated. The size
// trigger keeps the worst-case resident overhead at 2× the base; the
// length cap bounds the amortized compaction cost for tiny (one-target)
// refreshes at base/maxArenaChain copied bytes per build.
const maxArenaChain = 64

// Build produces the snapshot for one epoch under the given policy. The
// endpoint universe is every world LDNS, every client block, any extra
// endpoints, and the two fallbacks. The result is a pure function of
// (world, platform liveness, measurements, policy) — par fan-out inside is
// index-deterministic — so simulation epochs are reproducible regardless
// of worker count.
//
// Builds are incremental: when the previous snapshot's layout is current
// and only specific ping targets were marked dirty, the build allocates a
// small delta arena holding just the re-ranked segments (filled in
// parallel, across disjoint slices) and shares everything else with the
// previous snapshot; when nothing was marked dirty at all, the arena chain
// is shared wholesale and the build is a near-free epoch bump. Any
// unaccounted scorer invalidation, layout change, or MarkMeasurementsDirty
// with no target scope forces a full re-rank, so an incremental build is
// always bitwise-identical to the cold build at the same epoch.
func (b *SnapshotBuilder) Build(epoch uint64, policy Policy) *Snapshot {
	b.mu.Lock()
	defer b.mu.Unlock()
	// A build that panics mid-way (a crashing prober in chaos tests) may
	// have partially consumed the dirty state; poison the next build to a
	// full re-rank so a stale arena can never be shared.
	defer func() {
		if p := recover(); p != nil {
			b.dirtyAll = true
			panic(p)
		}
	}()

	lay := b.layoutLocked()
	sc := b.scorer
	full := b.dirtyAll || b.prev == nil || b.prev.lay != lay || sc.Generation() != b.expectedGen
	// Load-aware ordering: capture this build's utilization vector (nil at
	// β=0) and re-rank everything when it moved — the previous arenas were
	// ordered under prevUtil and cannot be mixed with tables ordered under
	// the new vector. The scorer caches stay warm, so a load re-rank costs
	// a copy+sort per table, not a measurement recompute.
	utils := b.captureUtilLocked()
	loadChanged := b.balance > 0 && (b.loadDirty || !equalFloat64s(utils, b.prevUtil))
	factors := b.loadFactorsLocked(utils)
	tl := lay.tableLen

	sn := &Snapshot{epoch: epoch, policy: policy, ttl: b.ttl, lay: lay}
	switch {
	case full || loadChanged:
		arena := make([]Ranked, len(lay.segments)*tl)
		par.ForEach(len(lay.segments), func(s int) {
			copy(arena[s*tl:(s+1)*tl], b.loadSegTable(lay, s, factors))
		})
		sn.arenas = [][]Ranked{arena}
		sn.segArena, sn.segOff = lay.baseSegArena, lay.baseSegOff
		if full {
			b.fullBuilds++
		} else {
			b.loadRebuilds++
		}
		b.rerankedTables += uint64(len(lay.segments))
	case len(b.dirtyTargets) == 0:
		// Nothing changed since the last build: share the chain wholesale.
		sn.arenas, sn.segArena, sn.segOff = b.prev.arenas, b.prev.segArena, b.prev.segOff
		b.incBuilds++
	default:
		segs := make([]int, 0, len(b.dirtyTargets))
		for t := range b.dirtyTargets {
			if s, ok := lay.targetSeg[int32(t)]; ok {
				segs = append(segs, int(s))
			}
		}
		sort.Ints(segs)
		prevDelta := 0
		for _, a := range b.prev.arenas[1:] {
			prevDelta += len(a)
		}
		if len(b.prev.arenas) >= maxArenaChain || prevDelta+len(segs)*tl > len(b.prev.arenas[0]) {
			// Compact: re-rank the dirty segments and copy the rest into
			// one fresh base arena, dropping the delta chain.
			dirty := make([]bool, len(lay.segments))
			for _, s := range segs {
				dirty[s] = true
			}
			arena := make([]Ranked, len(lay.segments)*tl)
			par.ForEach(len(lay.segments), func(s int) {
				dst := arena[s*tl : (s+1)*tl]
				if dirty[s] {
					copy(dst, b.loadSegTable(lay, s, factors))
				} else {
					copy(dst, b.prev.segData(int32(s)))
				}
			})
			sn.arenas = [][]Ranked{arena}
			sn.segArena, sn.segOff = lay.baseSegArena, lay.baseSegOff
		} else {
			delta := make([]Ranked, len(segs)*tl)
			par.ForEach(len(segs), func(i int) {
				copy(delta[i*tl:(i+1)*tl], b.loadSegTable(lay, segs[i], factors))
			})
			segArena := append([]int32(nil), b.prev.segArena...)
			segOff := append([]uint32(nil), b.prev.segOff...)
			ai := int32(len(b.prev.arenas))
			for i, s := range segs {
				segArena[s] = ai
				segOff[s] = uint32(i * tl)
			}
			arenas := make([][]Ranked, 0, len(b.prev.arenas)+1)
			arenas = append(arenas, b.prev.arenas...)
			sn.arenas = append(arenas, delta)
			sn.segArena, sn.segOff = segArena, segOff
		}
		b.incBuilds++
		b.rerankedTables += uint64(len(segs))
	}
	b.dirtyAll = false
	clear(b.dirtyTargets)
	b.expectedGen = sc.Generation()
	b.prevUtil = utils
	b.loadDirty = false
	if policy == ClientAwareNS {
		sn.cans = b.buildCANS(sn)
	}
	b.prev = sn
	return sn
}

// buildCANS precomputes the ClientAwareNS candidate list for every LDNS
// with discovered client blocks: the deployment minimising the
// traffic-weighted mean ping to the LDNS's clients (§6's CANS objective)
// first, then the LDNS's own NS rank table for capacity spill — with the
// winner deduplicated out of the spill list, so no deployment appears
// twice in the candidates handed to the load balancer.
func (b *SnapshotBuilder) buildCANS(sn *Snapshot) map[uint64][]Ranked {
	ldnses := b.world.LDNSes
	sc := b.scorer
	lists := par.Map(len(ldnses), func(i int) []Ranked {
		l := ldnses[i]
		if len(l.Blocks) == 0 {
			return nil
		}
		eps := make([]netmodel.Endpoint, len(l.Blocks))
		weights := make([]float64, len(l.Blocks))
		for j, blk := range l.Blocks {
			eps[j] = blk.Endpoint()
			weights[j] = blk.Demand
		}
		win, score := sc.BestWeighted(eps, weights)
		if win == nil {
			return nil
		}
		ns := sn.RankOf(l.Endpoint().ID, false)
		out := make([]Ranked, 0, len(ns)+1)
		out = append(out, Ranked{Deployment: win, Score: score})
		for _, r := range ns {
			if r.Deployment != win {
				out = append(out, r)
			}
		}
		return out
	})
	cans := make(map[uint64][]Ranked, len(ldnses))
	for i, l := range ldnses {
		if lists[i] != nil {
			cans[l.Endpoint().ID] = lists[i]
		}
	}
	return cans
}
