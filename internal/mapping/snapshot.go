package mapping

import (
	"time"

	"eum/internal/cdn"
	"eum/internal/geo"
	"eum/internal/netmodel"
	"eum/internal/par"
	"eum/internal/world"
)

// Reserved endpoint IDs for the shared fallback rank tables. World IDs are
// allocated from a small counter, so the top of the ID space is free.
const (
	fallbackLDNSID   = ^uint64(0)
	fallbackClientID = ^uint64(0) - 1
)

// Snapshot is one published map: an immutable, epoch-numbered set of rank
// tables covering every endpoint the data plane can be asked about, plus
// the policy and TTL the map was built under. The control plane (the
// MapMaker) builds snapshots in the background and installs them with a
// single atomic pointer swap; the query hot path only ever reads the
// currently installed snapshot — it never computes scores, takes locks, or
// invalidates anything.
//
// This is the paper's two-plane architecture (§3–§5): topology discovery
// and scoring feed a map-making pipeline that publishes maps on a cadence,
// and the authoritative name servers serve whichever map is current.
type Snapshot struct {
	epoch  uint64
	policy Policy
	ttl    time.Duration

	// tables holds the rank tables, each ordered best (lowest ping) first.
	// byID maps an endpoint ID (client block or LDNS) to its table. With
	// clustering, table i is ping target i's table and many endpoints share
	// it; without, each distinct endpoint gets its own.
	tables [][]Ranked
	byID   map[uint64]int32

	// fallbackLDNS / fallbackClient index the tables used for endpoints
	// the map was not built for (a lab resolver, a never-seen prefix):
	// they rank from the builder's fallback location. -1 when absent.
	fallbackLDNS   int32
	fallbackClient int32

	// cans maps an LDNS ID to its precomputed ClientAwareNS candidate
	// list: the traffic-weighted winner first, then the LDNS's own rank
	// table for capacity spill, deduplicated at build time. Only populated
	// when the snapshot's policy is ClientAwareNS.
	cans map[uint64][]Ranked
}

// Epoch returns the snapshot's publication number. Epochs are strictly
// increasing; answer caches key entries by epoch so a swap orphans them.
func (sn *Snapshot) Epoch() uint64 { return sn.epoch }

// Policy returns the routing policy the snapshot was built under.
func (sn *Snapshot) Policy() Policy { return sn.policy }

// TTL returns the answer TTL the snapshot carries.
func (sn *Snapshot) TTL() time.Duration { return sn.ttl }

// Tables returns the number of rank tables in the snapshot.
func (sn *Snapshot) Tables() int { return len(sn.tables) }

// rankByID returns the rank table for a known endpoint ID, or nil.
func (sn *Snapshot) rankByID(id uint64) []Ranked {
	if i, ok := sn.byID[id]; ok {
		return sn.tables[i]
	}
	return nil
}

// fallbackTable returns the shared table for endpoints the map does not
// cover; client selects the client-side fallback (access network, client
// fallback location) over the resolver-side one.
func (sn *Snapshot) fallbackTable(client bool) []Ranked {
	i := sn.fallbackLDNS
	if client {
		i = sn.fallbackClient
	}
	if i < 0 || int(i) >= len(sn.tables) {
		return nil
	}
	return sn.tables[i]
}

// RankOf returns the rank table serving endpoint id, falling back to the
// shared fallback table when the map does not cover it. The slice is
// immutable; callers must not modify it.
func (sn *Snapshot) RankOf(id uint64, client bool) []Ranked {
	if r := sn.rankByID(id); r != nil {
		return r
	}
	return sn.fallbackTable(client)
}

// Best returns the best-ranked deployment for endpoint id that is live
// right now, with its score. Liveness is read at query time, so a snapshot
// built before a failure still routes around it; the epoch bump on the
// next publish is only needed to orphan cached answers.
func (sn *Snapshot) Best(id uint64, client bool) (*cdn.Deployment, float64) {
	for _, r := range sn.RankOf(id, client) {
		if r.Deployment.Alive() {
			return r.Deployment, r.Score
		}
	}
	return nil, 0
}

// CANSCandidates returns the precomputed ClientAwareNS candidate list for
// an LDNS ID, or nil when the snapshot has none (wrong policy, or an LDNS
// with no discovered client blocks).
func (sn *Snapshot) CANSCandidates(id uint64) []Ranked { return sn.cans[id] }

// SnapshotBuilder assembles snapshots. It is the control plane's compute
// stage: it owns a Scorer (measurement + clustering) and, per Build,
// produces a complete immutable map for one (epoch, policy) pair. The same
// builder is reused across epochs so the scorer's clustering index and
// cached rank tables persist; after a measurement refresh the caller
// invalidates the scorer and the next Build recomputes.
//
// A builder is safe for concurrent Build calls, but the intended use is a
// single MapMaker goroutine building sequentially.
type SnapshotBuilder struct {
	world       *world.World
	scorer      *Scorer
	ttl         time.Duration
	fallbackLoc geo.Point
	extra       []netmodel.Endpoint
}

// NewSnapshotBuilder creates a standalone builder over the world and
// platform, applying the same Config defaults as NewSystem. Experiments
// that evaluate policies without a full System (e.g. the Fig 25 deployment
// sweep) use this directly.
func NewSnapshotBuilder(w *world.World, p *cdn.Platform, net Prober, cfg Config) *SnapshotBuilder {
	if cfg.TTL == 0 {
		cfg.TTL = 20 * time.Second
	}
	if (cfg.FallbackLoc == geo.Point{}) {
		cfg.FallbackLoc = geo.Point{Lat: 40.71, Lon: -74.01}
	}
	return newSnapshotBuilder(w, NewScorer(w, p, net, cfg.PingTargets), cfg)
}

// newSnapshotBuilder wires a builder around an existing scorer; cfg must
// already have defaults applied.
func newSnapshotBuilder(w *world.World, scorer *Scorer, cfg Config) *SnapshotBuilder {
	return &SnapshotBuilder{
		world:       w,
		scorer:      scorer,
		ttl:         cfg.TTL,
		fallbackLoc: cfg.FallbackLoc,
	}
}

// Scorer returns the builder's scoring stage (to invalidate after a
// measurement refresh, or to share with a System).
func (b *SnapshotBuilder) Scorer() *Scorer { return b.scorer }

// AddClientEndpoints extends the set of client endpoints the snapshot will
// cover beyond the world's blocks (e.g. a sampled block universe an
// experiment replays).
func (b *SnapshotBuilder) AddClientEndpoints(eps ...netmodel.Endpoint) {
	b.extra = append(b.extra, eps...)
}

// fallbackEndpoints returns the two synthetic endpoints standing in for
// anything the map was not built for. All unknowns share them (and hence
// one rank table per kind), anchored at the configured fallback location.
func (b *SnapshotBuilder) fallbackEndpoints() (ldns, client netmodel.Endpoint) {
	ldns = netmodel.Endpoint{ID: fallbackLDNSID, Loc: b.fallbackLoc, Access: netmodel.AccessBackbone}
	client = netmodel.Endpoint{ID: fallbackClientID, Loc: b.fallbackLoc, Access: netmodel.AccessCable}
	return ldns, client
}

// Build produces the snapshot for one epoch under the given policy. The
// endpoint universe is every world LDNS, every client block, any extra
// endpoints, and the two fallbacks. The result is a pure function of
// (world, platform liveness, measurements, policy) — par fan-out inside is
// index-deterministic — so simulation epochs are reproducible regardless
// of worker count.
func (b *SnapshotBuilder) Build(epoch uint64, policy Policy) *Snapshot {
	sn := &Snapshot{
		epoch:        epoch,
		policy:       policy,
		ttl:          b.ttl,
		fallbackLDNS: -1, fallbackClient: -1,
	}
	w, sc := b.world, b.scorer

	universe := make([]netmodel.Endpoint, 0, len(w.LDNSes)+len(w.Blocks)+len(b.extra))
	for _, l := range w.LDNSes {
		universe = append(universe, l.Endpoint())
	}
	for _, blk := range w.Blocks {
		universe = append(universe, blk.Endpoint())
	}
	universe = append(universe, b.extra...)
	fLDNS, fClient := b.fallbackEndpoints()

	if sc.Targeted() {
		// Clustered: one table per ping target; endpoints inherit their
		// nearest target's table. Tables not recomputed since the last
		// scorer invalidation are reused as-is.
		idx := par.Map(len(universe), func(i int) int { return sc.targetFor(universe[i]) })
		sn.byID = make(map[uint64]int32, len(universe))
		for i, ep := range universe {
			sn.byID[ep.ID] = int32(idx[i])
		}
		sn.tables = par.Map(len(sc.targets), func(i int) []Ranked { return sc.rankTarget(i) })
		sn.fallbackLDNS = int32(sc.targetFor(fLDNS))
		sn.fallbackClient = int32(sc.targetFor(fClient))
	} else {
		// Unclustered: exact per-endpoint tables, one per distinct ID, in
		// universe order; the fallbacks get their own.
		sn.byID = make(map[uint64]int32, len(universe))
		distinct := make([]netmodel.Endpoint, 0, len(universe)+2)
		for _, ep := range universe {
			if _, ok := sn.byID[ep.ID]; !ok {
				sn.byID[ep.ID] = int32(len(distinct))
				distinct = append(distinct, ep)
			}
		}
		sn.fallbackLDNS = int32(len(distinct))
		distinct = append(distinct, fLDNS)
		sn.fallbackClient = int32(len(distinct))
		distinct = append(distinct, fClient)
		sn.tables = par.Map(len(distinct), func(i int) []Ranked { return sc.computeRank(distinct[i]) })
		delete(sn.byID, fLDNS.ID)
		delete(sn.byID, fClient.ID)
	}

	if policy == ClientAwareNS {
		sn.cans = b.buildCANS(sn)
	}
	return sn
}

// buildCANS precomputes the ClientAwareNS candidate list for every LDNS
// with discovered client blocks: the deployment minimising the
// traffic-weighted mean ping to the LDNS's clients (§6's CANS objective)
// first, then the LDNS's own NS rank table for capacity spill — with the
// winner deduplicated out of the spill list, so no deployment appears
// twice in the candidates handed to the load balancer.
func (b *SnapshotBuilder) buildCANS(sn *Snapshot) map[uint64][]Ranked {
	ldnses := b.world.LDNSes
	sc := b.scorer
	lists := par.Map(len(ldnses), func(i int) []Ranked {
		l := ldnses[i]
		if len(l.Blocks) == 0 {
			return nil
		}
		eps := make([]netmodel.Endpoint, len(l.Blocks))
		weights := make([]float64, len(l.Blocks))
		for j, blk := range l.Blocks {
			eps[j] = blk.Endpoint()
			weights[j] = blk.Demand
		}
		win, score := sc.BestWeighted(eps, weights)
		if win == nil {
			return nil
		}
		ns := sn.RankOf(l.Endpoint().ID, false)
		out := make([]Ranked, 0, len(ns)+1)
		out = append(out, Ranked{Deployment: win, Score: score})
		for _, r := range ns {
			if r.Deployment != win {
				out = append(out, r)
			}
		}
		return out
	})
	cans := make(map[uint64][]Ranked, len(ldnses))
	for i, l := range ldnses {
		if lists[i] != nil {
			cans[l.Endpoint().ID] = lists[i]
		}
	}
	return cans
}
