package mapping

import (
	"testing"

	"eum/internal/netmodel"
)

// shiftNet perturbs the base network model's pings for chosen endpoints,
// emulating measurement sweeps that keep refreshing targets.
type shiftNet struct {
	base  Prober
	shift map[uint64]float64
}

func (p *shiftNet) PingMs(a, b netmodel.Endpoint) float64 {
	return p.base.PingMs(a, b) + p.shift[a.ID] + p.shift[b.ID]
}

// TestArenaChainCompaction drives a long run of one-target incremental
// builds: the delta-arena chain must stay bounded by maxArenaChain
// (compacting back to a single base arena at the cap), no build may fall
// back to a full re-rank, and the final snapshot must still match a cold
// full build over the same accumulated measurements.
func TestArenaChainCompaction(t *testing.T) {
	prober := &shiftNet{base: testNet, shift: map[uint64]float64{}}
	cfg := Config{Policy: EndUser, PingTargets: 500, PartitionMiles: 75}
	b := NewSnapshotBuilder(testW, testP, prober, cfg)
	sn := b.Build(1, EndUser)

	// A spread of ping targets that certainly back live tables: the
	// targets standing in for partition representatives.
	var targets []uint64
	seen := map[uint64]bool{}
	for i := 0; i < len(testW.LDNSes) && len(targets) < 5; i += 17 {
		if ep, ok := b.Scorer().TargetFor(testW.LDNSes[i].Endpoint()); ok && !seen[ep.ID] {
			seen[ep.ID] = true
			targets = append(targets, ep.ID)
		}
	}
	if len(targets) < 2 {
		t.Fatalf("only %d distinct targets found", len(targets))
	}

	// Phase 1: one-target refreshes. The chain grows one delta per build
	// and compacts at the length cap.
	rounds := maxArenaChain + maxArenaChain/2
	compacted := false
	epoch := uint64(2)
	for i := 0; i < rounds; i++ {
		id := targets[i%len(targets)]
		prober.shift[id] += 3
		b.MarkMeasurementsDirty(id)
		sn = b.Build(epoch, EndUser)
		epoch++
		if n := len(sn.arenas); n > maxArenaChain {
			t.Fatalf("build %d: arena chain grew to %d (cap %d)", i, n, maxArenaChain)
		} else if n == 1 && i > 0 {
			compacted = true
		}
	}
	if !compacted {
		t.Fatal("chain never compacted back to a single arena")
	}

	// Phase 2: broad refreshes (every known target at once). The size
	// trigger must compact long before the length cap: accumulated deltas
	// never outweigh the base, so resident overhead stays under 2x.
	base := len(sn.arenas[0])
	for i := 0; i < 12; i++ {
		for _, id := range targets {
			prober.shift[id] += 1
		}
		b.MarkMeasurementsDirty(targets...)
		sn = b.Build(epoch, EndUser)
		epoch++
		var delta int
		for _, a := range sn.arenas[1:] {
			delta += len(a)
		}
		if delta > base {
			t.Fatalf("broad build %d: %d delta entries outweigh the %d-entry base", i, delta, base)
		}
	}
	if full, inc, _ := b.BuildStats(); full != 1 || inc != uint64(rounds+12) {
		t.Fatalf("builds: %d full / %d incremental, want 1 / %d", full, inc, rounds+12)
	}

	cold := NewSnapshotBuilder(testW, testP, prober, cfg).Build(sn.Epoch(), EndUser)
	check := func(id uint64, client bool, what string) {
		t.Helper()
		got, want := sn.RankOf(id, client), cold.RankOf(id, client)
		if len(got) != len(want) {
			t.Fatalf("%s %d: %d ranked vs cold %d", what, id, len(got), len(want))
		}
		for j := range got {
			if got[j] != want[j] {
				t.Fatalf("%s %d rank %d: %s/%v, cold %s/%v", what, id, j,
					got[j].Deployment.Name, got[j].Score, want[j].Deployment.Name, want[j].Score)
			}
		}
	}
	for _, blk := range testW.Blocks {
		check(blk.ID, true, "block")
	}
	for _, l := range testW.LDNSes {
		check(l.ID, false, "ldns")
	}
}
