package mapping

import (
	"fmt"
	"net/netip"
	"sync/atomic"
	"time"

	"eum/internal/cdn"
	"eum/internal/geo"
	"eum/internal/netmodel"
	"eum/internal/world"
)

// Policy selects how the mapping system identifies the client it is
// routing (§6's three schemes).
type Policy int

// The three request-routing policies the paper evaluates.
const (
	// NSBased routes by the LDNS: the deployment with the least latency
	// to the resolver that sent the query (Equation 1).
	NSBased Policy = iota
	// EndUser routes by the client: the deployment with the least latency
	// to the client's IP block from the EDNS0 client-subnet option
	// (Equation 2) — the paper's contribution.
	EndUser
	// ClientAwareNS routes by the LDNS's measured client cluster: the
	// deployment minimising traffic-weighted latency to the clients that
	// share the LDNS. A hybrid needing no ECS but needing client-LDNS
	// discovery.
	ClientAwareNS
)

// String names the policy as in the paper.
func (p Policy) String() string {
	switch p {
	case NSBased:
		return "NS"
	case EndUser:
		return "EU"
	case ClientAwareNS:
		return "CANS"
	}
	return fmt.Sprintf("Policy(%d)", int(p))
}

// Config parameterises a mapping System.
type Config struct {
	// Policy is the request-routing policy. Default NSBased (the
	// traditional system; enable EndUser to roll out EU mapping).
	Policy Policy
	// Units is the mapping-unit policy for client prefixes; nil means
	// /24 blocks.
	Units UnitPolicy
	// TTL is the DNS answer TTL. The paper's CDN uses short TTLs so load
	// balancing reacts quickly; default 20s.
	TTL time.Duration
	// PingTargets bounds the scoring measurement set (§6 uses 8K);
	// 0 disables clustering.
	PingTargets int
	// PartitionMiles is the routing-aware partitioning threshold: client
	// blocks (and resolvers) whose routing signatures agree — same
	// quantized geo cell of this size, same origin AS, same access tier —
	// are clustered into one mapping partition sharing a single rank
	// table. 0 (the default) keeps identity partitioning: every endpoint
	// is its own partition, byte-identical to per-endpoint tables. Set it
	// (e.g. 50) for million-block worlds, where it cuts table and index
	// cost by orders of magnitude.
	PartitionMiles float64
	// FallbackLoc locates resolvers the system has never measured (e.g.
	// a lab resolver); default New York.
	FallbackLoc geo.Point
	// LoadPenalty enables load-aware global balancing (see
	// LoadBalancer.LoadPenalty); zero keeps hard capacity spill only.
	LoadPenalty float64
	// BalanceFactor is the build-time distance-vs-load balance knob β:
	// snapshot tables are ordered by ping·(1 + β·util²), spilling candidate
	// lists to next-nearest deployments as utilization climbs. 0 (default)
	// keeps pure proximity order, byte-identical to β-less builds. Where
	// LoadPenalty re-ranks a small window per query from instantaneous
	// load, BalanceFactor shifts the published map itself from the smoothed
	// load-feedback signal (see mapmaker.LoadMonitor).
	BalanceFactor float64
}

// System is the mapping system: it answers "which servers should this
// client download from" for every DNS query the CDN's authoritative name
// servers receive. It is split into two planes:
//
//   - The data plane — Map / MapAt — is a pure reader of the currently
//     published Snapshot: one atomic pointer load per query, then lock-free
//     table lookups and the load balancer's prepared rings. It never scores,
//     never takes a lock, never invalidates.
//   - The control plane — Rebuild / Install, normally driven by a
//     mapmaker.MapMaker — consumes health and measurement signals and
//     publishes fresh epoch-numbered snapshots in the background.
type System struct {
	cfg      Config
	world    *world.World
	platform *cdn.Platform
	scorer   *Scorer
	lb       *LoadBalancer
	builder  *SnapshotBuilder

	// desiredPolicy is the policy the next published snapshot is built
	// under; the active policy is whatever the current snapshot carries.
	desiredPolicy atomic.Int32
	// epoch allocates strictly increasing snapshot numbers.
	epoch atomic.Uint64
	// snap is the currently published map. Installed by a single pointer
	// swap; non-nil from NewSystem on.
	snap atomic.Pointer[Snapshot]
	// publishedAt is the wall-clock instant (unix nanoseconds) of the last
	// successful Install. The serving plane's staleness watchdog reads it
	// to detect a stalled or dead control plane: a MapMaker whose builds
	// keep failing never advances it.
	publishedAt atomic.Int64

	// index holds the flat sorted lookup arrays (leaf prefix → block,
	// mapping unit → representative block, resolver address → LDNS): a few
	// bytes per block resident, allocation-free binary search on the hot
	// path.
	index *sysIndex
}

// NewSystem builds a mapping system over the given world and platform.
// The prober is typically the network model itself, or a measure.DB fed by
// periodic sweeps.
func NewSystem(w *world.World, p *cdn.Platform, net Prober, cfg Config) *System {
	if cfg.Units == nil {
		cfg.Units = PrefixUnits{X: 24}
	}
	if cfg.TTL == 0 {
		cfg.TTL = 20 * time.Second
	}
	if (cfg.FallbackLoc == geo.Point{}) {
		cfg.FallbackLoc = geo.Point{Lat: 40.71, Lon: -74.01}
	}
	s := &System{
		cfg:      cfg,
		world:    w,
		platform: p,
		scorer:   NewScorer(w, p, net, cfg.PingTargets),
		lb:       NewLoadBalancer(),
		index:    buildSysIndex(w, cfg.Units),
	}
	s.desiredPolicy.Store(int32(cfg.Policy))
	s.lb.LoadPenalty = cfg.LoadPenalty
	s.builder = newSnapshotBuilder(w, s.scorer, cfg)
	// Prepare the load balancer's rings and publish the first map before
	// serving, so the data plane never computes anything on the hot path.
	s.lb.Prepare(p)
	s.Rebuild()
	return s
}

// Policy returns the routing policy of the currently published snapshot.
func (s *System) Policy() Policy { return s.Current().Policy() }

// SetDesiredPolicy records the policy the next published snapshot will be
// built under without publishing one. The MapMaker uses this, then
// publishes on its own cadence.
func (s *System) SetDesiredPolicy(p Policy) { s.desiredPolicy.Store(int32(p)) }

// DesiredPolicy returns the policy the next snapshot will be built under.
func (s *System) DesiredPolicy() Policy { return Policy(s.desiredPolicy.Load()) }

// SetPolicy switches the routing policy and synchronously publishes a
// snapshot built under it — how the roll-out was performed: the same
// system serving the same domains flips from NS to EU mapping. The epoch
// bump orphans answers cached under the old policy. Under a MapMaker,
// prefer its SetPolicy so the flip flows through the change feed.
func (s *System) SetPolicy(p Policy) {
	s.desiredPolicy.Store(int32(p))
	s.Rebuild()
}

// Current returns the published snapshot the data plane is serving from.
// It is never nil after NewSystem.
func (s *System) Current() *Snapshot { return s.snap.Load() }

// Install publishes a snapshot if it is newer than the current one,
// reporting whether it was installed. Concurrent rebuilds may race; the
// epoch order decides, so an older build can never clobber a newer map.
func (s *System) Install(sn *Snapshot) bool {
	for {
		cur := s.snap.Load()
		if cur != nil && cur.epoch >= sn.epoch {
			return false
		}
		if s.snap.CompareAndSwap(cur, sn) {
			s.publishedAt.Store(time.Now().UnixNano())
			return true
		}
	}
}

// PublishedAtNanos returns the wall-clock time (unix nanoseconds) the
// current snapshot was installed. Authorities derive map staleness from it
// (see authority.DegradeConfig): time since the last successful publish,
// regardless of how many builds failed in between.
func (s *System) PublishedAtNanos() int64 { return s.publishedAt.Load() }

// Rebuild builds a snapshot at the next epoch under the desired policy and
// installs it. This is the control plane's one entry point: the MapMaker
// calls it on its cadence and when health or measurement signals arrive;
// standalone users (tests, examples) call it directly after mutating the
// platform.
func (s *System) Rebuild() *Snapshot {
	sn := s.builder.Build(s.epoch.Add(1), s.DesiredPolicy())
	s.Install(sn)
	return sn
}

// Builder exposes the snapshot builder (the control plane's compute
// stage).
func (s *System) Builder() *SnapshotBuilder { return s.builder }

// SetUtilizationSource attaches the smoothed load-signal feed the builder
// consults when BalanceFactor is positive (see SnapshotBuilder
// .SetUtilizationSource). Takes effect on the next rebuild.
func (s *System) SetUtilizationSource(src UtilizationSource) {
	s.builder.SetUtilizationSource(src)
}

// UnitFor returns the mapping unit (the granularity at which clients are
// grouped, §5.1) for a client address — the scope at which answers for
// that client may be shared.
func (s *System) UnitFor(addr netip.Addr) netip.Prefix {
	return s.cfg.Units.UnitFor(addr)
}

// Scorer exposes the scoring layer (for simulations and tests).
func (s *System) Scorer() *Scorer { return s.scorer }

// LoadBalancer exposes the load-balancing layer.
func (s *System) LoadBalancer() *LoadBalancer { return s.lb }

// TTL returns the configured answer TTL.
func (s *System) TTL() time.Duration { return s.cfg.TTL }

// Request is one mapping decision request, as extracted from a DNS query
// by an authoritative name server.
type Request struct {
	// Domain is the content domain being resolved.
	Domain string
	// LDNS is the resolver address the query came from.
	LDNS netip.Addr
	// ClientSubnet is the ECS prefix, if the query carried one.
	ClientSubnet netip.Prefix
	// Demand is the load this assignment will add (0 = don't track).
	Demand float64
	// Degraded asks for the snapshot's generic fallback tables instead of
	// the per-endpoint rank tables. The serving plane sets it when the map
	// is too stale to trust its per-client measurements (see
	// authority.DegradeFallback): the fallback tables rank purely from the
	// builder's fallback geography, the least perishable part of the map.
	Degraded bool
}

// Response is the mapping decision.
type Response struct {
	// Deployment is the chosen server cluster.
	Deployment *cdn.Deployment
	// Servers are the chosen servers' addresses (≥1, usually 2).
	Servers []*cdn.Server
	// ScopePrefix is the ECS scope the answer is valid for (0 when the
	// decision did not use the client subnet).
	ScopePrefix uint8
	// TTL is the answer TTL.
	TTL time.Duration
	// Epoch is the snapshot epoch the decision was made under. Answer
	// caches key entries by it, so a snapshot swap orphans them.
	Epoch uint64
	// UsedClientSubnet reports whether the client subnet (rather than
	// the LDNS) determined the decision.
	UsedClientSubnet bool
}

// Map answers a mapping request against the currently published snapshot.
func (s *System) Map(req Request) (*Response, error) {
	return s.MapAt(s.snap.Load(), req)
}

// MapAt answers a mapping request against a specific snapshot (nil means
// the current one). It is the data plane: a pure reader — rank tables and
// the CANS candidate lists come precomputed from the snapshot, liveness
// and load are read per server at pick time, and nothing on this path
// scores, locks, or invalidates. Callers that must keep a set of
// decisions mutually consistent (an answer cache, a deterministic
// simulation day) pin one snapshot and pass it for every request.
func (s *System) MapAt(sn *Snapshot, req Request) (*Response, error) {
	if req.Domain == "" {
		return nil, fmt.Errorf("mapping: empty domain")
	}
	if sn == nil {
		sn = s.snap.Load()
	}
	resp := &Response{TTL: sn.ttl, Epoch: sn.epoch}

	// Decide the candidate list for the endpoint whose latency the
	// snapshot's policy optimises.
	var candidates []Ranked
	switch {
	case req.Degraded:
		// Too-stale map: per-endpoint tables are distrusted, serve from the
		// generic fallback table. The decision no longer depends on the
		// client subnet, so the scope stays 0.
		candidates = sn.fallbackTable(sn.policy == EndUser && req.ClientSubnet.IsValid())
	case sn.policy == EndUser && req.ClientSubnet.IsValid():
		unit := s.cfg.Units.UnitFor(req.ClientSubnet.Addr())
		id, known := s.clientEndpointID(unit, req.ClientSubnet)
		if known {
			candidates = sn.RankOf(id, true)
			resp.UsedClientSubnet = true
			// Answer scope: the mapping-unit granularity for this
			// address family (CIDR units may be coarser), never more
			// specific than what the query revealed (RFC 7871 §7.2.1
			// privacy: y <= x).
			scope := uint8(unit.Bits())
			if int(scope) > req.ClientSubnet.Bits() {
				scope = uint8(req.ClientSubnet.Bits())
			}
			resp.ScopePrefix = scope
		} else {
			candidates = sn.fallbackTable(true)
		}
	case sn.policy == ClientAwareNS:
		if l, ok := s.index.ldnsByAddr(req.LDNS); ok {
			candidates = sn.CANSCandidates(l.Endpoint().ID)
		}
		if candidates == nil {
			candidates = s.ldnsCandidates(sn, req.LDNS)
		}
	default:
		candidates = s.ldnsCandidates(sn, req.LDNS)
	}

	d, err := s.lb.PickDeployment(candidates, req.Demand)
	if err != nil {
		return nil, err
	}
	servers, err := s.lb.PickServers(d, req.Domain, req.Demand)
	if err != nil {
		return nil, err
	}
	resp.Deployment = d
	resp.Servers = servers
	return resp, nil
}

// ldnsCandidates returns the snapshot rank table for a resolver address:
// its measured endpoint's table, or the resolver fallback table.
func (s *System) ldnsCandidates(sn *Snapshot, addr netip.Addr) []Ranked {
	if l, ok := s.index.ldnsByAddr(addr); ok {
		return sn.RankOf(l.Endpoint().ID, false)
	}
	return sn.fallbackTable(false)
}

// clientEndpointID resolves a mapping unit to the endpoint ID scored on
// its behalf: the unit's highest-demand known block, or the exact leaf
// block when the unit itself is unknown. The bool reports whether the
// prefix was recognised; unknown prefixes use the snapshot's client
// fallback table.
//
// A query coarser than the mapping unit — a truncated ECS source from a
// privacy-limiting resolver — takes the range-scan path instead: the
// unit derived from the query's base address probes only one leaf, which
// may be empty even when sibling leaves inside the coarse prefix are
// known. Falling through to the generic fallback there is the bug this
// guards against: the fallback answer carries scope 0, which the
// resolver files in its subnet-blind cache, shadowing answers for every
// client it serves.
func (s *System) clientEndpointID(unit, query netip.Prefix) (uint64, bool) {
	if query.Bits() < unit.Bits() {
		if b, ok := s.index.coarseRep(query); ok {
			return b.ID, true
		}
		return 0, false
	}
	if b, ok := s.index.unitRep(unit); ok {
		return b.ID, true
	}
	if b, ok := s.index.blockByLeaf(query.Addr()); ok {
		return b.ID, true
	}
	return 0, false
}

// ldnsEndpoint resolves a resolver address to its measured endpoint, or a
// fallback endpoint for unknown resolvers.
func (s *System) ldnsEndpoint(addr netip.Addr) netmodel.Endpoint {
	if l, ok := s.index.ldnsByAddr(addr); ok {
		return l.Endpoint()
	}
	return netmodel.Endpoint{ID: hashAddr(addr), Loc: s.cfg.FallbackLoc,
		Access: netmodel.AccessBackbone}
}

// LDNSEndpoint returns the network endpoint the system scores for queries
// arriving from the given resolver address (a fallback endpoint for
// unknown resolvers). Top-level name servers use it to pick the low-level
// name-server cluster to delegate to.
func (s *System) LDNSEndpoint(addr netip.Addr) netmodel.Endpoint {
	return s.ldnsEndpoint(addr)
}

// LookupLDNS returns the world LDNS behind addr, if known.
func (s *System) LookupLDNS(addr netip.Addr) (*world.LDNS, bool) {
	return s.index.ldnsByAddr(addr)
}

// LookupBlock returns the world client block owning the leaf prefix
// (IPv4 /24 or IPv6 /48) around addr.
func (s *System) LookupBlock(addr netip.Addr) (*world.ClientBlock, bool) {
	return s.index.blockByLeaf(addr)
}

// IndexBytes returns the resident size of the system's flat lookup
// arrays; with Snapshot.MemoryBytes it is the scale guard's
// bytes-per-block accounting.
func (s *System) IndexBytes() uint64 { return s.index.memoryBytes() }

// leafBits is the finest-grain block size per family: /24 v4, /48 v6.
func leafBits(addr netip.Addr) int {
	if addr.Unmap().Is4() {
		return 24
	}
	return 48
}

// hashAddr hashes an address by its 16-byte expanded form (FNV-1a),
// avoiding the String() allocation the presentation form would cost on
// every unknown-endpoint query.
func hashAddr(a netip.Addr) uint64 {
	b := a.As16()
	h := uint64(fnvOffset64)
	for _, c := range b {
		h ^= uint64(c)
		h *= fnvPrime64
	}
	return h
}
