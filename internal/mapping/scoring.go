package mapping

import (
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"eum/internal/cdn"
	"eum/internal/geo"
	"eum/internal/netmodel"
	"eum/internal/world"
)

// Prober measures path quality between two endpoints. The network model
// itself satisfies it (direct probing), as does a measurement database
// (measure.DB) that serves stored sweep observations — the production
// information flow, where scoring reads measurements rather than the
// network.
type Prober interface {
	PingMs(a, b netmodel.Endpoint) float64
}

// targetShardCount shards the endpoint->target index so concurrent
// queries for distinct endpoints never contend on one lock. Must be a
// power of two.
const targetShardCount = 64

// targetShard is one shard of the endpoint-ID -> target-index map.
// Lookups take the read lock; the write lock is only taken the first time
// a given endpoint is seen.
type targetShard struct {
	mu   sync.RWMutex
	byID map[uint64]int
}

// Scorer evaluates which deployments serve a given network location best.
// It reproduces the measurement methodology of §6: rather than measuring
// every client block directly, blocks are clustered to a bounded set of
// "ping targets" (8K in the paper, covering the top-traffic /24 blocks),
// ping latency is measured from every candidate deployment to every target,
// and a client inherits the measurements of its nearest target.
//
// Scores are ping milliseconds: lower is better. Rankings are computed
// lazily per target (or all at once via Precompute) and cached in
// per-target atomic slots, so the query hot path reads them lock-free; the
// Scorer is safe for concurrent use and concurrent queries never serialize
// on a shared mutex.
type Scorer struct {
	platform *cdn.Platform
	net      Prober
	targets  []netmodel.Endpoint

	// targetIdx maps a ping target's endpoint ID to its index, so
	// measurement updates scoped to specific targets (the MapMaker's
	// NotifyMeasurement feed) can invalidate just those tables.
	targetIdx map[uint64]int

	// latSorted/latOrder index the targets by latitude for nearest-target
	// search: latSorted is ascending target latitudes, latOrder the target
	// index at each sorted position. Latitude difference lower-bounds
	// great-circle distance, so the search scans outward from the query
	// latitude and stops once the band cannot beat the best hit — exact,
	// but examining a narrow band instead of every target.
	latSorted []float64
	latOrder  []int32

	// gen counts invalidations; answer caches layered above compare it
	// to decide whether their entries predate a liveness change.
	gen atomic.Uint64

	// rankCache and bestCache hold one atomic slot per ping target.
	// A nil pointer means "not computed"; Invalidate stores nil.
	rankCache []atomic.Pointer[[]Ranked]
	bestCache []atomic.Pointer[Ranked]

	targetShards [targetShardCount]targetShard
}

// Ranked is a deployment with its score for some target.
type Ranked struct {
	Deployment *cdn.Deployment
	Score      float64
}

// NewScorer builds a scorer over the platform using the network model.
// numTargets bounds the ping-target set; targets are chosen as the
// highest-demand client blocks of the world, mirroring the paper's "20K /24
// blocks that account for most of the load, clustered into 8K ping targets".
// numTargets <= 0 disables clustering: every queried endpoint is scored
// directly (exact, but slower and unbounded).
func NewScorer(w *world.World, p *cdn.Platform, net Prober, numTargets int) *Scorer {
	s := &Scorer{
		platform: p,
		net:      net,
	}
	for i := range s.targetShards {
		s.targetShards[i].byID = map[uint64]int{}
	}
	if numTargets > 0 {
		blocks := append([]*world.ClientBlock{}, w.Blocks...)
		sort.Slice(blocks, func(i, j int) bool { return blocks[i].Demand > blocks[j].Demand })
		if numTargets > len(blocks) {
			numTargets = len(blocks)
		}
		for _, b := range blocks[:numTargets] {
			s.targets = append(s.targets, b.Endpoint())
		}
		s.rankCache = make([]atomic.Pointer[[]Ranked], len(s.targets))
		s.bestCache = make([]atomic.Pointer[Ranked], len(s.targets))
		s.targetIdx = make(map[uint64]int, len(s.targets))
		for i, t := range s.targets {
			if _, ok := s.targetIdx[t.ID]; !ok {
				s.targetIdx[t.ID] = i
			}
		}
		order := make([]int32, len(s.targets))
		for i := range order {
			order[i] = int32(i)
		}
		sort.SliceStable(order, func(i, j int) bool {
			return s.targets[order[i]].Loc.Lat < s.targets[order[j]].Loc.Lat
		})
		s.latOrder = order
		s.latSorted = make([]float64, len(order))
		for i, t := range order {
			s.latSorted[i] = s.targets[t].Loc.Lat
		}
	}
	return s
}

// Platform returns the scored platform.
func (s *Scorer) Platform() *cdn.Platform { return s.platform }

// Generation returns the invalidation counter: it increases every time
// cached scoring state is dropped (liveness or measurement changes), so
// layered caches can stamp entries and discard stale ones.
func (s *Scorer) Generation() uint64 { return s.gen.Load() }

// targetFor returns the index of the ping target standing in for ep, or -1
// when clustering is disabled.
func (s *Scorer) targetFor(ep netmodel.Endpoint) int {
	if len(s.targets) == 0 {
		return -1
	}
	sh := &s.targetShards[ep.ID&(targetShardCount-1)]
	sh.mu.RLock()
	idx, ok := sh.byID[ep.ID]
	sh.mu.RUnlock()
	if ok {
		return idx
	}

	best := s.nearestTarget(ep)
	sh.mu.Lock()
	sh.byID[ep.ID] = best
	sh.mu.Unlock()
	return best
}

// nearestTarget finds the ping target geographically closest to ep,
// breaking distance ties toward the lowest target index (the semantics of
// a linear argmin scan with strict <). It walks the latitude-sorted target
// index outward from ep's latitude, pruning with the invariant that
// great-circle distance is at least the latitude difference — so only a
// narrow latitude band is ever examined, which is what makes million-block
// partition layouts affordable.
func (s *Scorer) nearestTarget(ep netmodel.Endpoint) int {
	n := len(s.latSorted)
	j := sort.SearchFloat64s(s.latSorted, ep.Loc.Lat)
	i := j - 1
	best, bestD := -1, math.Inf(1)
	consider := func(k int) {
		t := int(s.latOrder[k])
		d := geo.Distance(ep.Loc, s.targets[t].Loc)
		if d < bestD || (d == bestD && t < best) {
			best, bestD = t, d
		}
	}
	for i >= 0 || j < n {
		// Lower-bound each frontier by its latitude gap (milesPerDegreeLat
		// rounds down, keeping the bound sound); a frontier that cannot
		// beat — or tie, since ties can win on index — the best hit is
		// done, and when both are done so is the search.
		di, dj := math.Inf(1), math.Inf(1)
		if i >= 0 {
			di = math.Abs(ep.Loc.Lat-s.latSorted[i]) * milesPerDegreeLat
		}
		if j < n {
			dj = math.Abs(s.latSorted[j]-ep.Loc.Lat) * milesPerDegreeLat
		}
		if best >= 0 && di > bestD && dj > bestD {
			break
		}
		if di <= dj {
			consider(i)
			i--
		} else {
			consider(j)
			j++
		}
	}
	return best
}

// proxyEndpoint returns the endpoint actually measured for ep: its ping
// target when clustering is on, else ep itself.
func (s *Scorer) proxyEndpoint(ep netmodel.Endpoint) (netmodel.Endpoint, int) {
	idx := s.targetFor(ep)
	if idx < 0 {
		return ep, -1
	}
	return s.targets[idx], idx
}

// computeRank scores every deployment against proxy, best first.
func (s *Scorer) computeRank(proxy netmodel.Endpoint) []Ranked {
	r := make([]Ranked, 0, len(s.platform.Deployments))
	for _, d := range s.platform.Deployments {
		r = append(r, Ranked{Deployment: d, Score: s.net.PingMs(d.Endpoint(), proxy)})
	}
	sort.Slice(r, func(i, j int) bool { return r[i].Score < r[j].Score })
	return r
}

// computeBest finds the best-scoring live deployment for proxy, or nil.
func (s *Scorer) computeBest(proxy netmodel.Endpoint) (*cdn.Deployment, float64) {
	var best *cdn.Deployment
	bestScore := 0.0
	for _, d := range s.platform.Deployments {
		if !d.Alive() {
			continue
		}
		sc := s.net.PingMs(d.Endpoint(), proxy)
		if best == nil || sc < bestScore {
			best, bestScore = d, sc
		}
	}
	return best, bestScore
}

// Rank returns all deployments ordered by ascending ping score for ep.
// The slice is shared; callers must not modify it.
func (s *Scorer) Rank(ep netmodel.Endpoint) []Ranked {
	proxy, idx := s.proxyEndpoint(ep)
	if idx >= 0 {
		if p := s.rankCache[idx].Load(); p != nil {
			return *p
		}
	}
	r := s.computeRank(proxy)
	if idx >= 0 {
		s.rankCache[idx].Store(&r)
	}
	return r
}

// Best returns the live deployment with the lowest ping score for ep and
// that score, skipping deployments with no live servers. It returns nil if
// no deployment is alive. Results are cached per ping target; the cache
// assumes liveness is stable during a scoring interval (call Invalidate
// after failure injection).
func (s *Scorer) Best(ep netmodel.Endpoint) (*cdn.Deployment, float64) {
	proxy, idx := s.proxyEndpoint(ep)
	if idx >= 0 {
		if r := s.bestCache[idx].Load(); r != nil {
			return r.Deployment, r.Score
		}
	}
	best, bestScore := s.computeBest(proxy)
	if idx >= 0 && best != nil {
		s.bestCache[idx].Store(&Ranked{Deployment: best, Score: bestScore})
	}
	return best, bestScore
}

// Invalidate drops all cached per-target results — both the liveness-
// dependent best-deployment cache and the rank cache — and bumps the
// generation counter, so the next snapshot Build recomputes its tables.
// The MapMaker calls it on a measurement refresh; it has no effect on
// already-published snapshots.
func (s *Scorer) Invalidate() {
	for i := range s.bestCache {
		s.bestCache[i].Store(nil)
	}
	for i := range s.rankCache {
		s.rankCache[i].Store(nil)
	}
	s.gen.Add(1)
}

// InvalidateTargets drops the cached results for specific ping targets
// only — the scoped counterpart of Invalidate, used when a measurement
// sweep refreshed a known subset of targets. Tables for every other target
// stay warm, which is what lets the snapshot builder re-rank only the
// partitions those targets serve. The generation counter still advances so
// layered caches see the change.
func (s *Scorer) InvalidateTargets(idxs ...int) {
	for _, i := range idxs {
		if i >= 0 && i < len(s.rankCache) {
			s.rankCache[i].Store(nil)
			s.bestCache[i].Store(nil)
		}
	}
	s.gen.Add(1)
}

// TargetIndex resolves an endpoint ID to its ping-target index, reporting
// whether the endpoint is one of the scorer's targets.
func (s *Scorer) TargetIndex(id uint64) (int, bool) {
	i, ok := s.targetIdx[id]
	return i, ok
}

// TargetFor returns the ping target standing in for ep under clustering,
// reporting false when clustering is off. Measurement feeds use it to
// learn which target's tables a refreshed endpoint contributes to.
func (s *Scorer) TargetFor(ep netmodel.Endpoint) (netmodel.Endpoint, bool) {
	idx := s.targetFor(ep)
	if idx < 0 {
		return netmodel.Endpoint{}, false
	}
	return s.targets[idx], true
}

// Targeted reports whether clustering is on (a bounded ping-target set).
func (s *Scorer) Targeted() bool { return len(s.targets) > 0 }

// rankTarget returns ping target idx's rank table, computing and caching
// it if the slot is cold. The snapshot builder assembles published maps
// from these tables.
func (s *Scorer) rankTarget(idx int) []Ranked {
	if p := s.rankCache[idx].Load(); p != nil {
		return *p
	}
	r := s.computeRank(s.targets[idx])
	s.rankCache[idx].Store(&r)
	return r
}

// Precompute ranks every ping target up front, in parallel, so the first
// query for any target hits a warm cache instead of paying the full
// platform scan — the paper's mapping system likewise computes its scoring
// tables ahead of the query path, not on it.
func (s *Scorer) Precompute() {
	n := len(s.targets)
	if n == 0 {
		return
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				idx := int(next.Add(1)) - 1
				if idx >= n {
					return
				}
				proxy := s.targets[idx]
				r := s.computeRank(proxy)
				s.rankCache[idx].Store(&r)
				if best, score := s.computeBest(proxy); best != nil {
					s.bestCache[idx].Store(&Ranked{Deployment: best, Score: score})
				}
			}
		}()
	}
	wg.Wait()
}

// BestWeighted returns the live deployment minimising the demand-weighted
// mean ping to the given endpoints — the CANS objective: "map client to the
// deployment that minimizes the traffic-weighted average of the latencies
// from the deployment to its cluster of clients" (§6).
func (s *Scorer) BestWeighted(eps []netmodel.Endpoint, weights []float64) (*cdn.Deployment, float64) {
	if len(eps) == 0 {
		return nil, 0
	}
	proxies := make([]netmodel.Endpoint, len(eps))
	for i, ep := range eps {
		proxies[i], _ = s.proxyEndpoint(ep)
	}
	var best *cdn.Deployment
	bestScore := 0.0
	for _, d := range s.platform.Deployments {
		if !d.Alive() {
			continue
		}
		de := d.Endpoint()
		var sum, wsum float64
		for i, p := range proxies {
			w := 1.0
			if weights != nil {
				w = weights[i]
			}
			sum += w * s.net.PingMs(de, p)
			wsum += w
		}
		if wsum == 0 {
			continue
		}
		sc := sum / wsum
		if best == nil || sc < bestScore {
			best, bestScore = d, sc
		}
	}
	return best, bestScore
}

// Score returns the ping score between a specific deployment and ep.
func (s *Scorer) Score(d *cdn.Deployment, ep netmodel.Endpoint) float64 {
	proxy, _ := s.proxyEndpoint(ep)
	return s.net.PingMs(d.Endpoint(), proxy)
}
