package mapping

import (
	"sort"
	"sync"

	"eum/internal/cdn"
	"eum/internal/geo"
	"eum/internal/netmodel"
	"eum/internal/world"
)

// Prober measures path quality between two endpoints. The network model
// itself satisfies it (direct probing), as does a measurement database
// (measure.DB) that serves stored sweep observations — the production
// information flow, where scoring reads measurements rather than the
// network.
type Prober interface {
	PingMs(a, b netmodel.Endpoint) float64
}

// Scorer evaluates which deployments serve a given network location best.
// It reproduces the measurement methodology of §6: rather than measuring
// every client block directly, blocks are clustered to a bounded set of
// "ping targets" (8K in the paper, covering the top-traffic /24 blocks),
// ping latency is measured from every candidate deployment to every target,
// and a client inherits the measurements of its nearest target.
//
// Scores are ping milliseconds: lower is better. Rankings are computed
// lazily per target and cached; the Scorer is safe for concurrent use.
type Scorer struct {
	platform *cdn.Platform
	net      Prober
	targets  []netmodel.Endpoint

	mu         sync.Mutex
	rankCache  map[int][]Ranked // target index -> deployments by score
	bestCache  map[int]Ranked   // target index -> best live deployment
	targetByID map[uint64]int   // endpoint ID -> target index
}

// Ranked is a deployment with its score for some target.
type Ranked struct {
	Deployment *cdn.Deployment
	Score      float64
}

// NewScorer builds a scorer over the platform using the network model.
// numTargets bounds the ping-target set; targets are chosen as the
// highest-demand client blocks of the world, mirroring the paper's "20K /24
// blocks that account for most of the load, clustered into 8K ping targets".
// numTargets <= 0 disables clustering: every queried endpoint is scored
// directly (exact, but slower and unbounded).
func NewScorer(w *world.World, p *cdn.Platform, net Prober, numTargets int) *Scorer {
	s := &Scorer{
		platform:   p,
		net:        net,
		rankCache:  map[int][]Ranked{},
		bestCache:  map[int]Ranked{},
		targetByID: map[uint64]int{},
	}
	if numTargets > 0 {
		blocks := append([]*world.ClientBlock{}, w.Blocks...)
		sort.Slice(blocks, func(i, j int) bool { return blocks[i].Demand > blocks[j].Demand })
		if numTargets > len(blocks) {
			numTargets = len(blocks)
		}
		for _, b := range blocks[:numTargets] {
			s.targets = append(s.targets, b.Endpoint())
		}
	}
	return s
}

// Platform returns the scored platform.
func (s *Scorer) Platform() *cdn.Platform { return s.platform }

// targetFor returns the index of the ping target standing in for ep, or -1
// when clustering is disabled.
func (s *Scorer) targetFor(ep netmodel.Endpoint) int {
	if len(s.targets) == 0 {
		return -1
	}
	s.mu.Lock()
	if idx, ok := s.targetByID[ep.ID]; ok {
		s.mu.Unlock()
		return idx
	}
	s.mu.Unlock()

	best, bestD := 0, geo.Distance(ep.Loc, s.targets[0].Loc)
	for i := 1; i < len(s.targets); i++ {
		if d := geo.Distance(ep.Loc, s.targets[i].Loc); d < bestD {
			best, bestD = i, d
		}
	}
	s.mu.Lock()
	s.targetByID[ep.ID] = best
	s.mu.Unlock()
	return best
}

// proxyEndpoint returns the endpoint actually measured for ep: its ping
// target when clustering is on, else ep itself.
func (s *Scorer) proxyEndpoint(ep netmodel.Endpoint) (netmodel.Endpoint, int) {
	idx := s.targetFor(ep)
	if idx < 0 {
		return ep, -1
	}
	return s.targets[idx], idx
}

// Rank returns all live deployments ordered by ascending ping score for ep.
// The slice is shared; callers must not modify it.
func (s *Scorer) Rank(ep netmodel.Endpoint) []Ranked {
	proxy, idx := s.proxyEndpoint(ep)
	if idx >= 0 {
		s.mu.Lock()
		if r, ok := s.rankCache[idx]; ok {
			s.mu.Unlock()
			return r
		}
		s.mu.Unlock()
	}
	r := make([]Ranked, 0, len(s.platform.Deployments))
	for _, d := range s.platform.Deployments {
		r = append(r, Ranked{Deployment: d, Score: s.net.PingMs(d.Endpoint(), proxy)})
	}
	sort.Slice(r, func(i, j int) bool { return r[i].Score < r[j].Score })
	if idx >= 0 {
		s.mu.Lock()
		s.rankCache[idx] = r
		s.mu.Unlock()
	}
	return r
}

// Best returns the live deployment with the lowest ping score for ep and
// that score, skipping deployments with no live servers. It returns nil if
// no deployment is alive. Results are cached per ping target; the cache
// assumes liveness is stable during a scoring interval (call
// InvalidateBest after failure injection).
func (s *Scorer) Best(ep netmodel.Endpoint) (*cdn.Deployment, float64) {
	proxy, idx := s.proxyEndpoint(ep)
	if idx >= 0 {
		s.mu.Lock()
		if r, ok := s.bestCache[idx]; ok {
			s.mu.Unlock()
			return r.Deployment, r.Score
		}
		s.mu.Unlock()
	}
	var best *cdn.Deployment
	bestScore := 0.0
	for _, d := range s.platform.Deployments {
		if !d.Alive() {
			continue
		}
		sc := s.net.PingMs(d.Endpoint(), proxy)
		if best == nil || sc < bestScore {
			best, bestScore = d, sc
		}
	}
	if idx >= 0 && best != nil {
		s.mu.Lock()
		s.bestCache[idx] = Ranked{Deployment: best, Score: bestScore}
		s.mu.Unlock()
	}
	return best, bestScore
}

// InvalidateBest drops the cached best-deployment results, e.g. after
// liveness changes.
func (s *Scorer) InvalidateBest() {
	s.mu.Lock()
	s.bestCache = map[int]Ranked{}
	s.mu.Unlock()
}

// BestWeighted returns the live deployment minimising the demand-weighted
// mean ping to the given endpoints — the CANS objective: "map client to the
// deployment that minimizes the traffic-weighted average of the latencies
// from the deployment to its cluster of clients" (§6).
func (s *Scorer) BestWeighted(eps []netmodel.Endpoint, weights []float64) (*cdn.Deployment, float64) {
	if len(eps) == 0 {
		return nil, 0
	}
	proxies := make([]netmodel.Endpoint, len(eps))
	for i, ep := range eps {
		proxies[i], _ = s.proxyEndpoint(ep)
	}
	var best *cdn.Deployment
	bestScore := 0.0
	for _, d := range s.platform.Deployments {
		if !d.Alive() {
			continue
		}
		de := d.Endpoint()
		var sum, wsum float64
		for i, p := range proxies {
			w := 1.0
			if weights != nil {
				w = weights[i]
			}
			sum += w * s.net.PingMs(de, p)
			wsum += w
		}
		if wsum == 0 {
			continue
		}
		sc := sum / wsum
		if best == nil || sc < bestScore {
			best, bestScore = d, sc
		}
	}
	return best, bestScore
}

// Score returns the ping score between a specific deployment and ep.
func (s *Scorer) Score(d *cdn.Deployment, ep netmodel.Endpoint) float64 {
	proxy, _ := s.proxyEndpoint(ep)
	return s.net.PingMs(d.Endpoint(), proxy)
}
