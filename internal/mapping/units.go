// Package mapping implements the paper's primary contribution: the CDN
// mapping system that routes each DNS request to a proximal server cluster.
//
// It provides the three request-routing policies the paper evaluates —
// traditional NS-based mapping (route by the LDNS), end-user mapping (route
// by the EDNS0 client-subnet prefix), and client-aware NS-based mapping
// (route by the LDNS's measured client cluster) — together with the scoring
// layer built on ping-target measurements, the two-level (global + local)
// load balancer, and the mapping-unit policies of §5.1 (/x client blocks
// with optional BGP CIDR aggregation).
package mapping

import (
	"fmt"
	"net/netip"

	"eum/internal/world"
)

// UnitPolicy maps a client prefix to the mapping unit it belongs to — the
// finest-grain set of client IPs for which server assignment decisions are
// made (§5.1). Coarser units mean fewer entries to measure and cache but a
// larger cluster radius and hence lower mapping accuracy (Fig 22).
type UnitPolicy interface {
	// UnitFor returns the canonical mapping-unit prefix containing addr.
	UnitFor(addr netip.Addr) netip.Prefix
	// Bits returns the unit granularity in prefix bits for ECS scope
	// answers; CIDR-aggregated policies return the covering CIDR's bits
	// via UnitFor and use their base granularity here.
	Bits() uint8
}

// PrefixUnits maps clients to fixed /x blocks. The natural choices are
// /24 for IPv4 and /48 for IPv6 — what ECS-enabled resolvers send — with
// coarser values trading accuracy for fewer units.
type PrefixUnits struct {
	// X is the IPv4 prefix length (1..32).
	X uint8
	// X6 is the IPv6 prefix length; 0 means 48.
	X6 uint8
}

// UnitFor implements UnitPolicy.
func (p PrefixUnits) UnitFor(addr netip.Addr) netip.Prefix {
	addr = addr.Unmap()
	bits := int(p.X)
	if addr.Is6() {
		bits = int(p.X6)
		if bits == 0 {
			bits = 48
		}
	}
	pre, err := addr.Prefix(bits)
	if err != nil {
		return netip.Prefix{}
	}
	return pre
}

// Bits implements UnitPolicy (the IPv4 granularity).
func (p PrefixUnits) Bits() uint8 { return p.X }

// String returns "/x units".
func (p PrefixUnits) String() string { return fmt.Sprintf("/%d units", p.X) }

// CIDRUnits maps clients to BGP-announced CIDRs: /24 blocks within the same
// announcement are combined, since they are likely proximal in the network
// sense (§5.1 reduced 3.76M /24 blocks to 444K units this way). Addresses
// not covered by any announcement fall back to the base prefix policy.
type CIDRUnits struct {
	Base PrefixUnits
	// set indexes announced CIDRs for longest-prefix matching; minBits
	// and maxBits bound the probe range.
	set              map[netip.Prefix]bool
	minBits, maxBits int
}

// NewCIDRUnits builds a CIDR-aggregating unit policy from a BGP table.
func NewCIDRUnits(base PrefixUnits, cidrs []netip.Prefix) *CIDRUnits {
	c := &CIDRUnits{Base: base, set: make(map[netip.Prefix]bool, len(cidrs)), minBits: 32, maxBits: 0}
	for _, p := range cidrs {
		p = p.Masked()
		c.set[p] = true
		if p.Bits() < c.minBits {
			c.minBits = p.Bits()
		}
		if p.Bits() > c.maxBits {
			c.maxBits = p.Bits()
		}
	}
	return c
}

// Lookup returns the most specific announced CIDR containing addr.
func (c *CIDRUnits) Lookup(addr netip.Addr) (netip.Prefix, bool) {
	for bits := c.maxBits; bits >= c.minBits; bits-- {
		p, err := addr.Unmap().Prefix(bits)
		if err != nil {
			return netip.Prefix{}, false
		}
		if c.set[p] {
			return p, true
		}
	}
	return netip.Prefix{}, false
}

// UnitFor implements UnitPolicy: the covering CIDR when one exists (but
// never coarser than the base policy allows for accuracy), else the base
// /x block.
func (c *CIDRUnits) UnitFor(addr netip.Addr) netip.Prefix {
	if p, ok := c.Lookup(addr); ok {
		return p
	}
	return c.Base.UnitFor(addr)
}

// Bits implements UnitPolicy.
func (c *CIDRUnits) Bits() uint8 { return c.Base.X }

// String describes the policy.
func (c *CIDRUnits) String() string {
	return fmt.Sprintf("BGP-CIDR units over %s (%d announcements)", c.Base, len(c.set))
}

// CountUnits returns the number of distinct mapping units with non-zero
// demand that policy u induces over the world's client blocks — the y axis
// of Fig 22b.
func CountUnits(w *world.World, u UnitPolicy) int {
	seen := map[netip.Prefix]bool{}
	for _, b := range w.Blocks {
		seen[u.UnitFor(b.Prefix.Addr())] = true
	}
	return len(seen)
}

// UnitClusters groups the world's client blocks by mapping unit, for
// cluster-radius analyses (Fig 22a).
func UnitClusters(w *world.World, u UnitPolicy) map[netip.Prefix][]*world.ClientBlock {
	out := map[netip.Prefix][]*world.ClientBlock{}
	for _, b := range w.Blocks {
		k := u.UnitFor(b.Prefix.Addr())
		out[k] = append(out[k], b)
	}
	return out
}
