package mapping

import (
	"net/netip"
	"sort"
	"unsafe"

	"eum/internal/world"
)

// sysIndex replaces the System's per-endpoint Go maps (leaf-prefix → block,
// mapping-unit → representative block, resolver address → LDNS) with
// sorted flat arrays and binary search: a few bytes per block resident
// instead of a map entry per block, and allocation-free lookups on the
// query hot path. Indexes refer to blocks and LDNSes by position in the
// world's slices.
type sysIndex struct {
	blocks []*world.ClientBlock
	ldnses []*world.LDNS

	// Leaf blocks, keyed by the fixed-width network bits per family:
	// the /24 network (addr32 >> 8) for IPv4, the /48 network (top 48 bits)
	// for IPv6. Keys are unique and sorted.
	leaf4Keys   []uint32
	leaf4Blocks []int32
	leaf6Keys   []uint64
	leaf6Blocks []int32

	// Mapping units → highest-demand representative block. IPv4 unit keys
	// pack (network address << 8 | prefix bits) into a uint64; IPv6 units
	// need the full 128-bit address plus bits (unit6Key), compared
	// lexicographically.
	unit4Keys   []uint64
	unit4Blocks []int32
	unit6Keys   []unit6Key
	unit6Blocks []int32

	// Resolvers, sorted by netip.Addr ordering.
	ldnsAddrs []netip.Addr
	ldnsIdx   []int32
}

// unit6Key is an IPv6 mapping-unit key: the masked address and its prefix
// length, ordered lexicographically.
type unit6Key struct {
	hi, lo uint64
	bits   uint8
}

func (k unit6Key) less(o unit6Key) bool {
	if k.hi != o.hi {
		return k.hi < o.hi
	}
	if k.lo != o.lo {
		return k.lo < o.lo
	}
	return k.bits < o.bits
}

// addr128 splits an address's 16-byte form into two uint64 halves.
func addr128(a netip.Addr) (hi, lo uint64) {
	b := a.As16()
	for i := 0; i < 8; i++ {
		hi = hi<<8 | uint64(b[i])
		lo = lo<<8 | uint64(b[i+8])
	}
	return hi, lo
}

// addr32 returns an IPv4 address as a big-endian uint32.
func addr32(a netip.Addr) uint32 {
	b := a.As4()
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}

// unit4KeyFor packs an IPv4 unit prefix into its uint64 index key.
func unit4KeyFor(p netip.Prefix) uint64 {
	return uint64(addr32(p.Addr().Unmap()))<<8 | uint64(uint8(p.Bits()))
}

// unit6KeyFor builds the IPv6 unit index key.
func unit6KeyFor(p netip.Prefix) unit6Key {
	hi, lo := addr128(p.Addr())
	return unit6Key{hi: hi, lo: lo, bits: uint8(p.Bits())}
}

// buildSysIndex assembles the System's lookup structures from the world.
// Temporary maps keep construction O(n); only the sorted arrays stay
// resident.
func buildSysIndex(w *world.World, units UnitPolicy) *sysIndex {
	ix := &sysIndex{blocks: w.Blocks, ldnses: w.LDNSes}

	type p32 struct {
		k   uint32
		idx int32
	}
	type p64 struct {
		k   uint64
		idx int32
	}
	type p128 struct {
		k   unit6Key
		idx int32
	}
	var leaf4 []p32
	var leaf6 []p64
	// Highest-demand representative per unit, first block winning ties —
	// the same rule the map-based index applied in world order.
	rep4 := map[uint64]int32{}
	rep6 := map[unit6Key]int32{}
	for i, b := range w.Blocks {
		a := b.Prefix.Addr().Unmap()
		if a.Is4() {
			leaf4 = append(leaf4, p32{addr32(a) >> 8, int32(i)})
		} else {
			hi, _ := addr128(a)
			leaf6 = append(leaf6, p64{hi >> 16, int32(i)})
		}
		u := units.UnitFor(b.Prefix.Addr())
		ua := u.Addr().Unmap()
		if ua.Is4() {
			k := unit4KeyFor(u)
			if j, ok := rep4[k]; !ok || b.Demand > w.Blocks[j].Demand {
				rep4[k] = int32(i)
			}
		} else {
			k := unit6KeyFor(u)
			if j, ok := rep6[k]; !ok || b.Demand > w.Blocks[j].Demand {
				rep6[k] = int32(i)
			}
		}
	}

	sort.Slice(leaf4, func(i, j int) bool { return leaf4[i].k < leaf4[j].k })
	ix.leaf4Keys = make([]uint32, len(leaf4))
	ix.leaf4Blocks = make([]int32, len(leaf4))
	for i, e := range leaf4 {
		ix.leaf4Keys[i] = e.k
		ix.leaf4Blocks[i] = e.idx
	}
	sort.Slice(leaf6, func(i, j int) bool { return leaf6[i].k < leaf6[j].k })
	ix.leaf6Keys = make([]uint64, len(leaf6))
	ix.leaf6Blocks = make([]int32, len(leaf6))
	for i, e := range leaf6 {
		ix.leaf6Keys[i] = e.k
		ix.leaf6Blocks[i] = e.idx
	}

	u4 := make([]p64, 0, len(rep4))
	for k, idx := range rep4 {
		u4 = append(u4, p64{k, idx})
	}
	sort.Slice(u4, func(i, j int) bool { return u4[i].k < u4[j].k })
	ix.unit4Keys = make([]uint64, len(u4))
	ix.unit4Blocks = make([]int32, len(u4))
	for i, e := range u4 {
		ix.unit4Keys[i] = e.k
		ix.unit4Blocks[i] = e.idx
	}
	u6 := make([]p128, 0, len(rep6))
	for k, idx := range rep6 {
		u6 = append(u6, p128{k, idx})
	}
	sort.Slice(u6, func(i, j int) bool { return u6[i].k.less(u6[j].k) })
	ix.unit6Keys = make([]unit6Key, len(u6))
	ix.unit6Blocks = make([]int32, len(u6))
	for i, e := range u6 {
		ix.unit6Keys[i] = e.k
		ix.unit6Blocks[i] = e.idx
	}

	type pAddr struct {
		a   netip.Addr
		idx int32
	}
	la := make([]pAddr, len(w.LDNSes))
	for i, l := range w.LDNSes {
		la[i] = pAddr{l.Addr, int32(i)}
	}
	sort.Slice(la, func(i, j int) bool { return la[i].a.Compare(la[j].a) < 0 })
	ix.ldnsAddrs = make([]netip.Addr, len(la))
	ix.ldnsIdx = make([]int32, len(la))
	for i, e := range la {
		ix.ldnsAddrs[i] = e.a
		ix.ldnsIdx[i] = e.idx
	}
	return ix
}

// searchU32 returns the position of k in keys, or -1. Manual binary search
// keeps the hot path free of closure allocations.
func searchU32(keys []uint32, k uint32) int {
	lo, hi := 0, len(keys)
	for lo < hi {
		m := int(uint(lo+hi) >> 1)
		if keys[m] < k {
			lo = m + 1
		} else {
			hi = m
		}
	}
	if lo < len(keys) && keys[lo] == k {
		return lo
	}
	return -1
}

// lowerBoundU32 returns the first position whose key is >= k (len(keys)
// when none is). Range scans over the sorted leaf keys use it to find the
// start of a coarse prefix's span.
func lowerBoundU32(keys []uint32, k uint32) int {
	lo, hi := 0, len(keys)
	for lo < hi {
		m := int(uint(lo+hi) >> 1)
		if keys[m] < k {
			lo = m + 1
		} else {
			hi = m
		}
	}
	return lo
}

func lowerBoundU64(keys []uint64, k uint64) int {
	lo, hi := 0, len(keys)
	for lo < hi {
		m := int(uint(lo+hi) >> 1)
		if keys[m] < k {
			lo = m + 1
		} else {
			hi = m
		}
	}
	return lo
}

func searchU64(keys []uint64, k uint64) int {
	lo, hi := 0, len(keys)
	for lo < hi {
		m := int(uint(lo+hi) >> 1)
		if keys[m] < k {
			lo = m + 1
		} else {
			hi = m
		}
	}
	if lo < len(keys) && keys[lo] == k {
		return lo
	}
	return -1
}

func searchUnit6(keys []unit6Key, k unit6Key) int {
	lo, hi := 0, len(keys)
	for lo < hi {
		m := int(uint(lo+hi) >> 1)
		if keys[m].less(k) {
			lo = m + 1
		} else {
			hi = m
		}
	}
	if lo < len(keys) && keys[lo] == k {
		return lo
	}
	return -1
}

func searchAddr(keys []netip.Addr, a netip.Addr) int {
	lo, hi := 0, len(keys)
	for lo < hi {
		m := int(uint(lo+hi) >> 1)
		if keys[m].Compare(a) < 0 {
			lo = m + 1
		} else {
			hi = m
		}
	}
	if lo < len(keys) && keys[lo] == a {
		return lo
	}
	return -1
}

// blockByLeaf resolves a leaf prefix key (the /24 or /48 around addr) to
// its client block.
func (ix *sysIndex) blockByLeaf(addr netip.Addr) (*world.ClientBlock, bool) {
	a := addr.Unmap()
	if a.Is4() {
		if i := searchU32(ix.leaf4Keys, addr32(a)>>8); i >= 0 {
			return ix.blocks[ix.leaf4Blocks[i]], true
		}
		return nil, false
	}
	hi, _ := addr128(a)
	if i := searchU64(ix.leaf6Keys, hi>>16); i >= 0 {
		return ix.blocks[ix.leaf6Blocks[i]], true
	}
	return nil, false
}

// coarseRep resolves an ECS prefix coarser than the leaf granularity (a
// truncated /20 from a privacy-limiting public resolver, say) to the
// highest-demand known block inside it, by range-scanning the sorted leaf
// keys across the prefix's span. Exact unit/leaf lookups cannot serve
// this case: they probe only the query's base leaf, which may hold no
// block even when sibling leaves inside the coarse prefix do. Ties go to
// the lowest leaf key, so the answer is deterministic.
func (ix *sysIndex) coarseRep(query netip.Prefix) (*world.ClientBlock, bool) {
	a := query.Addr().Unmap()
	if a.Is4() {
		if query.Bits() >= 24 {
			return ix.blockByLeaf(a)
		}
		span := uint32(1) << (24 - query.Bits())
		base := (addr32(a) >> 8) &^ (span - 1)
		best := int32(-1)
		for i := lowerBoundU32(ix.leaf4Keys, base); i < len(ix.leaf4Keys) && ix.leaf4Keys[i] < base+span; i++ {
			j := ix.leaf4Blocks[i]
			if best < 0 || ix.blocks[j].Demand > ix.blocks[best].Demand {
				best = j
			}
		}
		if best >= 0 {
			return ix.blocks[best], true
		}
		return nil, false
	}
	if query.Bits() >= 48 {
		return ix.blockByLeaf(a)
	}
	span := uint64(1) << (48 - query.Bits())
	hi, _ := addr128(a)
	base := (hi >> 16) &^ (span - 1)
	best := int32(-1)
	for i := lowerBoundU64(ix.leaf6Keys, base); i < len(ix.leaf6Keys) && ix.leaf6Keys[i] < base+span; i++ {
		j := ix.leaf6Blocks[i]
		if best < 0 || ix.blocks[j].Demand > ix.blocks[best].Demand {
			best = j
		}
	}
	if best >= 0 {
		return ix.blocks[best], true
	}
	return nil, false
}

// unitRep resolves a mapping unit to its representative block.
func (ix *sysIndex) unitRep(unit netip.Prefix) (*world.ClientBlock, bool) {
	ua := unit.Addr().Unmap()
	if ua.Is4() {
		if i := searchU64(ix.unit4Keys, unit4KeyFor(unit)); i >= 0 {
			return ix.blocks[ix.unit4Blocks[i]], true
		}
		return nil, false
	}
	if i := searchUnit6(ix.unit6Keys, unit6KeyFor(unit)); i >= 0 {
		return ix.blocks[ix.unit6Blocks[i]], true
	}
	return nil, false
}

// ldnsByAddr resolves a resolver address to its LDNS (exact address
// equality, as the map-based index used).
func (ix *sysIndex) ldnsByAddr(addr netip.Addr) (*world.LDNS, bool) {
	if i := searchAddr(ix.ldnsAddrs, addr); i >= 0 {
		return ix.ldnses[ix.ldnsIdx[i]], true
	}
	return nil, false
}

// memoryBytes is the resident size of the index arrays (excluding the
// world's own block and LDNS slices, which the index only references).
func (ix *sysIndex) memoryBytes() uint64 {
	return uint64(len(ix.leaf4Keys))*4 + uint64(len(ix.leaf4Blocks))*4 +
		uint64(len(ix.leaf6Keys))*8 + uint64(len(ix.leaf6Blocks))*4 +
		uint64(len(ix.unit4Keys))*8 + uint64(len(ix.unit4Blocks))*4 +
		uint64(len(ix.unit6Keys))*uint64(unsafe.Sizeof(unit6Key{})) + uint64(len(ix.unit6Blocks))*4 +
		uint64(len(ix.ldnsAddrs))*uint64(unsafe.Sizeof(netip.Addr{})) + uint64(len(ix.ldnsIdx))*4
}
