package mapping

import (
	"fmt"

	"eum/internal/cdn"
	"eum/internal/netmodel"
	"eum/internal/world"
)

// TrafficClass selects the scoring objective. §2.2: "Different scoring
// functions that incorporate bandwidth, latency, packet loss etc can be
// used for different traffic classes (web, video, applications)."
type TrafficClass int

// The three traffic classes the paper names.
const (
	// ClassWeb optimises latency: page loads are round-trip-bound.
	ClassWeb TrafficClass = iota
	// ClassVideo optimises sustained throughput: streams are
	// bandwidth-bound, and a slightly farther cluster with a cleaner
	// path beats a near one behind a lossy link.
	ClassVideo
	// ClassApplication optimises loss: interactive applications
	// (IP-over-HTTP tunnels, trading, gaming) suffer most from drops
	// and retransmission stalls.
	ClassApplication
)

// String names the class.
func (c TrafficClass) String() string {
	switch c {
	case ClassWeb:
		return "web"
	case ClassVideo:
		return "video"
	case ClassApplication:
		return "application"
	}
	return fmt.Sprintf("TrafficClass(%d)", int(c))
}

// ClassProber scores paths for one traffic class over the full network
// model, satisfying the scoring layer's Prober shape: the "ping" it
// reports is a class-weighted path cost in millisecond-equivalent units,
// so lower is better for every class.
type ClassProber struct {
	Net   *netmodel.Model
	Class TrafficClass
}

// PingMs implements Prober with the class's objective.
func (cp ClassProber) PingMs(a, b netmodel.Endpoint) float64 {
	ping := cp.Net.PingMs(a, b)
	switch cp.Class {
	case ClassVideo:
		// Throughput cost: ms-equivalent penalty inversely proportional
		// to the achievable rate, so a 4 Mbit/s path costs 100 ms-eq
		// more than an unconstrained one. Latency still matters for
		// stream start-up, at reduced weight.
		tp := cp.Net.ThroughputMbps(a, b, 0)
		if tp <= 0 {
			tp = 0.1
		}
		return 0.5*ping + 400/tp
	case ClassApplication:
		// Loss cost: every percent of loss is worth ~40 ms-eq of
		// retransmission stalls on an interactive flow.
		return ping * (1 + 40*cp.Net.Loss(a, b))
	default:
		return ping
	}
}

// NewClassScorer builds a scorer whose ranking follows the traffic class's
// objective. The mapping system can hold one scorer per class — the
// paper's mapping runs web, video and application traffic over the same
// platform with different scoring functions.
func NewClassScorer(w *world.World, p *cdn.Platform, net *netmodel.Model, class TrafficClass, numTargets int) *Scorer {
	return NewScorer(w, p, ClassProber{Net: net, Class: class}, numTargets)
}
