package mapping

import (
	"math"
	"sort"

	"eum/internal/cdn"
)

// UtilizationSource supplies per-deployment utilization (load/capacity) to
// the snapshot builder at build time. The canonical implementation is the
// mapmaker's load monitor, which EWMA-smooths the raw load gauges; ok=false
// means the signal for that deployment is stale or missing (e.g. a dead
// telemetry feed), in which case the builder must NOT act on it and scores
// that deployment proximity-only instead.
type UtilizationSource interface {
	Utilization(d *cdn.Deployment) (util float64, ok bool)
}

// Utilization quantization for the composite score. Build-time utilization
// is rounded to 1/utilQuantum steps before it enters the score, so the
// captured utilization vector only "changes" when some deployment's load
// moved by a visible amount — sub-quantum drift keeps the warm-republish
// path (shared arena, ~1µs) instead of forcing a full re-rank on every
// periodic publish. utilMax caps the penalty so one wildly overloaded (or
// zero-capacity, +Inf utilization) deployment stays finitely comparable.
const (
	utilQuantum = 64
	utilMax     = 4.0
)

// quantizeUtil clamps a raw utilization reading into [0, utilMax] and
// rounds it onto the build-time quantization grid.
func quantizeUtil(u float64) float64 {
	if u < 0 || math.IsNaN(u) {
		return 0
	}
	if u > utilMax {
		u = utilMax
	}
	return math.Round(u*utilQuantum) / utilQuantum
}

// SetUtilizationSource attaches the load-signal feed consulted on builds
// with a positive balance factor. nil (the default) falls back to the
// platform's raw load gauges. Takes effect on the next Build.
func (b *SnapshotBuilder) SetUtilizationSource(src UtilizationSource) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.loadSrc = src
}

// MarkLoadDirty records that the load signal crossed a republish threshold
// (the MapMaker's ReasonLoad), forcing the next Build to re-capture
// utilization and re-rank every table against it even if the quantized
// vector happens to match the previous build's.
func (b *SnapshotBuilder) MarkLoadDirty() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.loadDirty = true
}

// BalanceFactor returns the builder's distance-vs-load balance knob.
func (b *SnapshotBuilder) BalanceFactor() float64 { return b.balance }

// LoadStats reports the load-scoring side of the builder's work: builds
// that re-ranked every table because the utilization vector changed (as
// opposed to full builds forced by measurements or layout), and the
// tripwire count of stale/missing load signals served proximity-only.
func (b *SnapshotBuilder) LoadStats() (loadRebuilds, staleSignals uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.loadRebuilds, b.staleLoadSignals
}

// captureUtilLocked reads one utilization value per deployment — the
// builder's point-in-time load vector for this build. Capturing once keeps
// the build a pure function of its inputs (the par fan-out over segments
// must not observe moving gauges), and quantization (see utilQuantum)
// keeps the vector stable across idle republishes. Stale signals read as 0
// (proximity-only) and bump the tripwire counter. Returns nil when load
// scoring is off (balance factor 0).
func (b *SnapshotBuilder) captureUtilLocked() []float64 {
	if b.balance <= 0 {
		return nil
	}
	deps := b.scorer.Platform().Deployments
	utils := make([]float64, len(deps))
	for i, d := range deps {
		var u float64
		if b.loadSrc != nil {
			v, ok := b.loadSrc.Utilization(d)
			if !ok {
				b.staleLoadSignals++
				continue
			}
			u = v
		} else {
			u = d.Utilisation()
		}
		utils[i] = quantizeUtil(u)
	}
	return utils
}

// loadFactorsLocked turns the captured utilization vector into the
// per-deployment score multiplier 1 + β·u², or nil when every deployment
// is idle (every factor 1 — the adjusted table would be byte-identical to
// the proximity table, so the sort is skipped entirely).
func (b *SnapshotBuilder) loadFactorsLocked(utils []float64) map[*cdn.Deployment]float64 {
	if utils == nil {
		return nil
	}
	any := false
	for _, u := range utils {
		if u > 0 {
			any = true
			break
		}
	}
	if !any {
		return nil
	}
	deps := b.scorer.Platform().Deployments
	f := make(map[*cdn.Deployment]float64, len(deps))
	for i, d := range deps {
		u := utils[i]
		f[d] = 1 + b.balance*u*u
	}
	return f
}

// loadSegTable is segTable with the composite distance-vs-load order
// applied: entries are reordered by Score·(1 + β·util²) — ping milliseconds
// inflated for hot deployments, so candidate lists spill to next-nearest
// deployments as utilization climbs. Stored scores stay the raw ping
// milliseconds (distance truth does not change because a cluster is busy;
// downstream consumers — CANS weighting, experiments, /mapz — read them as
// latency). The sort is stable, so idle deployments (factor 1) keep the
// exact proximity order and β>0 at zero load is byte-identical to β=0.
func (b *SnapshotBuilder) loadSegTable(lay *partitionLayout, s int, factors map[*cdn.Deployment]float64) []Ranked {
	t := b.segTable(lay, s)
	if factors == nil {
		return t
	}
	adj := make([]Ranked, len(t))
	copy(adj, t)
	sort.SliceStable(adj, func(i, j int) bool {
		return adj[i].Score*factors[adj[i].Deployment] < adj[j].Score*factors[adj[j].Deployment]
	})
	return adj
}

// equalFloat64s reports element-wise equality (nil equals nil).
func equalFloat64s(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
