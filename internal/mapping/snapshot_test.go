package mapping

import (
	"testing"

	"eum/internal/netmodel"
)

// TestSnapshotCANSDedupe is the regression test for the CANS duplicate-
// candidate bug: the old lazy path appended the full NS ranking after the
// BestWeighted winner, so the winning deployment appeared twice in the
// candidate list handed to the load balancer. Snapshot CANS lists must
// start with the weighted winner and contain each deployment exactly once.
func TestSnapshotCANSDedupe(t *testing.T) {
	sys := newSystem(t, ClientAwareNS)
	sn := sys.Current()
	if sn.Policy() != ClientAwareNS {
		t.Fatalf("snapshot policy = %v, want CANS", sn.Policy())
	}

	checked := 0
	for _, l := range testW.LDNSes {
		cands := sn.CANSCandidates(l.Endpoint().ID)
		if cands == nil {
			if len(l.Blocks) > 0 {
				t.Fatalf("LDNS %v has %d blocks but no CANS candidates", l.Addr, len(l.Blocks))
			}
			continue
		}
		checked++
		seen := make(map[uint64]bool, len(cands))
		for _, c := range cands {
			if seen[c.Deployment.ID] {
				t.Fatalf("LDNS %v: deployment %s appears twice in CANS candidates", l.Addr, c.Deployment.Name)
			}
			seen[c.Deployment.ID] = true
		}
		// The winner leads, and it is the traffic-weighted optimum.
		eps := make([]netmodel.Endpoint, len(l.Blocks))
		weights := make([]float64, len(l.Blocks))
		for i, b := range l.Blocks {
			eps[i] = b.Endpoint()
			weights[i] = b.Demand
		}
		win, _ := sys.Scorer().BestWeighted(eps, weights)
		if cands[0].Deployment != win {
			t.Fatalf("LDNS %v: candidate[0] = %s, want weighted winner %s",
				l.Addr, cands[0].Deployment.Name, win.Name)
		}
		// Every platform deployment is reachable for capacity spill.
		if len(cands) != len(testP.Deployments) {
			t.Fatalf("LDNS %v: %d candidates, want %d (winner + deduped NS rank)",
				l.Addr, len(cands), len(testP.Deployments))
		}
	}
	if checked == 0 {
		t.Fatal("no LDNS with CANS candidates")
	}
}

// TestSnapshotMatchesScorer checks the published tables against the
// scoring layer they were built from: for a sample of blocks and LDNSes,
// the snapshot's rank table must be the scorer's ranking for the same
// endpoint.
func TestSnapshotMatchesScorer(t *testing.T) {
	sys := newSystem(t, EndUser)
	sn := sys.Current()
	sc := sys.Scorer()

	for i := 0; i < len(testW.Blocks); i += 257 {
		b := testW.Blocks[i]
		got := sn.RankOf(b.ID, true)
		want := sc.Rank(b.Endpoint())
		if len(got) != len(want) {
			t.Fatalf("block %v: %d ranked, want %d", b.Prefix, len(got), len(want))
		}
		for j := range got {
			if got[j].Deployment != want[j].Deployment || got[j].Score != want[j].Score {
				t.Fatalf("block %v rank %d: %s/%g, want %s/%g", b.Prefix, j,
					got[j].Deployment.Name, got[j].Score, want[j].Deployment.Name, want[j].Score)
			}
		}
	}
	for i := 0; i < len(testW.LDNSes); i += 61 {
		l := testW.LDNSes[i]
		got := sn.RankOf(l.Endpoint().ID, false)
		want := sc.Rank(l.Endpoint())
		if len(got) == 0 || got[0].Deployment != want[0].Deployment {
			t.Fatalf("LDNS %v: top-ranked mismatch", l.Addr)
		}
	}
}

// TestSnapshotFallbackTables: endpoints the map was not built for share
// the per-kind fallback table anchored at the fallback location.
func TestSnapshotFallbackTables(t *testing.T) {
	sys := newSystem(t, EndUser)
	sn := sys.Current()
	if sn.RankOf(^uint64(0)-7, false) == nil {
		t.Fatal("unknown LDNS endpoint has no fallback table")
	}
	if sn.RankOf(^uint64(0)-7, true) == nil {
		t.Fatal("unknown client endpoint has no fallback table")
	}
	if d, _ := sn.Best(^uint64(0)-7, true); d == nil {
		t.Fatal("no live deployment for the fallback table")
	}
}

// TestSnapshotInstallOrdering: an older build can never clobber a newer
// published map, no matter the install order.
func TestSnapshotInstallOrdering(t *testing.T) {
	sys := newSystem(t, EndUser)
	older := sys.Builder().Build(sys.Current().Epoch(), EndUser)
	if sys.Install(older) {
		t.Fatal("installed a snapshot at the already-current epoch")
	}
	cur := sys.Current()
	newer := sys.Rebuild()
	if sys.Current() != newer {
		t.Fatal("rebuild did not install the newer snapshot")
	}
	if newer.Epoch() <= cur.Epoch() {
		t.Fatalf("epoch did not advance: %d -> %d", cur.Epoch(), newer.Epoch())
	}
	if sys.Install(cur) {
		t.Fatal("reinstalled an orphaned older snapshot")
	}
}

// TestMapEpochPinned: MapAt against a pinned snapshot keeps answering at
// that epoch while the system publishes newer maps — the contract both
// the answer cache and the deterministic simulations rely on.
func TestMapEpochPinned(t *testing.T) {
	sys := newSystem(t, EndUser)
	pinned := sys.Current()
	blk := publicBlock(t)
	req := Request{Domain: "pin.net", LDNS: blk.LDNS.Addr, ClientSubnet: blk.Prefix}

	sys.Rebuild()
	sys.Rebuild()
	r, err := sys.MapAt(pinned, req)
	if err != nil {
		t.Fatal(err)
	}
	if r.Epoch != pinned.Epoch() {
		t.Fatalf("pinned decision epoch = %d, want %d", r.Epoch, pinned.Epoch())
	}
	cur, err := sys.Map(req)
	if err != nil {
		t.Fatal(err)
	}
	if cur.Epoch != sys.Current().Epoch() {
		t.Fatalf("current decision epoch = %d, want %d", cur.Epoch, sys.Current().Epoch())
	}
	if cur.Epoch <= r.Epoch {
		t.Fatalf("current epoch %d not newer than pinned %d", cur.Epoch, r.Epoch)
	}
}

// TestMapCANSNoDuplicateCandidates exercises the full Map path under the
// CANS policy for every known LDNS — the load balancer must receive the
// deduped list and answer successfully.
func TestMapCANSNoDuplicateCandidates(t *testing.T) {
	sys := newSystem(t, ClientAwareNS)
	served := 0
	for i := 0; i < len(testW.LDNSes); i += 17 {
		l := testW.LDNSes[i]
		r, err := sys.Map(Request{Domain: "cans.net", LDNS: l.Addr})
		if err != nil {
			t.Fatalf("LDNS %v: %v", l.Addr, err)
		}
		if r.Deployment == nil || len(r.Servers) == 0 {
			t.Fatalf("LDNS %v: empty decision", l.Addr)
		}
		served++
	}
	if served == 0 {
		t.Fatal("no LDNS served")
	}
}
