package mapping

import (
	"net/netip"
	"testing"

	"eum/internal/cdn"
	"eum/internal/world"
)

// truncHarness is a world with the truncated-ECS bug shape carved into
// it: a /20 whose base /24 holds no known block while sibling /24s do.
// Generated worlds allocate each AS's /24s contiguously from /20-aligned
// bases, so the shape never occurs naturally — real registries are not so
// tidy (returned allocations, punched-out holes), so the index must not
// rely on it either. We excise the base /24 block from a populated /20
// after generating the platform.
type truncHarness struct {
	w     *world.World
	p     *cdn.Platform
	query netip.Prefix       // the /20 with the empty base /24
	want  *world.ClientBlock // highest-demand surviving block inside it
}

var truncH = makeTruncHarness()

func makeTruncHarness() truncHarness {
	w := world.MustGenerate(world.Config{Seed: 11, NumBlocks: 800})
	p := cdn.MustGenerateUniverse(w, cdn.Config{Seed: 11, NumDeployments: 80})

	// Pick the first /20 holding at least three /24 blocks and delete its
	// base /24 block from the world's block list.
	per20 := map[uint32]int{}
	for _, b := range w.Blocks {
		if a := b.Prefix.Addr().Unmap(); a.Is4() {
			per20[(addr32(a)>>8)&^0xF]++
		}
	}
	var hole uint32
	found := false
	for _, b := range w.Blocks {
		a := b.Prefix.Addr().Unmap()
		if !a.Is4() {
			continue
		}
		base := (addr32(a) >> 8) &^ 0xF
		if per20[base] >= 3 {
			hole = base
			found = true
			break
		}
	}
	if !found {
		panic("no /20 with >= 3 blocks in the trunc harness world")
	}
	kept := w.Blocks[:0]
	var want *world.ClientBlock
	var wantKey uint32
	for _, b := range w.Blocks {
		a := b.Prefix.Addr().Unmap()
		if a.Is4() {
			key := addr32(a) >> 8
			if key == hole {
				continue // the excised base /24
			}
			if key&^0xF == hole {
				// Survivor inside the /20: track the expected representative
				// (highest demand, ties to the lowest key — coarseRep's order).
				if want == nil || b.Demand > want.Demand || (b.Demand == want.Demand && key < wantKey) {
					want, wantKey = b, key
				}
			}
		}
		kept = append(kept, b)
	}
	w.Blocks = kept
	query := netip.PrefixFrom(netip.AddrFrom4([4]byte{byte(hole >> 16), byte(hole >> 8), byte(hole), 0}), 20)
	return truncHarness{w: w, p: p, query: query, want: want}
}

// TestCoarseRepRangeScan pins the index-level contract: a prefix coarser
// than the leaf granularity resolves to the highest-demand block inside
// it via a range scan, even when the prefix's base leaf is empty — the
// case exact unit/leaf probing cannot see.
func TestCoarseRepRangeScan(t *testing.T) {
	ix := buildSysIndex(truncH.w, PrefixUnits{X: 24})

	got, ok := ix.coarseRep(truncH.query)
	if !ok {
		t.Fatalf("coarseRep(%v) found nothing; want block %v", truncH.query, truncH.want.Prefix)
	}
	if got != truncH.want {
		t.Errorf("coarseRep(%v) = %v (demand %.2f), want %v (demand %.2f)",
			truncH.query, got.Prefix, got.Demand, truncH.want.Prefix, truncH.want.Demand)
	}

	// Leaf-width and narrower queries delegate to the exact leaf lookup.
	b := truncH.w.Blocks[0]
	if got, ok := ix.coarseRep(b.Prefix); !ok || got != b {
		t.Errorf("coarseRep(%v) = %v, %v; want the leaf block itself", b.Prefix, got, ok)
	}

	// A genuinely empty /20 still reports unknown.
	empty := netip.MustParsePrefix("198.18.0.0/20")
	if _, ok := ix.coarseRep(empty); ok {
		t.Errorf("coarseRep(%v) found a block in an unpopulated range", empty)
	}
}

// TestCoarseRepIPv6 covers the v6 half of the range scan: a /44 (coarser
// than the /48 leaf) resolves to the highest-demand contained block.
func TestCoarseRepIPv6(t *testing.T) {
	ix := buildSysIndex(v6World, PrefixUnits{X: 24})
	var query netip.Prefix
	var want *world.ClientBlock
	for _, b := range v6World.Blocks {
		a := b.Prefix.Addr()
		if !a.Is6() || a.Is4In6() {
			continue
		}
		p44, err := a.Prefix(44)
		if err != nil {
			t.Fatal(err)
		}
		if query.IsValid() && query != p44 {
			continue
		}
		query = p44
		if want == nil || b.Demand > want.Demand {
			want = b
		}
	}
	if want == nil {
		t.Fatal("no v6 blocks")
	}
	got, ok := ix.coarseRep(query)
	if !ok || got != want {
		t.Errorf("coarseRep(%v) = %v, %v; want %v", query, got, ok, want.Prefix)
	}
	// Exact /48 delegates to the leaf lookup.
	if got, ok := ix.coarseRep(want.Prefix); !ok || got != want {
		t.Errorf("coarseRep(%v) = %v, %v; want the leaf block", want.Prefix, got, ok)
	}
}

// TestTruncatedECSSiblingBlock is the end-to-end regression test for the
// truncated-ECS fallback bug: a /20 ECS query whose base /24 is unknown
// but whose /20 contains known sibling blocks used to fall through to
// the generic fallback with scope 0 — an answer the resolver files in
// its subnet-blind cache, shadowing every other client it serves. The
// mapping system must recognise the coarse prefix, answer from the
// highest-demand contained block, and scope the answer at /20.
func TestTruncatedECSSiblingBlock(t *testing.T) {
	s := NewSystem(truncH.w, truncH.p, testNet, Config{Policy: EndUser, PingTargets: 500})

	resp, err := s.Map(Request{
		Domain:       "trunc.cdn.example.net",
		LDNS:         truncH.want.LDNS.Addr,
		ClientSubnet: truncH.query,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.UsedClientSubnet {
		t.Error("truncated query with known siblings fell through to the generic fallback")
	}
	if resp.ScopePrefix != 20 {
		t.Errorf("scope = %d, want 20 (the truncated source, not 0 and not the /24 unit)", resp.ScopePrefix)
	}
}
