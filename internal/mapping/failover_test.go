package mapping

import (
	"testing"
	"time"

	"eum/internal/cdn"
)

// TestFailoverUnderMonitor drives the full liveness loop: a scheduled
// outage takes down the deployment a client maps to; the health monitor
// detects it and the control plane republishes the map; mapping fails the
// client over to the next cluster; recovery restores the original
// assignment. (Failover itself does not even need the republish — the
// data plane skips dead deployments at read time — but the fresh epoch is
// what orphans answer caches layered above.)
func TestFailoverUnderMonitor(t *testing.T) {
	// A private platform: this test mutates liveness.
	platform := cdn.MustGenerateUniverse(testW, cdn.Config{Seed: 99, NumDeployments: 80, ServersPerDeployment: 4})
	sys := NewSystem(testW, platform, testNet, Config{Policy: EndUser, PingTargets: 400})

	blk := publicBlock(t)
	req := Request{Domain: "failover.net", LDNS: blk.LDNS.Addr, ClientSubnet: blk.Prefix}
	before, err := sys.Map(req)
	if err != nil {
		t.Fatal(err)
	}
	home := before.Deployment

	t0 := time.Date(2014, 4, 1, 0, 0, 0, 0, time.UTC)
	faults := &cdn.ScheduledFaults{}
	for _, s := range home.Servers {
		faults.Add(s.ID, t0.Add(time.Minute), t0.Add(3*time.Minute))
	}
	mon, err := cdn.NewMonitor(platform, faults, 10*time.Second, func(*cdn.Deployment) {
		sys.Rebuild()
	})
	if err != nil {
		t.Fatal(err)
	}

	// Healthy probe: same assignment.
	mon.Tick(t0)
	r, err := sys.Map(req)
	if err != nil {
		t.Fatal(err)
	}
	if r.Deployment != home {
		t.Fatalf("assignment moved without an outage: %s -> %s", home.Name, r.Deployment.Name)
	}

	// Outage detected: client fails over.
	if changed, _ := mon.Tick(t0.Add(time.Minute)); changed != 1 {
		t.Fatalf("outage not detected: changed=%d", changed)
	}
	r, err = sys.Map(req)
	if err != nil {
		t.Fatal(err)
	}
	if r.Deployment == home {
		t.Fatal("client still mapped to dead deployment")
	}
	for _, srv := range r.Servers {
		if !srv.Alive() {
			t.Fatal("answer contains a dead server")
		}
	}

	// Recovery: assignment returns home.
	if changed, _ := mon.Tick(t0.Add(3 * time.Minute)); changed != 1 {
		t.Fatalf("recovery not detected: changed=%d", changed)
	}
	r, err = sys.Map(req)
	if err != nil {
		t.Fatal(err)
	}
	if r.Deployment != home {
		t.Errorf("assignment did not return home after recovery: %s", r.Deployment.Name)
	}
}

// TestChurnUnderRandomFaults verifies the system keeps answering while a
// random failure process churns server liveness.
func TestChurnUnderRandomFaults(t *testing.T) {
	platform := cdn.MustGenerateUniverse(testW, cdn.Config{Seed: 100, NumDeployments: 40, ServersPerDeployment: 3})
	sys := NewSystem(testW, platform, testNet, Config{Policy: EndUser, PingTargets: 200})
	mon, err := cdn.NewMonitor(platform, &cdn.RandomFaults{P: 0.2, EpochLength: time.Minute, Seed: 3},
		time.Minute, func(*cdn.Deployment) { sys.Rebuild() })
	if err != nil {
		t.Fatal(err)
	}
	t0 := time.Date(2014, 4, 1, 0, 0, 0, 0, time.UTC)
	blk := publicBlock(t)
	for i := 0; i < 30; i++ {
		now := t0.Add(time.Duration(i) * time.Minute)
		mon.Tick(now)
		r, err := sys.Map(Request{Domain: "churn.net", LDNS: blk.LDNS.Addr, ClientSubnet: blk.Prefix})
		if err != nil {
			t.Fatalf("minute %d: %v", i, err)
		}
		for _, srv := range r.Servers {
			if !srv.Alive() {
				t.Fatalf("minute %d: dead server answered", i)
			}
		}
	}
	if mon.Probes() == 0 {
		t.Fatal("monitor never probed")
	}
}
