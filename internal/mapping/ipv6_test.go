package mapping

import (
	"net/netip"
	"testing"

	"eum/internal/cdn"
	"eum/internal/geo"
	"eum/internal/world"
)

var (
	v6World    = world.MustGenerate(world.Config{Seed: 17, NumBlocks: 2500, IPv6Fraction: 0.3})
	v6Platform = cdn.MustGenerateUniverse(v6World, cdn.Config{Seed: 17, NumDeployments: 200})
)

func v6Block(t *testing.T) *world.ClientBlock {
	t.Helper()
	for _, b := range v6World.Blocks {
		if b.Prefix.Addr().Is6() && b.LDNS.IsPublic() && b.ClientLDNSDistance() > 1500 {
			return b
		}
	}
	for _, b := range v6World.Blocks {
		if b.Prefix.Addr().Is6() {
			return b
		}
	}
	t.Fatal("no v6 blocks")
	return nil
}

func TestPrefixUnitsIPv6(t *testing.T) {
	u := PrefixUnits{X: 24}
	a6 := netip.MustParseAddr("2600:1234:5678:9abc::1")
	if got := u.UnitFor(a6); got != netip.MustParsePrefix("2600:1234:5678::/48") {
		t.Errorf("default v6 unit = %v, want /48", got)
	}
	u = PrefixUnits{X: 24, X6: 56}
	if got := u.UnitFor(a6); got.Bits() != 56 {
		t.Errorf("explicit X6 unit = %v", got)
	}
	// v4 unaffected.
	if got := u.UnitFor(netip.MustParseAddr("10.1.2.3")); got != netip.MustParsePrefix("10.1.2.0/24") {
		t.Errorf("v4 unit = %v", got)
	}
}

func TestMapEndUserIPv6(t *testing.T) {
	sys := NewSystem(v6World, v6Platform, testNet, Config{Policy: EndUser, PingTargets: 500})
	b := v6Block(t)
	resp, err := sys.Map(Request{
		Domain:       "v6.cdn.example.net",
		LDNS:         b.LDNS.Addr,
		ClientSubnet: b.Prefix, // a /48
	})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.UsedClientSubnet {
		t.Error("v6 client subnet not used")
	}
	if resp.ScopePrefix != 48 {
		t.Errorf("v6 scope = %d, want 48", resp.ScopePrefix)
	}
	// Deployment near the client.
	dClient := geo.Distance(resp.Deployment.Loc, b.Loc)
	dLDNS := geo.Distance(resp.Deployment.Loc, b.LDNS.Loc)
	if b.ClientLDNSDistance() > 1500 && dClient > dLDNS {
		t.Errorf("v6 EU mapping chose LDNS-side deployment (%.0f vs %.0f mi)", dLDNS, dClient)
	}
}

func TestMapIPv6ScopeRespectsSource(t *testing.T) {
	sys := NewSystem(v6World, v6Platform, testNet, Config{Policy: EndUser, PingTargets: 200})
	b := v6Block(t)
	// Resolver reveals only /40: scope must not exceed it.
	p40, err := b.Prefix.Addr().Prefix(40)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := sys.Map(Request{Domain: "v6.net", LDNS: b.LDNS.Addr, ClientSubnet: p40})
	if err != nil {
		t.Fatal(err)
	}
	if int(resp.ScopePrefix) > 40 {
		t.Errorf("scope /%d exceeds source /40", resp.ScopePrefix)
	}
}

func TestLookupBlockIPv6(t *testing.T) {
	sys := NewSystem(v6World, v6Platform, testNet, Config{PingTargets: 100})
	b := v6Block(t)
	host := b.Prefix.Addr().Next() // an address inside the /48
	got, ok := sys.LookupBlock(host)
	if !ok || got != b {
		t.Errorf("LookupBlock(%v) = %v, %v", host, got, ok)
	}
}

func TestCountUnitsMixedFamilies(t *testing.T) {
	// /24+/48 leaf units must count every block once.
	n := CountUnits(v6World, PrefixUnits{X: 24})
	if n != len(v6World.Blocks) {
		t.Errorf("leaf units = %d, want %d", n, len(v6World.Blocks))
	}
	// Coarsening v6 only shrinks v6 units.
	coarse := CountUnits(v6World, PrefixUnits{X: 24, X6: 40})
	if coarse >= n {
		t.Errorf("coarser v6 units did not reduce count: %d -> %d", n, coarse)
	}
}

func TestCIDRUnitsIPv6(t *testing.T) {
	units := NewCIDRUnits(PrefixUnits{X: 24}, v6World.BGPCIDRs())
	b := v6Block(t)
	u := units.UnitFor(b.Prefix.Addr())
	if !u.Contains(b.Prefix.Addr()) {
		t.Fatalf("unit %v does not contain %v", u, b.Prefix.Addr())
	}
	if u.Addr().Is4() {
		t.Fatal("v6 address mapped to v4 unit")
	}
}
