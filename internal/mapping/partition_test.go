package mapping

import (
	"testing"

	"eum/internal/geo"
	"eum/internal/netmodel"
)

// TestPartitionIdentityEquivalence is the partition-equivalence property
// test: with the similarity threshold at 0 (identity partitioning — every
// endpoint its own partition), the partitioned, interned-arena snapshot
// must return byte-identical RankOf and Best answers to the pre-partition
// per-endpoint tables, whose contract is the scorer's own ranking for the
// same endpoint. Checked for every block and every LDNS, not a sample.
func TestPartitionIdentityEquivalence(t *testing.T) {
	sys := NewSystem(testW, testP, testNet, Config{Policy: EndUser, PingTargets: 1000})
	sn := sys.Current()
	sc := sys.Scorer()

	if got, want := sn.Partitions(), sn.Endpoints(); got != want {
		t.Fatalf("identity partitioning: %d partitions for %d endpoints", got, want)
	}

	checkEndpoint := func(ep netmodel.Endpoint, client bool, what string) {
		t.Helper()
		got := sn.RankOf(ep.ID, client)
		want := sc.Rank(ep)
		if len(got) != len(want) {
			t.Fatalf("%s %d: %d ranked, want %d", what, ep.ID, len(got), len(want))
		}
		for j := range got {
			if got[j].Deployment != want[j].Deployment || got[j].Score != want[j].Score {
				t.Fatalf("%s %d rank %d: %s/%v, want %s/%v", what, ep.ID, j,
					got[j].Deployment.Name, got[j].Score, want[j].Deployment.Name, want[j].Score)
			}
		}
		// Best = first live entry of the reference table.
		gotD, gotS := sn.Best(ep.ID, client)
		var wantD = gotD
		var wantS = gotS
		for _, r := range want {
			if r.Deployment.Alive() {
				wantD, wantS = r.Deployment, r.Score
				break
			}
		}
		if gotD != wantD || gotS != wantS {
			t.Fatalf("%s %d: Best = %v/%v, want %v/%v", what, ep.ID, gotD, gotS, wantD, wantS)
		}
	}

	for _, b := range testW.Blocks {
		checkEndpoint(b.Endpoint(), true, "block")
	}
	for _, l := range testW.LDNSes {
		checkEndpoint(l.Endpoint(), false, "ldns")
	}
}

// TestPartitionThresholdClusters: with a similarity threshold set, nearby
// same-AS endpoints collapse into shared partitions (fewer partitions than
// endpoints), every endpoint still resolves to a table, and the interned
// arena stays bounded by the ping-target set.
func TestPartitionThresholdClusters(t *testing.T) {
	sys := NewSystem(testW, testP, testNet,
		Config{Policy: EndUser, PingTargets: 1000, PartitionMiles: 100})
	sn := sys.Current()

	if sn.Partitions() >= sn.Endpoints() {
		t.Fatalf("threshold partitioning did not cluster: %d partitions for %d endpoints",
			sn.Partitions(), sn.Endpoints())
	}
	if sn.Tables() > 1000+2 {
		t.Fatalf("interning failed: %d tables for 1000 ping targets", sn.Tables())
	}
	for i := 0; i < len(testW.Blocks); i += 97 {
		b := testW.Blocks[i]
		r := sn.RankOf(b.ID, true)
		if len(r) != len(testP.Deployments) {
			t.Fatalf("block %v: table has %d entries, want %d", b.Prefix, len(r), len(testP.Deployments))
		}
		if d, _ := sn.Best(b.ID, true); d == nil {
			t.Fatalf("block %v: no live deployment", b.Prefix)
		}
	}

	// Partition sharing must respect the routing signature: two blocks in
	// the same partition share a rank table (same backing segment).
	seen := map[int32][]Ranked{}
	shared := 0
	for _, b := range testW.Blocks {
		p := sn.lay.partitionOf(b.ID)
		if p < 0 {
			t.Fatalf("block %v not indexed", b.Prefix)
		}
		if prev, ok := seen[p]; ok {
			cur := sn.table(p)
			if &prev[0] != &cur[0] {
				t.Fatalf("partition %d: table backing changed between lookups", p)
			}
			shared++
		} else {
			seen[p] = sn.table(p)
		}
	}
	if shared == 0 {
		t.Fatal("no two blocks shared a partition at a 100-mile threshold")
	}
}

// TestNearestTargetMatchesLinearScan pins the latitude-band nearest-target
// search to the semantics of the linear argmin it replaced: smallest
// distance, ties to the lowest target index.
func TestNearestTargetMatchesLinearScan(t *testing.T) {
	sc := NewScorer(testW, testP, testNet, 700)
	linear := func(ep netmodel.Endpoint) int {
		best, bestD := 0, distanceFor(sc, 0, ep)
		for i := 1; i < len(sc.targets); i++ {
			if d := distanceFor(sc, i, ep); d < bestD {
				best, bestD = i, d
			}
		}
		return best
	}
	for i := 0; i < len(testW.Blocks); i += 13 {
		ep := testW.Blocks[i].Endpoint()
		if got, want := sc.nearestTarget(ep), linear(ep); got != want {
			t.Fatalf("block %d: nearestTarget = %d, linear scan = %d", ep.ID, got, want)
		}
	}
	for _, l := range testW.LDNSes {
		ep := l.Endpoint()
		if got, want := sc.nearestTarget(ep), linear(ep); got != want {
			t.Fatalf("ldns %d: nearestTarget = %d, linear scan = %d", ep.ID, got, want)
		}
	}
}

// TestSnapshotMemoryAccounting: the reported footprint covers the arena
// and indexes, and stays far below a map-of-slices layout (which cost a
// map entry plus a slice header per endpoint).
func TestSnapshotMemoryAccounting(t *testing.T) {
	sys := NewSystem(testW, testP, testNet,
		Config{Policy: EndUser, PingTargets: 500, PartitionMiles: 50})
	sn := sys.Current()
	if sn.MemoryBytes() == 0 || sys.IndexBytes() == 0 {
		t.Fatal("zero memory accounting")
	}
	// The per-endpoint index cost (everything but the target-bounded
	// arena chain) must be a few bytes per endpoint.
	perEndpoint := float64(sn.MemoryBytes()-sn.arenaBytes()) / float64(sn.Endpoints())
	if perEndpoint > 16 {
		t.Fatalf("index cost %.1f bytes/endpoint, want a few", perEndpoint)
	}
}

func distanceFor(sc *Scorer, i int, ep netmodel.Endpoint) float64 {
	return geo.Distance(ep.Loc, sc.targets[i].Loc)
}
