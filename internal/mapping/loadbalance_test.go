package mapping

import (
	"fmt"
	"testing"

	"eum/internal/cdn"
	"eum/internal/netmodel"
)

// testDeployment builds a standalone deployment with n unit-capacity
// servers for load-balancer unit tests.
func testDeployment(id uint64, n int) *cdn.Deployment {
	p := cdn.MustGenerateUniverse(testW, cdn.Config{Seed: int64(id), NumDeployments: 1, ServersPerDeployment: n})
	d := p.Deployments[0]
	// Trim/pad to exactly n live servers for predictable tests.
	for len(d.Servers) > n {
		d.Servers = d.Servers[:len(d.Servers)-1]
	}
	return d
}

func TestPickDeploymentSkipsDead(t *testing.T) {
	lb := NewLoadBalancer()
	d1 := testDeployment(1, 4)
	d2 := testDeployment(2, 4)
	for _, s := range d1.Servers {
		s.SetAlive(false)
	}
	got, err := lb.PickDeployment([]Ranked{{Deployment: d1}, {Deployment: d2}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got != d2 {
		t.Error("dead deployment chosen")
	}
}

func TestPickDeploymentSpillsOnCapacity(t *testing.T) {
	lb := NewLoadBalancer()
	d1 := testDeployment(3, 2)
	d2 := testDeployment(4, 2)
	for _, s := range d1.Servers {
		s.AddLoad(s.Capacity())
	}
	got, err := lb.PickDeployment([]Ranked{{Deployment: d1}, {Deployment: d2}}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if got != d2 {
		t.Error("saturated deployment chosen over available one")
	}
}

func TestPickDeploymentDegradedWhenAllSaturated(t *testing.T) {
	lb := NewLoadBalancer()
	d1 := testDeployment(5, 2)
	d2 := testDeployment(6, 2)
	for _, d := range []*cdn.Deployment{d1, d2} {
		for _, s := range d.Servers {
			s.AddLoad(s.Capacity() * 3)
		}
	}
	got, err := lb.PickDeployment([]Ranked{{Deployment: d1}, {Deployment: d2}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got != d1 {
		t.Error("degraded mode should return the best live candidate")
	}
}

func TestPickDeploymentAllDead(t *testing.T) {
	lb := NewLoadBalancer()
	d := testDeployment(7, 2)
	for _, s := range d.Servers {
		s.SetAlive(false)
	}
	if _, err := lb.PickDeployment([]Ranked{{Deployment: d}}, 0); err == nil {
		t.Error("no-live-deployment case did not error")
	}
	if _, err := lb.PickDeployment(nil, 0); err == nil {
		t.Error("empty candidates did not error")
	}
}

func TestPickServersConsistency(t *testing.T) {
	lb := NewLoadBalancer()
	d := testDeployment(8, 8)
	a, err := lb.PickServers(d, "domain-a.net", 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := lb.PickServers(d, "domain-a.net", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 2 || len(b) != 2 {
		t.Fatalf("want 2 servers, got %d/%d", len(a), len(b))
	}
	if a[0].ID != b[0].ID || a[1].ID != b[1].ID {
		t.Error("consistent hash returned different servers for same key")
	}
	if a[0].ID == a[1].ID {
		t.Error("returned duplicate servers")
	}
}

func TestPickServersSkipsDead(t *testing.T) {
	lb := NewLoadBalancer()
	d := testDeployment(9, 6)
	a, _ := lb.PickServers(d, "victim.net", 0)
	a[0].SetAlive(false)
	b, err := lb.PickServers(d, "victim.net", 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range b {
		if !s.Alive() {
			t.Error("dead server returned")
		}
		if s.ID == a[0].ID {
			t.Error("dead server still in answer")
		}
	}
}

func TestPickServersSingleServer(t *testing.T) {
	lb := NewLoadBalancer()
	d := testDeployment(10, 1)
	got, err := lb.PickServers(d, "only.net", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Errorf("single-server deployment returned %d servers", len(got))
	}
}

func TestPickServersNoLiveServers(t *testing.T) {
	lb := NewLoadBalancer()
	d := testDeployment(11, 2)
	for _, s := range d.Servers {
		s.SetAlive(false)
	}
	if _, err := lb.PickServers(d, "dead.net", 0); err == nil {
		t.Error("all-dead deployment did not error")
	}
}

func TestConsistentHashingStability(t *testing.T) {
	// Killing one server should re-map only the domains it served:
	// most domains keep their primary server.
	lb := NewLoadBalancer()
	d := testDeployment(12, 10)
	before := map[string]uint64{}
	for i := 0; i < 200; i++ {
		dom := fmt.Sprintf("site-%d.example.net", i)
		s, err := lb.PickServers(d, dom, 0)
		if err != nil {
			t.Fatal(err)
		}
		before[dom] = s[0].ID
	}
	victim := d.Servers[0]
	victim.SetAlive(false)
	moved := 0
	for dom, prev := range before {
		s, err := lb.PickServers(d, dom, 0)
		if err != nil {
			t.Fatal(err)
		}
		if s[0].ID != prev {
			moved++
			if prev != victim.ID {
				t.Errorf("domain %s moved off a live server", dom)
			}
		}
	}
	if moved == 0 {
		t.Error("killing a server moved no domains (suspicious)")
	}
	if moved > 60 {
		t.Errorf("killing 1 of 10 servers moved %d/200 domains", moved)
	}
}

func TestConsistentHashingBalance(t *testing.T) {
	// With many domains, load should spread across servers reasonably.
	lb := NewLoadBalancer()
	d := testDeployment(13, 8)
	counts := map[uint64]int{}
	n := 4000
	for i := 0; i < n; i++ {
		s, err := lb.PickServers(d, fmt.Sprintf("d%d.net", i), 0)
		if err != nil {
			t.Fatal(err)
		}
		counts[s[0].ID]++
	}
	if len(counts) != len(d.Servers) {
		t.Fatalf("only %d of %d servers used", len(counts), len(d.Servers))
	}
	mean := float64(n) / float64(len(d.Servers))
	for id, c := range counts {
		if float64(c) > mean*3 || float64(c) < mean/4 {
			t.Errorf("server %d holds %d domains (mean %.0f): imbalanced", id, c, mean)
		}
	}
}

func TestInvalidateRing(t *testing.T) {
	lb := NewLoadBalancer()
	d := testDeployment(14, 4)
	if _, err := lb.PickServers(d, "a.net", 0); err != nil {
		t.Fatal(err)
	}
	// Add a server out-of-band; ring must be rebuilt after invalidation.
	extra := testDeployment(15, 1).Servers[0]
	d.Servers = append(d.Servers, extra)
	lb.InvalidateRing(d)
	found := false
	for i := 0; i < 500 && !found; i++ {
		s, err := lb.PickServers(d, fmt.Sprintf("n%d.net", i), 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, srv := range s {
			if srv.ID == extra.ID {
				found = true
			}
		}
	}
	if !found {
		t.Error("new server never selected after ring invalidation")
	}
}

func TestScorerBestMatchesRankHead(t *testing.T) {
	sc := NewScorer(testW, testP, testNet, 500)
	ep := testW.Blocks[10].Endpoint()
	rank := sc.Rank(ep)
	best, score := sc.Best(ep)
	if best == nil {
		t.Fatal("no best deployment")
	}
	if rank[0].Deployment != best || rank[0].Score != score {
		t.Errorf("Rank head %v/%.2f != Best %v/%.2f",
			rank[0].Deployment.Name, rank[0].Score, best.Name, score)
	}
	for i := 1; i < len(rank); i++ {
		if rank[i].Score < rank[i-1].Score {
			t.Fatal("Rank not sorted")
		}
	}
}

func TestScorerClusteringConsistent(t *testing.T) {
	// With clustering, two very close endpoints share a ping target and
	// hence the exact same ranking slice.
	sc := NewScorer(testW, testP, testNet, 200)
	b := testW.Blocks[3]
	ep1 := b.Endpoint()
	ep2 := ep1
	ep2.ID = 999999999
	ep2.Loc.Lat += 0.001
	r1 := sc.Rank(ep1)
	r2 := sc.Rank(ep2)
	if &r1[0] != &r2[0] {
		t.Error("nearby endpoints did not share a cached ranking")
	}
}

func TestScorerNoClustering(t *testing.T) {
	sc := NewScorer(testW, testP, testNet, 0)
	ep := testW.Blocks[1].Endpoint()
	best, _ := sc.Best(ep)
	if best == nil {
		t.Fatal("no best without clustering")
	}
}

func TestScorerBestWeighted(t *testing.T) {
	sc := NewScorer(testW, testP, testNet, 0)
	// Weighted best of two far-apart endpoints with all weight on one of
	// them must equal the best of that one.
	e1 := testW.Blocks[0].Endpoint()
	e2 := testW.Blocks[len(testW.Blocks)-1].Endpoint()
	d, _ := sc.BestWeighted([]netmodel.Endpoint{e1, e2}, []float64{1, 0})
	want, _ := sc.Best(e1)
	if d != want {
		t.Errorf("degenerate weighted best = %v, want %v", d.Name, want.Name)
	}
	if got, _ := sc.BestWeighted(nil, nil); got != nil {
		t.Error("empty BestWeighted should return nil")
	}
}

func TestLoadAwareSheddingBeforeSaturation(t *testing.T) {
	lb := NewLoadBalancer()
	lb.LoadPenalty = 10
	d1 := testDeployment(20, 4) // best score
	d2 := testDeployment(21, 4) // slightly worse score
	candidates := []Ranked{{Deployment: d1, Score: 10}, {Deployment: d2, Score: 11}}

	// Empty: best-scoring wins.
	got, err := lb.PickDeployment(candidates, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if got != d1 {
		t.Fatal("unloaded pick should follow score")
	}
	// Load d1 to 90%: the penalty (10 * 0.81) makes d2 attractive before
	// d1 saturates.
	for _, s := range d1.Servers {
		s.AddLoad(0.9 * s.Capacity())
	}
	got, err = lb.PickDeployment(candidates, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if got != d2 {
		t.Errorf("load-aware pick stayed on the 90%%-loaded deployment")
	}
	// Without the penalty, the hard-spill path sticks with d1.
	plain := NewLoadBalancer()
	got, err = plain.PickDeployment(candidates, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if got != d1 {
		t.Error("hard-spill pick moved before saturation")
	}
}

func TestLoadAwareFallsBackWhenAllSaturated(t *testing.T) {
	lb := NewLoadBalancer()
	lb.LoadPenalty = 5
	d1 := testDeployment(22, 2)
	for _, s := range d1.Servers {
		s.AddLoad(s.Capacity() * 2)
	}
	got, err := lb.PickDeployment([]Ranked{{Deployment: d1, Score: 3}}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if got != d1 {
		t.Error("saturated fallback should still serve from the best live candidate")
	}
}

// TestPickDeploymentAllSaturatedLeastUtilised pins the degraded-mode spill
// rule: when every live candidate is at capacity, the pick goes to the
// least-utilised one (spreading overload), with utilisation ties keeping
// the best-scored candidate, dead candidates skipped, and any candidate
// with headroom for the demand short-circuiting the whole question.
func TestPickDeploymentAllSaturatedLeastUtilised(t *testing.T) {
	lb := NewLoadBalancer()
	// mk builds a 2-server deployment loaded to the given utilisation.
	mk := func(id uint64, util float64) *cdn.Deployment {
		d := testDeployment(30+id, 2)
		for _, s := range d.Servers {
			s.AddLoad(s.Capacity() * util)
		}
		return d
	}
	cases := []struct {
		name   string
		utils  []float64 // one candidate per entry, best score first
		dead   int       // candidate index to kill (-1: none)
		brown  int       // candidate index browned out to zero capacity (-1: none)
		demand float64
		want   int // expected candidate index
	}{
		{"least utilised wins", []float64{3, 1.5, 2}, -1, -1, 1, 1},
		{"tie keeps best score", []float64{2, 2, 3}, -1, -1, 1, 0},
		{"dead candidate skipped", []float64{3, 1.5, 2}, 1, -1, 1, 2},
		{"zero-capacity loaded counts hottest", []float64{3, 1.1, 2}, -1, 1, 1, 2},
		{"headroom short-circuits", []float64{3, 0.4, 2}, -1, -1, 1, 1},
		{"demand counts against headroom", []float64{3, 0.8, 1.2}, -1, -1, 1, 1},
	}
	for ci, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var cands []Ranked
			for i, u := range tc.utils {
				d := mk(uint64(ci*10+i), u)
				if i == tc.dead {
					for _, s := range d.Servers {
						s.SetAlive(false)
					}
				}
				if i == tc.brown {
					d.SetCapacityFactor(0)
				}
				cands = append(cands, Ranked{Deployment: d, Score: float64(1 + i)})
			}
			got, err := lb.PickDeployment(cands, tc.demand)
			if err != nil {
				t.Fatal(err)
			}
			if got != cands[tc.want].Deployment {
				gotIdx := -1
				for i, c := range cands {
					if c.Deployment == got {
						gotIdx = i
					}
				}
				t.Errorf("picked candidate %d (util %v), want %d (util %v)",
					gotIdx, tc.utils[gotIdx], tc.want, tc.utils[tc.want])
			}
		})
	}
}

// TestPickServersDemandAccounting pins where assigned demand lands: on the
// primary (first) picked server only, once per decision.
func TestPickServersDemandAccounting(t *testing.T) {
	lb := NewLoadBalancer()
	d := testDeployment(60, 6)
	before := map[uint64]float64{}
	for _, s := range d.Servers {
		before[s.ID] = s.Load()
	}
	servers, err := lb.PickServers(d, "accounting.example.net", 2.5)
	if err != nil {
		t.Fatal(err)
	}
	if got := servers[0].Load() - before[servers[0].ID]; got != 2.5 {
		t.Errorf("primary absorbed %v demand, want 2.5", got)
	}
	for _, s := range servers[1:] {
		if s.Load() != before[s.ID] {
			t.Errorf("secondary server %d load changed by %v", s.ID, s.Load()-before[s.ID])
		}
	}
	if d.Load() != 2.5 {
		t.Errorf("deployment load = %v, want 2.5", d.Load())
	}
}
