package mapping

import (
	"net/netip"
	"testing"

	"eum/internal/world"
)

func TestPrefixUnits(t *testing.T) {
	u := PrefixUnits{X: 24}
	addr := netip.MustParseAddr("203.0.113.77")
	if got := u.UnitFor(addr); got != netip.MustParsePrefix("203.0.113.0/24") {
		t.Errorf("UnitFor = %v", got)
	}
	u20 := PrefixUnits{X: 20}
	if got := u20.UnitFor(addr); got != netip.MustParsePrefix("203.0.112.0/20") {
		t.Errorf("/20 UnitFor = %v", got)
	}
	if u.Bits() != 24 || u20.Bits() != 20 {
		t.Error("Bits mismatch")
	}
}

func TestPrefixUnitsSameBlockSameUnit(t *testing.T) {
	u := PrefixUnits{X: 24}
	a := u.UnitFor(netip.MustParseAddr("10.1.2.3"))
	b := u.UnitFor(netip.MustParseAddr("10.1.2.250"))
	if a != b {
		t.Errorf("addresses in one /24 mapped to different units: %v vs %v", a, b)
	}
	c := u.UnitFor(netip.MustParseAddr("10.1.3.3"))
	if a == c {
		t.Error("different /24s mapped to the same unit")
	}
}

func TestCIDRUnitsLookup(t *testing.T) {
	cidrs := []netip.Prefix{
		netip.MustParsePrefix("10.0.0.0/16"),
		netip.MustParsePrefix("10.0.1.0/24"), // more specific announcement
		netip.MustParsePrefix("192.168.0.0/20"),
	}
	c := NewCIDRUnits(PrefixUnits{X: 24}, cidrs)

	// Longest-prefix match wins.
	if p, ok := c.Lookup(netip.MustParseAddr("10.0.1.7")); !ok || p != cidrs[1] {
		t.Errorf("Lookup(10.0.1.7) = %v %v, want %v", p, ok, cidrs[1])
	}
	if p, ok := c.Lookup(netip.MustParseAddr("10.0.2.7")); !ok || p != cidrs[0] {
		t.Errorf("Lookup(10.0.2.7) = %v %v, want %v", p, ok, cidrs[0])
	}
	// Uncovered address falls back to the base unit.
	if _, ok := c.Lookup(netip.MustParseAddr("172.16.0.1")); ok {
		t.Error("Lookup found a CIDR for an uncovered address")
	}
	if got := c.UnitFor(netip.MustParseAddr("172.16.0.1")); got != netip.MustParsePrefix("172.16.0.0/24") {
		t.Errorf("uncovered UnitFor = %v", got)
	}
	if got := c.UnitFor(netip.MustParseAddr("192.168.15.9")); got != cidrs[2] {
		t.Errorf("covered UnitFor = %v", got)
	}
}

func TestCIDRUnitsEmptyTable(t *testing.T) {
	c := NewCIDRUnits(PrefixUnits{X: 24}, nil)
	if got := c.UnitFor(netip.MustParseAddr("10.0.0.1")); got != netip.MustParsePrefix("10.0.0.0/24") {
		t.Errorf("empty-table UnitFor = %v", got)
	}
}

func TestCountUnitsMonotoneInPrefix(t *testing.T) {
	w := world.MustGenerate(world.Config{Seed: 11, NumBlocks: 2000})
	prev := 0
	// Fig 22b: coarser prefixes yield fewer units.
	for _, x := range []uint8{8, 12, 16, 20, 24} {
		n := CountUnits(w, PrefixUnits{X: x})
		if n < prev {
			t.Fatalf("/%d units (%d) < coarser count (%d)", x, n, prev)
		}
		prev = n
	}
	// /24 count equals the number of blocks (all distinct /24s).
	if n := CountUnits(w, PrefixUnits{X: 24}); n != len(w.Blocks) {
		t.Errorf("/24 units = %d, want %d", n, len(w.Blocks))
	}
}

func TestCIDRAggregationReducesUnits(t *testing.T) {
	// §5.1: combining /24s within a BGP announcement cuts the unit count
	// several-fold (3.76M -> 444K in the paper).
	w := world.MustGenerate(world.Config{Seed: 11, NumBlocks: 2000})
	plain := CountUnits(w, PrefixUnits{X: 24})
	agg := CountUnits(w, NewCIDRUnits(PrefixUnits{X: 24}, w.BGPCIDRs()))
	if agg >= plain {
		t.Fatalf("CIDR aggregation did not reduce units: %d -> %d", plain, agg)
	}
	ratio := float64(plain) / float64(agg)
	if ratio < 2 || ratio > 12 {
		t.Errorf("aggregation ratio = %.1f, want ~4-10x", ratio)
	}
}

func TestUnitClustersPartition(t *testing.T) {
	w := world.MustGenerate(world.Config{Seed: 11, NumBlocks: 1000})
	clusters := UnitClusters(w, PrefixUnits{X: 20})
	total := 0
	for unit, blocks := range clusters {
		total += len(blocks)
		for _, b := range blocks {
			if !unit.Contains(b.Prefix.Addr()) {
				t.Fatalf("block %v assigned to unit %v not containing it", b.Prefix, unit)
			}
		}
	}
	if total != len(w.Blocks) {
		t.Errorf("clusters hold %d blocks, want %d", total, len(w.Blocks))
	}
}
