package mapping

import (
	"testing"

	"eum/internal/stats"
)

func TestTrafficClassString(t *testing.T) {
	if ClassWeb.String() != "web" || ClassVideo.String() != "video" ||
		ClassApplication.String() != "application" {
		t.Error("class names wrong")
	}
	if TrafficClass(9).String() != "TrafficClass(9)" {
		t.Error("unknown class name wrong")
	}
}

func TestClassProberWebEqualsPing(t *testing.T) {
	cp := ClassProber{Net: testNet, Class: ClassWeb}
	a := testP.Deployments[0].Endpoint()
	b := testW.Blocks[0].Endpoint()
	if cp.PingMs(a, b) != testNet.PingMs(a, b) {
		t.Error("web class should score pure ping")
	}
}

func TestClassObjectivesDiffer(t *testing.T) {
	// The three classes must pick measurably different trade-offs across
	// the platform: video's chosen deployments deliver more throughput,
	// application's see less loss, web's see the lowest ping.
	classes := []TrafficClass{ClassWeb, ClassVideo, ClassApplication}
	scorers := map[TrafficClass]*Scorer{}
	for _, c := range classes {
		scorers[c] = NewClassScorer(testW, testP, testNet, c, 0)
	}
	type agg struct{ ping, loss, tp stats.Dataset }
	res := map[TrafficClass]*agg{}
	for _, c := range classes {
		res[c] = &agg{}
	}
	n := 0
	for _, b := range testW.Blocks {
		if n++; n > 250 {
			break
		}
		ep := b.Endpoint()
		for _, c := range classes {
			dep, _ := scorers[c].Best(ep)
			if dep == nil {
				t.Fatal("no deployment")
			}
			de := dep.Endpoint()
			res[c].ping.Add(testNet.PingMs(de, ep), b.Demand)
			res[c].loss.Add(testNet.Loss(de, ep), b.Demand)
			res[c].tp.Add(testNet.ThroughputMbps(de, ep, 0), b.Demand)
		}
	}
	if res[ClassWeb].ping.Mean() > res[ClassVideo].ping.Mean() ||
		res[ClassWeb].ping.Mean() > res[ClassApplication].ping.Mean() {
		t.Errorf("web class should have the lowest mean ping: web %.2f video %.2f app %.2f",
			res[ClassWeb].ping.Mean(), res[ClassVideo].ping.Mean(), res[ClassApplication].ping.Mean())
	}
	if res[ClassVideo].tp.Mean() < res[ClassWeb].tp.Mean() {
		t.Errorf("video class should deliver >= web throughput: %.1f vs %.1f",
			res[ClassVideo].tp.Mean(), res[ClassWeb].tp.Mean())
	}
	if res[ClassApplication].loss.Mean() > res[ClassWeb].loss.Mean() {
		t.Errorf("application class should see <= web loss: %.5f vs %.5f",
			res[ClassApplication].loss.Mean(), res[ClassWeb].loss.Mean())
	}
}

func TestClassScorerUsableBySystemComponents(t *testing.T) {
	// A class scorer drops into the same ranking/LB machinery.
	sc := NewClassScorer(testW, testP, testNet, ClassVideo, 300)
	ep := testW.Blocks[7].Endpoint()
	rank := sc.Rank(ep)
	if len(rank) != len(testP.Deployments) {
		t.Fatalf("rank size %d", len(rank))
	}
	lb := NewLoadBalancer()
	d, err := lb.PickDeployment(rank, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d != rank[0].Deployment {
		t.Error("unloaded pick should be rank head")
	}
}
