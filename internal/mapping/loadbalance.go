package mapping

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"eum/internal/cdn"
)

// LoadBalancer performs the two hierarchical assignment steps of §2.2:
// global load balancing picks a server cluster for each mapping unit
// (best score first, spilling to the next-best cluster when a cluster is
// at capacity or down), and local load balancing picks servers within the
// cluster using consistent hashing on the content domain, so requests for
// the same domain concentrate on few servers and cache hit rates stay high
// (the "likely to contain the requested content" consideration).
type LoadBalancer struct {
	// ServersPerAnswer is how many server IPs each DNS answer carries;
	// the paper returns "two or more" as a precaution against transient
	// failures. Default 2.
	ServersPerAnswer int
	// VirtualNodes is the number of ring positions per server. Default 32.
	VirtualNodes int
	// LoadPenalty, when positive, makes the global choice load-aware
	// before hard saturation: candidates are re-ranked among the best few
	// by score x (1 + LoadPenalty x utilisation^2), shifting traffic off
	// busy clusters early at a small latency cost. Zero keeps the pure
	// best-score-first behaviour with hard capacity spill.
	LoadPenalty float64

	// prepared holds the consistent-hash rings built eagerly by Prepare
	// for every deployment of the served platform. The map pointed to is
	// immutable — InvalidateRing replaces the whole map (copy-on-write) —
	// so the query hot path reads it with one atomic load and no lock.
	prepared atomic.Pointer[map[uint64]*ring]

	// rings lazily caches rings for deployments outside the prepared set
	// (foreign platforms, standalone use). Reads take the read lock;
	// rings are only built once per deployment, so writer contention is a
	// startup transient.
	mu    sync.RWMutex
	rings map[uint64]*ring // deployment ID -> server ring
}

// NewLoadBalancer returns a load balancer with default settings.
func NewLoadBalancer() *LoadBalancer {
	return &LoadBalancer{ServersPerAnswer: 2, VirtualNodes: 32, rings: map[uint64]*ring{}}
}

// Prepare eagerly builds the consistent-hash ring for every deployment of
// the platform, so the per-query path never takes the ring lock. Call it
// once before serving; server membership changes in prepared deployments
// still go through InvalidateRing, which rebuilds the affected ring into
// a fresh map.
func (lb *LoadBalancer) Prepare(p *cdn.Platform) {
	prepared := make(map[uint64]*ring, len(p.Deployments))
	for _, d := range p.Deployments {
		prepared[d.ID] = newRing(d, lb.VirtualNodes)
	}
	lb.prepared.Store(&prepared)
}

// PickDeployment walks candidates (ordered best-first) and returns the
// first live deployment that can absorb demand more load. Deployments at
// or over capacity are skipped unless every candidate is saturated, in
// which case the least-utilised live candidate is returned (serving
// degraded beats not serving, and spreading the overload across the
// candidate set beats piling it all on the nearest cluster). Utilisation
// ties keep the best-scored candidate.
func (lb *LoadBalancer) PickDeployment(candidates []Ranked, demand float64) (*cdn.Deployment, error) {
	if lb.LoadPenalty > 0 {
		if d := lb.pickLoadAware(candidates, demand); d != nil {
			return d, nil
		}
	}
	var coolest *cdn.Deployment
	coolestUtil := 0.0
	for _, c := range candidates {
		d := c.Deployment
		if !d.Alive() {
			continue
		}
		if d.Load()+demand <= d.Capacity() {
			return d, nil
		}
		if u := d.Utilisation(); coolest == nil || u < coolestUtil {
			coolest, coolestUtil = d, u
		}
	}
	if coolest != nil {
		return coolest, nil
	}
	return nil, fmt.Errorf("mapping: no live deployment among %d candidates", len(candidates))
}

// loadAwareWindow is how many top candidates the load-aware picker
// re-ranks; beyond it, scores are already too poor to be worth the trade.
const loadAwareWindow = 8

// pickLoadAware re-ranks the best few live, unsaturated candidates by
// load-penalised score. Returns nil when none qualify (caller falls back
// to the hard-spill path).
func (lb *LoadBalancer) pickLoadAware(candidates []Ranked, demand float64) *cdn.Deployment {
	var best *cdn.Deployment
	bestEff := 0.0
	seen := 0
	for _, c := range candidates {
		d := c.Deployment
		if !d.Alive() {
			continue
		}
		if seen++; seen > loadAwareWindow {
			break
		}
		cap := d.Capacity()
		if cap <= 0 || d.Load()+demand > cap {
			continue
		}
		util := d.Load() / cap
		eff := c.Score * (1 + lb.LoadPenalty*util*util)
		if best == nil || eff < bestEff {
			best, bestEff = d, eff
		}
	}
	return best
}

// PickServers chooses up to ServersPerAnswer live servers in d for the
// given content domain using consistent hashing, and records demand load
// on the first (primary) server.
func (lb *LoadBalancer) PickServers(d *cdn.Deployment, domain string, demand float64) ([]*cdn.Server, error) {
	r := lb.ringFor(d)
	servers := r.pick(hashString(domain), lb.ServersPerAnswer)
	if len(servers) == 0 {
		return nil, fmt.Errorf("mapping: deployment %s has no live servers", d.Name)
	}
	if demand > 0 {
		servers[0].AddLoad(demand)
	}
	return servers, nil
}

func (lb *LoadBalancer) ringFor(d *cdn.Deployment) *ring {
	// Fast path: the prepared, immutable ring set — no lock.
	if pm := lb.prepared.Load(); pm != nil {
		if r, ok := (*pm)[d.ID]; ok {
			return r
		}
	}
	lb.mu.RLock()
	r, ok := lb.rings[d.ID]
	lb.mu.RUnlock()
	if ok {
		return r
	}
	lb.mu.Lock()
	defer lb.mu.Unlock()
	if r, ok := lb.rings[d.ID]; ok {
		return r
	}
	r = newRing(d, lb.VirtualNodes)
	lb.rings[d.ID] = r
	return r
}

// InvalidateRing drops the cached ring for a deployment (e.g. after server
// membership changes). For prepared deployments the ring is rebuilt into a
// fresh copy of the prepared map and swapped in atomically. Liveness
// changes alone do not require invalidation: dead servers are skipped at
// pick time.
func (lb *LoadBalancer) InvalidateRing(d *cdn.Deployment) {
	lb.mu.Lock()
	delete(lb.rings, d.ID)
	if pm := lb.prepared.Load(); pm != nil {
		if _, ok := (*pm)[d.ID]; ok {
			next := make(map[uint64]*ring, len(*pm))
			for k, v := range *pm {
				next[k] = v
			}
			next[d.ID] = newRing(d, lb.VirtualNodes)
			lb.prepared.Store(&next)
		}
	}
	lb.mu.Unlock()
}

// ring is a consistent-hash ring over a deployment's servers.
type ring struct {
	points  []uint64
	servers []*cdn.Server // parallel to points
}

func newRing(d *cdn.Deployment, vnodes int) *ring {
	r := &ring{}
	for _, s := range d.Servers {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, hashString(fmt.Sprintf("%d/%d", s.ID, v)))
			r.servers = append(r.servers, s)
		}
	}
	idx := make([]int, len(r.points))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return r.points[idx[i]] < r.points[idx[j]] })
	points := make([]uint64, len(idx))
	servers := make([]*cdn.Server, len(idx))
	for i, j := range idx {
		points[i], servers[i] = r.points[j], r.servers[j]
	}
	r.points, r.servers = points, servers
	return r
}

// pick returns up to n distinct live servers clockwise from key. Answers
// carry few servers (ServersPerAnswer, default 2), so distinctness is a
// linear scan of the output rather than a per-query map allocation.
func (r *ring) pick(key uint64, n int) []*cdn.Server {
	if len(r.points) == 0 {
		return nil
	}
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i] >= key })
	out := make([]*cdn.Server, 0, n)
scan:
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		s := r.servers[(start+i)%len(r.points)]
		if !s.Alive() {
			continue
		}
		for _, prev := range out {
			if prev.ID == s.ID {
				continue scan
			}
		}
		out = append(out, s)
	}
	return out
}

// FNV-1a constants (hash/fnv), inlined so string hashing needs neither a
// hash-object allocation nor a string-to-bytes conversion.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// hashString is FNV-1a over the string bytes, allocation-free. It
// produces the same values as hash/fnv's New64a, preserving consistent-
// hash ring placement across this change.
func hashString(s string) uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	return h
}
