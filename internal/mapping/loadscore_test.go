package mapping

import (
	"math"
	"testing"

	"eum/internal/cdn"
)

// rankTablesEqual compares every block's and LDNS's rank table (and Best)
// across two snapshots, entry by entry — deployment identity and exact
// score bits.
func rankTablesEqual(t *testing.T, a, b *Snapshot, wantEqual bool, what string) bool {
	t.Helper()
	equal := true
	check := func(id uint64, client bool) {
		ra, rb := a.RankOf(id, client), b.RankOf(id, client)
		if len(ra) != len(rb) {
			t.Fatalf("%s: endpoint %d table lengths %d vs %d", what, id, len(ra), len(rb))
		}
		for j := range ra {
			if ra[j].Deployment != rb[j].Deployment || ra[j].Score != rb[j].Score {
				equal = false
				if wantEqual {
					t.Fatalf("%s: endpoint %d rank %d: %s/%v vs %s/%v", what, id, j,
						ra[j].Deployment.Name, ra[j].Score, rb[j].Deployment.Name, rb[j].Score)
				}
				return
			}
		}
	}
	for _, blk := range testW.Blocks {
		check(blk.Endpoint().ID, true)
	}
	for _, l := range testW.LDNSes {
		check(l.Endpoint().ID, false)
	}
	return equal
}

// TestBalanceZeroByteIdentical is the β=0 property test (the load-scoring
// analogue of TestPartitionIdentityEquivalence): a builder with
// BalanceFactor 0 must produce byte-identical rank tables to the
// pre-load-scoring builder regardless of platform load, and a β>0 builder
// at zero utilization must match them too (stable sort, factor 1
// everywhere). Under load the β>0 builder must diverge — spilling hot
// deployments down its tables — while keeping raw ping scores intact, and
// must reconverge byte-identically once the load recedes.
func TestBalanceZeroByteIdentical(t *testing.T) {
	base := NewSystem(testW, testP, testNet, Config{Policy: EndUser, PingTargets: 600})
	loaded := NewSystem(testW, testP, testNet,
		Config{Policy: EndUser, PingTargets: 600, BalanceFactor: 2})
	testP.ResetLoad()
	defer testP.ResetLoad()

	snA0 := base.Rebuild()
	snB0 := loaded.Rebuild()
	rankTablesEqual(t, snA0, snB0, true, "zero-load β=2 vs β=0")

	// Overload the deployment nearest to the first block: util 2.0.
	hot := snA0.RankOf(testW.Blocks[0].Endpoint().ID, true)[0].Deployment
	hot.Servers[0].AddLoad(2 * hot.Capacity())

	snA1 := base.Rebuild()
	rankTablesEqual(t, snA0, snA1, true, "β=0 under load vs β=0 idle")

	snB1 := loaded.Rebuild()
	if rankTablesEqual(t, snA1, snB1, false, "") {
		t.Fatal("β=2 tables unchanged under overload — no spill happened")
	}
	// The overloaded deployment must shed head positions: strictly fewer
	// blocks rank it first under β=2 (factor 9 at util 2) than under
	// proximity. (It may keep blocks whose next-nearest alternative is
	// more than 9× the ping away — spill never beats a 9× detour.)
	heads := func(sn *Snapshot) int {
		n := 0
		for _, blk := range testW.Blocks {
			if sn.RankOf(blk.Endpoint().ID, true)[0].Deployment == hot {
				n++
			}
		}
		return n
	}
	if ha, hb := heads(snA1), heads(snB1); hb >= ha {
		t.Errorf("overloaded %s heads %d tables under β=2, %d under proximity — no shed",
			hot.Name, hb, ha)
	}
	// Stored scores stay raw ping milliseconds: every entry's score must
	// equal the proximity builder's score for the same deployment.
	ra := snA1.RankOf(testW.Blocks[0].Endpoint().ID, true)
	byDep := make(map[*cdn.Deployment]float64, len(ra))
	for _, r := range ra {
		byDep[r.Deployment] = r.Score
	}
	for _, r := range snB1.RankOf(testW.Blocks[0].Endpoint().ID, true) {
		if want, ok := byDep[r.Deployment]; !ok || want != r.Score {
			t.Fatalf("stored score for %s = %v, want raw ping %v", r.Deployment.Name, r.Score, want)
		}
	}

	// Load recedes: the β>0 map reconverges to the proximity map exactly.
	testP.ResetLoad()
	snB2 := loaded.Rebuild()
	rankTablesEqual(t, snA0, snB2, true, "β=2 after recede vs β=0")
}

// TestLoadRebuildCounters pins the build-path accounting: an idle β>0
// republish shares the previous arena chain (incremental, near-free); a
// utilization change forces a load rebuild (counted separately from
// measurement-driven full builds); MarkLoadDirty forces one even when the
// quantized vector is unchanged.
func TestLoadRebuildCounters(t *testing.T) {
	testP.ResetLoad()
	defer testP.ResetLoad()
	sys := NewSystem(testW, testP, testNet,
		Config{Policy: EndUser, PingTargets: 600, BalanceFactor: 1})
	b := sys.Builder()

	full0, inc0, _ := b.BuildStats()
	loads0, _ := b.LoadStats()

	// Idle republish: vector unchanged, arenas shared wholesale.
	sn1 := sys.Rebuild()
	sn2 := sys.Rebuild()
	if &sn1.arenas[0][0] != &sn2.arenas[0][0] {
		t.Error("idle β>0 republish did not share the previous arena")
	}
	full1, inc1, _ := b.BuildStats()
	if full1 != full0 || inc1 != inc0+2 {
		t.Errorf("idle republishes: full %d→%d inc %d→%d", full0, full1, inc0, inc1)
	}

	// Sub-quantum load drift must not force a re-rank.
	d := testP.Deployments[0]
	d.Servers[0].AddLoad(d.Capacity() / (8 * utilQuantum))
	sn3 := sys.Rebuild()
	if &sn2.arenas[0][0] != &sn3.arenas[0][0] {
		t.Error("sub-quantum load drift forced a re-rank")
	}

	// A visible utilization change forces a load rebuild, not a full build.
	d.Servers[0].AddLoad(d.Capacity())
	sys.Rebuild()
	full2, _, _ := b.BuildStats()
	loads1, _ := b.LoadStats()
	if loads1 != loads0+1 {
		t.Errorf("loadRebuilds = %d, want %d", loads1, loads0+1)
	}
	if full2 != full1 {
		t.Errorf("load change bumped fullBuilds %d→%d", full1, full2)
	}

	// MarkLoadDirty forces a re-rank even with the vector unchanged.
	b.MarkLoadDirty()
	sys.Rebuild()
	if loads2, _ := b.LoadStats(); loads2 != loads1+1 {
		t.Errorf("MarkLoadDirty loadRebuilds = %d, want %d", loads2, loads1+1)
	}
}

// staticUtil is a test UtilizationSource with per-deployment values and a
// global freshness flag.
type staticUtil struct {
	utils map[*cdn.Deployment]float64
	fresh bool
}

func (s *staticUtil) Utilization(d *cdn.Deployment) (float64, bool) {
	return s.utils[d], s.fresh
}

// TestStaleLoadSignalFallsBackToProximity: when every load signal is stale
// (dead telemetry feed), a β>0 build must ignore the garbage — tables come
// out byte-identical to proximity-only — and the tripwire counter must
// fire.
func TestStaleLoadSignalFallsBackToProximity(t *testing.T) {
	testP.ResetLoad()
	defer testP.ResetLoad()
	base := NewSystem(testW, testP, testNet, Config{Policy: EndUser, PingTargets: 600})

	src := &staticUtil{utils: map[*cdn.Deployment]float64{}, fresh: true}
	hot := base.Current().RankOf(testW.Blocks[0].Endpoint().ID, true)[0].Deployment
	src.utils[hot] = 3

	sys := NewSystem(testW, testP, testNet,
		Config{Policy: EndUser, PingTargets: 600, BalanceFactor: 2})
	sys.SetUtilizationSource(src)

	// Fresh signal: the hot deployment spills.
	snFresh := sys.Rebuild()
	if d, _ := snFresh.Best(testW.Blocks[0].Endpoint().ID, true); d == hot {
		t.Fatalf("fresh overload signal ignored: %s still heads the table", hot.Name)
	}

	// Feed dies: same utilization values, ok=false. The build must degrade
	// to proximity-only, not keep acting on the stale reading.
	src.fresh = false
	snStale := sys.Rebuild()
	rankTablesEqual(t, base.Current(), snStale, true, "stale-signal build vs proximity")
	if _, stale := sys.Builder().LoadStats(); stale == 0 {
		t.Error("stale-signal tripwire counter did not fire")
	}
}

func TestQuantizeUtil(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{-1, 0},
		{0, 0},
		{math.NaN(), 0},
		{math.Inf(1), utilMax},
		{100, utilMax},
		{0.5, 0.5},
		{1.0 / 300, 0},              // below half a quantum rounds to 0
		{0.7501 * 1 / 64 * 64, 0.75}, // on-grid value unchanged
	}
	for _, tc := range cases {
		if got := quantizeUtil(tc.in); got != tc.want {
			t.Errorf("quantizeUtil(%v) = %v, want %v", tc.in, got, tc.want)
		}
	}
}
