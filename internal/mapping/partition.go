package mapping

import (
	"math"
	"sort"
	"sync"
	"unsafe"

	"eum/internal/netmodel"
	"eum/internal/par"
)

// milesPerDegreeLat is a conservative (slightly low) miles-per-degree-of-
// latitude constant. Quantization cells and latitude-band pruning both use
// it as a lower bound on great-circle distance, so rounding down keeps the
// bounds sound.
const milesPerDegreeLat = 69.0

// sigKey is the routing signature partitions cluster on. The network model
// derives path quality from geographic distance, AS crossings and the
// access tier, so endpoints sharing a quantized geo cell, an origin AS and
// an access technology have near-identical measurement vectors — the
// "routing-aware partitioning" observation: such blocks can share one
// server ranking.
type sigKey struct {
	row, col int32
	asn      uint32
	access   netmodel.AccessType
}

// segmentInfo describes one distinct rank table (an arena segment).
// Partitions whose representatives resolve to the same scorer ping target
// are interned onto one segment; target is the scorer target index ranked
// into the segment, or -1 when clustering is off and rep itself is ranked.
type segmentInfo struct {
	target int32
	rep    netmodel.Endpoint
}

// partitionLayout is the partitioner's output: the immutable shape shared
// by every snapshot built until the endpoint universe changes. It holds the
// block→partition index (dense array for the world's compact ID space,
// sorted spill arrays for hashed IDs), the per-partition table headers, and
// the interned segment list the builder ranks into the arena.
type partitionLayout struct {
	nParts int // universe partitions, excluding the two fallbacks

	// Endpoint-ID → partition. IDs below len(dense) index the dense array
	// (-1 = unknown); larger (hashed) IDs binary-search the spill arrays.
	dense    []int32
	spillIDs []uint64
	spillIdx []int32

	// fallbackLDNS / fallbackClient are the partition indexes of the two
	// synthetic fallback endpoints (always the last two partitions).
	fallbackLDNS   int32
	fallbackClient int32

	// partSeg maps partition → arena segment (4 bytes per partition;
	// partitions interned onto the same ping target share a segment).
	partSeg []int32

	// segments are the distinct rank tables; targetSeg inverts the
	// interning (scorer target index → segment) for incremental re-ranks.
	segments  []segmentInfo
	targetSeg map[int32]int32

	// baseSegArena/baseSegOff are the canonical segment locations for a
	// freshly built (single-arena) snapshot: segment s lives in arena 0 at
	// offset s*tableLen. Full builds share these slices; incremental
	// builds copy and repoint the dirty segments at their delta arenas.
	baseSegArena []int32
	baseSegOff   []uint32

	tableLen  int // entries per table = len(platform.Deployments)
	endpoints int // universe endpoints indexed (dense + spill entries)

	// fpOnce/fp cache the layout fingerprint the wire protocol negotiates
	// deltas with (see Snapshot.LayoutFingerprint). Layouts are immutable
	// after buildLayout, so the hash is computed at most once.
	fpOnce sync.Once
	fp     uint64
}

// partitionOf resolves an endpoint ID to its partition, or -1.
func (lay *partitionLayout) partitionOf(id uint64) int32 {
	if id < uint64(len(lay.dense)) {
		return lay.dense[id]
	}
	lo, hi := 0, len(lay.spillIDs)
	for lo < hi {
		m := int(uint(lo+hi) >> 1)
		if lay.spillIDs[m] < id {
			lo = m + 1
		} else {
			hi = m
		}
	}
	if lo < len(lay.spillIDs) && lay.spillIDs[lo] == id {
		return lay.spillIdx[lo]
	}
	return -1
}

// memoryBytes is the resident size of the layout's index structures.
func (lay *partitionLayout) memoryBytes() uint64 {
	return uint64(len(lay.dense))*uint64(unsafe.Sizeof(int32(0))) +
		uint64(len(lay.spillIDs))*uint64(unsafe.Sizeof(uint64(0))) +
		uint64(len(lay.spillIdx))*uint64(unsafe.Sizeof(int32(0))) +
		uint64(len(lay.partSeg))*uint64(unsafe.Sizeof(int32(0))) +
		uint64(len(lay.baseSegArena))*uint64(unsafe.Sizeof(int32(0))) +
		uint64(len(lay.baseSegOff))*uint64(unsafe.Sizeof(uint32(0))) +
		uint64(len(lay.segments))*uint64(unsafe.Sizeof(segmentInfo{}))
}

// signatureFor quantizes an endpoint's routing signature at the given cell
// size in miles. Longitude cells use the same angular width as latitude
// cells, so cells shrink in east-west miles toward the poles — finer, never
// coarser, than the configured similarity threshold.
func signatureFor(ep netmodel.Endpoint, miles float64) sigKey {
	cellDeg := miles / milesPerDegreeLat
	return sigKey{
		row:    int32(math.Floor((ep.Loc.Lat + 90) / cellDeg)),
		col:    int32(math.Floor((ep.Loc.Lon + 180) / cellDeg)),
		asn:    ep.ASN,
		access: ep.Access,
	}
}

// buildLayout partitions the endpoint universe. miles <= 0 selects identity
// partitioning: every distinct endpoint ID is its own partition, which
// reproduces the pre-partition per-endpoint tables exactly (the equivalence
// property pinned by TestPartitionIdentityEquivalence). miles > 0 clusters
// endpoints by routing signature; the first member seen (universe order, so
// deterministic) represents the partition.
func buildLayout(universe []netmodel.Endpoint, fLDNS, fClient netmodel.Endpoint,
	miles float64, sc *Scorer, tableLen int) *partitionLayout {

	lay := &partitionLayout{tableLen: tableLen}

	// Pass 1: assign partitions first-seen by signature.
	assign := make([]int32, len(universe))
	var reps []netmodel.Endpoint
	if miles <= 0 {
		byID := make(map[uint64]int32, len(universe))
		for i, ep := range universe {
			p, ok := byID[ep.ID]
			if !ok {
				p = int32(len(reps))
				byID[ep.ID] = p
				reps = append(reps, ep)
			}
			assign[i] = p
		}
	} else {
		bySig := make(map[sigKey]int32, len(universe)/4+16)
		for i, ep := range universe {
			k := signatureFor(ep, miles)
			p, ok := bySig[k]
			if !ok {
				p = int32(len(reps))
				bySig[k] = p
				reps = append(reps, ep)
			}
			assign[i] = p
		}
	}
	lay.nParts = len(reps)

	// The two fallback partitions ride at the end; their synthetic IDs (top
	// of the uint64 space) never enter the index.
	lay.fallbackLDNS = int32(len(reps))
	reps = append(reps, fLDNS)
	lay.fallbackClient = int32(len(reps))
	reps = append(reps, fClient)

	// Pass 2: the endpoint index. World IDs are allocated from one small
	// counter, so almost everything lands in the dense array at 4 bytes per
	// endpoint; hashed IDs (extra experiment endpoints) spill to sorted
	// arrays.
	denseLimit := uint64(2*len(universe) + 1024)
	maxDense := uint64(0)
	for _, ep := range universe {
		if ep.ID < denseLimit && ep.ID > maxDense {
			maxDense = ep.ID
		}
	}
	lay.dense = make([]int32, maxDense+1)
	for i := range lay.dense {
		lay.dense[i] = -1
	}
	type spillEnt struct {
		id  uint64
		idx int32
	}
	var spill []spillEnt
	for i, ep := range universe {
		if ep.ID < denseLimit {
			if lay.dense[ep.ID] < 0 {
				lay.endpoints++
			}
			lay.dense[ep.ID] = assign[i]
		} else {
			spill = append(spill, spillEnt{ep.ID, assign[i]})
		}
	}
	if len(spill) > 0 {
		sort.Slice(spill, func(i, j int) bool { return spill[i].id < spill[j].id })
		lay.spillIDs = make([]uint64, 0, len(spill))
		lay.spillIdx = make([]int32, 0, len(spill))
		for _, e := range spill {
			if n := len(lay.spillIDs); n > 0 && lay.spillIDs[n-1] == e.id {
				lay.spillIdx[n-1] = e.idx // later universe entries win, as before
				continue
			}
			lay.spillIDs = append(lay.spillIDs, e.id)
			lay.spillIdx = append(lay.spillIdx, e.idx)
			lay.endpoints++
		}
	}

	// Pass 3: intern partitions onto arena segments. With clustering on,
	// partitions resolving to the same ping target share one table, so the
	// arena is bounded by the distinct targets in use — not by the
	// partition count; with clustering off each partition ranks its own
	// representative.
	lay.partSeg = make([]int32, len(reps))
	if sc.Targeted() {
		tIdx := par.Map(len(reps), func(i int) int { return sc.targetFor(reps[i]) })
		lay.targetSeg = make(map[int32]int32, 64)
		for p, rep := range reps {
			t := int32(tIdx[p])
			seg, ok := lay.targetSeg[t]
			if !ok {
				seg = int32(len(lay.segments))
				lay.targetSeg[t] = seg
				lay.segments = append(lay.segments, segmentInfo{target: t, rep: rep})
			}
			lay.partSeg[p] = seg
		}
	} else {
		for p, rep := range reps {
			lay.segments = append(lay.segments, segmentInfo{target: -1, rep: rep})
			lay.partSeg[p] = int32(p)
		}
	}
	lay.baseSegArena = make([]int32, len(lay.segments))
	lay.baseSegOff = make([]uint32, len(lay.segments))
	for s := range lay.baseSegOff {
		lay.baseSegOff[s] = uint32(s * tableLen)
	}
	return lay
}
