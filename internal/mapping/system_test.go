package mapping

import (
	"net/netip"
	"testing"
	"time"

	"eum/internal/cdn"
	"eum/internal/geo"
	"eum/internal/netmodel"
	"eum/internal/stats"
	"eum/internal/world"
)

var (
	testW   = world.MustGenerate(world.Config{Seed: 5, NumBlocks: 4000})
	testNet = netmodel.NewDefault()
	testP   = cdn.MustGenerateUniverse(testW, cdn.Config{Seed: 5, NumDeployments: 300, ServersPerDeployment: 6})
)

func newSystem(t testing.TB, pol Policy) *System {
	t.Helper()
	return NewSystem(testW, testP, testNet, Config{Policy: pol, PingTargets: 1000})
}

// publicBlock returns a block using a public resolver whose LDNS is far
// away (the clients EU mapping helps most).
func publicBlock(t testing.TB) *world.ClientBlock {
	t.Helper()
	var best *world.ClientBlock
	for _, b := range testW.Blocks {
		if b.LDNS.IsPublic() && b.ClientLDNSDistance() > 2000 {
			if best == nil || b.Demand > best.Demand {
				best = b
			}
		}
	}
	if best == nil {
		t.Fatal("no far public-resolver block in test world")
	}
	return best
}

func TestMapNSBased(t *testing.T) {
	s := newSystem(t, NSBased)
	b := publicBlock(t)
	resp, err := s.Map(Request{Domain: "foo.cdn.example.net", LDNS: b.LDNS.Addr})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Deployment == nil || len(resp.Servers) != 2 {
		t.Fatalf("resp = %+v", resp)
	}
	if resp.UsedClientSubnet || resp.ScopePrefix != 0 {
		t.Error("NS-based mapping claims to have used the client subnet")
	}
	// The chosen deployment should be near the LDNS, not the client.
	dLDNS := geo.Distance(resp.Deployment.Loc, b.LDNS.Loc)
	dClient := geo.Distance(resp.Deployment.Loc, b.Loc)
	if dLDNS > dClient {
		t.Errorf("NS mapping chose deployment nearer the client (%.0f) than the LDNS (%.0f)", dClient, dLDNS)
	}
}

func TestMapEndUser(t *testing.T) {
	s := newSystem(t, EndUser)
	b := publicBlock(t)
	resp, err := s.Map(Request{
		Domain:       "foo.cdn.example.net",
		LDNS:         b.LDNS.Addr,
		ClientSubnet: b.Prefix,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.UsedClientSubnet {
		t.Error("EU mapping did not use the client subnet")
	}
	if resp.ScopePrefix != 24 {
		t.Errorf("scope = %d, want 24", resp.ScopePrefix)
	}
	// The chosen deployment should be near the client.
	dClient := geo.Distance(resp.Deployment.Loc, b.Loc)
	dLDNS := geo.Distance(resp.Deployment.Loc, b.LDNS.Loc)
	if dClient > dLDNS {
		t.Errorf("EU mapping chose deployment nearer the LDNS (%.0f) than the client (%.0f)", dLDNS, dClient)
	}
}

func TestEUFallsBackWithoutECS(t *testing.T) {
	s := newSystem(t, EndUser)
	b := publicBlock(t)
	resp, err := s.Map(Request{Domain: "foo.cdn.example.net", LDNS: b.LDNS.Addr})
	if err != nil {
		t.Fatal(err)
	}
	if resp.UsedClientSubnet {
		t.Error("EU mapping used a client subnet that was not provided")
	}
}

func TestEUImprovesMappingDistanceForPublicClients(t *testing.T) {
	// The roll-out headline: for public-resolver clients, EU mapping cuts
	// the client-deployment distance several-fold versus NS mapping.
	ns := newSystem(t, NSBased)
	eu := newSystem(t, EndUser)
	var nsD, euD stats.Dataset
	n := 0
	for _, b := range testW.Blocks {
		if !b.LDNS.IsPublic() || n > 400 {
			continue
		}
		n++
		r1, err := ns.Map(Request{Domain: "d.net", LDNS: b.LDNS.Addr})
		if err != nil {
			t.Fatal(err)
		}
		r2, err := eu.Map(Request{Domain: "d.net", LDNS: b.LDNS.Addr, ClientSubnet: b.Prefix})
		if err != nil {
			t.Fatal(err)
		}
		nsD.Add(geo.Distance(r1.Deployment.Loc, b.Loc), b.Demand)
		euD.Add(geo.Distance(r2.Deployment.Loc, b.Loc), b.Demand)
	}
	if euD.Mean() >= nsD.Mean()/2 {
		t.Errorf("EU mean mapping distance %.0f not well below NS %.0f", euD.Mean(), nsD.Mean())
	}
}

func TestCANSBetweenNSAndEU(t *testing.T) {
	// §6: CANS is an intermediate point between NS and EU.
	ns := newSystem(t, NSBased)
	cans := newSystem(t, ClientAwareNS)
	eu := newSystem(t, EndUser)
	var nsD, cansD, euD stats.Dataset
	count := 0
	for _, b := range testW.Blocks {
		if !b.LDNS.IsPublic() {
			continue
		}
		if count++; count > 300 {
			break
		}
		for _, tc := range []struct {
			sys *System
			ds  *stats.Dataset
			ecs netip.Prefix
		}{{ns, &nsD, netip.Prefix{}}, {cans, &cansD, netip.Prefix{}}, {eu, &euD, b.Prefix}} {
			r, err := tc.sys.Map(Request{Domain: "d.net", LDNS: b.LDNS.Addr, ClientSubnet: tc.ecs})
			if err != nil {
				t.Fatal(err)
			}
			tc.ds.Add(geo.Distance(r.Deployment.Loc, b.Loc), b.Demand)
		}
	}
	if !(euD.Mean() <= cansD.Mean() && cansD.Mean() <= nsD.Mean()*1.05) {
		t.Errorf("want EU (%.0f) <= CANS (%.0f) <= NS (%.0f)", euD.Mean(), cansD.Mean(), nsD.Mean())
	}
}

func TestMapUnknownLDNSFallsBack(t *testing.T) {
	s := newSystem(t, NSBased)
	resp, err := s.Map(Request{Domain: "d.net", LDNS: netip.MustParseAddr("127.0.0.1")})
	if err != nil {
		t.Fatalf("unknown LDNS should still be served: %v", err)
	}
	if resp.Deployment == nil {
		t.Fatal("no deployment for unknown LDNS")
	}
}

func TestMapUnknownECSPrefix(t *testing.T) {
	s := newSystem(t, EndUser)
	resp, err := s.Map(Request{
		Domain:       "d.net",
		LDNS:         netip.MustParseAddr("127.0.0.1"),
		ClientSubnet: netip.MustParsePrefix("198.18.55.0/24"), // not in world
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.UsedClientSubnet {
		t.Error("unknown prefix should not count as a client-subnet decision")
	}
}

func TestMapEmptyDomainRejected(t *testing.T) {
	s := newSystem(t, NSBased)
	if _, err := s.Map(Request{LDNS: netip.MustParseAddr("10.0.0.1")}); err == nil {
		t.Error("empty domain accepted")
	}
}

func TestScopeNeverExceedsSource(t *testing.T) {
	// RFC 7871: answering with scope longer than the query's source
	// prefix would leak granularity the resolver cannot cache.
	s := newSystem(t, EndUser)
	b := publicBlock(t)
	p20, _ := b.Prefix.Addr().Prefix(20)
	resp, err := s.Map(Request{Domain: "d.net", LDNS: b.LDNS.Addr, ClientSubnet: p20})
	if err != nil {
		t.Fatal(err)
	}
	if int(resp.ScopePrefix) > 20 {
		t.Errorf("scope /%d exceeds source /20", resp.ScopePrefix)
	}
}

func TestCoarseUnitsCoarseScope(t *testing.T) {
	s := NewSystem(testW, testP, testNet, Config{
		Policy: EndUser, Units: PrefixUnits{X: 20}, PingTargets: 500,
	})
	b := publicBlock(t)
	resp, err := s.Map(Request{Domain: "d.net", LDNS: b.LDNS.Addr, ClientSubnet: b.Prefix})
	if err != nil {
		t.Fatal(err)
	}
	if resp.ScopePrefix != 20 {
		t.Errorf("scope = %d, want 20 for /20 units", resp.ScopePrefix)
	}
}

func TestSameDomainSameServers(t *testing.T) {
	// Local LB cache locality: repeated requests for one domain from the
	// same unit must hit the same servers.
	s := newSystem(t, EndUser)
	b := publicBlock(t)
	req := Request{Domain: "popular.cdn.example.net", LDNS: b.LDNS.Addr, ClientSubnet: b.Prefix}
	r1, err := s.Map(req)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s.Map(req)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Servers[0].ID != r2.Servers[0].ID {
		t.Error("same domain mapped to different primary servers")
	}
}

func TestDifferentDomainsSpreadServers(t *testing.T) {
	s := newSystem(t, NSBased)
	b := publicBlock(t)
	seen := map[uint64]bool{}
	for _, dom := range []string{"a.net", "b.net", "c.net", "d.net", "e.net", "f.net", "g.net", "h.net"} {
		r, err := s.Map(Request{Domain: dom, LDNS: b.LDNS.Addr})
		if err != nil {
			t.Fatal(err)
		}
		seen[r.Servers[0].ID] = true
	}
	if len(seen) < 2 {
		t.Error("8 domains all hashed to one server")
	}
}

func TestLivenessRespected(t *testing.T) {
	s := newSystem(t, NSBased)
	b := publicBlock(t)
	r1, err := s.Map(Request{Domain: "live.net", LDNS: b.LDNS.Addr})
	if err != nil {
		t.Fatal(err)
	}
	// Kill the chosen deployment entirely; the system must pick another.
	for _, srv := range r1.Deployment.Servers {
		srv.SetAlive(false)
	}
	defer func() {
		for _, srv := range r1.Deployment.Servers {
			srv.SetAlive(true)
		}
	}()
	r2, err := s.Map(Request{Domain: "live.net", LDNS: b.LDNS.Addr})
	if err != nil {
		t.Fatal(err)
	}
	if r2.Deployment.ID == r1.Deployment.ID {
		t.Error("mapping returned a dead deployment")
	}
	for _, srv := range r2.Servers {
		if !srv.Alive() {
			t.Error("mapping returned a dead server")
		}
	}
}

func TestCapacitySpill(t *testing.T) {
	s := newSystem(t, NSBased)
	b := publicBlock(t)
	r1, err := s.Map(Request{Domain: "x.net", LDNS: b.LDNS.Addr})
	if err != nil {
		t.Fatal(err)
	}
	// Saturate the chosen deployment.
	for _, srv := range r1.Deployment.Servers {
		srv.AddLoad(srv.Capacity() * 2)
	}
	defer testP.ResetLoad()
	r2, err := s.Map(Request{Domain: "x.net", LDNS: b.LDNS.Addr, Demand: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if r2.Deployment.ID == r1.Deployment.ID {
		t.Error("global LB did not spill away from a saturated deployment")
	}
}

func TestDemandAccounting(t *testing.T) {
	s := newSystem(t, NSBased)
	b := publicBlock(t)
	testP.ResetLoad()
	r, err := s.Map(Request{Domain: "load.net", LDNS: b.LDNS.Addr, Demand: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Servers[0].Load(); got != 0.5 {
		t.Errorf("primary server load = %v, want 0.5", got)
	}
	testP.ResetLoad()
}

func TestTTLDefault(t *testing.T) {
	s := newSystem(t, NSBased)
	if s.TTL() != 20*time.Second {
		t.Errorf("TTL = %v, want 20s", s.TTL())
	}
	b := publicBlock(t)
	r, err := s.Map(Request{Domain: "ttl.net", LDNS: b.LDNS.Addr})
	if err != nil {
		t.Fatal(err)
	}
	if r.TTL != 20*time.Second {
		t.Errorf("response TTL = %v", r.TTL)
	}
}

func TestSetPolicy(t *testing.T) {
	s := newSystem(t, NSBased)
	if s.Policy() != NSBased {
		t.Fatal("initial policy wrong")
	}
	s.SetPolicy(EndUser)
	if s.Policy() != EndUser {
		t.Fatal("SetPolicy failed")
	}
	if NSBased.String() != "NS" || EndUser.String() != "EU" || ClientAwareNS.String() != "CANS" {
		t.Error("policy names wrong")
	}
}

func TestLookupHelpers(t *testing.T) {
	s := newSystem(t, NSBased)
	b := testW.Blocks[0]
	if got, ok := s.LookupBlock(b.Prefix.Addr().Next()); !ok || got != b {
		t.Error("LookupBlock failed for in-block address")
	}
	if _, ok := s.LookupBlock(netip.MustParseAddr("255.255.255.1")); ok {
		t.Error("LookupBlock found nonexistent block")
	}
	if got, ok := s.LookupLDNS(b.LDNS.Addr); !ok || got != b.LDNS {
		t.Error("LookupLDNS failed")
	}
}
