package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEmptyDataset(t *testing.T) {
	var d Dataset
	if d.Mean() != 0 || d.Median() != 0 || d.Min() != 0 || d.Max() != 0 {
		t.Error("empty dataset stats should all be 0")
	}
	if d.CDF(10) != nil {
		t.Error("empty CDF should be nil")
	}
	if d.LogHistogram(1, 100, 4) != nil {
		t.Error("empty histogram should be nil")
	}
	if d.FractionAtOrBelow(5) != 0 {
		t.Error("empty FractionAtOrBelow should be 0")
	}
}

func TestIgnoresBadSamples(t *testing.T) {
	var d Dataset
	d.Add(1, 0)
	d.Add(1, -3)
	d.Add(math.NaN(), 1)
	d.Add(1, math.NaN())
	if d.Len() != 0 {
		t.Errorf("bad samples retained: Len = %d", d.Len())
	}
}

func TestMeanWeighted(t *testing.T) {
	var d Dataset
	d.Add(10, 1)
	d.Add(20, 3)
	want := (10.0 + 60.0) / 4.0
	if got := d.Mean(); math.Abs(got-want) > 1e-9 {
		t.Errorf("Mean = %v, want %v", got, want)
	}
}

func TestPercentileUnweighted(t *testing.T) {
	var d Dataset
	for _, v := range []float64{5, 1, 3, 2, 4} {
		d.AddUnweighted(v)
	}
	cases := []struct{ p, want float64 }{
		{0, 1}, {20, 1}, {40, 2}, {50, 3}, {60, 3}, {80, 4}, {100, 5},
	}
	for _, c := range cases {
		if got := d.Percentile(c.p); got != c.want {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestPercentileWeighted(t *testing.T) {
	var d Dataset
	d.Add(1, 99)
	d.Add(100, 1)
	if got := d.Median(); got != 1 {
		t.Errorf("Median = %v, want 1 (weight-dominated)", got)
	}
	if got := d.Percentile(99.5); got != 100 {
		t.Errorf("P99.5 = %v, want 100", got)
	}
}

func TestPercentileMonotone(t *testing.T) {
	f := func(vals []float64) bool {
		var d Dataset
		for _, v := range vals {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				d.AddUnweighted(v)
			}
		}
		if d.Len() == 0 {
			return true
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 5 {
			v := d.Percentile(p)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPercentileAfterAdd(t *testing.T) {
	// Adding after a query must invalidate the sort cache.
	var d Dataset
	d.AddUnweighted(10)
	_ = d.Median()
	d.AddUnweighted(1)
	if got := d.Min(); got != 1 {
		t.Errorf("Min after post-query Add = %v, want 1", got)
	}
}

func TestFractionAtOrBelow(t *testing.T) {
	var d Dataset
	for v := 1.0; v <= 10; v++ {
		d.AddUnweighted(v)
	}
	cases := []struct{ v, want float64 }{
		{0, 0}, {1, 0.1}, {5, 0.5}, {5.5, 0.5}, {10, 1}, {99, 1},
	}
	for _, c := range cases {
		if got := d.FractionAtOrBelow(c.v); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("FractionAtOrBelow(%v) = %v, want %v", c.v, got, c.want)
		}
	}
}

func TestBoxStatsOrdered(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var d Dataset
	for i := 0; i < 1000; i++ {
		d.Add(rng.ExpFloat64()*500, rng.Float64()*10)
	}
	b := d.BoxStats()
	if !(b.P5 <= b.P25 && b.P25 <= b.P50 && b.P50 <= b.P75 && b.P75 <= b.P95) {
		t.Errorf("box percentiles out of order: %+v", b)
	}
}

func TestCDFProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var d Dataset
	for i := 0; i < 5000; i++ {
		d.Add(rng.NormFloat64()*100+1000, 1+rng.Float64())
	}
	pts := d.CDF(50)
	if len(pts) == 0 {
		t.Fatal("empty CDF")
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Value < pts[i-1].Value || pts[i].CumFraction < pts[i-1].CumFraction {
			t.Fatalf("CDF not monotone at %d: %+v -> %+v", i, pts[i-1], pts[i])
		}
	}
	last := pts[len(pts)-1]
	if math.Abs(last.CumFraction-1) > 1e-9 {
		t.Errorf("CDF does not reach 1: %v", last.CumFraction)
	}
	if last.Value != d.Max() {
		t.Errorf("CDF last value %v != max %v", last.Value, d.Max())
	}
}

func TestLogHistogramSumsToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var d Dataset
	for i := 0; i < 2000; i++ {
		d.Add(math.Pow(10, rng.Float64()*4), 1) // 1..10000
	}
	// Include out-of-range values that must be clamped.
	d.Add(0.5, 10)
	d.Add(1e6, 10)
	bins := d.LogHistogram(10, 10000, 5)
	var sum float64
	for _, b := range bins {
		if b.Fraction < 0 {
			t.Fatalf("negative bin fraction: %+v", b)
		}
		if b.Hi <= b.Lo {
			t.Fatalf("degenerate bin: %+v", b)
		}
		sum += b.Fraction
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("histogram fractions sum to %v, want 1", sum)
	}
	// Bin edges should be contiguous.
	for i := 1; i < len(bins); i++ {
		if math.Abs(bins[i].Lo-bins[i-1].Hi) > bins[i].Lo*1e-9 {
			t.Errorf("bins not contiguous at %d: %v vs %v", i, bins[i-1].Hi, bins[i].Lo)
		}
	}
}

func TestLogHistogramInvalidArgs(t *testing.T) {
	var d Dataset
	d.AddUnweighted(5)
	if d.LogHistogram(0, 100, 4) != nil {
		t.Error("lo=0 should return nil")
	}
	if d.LogHistogram(100, 10, 4) != nil {
		t.Error("hi<lo should return nil")
	}
	if d.LogHistogram(1, 100, 0) != nil {
		t.Error("binsPerDecade=0 should return nil")
	}
}

func TestLinearHistogram(t *testing.T) {
	var d Dataset
	for v := 0.5; v < 10; v++ {
		d.AddUnweighted(v)
	}
	d.AddUnweighted(-5) // clamps into first bin
	d.AddUnweighted(50) // clamps into last bin
	bins := d.LinearHistogram(0, 10, 5)
	var sum float64
	for _, b := range bins {
		sum += b.Fraction
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("linear histogram sums to %v", sum)
	}
	if bins[0].Fraction < 2.0/12.0-1e-9 {
		t.Errorf("clamped low value missing from first bin: %+v", bins[0])
	}
}

func TestPercentileMatchesFraction(t *testing.T) {
	// Percentile and FractionAtOrBelow are (approximately) inverse.
	rng := rand.New(rand.NewSource(4))
	var d Dataset
	for i := 0; i < 1000; i++ {
		d.Add(rng.Float64()*100, 1)
	}
	for _, p := range []float64{10, 25, 50, 75, 90} {
		v := d.Percentile(p)
		f := d.FractionAtOrBelow(v)
		if f < p/100-1e-9 {
			t.Errorf("FractionAtOrBelow(P%v=%v) = %v < %v", p, v, f, p/100)
		}
	}
}
