// Package stats provides the statistical machinery the paper's evaluation
// relies on: demand-weighted percentiles and box stats (all box plots show
// the 5th/25th/50th/75th/95th percentiles), CDFs over weighted samples,
// log-bucketed histograms (the distance histograms use a log-10 x axis),
// and daily-mean time series.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Sample is a value with an associated nonnegative weight (typically client
// demand). A plain observation has Weight 1.
type Sample struct {
	Value  float64
	Weight float64
}

// Dataset accumulates weighted samples and answers distributional queries.
// The zero value is an empty, ready-to-use dataset. Query methods sort the
// samples lazily and cache the sorted order until the next Add.
type Dataset struct {
	samples []Sample
	sorted  bool
	total   float64
}

// Add appends a weighted sample. Non-positive weights are ignored, matching
// the paper's convention that only blocks with non-zero demand count.
func (d *Dataset) Add(value, weight float64) {
	if weight <= 0 || math.IsNaN(value) || math.IsNaN(weight) {
		return
	}
	d.samples = append(d.samples, Sample{value, weight})
	d.total += weight
	d.sorted = false
}

// AddUnweighted appends a sample with weight 1.
func (d *Dataset) AddUnweighted(value float64) { d.Add(value, 1) }

// Merge appends every sample of other to d, leaving other unchanged.
// Merging per-shard datasets in shard order is how parallel sweeps combine
// worker-private accumulations (see internal/par); the result is exactly
// the dataset produced by issuing the same Adds to d directly — the total
// is re-accumulated sample by sample so even its floating-point rounding
// matches sequential insertion.
func (d *Dataset) Merge(other *Dataset) {
	if other == nil || len(other.samples) == 0 {
		return
	}
	d.samples = append(d.samples, other.samples...)
	for _, s := range other.samples {
		d.total += s.Weight
	}
	d.sorted = false
}

// Len returns the number of retained samples.
func (d *Dataset) Len() int { return len(d.samples) }

// TotalWeight returns the sum of all sample weights.
func (d *Dataset) TotalWeight() float64 { return d.total }

func (d *Dataset) ensureSorted() {
	if d.sorted {
		return
	}
	sort.Slice(d.samples, func(i, j int) bool { return d.samples[i].Value < d.samples[j].Value })
	d.sorted = true
}

// Mean returns the weighted mean, or 0 for an empty dataset.
func (d *Dataset) Mean() float64 {
	if d.total == 0 {
		return 0
	}
	var sum float64
	for _, s := range d.samples {
		sum += s.Value * s.Weight
	}
	return sum / d.total
}

// Percentile returns the weighted p-th percentile for p in [0, 100].
// It uses the inclusive definition: the smallest value v such that at least
// p% of the total weight lies at or below v. Returns 0 for empty datasets.
func (d *Dataset) Percentile(p float64) float64 {
	if len(d.samples) == 0 {
		return 0
	}
	if p <= 0 {
		d.ensureSorted()
		return d.samples[0].Value
	}
	if p >= 100 {
		d.ensureSorted()
		return d.samples[len(d.samples)-1].Value
	}
	d.ensureSorted()
	target := d.total * p / 100
	var cum float64
	for _, s := range d.samples {
		cum += s.Weight
		if cum >= target {
			return s.Value
		}
	}
	return d.samples[len(d.samples)-1].Value
}

// Median returns the weighted 50th percentile.
func (d *Dataset) Median() float64 { return d.Percentile(50) }

// Min returns the smallest sample value, or 0 if empty.
func (d *Dataset) Min() float64 {
	if len(d.samples) == 0 {
		return 0
	}
	d.ensureSorted()
	return d.samples[0].Value
}

// Max returns the largest sample value, or 0 if empty.
func (d *Dataset) Max() float64 {
	if len(d.samples) == 0 {
		return 0
	}
	d.ensureSorted()
	return d.samples[len(d.samples)-1].Value
}

// FractionAtOrBelow returns the fraction of total weight with value <= v,
// i.e. the empirical CDF evaluated at v. Returns 0 for empty datasets.
func (d *Dataset) FractionAtOrBelow(v float64) float64 {
	if d.total == 0 {
		return 0
	}
	d.ensureSorted()
	// Binary search for the first sample > v, then sum the prefix weight.
	idx := sort.Search(len(d.samples), func(i int) bool { return d.samples[i].Value > v })
	var cum float64
	for i := 0; i < idx; i++ {
		cum += d.samples[i].Weight
	}
	return cum / d.total
}

// Box holds the five box-plot percentiles used in every box plot in the
// paper: 5th, 25th, 50th, 75th and 95th.
type Box struct {
	P5, P25, P50, P75, P95 float64
}

// BoxStats returns the five-number box summary of the dataset.
func (d *Dataset) BoxStats() Box {
	return Box{
		P5:  d.Percentile(5),
		P25: d.Percentile(25),
		P50: d.Percentile(50),
		P75: d.Percentile(75),
		P95: d.Percentile(95),
	}
}

// String renders the box as "p5/p25/p50/p75/p95".
func (b Box) String() string {
	return fmt.Sprintf("%.0f/%.0f/%.0f/%.0f/%.0f", b.P5, b.P25, b.P50, b.P75, b.P95)
}

// CDFPoint is one point of an empirical CDF: CumFraction of the total
// weight has Value <= Value.
type CDFPoint struct {
	Value       float64
	CumFraction float64
}

// CDF returns the empirical weighted CDF sampled at up to maxPoints evenly
// spaced weight quantiles (plus the exact min and max). maxPoints <= 0
// defaults to 100.
func (d *Dataset) CDF(maxPoints int) []CDFPoint {
	if len(d.samples) == 0 {
		return nil
	}
	if maxPoints <= 0 {
		maxPoints = 100
	}
	d.ensureSorted()
	pts := make([]CDFPoint, 0, maxPoints+1)
	var cum float64
	step := d.total / float64(maxPoints)
	next := step
	for i, s := range d.samples {
		cum += s.Weight
		if cum >= next || i == len(d.samples)-1 {
			pts = append(pts, CDFPoint{Value: s.Value, CumFraction: cum / d.total})
			for next <= cum {
				next += step
			}
		}
	}
	return pts
}

// HistogramBin is one bin of a histogram over [Lo, Hi) holding Fraction of
// the total weight.
type HistogramBin struct {
	Lo, Hi   float64
	Fraction float64
}

// LogHistogram builds a histogram with binsPerDecade log10-spaced bins
// between lo and hi (both > 0). Values below lo fall into the first bin and
// values at or above hi into the last, so the fractions always sum to 1 for
// a non-empty dataset. This mirrors the paper's distance histograms
// (Figs 5, 7), which use a log-10 distance axis.
func (d *Dataset) LogHistogram(lo, hi float64, binsPerDecade int) []HistogramBin {
	if lo <= 0 || hi <= lo || binsPerDecade <= 0 || d.total == 0 {
		return nil
	}
	decades := math.Log10(hi / lo)
	n := int(math.Ceil(decades * float64(binsPerDecade)))
	if n < 1 {
		n = 1
	}
	bins := make([]HistogramBin, n)
	logLo := math.Log10(lo)
	width := decades / float64(n)
	for i := range bins {
		bins[i].Lo = math.Pow(10, logLo+float64(i)*width)
		bins[i].Hi = math.Pow(10, logLo+float64(i+1)*width)
	}
	for _, s := range d.samples {
		var idx int
		if s.Value < lo {
			idx = 0
		} else {
			idx = int((math.Log10(s.Value) - logLo) / width)
			if idx >= n {
				idx = n - 1
			}
			if idx < 0 {
				idx = 0
			}
		}
		bins[idx].Fraction += s.Weight / d.total
	}
	return bins
}

// LinearHistogram builds nBins equal-width bins over [lo, hi), with
// out-of-range values clamped into the end bins.
func (d *Dataset) LinearHistogram(lo, hi float64, nBins int) []HistogramBin {
	if hi <= lo || nBins <= 0 || d.total == 0 {
		return nil
	}
	bins := make([]HistogramBin, nBins)
	width := (hi - lo) / float64(nBins)
	for i := range bins {
		bins[i].Lo = lo + float64(i)*width
		bins[i].Hi = lo + float64(i+1)*width
	}
	for _, s := range d.samples {
		idx := int((s.Value - lo) / width)
		if idx < 0 {
			idx = 0
		}
		if idx >= nBins {
			idx = nBins - 1
		}
		bins[idx].Fraction += s.Weight / d.total
	}
	return bins
}
