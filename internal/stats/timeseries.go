package stats

import (
	"sort"
	"time"
)

// TimeSeries accumulates (timestamp, value, weight) observations and reports
// per-bucket weighted means — the "daily mean" curves of Figs 13, 15, 17, 19
// and the monthly volumes of Fig 12.
// The zero value is ready to use.
type TimeSeries struct {
	obs []timedSample
}

type timedSample struct {
	at     time.Time
	value  float64
	weight float64
}

// Add records one observation. Non-positive weights are ignored.
func (ts *TimeSeries) Add(at time.Time, value, weight float64) {
	if weight <= 0 {
		return
	}
	ts.obs = append(ts.obs, timedSample{at, value, weight})
}

// Len returns the number of retained observations.
func (ts *TimeSeries) Len() int { return len(ts.obs) }

// Merge appends every observation of other to ts, leaving other unchanged.
// Like Dataset.Merge, merging per-shard series in shard order yields the
// same series as sequential Adds in that order.
func (ts *TimeSeries) Merge(other *TimeSeries) {
	if other == nil {
		return
	}
	ts.obs = append(ts.obs, other.obs...)
}

// BucketPoint is one aggregated point of a bucketed time series.
type BucketPoint struct {
	Start  time.Time // inclusive start of the bucket
	Mean   float64   // weighted mean of values in the bucket
	Weight float64   // total weight (e.g. measurement count) in the bucket
}

// DailyMeans buckets observations by UTC calendar day and returns the
// weighted mean per day, sorted by day. Days with no observations are
// omitted.
func (ts *TimeSeries) DailyMeans() []BucketPoint {
	return ts.bucketMeans(func(t time.Time) time.Time {
		y, m, d := t.UTC().Date()
		return time.Date(y, m, d, 0, 0, 0, 0, time.UTC)
	})
}

// MonthlyMeans buckets observations by UTC calendar month.
func (ts *TimeSeries) MonthlyMeans() []BucketPoint {
	return ts.bucketMeans(func(t time.Time) time.Time {
		y, m, _ := t.UTC().Date()
		return time.Date(y, m, 1, 0, 0, 0, 0, time.UTC)
	})
}

func (ts *TimeSeries) bucketMeans(truncate func(time.Time) time.Time) []BucketPoint {
	type agg struct{ sum, weight float64 }
	buckets := make(map[time.Time]*agg)
	for _, o := range ts.obs {
		k := truncate(o.at)
		a := buckets[k]
		if a == nil {
			a = &agg{}
			buckets[k] = a
		}
		a.sum += o.value * o.weight
		a.weight += o.weight
	}
	out := make([]BucketPoint, 0, len(buckets))
	for k, a := range buckets {
		out = append(out, BucketPoint{Start: k, Mean: a.sum / a.weight, Weight: a.weight})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start.Before(out[j].Start) })
	return out
}

// Window returns a Dataset containing the observations with from <= t < to,
// for computing before/after CDFs around the roll-out window.
func (ts *TimeSeries) Window(from, to time.Time) *Dataset {
	var d Dataset
	for _, o := range ts.obs {
		if !o.at.Before(from) && o.at.Before(to) {
			d.Add(o.value, o.weight)
		}
	}
	return &d
}
