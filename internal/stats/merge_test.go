package stats

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

// TestMergeEquivalentToSequentialAdds is the contract parallel sweeps rely
// on: merge(a, b) must be indistinguishable — bit for bit — from adding
// a's samples then b's samples to one dataset.
func TestMergeEquivalentToSequentialAdds(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	type obs struct{ v, w float64 }
	mkObs := func(n int) []obs {
		out := make([]obs, n)
		for i := range out {
			out[i] = obs{rng.NormFloat64() * 100, rng.Float64() * 3}
		}
		return out
	}
	a, b := mkObs(500), mkObs(700)

	var merged, direct Dataset
	for _, o := range a {
		merged.Add(o.v, o.w)
		direct.Add(o.v, o.w)
	}
	var part Dataset
	for _, o := range b {
		part.Add(o.v, o.w)
		direct.Add(o.v, o.w)
	}
	merged.Merge(&part)

	if merged.Len() != direct.Len() {
		t.Fatalf("Len: merged %d vs direct %d", merged.Len(), direct.Len())
	}
	if math.Float64bits(merged.TotalWeight()) != math.Float64bits(direct.TotalWeight()) {
		t.Errorf("TotalWeight differs bitwise: %v vs %v", merged.TotalWeight(), direct.TotalWeight())
	}
	for _, p := range []float64{0, 1, 5, 25, 50, 75, 95, 99, 100} {
		if got, want := merged.Percentile(p), direct.Percentile(p); got != want {
			t.Errorf("P%.0f: merged %v vs direct %v", p, got, want)
		}
	}
	if got, want := merged.Mean(), direct.Mean(); got != want {
		t.Errorf("Mean: merged %v vs direct %v", got, want)
	}
	if got, want := merged.FractionAtOrBelow(0), direct.FractionAtOrBelow(0); got != want {
		t.Errorf("FractionAtOrBelow: merged %v vs direct %v", got, want)
	}
}

func TestMergeWeightedPercentiles(t *testing.T) {
	// Two halves of a known weighted distribution: values 1..10, value v
	// carrying weight v, split across two datasets.
	var a, b, whole Dataset
	for v := 1; v <= 10; v++ {
		whole.Add(float64(v), float64(v))
		if v%2 == 0 {
			a.Add(float64(v), float64(v))
		} else {
			b.Add(float64(v), float64(v))
		}
	}
	a.Merge(&b)
	if a.TotalWeight() != 55 {
		t.Fatalf("merged total weight %v, want 55", a.TotalWeight())
	}
	for _, p := range []float64{10, 50, 90} {
		if got, want := a.Percentile(p), whole.Percentile(p); got != want {
			t.Errorf("P%.0f after merge = %v, want %v", p, got, want)
		}
	}
}

func TestMergeEmptyAndNil(t *testing.T) {
	var d Dataset
	d.Add(1, 1)
	d.Merge(nil)
	d.Merge(&Dataset{})
	if d.Len() != 1 || d.TotalWeight() != 1 {
		t.Fatalf("merge of empty changed dataset: len %d total %v", d.Len(), d.TotalWeight())
	}
	var empty Dataset
	empty.Merge(&d)
	if empty.Len() != 1 || empty.Median() != 1 {
		t.Fatalf("merge into empty: len %d median %v", empty.Len(), empty.Median())
	}
}

func TestMergeAfterQuerying(t *testing.T) {
	// Querying sorts lazily; a merge afterwards must invalidate the cached
	// order so later percentiles see the combined data.
	var a, b Dataset
	a.Add(10, 1)
	a.Add(20, 1)
	if a.Median() != 10 {
		t.Fatalf("pre-merge median %v", a.Median())
	}
	b.Add(1, 10)
	a.Merge(&b)
	if got := a.Median(); got != 1 {
		t.Errorf("post-merge median %v, want 1", got)
	}
}

func TestTimeSeriesMerge(t *testing.T) {
	base := time.Date(2014, 3, 1, 0, 0, 0, 0, time.UTC)
	var a, b, whole TimeSeries
	for i := 0; i < 48; i++ {
		at := base.Add(time.Duration(i) * time.Hour)
		v, w := float64(i), 1+float64(i%3)
		whole.Add(at, v, w)
		if i%2 == 0 {
			a.Add(at, v, w)
		} else {
			b.Add(at, v, w)
		}
	}
	a.Merge(&b)
	if a.Len() != whole.Len() {
		t.Fatalf("merged len %d, want %d", a.Len(), whole.Len())
	}
	got, want := a.DailyMeans(), whole.DailyMeans()
	if len(got) != len(want) {
		t.Fatalf("daily buckets %d vs %d", len(got), len(want))
	}
	for i := range got {
		if !got[i].Start.Equal(want[i].Start) || got[i].Mean != want[i].Mean || got[i].Weight != want[i].Weight {
			t.Errorf("bucket %d: %+v vs %+v", i, got[i], want[i])
		}
	}
	gw, ww := a.Window(base, base.AddDate(0, 0, 1)), whole.Window(base, base.AddDate(0, 0, 1))
	if gw.Len() != ww.Len() || gw.Mean() != ww.Mean() {
		t.Errorf("window after merge: len %d mean %v, want len %d mean %v",
			gw.Len(), gw.Mean(), ww.Len(), ww.Mean())
	}
}
