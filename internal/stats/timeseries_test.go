package stats

import (
	"math"
	"testing"
	"time"
)

func day(y int, m time.Month, d int) time.Time {
	return time.Date(y, m, d, 0, 0, 0, 0, time.UTC)
}

func TestDailyMeans(t *testing.T) {
	var ts TimeSeries
	ts.Add(day(2014, 3, 1).Add(2*time.Hour), 100, 1)
	ts.Add(day(2014, 3, 1).Add(20*time.Hour), 200, 1)
	ts.Add(day(2014, 3, 3), 50, 2)
	pts := ts.DailyMeans()
	if len(pts) != 2 {
		t.Fatalf("got %d buckets, want 2", len(pts))
	}
	if !pts[0].Start.Equal(day(2014, 3, 1)) || pts[0].Mean != 150 || pts[0].Weight != 2 {
		t.Errorf("day 1 bucket = %+v", pts[0])
	}
	if !pts[1].Start.Equal(day(2014, 3, 3)) || pts[1].Mean != 50 {
		t.Errorf("day 3 bucket = %+v", pts[1])
	}
}

func TestDailyMeansSorted(t *testing.T) {
	var ts TimeSeries
	for i := 30; i >= 1; i-- {
		ts.Add(day(2014, 4, i), float64(i), 1)
	}
	pts := ts.DailyMeans()
	for i := 1; i < len(pts); i++ {
		if !pts[i-1].Start.Before(pts[i].Start) {
			t.Fatal("daily means not sorted by day")
		}
	}
}

func TestMonthlyMeans(t *testing.T) {
	var ts TimeSeries
	ts.Add(day(2014, 1, 5), 10, 1)
	ts.Add(day(2014, 1, 25), 30, 1)
	ts.Add(day(2014, 2, 10), 100, 4)
	pts := ts.MonthlyMeans()
	if len(pts) != 2 {
		t.Fatalf("got %d months, want 2", len(pts))
	}
	if pts[0].Mean != 20 || pts[0].Weight != 2 {
		t.Errorf("Jan = %+v", pts[0])
	}
	if pts[1].Mean != 100 || pts[1].Weight != 4 {
		t.Errorf("Feb = %+v", pts[1])
	}
}

func TestWindow(t *testing.T) {
	var ts TimeSeries
	ts.Add(day(2014, 3, 1), 1, 1)
	ts.Add(day(2014, 3, 15), 2, 1)
	ts.Add(day(2014, 4, 20), 3, 1)
	d := ts.Window(day(2014, 3, 10), day(2014, 4, 1))
	if d.Len() != 1 {
		t.Fatalf("window retained %d samples, want 1", d.Len())
	}
	if math.Abs(d.Mean()-2) > 1e-12 {
		t.Errorf("window mean = %v, want 2", d.Mean())
	}
}

func TestWindowBoundaries(t *testing.T) {
	var ts TimeSeries
	at := day(2014, 3, 10)
	ts.Add(at, 5, 1)
	if ts.Window(at, at.Add(time.Hour)).Len() != 1 {
		t.Error("window start should be inclusive")
	}
	if ts.Window(at.Add(-time.Hour), at).Len() != 0 {
		t.Error("window end should be exclusive")
	}
}

func TestTimeSeriesIgnoresZeroWeight(t *testing.T) {
	var ts TimeSeries
	ts.Add(day(2014, 1, 1), 5, 0)
	ts.Add(day(2014, 1, 1), 5, -1)
	if ts.Len() != 0 {
		t.Errorf("Len = %d, want 0", ts.Len())
	}
}
