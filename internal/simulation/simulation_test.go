package simulation

import (
	"net/netip"
	"testing"
	"time"

	"eum/internal/cdn"
	"eum/internal/netmodel"
	"eum/internal/world"
)

var (
	testW = world.MustGenerate(world.Config{Seed: 61, NumBlocks: 5000})
	testP = cdn.MustGenerateUniverse(testW, cdn.Config{Seed: 61, NumDeployments: 400, ServersPerDeployment: 6})
	net   = netmodel.NewDefault()
)

// smallRollout runs a shortened roll-out simulation shared by tests.
func smallRollout(t *testing.T) *RolloutResult {
	t.Helper()
	cfg := DefaultRolloutConfig()
	cfg.Start = time.Date(2014, 3, 1, 0, 0, 0, 0, time.UTC)
	cfg.End = time.Date(2014, 5, 10, 0, 0, 0, 0, time.UTC)
	cfg.DailyMeasurements = 80
	res, err := RunRollout(testW, testP, net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

var cachedRollout *RolloutResult

func rollout(t *testing.T) *RolloutResult {
	if cachedRollout == nil {
		cachedRollout = smallRollout(t)
	}
	return cachedRollout
}

func TestRolloutRejectsEmptyPeriod(t *testing.T) {
	cfg := DefaultRolloutConfig()
	cfg.End = cfg.Start
	if _, err := RunRollout(testW, testP, net, cfg); err == nil {
		t.Error("empty period accepted")
	}
}

func TestRolloutMappingDistanceDrops(t *testing.T) {
	res := rollout(t)
	before, after := BeforeAfter(&res.MappingDistance, true, res)
	if before.Len() == 0 || after.Len() == 0 {
		t.Fatal("missing before/after data")
	}
	ratio := before.Mean() / after.Mean()
	// Paper: ~8x for high-expectation countries. Our synthetic geography
	// concentrates clients near deployment metros, so the drop is at
	// least as sharp; require a strong multi-fold improvement.
	if ratio < 5 {
		t.Errorf("high-exp mapping distance ratio = %.1fx, want >= 5x", ratio)
	}
	lb, la := BeforeAfter(&res.MappingDistance, false, res)
	lowRatio := lb.Mean() / la.Mean()
	if lowRatio < 1.2 {
		t.Errorf("low-exp group saw no improvement: %.2fx", lowRatio)
	}
}

func TestRolloutRTTHalves(t *testing.T) {
	res := rollout(t)
	before, after := BeforeAfter(&res.RTT, true, res)
	ratio := before.Mean() / after.Mean()
	// Paper: two-fold decrease for the high-expectation group.
	if ratio < 1.6 || ratio > 6 {
		t.Errorf("high-exp RTT ratio = %.2fx, want ~2-4x", ratio)
	}
	lb, la := BeforeAfter(&res.RTT, false, res)
	if low := lb.Mean() / la.Mean(); low >= ratio {
		t.Errorf("low-exp RTT gain (%.2fx) should be below high-exp (%.2fx)", low, ratio)
	}
}

func TestRolloutTTFBImprovesModestly(t *testing.T) {
	res := rollout(t)
	before, after := BeforeAfter(&res.TTFB, true, res)
	improvement := 1 - after.Mean()/before.Mean()
	// Paper: ~30% improvement — far less than RTT's 50% because page
	// construction is not mapping-sensitive.
	if improvement < 0.15 || improvement > 0.55 {
		t.Errorf("high-exp TTFB improvement = %.0f%%, want ~30%%", 100*improvement)
	}
	rttB, rttA := BeforeAfter(&res.RTT, true, res)
	rttImprovement := 1 - rttA.Mean()/rttB.Mean()
	if improvement >= rttImprovement {
		t.Errorf("TTFB improvement (%.0f%%) should be below RTT improvement (%.0f%%)",
			100*improvement, 100*rttImprovement)
	}
}

func TestRolloutDownloadHalves(t *testing.T) {
	res := rollout(t)
	before, after := BeforeAfter(&res.Download, true, res)
	ratio := before.Mean() / after.Mean()
	// Paper: two-fold decrease in content download time. Download means are
	// heavy-tailed (transfer time divides by per-block throughput), so the
	// measured ratio swings with the sampling stream; require a clear
	// multi-fold decrease within a loose sanity ceiling.
	if ratio < 1.5 || ratio > 8 {
		t.Errorf("high-exp download ratio = %.2fx, want ~2x", ratio)
	}
}

func TestRolloutAllPercentilesImprove(t *testing.T) {
	// Paper (Figs 14,16,18,20): "all percentiles see improvement".
	res := rollout(t)
	for _, tc := range []struct {
		name string
		g    *GroupSeries
	}{
		{"mapping-distance", &res.MappingDistance},
		{"rtt", &res.RTT},
		{"ttfb", &res.TTFB},
		{"download", &res.Download},
	} {
		before, after := BeforeAfter(tc.g, true, res)
		for _, p := range []float64{25, 50, 75, 90} {
			if after.Percentile(p) > before.Percentile(p) {
				t.Errorf("%s P%.0f regressed: %.1f -> %.1f",
					tc.name, p, before.Percentile(p), after.Percentile(p))
			}
		}
	}
}

func TestRolloutTimelineTransitions(t *testing.T) {
	// Daily means should be high before the window, low after, and the
	// roll-out period itself should be where the transition happens.
	res := rollout(t)
	days := res.MappingDistance.High.DailyMeans()
	if len(days) < 30 {
		t.Fatalf("only %d daily points", len(days))
	}
	var preSum, postSum float64
	var preN, postN int
	for _, d := range days {
		switch {
		case d.Start.Before(res.RolloutStart):
			preSum += d.Mean
			preN++
		case d.Start.After(res.RolloutEnd):
			postSum += d.Mean
			postN++
		}
	}
	if preN == 0 || postN == 0 {
		t.Fatal("timeline does not straddle the roll-out window")
	}
	if preSum/float64(preN) <= postSum/float64(postN) {
		t.Error("daily mean mapping distance did not drop across the roll-out")
	}
}

func TestRolloutMeasurementVolumeGrows(t *testing.T) {
	// Fig 12: measurement volume rises over the period.
	res := rollout(t)
	months := res.RTT.High.MonthlyMeans()
	if len(months) < 2 {
		t.Skip("period too short for monthly comparison")
	}
	// Compare full months only (first and last may be partial).
	if months[1].Weight <= 0 {
		t.Error("no weight in second month")
	}
}

func TestQueryRateIncrease(t *testing.T) {
	cfg := DefaultQueryRateConfig()
	cfg.Days = 24
	cfg.RolloutStartDay, cfg.RolloutEndDay = 8, 14
	cfg.EventsPerWindow = 120000
	up := &FixedUpstream{TTL: 20 * time.Second, Scope: 24}
	pts, err := RunQueryRate(testW, cfg, up)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != cfg.Days {
		t.Fatalf("points = %d", len(pts))
	}
	pre := pts[4]
	post := pts[len(pts)-1]
	pubFactor := post.PublicAuthQPS / pre.PublicAuthQPS
	// Paper: ~8x increase in public-resolver query rate. Our density is
	// compute-bounded; require a sharp multi-fold increase.
	if pubFactor < 2.5 {
		t.Errorf("public query factor = %.1fx, want >= 2.5x", pubFactor)
	}
	if post.AuthQPS <= pre.AuthQPS {
		t.Error("total authoritative rate did not rise")
	}
	// Total rate rises far less than the public component (ISP resolvers
	// unchanged; Fig 23: 870K -> 1.17M total vs 8x public).
	totalFactor := post.AuthQPS / pre.AuthQPS
	if totalFactor >= pubFactor {
		t.Errorf("total factor %.2fx should be below public factor %.2fx", totalFactor, pubFactor)
	}
	// Client-side rate is unaffected by the roll-out except growth.
	if post.ClientQPS/pre.ClientQPS > 1.3 {
		t.Errorf("client growth %.2fx exceeds organic trend", post.ClientQPS/pre.ClientQPS)
	}
	// DNS queries remain a small fraction of client requests (Fig 2).
	if pre.AuthQPS >= pre.ClientQPS {
		t.Error("authoritative rate should be below client request rate")
	}
}

func TestQueryRateValidation(t *testing.T) {
	up := &FixedUpstream{TTL: time.Second, Scope: 24}
	if _, err := RunQueryRate(testW, QueryRateConfig{Days: 0, EventsPerWindow: 10}, up); err == nil {
		t.Error("zero days accepted")
	}
	if _, err := RunPopularity(testW, QueryRateConfig{}, up); err == nil {
		t.Error("zero events accepted")
	}
}

func TestPopularityFactorRisesWithPopularity(t *testing.T) {
	cfg := DefaultQueryRateConfig()
	cfg.EventsPerWindow = 120000
	up := &FixedUpstream{TTL: 20 * time.Second, Scope: 24}
	buckets, err := RunPopularity(testW, cfg, up)
	if err != nil {
		t.Fatal(err)
	}
	if len(buckets) < 3 {
		t.Fatalf("only %d buckets", len(buckets))
	}
	first, last := buckets[0], buckets[len(buckets)-1]
	// Fig 24: popular (domain, LDNS) pairs see the largest factor
	// increase; unpopular ones see little or none.
	if last.FactorIncrease <= first.FactorIncrease {
		t.Errorf("factor not rising with popularity: %.1f .. %.1f",
			first.FactorIncrease, last.FactorIncrease)
	}
	if last.FactorIncrease < 4 {
		t.Errorf("top bucket factor = %.1f, want >= 4", last.FactorIncrease)
	}
	if first.FactorIncrease > 2 {
		t.Errorf("bottom bucket factor = %.1f, want <= 2", first.FactorIncrease)
	}
	for _, b := range buckets {
		if b.PreQueryShare < 0 || b.PreQueryShare > 1 {
			t.Errorf("bucket share out of range: %+v", b)
		}
	}
}

func TestFixedUpstream(t *testing.T) {
	up := &FixedUpstream{TTL: 7 * time.Second, Scope: 20}
	a, err := up.Resolve("x.net", hostInBlock(testW.Blocks[0]), testW.Blocks[0].Prefix)
	if err != nil {
		t.Fatal(err)
	}
	if a.TTL != 7*time.Second || a.ScopePrefix != 20 || len(a.Servers) == 0 {
		t.Errorf("answer = %+v", a)
	}
	// Without ECS, scope must be 0.
	a, _ = up.Resolve("x.net", hostInBlock(testW.Blocks[0]), netip.Prefix{})
	if a.ScopePrefix != 0 {
		t.Errorf("no-ECS scope = %d", a.ScopePrefix)
	}
}

func TestHostInBlock(t *testing.T) {
	b := testW.Blocks[0]
	h := hostInBlock(b)
	if !b.Prefix.Contains(h) {
		t.Errorf("host %v outside block %v", h, b.Prefix)
	}
}

func TestBroadRollout(t *testing.T) {
	res, err := RunBroadRollout(testW, testP, net, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stages) != 3 {
		t.Fatalf("stages = %d", len(res.Stages))
	}
	noECS, public, universal := res.Stages[0], res.Stages[1], res.Stages[2]
	// Each adoption stage improves global performance.
	if !(universal.MeanRTTMs < public.MeanRTTMs && public.MeanRTTMs < noECS.MeanRTTMs) {
		t.Errorf("RTT not improving with adoption: %.1f -> %.1f -> %.1f",
			noECS.MeanRTTMs, public.MeanRTTMs, universal.MeanRTTMs)
	}
	if !(universal.MeanDistance < public.MeanDistance && public.MeanDistance < noECS.MeanDistance) {
		t.Errorf("distance not improving: %.0f -> %.0f -> %.0f",
			noECS.MeanDistance, public.MeanDistance, universal.MeanDistance)
	}
	// Universal adoption is a large improvement over public-only (the §8
	// argument for ISP adoption)...
	if universal.MeanRTTMs > public.MeanRTTMs*0.95 {
		t.Errorf("universal adoption gained little: %.1f vs %.1f",
			universal.MeanRTTMs, public.MeanRTTMs)
	}
	// ...but costs more authoritative queries (the §5 price).
	if !(universal.AuthQueryMultiplier > public.AuthQueryMultiplier &&
		public.AuthQueryMultiplier > noECS.AuthQueryMultiplier) {
		t.Errorf("query multipliers not increasing: %.2f, %.2f, %.2f",
			noECS.AuthQueryMultiplier, public.AuthQueryMultiplier, universal.AuthQueryMultiplier)
	}
	if noECS.AuthQueryMultiplier != 1 {
		t.Errorf("baseline multiplier = %.2f", noECS.AuthQueryMultiplier)
	}
	if universal.AuthQueryMultiplier < 1.5 {
		t.Errorf("universal adoption multiplier = %.2f, want a clear increase", universal.AuthQueryMultiplier)
	}
}

func TestRolloutSurvivesFailureChurn(t *testing.T) {
	// The roll-out simulation with a random failure process churning 10%
	// of servers per day: every measurement must still be produced, and
	// the roll-out improvement must still show through the churn.
	cfg := DefaultRolloutConfig()
	cfg.Start = time.Date(2014, 3, 10, 0, 0, 0, 0, time.UTC)
	cfg.End = time.Date(2014, 5, 1, 0, 0, 0, 0, time.UTC)
	cfg.DailyMeasurements = 60
	cfg.Faults = &cdn.RandomFaults{P: 0.1, EpochLength: 24 * time.Hour, Seed: 7}
	// A private platform: the monitor mutates liveness.
	p := cdn.MustGenerateUniverse(testW, cdn.Config{Seed: 77, NumDeployments: 300, ServersPerDeployment: 6})
	res, err := RunRollout(testW, p, net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	before, after := BeforeAfter(&res.MappingDistance, true, res)
	if before.Len() == 0 || after.Len() == 0 {
		t.Fatal("missing measurements under churn")
	}
	if after.Mean() >= before.Mean() {
		t.Errorf("roll-out improvement lost under churn: %.0f -> %.0f", before.Mean(), after.Mean())
	}
	// Servers must all be alive again afterwards is not guaranteed (the
	// monitor leaves the last epoch's state); restore for other tests.
	for _, d := range p.Deployments {
		for _, s := range d.Servers {
			s.SetAlive(true)
		}
	}
}
