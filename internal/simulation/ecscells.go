package simulation

import (
	"fmt"
	"net/netip"
	"time"

	"eum/internal/cdn"
	"eum/internal/demand"
	"eum/internal/mapping"
	"eum/internal/netmodel"
	"eum/internal/par"
	"eum/internal/resolver"
	"eum/internal/rum"
	"eum/internal/stats"
	"eum/internal/world"
)

// ECSCell is one configuration of the resolver population: which LDNSes
// forward ECS, and at what truncation. Cell grids sweep adoption against
// prefix length for the public-resolver era experiments (EU-mapping win
// vs a /20 ECS reveal; query amplification vs prefix length).
type ECSCell struct {
	// Name labels the cell in results.
	Name string
	// Enabled decides whether a given LDNS forwards ECS in this cell.
	// nil means no resolver does.
	Enabled func(l *world.LDNS) bool
	// PrefixV4 / PrefixV6 override every enabled resolver's source prefix
	// length. 0 defers to the site's own provider policy (a truncating
	// provider's /20, say), then to the /24 and /56 conventions.
	PrefixV4, PrefixV6 uint8
}

// ECSCellResult is one cell's outcome over the whole client population.
type ECSCellResult struct {
	Name string
	// MeanRTTMs / P95RTTMs are demand-weighted over ALL clients.
	MeanRTTMs float64
	P95RTTMs  float64
	// MeanDistance is the demand-weighted mean mapping distance (miles).
	MeanDistance float64
	// AuthQPS is the authoritative query rate under the dense replay.
	AuthQPS float64
	// AuthQueryMultiplier is AuthQPS relative to the grid's first cell
	// (conventionally the no-ECS baseline).
	AuthQueryMultiplier float64
	// AuthQPSPublic is the slice of AuthQPS contributed by public-resolver
	// LDNSes, and PublicQueryMultiplier its ratio to the first cell's.
	// The paper's 8x amplification (§5.1) is this number: public resolvers'
	// own query volume, not the total across every ISP resolver.
	AuthQPSPublic         float64
	PublicQueryMultiplier float64
	// CacheEntries is the total live resolver-cache entry count at the end
	// of the dense replay — the §5.2 memory-side cost of the cell.
	CacheEntries int
}

// ldnsResolverConfig builds a site's resolver configuration: the source
// prefixes come from the site's provider ECS policy (a truncating public
// provider stamps /20 (/56) on its sites), overridable per cell, with the
// /24 and /56 conventions as the final default.
func ldnsResolverConfig(l *world.LDNS, enabled bool, pfx4, pfx6 uint8) resolver.Config {
	cfg := resolver.Config{Addr: l.Addr, ECSEnabled: enabled, SourcePrefix: 24}
	if l.ECSPrefixV4 > 0 {
		cfg.SourcePrefix = l.ECSPrefixV4
	}
	if l.ECSPrefixV6 > 0 {
		cfg.SourcePrefix6 = l.ECSPrefixV6
	}
	if pfx4 > 0 {
		cfg.SourcePrefix = pfx4
	}
	if pfx6 > 0 {
		cfg.SourcePrefix6 = pfx6
	}
	return cfg
}

// RunECSCells evaluates each cell on one substrate: every client block
// resolves and is measured through per-LDNS caching resolvers configured
// per the cell, then an identical dense query workload replays through
// the same caches for the authoritative-rate and cache-size cost. All
// cells read the same pinned map snapshot, so differences between cells
// are purely resolver-population effects. Results are deterministic in
// (world, platform, seed) and invariant to the worker count.
func RunECSCells(w *world.World, p *cdn.Platform, net *netmodel.Model, seed int64, cells []ECSCell) ([]ECSCellResult, error) {
	if len(cells) == 0 {
		return nil, fmt.Errorf("simulation: no ECS cells")
	}
	sys := mapping.NewSystem(w, p, net, mapping.Config{Policy: mapping.EndUser, PingTargets: len(w.Blocks) / 10})
	up := &resolver.SystemUpstream{System: sys, Snapshot: sys.Current()}
	rumModel := rum.NewModel(net)

	depByAddr := map[netip.Addr]*cdn.Deployment{}
	for _, d := range p.Deployments {
		for _, s := range d.Servers {
			depByAddr[s.Addr] = d
		}
	}

	// Group block indices by LDNS (first-seen order): a resolver's cache
	// sees only its own clients' queries, in block order, so groups replay
	// concurrently and the per-group datasets merge in a fixed order.
	var ldnsOrder []*world.LDNS
	blocksByLDNS := map[uint64][]int{}
	for i, b := range w.Blocks {
		if _, ok := blocksByLDNS[b.LDNS.ID]; !ok {
			ldnsOrder = append(ldnsOrder, b.LDNS)
		}
		blocksByLDNS[b.LDNS.ID] = append(blocksByLDNS[b.LDNS.ID], i)
	}

	var out []ECSCellResult
	var baselineQPS, baselinePubQPS float64
	for ci, cell := range cells {
		// Fresh resolvers per cell.
		resolvers := map[uint64]*resolver.Resolver{}
		for _, l := range w.LDNSes {
			enabled := cell.Enabled != nil && cell.Enabled(l)
			r, err := resolver.New(ldnsResolverConfig(l, enabled, cell.PrefixV4, cell.PrefixV6), up)
			if err != nil {
				return nil, err
			}
			resolvers[l.ID] = r
		}

		// Performance: every block resolves once and is measured, fanned
		// out per resolver. Timestamps stay tied to block index, exactly as
		// in a single serial pass over w.Blocks.
		base := time.Date(2014, 7, 1, 0, 0, 0, 0, time.UTC)
		type groupPart struct {
			rtt, dist stats.Dataset
			err       error
		}
		parts := par.Map(len(ldnsOrder), func(gi int) *groupPart {
			gp := &groupPart{}
			r := resolvers[ldnsOrder[gi].ID]
			for _, bi := range blocksByLDNS[ldnsOrder[gi].ID] {
				b := w.Blocks[bi]
				now := base.Add(time.Duration(bi) * time.Second)
				ans, err := r.Query(now, "broad.cdn.example.net", hostInBlock(b))
				if err != nil {
					gp.err = err
					return gp
				}
				dep := depByAddr[ans.Servers[0]]
				if dep == nil {
					gp.err = fmt.Errorf("simulation: unknown server %v", ans.Servers[0])
					return gp
				}
				gp.rtt.Add(net.BaseRTTMs(b.Endpoint(), dep.Endpoint()), b.Demand)
				m := rumModel.Measure(now, b, demand.Domain{Name: "broad", DynamicFraction: 0.5, PageBytes: 100_000}, dep, 1)
				gp.dist.Add(m.MappingDistance, b.Demand)
			}
			return gp
		})
		var rtt, dist stats.Dataset
		for _, gp := range parts {
			if gp.err != nil {
				return nil, gp.err
			}
			rtt.Merge(&gp.rtt)
			dist.Merge(&gp.dist)
		}
		for _, r := range resolvers {
			r.Flush()
		}

		// Query-rate and cache-size cost: a dense identical workload.
		qps, pubQPS, entries, err := stageQueryRate(w, resolvers, seed)
		if err != nil {
			return nil, err
		}
		res := ECSCellResult{
			Name:          cell.Name,
			MeanRTTMs:     rtt.Mean(),
			P95RTTMs:      rtt.Percentile(95),
			MeanDistance:  dist.Mean(),
			AuthQPS:       qps,
			AuthQPSPublic: pubQPS,
			CacheEntries:  entries,
		}
		if ci == 0 {
			baselineQPS, baselinePubQPS = qps, pubQPS
		}
		if baselineQPS > 0 {
			res.AuthQueryMultiplier = qps / baselineQPS
		}
		if baselinePubQPS > 0 {
			res.PublicQueryMultiplier = pubQPS / baselinePubQPS
		}
		out = append(out, res)
	}
	return out, nil
}
