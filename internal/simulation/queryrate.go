package simulation

import (
	"fmt"
	"math/rand"
	"net/netip"
	"sort"
	"time"

	"eum/internal/demand"
	"eum/internal/par"
	"eum/internal/resolver"
	"eum/internal/world"
)

// QueryRateConfig parameterises the authoritative-side DNS query-volume
// simulation behind Figs 2, 23 and 24.
type QueryRateConfig struct {
	Seed int64
	// Days is the timeline length.
	Days int
	// RolloutStartDay..RolloutEndDay is when public sites enable ECS.
	RolloutStartDay, RolloutEndDay int
	// WindowPerDay is the simulated slice of each day (query streams are
	// dense, so a window per day suffices to estimate rates).
	WindowPerDay time.Duration
	// EventsPerWindow is the number of client DNS queries simulated in
	// each day's window.
	EventsPerWindow int
	// TTL is the authoritative answer TTL.
	TTL time.Duration
	// Catalogue is the domain workload; nil builds a default.
	Catalogue *demand.Catalogue
}

// DefaultQueryRateConfig returns a timeline shaped like the paper's:
// 180 days with the roll-out around day 87-105.
func DefaultQueryRateConfig() QueryRateConfig {
	return QueryRateConfig{
		Seed:            1,
		Days:            180,
		RolloutStartDay: 87,
		RolloutEndDay:   105,
		WindowPerDay:    2 * time.Minute,
		EventsPerWindow: 200000,
		TTL:             20 * time.Second,
	}
}

// QueryRatePoint is one day's simulated rates, in queries per second.
type QueryRatePoint struct {
	Day int
	// ClientQPS is the client-side resolution rate arriving at LDNSes —
	// a proxy for client content requests (Fig 2's left axis).
	ClientQPS float64
	// AuthQPS is the rate of queries reaching the CDN's authoritative
	// name servers (Fig 2's right axis; Fig 23's y axis).
	AuthQPS float64
	// PublicAuthQPS is the share of AuthQPS from public resolvers.
	PublicAuthQPS float64
}

// FixedUpstream is a minimal authoritative stand-in for rate simulations:
// answers carry a constant TTL and are ECS-scoped at Scope when the query
// carries a subnet. (The query-rate effects of §5 depend only on TTL and
// scope semantics, not on which servers are answered; use
// resolver.SystemUpstream to run against the full mapping system instead.)
type FixedUpstream struct {
	TTL   time.Duration
	Scope uint8
}

// Resolve implements resolver.Upstream. The answered scope is clamped to
// the query's source prefix (RFC 7871 §7.2.1: y <= x) so a truncating
// resolver revealing /20 never receives a /24 scope it cannot file.
func (u *FixedUpstream) Resolve(domain string, ldns netip.Addr, subnet netip.Prefix) (resolver.Answer, error) {
	a := resolver.Answer{
		Servers: []netip.Addr{netip.AddrFrom4([4]byte{23, 0, 0, 1})},
		TTL:     u.TTL,
	}
	if subnet.IsValid() {
		a.ScopePrefix = u.Scope
		if int(a.ScopePrefix) > subnet.Bits() {
			a.ScopePrefix = uint8(subnet.Bits())
		}
	}
	return a, nil
}

// RunQueryRate simulates DNS query volumes before, during and after the
// roll-out. Each simulated day replays a fixed-size window of
// demand-weighted client queries through per-LDNS caching resolvers;
// public resolver sites enable ECS on a schedule inside the roll-out
// window. Growth in underlying traffic (~3%/month in the period) is
// applied on top, matching Fig 23's gradual rise outside the roll-out.
func RunQueryRate(w *world.World, cfg QueryRateConfig, up resolver.Upstream) ([]QueryRatePoint, error) {
	if cfg.Days <= 0 || cfg.EventsPerWindow <= 0 {
		return nil, fmt.Errorf("simulation: Days and EventsPerWindow must be positive")
	}
	if cfg.WindowPerDay <= 0 {
		cfg.WindowPerDay = 10 * time.Minute
	}
	if cfg.TTL <= 0 {
		cfg.TTL = 20 * time.Second
	}
	if cfg.Catalogue == nil {
		// Public-resolver query streams concentrate on popular domains;
		// a steep Zipf reproduces that concentration.
		cfg.Catalogue = demand.MustNewCatalogue(120, 1.35, cfg.Seed)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	up = pinUpstream(up)

	enableDay := drawEnableDays(w, cfg, rng)
	sampler, err := demand.NewSampler(w, nil)
	if err != nil {
		return nil, err
	}

	// Days are independent: caches carry within a day's window but never
	// across days (windows are a day apart, TTLs are seconds), and the old
	// serial loop flushed them at each day's end. Each day therefore builds
	// fresh resolvers — pre-set to that day's ECS state — samples its own
	// child-seeded workload, and reads its own metrics from zero.
	base := time.Date(2014, 1, 1, 12, 0, 0, 0, time.UTC)
	type dayPart struct {
		pt  QueryRatePoint
		err error
	}
	parts := par.Map(cfg.Days, func(day int) dayPart {
		resolvers := map[uint64]*resolver.Resolver{}
		for _, l := range w.LDNSes {
			ecs := false
			if d, ok := enableDay[l.ID]; ok && day >= d {
				ecs = true
			}
			r, err := resolver.New(ldnsResolverConfig(l, ecs, 0, 0), up)
			if err != nil {
				return dayPart{err: err}
			}
			resolvers[l.ID] = r
		}
		// Organic traffic growth over the period.
		grow := 1 + 0.18*float64(day)/float64(cfg.Days)
		events := int(float64(cfg.EventsPerWindow) * grow)

		windowStart := base.AddDate(0, 0, day)
		dayRNG := rand.New(rand.NewSource(par.ChildSeed(cfg.Seed, uint64(day))))
		step := cfg.WindowPerDay / time.Duration(events+1)
		for i := 0; i < events; i++ {
			now := windowStart.Add(time.Duration(i) * step)
			blk := sampler.Sample(dayRNG)
			dom := cfg.Catalogue.Sample(dayRNG)
			if _, err := resolvers[blk.LDNS.ID].Query(now, dom.Name, hostInBlock(blk)); err != nil {
				return dayPart{err: err}
			}
		}

		var auth, pub uint64
		for _, l := range w.LDNSes {
			n := resolvers[l.ID].Metrics.UpstreamQueries
			auth += n
			if l.IsPublic() {
				pub += n
			}
		}
		secs := cfg.WindowPerDay.Seconds()
		return dayPart{pt: QueryRatePoint{
			Day:           day,
			ClientQPS:     float64(events) / secs,
			AuthQPS:       float64(auth) / secs,
			PublicAuthQPS: float64(pub) / secs,
		}}
	})
	out := make([]QueryRatePoint, 0, cfg.Days)
	for _, p := range parts {
		if p.err != nil {
			return nil, p.err
		}
		out = append(out, p.pt)
	}
	return out, nil
}

// pinUpstream pins a mapping-system upstream to the snapshot published
// when the simulation starts, so every parallel day shard resolves against
// the same map epoch even if a control plane publishes concurrently.
// Other upstream kinds (and already-pinned ones) pass through unchanged.
func pinUpstream(up resolver.Upstream) resolver.Upstream {
	if su, ok := up.(*resolver.SystemUpstream); ok && su.Snapshot == nil {
		pinned := *su
		pinned.Snapshot = su.System.Current()
		return &pinned
	}
	return up
}

// drawEnableDays assigns each public site its ECS enable day, in world
// LDNS order so the schedule is a pure function of the seed. Sites of
// providers that never ship ECS (the public-resolver era's no-subnet
// operators) are excluded: they have no enable day at all.
func drawEnableDays(w *world.World, cfg QueryRateConfig, rng *rand.Rand) map[uint64]int {
	enableDay := map[uint64]int{}
	for _, l := range w.LDNSes {
		if !l.IsPublic() || !l.SupportsECS {
			continue
		}
		span := cfg.RolloutEndDay - cfg.RolloutStartDay
		if span < 1 {
			span = 1
		}
		enableDay[l.ID] = cfg.RolloutStartDay + rng.Intn(span)
	}
	return enableDay
}

// PopularityBucket is one bar of Fig 24: (domain, LDNS) pairs bucketed by
// their pre-roll-out popularity in authoritative queries per TTL, with the
// mean factor increase in query rate once ECS/EU mapping is enabled.
type PopularityBucket struct {
	// PopularityLo..PopularityHi is the bucket range in queries per TTL.
	PopularityLo, PopularityHi float64
	// FactorIncrease is the mean post/pre authoritative query-rate ratio.
	FactorIncrease float64
	// Pairs is the number of (domain, LDNS) pairs in the bucket.
	Pairs int
	// PreQueryShare is the bucket's share of pre-roll-out queries
	// (the paper notes the most popular bucket held only 11% of them).
	PreQueryShare float64
}

// RunPopularity reproduces Fig 24's analysis: the same client workload is
// replayed twice through public-resolver caches — once with ECS off (pre
// roll-out) and once with ECS on — and (domain, LDNS) pairs are bucketed by
// pre-roll-out queries per TTL.
func RunPopularity(w *world.World, cfg QueryRateConfig, up resolver.Upstream) ([]PopularityBucket, error) {
	if cfg.EventsPerWindow <= 0 {
		return nil, fmt.Errorf("simulation: EventsPerWindow must be positive")
	}
	if cfg.WindowPerDay <= 0 {
		cfg.WindowPerDay = 10 * time.Minute
	}
	if cfg.TTL <= 0 {
		cfg.TTL = 20 * time.Second
	}
	if cfg.Catalogue == nil {
		cfg.Catalogue = demand.MustNewCatalogue(120, 1.35, cfg.Seed)
	}
	up = pinUpstream(up)

	type pairKey struct {
		ldns   uint64
		domain string
	}

	// Precompute the client workload once with the config seed: both the
	// pre and post replay must see the identical query stream.
	sampler, err := demand.NewSampler(w, func(b *world.ClientBlock) bool { return b.LDNS.IsPublic() })
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	type event struct {
		blk *world.ClientBlock
		dom demand.Domain
	}
	events := make([]event, cfg.EventsPerWindow)
	for i := range events {
		events[i] = event{sampler.Sample(rng), cfg.Catalogue.Sample(rng)}
	}
	// Bucket event indices by resolver (first-seen order). A resolver's
	// cache evolution depends only on its own queries in time order, which
	// bucketing preserves — so buckets can replay concurrently.
	var order []*world.LDNS
	byLDNS := map[uint64][]int{}
	for i, ev := range events {
		id := ev.blk.LDNS.ID
		if _, ok := byLDNS[id]; !ok {
			order = append(order, ev.blk.LDNS)
		}
		byLDNS[id] = append(byLDNS[id], i)
	}

	run := func(ecs bool) (map[pairKey]uint64, error) {
		base := time.Date(2014, 3, 1, 12, 0, 0, 0, time.UTC)
		step := cfg.WindowPerDay / time.Duration(cfg.EventsPerWindow+1)
		type bucketPart struct {
			counts map[string]uint64
			err    error
		}
		parts := par.Map(len(order), func(gi int) bucketPart {
			l := order[gi]
			r, err := resolver.New(ldnsResolverConfig(l, ecs, 0, 0), up)
			if err != nil {
				return bucketPart{err: err}
			}
			r.TrackDomains()
			for _, i := range byLDNS[l.ID] {
				now := base.Add(time.Duration(i) * step)
				if _, err := r.Query(now, events[i].dom.Name, hostInBlock(events[i].blk)); err != nil {
					return bucketPart{err: err}
				}
			}
			return bucketPart{counts: r.PerDomainUpstream}
		})
		counts := map[pairKey]uint64{}
		for gi, p := range parts {
			if p.err != nil {
				return nil, p.err
			}
			for dom, n := range p.counts {
				counts[pairKey{order[gi].ID, dom}] = n
			}
		}
		return counts, nil
	}

	pre, err := run(false)
	if err != nil {
		return nil, err
	}
	post, err := run(true)
	if err != nil {
		return nil, err
	}

	// Bucket pairs by pre-roll-out queries per TTL, in tenths of the
	// maximum of 1 query/TTL (a cache bounds the pre rate at 1/TTL).
	windows := cfg.WindowPerDay.Seconds() / cfg.TTL.Seconds()
	const nBuckets = 10
	type agg struct {
		factorSum float64
		pairs     int
		preSum    uint64
	}
	buckets := make([]agg, nBuckets)
	var totalPre uint64
	// Visit pairs in sorted order: factorSum is a float accumulation, so
	// map-iteration order would make the bucket means run-dependent.
	keys := make([]pairKey, 0, len(pre))
	for k := range pre {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].ldns != keys[j].ldns {
			return keys[i].ldns < keys[j].ldns
		}
		return keys[i].domain < keys[j].domain
	})
	for _, k := range keys {
		preN := pre[k]
		if preN == 0 {
			continue
		}
		totalPre += preN
		perTTL := float64(preN) / windows
		idx := int(perTTL * nBuckets)
		if idx >= nBuckets {
			idx = nBuckets - 1
		}
		postN := post[k]
		buckets[idx].factorSum += float64(postN) / float64(preN)
		buckets[idx].pairs++
		buckets[idx].preSum += preN
	}
	var out []PopularityBucket
	for i, b := range buckets {
		if b.pairs == 0 {
			continue
		}
		pb := PopularityBucket{
			PopularityLo:   float64(i) / nBuckets,
			PopularityHi:   float64(i+1) / nBuckets,
			FactorIncrease: b.factorSum / float64(b.pairs),
			Pairs:          b.pairs,
		}
		if totalPre > 0 {
			pb.PreQueryShare = float64(b.preSum) / float64(totalPre)
		}
		out = append(out, pb)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].PopularityLo < out[j].PopularityLo })
	return out, nil
}
