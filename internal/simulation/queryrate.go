package simulation

import (
	"fmt"
	"math/rand"
	"net/netip"
	"sort"
	"time"

	"eum/internal/demand"
	"eum/internal/resolver"
	"eum/internal/world"
)

// QueryRateConfig parameterises the authoritative-side DNS query-volume
// simulation behind Figs 2, 23 and 24.
type QueryRateConfig struct {
	Seed int64
	// Days is the timeline length.
	Days int
	// RolloutStartDay..RolloutEndDay is when public sites enable ECS.
	RolloutStartDay, RolloutEndDay int
	// WindowPerDay is the simulated slice of each day (query streams are
	// dense, so a window per day suffices to estimate rates).
	WindowPerDay time.Duration
	// EventsPerWindow is the number of client DNS queries simulated in
	// each day's window.
	EventsPerWindow int
	// TTL is the authoritative answer TTL.
	TTL time.Duration
	// Catalogue is the domain workload; nil builds a default.
	Catalogue *demand.Catalogue
}

// DefaultQueryRateConfig returns a timeline shaped like the paper's:
// 180 days with the roll-out around day 87-105.
func DefaultQueryRateConfig() QueryRateConfig {
	return QueryRateConfig{
		Seed:            1,
		Days:            180,
		RolloutStartDay: 87,
		RolloutEndDay:   105,
		WindowPerDay:    2 * time.Minute,
		EventsPerWindow: 200000,
		TTL:             20 * time.Second,
	}
}

// QueryRatePoint is one day's simulated rates, in queries per second.
type QueryRatePoint struct {
	Day int
	// ClientQPS is the client-side resolution rate arriving at LDNSes —
	// a proxy for client content requests (Fig 2's left axis).
	ClientQPS float64
	// AuthQPS is the rate of queries reaching the CDN's authoritative
	// name servers (Fig 2's right axis; Fig 23's y axis).
	AuthQPS float64
	// PublicAuthQPS is the share of AuthQPS from public resolvers.
	PublicAuthQPS float64
}

// FixedUpstream is a minimal authoritative stand-in for rate simulations:
// answers carry a constant TTL and are ECS-scoped at Scope when the query
// carries a subnet. (The query-rate effects of §5 depend only on TTL and
// scope semantics, not on which servers are answered; use
// resolver.SystemUpstream to run against the full mapping system instead.)
type FixedUpstream struct {
	TTL   time.Duration
	Scope uint8
}

// Resolve implements resolver.Upstream.
func (u *FixedUpstream) Resolve(domain string, ldns netip.Addr, subnet netip.Prefix) (resolver.Answer, error) {
	a := resolver.Answer{
		Servers: []netip.Addr{netip.AddrFrom4([4]byte{23, 0, 0, 1})},
		TTL:     u.TTL,
	}
	if subnet.IsValid() {
		a.ScopePrefix = u.Scope
	}
	return a, nil
}

// RunQueryRate simulates DNS query volumes before, during and after the
// roll-out. Each simulated day replays a fixed-size window of
// demand-weighted client queries through per-LDNS caching resolvers;
// public resolver sites enable ECS on a schedule inside the roll-out
// window. Growth in underlying traffic (~3%/month in the period) is
// applied on top, matching Fig 23's gradual rise outside the roll-out.
func RunQueryRate(w *world.World, cfg QueryRateConfig, up resolver.Upstream) ([]QueryRatePoint, error) {
	if cfg.Days <= 0 || cfg.EventsPerWindow <= 0 {
		return nil, fmt.Errorf("simulation: Days and EventsPerWindow must be positive")
	}
	if cfg.WindowPerDay <= 0 {
		cfg.WindowPerDay = 10 * time.Minute
	}
	if cfg.TTL <= 0 {
		cfg.TTL = 20 * time.Second
	}
	if cfg.Catalogue == nil {
		// Public-resolver query streams concentrate on popular domains;
		// a steep Zipf reproduces that concentration.
		cfg.Catalogue = demand.MustNewCatalogue(120, 1.35, cfg.Seed)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	resolvers, enableDay, err := buildResolvers(w, cfg, up, rng)
	if err != nil {
		return nil, err
	}
	sampler, err := demand.NewSampler(w, nil)
	if err != nil {
		return nil, err
	}

	base := time.Date(2014, 1, 1, 12, 0, 0, 0, time.UTC)
	var out []QueryRatePoint
	for day := 0; day < cfg.Days; day++ {
		// Enable ECS on public sites whose day has come.
		for id, d := range enableDay {
			if day >= d {
				resolvers[id].SetECSEnabled(true)
			}
		}
		// Organic traffic growth over the period.
		grow := 1 + 0.18*float64(day)/float64(cfg.Days)
		events := int(float64(cfg.EventsPerWindow) * grow)

		windowStart := base.AddDate(0, 0, day)
		var authBefore, pubBefore uint64
		for _, r := range resolvers {
			authBefore += r.Metrics.UpstreamQueries
		}
		for _, l := range w.LDNSes {
			if l.IsPublic() {
				pubBefore += resolvers[l.ID].Metrics.UpstreamQueries
			}
		}

		step := cfg.WindowPerDay / time.Duration(events+1)
		for i := 0; i < events; i++ {
			now := windowStart.Add(time.Duration(i) * step)
			blk := sampler.Sample(rng)
			dom := cfg.Catalogue.Sample(rng)
			if _, err := resolvers[blk.LDNS.ID].Query(now, dom.Name, hostInBlock(blk)); err != nil {
				return nil, err
			}
		}

		var authAfter, pubAfter uint64
		for _, r := range resolvers {
			authAfter += r.Metrics.UpstreamQueries
		}
		for _, l := range w.LDNSes {
			if l.IsPublic() {
				pubAfter += resolvers[l.ID].Metrics.UpstreamQueries
			}
		}
		secs := cfg.WindowPerDay.Seconds()
		out = append(out, QueryRatePoint{
			Day:           day,
			ClientQPS:     float64(events) / secs,
			AuthQPS:       float64(authAfter-authBefore) / secs,
			PublicAuthQPS: float64(pubAfter-pubBefore) / secs,
		})
		// Caches carry within a day's window but not across days
		// (windows are far apart relative to TTL); flush to bound memory.
		for _, r := range resolvers {
			r.Flush()
		}
	}
	return out, nil
}

func buildResolvers(w *world.World, cfg QueryRateConfig, up resolver.Upstream, rng *rand.Rand) (map[uint64]*resolver.Resolver, map[uint64]int, error) {
	resolvers := map[uint64]*resolver.Resolver{}
	enableDay := map[uint64]int{}
	for _, l := range w.LDNSes {
		r, err := resolver.New(resolver.Config{Addr: l.Addr, ECSEnabled: false, SourcePrefix: 24}, up)
		if err != nil {
			return nil, nil, err
		}
		resolvers[l.ID] = r
		if l.IsPublic() {
			span := cfg.RolloutEndDay - cfg.RolloutStartDay
			if span < 1 {
				span = 1
			}
			enableDay[l.ID] = cfg.RolloutStartDay + rng.Intn(span)
		}
	}
	return resolvers, enableDay, nil
}

// PopularityBucket is one bar of Fig 24: (domain, LDNS) pairs bucketed by
// their pre-roll-out popularity in authoritative queries per TTL, with the
// mean factor increase in query rate once ECS/EU mapping is enabled.
type PopularityBucket struct {
	// PopularityLo..PopularityHi is the bucket range in queries per TTL.
	PopularityLo, PopularityHi float64
	// FactorIncrease is the mean post/pre authoritative query-rate ratio.
	FactorIncrease float64
	// Pairs is the number of (domain, LDNS) pairs in the bucket.
	Pairs int
	// PreQueryShare is the bucket's share of pre-roll-out queries
	// (the paper notes the most popular bucket held only 11% of them).
	PreQueryShare float64
}

// RunPopularity reproduces Fig 24's analysis: the same client workload is
// replayed twice through public-resolver caches — once with ECS off (pre
// roll-out) and once with ECS on — and (domain, LDNS) pairs are bucketed by
// pre-roll-out queries per TTL.
func RunPopularity(w *world.World, cfg QueryRateConfig, up resolver.Upstream) ([]PopularityBucket, error) {
	if cfg.EventsPerWindow <= 0 {
		return nil, fmt.Errorf("simulation: EventsPerWindow must be positive")
	}
	if cfg.WindowPerDay <= 0 {
		cfg.WindowPerDay = 10 * time.Minute
	}
	if cfg.TTL <= 0 {
		cfg.TTL = 20 * time.Second
	}
	if cfg.Catalogue == nil {
		cfg.Catalogue = demand.MustNewCatalogue(120, 1.35, cfg.Seed)
	}

	type pairKey struct {
		ldns   uint64
		domain string
	}
	run := func(ecs bool) (map[pairKey]uint64, error) {
		rng := rand.New(rand.NewSource(cfg.Seed)) // identical workload both runs
		resolvers := map[uint64]*resolver.Resolver{}
		for _, l := range w.LDNSes {
			if !l.IsPublic() {
				continue
			}
			r, err := resolver.New(resolver.Config{Addr: l.Addr, ECSEnabled: ecs, SourcePrefix: 24}, up)
			if err != nil {
				return nil, err
			}
			r.TrackDomains()
			resolvers[l.ID] = r
		}
		sampler, err := demand.NewSampler(w, func(b *world.ClientBlock) bool { return b.LDNS.IsPublic() })
		if err != nil {
			return nil, err
		}
		base := time.Date(2014, 3, 1, 12, 0, 0, 0, time.UTC)
		step := cfg.WindowPerDay / time.Duration(cfg.EventsPerWindow+1)
		for i := 0; i < cfg.EventsPerWindow; i++ {
			now := base.Add(time.Duration(i) * step)
			blk := sampler.Sample(rng)
			dom := cfg.Catalogue.Sample(rng)
			if _, err := resolvers[blk.LDNS.ID].Query(now, dom.Name, hostInBlock(blk)); err != nil {
				return nil, err
			}
		}
		counts := map[pairKey]uint64{}
		for id, r := range resolvers {
			for dom, n := range r.PerDomainUpstream {
				counts[pairKey{id, dom}] = n
			}
		}
		return counts, nil
	}

	pre, err := run(false)
	if err != nil {
		return nil, err
	}
	post, err := run(true)
	if err != nil {
		return nil, err
	}

	// Bucket pairs by pre-roll-out queries per TTL, in tenths of the
	// maximum of 1 query/TTL (a cache bounds the pre rate at 1/TTL).
	windows := cfg.WindowPerDay.Seconds() / cfg.TTL.Seconds()
	const nBuckets = 10
	type agg struct {
		factorSum float64
		pairs     int
		preSum    uint64
	}
	buckets := make([]agg, nBuckets)
	var totalPre uint64
	for k, preN := range pre {
		if preN == 0 {
			continue
		}
		totalPre += preN
		perTTL := float64(preN) / windows
		idx := int(perTTL * nBuckets)
		if idx >= nBuckets {
			idx = nBuckets - 1
		}
		postN := post[k]
		buckets[idx].factorSum += float64(postN) / float64(preN)
		buckets[idx].pairs++
		buckets[idx].preSum += preN
	}
	var out []PopularityBucket
	for i, b := range buckets {
		if b.pairs == 0 {
			continue
		}
		pb := PopularityBucket{
			PopularityLo:   float64(i) / nBuckets,
			PopularityHi:   float64(i+1) / nBuckets,
			FactorIncrease: b.factorSum / float64(b.pairs),
			Pairs:          b.pairs,
		}
		if totalPre > 0 {
			pb.PreQueryShare = float64(b.preSum) / float64(totalPre)
		}
		out = append(out, pb)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].PopularityLo < out[j].PopularityLo })
	return out, nil
}
