package simulation

import (
	"math"
	"testing"
	"time"

	"eum/internal/cdn"
	"eum/internal/par"
	"eum/internal/world"
)

// simOutputs bundles everything the worker-count invariance test compares.
type simOutputs struct {
	rollout *RolloutResult
	rates   []QueryRatePoint
	pop     []PopularityBucket
	broad   *BroadRolloutResult
}

func runSims(t *testing.T, workers int) *simOutputs {
	t.Helper()
	par.SetWorkers(workers)
	defer par.SetWorkers(0)

	w := world.MustGenerate(world.Config{Seed: 9, NumBlocks: 1200})
	p := cdn.MustGenerateUniverse(w, cdn.Config{Seed: 9, NumDeployments: 120, ServersPerDeployment: 4})

	rcfg := DefaultRolloutConfig()
	rcfg.Start = time.Date(2014, 3, 20, 0, 0, 0, 0, time.UTC)
	rcfg.End = time.Date(2014, 4, 20, 0, 0, 0, 0, time.UTC)
	rcfg.DailyMeasurements = 40
	rollout, err := RunRollout(w, p, net, rcfg)
	if err != nil {
		t.Fatal(err)
	}

	qcfg := DefaultQueryRateConfig()
	qcfg.Days = 10
	qcfg.RolloutStartDay, qcfg.RolloutEndDay = 3, 6
	qcfg.EventsPerWindow = 20000
	up := &FixedUpstream{TTL: 20 * time.Second, Scope: 24}
	rates, err := RunQueryRate(w, qcfg, up)
	if err != nil {
		t.Fatal(err)
	}
	pop, err := RunPopularity(w, qcfg, up)
	if err != nil {
		t.Fatal(err)
	}

	broad, err := RunBroadRollout(w, p, net, 5)
	if err != nil {
		t.Fatal(err)
	}
	return &simOutputs{rollout: rollout, rates: rates, pop: pop, broad: broad}
}

func sameF64(a, b float64) bool { return math.Float64bits(a) == math.Float64bits(b) }

// TestSimulationWorkerCountInvariant verifies the engine's determinism
// contract end to end: the roll-out timeline, query-rate timeline,
// popularity buckets and broad-adoption stages must be bit-identical at
// one worker and eight.
func TestSimulationWorkerCountInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every simulation twice")
	}
	s1 := runSims(t, 1)
	s8 := runSims(t, 8)

	// Roll-out: compare each metric's daily timeline. Daily means are
	// weighted float sums in observation order, so equality also proves the
	// merged observation order matches the serial one.
	groups := func(s *simOutputs) []*GroupSeries {
		r := s.rollout
		return []*GroupSeries{&r.MappingDistance, &r.RTT, &r.TTFB, &r.Download}
	}
	g1, g8 := groups(s1), groups(s8)
	for gi := range g1 {
		for _, high := range []bool{true, false} {
			d1 := g1[gi].Series(high).DailyMeans()
			d8 := g8[gi].Series(high).DailyMeans()
			if len(d1) != len(d8) {
				t.Fatalf("metric %d high=%v: %d vs %d daily points", gi, high, len(d1), len(d8))
			}
			for i := range d1 {
				if !d1[i].Start.Equal(d8[i].Start) || !sameF64(d1[i].Mean, d8[i].Mean) ||
					!sameF64(d1[i].Weight, d8[i].Weight) {
					t.Fatalf("metric %d high=%v day %d differs: %+v vs %+v", gi, high, i, d1[i], d8[i])
				}
			}
		}
	}

	if len(s1.rates) != len(s8.rates) {
		t.Fatalf("query-rate points: %d vs %d", len(s1.rates), len(s8.rates))
	}
	for i := range s1.rates {
		a, b := s1.rates[i], s8.rates[i]
		if a.Day != b.Day || !sameF64(a.ClientQPS, b.ClientQPS) ||
			!sameF64(a.AuthQPS, b.AuthQPS) || !sameF64(a.PublicAuthQPS, b.PublicAuthQPS) {
			t.Fatalf("query-rate day %d differs: %+v vs %+v", i, a, b)
		}
	}

	if len(s1.pop) != len(s8.pop) {
		t.Fatalf("popularity buckets: %d vs %d", len(s1.pop), len(s8.pop))
	}
	for i := range s1.pop {
		a, b := s1.pop[i], s8.pop[i]
		if a.Pairs != b.Pairs || !sameF64(a.FactorIncrease, b.FactorIncrease) ||
			!sameF64(a.PreQueryShare, b.PreQueryShare) {
			t.Fatalf("popularity bucket %d differs: %+v vs %+v", i, a, b)
		}
	}

	if len(s1.broad.Stages) != len(s8.broad.Stages) {
		t.Fatalf("broad stages: %d vs %d", len(s1.broad.Stages), len(s8.broad.Stages))
	}
	for i := range s1.broad.Stages {
		a, b := s1.broad.Stages[i], s8.broad.Stages[i]
		if a.Name != b.Name || !sameF64(a.MeanRTTMs, b.MeanRTTMs) ||
			!sameF64(a.P95RTTMs, b.P95RTTMs) || !sameF64(a.MeanDistance, b.MeanDistance) ||
			!sameF64(a.AuthQueryMultiplier, b.AuthQueryMultiplier) {
			t.Fatalf("broad stage %d differs: %+v vs %+v", i, a, b)
		}
	}
}
