package simulation

import (
	"fmt"
	"math/rand"
	"net/netip"
	"time"

	"eum/internal/cdn"
	"eum/internal/demand"
	"eum/internal/mapping"
	"eum/internal/netmodel"
	"eum/internal/par"
	"eum/internal/resolver"
	"eum/internal/rum"
	"eum/internal/stats"
	"eum/internal/world"
)

// BroadRolloutResult quantifies the paper's conclusion (§8): "a broad
// roll-out of this technology across the entire Internet population will
// be quite beneficial ... more ISPs would need to support the EDNS0
// extension". It compares three worlds: no ECS anywhere, the paper's
// actual roll-out (public resolvers only), and universal adoption
// including ISP resolvers.
type BroadRolloutResult struct {
	// Stage names the adoption level.
	Stages []BroadRolloutStage
}

// BroadRolloutStage is one adoption level's outcome.
type BroadRolloutStage struct {
	Name string
	// MeanRTTMs / P95RTTMs are demand-weighted over ALL clients
	// (not just public-resolver users).
	MeanRTTMs float64
	P95RTTMs  float64
	// MeanDistance is the demand-weighted mean mapping distance.
	MeanDistance float64
	// AuthQueryMultiplier is the authoritative DNS query rate relative
	// to the no-ECS baseline (the §5 scaling price of adoption).
	AuthQueryMultiplier float64
}

// RunBroadRollout simulates the three adoption stages on one substrate.
// Performance is evaluated by mapping every block through per-LDNS
// resolvers with the stage's ECS settings; the query-rate multiplier comes
// from replaying an identical dense query workload through the caches.
func RunBroadRollout(w *world.World, p *cdn.Platform, net *netmodel.Model, seed int64) (*BroadRolloutResult, error) {
	sys := mapping.NewSystem(w, p, net, mapping.Config{Policy: mapping.EndUser, PingTargets: len(w.Blocks) / 10})
	// Pin all three adoption stages to the initially published map: the
	// platform does not change mid-comparison, so every stage must read
	// the same epoch.
	up := &resolver.SystemUpstream{System: sys, Snapshot: sys.Current()}
	rumModel := rum.NewModel(net)
	_ = rumModel

	depByAddr := map[netip.Addr]*cdn.Deployment{}
	for _, d := range p.Deployments {
		for _, s := range d.Servers {
			depByAddr[s.Addr] = d
		}
	}

	stages := []struct {
		name string
		ecs  func(l *world.LDNS) bool
	}{
		{"no-ecs", func(*world.LDNS) bool { return false }},
		{"public-only", func(l *world.LDNS) bool { return l.IsPublic() }},
		{"universal", func(*world.LDNS) bool { return true }},
	}

	// Group block indices by LDNS (first-seen order): a resolver's cache
	// sees only its own clients' queries, in block order, so groups replay
	// concurrently and the per-group datasets merge in a fixed order.
	var ldnsOrder []*world.LDNS
	blocksByLDNS := map[uint64][]int{}
	for i, b := range w.Blocks {
		if _, ok := blocksByLDNS[b.LDNS.ID]; !ok {
			ldnsOrder = append(ldnsOrder, b.LDNS)
		}
		blocksByLDNS[b.LDNS.ID] = append(blocksByLDNS[b.LDNS.ID], i)
	}

	res := &BroadRolloutResult{}
	var baselineQPS float64
	for _, stage := range stages {
		// Fresh resolvers per stage.
		resolvers := map[uint64]*resolver.Resolver{}
		for _, l := range w.LDNSes {
			r, err := resolver.New(resolver.Config{
				Addr: l.Addr, ECSEnabled: stage.ecs(l), SourcePrefix: 24,
			}, up)
			if err != nil {
				return nil, err
			}
			resolvers[l.ID] = r
		}

		// Performance: every block resolves once and is measured, fanned
		// out per resolver. Timestamps stay tied to block index, exactly as
		// in a single serial pass over w.Blocks.
		base := time.Date(2014, 7, 1, 0, 0, 0, 0, time.UTC)
		type groupPart struct {
			rtt, dist stats.Dataset
			err       error
		}
		parts := par.Map(len(ldnsOrder), func(gi int) *groupPart {
			p := &groupPart{}
			r := resolvers[ldnsOrder[gi].ID]
			for _, bi := range blocksByLDNS[ldnsOrder[gi].ID] {
				b := w.Blocks[bi]
				now := base.Add(time.Duration(bi) * time.Second)
				ans, err := r.Query(now, "broad.cdn.example.net", hostInBlock(b))
				if err != nil {
					p.err = err
					return p
				}
				dep := depByAddr[ans.Servers[0]]
				if dep == nil {
					p.err = fmt.Errorf("simulation: unknown server %v", ans.Servers[0])
					return p
				}
				p.rtt.Add(net.BaseRTTMs(b.Endpoint(), dep.Endpoint()), b.Demand)
				m := rumModel.Measure(now, b, demand.Domain{Name: "broad", DynamicFraction: 0.5, PageBytes: 100_000}, dep, 1)
				p.dist.Add(m.MappingDistance, b.Demand)
			}
			return p
		})
		var rtt, dist stats.Dataset
		for _, p := range parts {
			if p.err != nil {
				return nil, p.err
			}
			rtt.Merge(&p.rtt)
			dist.Merge(&p.dist)
		}
		for _, r := range resolvers {
			r.Flush()
		}

		// Query-rate: a dense identical workload through the caches.
		qps, err := stageQueryRate(w, resolvers, seed)
		if err != nil {
			return nil, err
		}
		st := BroadRolloutStage{
			Name:         stage.name,
			MeanRTTMs:    rtt.Mean(),
			P95RTTMs:     rtt.Percentile(95),
			MeanDistance: dist.Mean(),
		}
		if stage.name == "no-ecs" {
			baselineQPS = qps
		}
		if baselineQPS > 0 {
			st.AuthQueryMultiplier = qps / baselineQPS
		}
		res.Stages = append(res.Stages, st)
	}
	return res, nil
}

// stageQueryRate replays a fixed dense workload through the resolvers and
// returns the authoritative query rate. The event stream is drawn up front
// (a pure function of the seed), then replayed per resolver concurrently:
// each cache sees exactly its own slice of the stream, in time order.
func stageQueryRate(w *world.World, resolvers map[uint64]*resolver.Resolver, seed int64) (float64, error) {
	rng := rand.New(rand.NewSource(seed))
	cat := demand.MustNewCatalogue(80, 1.35, seed)
	sampler, err := demand.NewSampler(w, nil)
	if err != nil {
		return 0, err
	}
	var before uint64
	for _, r := range resolvers {
		before += r.Metrics.UpstreamQueries
	}
	window := 2 * time.Minute
	events := 60000
	start := time.Date(2014, 7, 2, 0, 0, 0, 0, time.UTC)
	step := window / time.Duration(events+1)

	type event struct {
		blk *world.ClientBlock
		dom demand.Domain
	}
	evs := make([]event, events)
	for i := range evs {
		evs[i] = event{sampler.Sample(rng), cat.Sample(rng)}
	}
	var order []uint64
	byLDNS := map[uint64][]int{}
	for i, ev := range evs {
		id := ev.blk.LDNS.ID
		if _, ok := byLDNS[id]; !ok {
			order = append(order, id)
		}
		byLDNS[id] = append(byLDNS[id], i)
	}
	errs := par.Map(len(order), func(gi int) error {
		r := resolvers[order[gi]]
		for _, i := range byLDNS[order[gi]] {
			now := start.Add(time.Duration(i) * step)
			if _, err := r.Query(now, evs[i].dom.Name, hostInBlock(evs[i].blk)); err != nil {
				return err
			}
		}
		return nil
	})
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	var after uint64
	for _, r := range resolvers {
		after += r.Metrics.UpstreamQueries
	}
	return float64(after-before) / window.Seconds(), nil
}
