package simulation

import (
	"fmt"
	"math/rand"
	"net/netip"
	"time"

	"eum/internal/cdn"
	"eum/internal/demand"
	"eum/internal/mapping"
	"eum/internal/netmodel"
	"eum/internal/resolver"
	"eum/internal/rum"
	"eum/internal/stats"
	"eum/internal/world"
)

// BroadRolloutResult quantifies the paper's conclusion (§8): "a broad
// roll-out of this technology across the entire Internet population will
// be quite beneficial ... more ISPs would need to support the EDNS0
// extension". It compares three worlds: no ECS anywhere, the paper's
// actual roll-out (public resolvers only), and universal adoption
// including ISP resolvers.
type BroadRolloutResult struct {
	// Stage names the adoption level.
	Stages []BroadRolloutStage
}

// BroadRolloutStage is one adoption level's outcome.
type BroadRolloutStage struct {
	Name string
	// MeanRTTMs / P95RTTMs are demand-weighted over ALL clients
	// (not just public-resolver users).
	MeanRTTMs float64
	P95RTTMs  float64
	// MeanDistance is the demand-weighted mean mapping distance.
	MeanDistance float64
	// AuthQueryMultiplier is the authoritative DNS query rate relative
	// to the no-ECS baseline (the §5 scaling price of adoption).
	AuthQueryMultiplier float64
}

// RunBroadRollout simulates the three adoption stages on one substrate.
// Performance is evaluated by mapping every block through per-LDNS
// resolvers with the stage's ECS settings; the query-rate multiplier comes
// from replaying an identical dense query workload through the caches.
func RunBroadRollout(w *world.World, p *cdn.Platform, net *netmodel.Model, seed int64) (*BroadRolloutResult, error) {
	sys := mapping.NewSystem(w, p, net, mapping.Config{Policy: mapping.EndUser, PingTargets: len(w.Blocks) / 10})
	up := &resolver.SystemUpstream{System: sys}
	rumModel := rum.NewModel(net)
	_ = rumModel

	depByAddr := map[netip.Addr]*cdn.Deployment{}
	for _, d := range p.Deployments {
		for _, s := range d.Servers {
			depByAddr[s.Addr] = d
		}
	}

	stages := []struct {
		name string
		ecs  func(l *world.LDNS) bool
	}{
		{"no-ecs", func(*world.LDNS) bool { return false }},
		{"public-only", func(l *world.LDNS) bool { return l.IsPublic() }},
		{"universal", func(*world.LDNS) bool { return true }},
	}

	res := &BroadRolloutResult{}
	var baselineQPS float64
	for _, stage := range stages {
		// Fresh resolvers per stage.
		resolvers := map[uint64]*resolver.Resolver{}
		for _, l := range w.LDNSes {
			r, err := resolver.New(resolver.Config{
				Addr: l.Addr, ECSEnabled: stage.ecs(l), SourcePrefix: 24,
			}, up)
			if err != nil {
				return nil, err
			}
			resolvers[l.ID] = r
		}

		// Performance: every block resolves once and is measured.
		now := time.Date(2014, 7, 1, 0, 0, 0, 0, time.UTC)
		var rtt, dist stats.Dataset
		for _, b := range w.Blocks {
			ans, err := resolvers[b.LDNS.ID].Query(now, "broad.cdn.example.net", hostInBlock(b))
			if err != nil {
				return nil, err
			}
			dep := depByAddr[ans.Servers[0]]
			if dep == nil {
				return nil, fmt.Errorf("simulation: unknown server %v", ans.Servers[0])
			}
			rtt.Add(net.BaseRTTMs(b.Endpoint(), dep.Endpoint()), b.Demand)
			m := rumModel.Measure(now, b, demand.Domain{Name: "broad", DynamicFraction: 0.5, PageBytes: 100_000}, dep, 1)
			dist.Add(m.MappingDistance, b.Demand)
			now = now.Add(time.Second)
		}
		for _, r := range resolvers {
			r.Flush()
		}

		// Query-rate: a dense identical workload through the caches.
		qps, err := stageQueryRate(w, resolvers, seed)
		if err != nil {
			return nil, err
		}
		st := BroadRolloutStage{
			Name:         stage.name,
			MeanRTTMs:    rtt.Mean(),
			P95RTTMs:     rtt.Percentile(95),
			MeanDistance: dist.Mean(),
		}
		if stage.name == "no-ecs" {
			baselineQPS = qps
		}
		if baselineQPS > 0 {
			st.AuthQueryMultiplier = qps / baselineQPS
		}
		res.Stages = append(res.Stages, st)
	}
	return res, nil
}

// stageQueryRate replays a fixed dense workload through the resolvers and
// returns the authoritative query rate.
func stageQueryRate(w *world.World, resolvers map[uint64]*resolver.Resolver, seed int64) (float64, error) {
	rng := rand.New(rand.NewSource(seed))
	cat := demand.MustNewCatalogue(80, 1.35, seed)
	sampler, err := demand.NewSampler(w, nil)
	if err != nil {
		return 0, err
	}
	var before uint64
	for _, r := range resolvers {
		before += r.Metrics.UpstreamQueries
	}
	window := 2 * time.Minute
	events := 60000
	start := time.Date(2014, 7, 2, 0, 0, 0, 0, time.UTC)
	step := window / time.Duration(events+1)
	for i := 0; i < events; i++ {
		blk := sampler.Sample(rng)
		dom := cat.Sample(rng)
		if _, err := resolvers[blk.LDNS.ID].Query(start.Add(time.Duration(i)*step), dom.Name, hostInBlock(blk)); err != nil {
			return 0, err
		}
	}
	var after uint64
	for _, r := range resolvers {
		after += r.Metrics.UpstreamQueries
	}
	return float64(after-before) / window.Seconds(), nil
}
