package simulation

import (
	"math/rand"
	"time"

	"eum/internal/cdn"
	"eum/internal/demand"
	"eum/internal/netmodel"
	"eum/internal/par"
	"eum/internal/resolver"
	"eum/internal/world"
)

// BroadRolloutResult quantifies the paper's conclusion (§8): "a broad
// roll-out of this technology across the entire Internet population will
// be quite beneficial ... more ISPs would need to support the EDNS0
// extension". It compares three worlds: no ECS anywhere, the paper's
// actual roll-out (public resolvers only), and universal adoption
// including ISP resolvers.
type BroadRolloutResult struct {
	// Stage names the adoption level.
	Stages []BroadRolloutStage
}

// BroadRolloutStage is one adoption level's outcome.
type BroadRolloutStage struct {
	Name string
	// MeanRTTMs / P95RTTMs are demand-weighted over ALL clients
	// (not just public-resolver users).
	MeanRTTMs float64
	P95RTTMs  float64
	// MeanDistance is the demand-weighted mean mapping distance.
	MeanDistance float64
	// AuthQueryMultiplier is the authoritative DNS query rate relative
	// to the no-ECS baseline (the §5 scaling price of adoption).
	AuthQueryMultiplier float64
}

// RunBroadRollout simulates the three adoption stages on one substrate.
// Performance is evaluated by mapping every block through per-LDNS
// resolvers with the stage's ECS settings; the query-rate multiplier comes
// from replaying an identical dense query workload through the caches.
// It is the classic three-cell instance of the general RunECSCells grid.
func RunBroadRollout(w *world.World, p *cdn.Platform, net *netmodel.Model, seed int64) (*BroadRolloutResult, error) {
	cells, err := RunECSCells(w, p, net, seed, []ECSCell{
		{Name: "no-ecs"},
		{Name: "public-only", Enabled: func(l *world.LDNS) bool { return l.IsPublic() }},
		{Name: "universal", Enabled: func(*world.LDNS) bool { return true }},
	})
	if err != nil {
		return nil, err
	}
	res := &BroadRolloutResult{}
	for _, c := range cells {
		res.Stages = append(res.Stages, BroadRolloutStage{
			Name:                c.Name,
			MeanRTTMs:           c.MeanRTTMs,
			P95RTTMs:            c.P95RTTMs,
			MeanDistance:        c.MeanDistance,
			AuthQueryMultiplier: c.AuthQueryMultiplier,
		})
	}
	return res, nil
}

// stageQueryRate replays a fixed dense workload through the resolvers and
// returns the authoritative query rate (total, and the public-resolver
// slice of it) plus the live cache entry count at the window's end. The
// event stream is drawn up front (a pure function of the seed), then
// replayed per resolver concurrently: each cache sees exactly its own
// slice of the stream, in time order.
func stageQueryRate(w *world.World, resolvers map[uint64]*resolver.Resolver, seed int64) (float64, float64, int, error) {
	rng := rand.New(rand.NewSource(seed))
	cat := demand.MustNewCatalogue(80, 1.35, seed)
	sampler, err := demand.NewSampler(w, nil)
	if err != nil {
		return 0, 0, 0, err
	}
	isPublic := map[uint64]bool{}
	for _, l := range w.LDNSes {
		if l.IsPublic() {
			isPublic[l.ID] = true
		}
	}
	var before, beforePub uint64
	for id, r := range resolvers {
		before += r.Metrics.UpstreamQueries
		if isPublic[id] {
			beforePub += r.Metrics.UpstreamQueries
		}
	}
	window := 2 * time.Minute
	events := 60000
	start := time.Date(2014, 7, 2, 0, 0, 0, 0, time.UTC)
	step := window / time.Duration(events+1)

	type event struct {
		blk *world.ClientBlock
		dom demand.Domain
	}
	evs := make([]event, events)
	for i := range evs {
		evs[i] = event{sampler.Sample(rng), cat.Sample(rng)}
	}
	var order []uint64
	byLDNS := map[uint64][]int{}
	for i, ev := range evs {
		id := ev.blk.LDNS.ID
		if _, ok := byLDNS[id]; !ok {
			order = append(order, id)
		}
		byLDNS[id] = append(byLDNS[id], i)
	}
	errs := par.Map(len(order), func(gi int) error {
		r := resolvers[order[gi]]
		for _, i := range byLDNS[order[gi]] {
			now := start.Add(time.Duration(i) * step)
			if _, err := r.Query(now, evs[i].dom.Name, hostInBlock(evs[i].blk)); err != nil {
				return err
			}
		}
		return nil
	})
	for _, err := range errs {
		if err != nil {
			return 0, 0, 0, err
		}
	}
	var after, afterPub uint64
	entries := 0
	end := start.Add(window)
	for id, r := range resolvers {
		after += r.Metrics.UpstreamQueries
		if isPublic[id] {
			afterPub += r.Metrics.UpstreamQueries
		}
		entries += r.CacheSize(end)
	}
	return float64(after-before) / window.Seconds(),
		float64(afterPub-beforePub) / window.Seconds(), entries, nil
}
