// Package simulation orchestrates end-to-end simulations of the end-user
// mapping roll-out: the client-side performance timeline of §4 (RUM metrics
// before, during and after public resolvers were switched to EU mapping)
// and the authoritative-side DNS query-rate effects of §5.
package simulation

import (
	"fmt"
	"math/rand"
	"net/netip"
	"time"

	"eum/internal/cdn"
	"eum/internal/demand"
	"eum/internal/mapmaker"
	"eum/internal/mapping"
	"eum/internal/netmodel"
	"eum/internal/par"
	"eum/internal/resolver"
	"eum/internal/rum"
	"eum/internal/stats"
	"eum/internal/world"
)

// RolloutConfig parameterises the roll-out performance simulation.
type RolloutConfig struct {
	Seed int64
	// Start..End is the measurement period (paper: Jan 1 - Jun 30 2014).
	Start, End time.Time
	// RolloutStart..RolloutEnd is when public resolver sites switch to
	// end-user mapping (paper: Mar 28 - Apr 15 2014).
	RolloutStart, RolloutEnd time.Time
	// DailyMeasurements is the RUM beacon count on the first day; volume
	// grows linearly to ~1.75x by the last day (Fig 12's rising trend).
	DailyMeasurements int
	// Catalogue is the content-domain workload; nil builds a default.
	Catalogue *demand.Catalogue
	// PingTargets is the scoring measurement granularity. The paper
	// measures 8K targets on behalf of 3.76M blocks (~0.2% coverage);
	// the default of 4% of blocks keeps mapping realistically imperfect.
	PingTargets int
	// Faults optionally injects server failures during the simulation;
	// a health monitor probes daily and the mapping system routes around
	// outages, as the production platform does continuously.
	Faults cdn.FaultInjector
}

// DefaultRolloutConfig mirrors the paper's timeline.
func DefaultRolloutConfig() RolloutConfig {
	return RolloutConfig{
		Seed:              1,
		Start:             time.Date(2014, 1, 1, 0, 0, 0, 0, time.UTC),
		End:               time.Date(2014, 6, 30, 0, 0, 0, 0, time.UTC),
		RolloutStart:      time.Date(2014, 3, 28, 0, 0, 0, 0, time.UTC),
		RolloutEnd:        time.Date(2014, 4, 15, 0, 0, 0, 0, time.UTC),
		DailyMeasurements: 600,
	}
}

// GroupSeries is a metric's time series split into the paper's two country
// groups (§4.1.1).
type GroupSeries struct {
	High stats.TimeSeries // countries where EU mapping should help most
	Low  stats.TimeSeries
}

// Series selects the group's series.
func (g *GroupSeries) Series(high bool) *stats.TimeSeries {
	if high {
		return &g.High
	}
	return &g.Low
}

// merge appends the other group's observations (shard-ordered reduction).
func (g *GroupSeries) merge(o *GroupSeries) {
	g.High.Merge(&o.High)
	g.Low.Merge(&o.Low)
}

// RolloutResult holds the four §4.1 metrics for qualified clients (those
// using public resolvers) over the simulation period.
type RolloutResult struct {
	MappingDistance GroupSeries // miles
	RTT             GroupSeries // ms
	TTFB            GroupSeries // ms
	Download        GroupSeries // ms

	// Rollout window, copied from config for before/after analysis.
	RolloutStart, RolloutEnd time.Time
}

// BeforeAfter returns the demand-weighted datasets of a metric before the
// roll-out started and after it completed, for the CDF figures.
func BeforeAfter(g *GroupSeries, high bool, r *RolloutResult) (before, after *stats.Dataset) {
	s := g.Series(high)
	return s.Window(time.Time{}, r.RolloutStart),
		s.Window(r.RolloutEnd, r.RolloutEnd.AddDate(100, 0, 0))
}

// RunRollout simulates the roll-out: RUM measurements from clients of
// public resolvers are generated every simulated day; each public resolver
// site flips to ECS (and hence end-user mapping) at a date drawn from the
// roll-out window. The mapping system runs the EndUser policy throughout —
// exactly as deployed, the client-specific path only activates for queries
// that carry ECS.
func RunRollout(w *world.World, p *cdn.Platform, net *netmodel.Model, cfg RolloutConfig) (*RolloutResult, error) {
	if !cfg.Start.Before(cfg.End) {
		return nil, fmt.Errorf("simulation: empty period %v..%v", cfg.Start, cfg.End)
	}
	if cfg.DailyMeasurements <= 0 {
		cfg.DailyMeasurements = 600
	}
	if cfg.Catalogue == nil {
		cfg.Catalogue = demand.MustNewCatalogue(200, 1, cfg.Seed)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	if cfg.PingTargets <= 0 {
		cfg.PingTargets = len(w.Blocks) / 25
	}
	sys := mapping.NewSystem(w, p, net, mapping.Config{Policy: mapping.EndUser, PingTargets: cfg.PingTargets})
	mm := mapmaker.New(sys, mapmaker.Config{})

	// Per-site enable days, drawn up front so the schedule does not depend
	// on how the day loop is executed.
	enableAt := map[uint64]time.Time{}
	window := cfg.RolloutEnd.Sub(cfg.RolloutStart)
	for _, l := range w.LDNSes {
		if !l.IsPublic() || !l.SupportsECS {
			// No-ECS providers never flip; they have no enable date.
			continue
		}
		enableAt[l.ID] = cfg.RolloutStart.Add(time.Duration(rng.Int63n(int64(window))))
	}

	// Server address -> deployment, to interpret DNS answers.
	depByAddr := map[netip.Addr]*cdn.Deployment{}
	for _, d := range p.Deployments {
		for _, s := range d.Servers {
			depByAddr[s.Addr] = d
		}
	}

	sampler, err := demand.NewSampler(w, func(b *world.ClientBlock) bool { return b.LDNS.IsPublic() })
	if err != nil {
		return nil, err
	}
	highExp := rum.HighExpectationCountries(w)
	rumModel := rum.NewModel(net)

	var monitor *cdn.Monitor
	if cfg.Faults != nil {
		// Health events flow through the MapMaker's change feed; the
		// serial day loop publishes (Sync) after each probe tick, so the
		// snapshot epoch sequence is a pure function of the fault
		// schedule.
		m, err := cdn.NewMonitor(p, cfg.Faults, 12*time.Hour, mm.OnDeploymentChange)
		if err != nil {
			return nil, err
		}
		monitor = m
	}

	totalDays := int(cfg.End.Sub(cfg.Start).Hours() / 24)

	// runDay simulates one day's RUM beacons into a private result. Days are
	// independent: each gets a child RNG derived from (Seed, day) and fresh
	// public-site resolvers, pre-set to the site's ECS state at dawn. The
	// beacon spacing (minutes) far exceeds the answer TTL (seconds), so
	// cached answers never carry between measurements anyway and fresh
	// per-day caches change nothing.
	runDay := func(day int) (*RolloutResult, error) {
		dayRes := &RolloutResult{}
		dayStart := cfg.Start.AddDate(0, 0, day)
		dayRNG := rand.New(rand.NewSource(par.ChildSeed(cfg.Seed, uint64(day))))
		// Pin the day to the snapshot published at its dawn: without
		// faults the epoch never moves and parallel day shards all read
		// the same map; with faults the serial loop publishes before each
		// day, so the pinned epoch is deterministic either way.
		up := &resolver.SystemUpstream{System: sys, Snapshot: sys.Current()}
		resolvers := map[uint64]*resolver.Resolver{}
		for _, l := range w.LDNSes {
			if !l.IsPublic() {
				continue
			}
			ecs := l.SupportsECS && !dayStart.Before(enableAt[l.ID])
			r, err := resolver.New(ldnsResolverConfig(l, ecs, 0, 0), up)
			if err != nil {
				return nil, err
			}
			resolvers[l.ID] = r
		}
		// Volume grows ~1.75x across the period (Fig 12).
		grow := 1 + 0.75*float64(day)/float64(totalDays)
		n := int(float64(cfg.DailyMeasurements) * grow)
		for i := 0; i < n; i++ {
			now := dayStart.Add(time.Duration(i) * (24 * time.Hour / time.Duration(n+1)))
			blk := sampler.Sample(dayRNG)
			dom := cfg.Catalogue.Sample(dayRNG)
			clientAddr := hostInBlock(blk)
			r := resolvers[blk.LDNS.ID]
			ans, err := r.Query(now, dom.Name, clientAddr)
			if err != nil {
				return nil, fmt.Errorf("simulation: day %d: %w", day, err)
			}
			dep := depByAddr[ans.Servers[0]]
			if dep == nil {
				return nil, fmt.Errorf("simulation: answer %v is not a platform server", ans.Servers[0])
			}
			m := rumModel.Measure(now, blk, dom, dep, uint64(day))
			high := highExp[blk.Country.Code()]
			weight := blk.Demand
			dayRes.MappingDistance.Series(high).Add(now, m.MappingDistance, weight)
			dayRes.RTT.Series(high).Add(now, m.RTTMs, weight)
			dayRes.TTFB.Series(high).Add(now, m.TTFBMs, weight)
			dayRes.Download.Series(high).Add(now, m.DownloadMs, weight)
		}
		return dayRes, nil
	}

	res := &RolloutResult{RolloutStart: cfg.RolloutStart, RolloutEnd: cfg.RolloutEnd}
	merge := func(day *RolloutResult) {
		res.MappingDistance.merge(&day.MappingDistance)
		res.RTT.merge(&day.RTT)
		res.TTFB.merge(&day.TTFB)
		res.Download.merge(&day.Download)
	}

	if monitor != nil {
		// Fault injection mutates platform state day by day; the timeline
		// is causal and must run serially.
		for day := 0; day < totalDays; day++ {
			monitor.Tick(cfg.Start.AddDate(0, 0, day))
			mm.Sync()
			dayRes, err := runDay(day)
			if err != nil {
				return nil, err
			}
			merge(dayRes)
		}
		return res, nil
	}

	type dayPart struct {
		r   *RolloutResult
		err error
	}
	parts := par.Map(totalDays, func(day int) dayPart {
		r, err := runDay(day)
		return dayPart{r, err}
	})
	for _, p := range parts {
		if p.err != nil {
			return nil, p.err
		}
		merge(p.r)
	}
	return res, nil
}

// hostInBlock returns a representative client address inside the block.
func hostInBlock(b *world.ClientBlock) netip.Addr {
	if b.Prefix.Addr().Is4() {
		a := b.Prefix.Addr().As4()
		a[3] = 77
		return netip.AddrFrom4(a)
	}
	a := b.Prefix.Addr().As16()
	a[15] = 77
	return netip.AddrFrom16(a)
}
