package resolver

import (
	"errors"
	"net/netip"
	"testing"
	"time"
)

// stubUpstream answers with a fixed TTL and a scope policy, counting
// queries.
type stubUpstream struct {
	ttl     time.Duration
	scope   uint8 // echoed scope; 0 = global answers
	queries int
	// answerFor lets tests vary the answer per subnet.
	answerFor func(subnet netip.Prefix) []netip.Addr
	err       error
}

func (s *stubUpstream) Resolve(domain string, ldns netip.Addr, subnet netip.Prefix) (Answer, error) {
	s.queries++
	if s.err != nil {
		return Answer{}, s.err
	}
	servers := []netip.Addr{netip.MustParseAddr("192.0.2.1")}
	if s.answerFor != nil {
		servers = s.answerFor(subnet)
	}
	scope := s.scope
	if !subnet.IsValid() {
		scope = 0
	}
	return Answer{Servers: servers, TTL: s.ttl, ScopePrefix: scope}, nil
}

var (
	t0      = time.Date(2014, 3, 28, 0, 0, 0, 0, time.UTC)
	client1 = netip.MustParseAddr("10.1.1.5")
	client2 = netip.MustParseAddr("10.1.1.9")   // same /24 as client1
	client3 = netip.MustParseAddr("10.1.2.5")   // different /24
	client4 = netip.MustParseAddr("10.200.9.1") // far /24
)

func newTestResolver(t *testing.T, ecs bool, up Upstream) *Resolver {
	t.Helper()
	r, err := New(Config{Addr: netip.MustParseAddr("198.51.100.1"), ECSEnabled: ecs, SourcePrefix: 24}, up)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestNewNilUpstream(t *testing.T) {
	if _, err := New(Config{}, nil); err == nil {
		t.Error("nil upstream accepted")
	}
}

func TestNonECSCachePerDomain(t *testing.T) {
	up := &stubUpstream{ttl: 20 * time.Second, scope: 24}
	r := newTestResolver(t, false, up)
	// First query misses; all later queries for the domain hit,
	// regardless of client — one resolution per domain per TTL (§5.2).
	for i, c := range []netip.Addr{client1, client2, client3, client4} {
		a, err := r.Query(t0, "foo.net", c)
		if err != nil {
			t.Fatal(err)
		}
		if (i == 0) == a.FromCache {
			t.Errorf("query %d FromCache = %v", i, a.FromCache)
		}
	}
	if up.queries != 1 {
		t.Errorf("upstream queries = %d, want 1", up.queries)
	}
}

func TestECSCachePerBlock(t *testing.T) {
	up := &stubUpstream{ttl: 20 * time.Second, scope: 24}
	r := newTestResolver(t, true, up)
	// client1 and client2 share a /24: one upstream query.
	// client3 and client4 are in other /24s: one more each (§5.2: an
	// LDNS may store multiple entries for the same domain name).
	for _, c := range []netip.Addr{client1, client2, client3, client4} {
		if _, err := r.Query(t0, "foo.net", c); err != nil {
			t.Fatal(err)
		}
	}
	if up.queries != 3 {
		t.Errorf("upstream queries = %d, want 3", up.queries)
	}
	if got := r.CacheSize(t0); got != 3 {
		t.Errorf("cache size = %d, want 3", got)
	}
}

func TestECSScopeWiderThanSource(t *testing.T) {
	// Server answers /16-scoped: clients in different /24s of one /16
	// share the entry (the paper's name servers may answer "for a
	// superset of the client's /x block").
	up := &stubUpstream{ttl: 20 * time.Second, scope: 16}
	r := newTestResolver(t, true, up)
	if _, err := r.Query(t0, "foo.net", client1); err != nil {
		t.Fatal(err)
	}
	a, err := r.Query(t0, "foo.net", client3) // same /16
	if err != nil {
		t.Fatal(err)
	}
	if !a.FromCache {
		t.Error("same-/16 client missed a /16-scoped entry")
	}
	a, err = r.Query(t0, "foo.net", client4) // different /16
	if err != nil {
		t.Fatal(err)
	}
	if a.FromCache {
		t.Error("different-/16 client hit a /16-scoped entry")
	}
	if up.queries != 2 {
		t.Errorf("upstream queries = %d, want 2", up.queries)
	}
}

func TestScopeZeroGlobalEntry(t *testing.T) {
	// Scope 0 answers are valid for all clients even with ECS on
	// (RFC 7871 §7.3.1).
	up := &stubUpstream{ttl: 20 * time.Second, scope: 0}
	r := newTestResolver(t, true, up)
	if _, err := r.Query(t0, "foo.net", client1); err != nil {
		t.Fatal(err)
	}
	a, err := r.Query(t0, "foo.net", client4)
	if err != nil {
		t.Fatal(err)
	}
	if !a.FromCache {
		t.Error("scope-0 entry not shared across clients")
	}
	if up.queries != 1 {
		t.Errorf("upstream queries = %d", up.queries)
	}
}

// TestMalformedScopeNotCached is the regression test for the
// malformed-scope caching bug: an upstream answering with a SCOPE
// PREFIX-LENGTH beyond the client's address family (/40 for an IPv4
// client) used to be filed in the plain cache — one client's answer
// silently served to every other client of the resolver. The answer
// must be dropped: later clients go upstream again and get their own.
func TestMalformedScopeNotCached(t *testing.T) {
	up := &stubUpstream{ttl: 20 * time.Second, scope: 40}
	r := newTestResolver(t, true, up)
	if _, err := r.Query(t0, "foo.net", client1); err != nil {
		t.Fatal(err)
	}
	if got := r.CacheSize(t0); got != 0 {
		t.Errorf("cache size = %d after malformed-scope answer, want 0", got)
	}
	// A far-away client must not inherit the first client's answer.
	a, err := r.Query(t0, "foo.net", client4)
	if err != nil {
		t.Fatal(err)
	}
	if a.FromCache {
		t.Error("malformed-scope answer served from cache to an unrelated client")
	}
	if up.queries != 2 {
		t.Errorf("upstream queries = %d, want 2", up.queries)
	}
}

func TestTTLExpiry(t *testing.T) {
	up := &stubUpstream{ttl: 20 * time.Second, scope: 24}
	r := newTestResolver(t, true, up)
	if _, err := r.Query(t0, "foo.net", client1); err != nil {
		t.Fatal(err)
	}
	// Within TTL: hit; remaining TTL decays.
	a, _ := r.Query(t0.Add(15*time.Second), "foo.net", client1)
	if !a.FromCache || a.TTL != 5*time.Second {
		t.Errorf("hit = %v, ttl = %v", a.FromCache, a.TTL)
	}
	// At exactly TTL: expired.
	a, _ = r.Query(t0.Add(20*time.Second), "foo.net", client1)
	if a.FromCache {
		t.Error("expired entry served")
	}
	if up.queries != 2 {
		t.Errorf("upstream queries = %d", up.queries)
	}
}

func TestMaxTTLCap(t *testing.T) {
	up := &stubUpstream{ttl: time.Hour, scope: 0}
	r, err := New(Config{Addr: netip.MustParseAddr("198.51.100.1"), MaxTTL: 30 * time.Second}, up)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Query(t0, "foo.net", client1); err != nil {
		t.Fatal(err)
	}
	if a, _ := r.Query(t0.Add(29*time.Second), "foo.net", client1); !a.FromCache {
		t.Error("entry evicted before capped TTL")
	}
	if a, _ := r.Query(t0.Add(31*time.Second), "foo.net", client1); a.FromCache {
		t.Error("entry outlived capped TTL")
	}
}

func TestQueryRateMultiplier(t *testing.T) {
	// The §5.2 mechanism in miniature: a popular domain queried every
	// second by clients spread over 8 blocks sees ~8x the upstream
	// queries once ECS is enabled.
	mkClients := func() []netip.Addr {
		var out []netip.Addr
		for i := 0; i < 8; i++ {
			out = append(out, netip.AddrFrom4([4]byte{10, 2, byte(i), 7}))
		}
		return out
	}
	run := func(ecs bool) int {
		up := &stubUpstream{ttl: 20 * time.Second, scope: 24}
		r := newTestResolver(t, ecs, up)
		clients := mkClients()
		for s := 0; s < 120; s++ {
			now := t0.Add(time.Duration(s) * time.Second)
			c := clients[s%len(clients)]
			if _, err := r.Query(now, "popular.net", c); err != nil {
				t.Fatal(err)
			}
		}
		return up.queries
	}
	before, after := run(false), run(true)
	factor := float64(after) / float64(before)
	if factor < 6 || factor > 9 {
		t.Errorf("ECS query factor = %.1f (before %d, after %d), want ~8", factor, before, after)
	}
}

func TestSetECSEnabledMidstream(t *testing.T) {
	up := &stubUpstream{ttl: 20 * time.Second, scope: 24}
	r := newTestResolver(t, false, up)
	if _, err := r.Query(t0, "foo.net", client1); err != nil {
		t.Fatal(err)
	}
	r.SetECSEnabled(true)
	if !r.ECSEnabled() {
		t.Fatal("SetECSEnabled failed")
	}
	// Existing global entry still valid.
	if a, _ := r.Query(t0.Add(time.Second), "foo.net", client4); !a.FromCache {
		t.Error("pre-rollout entry dropped on enable")
	}
	// After expiry, entries go per-block.
	later := t0.Add(time.Minute)
	_, _ = r.Query(later, "foo.net", client1)
	_, _ = r.Query(later, "foo.net", client4)
	if up.queries != 3 {
		t.Errorf("upstream queries = %d, want 3", up.queries)
	}
}

func TestUpstreamErrorPropagates(t *testing.T) {
	wantErr := errors.New("SERVFAIL")
	up := &stubUpstream{err: wantErr}
	r := newTestResolver(t, true, up)
	if _, err := r.Query(t0, "foo.net", client1); !errors.Is(err, wantErr) {
		t.Errorf("err = %v", err)
	}
}

func TestMetricsAndTracking(t *testing.T) {
	up := &stubUpstream{ttl: 20 * time.Second, scope: 24}
	r := newTestResolver(t, true, up)
	r.TrackDomains()
	_, _ = r.Query(t0, "a.net", client1)
	_, _ = r.Query(t0, "a.net", client1)
	_, _ = r.Query(t0, "b.net", client1)
	m := r.Metrics
	if m.ClientQueries != 3 || m.CacheHits != 1 || m.UpstreamQueries != 2 {
		t.Errorf("metrics = %+v", m)
	}
	if r.PerDomainUpstream["a.net"] != 1 || r.PerDomainUpstream["b.net"] != 1 {
		t.Errorf("per-domain = %v", r.PerDomainUpstream)
	}
}

func TestFlush(t *testing.T) {
	up := &stubUpstream{ttl: time.Minute, scope: 24}
	r := newTestResolver(t, true, up)
	_, _ = r.Query(t0, "a.net", client1)
	if r.CacheSize(t0) != 1 {
		t.Fatal("entry not cached")
	}
	r.Flush()
	if r.CacheSize(t0) != 0 {
		t.Error("Flush left entries")
	}
}

func TestDifferentAnswersPerBlock(t *testing.T) {
	// The cached answer must be the one for the client's own block, not
	// another block's (RFC 7871: "the cached resolution is only valid
	// for the IP block for which it was provided").
	up := &stubUpstream{ttl: time.Minute, scope: 24,
		answerFor: func(subnet netip.Prefix) []netip.Addr {
			if subnet.Contains(client1) {
				return []netip.Addr{netip.MustParseAddr("192.0.2.1")}
			}
			return []netip.Addr{netip.MustParseAddr("192.0.2.2")}
		}}
	r := newTestResolver(t, true, up)
	a1, _ := r.Query(t0, "foo.net", client1)
	a3, _ := r.Query(t0, "foo.net", client3)
	if a1.Servers[0] == a3.Servers[0] {
		t.Error("different blocks got the same cached answer")
	}
	// Repeat queries return each block's own answer.
	b1, _ := r.Query(t0, "foo.net", client2) // same /24 as client1
	if !b1.FromCache || b1.Servers[0] != a1.Servers[0] {
		t.Errorf("same-block client got %v (cache=%v)", b1.Servers, b1.FromCache)
	}
}
