package resolver

import (
	"net/netip"

	"eum/internal/mapping"
)

// SystemUpstream adapts a mapping.System as a resolver Upstream, so
// simulated LDNSes resolve against the real mapping code path.
type SystemUpstream struct {
	System *mapping.System
	// Snapshot, when non-nil, pins every resolution to one published map
	// epoch; nil resolves against whatever the system currently serves.
	// Deterministic simulations pin the epoch their day was scheduled
	// under, so answers are a pure function of (epoch, request) no matter
	// how day shards interleave with control-plane publishes.
	Snapshot *mapping.Snapshot
	// Demand, if positive, is charged to the chosen servers per
	// resolution (load accounting).
	Demand float64
}

// Resolve implements Upstream.
func (u *SystemUpstream) Resolve(domain string, ldns netip.Addr, clientSubnet netip.Prefix) (Answer, error) {
	resp, err := u.System.MapAt(u.Snapshot, mapping.Request{
		Domain:       domain,
		LDNS:         ldns,
		ClientSubnet: clientSubnet,
		Demand:       u.Demand,
	})
	if err != nil {
		return Answer{}, err
	}
	a := Answer{TTL: resp.TTL, ScopePrefix: resp.ScopePrefix}
	for _, s := range resp.Servers {
		a.Servers = append(a.Servers, s.Addr)
	}
	return a, nil
}
