package resolver_test

import (
	"fmt"
	"net/netip"
	"time"

	"eum/internal/resolver"
)

// fixedUpstream answers every query with a /24-scoped 20s answer.
type fixedUpstream struct{}

func (fixedUpstream) Resolve(domain string, ldns netip.Addr, subnet netip.Prefix) (resolver.Answer, error) {
	a := resolver.Answer{Servers: []netip.Addr{netip.MustParseAddr("23.0.0.1")}, TTL: 20 * time.Second}
	if subnet.IsValid() {
		a.ScopePrefix = 24
	}
	return a, nil
}

// The §5.2 effect in miniature: with ECS on, clients in different /24
// blocks can no longer share a cache entry, so the same three queries cost
// the authoritative side two resolutions instead of one.
func Example() {
	now := time.Date(2014, 4, 1, 0, 0, 0, 0, time.UTC)
	run := func(ecs bool) uint64 {
		r, _ := resolver.New(resolver.Config{
			Addr: netip.MustParseAddr("198.51.100.1"), ECSEnabled: ecs, SourcePrefix: 24,
		}, fixedUpstream{})
		for _, c := range []string{"10.1.1.5", "10.1.1.9", "10.1.2.5"} {
			_, _ = r.Query(now, "www.cdn.example.net", netip.MustParseAddr(c))
		}
		return r.Metrics.UpstreamQueries
	}
	fmt.Printf("upstream queries without ECS: %d, with ECS: %d\n", run(false), run(true))
	// Output: upstream queries without ECS: 1, with ECS: 2
}
