// Package resolver simulates recursive resolvers (LDNSes) with TTL caching,
// including the EDNS Client Subnet cache behaviour of RFC 7871 §7.3.1 that
// drives the paper's scaling results (§5): an ECS-enabled resolver must
// keep one cache entry per (domain, answer scope prefix) instead of one per
// domain, so enabling end-user mapping multiplies the query load its
// clients induce on the CDN's authoritative servers (Fig 23: the roll-out
// raised public-resolver query rates about eight-fold).
//
// Resolvers here run on an explicit simulated clock: every method takes
// `now`, so millions of simulated queries cost no wall-clock waiting.
package resolver

import (
	"fmt"
	"net/netip"
	"time"
)

// Answer is a resolution outcome.
type Answer struct {
	// Servers are the answer's A records.
	Servers []netip.Addr
	// TTL is the remaining validity.
	TTL time.Duration
	// ScopePrefix is the ECS scope of the answer (0 = not client-specific).
	ScopePrefix uint8
	// FromCache reports whether the resolver answered without contacting
	// the authoritative server.
	FromCache bool
}

// Upstream is the authoritative side the resolver queries on cache misses —
// in this repository, the mapping system (via SystemUpstream) or a test
// stub.
type Upstream interface {
	// Resolve answers a query for domain made by resolver ldns,
	// optionally carrying the client's subnet (invalid prefix = no ECS).
	Resolve(domain string, ldns netip.Addr, clientSubnet netip.Prefix) (Answer, error)
}

// Config parameterises a resolver.
type Config struct {
	// Addr is the resolver's address as seen by authoritative servers.
	Addr netip.Addr
	// ECSEnabled makes the resolver forward client subnets and cache
	// per-scope (what public resolver providers turned on).
	ECSEnabled bool
	// SourcePrefix is the IPv4 prefix length forwarded when ECS is
	// enabled; /24 is the convention (longer is discouraged for privacy,
	// §2.1).
	SourcePrefix uint8
	// SourcePrefix6 is the IPv6 source prefix length; 0 means /56
	// (RFC 7871's recommendation).
	SourcePrefix6 uint8
	// MaxTTL optionally caps cached TTLs (0 = no cap).
	MaxTTL time.Duration
}

// Metrics counts resolver activity.
type Metrics struct {
	// ClientQueries is the number of queries received from clients.
	ClientQueries uint64
	// CacheHits is the number answered from cache.
	CacheHits uint64
	// UpstreamQueries is the number forwarded to authoritative servers.
	UpstreamQueries uint64
}

type cacheEntry struct {
	answer  Answer
	expires time.Time
}

// Resolver is a caching recursive resolver. It is not safe for concurrent
// use; the simulation driver owns each resolver.
type Resolver struct {
	cfg      Config
	upstream Upstream

	// plain caches answers that do not depend on the client subnet.
	plain map[string]cacheEntry
	// scoped caches client-specific answers per (domain, scope prefix).
	scoped map[string]map[netip.Prefix]cacheEntry

	// Metrics counts activity; callers may read or reset it.
	Metrics Metrics
	// PerDomainUpstream optionally counts upstream queries by domain
	// (enable with TrackDomains) for the popularity analysis of Fig 24.
	PerDomainUpstream map[string]uint64
}

// New creates a resolver with the given upstream.
func New(cfg Config, up Upstream) (*Resolver, error) {
	if up == nil {
		return nil, fmt.Errorf("resolver: nil upstream")
	}
	if cfg.ECSEnabled && (cfg.SourcePrefix == 0 || cfg.SourcePrefix > 32) {
		cfg.SourcePrefix = 24
	}
	if cfg.SourcePrefix6 == 0 || cfg.SourcePrefix6 > 128 {
		cfg.SourcePrefix6 = 56
	}
	return &Resolver{
		cfg:      cfg,
		upstream: up,
		plain:    map[string]cacheEntry{},
		scoped:   map[string]map[netip.Prefix]cacheEntry{},
	}, nil
}

// TrackDomains enables per-domain upstream query counting.
func (r *Resolver) TrackDomains() {
	if r.PerDomainUpstream == nil {
		r.PerDomainUpstream = map[string]uint64{}
	}
}

// Addr returns the resolver's address.
func (r *Resolver) Addr() netip.Addr { return r.cfg.Addr }

// ECSEnabled reports whether the resolver forwards client subnets.
func (r *Resolver) ECSEnabled() bool { return r.cfg.ECSEnabled }

// SetECSEnabled flips ECS forwarding — how providers "turned on the EDNS0
// extension" during the roll-out. The cache is kept: pre-existing global
// entries remain valid; new answers begin accumulating per-scope.
func (r *Resolver) SetECSEnabled(v bool) { r.cfg.ECSEnabled = v }

// Query resolves domain on behalf of the client at clientAddr at simulated
// time now.
func (r *Resolver) Query(now time.Time, domain string, clientAddr netip.Addr) (Answer, error) {
	r.Metrics.ClientQueries++

	if a, ok := r.lookupCache(now, domain, clientAddr); ok {
		r.Metrics.CacheHits++
		a.FromCache = true
		return a, nil
	}

	// Cache miss: forward upstream, with the client's subnet when ECS is on.
	var subnet netip.Prefix
	if r.cfg.ECSEnabled {
		bits := int(r.cfg.SourcePrefix)
		if clientAddr.Unmap().Is6() {
			bits = int(r.cfg.SourcePrefix6)
		}
		p, err := clientAddr.Unmap().Prefix(bits)
		if err != nil {
			return Answer{}, fmt.Errorf("resolver: client subnet: %w", err)
		}
		subnet = p
	}
	r.Metrics.UpstreamQueries++
	if r.PerDomainUpstream != nil {
		r.PerDomainUpstream[domain]++
	}
	a, err := r.upstream.Resolve(domain, r.cfg.Addr, subnet)
	if err != nil {
		return Answer{}, err
	}
	r.store(now, domain, clientAddr, a)
	a.FromCache = false
	return a, nil
}

// lookupCache finds a valid cached answer for the client: a client-scoped
// entry whose prefix contains the client (longest scope first, RFC 7871
// §7.3.1), else a global entry.
func (r *Resolver) lookupCache(now time.Time, domain string, clientAddr netip.Addr) (Answer, bool) {
	if m := r.scoped[domain]; m != nil {
		var best netip.Prefix
		var bestE cacheEntry
		for p, e := range m {
			if !e.expires.After(now) {
				delete(m, p)
				continue
			}
			if p.Contains(clientAddr.Unmap()) && (!best.IsValid() || p.Bits() > best.Bits()) {
				best, bestE = p, e
			}
		}
		if best.IsValid() {
			a := bestE.answer
			a.TTL = bestE.expires.Sub(now)
			return a, true
		}
	}
	if e, ok := r.plain[domain]; ok {
		if e.expires.After(now) {
			a := e.answer
			a.TTL = e.expires.Sub(now)
			return a, true
		}
		delete(r.plain, domain)
	}
	return Answer{}, false
}

// store files an upstream answer per its ECS scope: scope 0 (or no ECS)
// means the answer is valid for every client and goes in the plain cache;
// a non-zero scope files it under the scoped prefix of the client.
func (r *Resolver) store(now time.Time, domain string, clientAddr netip.Addr, a Answer) {
	ttl := a.TTL
	if r.cfg.MaxTTL > 0 && ttl > r.cfg.MaxTTL {
		ttl = r.cfg.MaxTTL
	}
	e := cacheEntry{answer: a, expires: now.Add(ttl)}
	if a.ScopePrefix == 0 || !r.cfg.ECSEnabled {
		r.plain[domain] = e
		return
	}
	p, err := clientAddr.Unmap().Prefix(int(a.ScopePrefix))
	if err != nil {
		// Malformed scope (beyond the client's address family, RFC 7871
		// §7.3): drop the answer. Filing it in the plain cache would let
		// one client's answer shadow every client of this resolver.
		return
	}
	m := r.scoped[domain]
	if m == nil {
		m = map[netip.Prefix]cacheEntry{}
		r.scoped[domain] = m
	}
	m[p] = e
}

// CacheSize returns the number of live cache entries at time now — the
// memory-side scaling cost of ECS (§5.2: an LDNS may store multiple
// entries per domain, one per client block).
func (r *Resolver) CacheSize(now time.Time) int {
	n := 0
	for _, e := range r.plain {
		if e.expires.After(now) {
			n++
		}
	}
	for _, m := range r.scoped {
		for _, e := range m {
			if e.expires.After(now) {
				n++
			}
		}
	}
	return n
}

// Flush drops the whole cache.
func (r *Resolver) Flush() {
	r.plain = map[string]cacheEntry{}
	r.scoped = map[string]map[netip.Prefix]cacheEntry{}
}
