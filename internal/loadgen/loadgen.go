// Package loadgen is an open-loop DNS load harness: it offers queries to a
// server at a target rate on a deterministic schedule, instead of the
// closed-loop send-wait-send pattern whose offered rate collapses to
// whatever the server sustains. Open-loop load is the honest way to
// measure a serving plane (§5's query rates arrive whether or not the
// server is keeping up): when the server falls behind, latency and
// timeouts grow — the generator does not politely slow down.
//
// Each connection runs an independent sender paced by exponential
// inter-arrival gaps (Poisson arrivals at the per-connection rate) drawn
// from a seeded stream, plus a receiver matching responses to send
// timestamps by DNS query ID. Latencies feed a telemetry.Histogram for
// HDR-style percentiles and a per-second time series; the whole result
// marshals to JSON (see Report).
//
// Under a fixed Config.Seed the offered schedule — inter-arrival gaps,
// query names, ECS picks — is fully deterministic; observed latencies are
// whatever the server and kernel did with that schedule.
package loadgen

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"eum/internal/dnsmsg"
	"eum/internal/par"
	"eum/internal/telemetry"
)

// Config parameterises one load run.
type Config struct {
	// Server is the DNS server's host:port.
	Server string
	// Zone is the zone to query under; names are e<i>.b.<zone>.
	Zone string
	// Rate is the target aggregate offered rate in queries/second
	// (default 1000), split evenly across Conns.
	Rate float64
	// Duration is how long to offer load (default 5s).
	Duration time.Duration
	// Conns is the number of UDP connections, each with its own sender
	// and receiver goroutine (default 4).
	Conns int
	// ECSRatio is the fraction of queries carrying an EDNS client-subnet
	// option drawn from Prefixes (0 disables ECS).
	ECSRatio float64
	// Domains is how many distinct content domains to spread queries over
	// (default 50).
	Domains int
	// Seed fixes the offered schedule. Connection i derives its stream
	// with par.ChildSeed(Seed, i), so schedules stay decorrelated.
	Seed int64
	// Prefixes are the ECS subnets to sample (required when ECSRatio > 0).
	Prefixes []netip.Prefix
	// DrainGrace is how long to keep receiving after the last send before
	// counting stragglers as timeouts (default 500ms).
	DrainGrace time.Duration
}

func (c Config) withDefaults() Config {
	if c.Zone == "" {
		c.Zone = "cdn.example.net"
	}
	if c.Rate <= 0 {
		c.Rate = 1000
	}
	if c.Duration <= 0 {
		c.Duration = 5 * time.Second
	}
	if c.Conns <= 0 {
		c.Conns = 4
	}
	if c.Domains <= 0 {
		c.Domains = 50
	}
	if c.DrainGrace <= 0 {
		c.DrainGrace = 500 * time.Millisecond
	}
	return c
}

// event is one scheduled query: its offset from the run start, the domain
// index to query, and the ECS prefix index (-1 for no ECS).
type event struct {
	at     time.Duration
	domain int
	prefix int
}

// stream generates one connection's deterministic schedule: Poisson
// arrivals at the per-connection rate with independently drawn domain and
// ECS picks. Two streams built from the same (Config, conn) are identical.
type stream struct {
	rng      *rand.Rand
	rate     float64 // per-connection queries/second
	at       time.Duration
	domains  int
	ecsRatio float64
	nprefix  int
}

func newStream(cfg Config, conn int) *stream {
	return &stream{
		rng:      rand.New(rand.NewSource(par.ChildSeed(cfg.Seed, uint64(conn)))),
		rate:     cfg.Rate / float64(cfg.Conns),
		domains:  cfg.Domains,
		ecsRatio: cfg.ECSRatio,
		nprefix:  len(cfg.Prefixes),
	}
}

func (s *stream) next() event {
	// Exponential gaps make the offered process Poisson — the arrival
	// model resolver fleets actually present, with the bursts a uniform
	// pacer would hide.
	s.at += time.Duration(s.rng.ExpFloat64() / s.rate * float64(time.Second))
	ev := event{at: s.at, domain: s.rng.Intn(s.domains), prefix: -1}
	if s.nprefix > 0 && s.rng.Float64() < s.ecsRatio {
		ev.prefix = s.rng.Intn(s.nprefix)
	}
	return ev
}

// LatencySummary is the run's latency distribution in microseconds,
// estimated from power-of-two histogram buckets (values are bucket upper
// bounds, within 2x of the true quantile).
type LatencySummary struct {
	P50Micros  float64 `json:"p50_us"`
	P90Micros  float64 `json:"p90_us"`
	P99Micros  float64 `json:"p99_us"`
	P999Micros float64 `json:"p999_us"`
	MeanMicros float64 `json:"mean_us"`
}

// SecondStats is one second of the run's time series.
type SecondStats struct {
	Second    int     `json:"second"`
	Sent      uint64  `json:"sent"`
	Received  uint64  `json:"received"`
	P50Micros float64 `json:"p50_us"`
	P99Micros float64 `json:"p99_us"`
}

// Report is the result of a load run.
type Report struct {
	Server          string        `json:"server"`
	TargetQPS       float64       `json:"target_qps"`
	DurationSeconds float64       `json:"duration_seconds"`
	Conns           int           `json:"conns"`
	Seed            int64         `json:"seed"`
	Sent            uint64        `json:"sent"`
	Received        uint64        `json:"received"`
	Failures        uint64        `json:"failures"` // responses with RCode != NOERROR
	Timeouts        uint64        `json:"timeouts"` // sends never matched by a response
	OfferedQPS      float64       `json:"offered_qps"`
	AchievedQPS     float64       `json:"achieved_qps"`
	Latency         LatencySummary `json:"latency"`
	Series          []SecondStats `json:"series"`
}

// secondBucket accumulates one second of the series.
type secondBucket struct {
	sent     atomic.Uint64
	received atomic.Uint64
	hist     telemetry.Histogram
}

// idSlots is the number of in-flight slots per connection: one per
// possible DNS query ID, indexed directly by ID.
const idSlots = 65536

// connState is one connection's transport and matching state.
type connState struct {
	conn *net.UDPConn
	// inflight[id] is the send time (unix nanos) of the outstanding query
	// with that DNS ID, 0 when the slot is free. A sender overwriting a
	// non-zero slot means the previous query went unanswered for a full
	// ID-space wrap: counted as a timeout.
	inflight []atomic.Int64
	sent     uint64 // sender-goroutine local until the run ends
	timeouts uint64
	received atomic.Uint64
	failures atomic.Uint64
}

// Run offers the configured load and reports what came back. The context
// cancels the run early (the report covers what was offered so far).
func Run(ctx context.Context, cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	if cfg.ECSRatio > 0 && len(cfg.Prefixes) == 0 {
		return nil, fmt.Errorf("loadgen: ECSRatio %v with no Prefixes to sample", cfg.ECSRatio)
	}

	nsec := int(cfg.Duration/time.Second) + 1
	series := make([]*secondBucket, nsec)
	for i := range series {
		series[i] = &secondBucket{}
	}
	bucketAt := func(start time.Time, t time.Time) *secondBucket {
		i := int(t.Sub(start) / time.Second)
		if i < 0 {
			i = 0
		}
		if i >= len(series) {
			i = len(series) - 1
		}
		return series[i]
	}

	conns := make([]*connState, cfg.Conns)
	for i := range conns {
		raddr, err := net.ResolveUDPAddr("udp", cfg.Server)
		if err != nil {
			return nil, fmt.Errorf("loadgen: %w", err)
		}
		c, err := net.DialUDP("udp", nil, raddr)
		if err != nil {
			return nil, fmt.Errorf("loadgen: %w", err)
		}
		defer c.Close()
		conns[i] = &connState{conn: c, inflight: make([]atomic.Int64, idSlots)}
	}

	var hist telemetry.Histogram
	start := time.Now()
	var senders, receivers sync.WaitGroup

	for i, cs := range conns {
		receivers.Add(1)
		go func(cs *connState) {
			defer receivers.Done()
			buf := make([]byte, 4096)
			for {
				n, err := cs.conn.Read(buf)
				if err != nil {
					return // deadline (drain over) or closed
				}
				now := time.Now()
				if n < 12 {
					continue
				}
				id := uint16(buf[0])<<8 | uint16(buf[1])
				t0 := cs.inflight[id].Swap(0)
				if t0 == 0 {
					continue // duplicate or post-timeout straggler
				}
				lat := now.UnixNano() - t0
				hist.ObserveNanos(lat)
				b := bucketAt(start, now)
				b.received.Add(1)
				b.hist.ObserveNanos(lat)
				cs.received.Add(1)
				if buf[3]&0x0f != 0 {
					cs.failures.Add(1)
				}
			}
		}(cs)

		senders.Add(1)
		go func(i int, cs *connState) {
			defer senders.Done()
			st := newStream(cfg, i)
			var seq uint16
			for {
				ev := st.next()
				if ev.at > cfg.Duration || ctx.Err() != nil {
					return
				}
				if d := time.Until(start.Add(ev.at)); d > 0 {
					time.Sleep(d)
				}
				id := seq
				seq++
				q := dnsmsg.NewQuery(id, dnsmsg.Name(fmt.Sprintf("e%04d.b.%s", ev.domain, cfg.Zone)), dnsmsg.TypeA)
				if ev.prefix >= 0 {
					p := cfg.Prefixes[ev.prefix]
					if err := q.SetClientSubnet(p.Addr(), uint8(p.Bits())); err != nil {
						continue
					}
				}
				wire, err := q.Pack()
				if err != nil {
					continue
				}
				now := time.Now()
				if prev := cs.inflight[id].Swap(now.UnixNano()); prev != 0 {
					cs.timeouts++ // unanswered for a full ID wrap
				}
				if _, err := cs.conn.Write(wire); err != nil {
					cs.inflight[id].Store(0)
					continue
				}
				cs.sent++
				bucketAt(start, now).sent.Add(1)
			}
		}(i, cs)
	}

	senders.Wait()
	offeredFor := time.Since(start)
	// Grace period for stragglers, then wake the receivers.
	deadline := time.Now().Add(cfg.DrainGrace)
	if dl, ok := ctx.Deadline(); ok && dl.Before(deadline) {
		deadline = dl
	}
	for _, cs := range conns {
		_ = cs.conn.SetReadDeadline(deadline)
	}
	receivers.Wait()

	rep := &Report{
		Server:          cfg.Server,
		TargetQPS:       cfg.Rate,
		DurationSeconds: cfg.Duration.Seconds(),
		Conns:           cfg.Conns,
		Seed:            cfg.Seed,
	}
	for _, cs := range conns {
		rep.Sent += cs.sent
		rep.Received += cs.received.Load()
		rep.Failures += cs.failures.Load()
		rep.Timeouts += cs.timeouts
		for i := range cs.inflight {
			if cs.inflight[i].Load() != 0 {
				rep.Timeouts++
			}
		}
	}
	if offeredFor > 0 {
		rep.OfferedQPS = float64(rep.Sent) / offeredFor.Seconds()
		rep.AchievedQPS = float64(rep.Received) / offeredFor.Seconds()
	}
	snap := hist.Snapshot()
	rep.Latency = LatencySummary{
		P50Micros:  micros(snap.Quantile(0.50)),
		P90Micros:  micros(snap.Quantile(0.90)),
		P99Micros:  micros(snap.Quantile(0.99)),
		P999Micros: micros(snap.Quantile(0.999)),
		MeanMicros: micros(snap.Mean()),
	}
	for i, b := range series {
		sent := b.sent.Load()
		if sent == 0 && b.received.Load() == 0 {
			continue
		}
		bs := b.hist.Snapshot()
		rep.Series = append(rep.Series, SecondStats{
			Second:    i,
			Sent:      sent,
			Received:  b.received.Load(),
			P50Micros: micros(bs.Quantile(0.50)),
			P99Micros: micros(bs.Quantile(0.99)),
		})
	}
	return rep, nil
}

func micros(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }
