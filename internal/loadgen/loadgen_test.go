package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"net/netip"
	"sync/atomic"
	"testing"
	"time"

	"eum/internal/dnsmsg"
	"eum/internal/dnsserver"
)

// TestStreamDeterministic pins the open-loop schedule: the same (seed,
// conn) pair must replay identically, and different conns must decorrelate.
func TestStreamDeterministic(t *testing.T) {
	cfg := Config{
		Rate: 500, Conns: 2, Domains: 50, Seed: 42, ECSRatio: 0.5,
		Prefixes: []netip.Prefix{netip.MustParsePrefix("203.0.113.0/24")},
	}.withDefaults()

	a, b := newStream(cfg, 0), newStream(cfg, 0)
	other := newStream(cfg, 1)
	var diverged bool
	for i := 0; i < 1000; i++ {
		ea, eb, eo := a.next(), b.next(), other.next()
		if ea != eb {
			t.Fatalf("event %d: same seed diverged: %+v vs %+v", i, ea, eb)
		}
		if ea != eo {
			diverged = true
		}
		if ea.domain < 0 || ea.domain >= cfg.Domains {
			t.Fatalf("event %d: domain %d out of range", i, ea.domain)
		}
		if ea.prefix >= len(cfg.Prefixes) {
			t.Fatalf("event %d: prefix %d out of range", i, ea.prefix)
		}
	}
	if !diverged {
		t.Error("conn 0 and conn 1 produced identical schedules")
	}
	if a.at <= 0 {
		t.Error("schedule time never advanced")
	}
}

// TestRunAgainstServer offers a short burst at a local dnsserver and checks
// the report's accounting: everything offered comes back, percentiles and
// the per-second series are populated, ECS queries carry the option.
func TestRunAgainstServer(t *testing.T) {
	var ecsSeen, plainSeen atomic.Uint64
	srv, err := dnsserver.ListenConfig("127.0.0.1:0", dnsserver.HandlerFunc(
		func(remote netip.AddrPort, q *dnsmsg.Message) *dnsmsg.Message {
			if q.ClientSubnet() != nil {
				ecsSeen.Add(1)
			} else {
				plainSeen.Add(1)
			}
			resp := q.Reply()
			resp.Authoritative = true
			resp.Answers = append(resp.Answers, dnsmsg.RR{
				Name: q.Questions[0].Name, Class: dnsmsg.ClassINET, TTL: 20,
				Data: &dnsmsg.A{Addr: netip.MustParseAddr("192.0.2.1")},
			})
			return resp
		}), dnsserver.Config{ListenerShards: 1})
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve() }()
	defer srv.Close()

	rep, err := Run(context.Background(), Config{
		Server:   srv.Addr().String(),
		Rate:     400,
		Duration: 1 * time.Second,
		Conns:    2,
		ECSRatio: 0.5,
		Seed:     7,
		Prefixes: []netip.Prefix{netip.MustParsePrefix("203.0.113.0/24")},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sent == 0 {
		t.Fatal("nothing sent")
	}
	if rep.Received != rep.Sent || rep.Timeouts != 0 {
		t.Errorf("received %d of %d sent, %d timeouts (loopback should lose nothing)",
			rep.Received, rep.Sent, rep.Timeouts)
	}
	if rep.Failures != 0 {
		t.Errorf("failures = %d", rep.Failures)
	}
	if rep.OfferedQPS <= 0 || rep.AchievedQPS <= 0 {
		t.Errorf("qps = %v offered / %v achieved", rep.OfferedQPS, rep.AchievedQPS)
	}
	if rep.Latency.P50Micros <= 0 || rep.Latency.P99Micros < rep.Latency.P50Micros {
		t.Errorf("latency summary = %+v", rep.Latency)
	}
	if rep.Latency.P999Micros < rep.Latency.P99Micros {
		t.Errorf("p999 %v < p99 %v", rep.Latency.P999Micros, rep.Latency.P99Micros)
	}
	if len(rep.Series) == 0 {
		t.Error("empty per-second series")
	}
	var seriesSent uint64
	for _, s := range rep.Series {
		seriesSent += s.Sent
	}
	if seriesSent != rep.Sent {
		t.Errorf("series sums to %d sent, report says %d", seriesSent, rep.Sent)
	}
	if ecsSeen.Load() == 0 || plainSeen.Load() == 0 {
		t.Errorf("ECS mix not exercised: %d ecs / %d plain", ecsSeen.Load(), plainSeen.Load())
	}
}

// TestReportJSONRoundTrip checks the report marshals with the stable field
// names consumers (scripts plotting the series) rely on.
func TestReportJSONRoundTrip(t *testing.T) {
	rep := &Report{
		Server: "127.0.0.1:53", TargetQPS: 1000, DurationSeconds: 5, Conns: 4, Seed: 9,
		Sent: 5000, Received: 4990, Timeouts: 10,
		Latency: LatencySummary{P50Micros: 128, P99Micros: 512},
		Series:  []SecondStats{{Second: 0, Sent: 1000, Received: 998, P50Micros: 128}},
	}
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"target_qps"`, `"offered_qps"`, `"achieved_qps"`, `"p50_us"`, `"p999_us"`, `"series"`, `"timeouts"`} {
		if !bytes.Contains(data, []byte(key)) {
			t.Errorf("JSON missing %s: %s", key, data)
		}
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Sent != rep.Sent || back.Series[0].Received != 998 {
		t.Errorf("round trip = %+v", back)
	}
}

