//go:build !linux

package dnsserver

import (
	"errors"
	"net"
)

// defaultListenerShards is 1 off Linux: without SO_REUSEPORT there is
// nothing to fan out across, so the server keeps the single-socket layout.
func defaultListenerShards() int { return 1 }

// listenReusePort is the non-Linux stub: multi-shard listening needs
// SO_REUSEPORT semantics this package only wires up on Linux. Callers on
// other platforms should run one shard (ListenerShards: 1) or supply their
// own sockets via NewConns.
func listenReusePort(addr string) (net.PacketConn, error) {
	return nil, errors.New("SO_REUSEPORT sharding requires linux; set ListenerShards to 1 or use NewConns")
}
