package dnsserver

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"eum/internal/dnsmsg"
)

// maxTCPMessage bounds accepted TCP message sizes.
const maxTCPMessage = 65535

// tcpReadTimeout bounds how long a TCP connection may sit idle between
// queries before the server closes it.
const tcpReadTimeout = 10 * time.Second

// TCPServer serves DNS over TCP (RFC 1035 §4.2.2 two-byte length framing).
// Authoritative servers need it for responses that exceed the client's UDP
// payload size: the UDP path answers with TC=1 and the client retries over
// TCP.
type TCPServer struct {
	ln      net.Listener
	handler Handler

	// Metrics exposes live counters (shared semantics with Server).
	Metrics Metrics

	mu     sync.Mutex
	closed bool
	wg     sync.WaitGroup
}

// ListenTCP binds a TCP listener on addr.
func ListenTCP(addr string, h Handler) (*TCPServer, error) {
	if h == nil {
		return nil, errors.New("dnsserver: nil handler")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("dnsserver: %w", err)
	}
	return &TCPServer{ln: ln, handler: h}, nil
}

// Addr returns the bound address.
func (s *TCPServer) Addr() net.Addr { return s.ln.Addr() }

// Serve accepts connections until Close. Each connection may carry
// multiple queries in sequence.
func (s *TCPServer) Serve() error {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return fmt.Errorf("dnsserver: accept: %w", err)
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
		}()
	}
}

func (s *TCPServer) serveConn(conn net.Conn) {
	defer conn.Close()
	raddr, ok := remoteAddrPort(conn.RemoteAddr())
	if !ok {
		return
	}
	for {
		_ = conn.SetReadDeadline(time.Now().Add(tcpReadTimeout))
		msg, err := ReadTCPMessage(conn)
		if err != nil {
			return
		}
		query, err := dnsmsg.Unpack(msg)
		if err != nil || query.Response {
			s.Metrics.Malformed.Add(1)
			return
		}
		s.Metrics.Queries.Add(1)
		resp := safeServe(s.handler, &s.Metrics, raddr, query)
		if resp == nil {
			s.Metrics.Dropped.Add(1)
			return
		}
		wire, err := resp.Pack()
		if err != nil {
			return
		}
		if err := WriteTCPMessage(conn, wire); err != nil {
			return
		}
		s.Metrics.Responses.Add(1)
	}
}

// Close stops the listener and waits for in-flight connections.
func (s *TCPServer) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

// ReadTCPMessage reads one length-prefixed DNS message.
func ReadTCPMessage(r io.Reader) ([]byte, error) {
	var lenBuf [2]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return nil, err
	}
	n := int(binary.BigEndian.Uint16(lenBuf[:]))
	if n == 0 {
		return nil, errors.New("dnsserver: zero-length TCP message")
	}
	msg := make([]byte, n)
	if _, err := io.ReadFull(r, msg); err != nil {
		return nil, err
	}
	return msg, nil
}

// WriteTCPMessage writes one length-prefixed DNS message.
func WriteTCPMessage(w io.Writer, msg []byte) error {
	if len(msg) > maxTCPMessage {
		return fmt.Errorf("dnsserver: message of %d bytes exceeds TCP limit", len(msg))
	}
	var lenBuf [2]byte
	binary.BigEndian.PutUint16(lenBuf[:], uint16(len(msg)))
	if _, err := w.Write(lenBuf[:]); err != nil {
		return err
	}
	_, err := w.Write(msg)
	return err
}

// TruncateFor shrinks resp to fit within size bytes when packed, per the
// conventional minimal-truncation strategy: drop all records and set TC=1
// so the client retries over TCP (RFC 2181 §9 warns against partial
// answer sets). It returns the packed wire form.
func TruncateFor(resp *dnsmsg.Message, size int) ([]byte, error) {
	return TruncateAppend(nil, resp, size)
}

// TruncateAppend is TruncateFor packing into buf (which must be empty,
// see dnsmsg.AppendPack), so servers can recycle response wire buffers.
func TruncateAppend(buf []byte, resp *dnsmsg.Message, size int) ([]byte, error) {
	wire, err := resp.AppendPack(buf)
	if err != nil {
		return nil, err
	}
	if len(wire) <= size {
		return wire, nil
	}
	truncated := *resp
	truncated.Truncated = true
	truncated.Answers = nil
	truncated.Authorities = nil
	truncated.Additionals = nil
	return truncated.AppendPack(wire[:0])
}
