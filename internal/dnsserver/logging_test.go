package dnsserver

import (
	"bytes"
	"io"
	"log/slog"
	"net/netip"
	"strings"
	"testing"

	"eum/internal/dnsmsg"
)

func TestWithLogging(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&buf, nil))
	h := WithLogging(&echoHandler{}, logger)

	q := dnsmsg.NewQuery(5, "logged.example.net", dnsmsg.TypeA)
	_ = q.SetClientSubnet(netip.MustParseAddr("203.0.113.0"), 24)
	resp := h.ServeDNS(netip.MustParseAddrPort("198.51.100.9:5353"), q)
	if resp == nil {
		t.Fatal("no response through logging wrapper")
	}
	out := buf.String()
	for _, want := range []string{
		`"name":"logged.example.net"`,
		`"type":"A"`,
		`"ecs":"203.0.113.0/24"`,
		`"rcode":"NOERROR"`,
		`"remote":"198.51.100.9:5353"`,
		`"answers":1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("log missing %s:\n%s", want, out)
		}
	}
}

func TestWithLoggingDropped(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&buf, nil))
	h := WithLogging(HandlerFunc(func(netip.AddrPort, *dnsmsg.Message) *dnsmsg.Message {
		return nil
	}), logger)
	q := dnsmsg.NewQuery(6, "dropped.example.net", dnsmsg.TypeA)
	if resp := h.ServeDNS(netip.MustParseAddrPort("10.0.0.1:53"), q); resp != nil {
		t.Fatal("wrapper invented a response")
	}
	if !strings.Contains(buf.String(), `"dropped":true`) {
		t.Errorf("drop not logged:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "WARN") {
		t.Errorf("drop not logged at WARN:\n%s", buf.String())
	}
}

// TestWithLoggingDisabledLevelSkipsWork is the regression test for the
// attribute-construction bug: the wrapper used to build the full attribute
// set (remote string, ECS prefix, rcode) for every query even when the
// logger's level discarded the record. With logging disabled the wrapper
// must now cost zero allocations per query.
func TestWithLoggingDisabledLevelSkipsWork(t *testing.T) {
	logger := slog.New(slog.NewJSONHandler(io.Discard, &slog.HandlerOptions{
		Level: slog.LevelError, // both INFO answers and WARN drops disabled
	}))
	canned := (&dnsmsg.Message{}).Reply()
	h := WithLogging(HandlerFunc(func(netip.AddrPort, *dnsmsg.Message) *dnsmsg.Message {
		return canned
	}), logger)
	q := dnsmsg.NewQuery(8, "quiet.example.net", dnsmsg.TypeA)
	_ = q.SetClientSubnet(netip.MustParseAddr("203.0.113.0"), 24)
	remote := netip.MustParseAddrPort("198.51.100.9:5353")
	if allocs := testing.AllocsPerRun(100, func() {
		if h.ServeDNS(remote, q) == nil {
			t.Fatal("no response")
		}
	}); allocs != 0 {
		t.Errorf("disabled logging still allocates %.0f per query, want 0", allocs)
	}
}

// TestWithLoggingMultiQuestion checks the wrapper records the question
// count when a query carries more than one question, instead of silently
// logging only the first.
func TestWithLoggingMultiQuestion(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&buf, nil))
	h := WithLogging(&echoHandler{}, logger)
	q := dnsmsg.NewQuery(9, "one.example.net", dnsmsg.TypeA)
	q.Questions = append(q.Questions, dnsmsg.Question{
		Name: "two.example.net", Type: dnsmsg.TypeA, Class: dnsmsg.ClassINET,
	})
	if resp := h.ServeDNS(netip.MustParseAddrPort("10.0.0.1:53"), q); resp == nil {
		t.Fatal("no response")
	}
	out := buf.String()
	if !strings.Contains(out, `"questions":2`) {
		t.Errorf("multi-question query did not log its question count:\n%s", out)
	}
	if !strings.Contains(out, `"name":"one.example.net"`) {
		t.Errorf("first question missing from log:\n%s", out)
	}
}

func TestWithLoggingNilLogger(t *testing.T) {
	// nil logger falls back to slog.Default without panicking.
	h := WithLogging(&echoHandler{}, nil)
	q := dnsmsg.NewQuery(7, "x.example.net", dnsmsg.TypeA)
	if resp := h.ServeDNS(netip.MustParseAddrPort("10.0.0.1:53"), q); resp == nil {
		t.Fatal("no response")
	}
}
