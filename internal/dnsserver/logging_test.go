package dnsserver

import (
	"bytes"
	"log/slog"
	"net/netip"
	"strings"
	"testing"

	"eum/internal/dnsmsg"
)

func TestWithLogging(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&buf, nil))
	h := WithLogging(&echoHandler{}, logger)

	q := dnsmsg.NewQuery(5, "logged.example.net", dnsmsg.TypeA)
	_ = q.SetClientSubnet(netip.MustParseAddr("203.0.113.0"), 24)
	resp := h.ServeDNS(netip.MustParseAddrPort("198.51.100.9:5353"), q)
	if resp == nil {
		t.Fatal("no response through logging wrapper")
	}
	out := buf.String()
	for _, want := range []string{
		`"name":"logged.example.net"`,
		`"type":"A"`,
		`"ecs":"203.0.113.0/24"`,
		`"rcode":"NOERROR"`,
		`"remote":"198.51.100.9:5353"`,
		`"answers":1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("log missing %s:\n%s", want, out)
		}
	}
}

func TestWithLoggingDropped(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&buf, nil))
	h := WithLogging(HandlerFunc(func(netip.AddrPort, *dnsmsg.Message) *dnsmsg.Message {
		return nil
	}), logger)
	q := dnsmsg.NewQuery(6, "dropped.example.net", dnsmsg.TypeA)
	if resp := h.ServeDNS(netip.MustParseAddrPort("10.0.0.1:53"), q); resp != nil {
		t.Fatal("wrapper invented a response")
	}
	if !strings.Contains(buf.String(), `"dropped":true`) {
		t.Errorf("drop not logged:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "WARN") {
		t.Errorf("drop not logged at WARN:\n%s", buf.String())
	}
}

func TestWithLoggingNilLogger(t *testing.T) {
	// nil logger falls back to slog.Default without panicking.
	h := WithLogging(&echoHandler{}, nil)
	q := dnsmsg.NewQuery(7, "x.example.net", dnsmsg.TypeA)
	if resp := h.ServeDNS(netip.MustParseAddrPort("10.0.0.1:53"), q); resp == nil {
		t.Fatal("no response")
	}
}
