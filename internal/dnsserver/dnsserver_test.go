package dnsserver

import (
	"context"
	"net"
	"net/netip"
	"sync"
	"testing"
	"time"

	"eum/internal/dnsclient"
	"eum/internal/dnsmsg"
)

// echoHandler answers every A query with a fixed address and records the
// remote addresses it saw.
type echoHandler struct {
	mu      sync.Mutex
	remotes []netip.AddrPort
}

func (h *echoHandler) ServeDNS(remote netip.AddrPort, q *dnsmsg.Message) *dnsmsg.Message {
	h.mu.Lock()
	h.remotes = append(h.remotes, remote)
	h.mu.Unlock()
	r := q.Reply()
	r.Authoritative = true
	if len(q.Questions) == 1 && q.Questions[0].Type == dnsmsg.TypeA {
		r.Answers = append(r.Answers, dnsmsg.RR{
			Name: q.Questions[0].Name, Class: dnsmsg.ClassINET, TTL: 30,
			Data: &dnsmsg.A{Addr: netip.MustParseAddr("192.0.2.53")},
		})
	}
	return r
}

func startServer(t *testing.T, h Handler) *Server {
	t.Helper()
	s, err := Listen("127.0.0.1:0", h)
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = s.Serve() }()
	t.Cleanup(func() { _ = s.Close() })
	return s
}

func TestServeAndExchange(t *testing.T) {
	h := &echoHandler{}
	s := startServer(t, h)
	c := &dnsclient.Client{Timeout: time.Second}
	resp, err := c.Lookup(context.Background(), s.Addr().String(), "a.example.net", dnsmsg.TypeA, netip.Prefix{})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Answers) != 1 {
		t.Fatalf("answers = %d", len(resp.Answers))
	}
	a := resp.Answers[0].Data.(*dnsmsg.A)
	if a.Addr != netip.MustParseAddr("192.0.2.53") {
		t.Errorf("answer = %v", a.Addr)
	}
	if got := s.Metrics.Queries.Load(); got != 1 {
		t.Errorf("queries metric = %d", got)
	}
	if got := s.Metrics.Responses.Load(); got != 1 {
		t.Errorf("responses metric = %d", got)
	}
}

func TestECSCarriedOverWire(t *testing.T) {
	var gotECS *dnsmsg.ClientSubnet
	var mu sync.Mutex
	h := HandlerFunc(func(remote netip.AddrPort, q *dnsmsg.Message) *dnsmsg.Message {
		mu.Lock()
		gotECS = q.ClientSubnet()
		mu.Unlock()
		return q.Reply()
	})
	s := startServer(t, h)
	c := &dnsclient.Client{Timeout: time.Second}
	_, err := c.Lookup(context.Background(), s.Addr().String(), "b.example.net", dnsmsg.TypeA,
		netip.MustParsePrefix("203.0.113.0/24"))
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if gotECS == nil {
		t.Fatal("server did not receive ECS option")
	}
	if gotECS.SourcePrefix != 24 || gotECS.Address != netip.MustParseAddr("203.0.113.0") {
		t.Errorf("ecs = %+v", gotECS)
	}
}

func TestConcurrentQueries(t *testing.T) {
	h := &echoHandler{}
	s := startServer(t, h)
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := &dnsclient.Client{Timeout: 2 * time.Second}
			name := dnsmsg.Name("conc.example.net")
			if _, err := c.Lookup(context.Background(), s.Addr().String(), name, dnsmsg.TypeA, netip.Prefix{}); err != nil {
				errs <- err
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if got := s.Metrics.Queries.Load(); got != 32 {
		t.Errorf("queries = %d, want 32", got)
	}
}

func TestMalformedDatagramCounted(t *testing.T) {
	h := &echoHandler{}
	s := startServer(t, h)
	conn, err := net.Dial("udp", s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if s.Metrics.Malformed.Load() == 1 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Error("malformed datagram not counted")
}

func TestDroppedQueries(t *testing.T) {
	h := HandlerFunc(func(netip.AddrPort, *dnsmsg.Message) *dnsmsg.Message { return nil })
	s := startServer(t, h)
	c := &dnsclient.Client{Timeout: 200 * time.Millisecond, Retries: 0}
	_, err := c.Lookup(context.Background(), s.Addr().String(), "drop.example.net", dnsmsg.TypeA, netip.Prefix{})
	if err == nil {
		t.Error("dropped query returned a response")
	}
	if got := s.Metrics.Dropped.Load(); got != 1 {
		t.Errorf("dropped = %d", got)
	}
}

func TestResponsesIgnoredAsQueries(t *testing.T) {
	h := &echoHandler{}
	s := startServer(t, h)
	conn, err := net.Dial("udp", s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	m := dnsmsg.NewQuery(9, "loop.example.net", dnsmsg.TypeA)
	m.Response = true // a response arriving at a server: spoof/loop risk
	wire, _ := m.Pack()
	if _, err := conn.Write(wire); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if s.Metrics.Malformed.Load() == 1 {
			if s.Metrics.Queries.Load() != 0 {
				t.Error("response datagram counted as query")
			}
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Error("response datagram not rejected")
}

func TestListenNilHandler(t *testing.T) {
	if _, err := Listen("127.0.0.1:0", nil); err == nil {
		t.Error("nil handler accepted")
	}
}

func TestCloseIdempotent(t *testing.T) {
	s := startServer(t, &echoHandler{})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal("second Close errored:", err)
	}
}

func TestClientRetries(t *testing.T) {
	// Handler drops the first query and answers the second: the client's
	// retry must succeed.
	var n int
	var mu sync.Mutex
	h := HandlerFunc(func(remote netip.AddrPort, q *dnsmsg.Message) *dnsmsg.Message {
		mu.Lock()
		defer mu.Unlock()
		n++
		if n == 1 {
			return nil
		}
		return q.Reply()
	})
	s := startServer(t, h)
	c := &dnsclient.Client{Timeout: 150 * time.Millisecond, Retries: 2}
	if _, err := c.Lookup(context.Background(), s.Addr().String(), "retry.example.net", dnsmsg.TypeA, netip.Prefix{}); err != nil {
		t.Fatalf("retry did not recover: %v", err)
	}
}

func TestClientContextCancel(t *testing.T) {
	h := HandlerFunc(func(netip.AddrPort, *dnsmsg.Message) *dnsmsg.Message { return nil })
	s := startServer(t, h)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	c := &dnsclient.Client{Timeout: 5 * time.Second, Retries: 5}
	start := time.Now()
	_, err := c.Lookup(ctx, s.Addr().String(), "ctx.example.net", dnsmsg.TypeA, netip.Prefix{})
	if err == nil {
		t.Fatal("cancelled lookup succeeded")
	}
	if time.Since(start) > 2*time.Second {
		t.Error("context cancellation not honoured promptly")
	}
}
