package dnsserver

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"net/netip"
	"testing"
	"time"

	"eum/internal/dnsclient"
	"eum/internal/dnsmsg"
)

// bigHandler answers with n A records, enough to overflow small UDP sizes.
type bigHandler struct{ n int }

func (h *bigHandler) ServeDNS(remote netip.AddrPort, q *dnsmsg.Message) *dnsmsg.Message {
	r := q.Reply()
	r.Authoritative = true
	for i := 0; i < h.n; i++ {
		r.Answers = append(r.Answers, dnsmsg.RR{
			Name: q.Questions[0].Name, Class: dnsmsg.ClassINET, TTL: 30,
			Data: &dnsmsg.A{Addr: netip.AddrFrom4([4]byte{192, 0, 2, byte(i)})},
		})
	}
	return r
}

func startTCP(t *testing.T, h Handler) *TCPServer {
	t.Helper()
	s, err := ListenTCP("127.0.0.1:0", h)
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = s.Serve() }()
	t.Cleanup(func() { _ = s.Close() })
	return s
}

// startBoth runs UDP and TCP servers on the same port.
func startBoth(t *testing.T, h Handler) (udp *Server, tcp *TCPServer, addr string) {
	t.Helper()
	udp = startServer(t, h)
	port := udp.Addr().(*net.UDPAddr).Port
	tcp, err := ListenTCP(fmt.Sprintf("127.0.0.1:%d", port), h)
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = tcp.Serve() }()
	t.Cleanup(func() { _ = tcp.Close() })
	return udp, tcp, udp.Addr().String()
}

func TestTCPServeBasic(t *testing.T) {
	s := startTCP(t, &bigHandler{n: 2})
	conn, err := net.Dial("tcp", s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	q := dnsmsg.NewQuery(7, "tcp.example.net", dnsmsg.TypeA)
	wire, _ := q.Pack()
	if err := WriteTCPMessage(conn, wire); err != nil {
		t.Fatal(err)
	}
	msg, err := ReadTCPMessage(conn)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := dnsmsg.Unpack(msg)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Answers) != 2 || resp.ID != 7 {
		t.Errorf("resp: %d answers, id %d", len(resp.Answers), resp.ID)
	}
	if s.Metrics.Queries.Load() != 1 || s.Metrics.Responses.Load() != 1 {
		t.Error("metrics not updated")
	}
}

func TestTCPMultipleQueriesPerConnection(t *testing.T) {
	s := startTCP(t, &bigHandler{n: 1})
	conn, err := net.Dial("tcp", s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	for i := uint16(1); i <= 3; i++ {
		q := dnsmsg.NewQuery(i, "multi.example.net", dnsmsg.TypeA)
		wire, _ := q.Pack()
		if err := WriteTCPMessage(conn, wire); err != nil {
			t.Fatal(err)
		}
		msg, err := ReadTCPMessage(conn)
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		resp, _ := dnsmsg.Unpack(msg)
		if resp.ID != i {
			t.Fatalf("query %d answered with id %d", i, resp.ID)
		}
	}
}

func TestUDPTruncatesOversizedResponse(t *testing.T) {
	// 100 A records ≈ 1.6KB+, beyond a 512-byte non-EDNS limit.
	h := &bigHandler{n: 100}
	s := startServer(t, h)
	conn, err := net.Dial("udp", s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	q := dnsmsg.NewQuery(9, "big.example.net", dnsmsg.TypeA)
	q.EDNS = false // classic 512-byte client
	wire, _ := q.Pack()
	if _, err := conn.Write(wire); err != nil {
		t.Fatal(err)
	}
	_ = conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 65535)
	n, err := conn.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	if n > 512 {
		t.Errorf("response %d bytes exceeds 512", n)
	}
	resp, err := dnsmsg.Unpack(buf[:n])
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Truncated {
		t.Error("oversized response not marked TC")
	}
	if len(resp.Answers) != 0 {
		t.Error("truncated response still carries answers")
	}
}

func TestUDPRespectsEDNSSize(t *testing.T) {
	// 40 A records fit in 1232 bytes; an EDNS client gets them untruncated.
	h := &bigHandler{n: 40}
	s := startServer(t, h)
	c := &dnsclient.Client{Timeout: time.Second, DisableTCPFallback: true}
	resp, err := c.Lookup(context.Background(), s.Addr().String(), "edns.example.net", dnsmsg.TypeA, netip.Prefix{})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Truncated || len(resp.Answers) != 40 {
		t.Errorf("tc=%v answers=%d", resp.Truncated, len(resp.Answers))
	}
}

func TestClientTCPFallback(t *testing.T) {
	// 200 A records overflow even the EDNS 1232-byte size; the client
	// must retry over TCP and get the full answer.
	h := &bigHandler{n: 200}
	_, _, addr := startBoth(t, h)
	c := &dnsclient.Client{Timeout: 2 * time.Second}
	resp, err := c.Lookup(context.Background(), addr, "fallback.example.net", dnsmsg.TypeA, netip.Prefix{})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Truncated {
		t.Error("TCP fallback response still truncated")
	}
	if len(resp.Answers) != 200 {
		t.Errorf("answers = %d, want 200", len(resp.Answers))
	}
}

func TestClientTCPFallbackDisabled(t *testing.T) {
	h := &bigHandler{n: 200}
	_, _, addr := startBoth(t, h)
	c := &dnsclient.Client{Timeout: 2 * time.Second, DisableTCPFallback: true}
	resp, err := c.Lookup(context.Background(), addr, "notcp.example.net", dnsmsg.TypeA, netip.Prefix{})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Truncated {
		t.Error("expected truncated response with fallback disabled")
	}
}

func TestClientTCPFallbackServerDown(t *testing.T) {
	// UDP answers truncated but no TCP listener: the client returns the
	// truncated UDP response but flags it with ErrTCPFallbackFailed so the
	// caller knows the answer is partial, and counts the event.
	h := &bigHandler{n: 200}
	s := startServer(t, h)
	c := &dnsclient.Client{Timeout: 500 * time.Millisecond}
	resp, err := c.Lookup(context.Background(), s.Addr().String(), "half.example.net", dnsmsg.TypeA, netip.Prefix{})
	if !errors.Is(err, dnsclient.ErrTCPFallbackFailed) {
		t.Fatalf("err = %v, want ErrTCPFallbackFailed", err)
	}
	if resp == nil || !resp.Truncated {
		t.Fatal("truncated UDP response not returned alongside the error")
	}
	if got := c.Stats.TCPFallbackFailures.Load(); got != 1 {
		t.Errorf("TCPFallbackFailures = %d, want 1", got)
	}
}

func TestTCPMalformedFrame(t *testing.T) {
	s := startTCP(t, &bigHandler{n: 1})
	conn, err := net.Dial("tcp", s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Length says 5 bytes, then garbage: server must drop the connection.
	if err := WriteTCPMessage(conn, []byte{1, 2, 3, 4, 5}); err != nil {
		t.Fatal(err)
	}
	_ = conn.SetReadDeadline(time.Now().Add(time.Second))
	if _, err := ReadTCPMessage(conn); err == nil {
		t.Error("expected connection close after malformed message")
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if s.Metrics.Malformed.Load() == 1 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Error("malformed TCP message not counted")
}

func TestTCPMessageFraming(t *testing.T) {
	var buf bytes.Buffer
	msg := []byte("hello dns")
	if err := WriteTCPMessage(&buf, msg); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTCPMessage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Errorf("round trip = %q", got)
	}
	// Zero-length frame rejected.
	buf.Reset()
	buf.Write([]byte{0, 0})
	if _, err := ReadTCPMessage(&buf); err == nil {
		t.Error("zero-length frame accepted")
	}
	// Oversized write rejected.
	if err := WriteTCPMessage(&buf, make([]byte, 70000)); err == nil {
		t.Error("oversized frame accepted")
	}
}

func TestTruncateFor(t *testing.T) {
	h := &bigHandler{n: 50}
	resp := h.ServeDNS(netip.MustParseAddrPort("127.0.0.1:1"),
		dnsmsg.NewQuery(3, "t.example.net", dnsmsg.TypeA))
	full, err := resp.Pack()
	if err != nil {
		t.Fatal(err)
	}
	// Large enough: untouched.
	wire, err := TruncateFor(resp, len(full))
	if err != nil {
		t.Fatal(err)
	}
	if len(wire) != len(full) {
		t.Error("unnecessary truncation")
	}
	// Too small: TC set, sections dropped.
	wire, err = TruncateFor(resp, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(wire) > 100 {
		t.Errorf("truncated form %d bytes > 100", len(wire))
	}
	m, _ := dnsmsg.Unpack(wire)
	if !m.Truncated || len(m.Answers) != 0 {
		t.Error("truncation did not produce TC + empty sections")
	}
	// Original response must be untouched.
	if resp.Truncated || len(resp.Answers) != 50 {
		t.Error("TruncateFor mutated the original response")
	}
}

func TestTCPCloseIdempotent(t *testing.T) {
	s := startTCP(t, &bigHandler{n: 1})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}
