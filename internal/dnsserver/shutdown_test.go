package dnsserver

import (
	"net"
	"net/netip"
	"runtime"
	"testing"
	"time"

	"eum/internal/dnsmsg"
)

// waitGoroutines polls until the goroutine count drops back to at most
// baseline (plus slack for runtime helpers), reporting the final count.
func waitGoroutines(baseline int) int {
	deadline := time.Now().Add(5 * time.Second)
	n := runtime.NumGoroutine()
	for time.Now().Before(deadline) {
		if n = runtime.NumGoroutine(); n <= baseline+2 {
			return n
		}
		time.Sleep(10 * time.Millisecond)
	}
	return n
}

// TestGracefulShutdown: queries in flight when Close is called still get
// their responses, late packets are discarded cleanly, and no serve-loop
// goroutines survive.
func TestGracefulShutdown(t *testing.T) {
	baseline := runtime.NumGoroutine()

	h := &gatedHandler{release: make(chan struct{})}
	s, err := ListenConfig("127.0.0.1:0", h, Config{Readers: 2, Workers: 2, QueueDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan struct{})
	go func() { defer close(serveDone); _ = s.Serve() }()

	conn, err := net.Dial("udp", s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// Park one query inside the handler.
	wire, _ := dnsmsg.NewQuery(5, "inflight.example.net", dnsmsg.TypeA).Pack()
	if _, err := conn.Write(wire); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for s.Metrics.Queries.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("query never reached the handler")
		}
		time.Sleep(time.Millisecond)
	}

	// Close concurrently; it must wait for the parked handler.
	closeDone := make(chan error, 1)
	go func() { closeDone <- s.Close() }()
	select {
	case <-closeDone:
		t.Fatal("Close returned while a handler was still in flight")
	case <-time.After(50 * time.Millisecond):
	}

	// Release the handler: its response must still reach the client.
	close(h.release)
	_ = conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 512)
	n, err := conn.Read(buf)
	if err != nil {
		t.Fatalf("in-flight query lost its response: %v", err)
	}
	if resp, err := dnsmsg.Unpack(buf[:n]); err != nil || resp.ID != 5 {
		t.Fatalf("bad drained response: %v %v", resp, err)
	}

	if err := <-closeDone; err != nil {
		t.Fatalf("Close: %v", err)
	}
	select {
	case <-serveDone:
	case <-time.After(2 * time.Second):
		t.Fatal("Serve did not return after Close")
	}

	// A late packet against the closed server must be harmless.
	if _, err := conn.Write(wire); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)

	if got := waitGoroutines(baseline); got > baseline+2 {
		t.Fatalf("goroutines leaked: %d -> %d", baseline, got)
	}
}

// TestShutdownPerPacketMode: the legacy goroutine-per-packet loop shuts
// down cleanly too.
func TestShutdownPerPacketMode(t *testing.T) {
	baseline := runtime.NumGoroutine()
	h := HandlerFunc(func(_ netip.AddrPort, q *dnsmsg.Message) *dnsmsg.Message {
		return q.Reply()
	})
	s, err := ListenConfig("127.0.0.1:0", h, Config{GoroutinePerPacket: true})
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan struct{})
	go func() { defer close(serveDone); _ = s.Serve() }()

	conn, err := net.Dial("udp", s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	wire, _ := dnsmsg.NewQuery(6, "pp.example.net", dnsmsg.TypeA).Pack()
	if _, err := conn.Write(wire); err != nil {
		t.Fatal(err)
	}
	_ = conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 512)
	if _, err := conn.Read(buf); err != nil {
		t.Fatal(err)
	}

	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-serveDone:
	case <-time.After(2 * time.Second):
		t.Fatal("Serve did not return after Close")
	}
	if got := waitGoroutines(baseline); got > baseline+2 {
		t.Fatalf("goroutines leaked: %d -> %d", baseline, got)
	}
}
