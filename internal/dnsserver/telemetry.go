package dnsserver

import "eum/internal/telemetry"

// RegisterMetrics wires the server's live counters and a ServeDNS latency
// histogram into reg under the dnsserver_ namespace. The counters stay the
// atomics the serve loop already increments — the registry reads them only
// at scrape time — and the histogram stamp is two atomic adds around the
// handler call, so registration does not change the hot path's allocation
// or locking profile. Call before Serve; the latency histogram field is
// not synchronised against a running serve loop.
func (s *Server) RegisterMetrics(reg *telemetry.Registry) {
	m := &s.Metrics
	reg.Counter("dnsserver_queries_total",
		"Well-formed DNS queries received.", m.Queries.Load)
	reg.Counter("dnsserver_responses_total",
		"Responses sent.", m.Responses.Load)
	reg.Counter("dnsserver_malformed_total",
		"Datagrams that failed to parse.", m.Malformed.Load)
	reg.Counter("dnsserver_dropped_total",
		"Queries the handler chose not to answer.", m.Dropped.Load)
	reg.Counter("dnsserver_shed_total",
		"Datagrams rejected at enqueue because the queue was full.", m.Shed.Load)
	reg.Counter("dnsserver_deadline_drops_total",
		"Queued queries discarded past the serve deadline.", m.DeadlineDrops.Load)
	reg.Counter("dnsserver_rate_limited_total",
		"Queries suppressed by response-rate limiting.", m.RateLimited.Load)
	reg.Counter("dnsserver_slips_total",
		"Rate-limited queries answered with a minimal TC=1 slip.", m.Slips.Load)
	reg.Counter("dnsserver_handler_panics_total",
		"Handler panics recovered by the serve loop.", m.HandlerPanics.Load)
	s.latency = reg.Histogram("dnsserver_serve_latency_seconds",
		"Handler (ServeDNS) latency per query.")
}
