package dnsserver

import (
	"fmt"
	"sync"
	"time"

	"eum/internal/telemetry"
)

// RegisterMetrics wires the server's live counters and a ServeDNS latency
// histogram into reg under the dnsserver_ namespace. The counters stay the
// atomics the serve loop already increments — the registry reads them only
// at scrape time — and the histogram stamp is two atomic adds around the
// handler call, so registration does not change the hot path's allocation
// or locking profile. Call before Serve; the latency histogram field is
// not synchronised against a running serve loop.
//
// Beyond the aggregate counters, every listener shard exports its own
// gauges under dnsserver_shard<i>_: queue depth, shed and query totals, a
// scrape-windowed qps rate, and the measured packets-per-wakeup ratio of
// the batched-I/O path. The registry has no label dimension, so the shard
// index is folded into the metric name.
func (s *Server) RegisterMetrics(reg *telemetry.Registry) {
	m := &s.Metrics
	reg.Counter("dnsserver_queries_total",
		"Well-formed DNS queries received.", m.Queries.Load)
	reg.Counter("dnsserver_responses_total",
		"Responses sent.", m.Responses.Load)
	reg.Counter("dnsserver_malformed_total",
		"Datagrams that failed to parse.", m.Malformed.Load)
	reg.Counter("dnsserver_dropped_total",
		"Queries the handler chose not to answer.", m.Dropped.Load)
	reg.Counter("dnsserver_shed_total",
		"Datagrams rejected at enqueue because the queue was full.", m.Shed.Load)
	reg.Counter("dnsserver_deadline_drops_total",
		"Queued queries discarded past the serve deadline.", m.DeadlineDrops.Load)
	reg.Counter("dnsserver_rate_limited_total",
		"Queries suppressed by response-rate limiting.", m.RateLimited.Load)
	reg.Counter("dnsserver_slips_total",
		"Rate-limited queries answered with a minimal TC=1 slip.", m.Slips.Load)
	reg.Counter("dnsserver_handler_panics_total",
		"Handler panics recovered by the serve loop.", m.HandlerPanics.Load)
	s.latency = reg.Histogram("dnsserver_serve_latency_seconds",
		"Handler (ServeDNS) latency per query.")

	reg.Gauge("dnsserver_listener_shards",
		"Number of shared-nothing listener shards.",
		func() float64 { return float64(len(s.shards)) })
	for _, sh := range s.shards {
		sh := sh
		prefix := fmt.Sprintf("dnsserver_shard%d_", sh.id)
		reg.Counter(prefix+"queries_total",
			"Well-formed queries received on this shard.", sh.Stats.Queries.Load)
		reg.Counter(prefix+"shed_total",
			"Datagrams this shard rejected at enqueue.", sh.Stats.Shed.Load)
		reg.Gauge(prefix+"queue_depth",
			"Instantaneous depth of this shard's work queue.",
			func() float64 { return float64(len(sh.queue)) })
		reg.Gauge(prefix+"packets_per_wakeup",
			"Datagrams drained per receive syscall on this shard (1.0 unbatched).",
			func() float64 {
				w := sh.Stats.Wakeups.Load()
				if w == 0 {
					return 0
				}
				return float64(sh.Stats.BatchedPackets.Load()) / float64(w)
			})
		var win qpsWindow
		reg.Gauge(prefix+"qps",
			"Query rate on this shard over the last scrape interval.",
			func() float64 { return win.rate(sh.Stats.Queries.Load()) })
	}
}

// qpsWindow derives a rate gauge from a monotone counter: each read
// reports the counter's growth since the previous read divided by the
// elapsed wall time — i.e. the mean qps over the scrape interval. The
// first read primes the window and reports 0.
type qpsWindow struct {
	mu       sync.Mutex
	lastN    uint64
	lastTime time.Time
}

func (w *qpsWindow) rate(n uint64) float64 {
	now := time.Now()
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.lastTime.IsZero() {
		w.lastN, w.lastTime = n, now
		return 0
	}
	dt := now.Sub(w.lastTime).Seconds()
	dn := n - w.lastN
	w.lastN, w.lastTime = n, now
	if dt <= 0 {
		return 0
	}
	return float64(dn) / dt
}
