package dnsserver

import (
	"net"
	"net/netip"
	"testing"
	"time"

	"eum/internal/dnsmsg"
)

func TestRateLimiterBurstThenRefuse(t *testing.T) {
	r := newRateLimiter(10, 5, 0) // 10/s, burst 5
	addr := netip.MustParseAddr("203.0.113.9")
	now := int64(1e12)

	allowed := 0
	for i := 0; i < 20; i++ {
		if r.allow(addr, now) {
			allowed++
		}
	}
	if allowed != 5 {
		t.Fatalf("burst allowed %d, want 5", allowed)
	}

	// One interval later exactly one more response conforms.
	now += int64(time.Second / 10)
	if !r.allow(addr, now) {
		t.Fatal("refill not granted after one interval")
	}
	if r.allow(addr, now) {
		t.Fatal("second response granted within one interval")
	}
}

func TestRateLimiterPrefixGranularity(t *testing.T) {
	r := newRateLimiter(10, 2, 0)
	now := int64(1e12)

	// Two addresses in the same /24 share an allowance.
	a := netip.MustParseAddr("203.0.113.1")
	b := netip.MustParseAddr("203.0.113.200")
	if !r.allow(a, now) || !r.allow(b, now) {
		t.Fatal("burst of 2 not granted to the /24")
	}
	if r.allow(a, now) || r.allow(b, now) {
		t.Fatal("shared /24 exceeded its allowance")
	}

	// A different /24 has its own untouched bucket.
	if !r.allow(netip.MustParseAddr("198.51.100.1"), now) {
		t.Fatal("distinct /24 rate-limited by a stranger's traffic")
	}
}

// TestRateLimiterExtremeRateStillLimits is the regression test for the
// interval-truncation bug: a rate at or above 1e9 responses/second used to
// compute a zero nanosecond interval, which made every query conform — the
// limiter silently disabled itself exactly when someone configured an
// aggressive rate. The interval is now clamped to 1ns, so even an absurd
// rate still bounds the burst.
func TestRateLimiterExtremeRateStillLimits(t *testing.T) {
	r := newRateLimiter(2e9, 8, 0)
	if r.interval < 1 {
		t.Fatalf("interval = %d, want >= 1ns", r.interval)
	}
	addr := netip.MustParseAddr("203.0.113.9")
	now := int64(1e12)
	allowed := 0
	for i := 0; i < 100; i++ {
		if r.allow(addr, now) {
			allowed++
		}
	}
	if allowed == 100 {
		t.Fatal("limiter disabled at rate >= 1e9 (all 100 queries conformed)")
	}
	if allowed != 8 {
		t.Fatalf("allowed %d at one instant, want the burst of 8", allowed)
	}
}

// TestRateLimiterZeroBurstAllowsFirst is the regression test for the
// zero-burst bug: burst 0 used to compute a zero allowance, rejecting
// every query including the very first. Burst is now clamped to 1.
func TestRateLimiterZeroBurstAllowsFirst(t *testing.T) {
	r := newRateLimiter(10, 0, 0)
	addr := netip.MustParseAddr("198.51.100.7")
	now := int64(1e12)
	if !r.allow(addr, now) {
		t.Fatal("burst 0 rejected the first query (allowance clamped to zero)")
	}
	if r.allow(addr, now) {
		t.Fatal("clamped burst of 1 granted a second response at the same instant")
	}
}

func TestRateLimiterSlipCadence(t *testing.T) {
	r := newRateLimiter(10, 1, 2)
	slips := 0
	for i := 0; i < 10; i++ {
		if r.shouldSlip() {
			slips++
		}
	}
	if slips != 5 {
		t.Fatalf("slips = %d over 10 limited queries with slip 2, want 5", slips)
	}
	off := newRateLimiter(10, 1, -1)
	for i := 0; i < 10; i++ {
		if off.shouldSlip() {
			t.Fatal("negative slip still slipped")
		}
	}
}

// TestRRLOverWire floods a server from one source address and checks that
// responses are limited, with the occasional TC=1 slip escaping.
func TestRRLOverWire(t *testing.T) {
	h := HandlerFunc(func(_ netip.AddrPort, q *dnsmsg.Message) *dnsmsg.Message {
		return q.Reply()
	})
	s := startConfigServer(t, h, Config{
		Readers: 1, Workers: 1,
		RRLRate: 5, RRLBurst: 3, RRLSlip: 2,
	})

	conn, err := net.Dial("udp", s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	wire, _ := dnsmsg.NewQuery(11, "rrl.example.net", dnsmsg.TypeA).Pack()
	for i := 0; i < 64; i++ {
		if _, err := conn.Write(wire); err != nil {
			t.Fatal(err)
		}
	}

	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) && s.Metrics.Queries.Load() < 64 {
		time.Sleep(5 * time.Millisecond)
	}
	limited := s.Metrics.RateLimited.Load()
	if limited == 0 {
		t.Fatalf("no rate limiting across 64 queries from one source (queries=%d)",
			s.Metrics.Queries.Load())
	}
	if s.Metrics.Slips.Load() == 0 {
		t.Fatalf("no slip responses among %d limited queries", limited)
	}

	// Drain responses: every slip must be a truncated empty answer.
	_ = conn.SetReadDeadline(time.Now().Add(time.Second))
	buf := make([]byte, 512)
	sawSlip := false
	for {
		n, err := conn.Read(buf)
		if err != nil {
			break
		}
		resp, err := dnsmsg.Unpack(buf[:n])
		if err != nil {
			t.Fatal(err)
		}
		if resp.Truncated {
			sawSlip = true
			if len(resp.Answers) != 0 {
				t.Fatal("slip response carried answers")
			}
		}
	}
	if !sawSlip {
		t.Fatal("no TC=1 slip observed on the wire")
	}
}
