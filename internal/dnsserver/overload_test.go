package dnsserver

import (
	"net"
	"net/netip"
	"testing"
	"time"

	"eum/internal/dnsmsg"
)

// gatedHandler blocks every query on release, so tests can pin workers and
// fill the queue deterministically.
type gatedHandler struct {
	release chan struct{}
}

func (h *gatedHandler) ServeDNS(_ netip.AddrPort, q *dnsmsg.Message) *dnsmsg.Message {
	<-h.release
	return q.Reply()
}

// startConfigServer is startServer with an explicit Config.
func startConfigServer(t *testing.T, h Handler, cfg Config) *Server {
	t.Helper()
	s, err := ListenConfig("127.0.0.1:0", h, cfg)
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = s.Serve() }()
	t.Cleanup(func() { _ = s.Close() })
	return s
}

// floodUntil sends packed queries from conn until cond holds or the
// deadline passes, reporting whether cond held.
func floodUntil(t *testing.T, conn net.Conn, wire []byte, cond func() bool) bool {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		for i := 0; i < 16; i++ {
			if _, err := conn.Write(wire); err != nil {
				t.Fatal(err)
			}
		}
		if cond() {
			return true
		}
		time.Sleep(time.Millisecond)
	}
	return cond()
}

func TestShedDropCountsOverflow(t *testing.T) {
	h := &gatedHandler{release: make(chan struct{})}
	s := startConfigServer(t, h, Config{
		Readers: 1, Workers: 1, QueueDepth: 1, OnOverload: ShedDrop,
	})
	defer close(h.release)

	conn, err := net.Dial("udp", s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	wire, _ := dnsmsg.NewQuery(7, "shed.example.net", dnsmsg.TypeA).Pack()

	// One query pins the worker, one fills the queue; everything after
	// that must be shed rather than queued.
	if !floodUntil(t, conn, wire, func() bool { return s.Metrics.Shed.Load() >= 1 }) {
		t.Fatalf("no shedding under sustained overload: shed=%d", s.Metrics.Shed.Load())
	}
}

func TestShedRefuseAnswersRefused(t *testing.T) {
	h := &gatedHandler{release: make(chan struct{})}
	s := startConfigServer(t, h, Config{
		Readers: 1, Workers: 1, QueueDepth: 1, OnOverload: ShedRefuse,
	})
	defer close(h.release)

	conn, err := net.Dial("udp", s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	wire, _ := dnsmsg.NewQuery(7, "refuse.example.net", dnsmsg.TypeA).Pack()
	if !floodUntil(t, conn, wire, func() bool { return s.Metrics.Shed.Load() >= 1 }) {
		t.Fatal("no shedding under sustained overload")
	}

	// A shed query must have produced a REFUSED response on the wire.
	_ = conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 512)
	for {
		n, err := conn.Read(buf)
		if err != nil {
			t.Fatalf("no REFUSED response read: %v", err)
		}
		resp, err := dnsmsg.Unpack(buf[:n])
		if err != nil {
			t.Fatal(err)
		}
		if resp.RCode == dnsmsg.RCodeRefused {
			if resp.ID != 7 {
				t.Fatalf("REFUSED response ID = %d, want 7", resp.ID)
			}
			return
		}
	}
}

func TestServeDeadlineDropsStaleQueries(t *testing.T) {
	h := &gatedHandler{release: make(chan struct{})}
	s := startConfigServer(t, h, Config{
		Readers: 1, Workers: 1, QueueDepth: 8,
		ServeDeadline: 20 * time.Millisecond,
	})

	conn, err := net.Dial("udp", s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	wire, _ := dnsmsg.NewQuery(7, "late.example.net", dnsmsg.TypeA).Pack()

	// Pin the worker, queue a few more queries, and let them age past the
	// deadline before releasing the worker.
	for i := 0; i < 6; i++ {
		if _, err := conn.Write(wire); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(100 * time.Millisecond)
	close(h.release)

	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if s.Metrics.DeadlineDrops.Load() >= 1 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("no deadline drops: drops=%d queries=%d",
		s.Metrics.DeadlineDrops.Load(), s.Metrics.Queries.Load())
}

func TestHandlerPanicAnsweredServfail(t *testing.T) {
	first := true
	h := HandlerFunc(func(_ netip.AddrPort, q *dnsmsg.Message) *dnsmsg.Message {
		if first {
			first = false
			panic("handler bug")
		}
		return q.Reply()
	})
	s := startConfigServer(t, h, Config{Readers: 1, Workers: 1})

	conn, err := net.Dial("udp", s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	ask := func(id uint16) *dnsmsg.Message {
		t.Helper()
		wire, _ := dnsmsg.NewQuery(id, "panic.example.net", dnsmsg.TypeA).Pack()
		if _, err := conn.Write(wire); err != nil {
			t.Fatal(err)
		}
		_ = conn.SetReadDeadline(time.Now().Add(2 * time.Second))
		buf := make([]byte, 512)
		n, err := conn.Read(buf)
		if err != nil {
			t.Fatalf("query %d: no response: %v", id, err)
		}
		resp, err := dnsmsg.Unpack(buf[:n])
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	if resp := ask(1); resp.RCode != dnsmsg.RCodeServerFailure {
		t.Fatalf("panicking query: rcode = %v, want SERVFAIL", resp.RCode)
	}
	if resp := ask(2); resp.RCode != dnsmsg.RCodeSuccess {
		t.Fatalf("query after panic: rcode = %v (serve loop wedged?)", resp.RCode)
	}
	if got := s.Metrics.HandlerPanics.Load(); got != 1 {
		t.Fatalf("HandlerPanics = %d, want 1", got)
	}
}

func TestHandlerPanicTCP(t *testing.T) {
	h := HandlerFunc(func(netip.AddrPort, *dnsmsg.Message) *dnsmsg.Message {
		panic("tcp handler bug")
	})
	s, err := ListenTCP("127.0.0.1:0", h)
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = s.Serve() }()
	t.Cleanup(func() { _ = s.Close() })

	conn, err := net.Dial("tcp", s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	wire, _ := dnsmsg.NewQuery(3, "panic.example.net", dnsmsg.TypeA).Pack()
	if err := WriteTCPMessage(conn, wire); err != nil {
		t.Fatal(err)
	}
	msg, err := ReadTCPMessage(conn)
	if err != nil {
		t.Fatalf("no response after handler panic: %v", err)
	}
	resp, err := dnsmsg.Unpack(msg)
	if err != nil {
		t.Fatal(err)
	}
	if resp.RCode != dnsmsg.RCodeServerFailure {
		t.Fatalf("rcode = %v, want SERVFAIL", resp.RCode)
	}
	if got := s.Metrics.HandlerPanics.Load(); got != 1 {
		t.Fatalf("HandlerPanics = %d, want 1", got)
	}
}

func TestParseShedPolicy(t *testing.T) {
	for in, want := range map[string]ShedPolicy{
		"": ShedBlock, "block": ShedBlock, "drop": ShedDrop, "refuse": ShedRefuse,
	} {
		got, err := ParseShedPolicy(in)
		if err != nil || got != want {
			t.Errorf("ParseShedPolicy(%q) = %v, %v", in, got, err)
		}
		if in != "" && got.String() != in {
			t.Errorf("String() = %q, want %q", got.String(), in)
		}
	}
	if _, err := ParseShedPolicy("nonsense"); err == nil {
		t.Error("nonsense policy accepted")
	}
}
