//go:build linux

package dnsserver

import (
	"context"
	"net"
	"runtime"
	"syscall"
)

// defaultListenerShards is GOMAXPROCS on Linux, where SO_REUSEPORT lets
// every core own a socket: the serving plane scales with cores by default.
func defaultListenerShards() int { return runtime.GOMAXPROCS(0) }

// soReusePort is SOL_SOCKET option SO_REUSEPORT. The stdlib syscall
// package does not export it on every Linux architecture (it predates the
// option), so the value is pinned here: 15 on every Linux ABI this
// repository targets (mips-family ports differ, and are not targeted).
const soReusePort = 0xf

// listenReusePort binds a UDP socket on addr with SO_REUSEPORT set before
// bind, so any number of shards can share one address and the kernel fans
// incoming flows across them by 4-tuple hash — each flow sticks to one
// shard, which is what keeps per-shard RRL accounting coherent.
func listenReusePort(addr string) (net.PacketConn, error) {
	lc := net.ListenConfig{
		Control: func(network, address string, c syscall.RawConn) error {
			var serr error
			err := c.Control(func(fd uintptr) {
				serr = syscall.SetsockoptInt(int(fd), syscall.SOL_SOCKET, soReusePort, 1)
			})
			if err != nil {
				return err
			}
			return serr
		},
	}
	return lc.ListenPacket(context.Background(), "udp", addr)
}
