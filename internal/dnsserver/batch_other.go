//go:build !linux || (!amd64 && !arm64)

package dnsserver

import (
	"errors"
	"net"
)

// batchIO is the portable stub: platforms without recvmmsg/sendmmsg
// wiring never construct one, so the batched read/write loops are
// unreachable and exist only to satisfy the compiler.
type batchIO struct{}

// slots is unused on the portable path.
type slots struct{}

func newSlots(k int) *slots { return &slots{} }

// newBatchIO reports that batching is unavailable. Config validation in
// internal/config rejects batch_size > 1 off Linux before a server is
// built; this error covers direct API users with the same guidance.
func newBatchIO(conn *net.UDPConn, k int) (*batchIO, error) {
	return nil, errors.New("dnsserver: batched I/O (BatchSize > 1) requires linux on amd64 or arm64; set BatchSize to 1")
}

func (b *batchIO) recvBatch(sh *shard, s *slots) (int, error) { return 0, nil }

func (b *batchIO) sendBatch(pend []outPacket) int { return 0 }
