package dnsserver

import (
	"net/netip"
	"sync/atomic"
)

// rrlBuckets is the size of the limiter's bucket table. Source prefixes
// hash onto buckets, so distinct prefixes may share one (and share a rate
// allowance) — the standard RRL trade-off: bounded, allocation-free state
// against an unbounded universe of spoofable sources.
const rrlBuckets = 4096

// rateLimiter is a per-source-prefix response-rate limiter in the style of
// BIND/NSD RRL: it bounds how many responses per second any one source
// prefix can elicit, which caps this server's usefulness as a reflection
// amplifier (a spoofed victim prefix stops getting amplified traffic after
// the first handful of responses per second).
//
// Each bucket runs the Generic Cell Rate Algorithm over a single int64 —
// the theoretical arrival time (TAT) of the next conforming response, in
// unix nanoseconds. A query conforms if the bucket's TAT has not run more
// than burst intervals ahead of now. The whole decision is one atomic load
// and one CAS on the query hot path: no locks, no allocation, no timers.
type rateLimiter struct {
	interval int64 // nanoseconds per allowed response (1/rate)
	limit    int64 // burst tolerance: burst * interval, nanoseconds
	slipN    uint64
	slips    atomic.Uint64
	buckets  [rrlBuckets]atomic.Int64
}

// newRateLimiter builds a limiter allowing rate responses/second per
// prefix with the given burst, slipping every slipN-th limited query
// (slipN < 0 disables slipping).
//
// Both parameters are clamped to the smallest value at which the GCRA
// still functions: a rate at or above 1e9/s would truncate the interval
// to 0, making every query conform (a silently disabled limiter exactly
// when someone asked for an aggressive one), and a burst below 1 would
// make the allowance 0, rejecting every query including the first.
func newRateLimiter(rate float64, burst, slipN int) *rateLimiter {
	interval := int64(1e9 / rate)
	if interval < 1 {
		interval = 1
	}
	if burst < 1 {
		burst = 1
	}
	r := &rateLimiter{interval: interval, limit: int64(burst) * interval}
	if slipN > 0 {
		r.slipN = uint64(slipN)
	}
	return r
}

// allow reports whether a response to addr conforms to its prefix's rate
// right now (unix nanoseconds), charging the bucket if so.
func (r *rateLimiter) allow(addr netip.Addr, now int64) bool {
	b := &r.buckets[r.bucket(addr)]
	for {
		tat := b.Load()
		newTAT := tat
		if now > newTAT {
			newTAT = now
		}
		if newTAT+r.interval-now > r.limit {
			return false
		}
		if b.CompareAndSwap(tat, newTAT+r.interval) {
			return true
		}
	}
}

// shouldSlip reports whether this rate-limited query should get a minimal
// TC=1 response instead of silence (every slipN-th one).
func (r *rateLimiter) shouldSlip() bool {
	if r.slipN == 0 {
		return false
	}
	return r.slips.Add(1)%r.slipN == 0
}

// bucket hashes the address's accountability prefix — /24 for IPv4, /56
// for IPv6, the granularity BIND's RRL uses — onto the bucket table with
// FNV-1a. Unmapping first keeps a v4 client and its v4-in-v6 alias in the
// same bucket.
func (r *rateLimiter) bucket(addr netip.Addr) uint32 {
	addr = addr.Unmap()
	h := uint32(2166136261)
	if addr.Is4() {
		a := addr.As4()
		for _, c := range a[:3] {
			h = (h ^ uint32(c)) * 16777619
		}
	} else {
		a := addr.As16()
		for _, c := range a[:7] {
			h = (h ^ uint32(c)) * 16777619
		}
	}
	return h % rrlBuckets
}
