//go:build linux && (amd64 || arm64)

// Batched UDP I/O: recvmmsg/sendmmsg through raw syscalls, so one reader
// wakeup drains up to BatchSize datagrams and one writer flush sends up to
// BatchSize responses — amortising the dominant remaining per-query cost
// (syscall entry/exit) once the hot path itself is allocation-free.
//
// The syscalls run non-blocking (MSG_DONTWAIT) inside RawConn.Read/Write
// callbacks: returning false from the callback parks the goroutine on the
// runtime poller until the socket is ready again, which keeps deadline
// semantics intact — Server.Close's SetReadDeadline(now) still wakes a
// reader parked here, exactly as it wakes one parked in ReadFromUDPAddrPort.
//
// The stdlib syscall package predates these calls on some architectures,
// so the syscall numbers are pinned per-arch in batch_sysnum_*.go rather
// than taken from syscall.SYS_* (linux/amd64 exports SYS_RECVMMSG but not
// SYS_SENDMMSG).

package dnsserver

import (
	"net"
	"net/netip"
	"syscall"
	"unsafe"
)

// mmsghdr mirrors the kernel's struct mmsghdr: a msghdr plus the number of
// bytes the kernel transferred for that message. The trailing pad keeps
// the 8-byte alignment the kernel expects for arrays of these.
type mmsghdr struct {
	hdr syscall.Msghdr
	n   uint32
	_   [4]byte
}

// slots is one owner's set of mmsghdr scatter/gather state: hdrs[i] points
// at names[i] (the peer sockaddr) and iovs[i] (one datagram buffer). Recv
// slots belong to exactly one reader goroutine and send slots to the
// shard's writer goroutine, so none of this needs locking.
type slots struct {
	hdrs  []mmsghdr
	iovs  []syscall.Iovec
	names []syscall.RawSockaddrInet6 // large enough for both families
	// bufs pins the Go buffer each iov points into (recv side only).
	bufs []*[]byte
}

func newSlots(k int) *slots {
	s := &slots{
		hdrs:  make([]mmsghdr, k),
		iovs:  make([]syscall.Iovec, k),
		names: make([]syscall.RawSockaddrInet6, k),
		bufs:  make([]*[]byte, k),
	}
	for i := range s.hdrs {
		s.hdrs[i].hdr.Name = (*byte)(unsafe.Pointer(&s.names[i]))
		s.hdrs[i].hdr.Iov = &s.iovs[i]
		s.hdrs[i].hdr.Iovlen = 1
	}
	return s
}

// batchIO is a shard's batched-syscall state over one UDP socket.
type batchIO struct {
	rc syscall.RawConn
	k  int
	// send is the writer goroutine's slot set. Readers build their own
	// slot sets locally (there may be several reader goroutines).
	send *slots
}

// newBatchIO prepares batched I/O over conn with batches of k datagrams.
func newBatchIO(conn *net.UDPConn, k int) (*batchIO, error) {
	rc, err := conn.SyscallConn()
	if err != nil {
		return nil, err
	}
	return &batchIO{rc: rc, k: k, send: newSlots(k)}, nil
}

// recvBatch drains up to k datagrams in one recvmmsg, delivering each to
// sh.enqueue in arrival order. It blocks (on the runtime poller, not in
// the syscall) until at least one datagram is available, the read deadline
// expires, or the socket closes. Returns the number delivered; n == 0 with
// err == nil means a signal interrupted the call — the caller just retries.
func (b *batchIO) recvBatch(sh *shard, s *slots) (int, error) {
	for i := 0; i < b.k; i++ {
		if s.bufs[i] == nil {
			bp := sh.bufPool.Get().(*[]byte)
			s.bufs[i] = bp
			s.iovs[i].Base = &(*bp)[0]
			s.iovs[i].Len = uint64(len(*bp))
		}
		// The kernel overwrites these per call; reset so a short sockaddr
		// from the previous batch can't leak into this one.
		s.hdrs[i].hdr.Namelen = uint32(unsafe.Sizeof(s.names[i]))
		s.hdrs[i].n = 0
	}
	var n int
	var errno syscall.Errno
	err := b.rc.Read(func(fd uintptr) bool {
		r1, _, e := syscall.Syscall6(sysRecvmmsg, fd,
			uintptr(unsafe.Pointer(&s.hdrs[0])), uintptr(b.k),
			uintptr(syscall.MSG_DONTWAIT), 0, 0)
		if e == syscall.EAGAIN {
			return false // park on the poller until readable
		}
		n, errno = int(r1), e
		return true
	})
	if err != nil {
		return 0, err // deadline exceeded or socket closed
	}
	if errno != 0 {
		if errno == syscall.EINTR {
			return 0, nil
		}
		return 0, errno
	}
	for i := 0; i < n; i++ {
		bp := s.bufs[i]
		s.bufs[i] = nil
		sh.enqueue(bp, int(s.hdrs[i].n), decodeSockaddr(&s.names[i]))
	}
	return n, nil
}

// sendBatch flushes the pending responses with sendmmsg, returning how
// many datagrams were handed to the kernel. A datagram the kernel rejects
// outright (unreachable peer, oversized) is skipped so the rest of the
// batch still goes out.
func (b *batchIO) sendBatch(pend []outPacket) int {
	k := len(pend)
	for i := 0; i < k; i++ {
		wire := *pend[i].buf
		b.send.iovs[i].Base = &wire[0]
		b.send.iovs[i].Len = uint64(len(wire))
		b.send.hdrs[i].hdr.Namelen = encodeSockaddr(&b.send.names[i], pend[i].raddr)
		b.send.hdrs[i].n = 0
	}
	sent := 0
	off := 0
	_ = b.rc.Write(func(fd uintptr) bool {
		for off < k {
			r1, _, e := syscall.Syscall6(sysSendmmsg, fd,
				uintptr(unsafe.Pointer(&b.send.hdrs[off])), uintptr(k-off),
				uintptr(syscall.MSG_DONTWAIT), 0, 0)
			switch {
			case e == syscall.EAGAIN:
				return false // socket buffer full: wait for writability
			case e == syscall.EINTR:
				continue
			case e != 0 || int(r1) == 0:
				off++ // first datagram failed: skip it, keep the rest moving
			default:
				off += int(r1)
				sent += int(r1)
			}
		}
		return true
	})
	return sent
}

// decodeSockaddr converts a kernel-written sockaddr to a netip.AddrPort,
// preserving the address family the socket delivered (a dual-stack socket
// reports v4 peers as v4-in-v6, matching ReadFromUDPAddrPort).
func decodeSockaddr(sa *syscall.RawSockaddrInet6) netip.AddrPort {
	if sa.Family == syscall.AF_INET {
		sa4 := (*syscall.RawSockaddrInet4)(unsafe.Pointer(sa))
		return netip.AddrPortFrom(netip.AddrFrom4(sa4.Addr), ntohs(sa4.Port))
	}
	return netip.AddrPortFrom(netip.AddrFrom16(sa.Addr), ntohs(sa.Port))
}

// encodeSockaddr fills sa for raddr and returns the sockaddr length,
// mirroring decodeSockaddr's family choice so replies go out on the same
// family the query arrived with.
func encodeSockaddr(sa *syscall.RawSockaddrInet6, raddr netip.AddrPort) uint32 {
	addr := raddr.Addr()
	if addr.Is4() {
		sa4 := (*syscall.RawSockaddrInet4)(unsafe.Pointer(sa))
		*sa4 = syscall.RawSockaddrInet4{Family: syscall.AF_INET, Port: htons(raddr.Port()), Addr: addr.As4()}
		return syscall.SizeofSockaddrInet4
	}
	*sa = syscall.RawSockaddrInet6{Family: syscall.AF_INET6, Port: htons(raddr.Port()), Addr: addr.As16()}
	return syscall.SizeofSockaddrInet6
}

// ntohs/htons convert the sockaddr port field, which is stored in network
// byte order regardless of host endianness. Reading byte-wise keeps this
// correct on any host.
func ntohs(p uint16) uint16 {
	b := (*[2]byte)(unsafe.Pointer(&p))
	return uint16(b[0])<<8 | uint16(b[1])
}

func htons(p uint16) uint16 {
	var out uint16
	b := (*[2]byte)(unsafe.Pointer(&out))
	b[0], b[1] = byte(p>>8), byte(p)
	return out
}
