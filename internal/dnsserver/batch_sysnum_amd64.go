//go:build linux && amd64

package dnsserver

// Syscall numbers for linux/amd64. syscall.SYS_RECVMMSG exists on this
// port but SYS_SENDMMSG was never added to the frozen syscall package, so
// both are pinned here for symmetry.
const (
	sysRecvmmsg = 299
	sysSendmmsg = 307
)
