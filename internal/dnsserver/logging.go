package dnsserver

import (
	"context"
	"log/slog"
	"net/netip"
	"time"

	"eum/internal/dnsmsg"
)

// WithLogging wraps a handler with structured per-query access logging:
// one slog record per query with the question, requester, ECS option,
// response code, answer count and handler latency. Production name servers
// live and die by this telemetry — the paper's query-rate analyses (§5)
// come from exactly these logs.
func WithLogging(h Handler, logger *slog.Logger) Handler {
	if logger == nil {
		logger = slog.Default()
	}
	return HandlerFunc(func(remote netip.AddrPort, query *dnsmsg.Message) *dnsmsg.Message {
		start := time.Now()
		resp := h.ServeDNS(remote, query)
		attrs := make([]slog.Attr, 0, 8)
		attrs = append(attrs,
			slog.String("remote", remote.String()),
			slog.Duration("latency", time.Since(start)),
		)
		if len(query.Questions) > 0 {
			q := query.Questions[0]
			attrs = append(attrs,
				slog.String("name", string(q.Name.Canonical())),
				slog.String("type", q.Type.String()),
			)
		}
		if ecs := query.ClientSubnet(); ecs != nil {
			attrs = append(attrs, slog.String("ecs", ecs.Prefix().String()))
		}
		if resp == nil {
			attrs = append(attrs, slog.Bool("dropped", true))
			logger.LogAttrs(context.Background(), slog.LevelWarn, "query dropped", attrs...)
			return nil
		}
		attrs = append(attrs,
			slog.String("rcode", resp.RCode.String()),
			slog.Int("answers", len(resp.Answers)),
		)
		if ecs := resp.ClientSubnet(); ecs != nil {
			attrs = append(attrs, slog.Int("scope", int(ecs.ScopePrefix)))
		}
		logger.LogAttrs(context.Background(), slog.LevelInfo, "query", attrs...)
		return resp
	})
}
