package dnsserver

import (
	"context"
	"log/slog"
	"net/netip"
	"time"

	"eum/internal/dnsmsg"
)

// WithLogging wraps a handler with structured per-query access logging:
// one slog record per query with the question, requester, ECS option,
// response code, answer count and handler latency. Production name servers
// live and die by this telemetry — the paper's query-rate analyses (§5)
// come from exactly these logs.
//
// A ShardAware handler stays ShardAware through the wrapper, so wrapping
// the authority does not silently collapse its per-shard answer caches
// onto shard 0.
func WithLogging(h Handler, logger *slog.Logger) Handler {
	if logger == nil {
		logger = slog.Default()
	}
	lh := &loggingHandler{inner: h, logger: logger}
	if sa, ok := h.(ShardAware); ok {
		return &loggingShardHandler{loggingHandler: lh, sharded: sa}
	}
	return lh
}

type loggingHandler struct {
	inner  Handler
	logger *slog.Logger
}

func (l *loggingHandler) ServeDNS(remote netip.AddrPort, query *dnsmsg.Message) *dnsmsg.Message {
	start := time.Now()
	resp := l.inner.ServeDNS(remote, query)
	l.log(remote, query, resp, start)
	return resp
}

// loggingShardHandler forwards the shard ID to a ShardAware inner handler
// while logging identically on both entry points.
type loggingShardHandler struct {
	*loggingHandler
	sharded ShardAware
}

func (l *loggingShardHandler) ServeDNSShard(shard int, remote netip.AddrPort, query *dnsmsg.Message) *dnsmsg.Message {
	start := time.Now()
	resp := l.sharded.ServeDNSShard(shard, remote, query)
	l.log(remote, query, resp, start)
	return resp
}

func (l *loggingHandler) log(remote netip.AddrPort, query, resp *dnsmsg.Message, start time.Time) {
	level, msg := slog.LevelInfo, "query"
	if resp == nil {
		level, msg = slog.LevelWarn, "query dropped"
	}
	ctx := context.Background()
	// Bail out before building any attributes when the record would be
	// discarded anyway: a name server at full query rate must not pay
	// per-query allocation for logging it has turned off.
	if !l.logger.Enabled(ctx, level) {
		return
	}
	attrs := make([]slog.Attr, 0, 10)
	attrs = append(attrs,
		slog.String("remote", remote.String()),
		slog.Duration("latency", time.Since(start)),
	)
	if len(query.Questions) > 0 {
		q := query.Questions[0]
		attrs = append(attrs,
			slog.String("name", string(q.Name.Canonical())),
			slog.String("type", q.Type.String()),
		)
	}
	if n := len(query.Questions); n > 1 {
		// More than one question is abnormal for this server; record the
		// count so the log does not silently pretend the query was
		// ordinary while showing only the first question.
		attrs = append(attrs, slog.Int("questions", n))
	}
	if ecs := query.ClientSubnet(); ecs != nil {
		attrs = append(attrs, slog.String("ecs", ecs.Prefix().String()))
	}
	if resp == nil {
		attrs = append(attrs, slog.Bool("dropped", true))
		l.logger.LogAttrs(ctx, level, msg, attrs...)
		return
	}
	attrs = append(attrs,
		slog.String("rcode", resp.RCode.String()),
		slog.Int("answers", len(resp.Answers)),
	)
	if ecs := resp.ClientSubnet(); ecs != nil {
		attrs = append(attrs, slog.Int("scope", int(ecs.ScopePrefix)))
	}
	l.logger.LogAttrs(ctx, level, msg, attrs...)
}
