// Package dnsserver implements a UDP authoritative DNS server host: a
// serve loop over one or more UDP sockets that parses queries with dnsmsg,
// hands them to a Handler, and writes responses, with per-server metrics.
//
// It is the transport layer for the mapping system's authoritative name
// servers (§2.2 component 3): handlers implement the mapping behaviour,
// this package owns sockets, concurrency and message hygiene.
//
// The serve plane is built for the paper's query rates (§5: millions of
// queries per second platform-wide) and is sharded shared-nothing: the
// server runs N listener shards, each owning its own UDP socket (bound
// with SO_REUSEPORT on Linux so the kernel fans flows out across the
// sockets by 4-tuple hash), its own buffer pools, bounded work queue,
// worker goroutines and response-rate-limiter table. No mutable state is
// shared between shards on the hot path — only the monotone aggregate
// counters in Metrics, which tolerate contention by construction. On
// Linux a shard can additionally drain and flush up to Config.BatchSize
// datagrams per syscall via recvmmsg/sendmmsg (see batch_linux.go), with
// a portable single-packet fallback everywhere else.
package dnsserver

import (
	"errors"
	"fmt"
	"net"
	"net/netip"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"eum/internal/dnsmsg"
	"eum/internal/telemetry"
)

// Handler answers DNS queries. Implementations must be safe for concurrent
// use. Returning nil drops the query (no response), which a handler may use
// for malformed or abusive traffic.
//
// The query message is only valid for the duration of the call: the server
// recycles it once ServeDNS returns. Handlers that need query state beyond
// the call must copy it (the response returned may freely reference the
// query's strings, which are immutable).
type Handler interface {
	ServeDNS(remote netip.AddrPort, query *dnsmsg.Message) *dnsmsg.Message
}

// HandlerFunc adapts a function to Handler.
type HandlerFunc func(remote netip.AddrPort, query *dnsmsg.Message) *dnsmsg.Message

// ServeDNS implements Handler.
func (f HandlerFunc) ServeDNS(remote netip.AddrPort, q *dnsmsg.Message) *dnsmsg.Message {
	return f(remote, q)
}

// ShardAware is an optional Handler extension for handlers that keep
// per-shard state (the authority's per-shard answer caches, for one).
// When the handler passed to the server implements it, the serve loop
// calls ServeDNSShard with the listener shard the query arrived on
// instead of ServeDNS. Shard IDs are dense: 0 <= shard < Server.Shards().
type ShardAware interface {
	Handler
	ServeDNSShard(shard int, remote netip.AddrPort, query *dnsmsg.Message) *dnsmsg.Message
}

// Metrics counts server activity, aggregated across all shards. All fields
// are updated atomically and may be read at any time. These counters are
// the one piece of cross-shard shared state: they are monotone counters
// whose cache-line contention cannot produce wrong answers, only a few
// nanoseconds of false sharing — per-shard operational state lives in
// ShardStats instead.
type Metrics struct {
	// Queries is the number of well-formed queries received.
	Queries atomic.Uint64
	// Responses is the number of responses sent.
	Responses atomic.Uint64
	// Malformed is the number of datagrams that failed to parse.
	Malformed atomic.Uint64
	// Dropped is the number of queries the handler chose not to answer.
	Dropped atomic.Uint64
	// Shed is the number of datagrams rejected at enqueue because the
	// pending-work queue was full (ShedDrop and ShedRefuse policies).
	Shed atomic.Uint64
	// DeadlineDrops is the number of queued queries discarded because they
	// aged past the serve deadline before a worker picked them up.
	DeadlineDrops atomic.Uint64
	// RateLimited is the number of queries suppressed by response-rate
	// limiting (see Config.RRLRate).
	RateLimited atomic.Uint64
	// Slips is the subset of RateLimited answered with a minimal TC=1
	// response so legitimate clients can retry over TCP.
	Slips atomic.Uint64
	// HandlerPanics is the number of handler panics recovered by the serve
	// loop (each answered with SERVFAIL).
	HandlerPanics atomic.Uint64
}

// ShardMetrics counts one shard's activity. Each shard updates only its
// own instance, so these atomics never bounce between cores.
type ShardMetrics struct {
	// Queries is the number of well-formed queries this shard received.
	Queries atomic.Uint64
	// Responses is the number of responses this shard sent.
	Responses atomic.Uint64
	// Shed is the number of datagrams this shard rejected at enqueue.
	Shed atomic.Uint64
	// RateLimited is the number of queries this shard's RRL suppressed.
	RateLimited atomic.Uint64
	// Wakeups counts receive syscall returns that delivered >= 1 packet.
	Wakeups atomic.Uint64
	// BatchedPackets counts packets delivered across those wakeups, so
	// BatchedPackets/Wakeups is the measured packets-per-syscall ratio
	// (1.0 on the portable single-packet path, up to BatchSize with
	// recvmmsg under load).
	BatchedPackets atomic.Uint64
}

// ShardStats is a point-in-time copy of one shard's counters.
type ShardStats struct {
	Shard          int
	Queries        uint64
	Responses      uint64
	Shed           uint64
	RateLimited    uint64
	Wakeups        uint64
	BatchedPackets uint64
	// QueueLen is the instantaneous depth of the shard's work queue.
	QueueLen int
}

// ShedPolicy selects what happens to a datagram that arrives while the
// pending-work queue is full — the server's explicit overload posture.
type ShedPolicy int

const (
	// ShedBlock: readers block until a worker frees a slot. Backpressure
	// lands in the kernel socket buffer, which drops datagrams silently
	// once it fills. This is the legacy default.
	ShedBlock ShedPolicy = iota
	// ShedDrop: the datagram is discarded immediately and counted, keeping
	// readers draining the socket so the kernel buffer holds fresh traffic
	// instead of a stale backlog.
	ShedDrop
	// ShedRefuse: as ShedDrop, but well-formed queries get a minimal
	// REFUSED response so resolvers fail over to another authority at once
	// instead of timing out.
	ShedRefuse
)

// String names the policy (the inverse of ParseShedPolicy).
func (p ShedPolicy) String() string {
	switch p {
	case ShedBlock:
		return "block"
	case ShedDrop:
		return "drop"
	case ShedRefuse:
		return "refuse"
	}
	return fmt.Sprintf("ShedPolicy(%d)", int(p))
}

// ParseShedPolicy maps a config/flag string to a ShedPolicy.
func ParseShedPolicy(s string) (ShedPolicy, error) {
	switch s {
	case "", "block":
		return ShedBlock, nil
	case "drop":
		return ShedDrop, nil
	case "refuse":
		return ShedRefuse, nil
	}
	return 0, fmt.Errorf("dnsserver: unknown shed policy %q (want block, drop or refuse)", s)
}

// maxAdvertisedUDPSize caps the EDNS UDP payload size the server honours.
// RFC 6891 §6.2.5 recommends 4096 octets as the upper bound of what is
// reliably deliverable; clients advertising more are clamped rather than
// trusted, bounding response buffers and fragmentation exposure.
const maxAdvertisedUDPSize = 4096

// maxPacketSize is the read buffer size: the largest UDP datagram.
const maxPacketSize = 65535

// maxBatchSize bounds Config.BatchSize: beyond 64 datagrams per syscall
// the syscall amortisation has flattened while the per-shard slot memory
// (BatchSize full-size read buffers pinned per reader) keeps growing.
const maxBatchSize = 64

// Config tunes the server's concurrency model. The zero value selects the
// pooled defaults. Reader/worker/queue knobs are per shard.
type Config struct {
	// ListenerShards is the number of shared-nothing listener shards.
	// ListenConfig binds each shard its own SO_REUSEPORT socket so the
	// kernel spreads flows across them. Default: GOMAXPROCS on Linux
	// (where SO_REUSEPORT exists), 1 elsewhere. Values > 1 require Linux
	// when sockets are bound by this package; NewConns accepts any number
	// of caller-supplied conns on any platform.
	ListenerShards int
	// BatchSize is the number of datagrams a shard may drain or flush per
	// syscall using recvmmsg/sendmmsg. 1 (the default) selects the
	// portable single-packet path. Values > 1 require Linux on amd64 or
	// arm64 and a real UDP socket; injected non-UDP conns (faultnet
	// wrappers) silently fall back to the single-packet path.
	BatchSize int
	// Readers is the number of goroutines blocked reading each shard's
	// socket. More than one keeps the socket drained while packets are
	// being dispatched. Default 2 for a single unbatched shard (the
	// legacy layout); 1 per shard otherwise — a sharded or batched plane
	// gets its parallelism from shards, not stacked readers.
	Readers int
	// Workers is the number of handler goroutines draining each shard's
	// packet queue. Mapping decisions are CPU-bound, so the default is
	// GOMAXPROCS divided across the shards (at least 1).
	Workers int
	// QueueDepth bounds each shard's pending-packet channel. When the
	// queue is full, readers block — backpressure lands in the kernel
	// socket buffer, which sheds load by dropping datagrams (the correct
	// behaviour for DNS over UDP). Default 4x Workers.
	QueueDepth int
	// GoroutinePerPacket restores the legacy spawn-per-datagram serve
	// loop. It exists so benchmarks can compare the pooled loop against
	// the old model; production servers should leave it false.
	GoroutinePerPacket bool
	// OnOverload selects what happens to datagrams arriving while the
	// queue is full. Default ShedBlock (kernel-buffer backpressure).
	OnOverload ShedPolicy
	// ServeDeadline bounds how long a query may wait in the queue before a
	// worker starts on it; overdue queries are dropped (DeadlineDrops), on
	// the theory that the resolver has already retried or failed over and
	// a late answer only wastes a worker. Zero disables the deadline.
	ServeDeadline time.Duration
	// RRLRate enables response-rate limiting when positive: each source
	// prefix (IPv4 /24, IPv6 /56) is allowed this many responses per
	// second, smoothed by a token-bucket (GCRA) with RRLBurst tolerance.
	// Rate-limited queries are dropped except every RRLSlip-th one, which
	// gets a minimal TC=1 response so legitimate clients behind the prefix
	// can fall back to TCP (the standard RRL "slip" escape hatch).
	// Each shard runs its own limiter table: the kernel pins a flow to one
	// shard, so a source prefix is still accounted coherently, and shards
	// never contend on limiter cache lines.
	RRLRate float64
	// RRLBurst is the burst allowance in responses. Default 8.
	RRLBurst int
	// RRLSlip answers every n-th rate-limited query with TC=1; 0 uses the
	// default of 2, negative disables slipping entirely.
	RRLSlip int
}

func (c Config) withDefaults() Config {
	if c.ListenerShards <= 0 {
		c.ListenerShards = defaultListenerShards()
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 1
	}
	if c.BatchSize > maxBatchSize {
		c.BatchSize = maxBatchSize
	}
	if c.Readers <= 0 {
		if c.ListenerShards > 1 || c.BatchSize > 1 {
			c.Readers = 1
		} else {
			c.Readers = 2
		}
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0) / c.ListenerShards
		if c.Workers < 1 {
			c.Workers = 1
		}
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.Workers
	}
	if c.RRLBurst <= 0 {
		c.RRLBurst = 8
	}
	if c.RRLSlip == 0 {
		c.RRLSlip = 2
	}
	return c
}

// packet is one received datagram travelling from a reader to a worker.
// buf is a pooled full-size buffer (passed by pointer so re-pooling it
// does not re-box the slice header); the datagram occupies (*buf)[:n].
// enq is the enqueue instant (unix nanoseconds), stamped only when a serve
// deadline is configured.
type packet struct {
	buf   *[]byte
	n     int
	raddr netip.AddrPort
	enq   int64
}

// outPacket is one response datagram travelling from a worker to a shard's
// batching writer. buf is a pooled wire buffer owned by the writer from
// enqueue until it is re-pooled after the send.
type outPacket struct {
	buf   *[]byte
	raddr netip.AddrPort
}

// shard is one shared-nothing serving unit: a socket, its pools, its work
// queue, its RRL table and its counters. Nothing in here is touched by any
// other shard.
type shard struct {
	id  int
	srv *Server

	conn net.PacketConn
	// udpConn is conn when it is a *net.UDPConn, enabling the
	// allocation-free ReadFromUDPAddrPort/WriteToUDPAddrPort pair and the
	// batched recvmmsg/sendmmsg path.
	udpConn *net.UDPConn

	// rrl is this shard's response-rate limiter, nil unless Config.RRLRate
	// is positive. Per shard by design: the kernel's REUSEPORT hash pins a
	// flow to one shard, so accounting stays coherent without sharing.
	rrl *rateLimiter

	// queue is the bounded reader->worker channel, created at construction
	// so its depth can be exported as a gauge before Serve runs.
	queue chan packet
	// out is the worker->writer channel for batched sends, nil when the
	// shard is on the synchronous single-packet write path.
	out chan outPacket
	// batch is the platform recvmmsg/sendmmsg state, nil when unbatched.
	batch *batchIO

	bufPool  sync.Pool // *[]byte, len maxPacketSize
	packPool sync.Pool // *[]byte, len 0: response wire buffers
	msgPool  sync.Pool // *dnsmsg.Message: recycled query messages

	// Stats counts this shard's activity.
	Stats ShardMetrics
}

// Server is a UDP DNS server over one or more listener shards.
type Server struct {
	handler Handler
	// sharded is handler when it implements ShardAware, resolved once at
	// construction so the hot path pays a nil check, not a type assert.
	sharded ShardAware
	cfg     Config
	shards  []*shard
	// latency, when non-nil, records per-query handler latency (unpack
	// through response write). Set by RegisterMetrics before Serve.
	latency *telemetry.Histogram

	// Metrics exposes live counters aggregated across shards.
	Metrics Metrics

	mu     sync.Mutex
	closed bool
	wg     sync.WaitGroup // the serve loops and their in-flight packets
}

// Listen binds a UDP socket on addr (e.g. "127.0.0.1:0") and returns a
// server with default pooled concurrency, ready to Serve. The handler must
// not be nil.
func Listen(addr string, h Handler) (*Server, error) {
	return ListenConfig(addr, h, Config{})
}

// ListenConfig is Listen with an explicit concurrency configuration. With
// ListenerShards > 1 it binds one SO_REUSEPORT socket per shard on the
// same address, so the kernel fans incoming flows out across the shards;
// that path requires Linux.
func ListenConfig(addr string, h Handler, cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if cfg.ListenerShards == 1 {
		conn, err := net.ListenPacket("udp", addr)
		if err != nil {
			return nil, fmt.Errorf("dnsserver: %w", err)
		}
		s, err := newConns([]net.PacketConn{conn}, h, cfg)
		if err != nil {
			conn.Close()
			return nil, err
		}
		return s, nil
	}
	conns := make([]net.PacketConn, 0, cfg.ListenerShards)
	closeAll := func() {
		for _, c := range conns {
			c.Close()
		}
	}
	for i := 0; i < cfg.ListenerShards; i++ {
		conn, err := listenReusePort(addr)
		if err != nil {
			closeAll()
			return nil, fmt.Errorf("dnsserver: shard %d: %w", i, err)
		}
		if i == 0 {
			// Shard 0 may have resolved port 0 to a concrete port; the
			// remaining shards must bind that same port to join the
			// REUSEPORT group.
			addr = conn.LocalAddr().String()
		}
		conns = append(conns, conn)
	}
	s, err := newConns(conns, h, cfg)
	if err != nil {
		closeAll()
		return nil, err
	}
	return s, nil
}

// NewConn builds a single-shard server over an already-open packet
// connection — the entry point for tests that interpose a fault-injecting
// transport (see internal/faultnet) between the server and the wire. The
// server owns the connection from here on; Close closes it.
func NewConn(conn net.PacketConn, h Handler, cfg Config) (*Server, error) {
	if conn == nil {
		return nil, errors.New("dnsserver: nil conn")
	}
	cfg.ListenerShards = 1
	return newConns([]net.PacketConn{conn}, h, cfg.withDefaults())
}

// NewConns builds a server with one shard per supplied connection. Unlike
// the SO_REUSEPORT path the conns need not share an address: tests bind
// distinct loopback ports so individual shards stay addressable, and chaos
// harnesses wrap each conn in its own fault injector. The server owns the
// connections from here on; Close closes them all.
func NewConns(conns []net.PacketConn, h Handler, cfg Config) (*Server, error) {
	if len(conns) == 0 {
		return nil, errors.New("dnsserver: no conns")
	}
	for _, c := range conns {
		if c == nil {
			return nil, errors.New("dnsserver: nil conn")
		}
	}
	cfg.ListenerShards = len(conns)
	return newConns(conns, h, cfg.withDefaults())
}

// newConns wires the shards. cfg must already have defaults applied and
// cfg.ListenerShards == len(conns).
func newConns(conns []net.PacketConn, h Handler, cfg Config) (*Server, error) {
	if h == nil {
		return nil, errors.New("dnsserver: nil handler")
	}
	s := &Server{handler: h, cfg: cfg}
	s.sharded, _ = h.(ShardAware)
	s.shards = make([]*shard, len(conns))
	for i, conn := range conns {
		sh := &shard{id: i, srv: s, conn: conn}
		sh.udpConn, _ = conn.(*net.UDPConn)
		if cfg.RRLRate > 0 {
			sh.rrl = newRateLimiter(cfg.RRLRate, cfg.RRLBurst, cfg.RRLSlip)
		}
		sh.queue = make(chan packet, cfg.QueueDepth)
		sh.bufPool.New = func() any {
			b := make([]byte, maxPacketSize)
			return &b
		}
		sh.packPool.New = func() any {
			b := make([]byte, 0, maxAdvertisedUDPSize)
			return &b
		}
		sh.msgPool.New = func() any { return &dnsmsg.Message{} }
		if cfg.BatchSize > 1 && sh.udpConn != nil {
			b, err := newBatchIO(sh.udpConn, cfg.BatchSize)
			if err != nil {
				return nil, err
			}
			sh.batch = b
			// Sized so every worker can park a response and the writer a
			// full batch without the workers stalling on a healthy writer.
			sh.out = make(chan outPacket, cfg.BatchSize+cfg.Workers)
		}
		s.shards[i] = sh
	}
	return s, nil
}

// Addr returns shard 0's bound address, for clients to dial. With
// SO_REUSEPORT sharding every shard shares this address.
func (s *Server) Addr() net.Addr { return s.shards[0].conn.LocalAddr() }

// Shards returns the number of listener shards.
func (s *Server) Shards() int { return len(s.shards) }

// ShardAddr returns the bound address of one shard — distinct per shard
// when the server was built with NewConns over separately-bound sockets.
func (s *Server) ShardAddr(i int) net.Addr { return s.shards[i].conn.LocalAddr() }

// ShardStats snapshots every shard's counters.
func (s *Server) ShardStats() []ShardStats {
	out := make([]ShardStats, len(s.shards))
	for i, sh := range s.shards {
		out[i] = ShardStats{
			Shard:          i,
			Queries:        sh.Stats.Queries.Load(),
			Responses:      sh.Stats.Responses.Load(),
			Shed:           sh.Stats.Shed.Load(),
			RateLimited:    sh.Stats.RateLimited.Load(),
			Wakeups:        sh.Stats.Wakeups.Load(),
			BatchedPackets: sh.Stats.BatchedPackets.Load(),
			QueueLen:       len(sh.queue),
		}
	}
	return out
}

// Serve runs every shard's serve loop until the server is closed,
// dispatching queries to each shard's worker pool (or, in legacy mode, one
// goroutine per packet). Serve returns nil after Close.
func (s *Server) Serve() error {
	// Close waits on wg, so it does not return until queued packets have
	// drained and every worker on every shard has exited.
	s.wg.Add(1)
	defer s.wg.Done()
	errs := make(chan error, len(s.shards))
	var shards sync.WaitGroup
	for _, sh := range s.shards {
		shards.Add(1)
		go func(sh *shard) {
			defer shards.Done()
			if s.cfg.GoroutinePerPacket {
				errs <- sh.servePerPacket()
			} else {
				errs <- sh.serve()
			}
		}(sh)
	}
	shards.Wait()
	var firstErr error
	for range s.shards {
		if err := <-errs; err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// serve is one shard's pooled serve loop: readers feed the bounded queue,
// workers drain it, and (in batch mode) a writer goroutine flushes
// responses with sendmmsg.
func (sh *shard) serve() error {
	cfg := sh.srv.cfg

	var workers sync.WaitGroup
	for i := 0; i < cfg.Workers; i++ {
		workers.Add(1)
		go func() {
			defer workers.Done()
			for pkt := range sh.queue {
				if pkt.enq != 0 && time.Now().UnixNano()-pkt.enq > int64(cfg.ServeDeadline) {
					// The query aged out in the queue: the resolver has
					// retried or failed over by now, so a late answer only
					// wastes the worker.
					sh.srv.Metrics.DeadlineDrops.Add(1)
				} else {
					sh.handlePacket(pkt.raddr, (*pkt.buf)[:pkt.n])
				}
				sh.bufPool.Put(pkt.buf)
			}
		}()
	}

	var writer sync.WaitGroup
	if sh.out != nil {
		writer.Add(1)
		go func() {
			defer writer.Done()
			sh.writeLoop()
		}()
	}

	var readers sync.WaitGroup
	errs := make(chan error, cfg.Readers)
	for i := 0; i < cfg.Readers; i++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			if sh.batch != nil {
				errs <- sh.readLoopBatch()
			} else {
				errs <- sh.readLoop()
			}
		}()
	}
	readers.Wait()
	close(sh.queue)
	workers.Wait()
	if sh.out != nil {
		close(sh.out)
		writer.Wait()
	}

	var firstErr error
	for i := 0; i < cfg.Readers; i++ {
		if err := <-errs; err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// readLoop pulls datagrams off the socket into pooled buffers until the
// socket errors (normally: is closed). It returns nil on clean shutdown.
func (sh *shard) readLoop() error {
	for {
		bp := sh.bufPool.Get().(*[]byte)
		n, raddr, err := sh.readFrom(*bp)
		if err != nil {
			sh.bufPool.Put(bp)
			if sh.srv.isClosed() {
				return nil
			}
			return fmt.Errorf("dnsserver: read: %w", err)
		}
		if !raddr.IsValid() {
			sh.bufPool.Put(bp)
			continue
		}
		sh.Stats.Wakeups.Add(1)
		sh.Stats.BatchedPackets.Add(1)
		sh.enqueue(bp, n, raddr)
	}
}

// readLoopBatch is readLoop over recvmmsg: each wakeup drains up to
// BatchSize datagrams in one syscall. Each reader goroutine owns its own
// slot set, so multiple batch readers never share scatter/gather state.
func (sh *shard) readLoopBatch() error {
	slots := newSlots(sh.srv.cfg.BatchSize)
	for {
		n, err := sh.batch.recvBatch(sh, slots)
		if err != nil {
			if sh.srv.isClosed() {
				return nil
			}
			return fmt.Errorf("dnsserver: recvmmsg: %w", err)
		}
		if n > 0 {
			sh.Stats.Wakeups.Add(1)
			sh.Stats.BatchedPackets.Add(uint64(n))
		}
	}
}

// enqueue hands one received datagram to the shard's workers, applying the
// configured overload posture when the queue is full. It owns bp and
// either forwards it or re-pools it.
func (sh *shard) enqueue(bp *[]byte, n int, raddr netip.AddrPort) {
	cfg := sh.srv.cfg
	pkt := packet{buf: bp, n: n, raddr: raddr}
	if cfg.ServeDeadline > 0 {
		pkt.enq = time.Now().UnixNano()
	}
	if cfg.OnOverload == ShedBlock {
		sh.queue <- pkt
		return
	}
	select {
	case sh.queue <- pkt:
	default:
		// Queue full: shed here, explicitly and counted, instead of
		// letting the backlog smear into the kernel buffer. The reader
		// goes straight back to the socket, so it keeps draining fresh
		// traffic.
		sh.srv.Metrics.Shed.Add(1)
		sh.Stats.Shed.Add(1)
		if cfg.OnOverload == ShedRefuse {
			sh.refuse(raddr, (*bp)[:n])
		}
		sh.bufPool.Put(bp)
	}
}

// writeLoop is the batch writer: it blocks for one response, then
// opportunistically drains more without blocking, and flushes the batch
// with one sendmmsg. Under load batches fill toward BatchSize; idle, each
// response leaves immediately — batching never adds latency.
func (sh *shard) writeLoop() {
	pend := make([]outPacket, 0, sh.srv.cfg.BatchSize)
	for {
		p, ok := <-sh.out
		if !ok {
			return
		}
		pend = append(pend[:0], p)
	drain:
		for len(pend) < cap(pend) {
			select {
			case p, ok := <-sh.out:
				if !ok {
					break drain
				}
				pend = append(pend, p)
			default:
				break drain
			}
		}
		sent := sh.batch.sendBatch(pend)
		sh.srv.Metrics.Responses.Add(uint64(sent))
		sh.Stats.Responses.Add(uint64(sent))
		for i := range pend {
			*pend[i].buf = (*pend[i].buf)[:0] // keep growth for reuse
			sh.packPool.Put(pend[i].buf)
			pend[i].buf = nil
		}
	}
}

// refuse answers a shed datagram with a minimal REFUSED response, so the
// resolver fails over to another authority immediately instead of burning
// its timeout. Runs on the shed path only; allocations are acceptable.
func (sh *shard) refuse(raddr netip.AddrPort, pkt []byte) {
	query := sh.msgPool.Get().(*dnsmsg.Message)
	defer sh.msgPool.Put(query)
	if err := dnsmsg.UnpackInto(query, pkt); err != nil || query.Response {
		return
	}
	resp := query.Reply()
	resp.RCode = dnsmsg.RCodeRefused
	wire, err := resp.Pack()
	if err != nil {
		return
	}
	if sh.writeTo(wire, raddr) == nil {
		sh.srv.Metrics.Responses.Add(1)
		sh.Stats.Responses.Add(1)
	}
}

// servePerPacket is the legacy serve loop: one buffer copy and one spawned
// goroutine per datagram. Kept for baseline comparison benchmarks.
func (sh *shard) servePerPacket() error {
	buf := make([]byte, maxPacketSize)
	for {
		n, raddr, err := sh.readFrom(buf)
		if err != nil {
			if sh.srv.isClosed() {
				return nil
			}
			return fmt.Errorf("dnsserver: read: %w", err)
		}
		if !raddr.IsValid() {
			continue
		}
		sh.Stats.Wakeups.Add(1)
		sh.Stats.BatchedPackets.Add(1)
		pkt := make([]byte, n)
		copy(pkt, buf[:n])
		sh.srv.wg.Add(1)
		go func() {
			defer sh.srv.wg.Done()
			sh.handlePacket(raddr, pkt)
		}()
	}
}

// readFrom reads one datagram, preferring the AddrPort-returning UDP path
// that avoids a net.Addr allocation per packet.
func (sh *shard) readFrom(buf []byte) (int, netip.AddrPort, error) {
	if sh.udpConn != nil {
		return sh.udpConn.ReadFromUDPAddrPort(buf)
	}
	n, remote, err := sh.conn.ReadFrom(buf)
	if err != nil {
		return 0, netip.AddrPort{}, err
	}
	raddr, _ := remoteAddrPort(remote)
	return n, raddr, nil
}

// writeTo sends one response datagram synchronously.
func (sh *shard) writeTo(wire []byte, raddr netip.AddrPort) error {
	if sh.udpConn != nil {
		_, err := sh.udpConn.WriteToUDPAddrPort(wire, raddr)
		return err
	}
	_, err := sh.conn.WriteTo(wire, net.UDPAddrFromAddrPort(raddr))
	return err
}

func (s *Server) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

func (sh *shard) handlePacket(raddr netip.AddrPort, pkt []byte) {
	s := sh.srv
	query := sh.msgPool.Get().(*dnsmsg.Message)
	defer sh.msgPool.Put(query)
	if err := dnsmsg.UnpackInto(query, pkt); err != nil || query.Response {
		s.Metrics.Malformed.Add(1)
		return
	}
	s.Metrics.Queries.Add(1)
	sh.Stats.Queries.Add(1)
	if sh.rrl != nil && !sh.rrl.allow(raddr.Addr(), time.Now().UnixNano()) {
		s.Metrics.RateLimited.Add(1)
		sh.Stats.RateLimited.Add(1)
		if sh.rrl.shouldSlip() {
			sh.slip(raddr, query)
		}
		return
	}
	var startNs int64
	if s.latency != nil {
		startNs = time.Now().UnixNano()
	}
	resp := sh.safeServe(raddr, query)
	if s.latency != nil {
		s.latency.ObserveNanos(time.Now().UnixNano() - startNs)
	}
	if resp == nil {
		s.Metrics.Dropped.Add(1)
		return
	}
	// Respect the client's advertised UDP payload size (512 octets for
	// non-EDNS queries, RFC 1035), clamped to maxAdvertisedUDPSize per
	// RFC 6891 §6.2.5 rather than trusting arbitrary advertised sizes:
	// oversized answers are truncated with TC=1 so the client retries
	// over TCP.
	maxSize := 512
	if query.EDNS {
		maxSize = int(query.UDPSize)
		if maxSize < 512 {
			maxSize = 512
		}
		if maxSize > maxAdvertisedUDPSize {
			maxSize = maxAdvertisedUDPSize
		}
	}
	wp := sh.packPool.Get().(*[]byte)
	wire, err := TruncateAppend((*wp)[:0], resp, maxSize)
	if err != nil {
		// A handler bug; answer SERVFAIL so the client doesn't hang.
		servfail := query.Reply()
		servfail.RCode = dnsmsg.RCodeServerFailure
		if wire, err = servfail.AppendPack((*wp)[:0]); err != nil {
			s.Metrics.Dropped.Add(1)
			*wp = (*wp)[:0]
			sh.packPool.Put(wp)
			return
		}
	}
	if sh.out != nil {
		// Batched path: hand buffer ownership to the writer, which
		// re-pools it after the sendmmsg flush.
		*wp = wire
		sh.out <- outPacket{buf: wp, raddr: raddr}
		return
	}
	*wp = wire[:0] // keep any growth for the next response
	if err := sh.writeTo(wire, raddr); err == nil {
		s.Metrics.Responses.Add(1)
		sh.Stats.Responses.Add(1)
	}
	sh.packPool.Put(wp)
}

// safeServe invokes the handler — through ServeDNSShard when the handler
// is shard-aware — converting a panic into a SERVFAIL response: one
// misbehaving query must not take down the serve loop.
func (sh *shard) safeServe(raddr netip.AddrPort, query *dnsmsg.Message) (resp *dnsmsg.Message) {
	s := sh.srv
	defer func() {
		if p := recover(); p != nil {
			s.Metrics.HandlerPanics.Add(1)
			r := query.Reply()
			r.RCode = dnsmsg.RCodeServerFailure
			resp = r
		}
	}()
	if s.sharded != nil {
		return s.sharded.ServeDNSShard(sh.id, raddr, query)
	}
	return s.handler.ServeDNS(raddr, query)
}

// slip answers a rate-limited query with a minimal TC=1 response: no
// records, just the truncation bit, steering a legitimate client behind
// the offending prefix to retry over TCP (where its source address is
// verified by the handshake). Runs on the limited path only.
func (sh *shard) slip(raddr netip.AddrPort, query *dnsmsg.Message) {
	resp := query.Reply()
	resp.Truncated = true
	wire, err := resp.Pack()
	if err != nil {
		return
	}
	if sh.writeTo(wire, raddr) == nil {
		sh.srv.Metrics.Slips.Add(1)
		sh.srv.Metrics.Responses.Add(1)
		sh.Stats.Responses.Add(1)
	}
}

// safeServe invokes the handler, converting a panic into a SERVFAIL
// response: one misbehaving query must not take down the serve loop (or, in
// goroutine-per-packet mode, the process). Used by the TCP server, which
// has no shards.
func safeServe(h Handler, m *Metrics, raddr netip.AddrPort, query *dnsmsg.Message) (resp *dnsmsg.Message) {
	defer func() {
		if p := recover(); p != nil {
			m.HandlerPanics.Add(1)
			r := query.Reply()
			r.RCode = dnsmsg.RCodeServerFailure
			resp = r
		}
	}()
	return h.ServeDNS(raddr, query)
}

// Close shuts the server down gracefully: every shard's readers are woken
// and stop accepting new datagrams, queued and in-flight queries drain
// through the workers (their responses still go out), and only then are
// the sockets closed. Late datagrams arriving during the drain stay in the
// kernel buffers and die with the sockets.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	// A read deadline in the past wakes every reader blocked on its socket
	// — including readers parked in recvmmsg via RawConn.Read, which
	// honours deadlines — without tearing down the socket, so workers can
	// still write responses for queries already accepted.
	for _, sh := range s.shards {
		_ = sh.conn.SetReadDeadline(time.Now())
	}
	s.wg.Wait()
	var firstErr error
	for _, sh := range s.shards {
		if err := sh.conn.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

func remoteAddrPort(a net.Addr) (netip.AddrPort, bool) {
	if u, ok := a.(*net.UDPAddr); ok {
		return u.AddrPort(), true
	}
	ap, err := netip.ParseAddrPort(a.String())
	if err != nil {
		return netip.AddrPort{}, false
	}
	return ap, true
}
