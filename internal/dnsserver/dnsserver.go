// Package dnsserver implements a UDP authoritative DNS server host: a
// serve loop over a net.PacketConn that parses queries with dnsmsg, hands
// them to a Handler, and writes responses, with per-server metrics.
//
// It is the transport layer for the mapping system's authoritative name
// servers (§2.2 component 3): handlers implement the mapping behaviour,
// this package owns sockets, concurrency and message hygiene.
package dnsserver

import (
	"errors"
	"fmt"
	"net"
	"net/netip"
	"sync"
	"sync/atomic"

	"eum/internal/dnsmsg"
)

// Handler answers DNS queries. Implementations must be safe for concurrent
// use. Returning nil drops the query (no response), which a handler may use
// for malformed or abusive traffic.
type Handler interface {
	ServeDNS(remote netip.AddrPort, query *dnsmsg.Message) *dnsmsg.Message
}

// HandlerFunc adapts a function to Handler.
type HandlerFunc func(remote netip.AddrPort, query *dnsmsg.Message) *dnsmsg.Message

// ServeDNS implements Handler.
func (f HandlerFunc) ServeDNS(remote netip.AddrPort, q *dnsmsg.Message) *dnsmsg.Message {
	return f(remote, q)
}

// Metrics counts server activity. All fields are updated atomically and
// may be read at any time.
type Metrics struct {
	// Queries is the number of well-formed queries received.
	Queries atomic.Uint64
	// Responses is the number of responses sent.
	Responses atomic.Uint64
	// Malformed is the number of datagrams that failed to parse.
	Malformed atomic.Uint64
	// Dropped is the number of queries the handler chose not to answer.
	Dropped atomic.Uint64
}

// Server is a UDP DNS server.
type Server struct {
	conn    net.PacketConn
	handler Handler

	// Metrics exposes live counters.
	Metrics Metrics

	mu     sync.Mutex
	closed bool
	wg     sync.WaitGroup
}

// Listen binds a UDP socket on addr (e.g. "127.0.0.1:0") and returns a
// server ready to Serve. The handler must not be nil.
func Listen(addr string, h Handler) (*Server, error) {
	if h == nil {
		return nil, errors.New("dnsserver: nil handler")
	}
	conn, err := net.ListenPacket("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("dnsserver: %w", err)
	}
	return &Server{conn: conn, handler: h}, nil
}

// Addr returns the bound address, for clients to dial.
func (s *Server) Addr() net.Addr { return s.conn.LocalAddr() }

// Serve reads queries until the server is closed. Each query is handled on
// its own goroutine, as the mapping decision may be slow relative to socket
// reads. Serve returns nil after Close.
func (s *Server) Serve() error {
	buf := make([]byte, 65535)
	for {
		n, remote, err := s.conn.ReadFrom(buf)
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return fmt.Errorf("dnsserver: read: %w", err)
		}
		pkt := make([]byte, n)
		copy(pkt, buf[:n])
		raddr, ok := remoteAddrPort(remote)
		if !ok {
			continue
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handlePacket(raddr, remote, pkt)
		}()
	}
}

func (s *Server) handlePacket(raddr netip.AddrPort, remote net.Addr, pkt []byte) {
	query, err := dnsmsg.Unpack(pkt)
	if err != nil || query.Response {
		s.Metrics.Malformed.Add(1)
		return
	}
	s.Metrics.Queries.Add(1)
	resp := s.handler.ServeDNS(raddr, query)
	if resp == nil {
		s.Metrics.Dropped.Add(1)
		return
	}
	// Respect the client's advertised UDP payload size (512 octets for
	// non-EDNS queries, RFC 1035): oversized answers are truncated with
	// TC=1 so the client retries over TCP.
	maxSize := 512
	if query.EDNS {
		maxSize = int(query.UDPSize)
		if maxSize < 512 {
			maxSize = 512
		}
	}
	wire, err := TruncateFor(resp, maxSize)
	if err != nil {
		// A handler bug; answer SERVFAIL so the client doesn't hang.
		servfail := query.Reply()
		servfail.RCode = dnsmsg.RCodeServerFailure
		if wire, err = servfail.Pack(); err != nil {
			s.Metrics.Dropped.Add(1)
			return
		}
	}
	if _, err := s.conn.WriteTo(wire, remote); err == nil {
		s.Metrics.Responses.Add(1)
	}
}

// Close stops the server and waits for in-flight handlers.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	err := s.conn.Close()
	s.wg.Wait()
	return err
}

func remoteAddrPort(a net.Addr) (netip.AddrPort, bool) {
	if u, ok := a.(*net.UDPAddr); ok {
		return u.AddrPort(), true
	}
	ap, err := netip.ParseAddrPort(a.String())
	if err != nil {
		return netip.AddrPort{}, false
	}
	return ap, true
}
